package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"filemig/internal/core"
	"filemig/internal/dist"
)

// The migd checkpoint is a header line followed by one dist wire frame
// per segment, in trace order. Each frame's payload is the segment's
// record-time bounds (two signed varints of UnixNano — the s1 snapshot
// does not carry error-record bounds, so the checkpoint does) followed
// by the segment's s1 snapshot. The CRC on every frame means a torn or
// bit-flipped checkpoint fails loudly at restore instead of resuming
// from silently wrong state; segments untouched since the previous
// checkpoint reuse their cached frame bytes and are never re-serialized.

// CheckpointHeader opens every migd checkpoint file.
const CheckpointHeader = "#migd-checkpoint c1\n"

// EncodeCheckpoint serializes the daemon's full segment state in the
// checkpoint format.
func (s *Server) EncodeCheckpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out bytes.Buffer
	out.WriteString(CheckpointHeader)
	for i, sg := range s.orderedSegments() {
		if sg.dirty || sg.enc == nil {
			first, last := sg.p.Bounds()
			payload := binary.AppendVarint(nil, first.UnixNano())
			payload = binary.AppendVarint(payload, last.UnixNano())
			var snap bytes.Buffer
			if err := sg.p.WriteSnapshot(&snap); err != nil {
				return nil, fmt.Errorf("serve: checkpoint segment %d: %w", i, err)
			}
			sg.enc = dist.EncodeFrame(append(payload, snap.Bytes()...))
			sg.dirty = false
		}
		out.Write(sg.enc)
	}
	return out.Bytes(), nil
}

// Checkpoint writes the daemon's state to Config.CheckpointPath,
// atomically: the bytes land in a temporary sibling first and are
// renamed over the target, so a crash mid-write leaves the previous
// checkpoint intact.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return errors.New("serve: no checkpoint path configured")
	}
	data, err := s.EncodeCheckpoint()
	if err != nil {
		return err
	}
	tmp := s.cfg.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	s.checkpoints.Add(1)
	s.sinceCkpt.Store(0)
	return nil
}

// maybeCheckpoint runs the record-count checkpoint cadence after a
// batch of n records was applied.
func (s *Server) maybeCheckpoint(n int64) {
	if s.cfg.CheckpointEvery <= 0 || s.cfg.CheckpointPath == "" {
		return
	}
	if s.sinceCkpt.Add(n) < s.cfg.CheckpointEvery {
		return
	}
	if err := s.Checkpoint(); err != nil {
		s.logf("migd: cadence checkpoint failed: %v", err)
	}
}

// RestoreCheckpoint loads a checkpoint produced by EncodeCheckpoint
// into an empty server, rebuilding every segment (via the s1 snapshot
// codec) and the live per-file table. The restored daemon's report is
// byte-identical to the pre-restart daemon's, and ingest continues from
// where the checkpoint was cut.
func (s *Server) RestoreCheckpoint(data []byte) error {
	if s.records.Load() != 0 {
		return errors.New("serve: restore into a non-empty server")
	}
	if len(data) < len(CheckpointHeader) || string(data[:len(CheckpointHeader)]) != CheckpointHeader {
		return errors.New("serve: not a migd checkpoint (bad header)")
	}
	rest := data[len(CheckpointHeader):]
	var segs []*segment
	for i := 0; len(rest) > 0; i++ {
		payload, r, err := dist.NextFrame(rest)
		if err != nil {
			return fmt.Errorf("serve: restore segment %d: %w", i, err)
		}
		sg, err := decodeSegment(payload)
		if err != nil {
			return fmt.Errorf("serve: restore segment %d: %w", i, err)
		}
		// Cache the frame exactly as read: an untouched restored segment
		// re-checkpoints byte-identically without re-serializing.
		sg.enc = append([]byte(nil), rest[:len(rest)-len(r)]...)
		sg.seq = s.segSeq.Add(1)
		segs = append(segs, sg)
		rest = r
	}

	s.mu.Lock()
	for _, sg := range segs {
		first, _ := sg.p.Bounds()
		sh := s.getShard(s.shardKey(first))
		sh.segs = append(sh.segs, sg)
		sh.noteBounds(sg)
		s.segCount.Add(1)
		s.records.Add(sg.p.Records())
		s.errRecords.Add(sg.p.Errors())
	}
	s.mu.Unlock()

	s.filesMu.Lock()
	for _, sg := range segs {
		sg.p.VisitRefs(s.observeFile)
	}
	s.filesMu.Unlock()
	return nil
}

// decodeSegment rebuilds one segment from a checkpoint frame payload.
func decodeSegment(payload []byte) (*segment, error) {
	firstNs, n := binary.Varint(payload)
	if n <= 0 {
		return nil, errors.New("bad first-bound varint")
	}
	payload = payload[n:]
	lastNs, n := binary.Varint(payload)
	if n <= 0 {
		return nil, errors.New("bad last-bound varint")
	}
	payload = payload[n:]
	acc, err := core.ReadSnapshot(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	var first, last time.Time
	if firstNs != 0 {
		first = time.Unix(0, firstNs).UTC()
	}
	if lastNs != 0 {
		last = time.Unix(0, lastNs).UTC()
	}
	p, err := core.PartialFromSnapshot(acc, first, last)
	if err != nil {
		return nil, err
	}
	return &segment{p: p}, nil
}

// handleCheckpoint serves POST /v1/checkpoint: an explicit checkpoint,
// regardless of the cadence.
func (s *Server) handleCheckpoint(w http.ResponseWriter, req *http.Request) {
	if err := s.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int64{
		"segments":    s.segCount.Load(),
		"checkpoints": s.checkpoints.Load(),
	})
}
