package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"filemig/internal/core"
	"filemig/internal/dist"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// maxIngestBody bounds an ingest request body, matching the dist
// frame's own payload ceiling.
const maxIngestBody = 1 << 30

// DecodeIngest decodes an ingest body — a complete trace stream in any
// format the codec sniffs (ASCII v1, binary b1, columnar b2) — into
// records, enforcing the non-decreasing start order every accumulation
// path requires. It decodes and validates the whole body before
// returning, so a caller applies either every record or none; decode
// errors carry the offending record index and byte offset.
func DecodeIngest(body []byte) ([]trace.Record, error) {
	st, err := trace.OpenStream(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var recs []trace.Record
	for {
		r, err := st.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		if n := len(recs); n > 0 && r.Start.Before(recs[n-1].Start) {
			return nil, fmt.Errorf("serve: record %d starts at %v, before record %d at %v (ingest bodies must be in trace order)",
				n+1, r.Start, n, recs[n-1].Start)
		}
		recs = append(recs, r)
	}
}

// DecodeIngestFrame unwraps one dist wire frame and decodes its payload
// with DecodeIngest — the batch ingest body format. The CRC check means
// a truncated or bit-flipped batch is rejected whole, never partially
// applied.
func DecodeIngestFrame(body []byte) ([]trace.Record, error) {
	payload, err := dist.DecodeFrame(body)
	if err != nil {
		return nil, err
	}
	return DecodeIngest(payload)
}

// Ingest validates and applies one already-decoded batch of records.
// The batch must be internally ordered (DecodeIngest enforces this for
// HTTP bodies); batches from different clients may arrive in any order
// relative to each other.
func (s *Server) Ingest(recs []trace.Record) {
	if len(recs) == 0 {
		return
	}
	s.mu.RLock()
	for i := 0; i < len(recs); {
		k := s.shardKey(recs[i].Start)
		j := i + 1
		for j < len(recs) && s.shardKey(recs[j].Start) == k {
			j++
		}
		s.applyRun(k, recs[i:j])
		i = j
	}
	s.mu.RUnlock()
	s.updateFiles(recs)
	s.records.Add(int64(len(recs)))
	s.maybeCheckpoint(int64(len(recs)))
}

// applyRun observes one run of records that share a shard stripe,
// appending to the stripe's newest segment when the run continues it in
// time order and opening a fresh segment otherwise. The caller holds mu
// shared; the stripe mutex serializes concurrent runs.
func (s *Server) applyRun(k int64, recs []trace.Record) {
	sh := s.getShard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var sg *segment
	if sh.lastSeg != nil && !recs[0].Start.Before(sh.maxLast) {
		sg = sh.lastSeg
	} else {
		sg = &segment{p: core.NewPartial(s.cfg.Opts), seq: s.segSeq.Add(1)}
		sh.segs = append(sh.segs, sg)
		s.segCount.Add(1)
	}
	for i := range recs {
		if !recs[i].OK() {
			s.errRecords.Add(1)
		}
		sg.p.Observe(&recs[i])
	}
	sg.dirty = true
	sg.enc = nil
	sh.noteBounds(sg)
}

// updateFiles folds a batch's good references into the live per-file
// table behind /v1/file.
func (s *Server) updateFiles(recs []trace.Record) {
	s.filesMu.Lock()
	defer s.filesMu.Unlock()
	for i := range recs {
		r := &recs[i]
		if !r.OK() {
			continue
		}
		s.observeFile(r.MSSPath, r.Op, r.Start, r.Size)
	}
}

// observeFile applies one good reference to the per-file table. The
// caller holds filesMu exclusively.
func (s *Server) observeFile(path string, op trace.Op, start time.Time, size units.Bytes) {
	f := s.files[path]
	if f == nil {
		f = &fileState{first: start}
		s.files[path] = f
	}
	if start.Before(f.first) {
		f.first = start
	}
	if !start.Before(f.last) {
		f.last = start
		f.size = size
	}
	if op == trace.Write {
		f.writes++
	} else {
		f.reads++
	}
}

// handleIngest serves POST /v1/ingest: a bare trace-stream body.
func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	s.ingestHTTP(w, req, DecodeIngest)
}

// handleIngestBatch serves POST /v1/ingest/batch: a dist-framed
// trace-stream body.
func (s *Server) handleIngestBatch(w http.ResponseWriter, req *http.Request) {
	s.ingestHTTP(w, req, DecodeIngestFrame)
}

// ingestHTTP reads, decodes, and applies one ingest body.
func (s *Server) ingestHTTP(w http.ResponseWriter, req *http.Request, decode func([]byte) ([]trace.Record, error)) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxIngestBody))
	if err != nil {
		http.Error(w, "serve: reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	recs, err := decode(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Ingest(recs)
	writeJSON(w, map[string]int64{
		"records": int64(len(recs)),
		"total":   s.records.Load(),
	})
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
