package serve

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"filemig/internal/core"
	"filemig/internal/device"
	"filemig/internal/dist"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

// The migd acceptance suite: the daemon is correct exactly when its
// live answers are byte-identical to the offline pipeline over the same
// records — however the records were cut into batches, whatever order
// concurrent clients delivered them in, and across a kill/restore in
// the middle.

// daemonFixture generates the golden workload trace the daemon tests
// ingest, canonicalized through the b1 codec: the generator emits
// nanosecond instants, the wire formats carry seconds, and the daemon
// only ever sees what crossed the wire — so the offline baseline must
// analyze the same round-tripped records.
func daemonFixture(t testing.TB) *workload.Result {
	t.Helper()
	cfg := workload.DefaultConfig(0.004, 77)
	cfg.Days = 120
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("workload.Generate: %v", err)
	}
	if len(res.Records) < 1000 {
		t.Fatalf("fixture too small: %d records", len(res.Records))
	}
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, res.Records, trace.FormatBinary); err != nil {
		t.Fatalf("canonicalizing fixture: %v", err)
	}
	res.Records, err = DecodeIngest(buf.Bytes())
	if err != nil {
		t.Fatalf("canonicalizing fixture: %v", err)
	}
	return res
}

// fixedClock returns a Config.Now pinned after the fixture's trace.
func fixedClock(res *workload.Result) func() time.Time {
	end := res.Config.Start.AddDate(0, 0, res.Config.Days)
	return func() time.Time { return end }
}

// cutBatches splits the records into contiguous runs of roughly the
// given time width — the ingest batches clients will post.
func cutBatches(recs []trace.Record, width time.Duration) [][]trace.Record {
	var batches [][]trace.Record
	for i := 0; i < len(recs); {
		cut := recs[i].Start.Add(width)
		j := i + 1
		for j < len(recs) && recs[j].Start.Before(cut) {
			j++
		}
		batches = append(batches, recs[i:j])
		i = j
	}
	return batches
}

// frameBatch encodes one batch as a b1 trace stream inside a dist wire
// frame — the /v1/ingest/batch body format.
func frameBatch(t testing.TB, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, recs, trace.FormatBinary); err != nil {
		t.Fatalf("encoding batch: %v", err)
	}
	return dist.EncodeFrame(buf.Bytes())
}

// postBatch posts one framed batch to a running daemon and fails the
// test on any non-200 outcome.
func postBatch(t testing.TB, url string, body []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/ingest/batch: %v", err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ingest/batch: status %d: %s", resp.StatusCode, out)
	}
}

// getBody GETs a daemon URL and returns the body, failing on non-200.
func getBody(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// sliceBaseline renders the offline slice-path report for the records.
func sliceBaseline(recs []trace.Record, opts core.Options) string {
	m := core.New(opts)
	m.AddAll(recs)
	return core.RenderReport(m.Report())
}

// TestMigdIngestEquivalence is the daemon's acceptance test: the golden
// trace is cut into batches, the batches are shuffled and posted by
// concurrent clients in interleaved order, and /v1/report must come
// back byte-identical to the offline slice path over the same records —
// for one, two, and eight clients, with and without a pinned calendar
// origin.
func TestMigdIngestEquivalence(t *testing.T) {
	res := daemonFixture(t)
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"pinned-origin", core.Options{Start: res.Config.Start, Days: res.Config.Days}},
		{"derived-origin", core.Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := sliceBaseline(res.Records, tc.opts)
			for _, clients := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("clients=%d", clients), func(t *testing.T) {
					s, err := NewServer(Config{
						Opts:          tc.opts,
						ShardDuration: 5 * 24 * time.Hour,
						Now:           fixedClock(res),
					})
					if err != nil {
						t.Fatal(err)
					}
					hs := httptest.NewServer(s)
					defer hs.Close()

					batches := cutBatches(res.Records, 3*24*time.Hour)
					rng := rand.New(rand.NewSource(int64(clients)))
					rng.Shuffle(len(batches), func(i, j int) {
						batches[i], batches[j] = batches[j], batches[i]
					})
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							for i := c; i < len(batches); i += clients {
								postBatch(t, hs.URL, frameBatch(t, batches[i]))
							}
						}(c)
					}
					wg.Wait()

					got := string(getBody(t, hs.URL+"/v1/report"))
					if got != want {
						t.Fatalf("live report diverges from the slice path (%d vs %d bytes)", len(got), len(want))
					}
				})
			}
		})
	}
}

// TestMigdSingleIngest covers the unframed /v1/ingest body, the live
// per-file verdicts, and the stats counters on a tiny hand-posted
// trace.
func TestMigdSingleIngest(t *testing.T) {
	res := daemonFixture(t)
	s, err := NewServer(Config{Now: fixedClock(res)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	recs := res.Records[:25]
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, recs, trace.FormatBinary); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/ingest", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ingest: status %d", resp.StatusCode)
	}

	st := s.StatsNow()
	if st.Records != int64(len(recs)) {
		t.Fatalf("stats records = %d, want %d", st.Records, len(recs))
	}
	var path string
	for i := range recs {
		if recs[i].OK() {
			path = recs[i].MSSPath
			break
		}
	}
	fs, ok := s.FileStatusAt(path, fixedClock(res)())
	if !ok {
		t.Fatalf("file %q missing from the live table", path)
	}
	if fs.Reads+fs.Writes == 0 || fs.Verdict == "" {
		t.Fatalf("degenerate file status: %+v", fs)
	}
	body := getBody(t, hs.URL+"/v1/file"+path)
	if !bytes.Contains(body, []byte(`"verdict"`)) {
		t.Fatalf("/v1/file answer lacks a verdict: %s", body)
	}
	if got := getBody(t, hs.URL+"/v1/stats"); !bytes.Contains(got, []byte(`"records"`)) {
		t.Fatalf("/v1/stats answer lacks counters: %s", got)
	}
}

// TestMigdIngestRejectsCorruptBatch proves a damaged batch is rejected
// whole: a truncated or bit-flipped frame changes nothing, and the
// error names the problem.
func TestMigdIngestRejectsCorruptBatch(t *testing.T) {
	res := daemonFixture(t)
	s, err := NewServer(Config{Now: fixedClock(res)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	frame := frameBatch(t, res.Records[:100])
	for name, bad := range map[string][]byte{
		"truncated": frame[:len(frame)-7],
		"bitflip":   append(append([]byte(nil), frame[:60]...), frame[60:]...),
	} {
		if name == "bitflip" {
			bad[60] ^= 0x01
		}
		resp, err := http.Post(hs.URL+"/v1/ingest/batch", "application/octet-stream", bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s batch: status %d, want 400", name, resp.StatusCode)
		}
		if !bytes.Contains(msg, []byte("frame")) {
			t.Fatalf("%s batch: error does not name the frame: %s", name, msg)
		}
	}
	if st := s.StatsNow(); st.Records != 0 {
		t.Fatalf("corrupt batches must apply nothing, but %d records landed", st.Records)
	}
}

// TestMigdCheckpointResume kills a daemon mid-ingest and proves the
// checkpoint resumes it exactly: a new daemon restored from the latest
// checkpoint plus the replayed tail renders the same report — and the
// same per-file answers — as one that never died. The restored state
// must also re-checkpoint byte-identically before new ingest touches
// it.
func TestMigdCheckpointResume(t *testing.T) {
	res := daemonFixture(t)
	opts := core.Options{Start: res.Config.Start, Days: res.Config.Days}
	want := sliceBaseline(res.Records, opts)
	now := fixedClock(res)
	ckpt := filepath.Join(t.TempDir(), "migd.ckpt")

	batches := cutBatches(res.Records, 4*24*time.Hour)
	if len(batches) < 6 {
		t.Fatalf("fixture cut into only %d batches", len(batches))
	}
	cut := len(batches) / 2

	cfg := Config{Opts: opts, ShardDuration: 6 * 24 * time.Hour, CheckpointPath: ckpt, Now: now}
	s1, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1)
	for _, b := range batches[:cut] {
		postBatch(t, hs1.URL, frameBatch(t, b))
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	probe := res.Records[0].MSSPath
	beforeKill, okBefore := s1.FileStatusAt(probe, now())
	hs1.Close() // the daemon dies here; batches[cut:] were never delivered

	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreCheckpoint(data); err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Resumed state is the checkpointed state, exactly: same counters,
	// same per-file answer, and a byte-identical re-checkpoint.
	if got, wantN := s2.StatsNow().Records, s1.StatsNow().Records; got != wantN {
		t.Fatalf("restored %d records, checkpoint covered %d", got, wantN)
	}
	if afterKill, ok := s2.FileStatusAt(probe, now()); ok != okBefore || afterKill != beforeKill {
		t.Fatalf("per-file answer changed across restore:\n before %+v\n after  %+v", beforeKill, afterKill)
	}
	resaved, err := s2.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved, data) {
		t.Fatal("restored state does not re-checkpoint byte-identically")
	}

	// The client replays the undelivered tail; the final report must be
	// the uninterrupted run's.
	hs2 := httptest.NewServer(s2)
	defer hs2.Close()
	for _, b := range batches[cut:] {
		postBatch(t, hs2.URL, frameBatch(t, b))
	}
	if got := string(getBody(t, hs2.URL+"/v1/report")); got != want {
		t.Fatalf("post-resume report diverges from the uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestMigdCheckpointCadence proves Config.CheckpointEvery writes
// checkpoints on its own as records flow.
func TestMigdCheckpointCadence(t *testing.T) {
	res := daemonFixture(t)
	ckpt := filepath.Join(t.TempDir(), "migd.ckpt")
	s, err := NewServer(Config{
		CheckpointPath:  ckpt,
		CheckpointEvery: 200,
		Now:             fixedClock(res),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cutBatches(res.Records[:600], 24*time.Hour) {
		s.Ingest(b)
	}
	if n := s.StatsNow().Checkpoints; n == 0 {
		t.Fatal("no cadence checkpoint was written")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
}

// TestMigdConcurrentQueries is the race stress test: ingest clients,
// report readers, and per-file/stat readers all hammer one daemon at
// once. Run under -race this proves the locking; the final report must
// still be exact.
func TestMigdConcurrentQueries(t *testing.T) {
	res := daemonFixture(t)
	opts := core.Options{Start: res.Config.Start, Days: res.Config.Days}
	want := sliceBaseline(res.Records, opts)
	s, err := NewServer(Config{Opts: opts, ShardDuration: 3 * 24 * time.Hour, Now: fixedClock(res)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	batches := cutBatches(res.Records, 2*24*time.Hour)
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(hs.URL + "/v1/report")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			path := res.Records[r].MSSPath
			for {
				select {
				case <-done:
					return
				default:
				}
				s.FileStatusAt(path, fixedClock(res)())
				s.StatsNow()
			}
		}(r)
	}

	clients := 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(batches); i += clients {
				postBatch(t, hs.URL, frameBatch(t, batches[i]))
			}
		}(c)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	if got := string(getBody(t, hs.URL+"/v1/report")); got != want {
		t.Fatalf("report after concurrent load diverges (%d vs %d bytes)", len(got), len(want))
	}
}

// FuzzMigdIngestFrame fuzzes the batch ingest body decoder end to end
// through the HTTP handler: arbitrary bodies must produce a clean 200
// or 400, never a panic, and a non-200 must leave the daemon empty.
func FuzzMigdIngestFrame(f *testing.F) {
	base := time.Date(1992, 1, 6, 9, 0, 0, 0, time.UTC)
	mk := func(n int) []byte {
		recs := make([]trace.Record, n)
		for i := range recs {
			recs[i] = trace.Record{
				Start:     base.Add(time.Duration(i) * time.Minute),
				Op:        trace.Read,
				Device:    device.ClassDisk,
				Size:      4096,
				MSSPath:   fmt.Sprintf("/mss/u/f%d", i%3),
				LocalPath: fmt.Sprintf("/tmp/f%d", i%3),
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteAllFormat(&buf, recs, trace.FormatBinary); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	good := dist.EncodeFrame(mk(5))
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte("#dist-frame f1\n"))
	f.Add(mk(2)) // unframed stream on the framed endpoint
	f.Add([]byte{})
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)

	now := func() time.Time { return base.AddDate(0, 0, 30) }
	f.Fuzz(func(t *testing.T, body []byte) {
		s, err := NewServer(Config{Now: now})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK:
			if _, err := s.Report(); err != nil {
				t.Fatalf("accepted body, broken report: %v", err)
			}
		case http.StatusBadRequest:
			if n := s.StatsNow().Records; n != 0 {
				t.Fatalf("rejected body left %d records behind", n)
			}
		default:
			t.Fatalf("unexpected status %d", w.Code)
		}
	})
}
