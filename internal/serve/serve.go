// Package serve implements migd, the live ingest daemon over the
// unified online accumulator in internal/core. The daemon holds the
// trace as a set of core.Partial segments — one per contiguous run of
// ingested records, striped across time shards for lock locality — and
// derives every answer from them:
//
//   - POST /v1/ingest and /v1/ingest/batch decode a trace-stream body
//     (the batch variant wrapped in the internal/dist CRC frame),
//     validate it fully, and only then observe it into segment state;
//   - GET /v1/report merges every segment's journal back into global
//     time order inside a fresh accumulator (Accumulator.FoldPartials)
//     and renders the full op×class report — byte-identical to the
//     offline slice path over the same records;
//   - GET /v1/file/{path} answers migrate/keep/prefetch for one file
//     from the live per-file table and the STP rank of internal/migration;
//   - POST /v1/checkpoint (and the record-count cadence in
//     Config.CheckpointEvery) serializes each segment with the s1
//     snapshot codec inside a dist frame, so a restarted daemon resumes
//     exactly.
//
// The package is policed by miglint's determinism analyzers: it never
// reads the wall clock (the clock is injected via Config.Now — cmd/migd
// passes internal/host's) and never ranges a map in an order that could
// reach its outputs.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"filemig/internal/core"
	"filemig/internal/units"
)

// DefaultShardDuration is the time width of one ingest shard when
// Config.ShardDuration is zero: wide enough that a steady trace touches
// one lock stripe at a time, narrow enough that backfill and live
// traffic do not contend.
const DefaultShardDuration = 7 * 24 * time.Hour

// DefaultMigrateAfter is the idle age at which /v1/file recommends
// migration when Config.MigrateAfter is zero — a week, the knee of the
// paper's Figure 8 interreference distribution.
const DefaultMigrateAfter = 7 * 24 * time.Hour

// defaultSTPK is the space-time-product exponent the paper's cache
// study favors, used when Config.STPK is zero.
const defaultSTPK = 1.4

// Config parameterizes a Server.
type Config struct {
	// Opts configures every segment accumulator and the report master.
	// Tree must be nil: a live daemon has no full-namespace snapshot.
	// Journal is forced on for segments regardless of its value here.
	Opts core.Options

	// ShardDuration is the time width of one ingest shard (a lock
	// stripe over segments). Zero means DefaultShardDuration.
	ShardDuration time.Duration

	// CheckpointPath is where Checkpoint atomically writes the daemon's
	// state. Empty disables checkpointing.
	CheckpointPath string

	// CheckpointEvery triggers a checkpoint after that many ingested
	// records since the last one. Zero disables the cadence; explicit
	// POST /v1/checkpoint still works. Wall-clock cadence is the
	// caller's job (cmd/migd runs a ticker), keeping this package free
	// of timers.
	CheckpointEvery int64

	// Now supplies the wall clock for /v1/file verdicts; required.
	// cmd/migd injects internal/host's clock, tests a fixed one. A
	// request may override it with an explicit ?now= instant.
	Now func() time.Time

	// STPK is the exponent of the STP rank reported by /v1/file.
	// Zero means 1.4.
	STPK float64

	// MigrateAfter is the idle age at which /v1/file says "migrate".
	// Zero means DefaultMigrateAfter.
	MigrateAfter time.Duration

	// Logf, when set, receives operational messages (background
	// checkpoint failures). Nil discards them.
	Logf func(format string, args ...any)
}

// segment is one live Partial plus its checkpoint cache: enc holds the
// segment's encoded checkpoint frame from the last checkpoint, valid
// while dirty is false, so an idle segment is never re-serialized.
type segment struct {
	p     *core.Partial
	seq   int64 // creation order, tie-break for equal first instants
	dirty bool
	enc   []byte
}

// shard is one time stripe of segments. Its mutex serializes appends by
// concurrent ingests that land in the same stripe. lastSeg is the
// segment holding the stripe's latest record (maxLast): a run may only
// extend that segment, never an earlier one — extending a segment that
// another segment's records postdate would weave an overlap that the
// fold would later reject.
type shard struct {
	mu      sync.Mutex
	segs    []*segment
	lastSeg *segment
	maxLast time.Time
}

// noteBounds updates the stripe's latest-record bookkeeping after sg
// observed records. The caller holds the stripe mutex.
func (sh *shard) noteBounds(sg *segment) {
	_, last := sg.p.Bounds()
	if sh.lastSeg == nil || last.After(sh.maxLast) {
		sh.lastSeg = sg
		sh.maxLast = last
	}
}

// fileState is the live per-file table entry behind /v1/file.
type fileState struct {
	size        units.Bytes
	reads       int64
	writes      int64
	first, last time.Time
}

// Server is the migd daemon state and its http.Handler. The zero value
// is not usable; construct with NewServer.
type Server struct {
	cfg          Config
	shardDur     time.Duration
	stpK         float64
	migrateAfter time.Duration
	mux          *http.ServeMux

	// mu is the big ingest/fold lock: ingest holds it shared (many
	// batches in flight, each serialized per shard below), report and
	// checkpoint hold it exclusive so they see every segment quiescent.
	mu       sync.RWMutex
	shardsMu sync.Mutex
	shards   map[int64]*shard

	filesMu sync.RWMutex
	files   map[string]*fileState

	records     atomic.Int64
	errRecords  atomic.Int64
	segCount    atomic.Int64
	segSeq      atomic.Int64
	sinceCkpt   atomic.Int64
	checkpoints atomic.Int64
}

// NewServer builds a Server from cfg. It validates that the clock is
// injected and that the analysis options fit a live daemon.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Now == nil {
		return nil, errors.New("serve: Config.Now is required (inject internal/host's clock)")
	}
	if cfg.Opts.Tree != nil {
		return nil, errors.New("serve: a live daemon cannot carry a namespace Tree")
	}
	s := &Server{
		cfg:          cfg,
		shardDur:     cfg.ShardDuration,
		stpK:         cfg.STPK,
		migrateAfter: cfg.MigrateAfter,
		shards:       map[int64]*shard{},
		files:        map[string]*fileState{},
	}
	if s.shardDur <= 0 {
		s.shardDur = DefaultShardDuration
	}
	if s.stpK == 0 {
		s.stpK = defaultSTPK
	}
	if s.migrateAfter <= 0 {
		s.migrateAfter = DefaultMigrateAfter
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/batch", s.handleIngestBatch)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/file/", s.handleFile)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// shardKey maps a record instant to its shard stripe: floor division of
// the Unix epoch offset by the shard duration.
func (s *Server) shardKey(t time.Time) int64 {
	d := int64(s.shardDur)
	n := t.UnixNano()
	k := n / d
	if n < 0 && n%d != 0 {
		k--
	}
	return k
}

// getShard returns the stripe for key k, creating it on first use.
func (s *Server) getShard(k int64) *shard {
	s.shardsMu.Lock()
	defer s.shardsMu.Unlock()
	sh := s.shards[k]
	if sh == nil {
		sh = &shard{}
		s.shards[k] = sh
	}
	return sh
}

// orderedSegments returns every segment sorted into trace order: by
// first observed instant, creation order breaking exact ties. The
// caller must hold mu exclusively.
func (s *Server) orderedSegments() []*segment {
	s.shardsMu.Lock()
	keys := make([]int64, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	s.shardsMu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var segs []*segment
	for _, k := range keys {
		segs = append(segs, s.shards[k].segs...)
	}
	sort.SliceStable(segs, func(i, j int) bool {
		fi, _ := segs[i].p.Bounds()
		fj, _ := segs[j].p.Bounds()
		if !fi.Equal(fj) {
			return fi.Before(fj)
		}
		return segs[i].seq < segs[j].seq
	})
	return segs
}

// Accumulate folds every segment, in trace order, into a fresh master
// accumulator — the exact state the offline slice path would hold after
// analyzing the concatenated records.
func (s *Server) Accumulate() (*core.Accumulator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accumulateLocked()
}

// accumulateLocked is Accumulate with mu already held exclusively.
func (s *Server) accumulateLocked() (*core.Accumulator, error) {
	opts := s.cfg.Opts
	opts.Journal = false
	m := core.NewAccumulator(opts)
	segs := s.orderedSegments()
	ps := make([]*core.Partial, len(segs))
	for i, sg := range segs {
		ps[i] = sg.p
	}
	if err := m.FoldPartials(ps); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return m, nil
}

// Report renders the full op×class report over everything ingested so
// far — the same bytes the offline pipeline renders for the same
// records.
func (s *Server) Report() (string, error) {
	m, err := s.Accumulate()
	if err != nil {
		return "", err
	}
	return core.RenderReport(m.Report()), nil
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
