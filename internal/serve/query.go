package serve

import (
	"net/http"
	"strings"
	"time"

	"filemig/internal/migration"
	"filemig/internal/units"
)

// FileStatus is the /v1/file answer for one file: its live table row,
// the STP rank a migration sweep would use, and the verdict.
type FileStatus struct {
	// Path is the file's MSS path.
	Path string `json:"path"`
	// Size is the file's size in bytes as of its latest reference.
	Size int64 `json:"size"`
	// Reads and Writes count the file's good references since the
	// daemon's trace began.
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// First and Last are the instants of the file's first and latest
	// references.
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// IdleSeconds is the age of the latest reference at the query
	// instant.
	IdleSeconds float64 `json:"idle_seconds"`
	// Rank is the space-time-product eviction rank, pow(idle_days, K) *
	// size — higher ranks migrate first.
	Rank float64 `json:"rank"`
	// Verdict is "migrate", "prefetch", or "keep".
	Verdict string `json:"verdict"`
}

// FileStatusAt computes the /v1/file answer for one path at the given
// instant. The second result reports whether the file has ever been
// referenced.
func (s *Server) FileStatusAt(path string, now time.Time) (FileStatus, bool) {
	s.filesMu.RLock()
	f := s.files[path]
	if f == nil {
		s.filesMu.RUnlock()
		return FileStatus{}, false
	}
	st := FileStatus{
		Path:   path,
		Size:   int64(f.size),
		Reads:  f.reads,
		Writes: f.writes,
		First:  f.first,
		Last:   f.last,
	}
	s.filesMu.RUnlock()

	refs := st.Reads + st.Writes
	idle := now.Sub(st.Last)
	if idle < 0 {
		idle = 0
	}
	st.IdleSeconds = idle.Seconds()
	st.Rank = migration.STP{K: s.stpK}.Rank(&migration.CachedFile{
		Size:     units.Bytes(st.Size),
		Inserted: st.First,
		LastRef:  st.Last,
		Refs:     int(refs),
	}, now)

	// The verdict: a file idle past the migration age goes to tape; a
	// file inside the age but already past its mean interreference gap
	// is due for its next access and worth staging (the paper's Figure 8
	// rereference argument); everything else simply stays.
	switch {
	case idle >= s.migrateAfter:
		st.Verdict = "migrate"
	case refs >= 2 && idle >= st.Last.Sub(st.First)/time.Duration(refs-1):
		st.Verdict = "prefetch"
	default:
		st.Verdict = "keep"
	}
	return st, true
}

// handleFile serves GET /v1/file/{path}: the live migrate/keep/prefetch
// verdict for one file. The query instant defaults to the injected
// clock; ?now=RFC3339 overrides it.
func (s *Server) handleFile(w http.ResponseWriter, req *http.Request) {
	path := strings.TrimPrefix(req.URL.Path, "/v1/file")
	if path == "" || path == "/" {
		http.Error(w, "serve: no file path in URL (want /v1/file/<mss path>)", http.StatusBadRequest)
		return
	}
	now := s.cfg.Now()
	if q := req.URL.Query().Get("now"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			http.Error(w, "serve: bad now instant: "+err.Error(), http.StatusBadRequest)
			return
		}
		now = t
	}
	st, ok := s.FileStatusAt(path, now.UTC())
	if !ok {
		http.Error(w, "serve: no such file in the live table: "+path, http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// handleReport serves GET /v1/report: the full rendered op×class
// report over everything ingested so far.
func (s *Server) handleReport(w http.ResponseWriter, req *http.Request) {
	text, err := s.Report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(text))
}

// Stats is the /v1/stats answer: the daemon's live counters.
type Stats struct {
	// Records counts every ingested record, errors included; Errors
	// counts the error records among them.
	Records int64 `json:"records"`
	Errors  int64 `json:"errors"`
	// Files is the live per-file table size.
	Files int64 `json:"files"`
	// Shards and Segments describe the in-memory partition: time
	// stripes, and contiguous accumulation segments across them.
	Shards   int64 `json:"shards"`
	Segments int64 `json:"segments"`
	// Checkpoints counts completed checkpoints since start.
	Checkpoints int64 `json:"checkpoints"`
}

// StatsNow snapshots the live counters.
func (s *Server) StatsNow() Stats {
	s.filesMu.RLock()
	files := int64(len(s.files))
	s.filesMu.RUnlock()
	s.shardsMu.Lock()
	shards := int64(len(s.shards))
	s.shardsMu.Unlock()
	return Stats{
		Records:     s.records.Load(),
		Errors:      s.errRecords.Load(),
		Files:       files,
		Shards:      shards,
		Segments:    s.segCount.Load(),
		Checkpoints: s.checkpoints.Load(),
	}
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, s.StatsNow())
}
