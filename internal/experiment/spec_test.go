package experiment

import (
	"strings"
	"testing"
)

func TestParseAndNormalize(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
		"name": "t",
		"scenarios": ["paper-1993", "archive-coldscan"],
		"scale": 0.002, "seed": 9, "days": 30,
		"policies": ["stp:1.4", "opt", "random:7"],
		"stpExponents": [1.4, 2.0],
		"capacities": [0.01, 0.05],
		"workers": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	// The 1.4 exponent duplicates the explicit stp:1.4 and is dropped;
	// 2.0 lands as a fourth column.
	want := []string{"STP^1.4", "OPT", "random:7", "STP^2"}
	if got := strings.Join(plan.Policies, ","); got != strings.Join(want, ",") {
		t.Errorf("policies %s, want %s", got, strings.Join(want, ","))
	}
	if plan.Cells() != 2*4*2 {
		t.Errorf("cells %d, want 16", plan.Cells())
	}
	if !strings.Contains(plan.Describe(), "2 sources × 4 policies × 2 capacities") {
		t.Errorf("Describe missing grid shape:\n%s", plan.Describe())
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	// "polices" is a deliberate misspelling of "policies": the point of
	// DisallowUnknownFields is exactly that a typo'd field name fails
	// loudly instead of silently running the default policy set.
	if _, err := Parse(strings.NewReader(`{"name":"t","polices":["lru"]}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
	// A field that was never close to valid is rejected the same way.
	if _, err := Parse(strings.NewReader(`{"name":"t","frobnicate":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse(strings.NewReader(`{"name":"t"}{"name":"u"}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	n := (Spec{Name: "d"}).Normalize()
	if err := n.Validate(); err != nil {
		t.Fatalf("defaults do not validate: %v", err)
	}
	if len(n.Scenarios) != 1 || n.Scenarios[0] != "paper-1993" {
		t.Errorf("default scenarios %v", n.Scenarios)
	}
	if n.Scale != DefaultScale || n.Seed != DefaultSeed {
		t.Errorf("default scale/seed %v/%d", n.Scale, n.Seed)
	}
	if len(n.Policies) != len(DefaultPolicies) || len(n.Capacities) != len(DefaultCapacities) {
		t.Errorf("default policies/capacities %v/%v", n.Policies, n.Capacities)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() Spec {
		return (Spec{Name: "v", Scenarios: []string{"paper-1993"}}).Normalize()
	}
	cases := []struct {
		label  string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = " " }},
		{"unknown scenario", func(s *Spec) { s.Scenarios = []string{"paper-2093"} }},
		{"duplicate scenario", func(s *Spec) { s.Scenarios = []string{"paper-1993", "paper-1993"} }},
		{"scale zero", func(s *Spec) { s.Scale = -0.5 }},
		{"scale above one", func(s *Spec) { s.Scale = 1.5 }},
		{"short days", func(s *Spec) { s.Days = 3 }},
		{"unknown policy", func(s *Spec) { s.Policies = []string{"mru"} }},
		{"bad stp arg", func(s *Spec) { s.Policies = []string{"stp:fast"} }},
		{"arg on lru", func(s *Spec) { s.Policies = []string{"lru:2"} }},
		{"duplicate policy", func(s *Spec) { s.Policies = []string{"lru", "lru"} }},
		{"duplicate random seed", func(s *Spec) { s.Policies = []string{"random", "random:1"} }},
		{"missing trace file", func(s *Spec) { s.Trace = "no/such/trace.v1" }},
		{"zero capacity", func(s *Spec) { s.Capacities = []float64{0.01, 0} }},
		{"negative exponent", func(s *Spec) { s.STPExponents = []float64{-1} }},
		{"negative workers", func(s *Spec) { s.Workers = -2 }},
	}
	for _, c := range cases {
		s := base()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.label)
		}
	}
	s := base()
	if err := s.Validate(); err != nil {
		t.Errorf("base spec rejected: %v", err)
	}
}

func TestPolicyGrammar(t *testing.T) {
	for _, good := range []string{"stp", "stp:0.5", "lru", "fifo", "saac",
		"largest-first", "smallest-first", "random", "random:42", "opt",
		"arc", "lruk", "lruk:1", "lruk:3", "gdsf", "cost", "cost:4", "stp-adapt"} {
		if _, err := parsePolicy(good); err != nil {
			t.Errorf("%s rejected: %v", good, err)
		}
	}
	// The modern defaults carry their argument in the display name.
	for spec, want := range map[string]string{
		"arc": "ARC", "lruk": "LRU-2", "lruk:3": "LRU-3", "gdsf": "GDSF",
		"cost": "cost:2", "cost:40": "cost:40", "stp-adapt": "STP-adapt",
	} {
		if e, err := parsePolicy(spec); err != nil || e.name != want {
			t.Errorf("parsePolicy(%q) = %q, %v; want %q", spec, e.name, err, want)
		}
	}
	// Two random seeds are distinct grid columns.
	r1, _ := parsePolicy("random")
	r7, _ := parsePolicy("random:7")
	if r1.name != "random:1" || r7.name != "random:7" {
		t.Errorf("random names %q, %q — seed not in display name", r1.name, r7.name)
	}
	// STP labels are lossless: exponents that agree to two decimals stay
	// distinct columns (STP.Name() would truncate both to STP^1.25).
	s := Spec{Name: "k", Policies: []string{"stp:1.251", "stp:1.259"},
		STPExponents: []float64{1.251, 1.2590001}}
	entries, err := s.policySet()
	if err != nil {
		t.Fatalf("close exponents rejected: %v", err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.name] = true
	}
	if len(names) != 3 {
		t.Errorf("policy set %v, want 3 distinct lossless STP names", names)
	}
	for _, bad := range []string{"", "stp:", "stp:-1", "random:x", "opt:1", "clock",
		"arc:1", "lruk:0", "lruk:-2", "lruk:1.5", "lruk:x", "gdsf:2",
		"cost:0", "cost:-1", "cost:2.5", "stp-adapt:1.4"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
