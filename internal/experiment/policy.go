package experiment

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"filemig/internal/migration"
)

// Policy grammar: a spec names each policy as "name" or "name:arg".
// Parsing happens at validation time so a bad spec fails before any
// trace is generated; instantiation happens per cell at run time, since
// stateful policies (random, opt) must never be shared between replays.

// policyEntry is one resolved policy column of the grid: its canonical
// display name and a factory that, given the source's access string,
// yields a fresh policy instance per cell.
type policyEntry struct {
	name  string
	build func(accs []migration.Access) func() migration.Policy
}

// stateless wraps a value policy (no per-replay state) as a policyEntry.
func stateless(p migration.Policy) policyEntry {
	return policyEntry{name: p.Name(), build: func([]migration.Access) func() migration.Policy {
		return func() migration.Policy { return p }
	}}
}

// stpEntry builds an STP column with a lossless display name:
// STP.Name() truncates the exponent to two decimals, which would make
// distinct exponents like 1.251 and 1.259 collide in dedup and carry
// identical grid labels. For the usual exponents the rendering matches
// STP.Name() exactly.
func stpEntry(k float64) policyEntry {
	e := stateless(migration.STP{K: k})
	e.name = "STP^" + strconv.FormatFloat(k, 'g', -1, 64)
	return e
}

// parsePolicy resolves one policy spec string.
func parsePolicy(spec string) (policyEntry, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(spec), ":")
	switch name {
	case "stp":
		k := 1.4
		if hasArg {
			var err error
			k, err = strconv.ParseFloat(arg, 64)
			if err != nil || k < 0 || math.IsNaN(k) || math.IsInf(k, 0) {
				return policyEntry{}, fmt.Errorf("experiment: bad STP exponent %q in %q", arg, spec)
			}
		}
		return stpEntry(k), nil
	case "lru":
		return noArg(spec, hasArg, stateless(migration.LRU{}))
	case "fifo":
		return noArg(spec, hasArg, stateless(migration.FIFO{}))
	case "saac":
		return noArg(spec, hasArg, stateless(migration.SAAC{}))
	case "largest-first":
		return noArg(spec, hasArg, stateless(migration.LargestFirst{}))
	case "smallest-first":
		return noArg(spec, hasArg, stateless(migration.SmallestFirst{}))
	case "random":
		seed := int64(1)
		if hasArg {
			var err error
			if seed, err = strconv.ParseInt(arg, 10, 64); err != nil {
				return policyEntry{}, fmt.Errorf("experiment: bad random seed %q in %q", arg, spec)
			}
		}
		// Every cell restarts the same seeded sequence, so the column
		// stays deterministic and cells stay independent. The display
		// name carries the seed (like STP carries its exponent) so two
		// seeds can share a grid and rows say which seed ran.
		return policyEntry{name: "random:" + strconv.FormatInt(seed, 10),
			build: func([]migration.Access) func() migration.Policy {
				return func() migration.Policy { return migration.NewRandom(seed) }
			}}, nil
	case "opt":
		// The future index carries per-replay cursors, so each cell
		// builds its own over the shared access string.
		return noArg(spec, hasArg, policyEntry{name: "OPT",
			build: func(accs []migration.Access) func() migration.Policy {
				return func() migration.Policy {
					return migration.NewOPT(migration.NewFutureIndex(accs))
				}
			}})
	case "arc":
		// ARC carries ghost lists and an adaptive target; NewCache hands
		// it the cell's capacity, so each cell needs a fresh instance.
		return noArg(spec, hasArg, statefulEntry("ARC",
			func() migration.Policy { return migration.NewARC() }))
	case "lruk":
		k := 2
		if hasArg {
			var err error
			if k, err = strconv.Atoi(arg); err != nil || k < 1 {
				return policyEntry{}, fmt.Errorf(
					"experiment: bad LRU-K depth %q in %q (want integer >= 1)", arg, spec)
			}
		}
		return statefulEntry("LRU-"+strconv.Itoa(k),
			func() migration.Policy { return migration.NewLRUK(k) }), nil
	case "gdsf":
		return noArg(spec, hasArg, statefulEntry("GDSF",
			func() migration.Policy { return migration.NewGDSF() }))
	case "cost":
		rate := migration.DefaultTapeRateMBps
		if hasArg {
			var err error
			if rate, err = strconv.Atoi(arg); err != nil || rate < 1 {
				return policyEntry{}, fmt.Errorf(
					"experiment: bad cost transfer rate %q in %q (want MB/s integer >= 1)", arg, spec)
			}
		}
		// The display name carries the rate (like random carries its
		// seed), so two rates can share a grid.
		return statefulEntry("cost:"+strconv.Itoa(rate),
			func() migration.Policy { return migration.NewCostAware(rate) }), nil
	case "stp-adapt":
		return noArg(spec, hasArg, statefulEntry("STP-adapt",
			func() migration.Policy { return migration.NewAdaptiveSTP() }))
	default:
		return policyEntry{}, fmt.Errorf("experiment: unknown policy %q (known: %s)",
			spec, strings.Join(PolicyNames(), ", "))
	}
}

// statefulEntry wraps a fresh-instance factory as a policyEntry: the
// modern policies (ARC, LRU-K, GDSF, cost, STP-adapt) all carry
// per-replay state — histories, ghost lists, clocks — so instances must
// never be shared between cells.
func statefulEntry(name string, mk func() migration.Policy) policyEntry {
	return policyEntry{name: name, build: func([]migration.Access) func() migration.Policy {
		return mk
	}}
}

// noArg rejects an argument on policies that take none.
func noArg(spec string, hasArg bool, e policyEntry) (policyEntry, error) {
	if hasArg {
		return policyEntry{}, fmt.Errorf("experiment: policy %q takes no argument", spec)
	}
	return e, nil
}

// PolicyNames lists the accepted policy spec names, in grammar order.
func PolicyNames() []string {
	return []string{"stp[:K]", "lru", "fifo", "saac", "largest-first",
		"smallest-first", "random[:seed]", "opt",
		"arc", "lruk[:K]", "gdsf", "cost[:K]", "stp-adapt"}
}

// policySet resolves the spec's policy axis: the explicit policies in
// order, then one STP^k per requested exponent, deduplicated by display
// name (an exponent that repeats an explicit stp entry is dropped; an
// explicit duplicate is an error).
func (s *Spec) policySet() ([]policyEntry, error) {
	var out []policyEntry
	seen := map[string]bool{}
	for _, p := range s.Policies {
		e, err := parsePolicy(p)
		if err != nil {
			return nil, err
		}
		if seen[e.name] {
			return nil, fmt.Errorf("experiment: policy %s listed twice", e.name)
		}
		seen[e.name] = true
		out = append(out, e)
	}
	for _, k := range s.STPExponents {
		e := stpEntry(k)
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: spec %s compares no policies", s.Name)
	}
	return out, nil
}
