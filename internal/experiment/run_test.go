package experiment

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"filemig/internal/trace"
	"filemig/internal/workload"
)

// testSpec is a small but structurally complete grid: two scenarios,
// a stateless, a stateful, and an offline policy, three capacities.
func testSpec() *Spec {
	return &Spec{
		Name:       "unit",
		Scenarios:  []string{"paper-1993", "checkpoint-restart"},
		Scale:      0.002,
		Seed:       5,
		Days:       45,
		Policies:   []string{"stp:1.4", "random:3", "opt"},
		Capacities: []float64{0.01, 0.02, 0.10},
	}
}

// TestManifestDeterminism is the package's core guarantee: the same spec
// and seed produce a byte-identical JSON manifest at any worker count.
func TestManifestDeterminism(t *testing.T) {
	var first []byte
	for _, workers := range []int{1, 4, 16} {
		spec := testSpec()
		spec.Workers = workers
		m, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("manifest differs between workers=1 and workers=%d", workers)
		}
	}
	if strings.Contains(string(first), `"workers"`) {
		t.Error("manifest echoes the workers execution knob")
	}
}

// TestModernManifestDeterminism extends the worker-count guarantee to
// the five stateful modern policies: every cell builds its own ARC
// ghost lists, LRU-K histories, greedy-dual clocks, and STP fits, so
// the manifest must stay byte-identical at workers 1, 2, and 8.
func TestModernManifestDeterminism(t *testing.T) {
	var first []byte
	for _, workers := range []int{1, 2, 8} {
		spec := &Spec{
			Name:       "modern",
			Scenarios:  []string{"paper-1993", "checkpoint-restart"},
			Scale:      0.002,
			Seed:       5,
			Days:       45,
			Policies:   []string{"arc", "lruk:2", "gdsf", "cost", "stp-adapt"},
			Capacities: []float64{0.01, 0.05, 0.10},
			Workers:    workers,
		}
		m, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, sr := range m.Scenarios {
			for _, row := range sr.Policies {
				for _, c := range row.Cells {
					if c.Evictions == 0 && c.CapacityFraction < 0.1 {
						t.Errorf("%s/%s@%v: no evictions; the grid exercises nothing",
							sr.Name, row.Policy, c.CapacityFraction)
					}
				}
			}
		}
		b, err := m.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("modern manifest differs between workers=1 and workers=%d", workers)
		}
	}
}

func TestManifestShape(t *testing.T) {
	m, err := Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.Grid != (GridSummary{Sources: 2, Policies: 3, Capacities: 3, Cells: 18}) {
		t.Fatalf("grid summary %+v", m.Grid)
	}
	if len(m.Scenarios) != 2 {
		t.Fatalf("%d scenario blocks", len(m.Scenarios))
	}
	for _, sr := range m.Scenarios {
		if sr.Records == 0 || sr.Accesses == 0 || sr.ReferencedBytes == 0 {
			t.Errorf("%s: empty provenance %+v", sr.Name, sr)
		}
		if len(sr.TraceSHA256) != 64 {
			t.Errorf("%s: trace hash %q", sr.Name, sr.TraceSHA256)
		}
		if len(sr.Policies) != 3 {
			t.Fatalf("%s: %d policy rows", sr.Name, len(sr.Policies))
		}
		for _, row := range sr.Policies {
			if len(row.Cells) != 3 {
				t.Fatalf("%s/%s: %d cells", sr.Name, row.Policy, len(row.Cells))
			}
			for _, c := range row.Cells {
				if c.Reads == 0 || c.CapacityBytes <= 0 {
					t.Errorf("%s/%s@%v: empty cell %+v", sr.Name, row.Policy, c.CapacityFraction, c)
				}
				if c.ReadHits+c.ReadMisses != c.Reads {
					t.Errorf("%s/%s@%v: hits %d + misses %d != reads %d",
						sr.Name, row.Policy, c.CapacityFraction, c.ReadHits, c.ReadMisses, c.Reads)
				}
			}
		}
		// Bigger caches never read-miss more under STP.
		stp := sr.Policies[0]
		for i := 1; i < len(stp.Cells); i++ {
			if stp.Cells[i].MissRatio > stp.Cells[i-1].MissRatio+1e-12 {
				t.Errorf("%s: STP miss ratio rose with capacity: %v -> %v",
					sr.Name, stp.Cells[i-1].MissRatio, stp.Cells[i].MissRatio)
			}
		}
	}
	// The two scenarios must have replayed different traces.
	if m.Scenarios[0].TraceSHA256 == m.Scenarios[1].TraceSHA256 {
		t.Error("both scenarios produced the same trace")
	}
	// Round trip: decode(encode) preserves the manifest.
	b, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("manifest does not round-trip through JSON")
	}
	if _, ok := m.Scenario("checkpoint-restart"); !ok {
		t.Error("Scenario lookup failed")
	}
	// Rendering mentions every axis.
	text := RenderManifest(m)
	for _, want := range []string{"2 sources × 3 policies × 3 capacities",
		"paper-1993", "checkpoint-restart", "STP^1.4", "OPT", "random"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered manifest missing %q:\n%s", want, text)
		}
	}
}

// TestTraceFileSource replays a trace file next to the scenario that
// generated it and checks both sources agree cell for cell. The scenario
// must be burst-free: the wire format carries whole seconds, and burst
// packing's sub-second offsets would be quantized on the file path.
func TestTraceFileSource(t *testing.T) {
	cfg, err := workload.ScenarioConfig("archive-coldscan", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Days = 45
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAll(f, res.Records); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := testSpec()
	spec.Scenarios = []string{"archive-coldscan"}
	spec.Trace = path
	m, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Scenarios) != 2 {
		t.Fatalf("%d sources, want scenario + trace", len(m.Scenarios))
	}
	gen, _ := m.Scenario("archive-coldscan")
	file, ok := m.Scenario(path)
	if !ok {
		t.Fatal("trace file block missing")
	}
	// Same records on both paths: identical hash and identical grid. The
	// one legitimate difference is PersonMinutesPerDay: the scenario
	// normalizes by its configured whole-day length, while a trace file's
	// span is measured from its records.
	if gen.TraceSHA256 != file.TraceSHA256 {
		t.Errorf("trace hash %s != generated %s", file.TraceSHA256, gen.TraceSHA256)
	}
	if file.Days <= 0 || file.Days > gen.Days {
		t.Errorf("file span %v days vs configured %v", file.Days, gen.Days)
	}
	for i, row := range gen.Policies {
		for j, c := range row.Cells {
			fc := file.Policies[i].Cells[j]
			c.PersonMinutesPerDay, fc.PersonMinutesPerDay = 0, 0
			if fc != c {
				t.Errorf("%s@%v: file cell differs from generated cell:\n  gen  %+v\n  file %+v",
					row.Policy, c.CapacityFraction, c, fc)
			}
		}
	}
}

func TestRunRejectsMissingTrace(t *testing.T) {
	spec := &Spec{Name: "gone", Trace: filepath.Join(t.TempDir(), "nope.txt")}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
