package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"filemig/internal/migration"
)

// The cell-level API behind distributed runs: a plan's grid flattened
// into an ordered task list (CellRefs), a runner that executes single
// cells against cached sources (CellRunner), and an assembler that
// folds a complete outcome set back into the exact manifest RunPlan
// would have produced (AssembleManifest). Every piece shares code with
// the local runner — loadSource, cellFrom, the policy entries — so a
// grid computed cell-by-cell on many machines is byte-identical to one
// computed in-process.

// CellRef names one grid cell by its axis indices into the plan's
// Sources, Policies and Capacities.
type CellRef struct {
	// Source indexes Plan.Sources.
	Source int `json:"source"`
	// Policy indexes Plan.Policies.
	Policy int `json:"policy"`
	// Capacity indexes Plan.Capacities.
	Capacity int `json:"capacity"`
}

// String renders the ref for error messages.
func (r CellRef) String() string {
	return fmt.Sprintf("cell(src=%d,pol=%d,cap=%d)", r.Source, r.Policy, r.Capacity)
}

// CellRefs flattens the grid into task order: source-major, then
// policy, then capacity — the same nesting RunPlan executes, so
// in-order results merge straight into a manifest.
func (p *Plan) CellRefs() []CellRef {
	out := make([]CellRef, 0, p.Cells())
	for s := range p.Sources {
		for pi := range p.Policies {
			for ci := range p.Capacities {
				out = append(out, CellRef{Source: s, Policy: pi, Capacity: ci})
			}
		}
	}
	return out
}

// CellID maps a ref to its task index in CellRefs order.
func (p *Plan) CellID(r CellRef) int {
	return (r.Source*len(p.Policies)+r.Policy)*len(p.Capacities) + r.Capacity
}

// validRef reports whether r is inside the grid.
func (p *Plan) validRef(r CellRef) bool {
	return r.Source >= 0 && r.Source < len(p.Sources) &&
		r.Policy >= 0 && r.Policy < len(p.Policies) &&
		r.Capacity >= 0 && r.Capacity < len(p.Capacities)
}

// Hash fingerprints the plan: the SHA-256 of its normalized spec's JSON
// with the Workers execution knob zeroed, so the same experiment hashes
// identically however it is run. Distributed runs use it to pair
// coordinators, workers, and journals.
func (p *Plan) Hash() (string, error) {
	spec := p.Spec
	spec.Workers = 0
	b, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}

// SourceInfo is one source's identity block: every cell computed from
// the source carries a copy, and a merger refuses to combine cells that
// disagree — two workers that somehow produced different reference
// strings cannot silently mix.
type SourceInfo struct {
	// Name is the scenario name, or the trace file path.
	Name string `json:"name"`
	// TraceSHA256 hashes the source trace's canonical v1 encoding.
	TraceSHA256 string `json:"traceSha256"`
	// Records counts trace records, error requests included.
	Records int `json:"records"`
	// Accesses counts the replayed reference string (errors skipped).
	Accesses int `json:"accesses"`
	// ReferencedBytes sums the distinct referenced files' sizes.
	ReferencedBytes int64 `json:"referencedBytes"`
	// Days is the trace span used for per-day rates.
	Days float64 `json:"days"`
}

// scenarioResult expands the identity block into a result header.
func (si SourceInfo) scenarioResult() ScenarioResult {
	return ScenarioResult{
		Name:            si.Name,
		TraceSHA256:     si.TraceSHA256,
		Records:         si.Records,
		Accesses:        si.Accesses,
		ReferencedBytes: si.ReferencedBytes,
		Days:            si.Days,
	}
}

// CellOutcome is one executed cell: the ref it answers, the identity of
// the source it replayed, and the resulting manifest cell.
type CellOutcome struct {
	// Ref names the cell.
	Ref CellRef `json:"ref"`
	// Source identifies the replayed source.
	Source SourceInfo `json:"source"`
	// Cell is the result.
	Cell Cell `json:"cell"`
}

// CellRunner executes single grid cells, loading (and caching) each
// source on first use so a worker serving many cells of one source
// generates and hashes its trace exactly once.
type CellRunner struct {
	plan *Plan

	mu   sync.Mutex
	srcs map[int]*loadedSource
}

// NewCellRunner returns a runner over the plan.
func NewCellRunner(plan *Plan) *CellRunner {
	return &CellRunner{plan: plan, srcs: map[int]*loadedSource{}}
}

// source returns the cached loaded source, loading it on first use.
func (cr *CellRunner) source(idx int) (*loadedSource, error) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if ls, ok := cr.srcs[idx]; ok {
		return ls, nil
	}
	ls, err := loadSource(cr.plan, idx)
	if err != nil {
		return nil, err
	}
	cr.srcs[idx] = ls
	return ls, nil
}

// RunCell executes one cell and returns its outcome. The replay itself
// is single-threaded; determinism is total, so re-running a ref always
// reproduces the same outcome.
func (cr *CellRunner) RunCell(ctx context.Context, ref CellRef) (CellOutcome, error) {
	if !cr.plan.validRef(ref) {
		return CellOutcome{}, fmt.Errorf("experiment: %v outside the %d×%d×%d grid",
			ref, len(cr.plan.Sources), len(cr.plan.Policies), len(cr.plan.Capacities))
	}
	ls, err := cr.source(ref.Source)
	if err != nil {
		return CellOutcome{}, err
	}
	mks := []func() migration.Policy{cr.plan.entries[ref.Policy].build(ls.accs)}
	sweeps, err := migration.MultiPolicySweepContext(ctx, ls.accs,
		[]float64{cr.plan.Capacities[ref.Capacity]}, mks, 1)
	if err != nil {
		return CellOutcome{}, err
	}
	return CellOutcome{
		Ref:    ref,
		Source: ls.info,
		Cell:   cellFrom(sweeps[0].Points[0], ls.info.Days),
	}, nil
}

// AssembleManifest folds a complete outcome set — one outcome per grid
// cell, in any order — into the manifest RunPlan would have produced.
// It verifies completeness, rejects duplicates, and requires every
// outcome of one source to carry an identical SourceInfo.
func AssembleManifest(plan *Plan, outcomes []CellOutcome) (*Manifest, error) {
	want := plan.Cells()
	byID := make([]*CellOutcome, want)
	for i := range outcomes {
		o := &outcomes[i]
		if !plan.validRef(o.Ref) {
			return nil, fmt.Errorf("experiment: assemble: %v outside the grid", o.Ref)
		}
		id := plan.CellID(o.Ref)
		if byID[id] != nil {
			return nil, fmt.Errorf("experiment: assemble: duplicate outcome for %v", o.Ref)
		}
		byID[id] = o
	}
	for id, o := range byID {
		if o == nil {
			return nil, fmt.Errorf("experiment: assemble: missing outcome for task %d of %d", id, want)
		}
	}
	m := &Manifest{
		Spec: plan.Spec,
		Grid: GridSummary{
			Sources:    len(plan.Sources),
			Policies:   len(plan.Policies),
			Capacities: len(plan.Capacities),
			Cells:      want,
		},
	}
	m.Spec.Workers = 0
	for s, name := range plan.Sources {
		base := s * len(plan.Policies) * len(plan.Capacities)
		info := byID[base].Source
		if info.Name != name {
			return nil, fmt.Errorf("experiment: assemble: source %d is %q in outcomes, %q in plan", s, info.Name, name)
		}
		sr := info.scenarioResult()
		for pi, pname := range plan.Policies {
			row := PolicyGrid{Policy: pname, Cells: make([]Cell, len(plan.Capacities))}
			for ci := range plan.Capacities {
				o := byID[base+pi*len(plan.Capacities)+ci]
				if o.Source != info {
					return nil, fmt.Errorf("experiment: assemble: %v disagrees on source %q identity "+
						"(trace %s vs %s) — workers replayed different reference strings",
						o.Ref, name, o.Source.TraceSHA256, info.TraceSHA256)
				}
				row.Cells[ci] = o.Cell
			}
			sr.Policies = append(sr.Policies, row)
		}
		m.Scenarios = append(m.Scenarios, sr)
	}
	return m, nil
}
