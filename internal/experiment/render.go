package experiment

import (
	"fmt"
	"strings"

	"filemig/internal/units"
)

// RenderManifest prints the manifest for humans: the grid shape, then
// one read-miss-ratio table per source with policies as rows and swept
// capacities as columns — the shape of the paper's §2.3/§6 comparisons.
func RenderManifest(m *Manifest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %s: %d sources × %d policies × %d capacities = %d cells\n",
		m.Spec.Name, m.Grid.Sources, m.Grid.Policies, m.Grid.Capacities, m.Grid.Cells)
	for i := range m.Scenarios {
		b.WriteString("\n")
		b.WriteString(RenderScenario(&m.Scenarios[i]))
	}
	return b.String()
}

// RenderScenario prints one source's block: the trace provenance line
// and its read-miss% grid.
func RenderScenario(sr *ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d records, %d accesses, %s referenced, %.0f days\n",
		sr.Name, sr.Records, sr.Accesses, units.Bytes(sr.ReferencedBytes), sr.Days)
	fmt.Fprintf(&b, "  trace sha256 %.16s…\n", sr.TraceSHA256)
	if len(sr.Policies) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "  %-16s", "read miss%")
	for _, c := range sr.Policies[0].Cells {
		fmt.Fprintf(&b, " %9.3g%%", 100*c.CapacityFraction)
	}
	b.WriteString("\n")
	for _, row := range sr.Policies {
		fmt.Fprintf(&b, "  %-16s", row.Policy)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %10.2f", 100*c.MissRatio)
		}
		b.WriteString("\n")
	}
	return b.String()
}
