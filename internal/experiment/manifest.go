package experiment

import (
	"encoding/json"

	"filemig/internal/migration"
)

// ExtraTapeLatency re-exports the §2.3 read-miss human cost the
// manifests' person-minutes figures are computed with.
const ExtraTapeLatency = migration.ExtraTapeLatency

// Manifest is one experiment's complete result: the normalized spec it
// ran (Workers zeroed — an execution knob, not a parameter), the grid
// dimensions, and one result block per workload source. Encoding the
// same manifest always yields the same bytes, and the runner fills every
// field deterministically, so one spec + seed pins one JSON document
// regardless of worker count or host.
type Manifest struct {
	// Spec echoes the normalized spec, for self-contained archives.
	Spec Spec `json:"spec"`
	// Grid summarises the executed dimensions.
	Grid GridSummary `json:"grid"`
	// Scenarios holds per-source results, in plan order.
	Scenarios []ScenarioResult `json:"scenarios"`
}

// GridSummary is the executed grid's shape.
type GridSummary struct {
	// Sources × Policies × Capacities = Cells.
	Sources    int `json:"sources"`
	Policies   int `json:"policies"`
	Capacities int `json:"capacities"`
	Cells      int `json:"cells"`
}

// ScenarioResult is one workload source's slice of the grid.
type ScenarioResult struct {
	// Name is the scenario name, or the trace file path.
	Name string `json:"name"`
	// TraceSHA256 hashes the source trace's canonical v1 encoding: two
	// manifests disagreeing here compared different reference strings.
	TraceSHA256 string `json:"traceSha256"`
	// Records counts trace records, error requests included.
	Records int `json:"records"`
	// Accesses counts the replayed reference string (errors skipped).
	Accesses int `json:"accesses"`
	// ReferencedBytes sums the distinct referenced files' sizes — the
	// base the capacity fractions multiply.
	ReferencedBytes int64 `json:"referencedBytes"`
	// Days is the trace span used for per-day rates.
	Days float64 `json:"days"`
	// Policies holds one row of cells per policy, in plan order.
	Policies []PolicyGrid `json:"policies"`
}

// PolicyGrid is one policy's row: a cell per swept capacity.
type PolicyGrid struct {
	// Policy is the display name ("STP^1.4", "LRU", ...).
	Policy string `json:"policy"`
	// Cells follow the spec's capacity order.
	Cells []Cell `json:"cells"`
}

// Cell is one replay: a (source, policy, capacity) grid point.
type Cell struct {
	// CapacityFraction is the swept fraction of referenced bytes.
	CapacityFraction float64 `json:"capacityFraction"`
	// CapacityBytes is the resulting cache size in bytes.
	CapacityBytes int64 `json:"capacityBytes"`
	// Reads, ReadHits and ReadMisses count read accesses; the paper's
	// figure of merit is ReadMisses/Reads.
	Reads      int64 `json:"reads"`
	ReadHits   int64 `json:"readHits"`
	ReadMisses int64 `json:"readMisses"`
	// WriteInserts counts writes landing in the cache.
	WriteInserts int64 `json:"writeInserts"`
	// Evictions counts migrations out of the cache.
	Evictions int64 `json:"evictions"`
	// StreamThroughs counts accesses to files too big to ever be
	// resident at this capacity.
	StreamThroughs int64 `json:"streamThroughs"`
	// BytesRead and BytesMissed are the byte-weighted counterparts.
	BytesRead   int64 `json:"bytesRead"`
	BytesMissed int64 `json:"bytesMissed"`
	// MissRatio is ReadMisses/Reads; ByteMissRatio is
	// BytesMissed/BytesRead.
	MissRatio     float64 `json:"missRatio"`
	ByteMissRatio float64 `json:"byteMissRatio"`
	// PersonMinutesPerDay is the §2.3 human cost: read misses times
	// ExtraTapeLatency, per trace day.
	PersonMinutesPerDay float64 `json:"personMinutesPerDay"`
}

// EncodeJSON renders the manifest as indented JSON with a trailing
// newline — the byte-stable machine-readable form migexp writes.
func (m *Manifest) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses a manifest previously written by EncodeJSON.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Scenario returns the named source's result block.
func (m *Manifest) Scenario(name string) (ScenarioResult, bool) {
	for _, s := range m.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return ScenarioResult{}, false
}
