package experiment

import (
	"fmt"
	"strings"
)

// Plan is a validated spec expanded into the grid the runner will
// execute: the source axis (scenarios, then the optional trace file),
// the resolved policy axis, and the capacity axis. Building a plan does
// all the failure-prone work — parsing, validation, policy resolution —
// without generating a single record, so `migexp validate` is instant.
type Plan struct {
	// Spec is the normalized spec the plan was built from.
	Spec Spec
	// Sources lists the workload sources in run order: scenario names
	// first, then the trace file path if the spec names one.
	Sources []string
	// Policies lists the resolved policy display names, in grid order.
	Policies []string
	// Capacities is the capacity axis, as fractions of referenced bytes.
	Capacities []float64

	entries []policyEntry
}

// BuildPlan normalizes and validates the spec and expands its grid.
func BuildPlan(spec *Spec) (*Plan, error) {
	n := spec.Normalize()
	entries, err := n.validate()
	if err != nil {
		return nil, err
	}
	p := &Plan{Spec: n, Capacities: n.Capacities, entries: entries}
	p.Sources = append(p.Sources, n.Scenarios...)
	if n.Trace != "" {
		p.Sources = append(p.Sources, n.Trace)
	}
	for _, e := range entries {
		p.Policies = append(p.Policies, e.name)
	}
	return p, nil
}

// Cells reports the number of grid cells the plan will replay.
func (p *Plan) Cells() int {
	return len(p.Sources) * len(p.Policies) * len(p.Capacities)
}

// Describe summarises the plan for humans, one line per axis.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %s: %d sources × %d policies × %d capacities = %d cells\n",
		p.Spec.Name, len(p.Sources), len(p.Policies), len(p.Capacities), p.Cells())
	fmt.Fprintf(&b, "  sources:    %s\n", strings.Join(p.Sources, ", "))
	fmt.Fprintf(&b, "  policies:   %s\n", strings.Join(p.Policies, ", "))
	caps := make([]string, len(p.Capacities))
	for i, c := range p.Capacities {
		caps[i] = fmt.Sprintf("%.3g%%", 100*c)
	}
	fmt.Fprintf(&b, "  capacities: %s\n", strings.Join(caps, ", "))
	if len(p.Spec.Scenarios) > 0 {
		fmt.Fprintf(&b, "  workload:   scale %g, seed %d", p.Spec.Scale, p.Spec.Seed)
		if p.Spec.Days > 0 {
			fmt.Fprintf(&b, ", %d days", p.Spec.Days)
		}
		b.WriteString("\n")
	}
	return b.String()
}
