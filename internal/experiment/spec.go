// Package experiment turns declarative experiment specs into executed
// result grids. The paper's results are all of one shape — replay a
// workload against a cache under several policies, capacities, and
// parameter settings, then compare figures of merit — and before this
// package every such grid lived as ad-hoc wiring in a command or an
// example. A spec names the workload scenarios (or a trace file), the
// policy set, the capacity sweep, and the STP exponents; the runner
// expands it into a plan, generates each scenario's trace exactly once,
// fans the policy × capacity cells over the bounded worker pool, and
// emits a deterministic manifest: the same spec and seed produce a
// byte-identical JSON document at any worker count.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Default knobs applied by Normalize when a spec omits the field.
var (
	// DefaultScenarios is the workload set used when a spec names
	// neither scenarios nor a trace file.
	DefaultScenarios = []string{"paper-1993"}
	// DefaultPolicies is the policy set used when a spec names neither
	// policies nor STP exponents — the §2.3 capacity-planning trio.
	DefaultPolicies = []string{"stp:1.4", "lru", "largest-first"}
	// DefaultCapacities is the §2.3 capacity sweep, as fractions of the
	// referenced data.
	DefaultCapacities = []float64{0.005, 0.01, 0.015, 0.02, 0.05, 0.10}
)

// DefaultScale is the workload scale used when a spec omits scale: 1% of
// the paper's two-year trace, the scale the repository's examples use.
const DefaultScale = 0.01

// DefaultSeed is the master seed used when a spec omits seed.
const DefaultSeed = 1

// Spec is a declarative experiment: one JSON document describing the
// full workload × policy × capacity × exponent grid. The zero value of
// every optional field means "use the default" (see Normalize); the
// docs/experiments.md reference describes each field, its default, and
// its validation rule.
type Spec struct {
	// Name identifies the experiment in the manifest. Required.
	Name string `json:"name"`
	// Description is free-form documentation echoed into the manifest.
	Description string `json:"description,omitempty"`

	// Scenarios names workload presets from the scenario library
	// (workload.Scenarios). Default: ["paper-1993"] when Trace is also
	// empty.
	Scenarios []string `json:"scenarios,omitempty"`
	// Trace is a trace file to replay as an additional source ("-" is
	// not supported: specs must be reproducible from disk). The file may
	// be in either trace encoding; it is re-encoded canonically for the
	// manifest hash.
	Trace string `json:"trace,omitempty"`

	// Scale sizes generated workloads relative to the paper's two-year
	// trace, in (0, 1]. Default 0.01.
	Scale float64 `json:"scale,omitempty"`
	// Seed is the master RNG seed for generated workloads. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Days shortens generated workloads from each scenario's own length
	// (the paper's 731 days) when positive. Minimum 7.
	Days int `json:"days,omitempty"`

	// Policies names the migration policies to compare. Grammar:
	// "stp[:K]", "lru", "fifo", "saac", "largest-first",
	// "smallest-first", "random[:seed]", "opt". Default (with no
	// STPExponents either): ["stp:1.4", "lru", "largest-first"].
	Policies []string `json:"policies,omitempty"`
	// STPExponents adds one STP^k policy per exponent — the Smith
	// ablation axis. Exponents duplicating an explicit stp policy are
	// ignored.
	STPExponents []float64 `json:"stpExponents,omitempty"`
	// Capacities is the cache sweep, as fractions of each source's
	// total referenced bytes. Default: the §2.3 sweep, 0.5% to 10%.
	Capacities []float64 `json:"capacities,omitempty"`

	// Workers bounds the replay worker pool. This package takes only
	// explicit counts (<= 1 runs serially); the migexp CLI resolves 0
	// to one worker per CPU at the boundary. An execution knob, not an
	// experiment parameter: it never changes results, and Run
	// normalizes it to zero in the manifest echo so manifests stay
	// byte-identical across worker counts.
	Workers int `json:"workers,omitempty"`
}

// Parse reads a JSON spec. Unknown fields are errors, so a typo'd knob
// fails loudly instead of silently running the default grid.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("experiment: parse spec: %w", err)
	}
	// A second document in the stream is almost certainly a mistake.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("experiment: trailing data after spec")
	}
	return &s, nil
}

// ParseFile reads a JSON spec from disk.
func ParseFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Normalize returns a copy with every omitted optional field replaced by
// its documented default. Validate (and therefore Run) operates on the
// normalized form.
func (s Spec) Normalize() Spec {
	if len(s.Scenarios) == 0 && s.Trace == "" {
		s.Scenarios = append([]string(nil), DefaultScenarios...)
	}
	if s.Scale == 0 {
		s.Scale = DefaultScale
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if len(s.Policies) == 0 && len(s.STPExponents) == 0 {
		s.Policies = append([]string(nil), DefaultPolicies...)
	}
	if len(s.Capacities) == 0 {
		s.Capacities = append([]float64(nil), DefaultCapacities...)
	}
	return s
}

// Validate checks a normalized spec against the rules documented in
// docs/experiments.md and reports the first violation.
func (s *Spec) Validate() error {
	_, err := s.validate()
	return err
}

// validate is Validate returning the resolved policy set, so BuildPlan
// can validate and resolve in one pass.
func (s *Spec) validate() ([]policyEntry, error) {
	if strings.TrimSpace(s.Name) == "" {
		return nil, fmt.Errorf("experiment: spec needs a name")
	}
	if len(s.Scenarios) == 0 && s.Trace == "" {
		return nil, fmt.Errorf("experiment: spec %s has no workload source (scenarios or trace)", s.Name)
	}
	seen := map[string]bool{}
	for _, name := range s.Scenarios {
		if _, err := scenarioConfig(name, 0.01, 1); err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("experiment: scenario %s listed twice", name)
		}
		seen[name] = true
	}
	if s.Trace != "" {
		// Catch a typo'd path at validation time: at run time the file
		// is loaded only after every scenario has already been swept.
		if _, err := os.Stat(s.Trace); err != nil {
			return nil, fmt.Errorf("experiment: trace file: %w", err)
		}
	}
	if !(s.Scale > 0 && s.Scale <= 1) {
		return nil, fmt.Errorf("experiment: scale %v out of (0, 1]", s.Scale)
	}
	if s.Days != 0 && s.Days < 7 {
		return nil, fmt.Errorf("experiment: days %d below the generator's 7-day minimum", s.Days)
	}
	for _, k := range s.STPExponents {
		if k < 0 || math.IsInf(k, 0) || math.IsNaN(k) {
			return nil, fmt.Errorf("experiment: STP exponent %v must be a non-negative number", k)
		}
	}
	entries, err := s.policySet()
	if err != nil {
		return nil, err
	}
	if len(s.Capacities) == 0 {
		return nil, fmt.Errorf("experiment: spec %s sweeps no capacities", s.Name)
	}
	for _, c := range s.Capacities {
		if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
			return nil, fmt.Errorf("experiment: capacity fraction %v must be a positive number", c)
		}
	}
	if s.Workers < 0 {
		return nil, fmt.Errorf("experiment: workers %d must be >= 0", s.Workers)
	}
	return entries, nil
}
