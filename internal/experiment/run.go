package experiment

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"time"

	"filemig/internal/migration"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

// scenarioConfig resolves a scenario name through the workload library;
// split out so validation can probe names without importing workload at
// every call site.
func scenarioConfig(name string, scale float64, seed int64) (workload.Config, error) {
	return workload.ScenarioConfig(name, scale, seed)
}

// Run executes the spec's full grid and returns its manifest: each
// source's trace is produced exactly once, hashed, and converted to the
// shared access string record by record (the trace itself is never
// materialized), and then every policy × capacity cell replays that
// string on the bounded worker pool. Results land by grid index, so the
// manifest is identical at any worker count. Cancelling ctx aborts
// between cells and surfaces ctx's error; it never changes results.
func Run(ctx context.Context, spec *Spec) (*Manifest, error) {
	plan, err := BuildPlan(spec)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, plan)
}

// RunPlan executes an already-built plan (see BuildPlan).
func RunPlan(ctx context.Context, plan *Plan) (*Manifest, error) {
	m := &Manifest{
		Spec: plan.Spec,
		Grid: GridSummary{
			Sources:    len(plan.Sources),
			Policies:   len(plan.Policies),
			Capacities: len(plan.Capacities),
			Cells:      plan.Cells(),
		},
	}
	// Workers tunes wall-clock only; zero it so the echoed spec (and the
	// whole manifest) is byte-identical across worker counts.
	m.Spec.Workers = 0
	for idx := range plan.Sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sr, err := runSource(ctx, plan, idx)
		if err != nil {
			return nil, err
		}
		m.Scenarios = append(m.Scenarios, sr)
	}
	return m, nil
}

// runSource loads one plan source and replays its full policy ×
// capacity slab on the worker pool.
func runSource(ctx context.Context, plan *Plan, idx int) (ScenarioResult, error) {
	ls, err := loadSource(plan, idx)
	if err != nil {
		return ScenarioResult{}, err
	}
	mks := make([]func() migration.Policy, len(plan.entries))
	for i, e := range plan.entries {
		mks[i] = e.build(ls.accs)
	}
	sweeps, err := migration.MultiPolicySweepContext(ctx, ls.accs, plan.Capacities, mks, plan.Spec.Workers)
	if err != nil {
		return ScenarioResult{}, err
	}
	sr := ls.info.scenarioResult()
	for si, sw := range sweeps {
		// Row names come from the resolved entries, not Policy.Name():
		// the entry name carries spec-level detail (a random seed) the
		// policy's own name does not.
		row := PolicyGrid{Policy: plan.entries[si].name, Cells: make([]Cell, len(sw.Points))}
		for i, pt := range sw.Points {
			row.Cells[i] = cellFrom(pt, ls.info.Days)
		}
		sr.Policies = append(sr.Policies, row)
	}
	return sr, nil
}

// loadedSource is one plan source in replay-ready form: its identity
// block and the shared access string every cell replays.
type loadedSource struct {
	info SourceInfo
	accs []migration.Access
}

// loadSource produces plan source idx: scenario sources are generated
// at the spec's scale, seed and length; the trailing trace source (if
// the spec names one) is streamed from disk.
func loadSource(plan *Plan, idx int) (*loadedSource, error) {
	if idx < 0 || idx >= len(plan.Sources) {
		return nil, fmt.Errorf("experiment: source index %d out of range [0, %d)", idx, len(plan.Sources))
	}
	name := plan.Sources[idx]
	if idx < len(plan.Spec.Scenarios) {
		cfg, err := scenarioConfig(name, plan.Spec.Scale, plan.Spec.Seed)
		if err != nil {
			return nil, err
		}
		if plan.Spec.Days > 0 {
			cfg.Days = plan.Spec.Days
		}
		gs, err := workload.GenerateStream(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: scenario %s: %w", name, err)
		}
		return drainSource(name, gs.Stream, float64(cfg.Days))
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	s, err := trace.OpenStream(f)
	if err != nil {
		return nil, fmt.Errorf("experiment: read %s: %w", name, err)
	}
	return drainSource(name, s, 0)
}

// drainSource drains one source's record stream — hashing the canonical
// encoding and building the shared access string on the fly, without
// holding the records. days <= 0 means "measure the span from the
// records".
func drainSource(name string, s trace.Stream, days float64) (*loadedSource, error) {
	h := sha256.New()
	var tw *trace.Writer
	in := trace.NewInterner()
	var accs []migration.Access
	records := 0
	var first, last time.Time
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("experiment: source %s: %w", name, err)
		}
		if tw == nil {
			// The canonical encoding anchors its wire epoch at the first
			// record (trace.WriteAll does the same), so streamed hashes
			// equal materialized ones.
			tw = trace.NewWriterEpoch(h, rec.Start)
			first = rec.Start
		}
		if err := tw.Write(&rec); err != nil {
			return nil, err
		}
		last = rec.Start
		records++
		accs = migration.AppendAccessInterned(in, accs, &rec)
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return nil, err
		}
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("experiment: source %s has no good accesses", name)
	}
	if days <= 0 {
		days = 1 // floor for degenerate spans, so per-day rates stay finite
		if records > 1 && last.After(first) {
			days = last.Sub(first).Hours() / 24
		}
	}
	return &loadedSource{
		info: SourceInfo{
			Name:            name,
			TraceSHA256:     fmt.Sprintf("%x", h.Sum(nil)),
			Records:         records,
			Accesses:        len(accs),
			ReferencedBytes: int64(migration.TotalReferencedBytes(accs)),
			Days:            days,
		},
		accs: accs,
	}, nil
}

// cellFrom converts one sweep point into its manifest cell — the single
// place the cell arithmetic lives, so a cell computed remotely (see
// CellRunner) is field-identical to one computed by RunPlan.
func cellFrom(pt migration.SweepPoint, days float64) Cell {
	r := pt.Result
	return Cell{
		CapacityFraction:    pt.CapacityFraction,
		CapacityBytes:       int64(r.Capacity),
		Reads:               r.Reads,
		ReadHits:            r.ReadHits,
		ReadMisses:          r.ReadMisses,
		WriteInserts:        r.WriteInserts,
		Evictions:           r.Evictions,
		StreamThroughs:      r.StreamThroughs,
		BytesRead:           int64(r.BytesRead),
		BytesMissed:         int64(r.BytesMissed),
		MissRatio:           r.MissRatio(),
		ByteMissRatio:       r.ByteMissRatio(),
		PersonMinutesPerDay: r.PersonMinutesPerDay(days, ExtraTapeLatency),
	}
}
