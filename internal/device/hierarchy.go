package device

import (
	"fmt"
	"strings"
	"time"

	"filemig/internal/units"
)

// Level is one tier of the storage pyramid (Figure 1). Cost and speed
// increase going up; capacity increases going down.
type Level struct {
	Name       string
	TypicalLat time.Duration // typical access latency
	CostPerGB  float64       // dollars per decimal GB (1992 prices)
	Capacity   units.Bytes   // typical installed capacity at a centre like NCAR
}

// Hierarchy returns the Figure 1 storage pyramid, top (fastest, smallest,
// most expensive) first, with representative 1992 figures drawn from the
// paper (§2, §3.1: 64 MW Cray memory, 56 GB Cray disk, 100 GB MSS disk,
// 1.2 TB silo, ~25 TB shelf tape).
func Hierarchy() []Level {
	return []Level{
		{Name: "CPU cache", TypicalLat: 10 * time.Nanosecond, CostPerGB: 1e6, Capacity: units.Bytes(4 * units.MB)},
		{Name: "main memory", TypicalLat: 100 * time.Nanosecond, CostPerGB: 1e5, Capacity: units.Bytes(512 * units.MB)},
		{Name: "solid state disk", TypicalLat: 100 * time.Microsecond, CostPerGB: 3e4, Capacity: units.Bytes(1 * units.GB)},
		{Name: "magnetic disk", TypicalLat: 20 * time.Millisecond, CostPerGB: 2000, Capacity: units.Bytes(156 * units.GB)},
		{Name: "robotically accessed tape/optical disk", TypicalLat: 30 * time.Second, CostPerGB: 25, Capacity: units.Bytes(1200 * units.GB)},
		{Name: "shelf-stored tape/optical disk", TypicalLat: 3 * time.Minute, CostPerGB: 8, Capacity: units.Bytes(25 * units.TB)},
	}
}

// HierarchyInvariant reports an error if the pyramid violates its defining
// monotonicity: latency and capacity must increase downward while cost per
// gigabyte decreases. Used by tests and the mssanalyze self-checks.
func HierarchyInvariant(levels []Level) error {
	for i := 1; i < len(levels); i++ {
		hi, lo := levels[i-1], levels[i]
		if lo.TypicalLat <= hi.TypicalLat {
			return fmt.Errorf("device: level %q latency %v not above %q latency %v",
				lo.Name, lo.TypicalLat, hi.Name, hi.TypicalLat)
		}
		if lo.CostPerGB >= hi.CostPerGB {
			return fmt.Errorf("device: level %q cost %v not below %q cost %v",
				lo.Name, lo.CostPerGB, hi.Name, hi.CostPerGB)
		}
		if lo.Capacity <= hi.Capacity {
			return fmt.Errorf("device: level %q capacity %v not above %q capacity %v",
				lo.Name, lo.Capacity, hi.Name, hi.Capacity)
		}
	}
	return nil
}

// RenderHierarchy formats the pyramid as an aligned text table (the
// reproduction of Figure 1).
func RenderHierarchy(levels []Level) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %14s %12s %12s\n", "level", "latency", "$/GB", "capacity")
	for _, l := range levels {
		fmt.Fprintf(&b, "%-42s %14s %12.0f %12s\n", l.Name, l.TypicalLat, l.CostPerGB, l.Capacity)
	}
	return b.String()
}

// ComparisonRow is one column of Table 1 transposed into a row per medium.
type ComparisonRow struct {
	Name          string
	MediaCapacity units.Bytes
	RandomAccess  time.Duration
	PeakRateMBs   float64
	CostPerGB     float64
}

// Table1 returns the paper's media comparison for the three Table 1
// devices, in the paper's column order: optical jukebox, linear tape,
// helical-scan tape.
func Table1() []ComparisonRow {
	rows := make([]ComparisonRow, 0, 3)
	for _, p := range []Profile{OpticalJukebox, IBM3490, AmpexD2} {
		rows = append(rows, ComparisonRow{
			Name:          p.Name,
			MediaCapacity: p.MediaCapacity,
			RandomAccess:  p.RandomAccess,
			PeakRateMBs:   p.PeakRate / 1e6,
			CostPerGB:     p.CostPerGB,
		})
	}
	return rows
}

// RenderTable1 formats Table1 like the paper's Table 1.
func RenderTable1(rows []ComparisonRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %12s %10s\n",
		"medium", "capacity", "random access", "MB/sec", "$/GB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %14s %14s %12.2f %10.0f\n",
			r.Name, r.MediaCapacity, r.RandomAccess, r.PeakRateMBs, r.CostPerGB)
	}
	return b.String()
}

// CrossoverSize returns the transfer size at which medium b becomes faster
// than medium a for a cold whole-file read (§2.2: tape beats optical disk
// for large supercomputer files despite worse first-byte latency). It
// searches by bisection over [1 byte, maxSize]; returns maxSize+1 if b
// never wins.
func CrossoverSize(a, b *Profile, maxSize units.Bytes) units.Bytes {
	f := func(s units.Bytes) bool {
		return b.TimeToLastByte(s) < a.TimeToLastByte(s)
	}
	if !f(maxSize) {
		return maxSize + 1
	}
	lo, hi := units.Bytes(1), maxSize
	for lo < hi {
		mid := lo + (hi-lo)/2
		if f(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
