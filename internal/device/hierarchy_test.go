package device

import (
	"strings"
	"testing"
	"time"

	"filemig/internal/units"
)

func TestHierarchyInvariantHolds(t *testing.T) {
	if err := HierarchyInvariant(Hierarchy()); err != nil {
		t.Fatalf("pyramid violates Figure 1 monotonicity: %v", err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := Hierarchy()
	if len(h) != 6 {
		t.Fatalf("levels = %d, want 6", len(h))
	}
	if h[0].Name != "CPU cache" {
		t.Errorf("top = %q, want CPU cache (fastest, costliest)", h[0].Name)
	}
	bottom := h[len(h)-1]
	if !strings.Contains(bottom.Name, "shelf") {
		t.Errorf("bottom = %q, want shelf storage", bottom.Name)
	}
	// §2.1: bottom of the pyramid is "very low cost, under $10/GB".
	if bottom.CostPerGB >= 10 {
		t.Errorf("shelf cost = %v, want under $10/GB", bottom.CostPerGB)
	}
	// §2.1: access speeds "on the order of seconds or minutes".
	if bottom.TypicalLat < time.Second {
		t.Errorf("shelf latency = %v, want seconds-to-minutes", bottom.TypicalLat)
	}
}

func TestHierarchyInvariantDetectsViolations(t *testing.T) {
	bad := []Level{
		{Name: "a", TypicalLat: time.Second, CostPerGB: 10, Capacity: 100},
		{Name: "b", TypicalLat: time.Millisecond, CostPerGB: 1, Capacity: 1000},
	}
	if HierarchyInvariant(bad) == nil {
		t.Error("latency inversion not detected")
	}
	bad[1].TypicalLat = time.Minute
	bad[1].CostPerGB = 100
	if HierarchyInvariant(bad) == nil {
		t.Error("cost inversion not detected")
	}
	bad[1].CostPerGB = 1
	bad[1].Capacity = 10
	if HierarchyInvariant(bad) == nil {
		t.Error("capacity inversion not detected")
	}
}

func TestRenderHierarchy(t *testing.T) {
	out := RenderHierarchy(Hierarchy())
	for _, want := range []string{"CPU cache", "magnetic disk", "shelf"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 { // header + 6 levels
		t.Errorf("render has %d lines, want 7", len(lines))
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Paper order: optical, linear, helical.
	if !strings.Contains(rows[0].Name, "optical") ||
		!strings.Contains(rows[1].Name, "3490") ||
		!strings.Contains(rows[2].Name, "D-2") {
		t.Errorf("row order wrong: %v, %v, %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	if rows[0].PeakRateMBs != 0.25 || rows[1].PeakRateMBs != 6 || rows[2].PeakRateMBs != 15 {
		t.Errorf("transfer column wrong: %v %v %v",
			rows[0].PeakRateMBs, rows[1].PeakRateMBs, rows[2].PeakRateMBs)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "$/GB") || !strings.Contains(out, "400.00 MB") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

func TestHelicalBeatsLinearOnCostAndDensity(t *testing.T) {
	// §2.2's tradeoff: helical scan trades access latency for density/cost.
	if AmpexD2.CostPerGB >= IBM3490.CostPerGB {
		t.Error("helical should be cheaper per GB")
	}
	if AmpexD2.MediaCapacity <= IBM3490.MediaCapacity {
		t.Error("helical should be denser")
	}
	if AmpexD2.RandomAccess <= IBM3490.RandomAccess {
		t.Error("helical should have worse random access")
	}
}

func TestRobotLoadVsTransferClaim(t *testing.T) {
	// §6: "A StorageTek robot can load a 3480 tape in under 10 seconds;
	// the drive can transfer 20 MB in this time" — at ~2 MB/s observed the
	// drive moves 16-20 MB during a mount; check the same order.
	mount := SiloTape3480.MountMedian
	moved := units.Bytes(float64(SiloTape3480.ObservedRate) * mount.Seconds())
	if moved < units.Bytes(10*units.MB) || moved > units.Bytes(40*units.MB) {
		t.Errorf("bytes transferable during mount = %v, want tens of MB", moved)
	}
}
