package device

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"filemig/internal/units"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassDisk:       "disk",
		ClassSiloTape:   "silo",
		ClassManualTape: "manual",
		ClassOptical:    "optical",
		ClassSSD:        "ssd",
		ClassUnknown:    "unknown",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
		parsed, err := ParseClass(want)
		if err != nil || parsed != c {
			t.Errorf("ParseClass(%q) = %v, %v", want, parsed, err)
		}
	}
	if Class(99).String() != "class(99)" {
		t.Errorf("unknown class string = %q", Class(99).String())
	}
	if _, err := ParseClass("floppy"); err == nil {
		t.Error("ParseClass should reject unknown names")
	}
}

func TestTable1Parameters(t *testing.T) {
	// Table 1 of the paper, verbatim.
	if OpticalJukebox.MediaCapacity != units.Bytes(1200*units.MB) {
		t.Errorf("optical capacity = %v, want 1.2 GB", OpticalJukebox.MediaCapacity)
	}
	if OpticalJukebox.RandomAccess != 7*time.Second {
		t.Errorf("optical random access = %v, want 7s", OpticalJukebox.RandomAccess)
	}
	if OpticalJukebox.PeakRate != 0.25e6 {
		t.Errorf("optical rate = %v, want 0.25 MB/s", OpticalJukebox.PeakRate)
	}
	if OpticalJukebox.CostPerGB != 80 {
		t.Errorf("optical cost = %v, want $80/GB", OpticalJukebox.CostPerGB)
	}
	if IBM3490.MediaCapacity != units.Bytes(400*units.MB) {
		t.Errorf("3490 capacity = %v, want 0.4 GB", IBM3490.MediaCapacity)
	}
	if IBM3490.RandomAccess != 13*time.Second {
		t.Errorf("3490 random access = %v, want 13s", IBM3490.RandomAccess)
	}
	if IBM3490.PeakRate != 6e6 || IBM3490.CostPerGB != 25 {
		t.Errorf("3490 rate/cost = %v/%v, want 6 MB/s, $25/GB", IBM3490.PeakRate, IBM3490.CostPerGB)
	}
	if AmpexD2.MediaCapacity != units.Bytes(25*units.GB) {
		t.Errorf("D-2 capacity = %v, want 25 GB", AmpexD2.MediaCapacity)
	}
	if AmpexD2.RandomAccess < 60*time.Second {
		t.Errorf("D-2 random access = %v, want 60+s", AmpexD2.RandomAccess)
	}
	if AmpexD2.PeakRate != 15e6 || AmpexD2.CostPerGB != 2 {
		t.Errorf("D-2 rate/cost = %v/%v, want 15 MB/s, $2/GB", AmpexD2.PeakRate, AmpexD2.CostPerGB)
	}
}

func TestSiloCartridgeMatchesPaper(t *testing.T) {
	// §2.2: 6000 cartridges at 200 MB each; robot pick < 10 s.
	if SiloTape3480.MediaCapacity != units.Bytes(200*units.MB) {
		t.Errorf("silo cartridge = %v, want 200 MB", SiloTape3480.MediaCapacity)
	}
	if SiloTape3480.MountMedian >= 10*time.Second {
		t.Errorf("silo pick = %v, want under 10s", SiloTape3480.MountMedian)
	}
	// §5.1.1: manual mount ≈ 115 s ("about 2 minutes").
	if ManualTape3480.MountMedian != 115*time.Second {
		t.Errorf("manual mount = %v, want 115s", ManualTape3480.MountMedian)
	}
}

func TestAccessDecomposition(t *testing.T) {
	c := SiloTape3480.Access(0.5, units.Bytes(80*units.MB), false, nil)
	if c.Mount != 8*time.Second {
		t.Errorf("mount = %v, want 8s median (nil rng)", c.Mount)
	}
	if c.Seek != 50*time.Second {
		t.Errorf("seek = %v, want 50s (half of 100s full seek, §5.1.1)", c.Seek)
	}
	// §5.1.1: "an average file of 80 MB will take 40 seconds to transfer".
	if c.Transfer != 40*time.Second {
		t.Errorf("transfer = %v, want 40s at 2 MB/s", c.Transfer)
	}
	if c.FirstByte() != 58*time.Second {
		t.Errorf("first byte = %v", c.FirstByte())
	}
	if c.Total() != 98*time.Second {
		t.Errorf("total = %v", c.Total())
	}
}

func TestAccessMounted(t *testing.T) {
	c := SiloTape3480.Access(0, units.Bytes(units.MB), true, nil)
	if c.Mount != 0 {
		t.Errorf("mounted access should skip mount, got %v", c.Mount)
	}
	if c.Seek != 0 {
		t.Errorf("offset 0 seek = %v, want 0", c.Seek)
	}
}

func TestAccessOffsetClamped(t *testing.T) {
	lo := SiloTape3480.Access(-1, 0, true, nil)
	hi := SiloTape3480.Access(2, 0, true, nil)
	if lo.Seek != 0 {
		t.Errorf("seek at clamped -1 = %v", lo.Seek)
	}
	if hi.Seek != SiloTape3480.FullSeek {
		t.Errorf("seek at clamped 2 = %v, want full seek", hi.Seek)
	}
}

func TestAccessMountVariability(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var lo, hi int
	for i := 0; i < 5000; i++ {
		c := ManualTape3480.Access(0, 0, false, r)
		if c.Mount < 115*time.Second {
			lo++
		} else {
			hi++
		}
	}
	// Lognormal with median 115s: about half above, half below.
	frac := float64(lo) / 5000
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
	// Long tail: some manual mounts should exceed 300 s (§5.1.1 figure 3).
	r2 := rand.New(rand.NewSource(2))
	tail := 0
	for i := 0; i < 5000; i++ {
		if ManualTape3480.Access(0, 0, false, r2).Mount > 300*time.Second {
			tail++
		}
	}
	if tail == 0 {
		t.Error("manual mount distribution has no tail beyond 300s")
	}
	if float64(tail)/5000 > 0.2 {
		t.Errorf("manual mount tail too fat: %v > 300s", float64(tail)/5000)
	}
}

func TestDiskIsFastToFirstByte(t *testing.T) {
	d := IBM3380.Access(0.5, units.Bytes(units.MB), false, nil)
	if d.FirstByte() > time.Second {
		t.Errorf("disk first byte = %v, want well under a second (§5.1)", d.FirstByte())
	}
}

func TestTransferTime(t *testing.T) {
	got := SiloTape3480.TransferTime(units.Bytes(20 * units.MB))
	if got != 10*time.Second {
		t.Errorf("20 MB at 2 MB/s = %v, want 10s", got)
	}
	// Profile with only PeakRate set falls back to it.
	p := Profile{PeakRate: 1e6}
	if p.TransferTime(units.Bytes(units.MB)) != time.Second {
		t.Error("TransferTime should fall back to PeakRate")
	}
}

func TestTapeBeatsOpticalForLargeFiles(t *testing.T) {
	// §2.2: optical wins small accesses, tape wins large supercomputer
	// files. Verify both regimes and that a crossover exists.
	small := units.Bytes(100 * units.KB)
	large := units.Bytes(150 * units.MB)
	if OpticalJukebox.TimeToLastByte(small) >= SiloTape3480.TimeToLastByte(small) {
		t.Errorf("optical should win at 100 KB: optical=%v tape=%v",
			OpticalJukebox.TimeToLastByte(small), SiloTape3480.TimeToLastByte(small))
	}
	if SiloTape3480.TimeToLastByte(large) >= OpticalJukebox.TimeToLastByte(large) {
		t.Errorf("tape should win at 150 MB: tape=%v optical=%v",
			SiloTape3480.TimeToLastByte(large), OpticalJukebox.TimeToLastByte(large))
	}
	x := CrossoverSize(&OpticalJukebox, &SiloTape3480, units.Bytes(200*units.MB))
	if x <= small || x >= large {
		t.Errorf("crossover = %v, want between 100 KB and 150 MB", x)
	}
}

func TestCrossoverNeverWins(t *testing.T) {
	// Disk always beats manual tape; crossover in the other direction
	// reports maxSize+1.
	max := units.Bytes(200 * units.MB)
	x := CrossoverSize(&IBM3380, &ManualTape3480, max)
	if x != max+1 {
		t.Errorf("crossover = %v, want sentinel %v", x, max+1)
	}
}
