package device

import (
	"math"
	"time"

	"filemig/internal/units"
)

// Striped builds the profile of an n-wide tape (or disk) stripe in the
// spirit of Chervenak & Katz's striped tape arrays (paper reference [4]):
// a file is split across n media and its pieces transferred in parallel.
//
//   - transfer bandwidth scales by n;
//   - capacity per "logical medium" scales by n;
//   - mount time grows slightly — the stripe is ready only when the
//     slowest of n mounts finishes, and the expected maximum of n
//     lognormal mounts grows roughly with sqrt(2 ln n) sigma factors;
//   - seek is bounded by the slowest member, approximated by the base
//     profile's seek (all members seek in parallel to the same offset);
//   - media cost per GB is unchanged (same tapes), but n drives are
//     occupied per transfer — the capacity/contention trade the paper's
//     reference explores.
func Striped(p Profile, n int) Profile {
	if n < 1 {
		panic("device: stripe width must be >= 1")
	}
	if n == 1 {
		return p
	}
	s := p
	s.Name = p.Name + " (striped x" + itoa(n) + ")"
	s.MediaCapacity = p.MediaCapacity * units.Bytes(n)
	s.PeakRate = p.PeakRate * float64(n)
	s.ObservedRate = p.ObservedRate * float64(n)
	if p.MountMedian > 0 && p.MountSigma > 0 {
		// E[max of n lognormals] ≈ median·exp(sigma·sqrt(2 ln n)).
		factor := math.Exp(p.MountSigma * math.Sqrt(2*math.Log(float64(n))))
		s.MountMedian = time.Duration(float64(p.MountMedian) * factor)
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// StripeCrossover reports the smallest transfer size at which an n-wide
// stripe beats the base profile for a cold whole-file fetch, or
// maxSize+1 if it never does (mount inflation can dominate small reads).
func StripeCrossover(p Profile, n int, maxSize units.Bytes) units.Bytes {
	s := Striped(p, n)
	return CrossoverSize(&p, &s, maxSize)
}
