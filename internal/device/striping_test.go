package device

import (
	"testing"

	"filemig/internal/units"
)

func TestStripedScaling(t *testing.T) {
	s := Striped(SiloTape3480, 4)
	if s.ObservedRate != 4*SiloTape3480.ObservedRate {
		t.Errorf("striped rate = %v, want 4x", s.ObservedRate)
	}
	if s.PeakRate != 4*SiloTape3480.PeakRate {
		t.Errorf("striped peak = %v, want 4x", s.PeakRate)
	}
	if s.MediaCapacity != 4*SiloTape3480.MediaCapacity {
		t.Errorf("striped capacity = %v, want 4x", s.MediaCapacity)
	}
	if s.MountMedian <= SiloTape3480.MountMedian {
		t.Error("striped mount should grow (max of n mounts)")
	}
	if s.MountMedian > 4*SiloTape3480.MountMedian {
		t.Errorf("striped mount = %v, absurdly inflated", s.MountMedian)
	}
	if s.CostPerGB != SiloTape3480.CostPerGB {
		t.Error("media cost per GB should not change")
	}
}

func TestStripedIdentity(t *testing.T) {
	s := Striped(SiloTape3480, 1)
	if s != SiloTape3480 {
		t.Error("1-wide stripe should be the base profile")
	}
}

func TestStripedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("stripe width 0 should panic")
		}
	}()
	Striped(SiloTape3480, 0)
}

func TestStripeCrossover(t *testing.T) {
	// Big files win from striping (bandwidth), small files lose (mount
	// inflation): a crossover must exist inside the 200 MB range.
	x := StripeCrossover(SiloTape3480, 4, units.Bytes(200*units.MB))
	if x <= units.Bytes(units.MB) {
		t.Errorf("crossover %v suspiciously small", x)
	}
	if x > units.Bytes(200*units.MB) {
		t.Fatalf("no crossover found; striping never wins?")
	}
	// Above the crossover the stripe is strictly faster.
	s := Striped(SiloTape3480, 4)
	big := units.Bytes(180 * units.MB)
	if s.TimeToLastByte(big) >= SiloTape3480.TimeToLastByte(big) {
		t.Error("stripe should win at 180 MB")
	}
	small := units.Bytes(100 * units.KB)
	if s.TimeToLastByte(small) <= SiloTape3480.TimeToLastByte(small) {
		t.Error("stripe should lose at 100 KB")
	}
}

func TestStripedName(t *testing.T) {
	s := Striped(SiloTape3480, 4)
	if s.Name != SiloTape3480.Name+" (striped x4)" {
		t.Errorf("name = %q", s.Name)
	}
}
