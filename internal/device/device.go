// Package device models the storage devices of the NCAR mass storage
// system with the parameters published in the paper: Table 1's media
// comparison (optical jukebox, IBM 3490 linear tape, Ampex D-2 helical
// tape), the IBM 3380 staging disks, the StorageTek 4400 automated
// cartridge system (§2.2: 6000 × 200 MB cartridges, <10 s pick), and the
// operator-staffed shelf-tape vault (§5.1.1: ≈115 s mount with a long
// tail). Access costs decompose exactly the way §5.1.1 does: mount + seek +
// transfer, with queueing supplied by the simulator on top.
package device

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"filemig/internal/units"
)

// Class identifies the storage class a device belongs to; the trace format
// records it as the source/destination of each transfer.
type Class int

// Storage classes, ordered roughly down the storage pyramid (Figure 1).
const (
	ClassUnknown    Class = iota
	ClassSSD              // Cray solid-state disk
	ClassDisk             // magnetic staging disk (IBM 3380)
	ClassSiloTape         // robot-mounted cartridge (StorageTek 4400)
	ClassManualTape       // operator-mounted shelf tape
	ClassOptical          // optical disk jukebox
)

// NClasses is the number of storage classes, sized so a [NClasses]T array
// can be indexed directly by Class — the dense-accumulator layout the
// per-record analysis hot path uses instead of nested maps.
const NClasses = int(ClassOptical) + 1

var classNames = map[Class]string{
	ClassUnknown:    "unknown",
	ClassSSD:        "ssd",
	ClassDisk:       "disk",
	ClassSiloTape:   "silo",
	ClassManualTape: "manual",
	ClassOptical:    "optical",
}

// String returns the short name used in trace records.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// classByName inverts classNames; built once so ParseClass and
// ParseClassBytes share one source of truth with String.
var classByName = func() map[string]Class {
	m := make(map[string]Class, len(classNames))
	for c, n := range classNames {
		m[n] = c
	}
	return m
}()

// ParseClass inverts String.
func ParseClass(s string) (Class, error) {
	if c, ok := classByName[s]; ok {
		return c, nil
	}
	return ClassUnknown, fmt.Errorf("device: unknown class %q", s)
}

// ParseClassBytes is ParseClass for a byte-slice key on a hot decode
// path: the map probe does not allocate, and the boolean result spares
// the caller an error value it would rebuild anyway.
func ParseClassBytes(b []byte) (Class, bool) {
	c, ok := classByName[string(b)] // no-alloc map lookup
	return c, ok
}

// Profile holds the physical parameters of one device type. Rates are in
// bytes/second; costs in dollars per decimal gigabyte, as in Table 1.
type Profile struct {
	Name  string
	Class Class

	MediaCapacity units.Bytes   // per-cartridge / per-platter capacity
	RandomAccess  time.Duration // nominal media random access time (Table 1)
	PeakRate      float64       // media peak transfer, bytes/s
	ObservedRate  float64       // end-to-end observed transfer, bytes/s (§5.1.1: ~2 MB/s)
	CostPerGB     float64       // media cost, $/GB

	// MountMedian and MountSigma parameterise a lognormal mount-time
	// distribution (robot pick or operator fetch). Zero MountMedian means
	// the medium is always mounted (disk).
	MountMedian time.Duration
	MountSigma  float64

	// FullSeek is the time to seek across an entire medium; a seek to
	// fractional offset f costs f*FullSeek (plus any fixed RandomAccess
	// positioning overhead folded into FullSeek for tape).
	FullSeek time.Duration
}

// Published device profiles. Values follow Table 1 and §2.2/§5.1.1 of the
// paper; the derived silo/manual numbers implement the paper's own
// decomposition (silo pick <10 s, ~50 s average tape seek, ~115 s operator
// mount).
var (
	// IBM3380 models the MSS staging disks (100 GB of IBM 3380s on the
	// 3090). Mount is instantaneous; seeks are milliseconds; the paper
	// observed ~2 MB/s end-to-end with a 3 MB/s peak.
	IBM3380 = Profile{
		Name:          "IBM 3380 disk",
		Class:         ClassDisk,
		MediaCapacity: units.Bytes(2500 * units.MB),
		RandomAccess:  24 * time.Millisecond,
		PeakRate:      3e6,
		ObservedRate:  2e6,
		CostPerGB:     2000,
		FullSeek:      48 * time.Millisecond,
	}

	// IBM3490 is Table 1's "linear tape": 400 MB cartridge, 13 s random
	// access, 6 MB/s, $25/GB.
	IBM3490 = Profile{
		Name:          "IBM 3490 linear tape",
		Class:         ClassSiloTape,
		MediaCapacity: units.Bytes(400 * units.MB),
		RandomAccess:  13 * time.Second,
		PeakRate:      6e6,
		ObservedRate:  2e6,
		CostPerGB:     25,
		MountMedian:   8 * time.Second,
		MountSigma:    0.2,
		FullSeek:      26 * time.Second,
	}

	// AmpexD2 is Table 1's helical-scan tape: 25 GB, 60+ s random access,
	// 15 MB/s, $2/GB.
	AmpexD2 = Profile{
		Name:          "Ampex D-2 helical tape",
		Class:         ClassSiloTape,
		MediaCapacity: units.Bytes(25 * units.GB),
		RandomAccess:  60 * time.Second,
		PeakRate:      15e6,
		ObservedRate:  8e6,
		CostPerGB:     2,
		MountMedian:   10 * time.Second,
		MountSigma:    0.25,
		FullSeek:      120 * time.Second,
	}

	// OpticalJukebox is Table 1's optical disk jukebox: 1.2 GB platters,
	// 7 s random access, 0.25 MB/s, $80/GB.
	OpticalJukebox = Profile{
		Name:          "optical disk jukebox",
		Class:         ClassOptical,
		MediaCapacity: units.Bytes(1200 * units.MB),
		RandomAccess:  7 * time.Second,
		PeakRate:      0.25e6,
		ObservedRate:  0.25e6,
		CostPerGB:     80,
		MountMedian:   7 * time.Second,
		MountSigma:    0.15,
		FullSeek:      time.Second,
	}

	// SiloTape3480 models the cartridges inside the StorageTek 4400 ACS:
	// 200 MB IBM 3480-style cartridges, robot pick under 10 seconds,
	// average seek around 50 s (§5.1.1), observed ~2 MB/s.
	SiloTape3480 = Profile{
		Name:          "STK 4400 silo 3480 cartridge",
		Class:         ClassSiloTape,
		MediaCapacity: units.Bytes(200 * units.MB),
		RandomAccess:  13 * time.Second,
		PeakRate:      3e6,
		ObservedRate:  2e6,
		CostPerGB:     25,
		MountMedian:   8 * time.Second,
		MountSigma:    0.2,
		FullSeek:      100 * time.Second,
	}

	// ManualTape3480 is the same cartridge fetched from shelf storage by a
	// human operator: ≈115 s typical mount (§5.1.1) with a heavy lognormal
	// tail — 10% of manual accesses exceeded 400 s end to end.
	ManualTape3480 = Profile{
		Name:          "shelf 3480 cartridge (operator mounted)",
		Class:         ClassManualTape,
		MediaCapacity: units.Bytes(200 * units.MB),
		RandomAccess:  13 * time.Second,
		PeakRate:      3e6,
		ObservedRate:  2e6,
		CostPerGB:     25,
		MountMedian:   115 * time.Second,
		MountSigma:    0.65,
		FullSeek:      100 * time.Second,
	}
)

// AccessCost is the §5.1.1 decomposition of one media access, excluding
// queueing (the simulator's resources contribute that).
type AccessCost struct {
	Mount    time.Duration
	Seek     time.Duration
	Transfer time.Duration
}

// FirstByte is the latency from service start until the first byte moves.
func (a AccessCost) FirstByte() time.Duration { return a.Mount + a.Seek }

// Total is the full service time.
func (a AccessCost) Total() time.Duration { return a.Mount + a.Seek + a.Transfer }

// Access computes the cost of reading or writing size bytes starting at
// fractional media offset offsetFrac in [0,1]. If r is non-nil the mount
// time is drawn from the profile's lognormal; otherwise the median is used.
// mounted=true skips the mount (medium already on a drive).
func (p *Profile) Access(offsetFrac float64, size units.Bytes, mounted bool, r *rand.Rand) AccessCost {
	if offsetFrac < 0 {
		offsetFrac = 0
	}
	if offsetFrac > 1 {
		offsetFrac = 1
	}
	var mount time.Duration
	if !mounted && p.MountMedian > 0 {
		mount = p.MountMedian
		if r != nil && p.MountSigma > 0 {
			f := lognormFactor(p.MountSigma, r)
			mount = time.Duration(float64(p.MountMedian) * f)
		}
	}
	seek := time.Duration(float64(p.FullSeek) * offsetFrac)
	rate := p.ObservedRate
	if rate <= 0 {
		rate = p.PeakRate
	}
	transfer := time.Duration(float64(size) / rate * float64(time.Second))
	return AccessCost{Mount: mount, Seek: seek, Transfer: transfer}
}

// lognormFactor draws exp(sigma·N(0,1)), a lognormal multiplier with
// median 1, used to spread mount times around their published medians.
func lognormFactor(sigma float64, r *rand.Rand) float64 {
	return math.Exp(sigma * r.NormFloat64())
}

// TransferTime reports how long size bytes take at the observed rate.
func (p *Profile) TransferTime(size units.Bytes) time.Duration {
	rate := p.ObservedRate
	if rate <= 0 {
		rate = p.PeakRate
	}
	return time.Duration(float64(size) / rate * float64(time.Second))
}

// TimePerByte is Table 1's figure of merit for small accesses: the time to
// retrieve the first byte plus transfer one byte, in seconds. A database
// doing many small I/Os minimises this; a supercomputer center reading
// 80 MB files minimises TimeToLastByte instead (§2.2).
func (p *Profile) TimePerByte() float64 {
	return (p.MountMedian + p.RandomAccess).Seconds()
}

// TimeToLastByte reports the expected seconds to fetch an entire file of
// the given size after a cold start (median mount, half-media seek).
func (p *Profile) TimeToLastByte(size units.Bytes) float64 {
	c := p.Access(0.5, size, false, nil)
	return c.Total().Seconds()
}
