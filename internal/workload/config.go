// Package workload synthesizes NCAR-like mass-storage request traces. The
// paper's raw data (24 months of MSS system logs, ~3.5 million requests)
// is proprietary and lost to history, so this package reconstructs a
// statistically equivalent stream from the published aggregates, using the
// causal mechanisms the paper identifies:
//
//   - human-driven interactive reads with one-day and one-week periodicity,
//     holiday dips and two-year growth (§5.2, Figures 4-6);
//   - machine-driven batch writes, nearly constant around the clock and
//     calendar (§5.2);
//   - a per-file reference plan reproducing Figure 8's reference-count
//     marginals (50% of files never read, 44% written once and never read,
//     57% touched exactly once) and Figure 9's interreference intervals
//     (70% under a day, tail beyond a year);
//   - file sizes from a heavy-tailed mixture matching Figures 10-11 and
//     the Table 3/4 averages, capped at the MSS's 200 MB file limit;
//   - the MSS placement policy (files ≤ 30 MB on disk, larger on tape,
//     old files on operator-mounted shelf tape) for device routing (§3.1);
//   - session bursts so that 90% of successive requests arrive within 10
//     seconds of each other (Figure 7) and ~4.76% error requests (§5.1).
package workload

import (
	"time"

	"filemig/internal/trace"
)

// Paper-scale constants (Table 3, Table 4, §3, §5).
const (
	// PaperSpanDays is the trace length: October 1990 – September 1992.
	PaperSpanDays = 731
	// PaperFiles is the referenced-file population (Table 4: "over 900,000").
	PaperFiles = 905000
	// PaperUsers is the user population (§5.1: ~4,000 users).
	PaperUsers = 4000
	// PaperRequests is the approximate good-reference total (Table 3).
	PaperRequests = 3500000
	// ErrorFraction is the share of requests that failed (§5.1: 4.76%).
	ErrorFraction = 0.0476
	// MSSFileCap is the 200 MB per-file limit (files cannot span tapes).
	MSSFileCap = 200e6
	// DiskThreshold is the MSS placement rule: files at or under 30 MB
	// stay on the 3090 disks, larger files go straight to tape (§3.1).
	DiskThreshold = 30e6
	// DedupWindow is the analysis window of §5.3: at most one read and one
	// write per file per eight hours.
	DedupWindow = 8 * time.Hour
)

// Config parameterises a synthetic trace. Use DefaultConfig and override.
type Config struct {
	Scale float64   // population/request scale relative to the paper (0, 1]
	Seed  int64     // master RNG seed
	Start time.Time // trace start (default trace.Epoch: 1990-10-01)
	Days  int       // trace length in days (default 731)

	Files int // number of files (derived from Scale if zero)
	Users int // number of users (derived from Scale if zero)

	// DuplicateMean is the mean number of extra raw requests issued per
	// logical access within the dedup window (§6: about one third of all
	// requests came within eight hours of another request for the same
	// file). Explicit duplicates plus the naturally short write-then-read
	// gaps together produce that third; mean 0.25 calibrates the split.
	DuplicateMean float64

	// Bursts controls session packing (Figure 7). When false, requests are
	// spread evenly through their hour instead — the ablation mode.
	Bursts bool

	// Holidays controls the Thanksgiving/Christmas read dips (Figure 6).
	Holidays bool

	// ReadGrowth is the ratio of read intensity at trace end to trace
	// start (Figure 6 shows roughly a doubling over the two years).
	ReadGrowth float64

	// ErrorFraction of requests reference nonexistent files (§5.1).
	ErrorFraction float64

	// DiurnalSharpness reshapes the Figure 4 read hour-of-day profile:
	// each hourly weight is raised to this exponent before sampling, so
	// values above 1 exaggerate the 8 AM surge and the overnight lull
	// while values below 1 flatten the curve toward machine-like
	// round-the-clock activity. Zero (or 1) keeps the paper's calibrated
	// shape. The exponent changes only the sampling weights, never the
	// number of RNG draws, so traces stay deterministic per Config.
	DiurnalSharpness float64

	// BurstMean is the mean session length used by burst packing
	// (Figure 7 calibrates the paper's ~12 requests per session). Zero
	// keeps the calibrated default; larger values model long batch
	// trains, smaller ones isolated interactive requests. Ignored when
	// Bursts is false.
	BurstMean float64

	// SizeScale multiplies every sampled file size, clamped to the
	// [2 KB, MSSFileCap] range the population model already enforces.
	// Zero (or 1) keeps the paper's Figure 10/11 mixture; checkpoint-style
	// workloads use values above 1. Scaling is a post-pass over the
	// sampled population, so it never perturbs the RNG streams.
	SizeScale float64
}

// DefaultConfig returns the paper-calibrated configuration at the given
// scale in (0, 1]. Scale 1.0 reproduces the full two-year, ~3.5M-request
// trace; tests typically run at 0.01–0.05.
func DefaultConfig(scale float64, seed int64) Config {
	if scale <= 0 || scale > 1 {
		panic("workload: scale must be in (0, 1]")
	}
	return Config{
		Scale:         scale,
		Seed:          seed,
		Start:         trace.Epoch,
		Days:          PaperSpanDays,
		Files:         intScale(PaperFiles, scale),
		Users:         intScale(PaperUsers, scale),
		DuplicateMean: 0.25,
		Bursts:        true,
		Holidays:      true,
		ReadGrowth:    2.0,
		ErrorFraction: ErrorFraction,
	}
}

func intScale(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}

// span reports the trace duration.
func (c *Config) span() time.Duration { return time.Duration(c.Days) * 24 * time.Hour }

// end reports the first instant after the trace.
func (c *Config) end() time.Time { return c.Start.Add(c.span()) }
