package workload

import (
	"math/rand"
	"testing"
	"time"

	"filemig/internal/stats"
	"filemig/internal/trace"
)

func TestMultiReadCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m stats.Moments
	over10 := 0
	for i := 0; i < 50000; i++ {
		n := multiReadCount(rng)
		if n < 2 || n > 250 {
			t.Fatalf("multiReadCount = %d, want [2,250]", n)
		}
		m.Add(float64(n))
		if n > 10 {
			over10++
		}
	}
	// Calibrated so the overall >10-reference fraction lands near 5%:
	// ~25% of files draw from this tail, so P(>10 | tail) should be
	// roughly 0.05-0.25.
	frac := float64(over10) / 50000
	if frac < 0.05 || frac > 0.25 {
		t.Errorf("P(multi reads > 10) = %.3f, want 0.05-0.25", frac)
	}
	if m.Mean() < 4 || m.Mean() > 10 {
		t.Errorf("multi read mean = %v, want 4-10", m.Mean())
	}
}

func TestMultiWriteCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var m stats.Moments
	for i := 0; i < 50000; i++ {
		n := multiWriteCount(rng)
		if n < 2 || n > 100 {
			t.Fatalf("multiWriteCount = %d, want [2,100]", n)
		}
		m.Add(float64(n))
	}
	// Rewrites are modest: mean 2.5-4, well below the reread tail.
	if m.Mean() < 2.2 || m.Mean() > 4.5 {
		t.Errorf("multi write mean = %v, want 2.2-4.5", m.Mean())
	}
}

func TestInterRefGapDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var c stats.CDF
	for i := 0; i < 50000; i++ {
		g := interRefGap(rng)
		if g < 8*time.Hour {
			t.Fatalf("gap %v below the 8-hour dedup window", g)
		}
		c.Add(g.Hours())
	}
	// Figure 9: "70% of all intervals were less than 1 day".
	day := c.P(24)
	if day < 0.58 || day > 0.78 {
		t.Errorf("P(gap < 1 day) = %.3f, want ~0.70", day)
	}
	// A visible tail past one year ("some files ... referenced more than a
	// year after the previous reference").
	year := 1 - c.P(365*24)
	if year <= 0 {
		t.Error("no gaps beyond one year")
	}
	if year > 0.05 {
		t.Errorf("gap tail past a year = %.3f, too fat", year)
	}
}

func TestBuildPlanFirstOpIsWriteForCreatedFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	end := trace.Epoch.Add(731 * 24 * time.Hour)
	for _, class := range []RefClass{W1R0, W1R1, W1Rn, WnR0, WnR1, WnRn} {
		f := &File{Class: class}
		plan := buildPlan(f, trace.Epoch.Add(time.Hour), end, rng)
		if len(plan) == 0 {
			t.Fatalf("class %v produced empty plan", class)
		}
		if plan[0].op != trace.Write {
			t.Errorf("class %v first op = %v, want write (creation)", class, plan[0].op)
		}
	}
	for _, class := range []RefClass{W0R1, W0Rn} {
		f := &File{Class: class, PreExists: true}
		plan := buildPlan(f, trace.Epoch.Add(time.Hour), end, rng)
		if len(plan) == 0 {
			t.Fatalf("class %v produced empty plan", class)
		}
		if plan[0].op != trace.Read {
			t.Errorf("class %v first op = %v, want read", class, plan[0].op)
		}
	}
}

func TestBuildPlanCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	end := trace.Epoch.Add(100 * 365 * 24 * time.Hour) // effectively no truncation
	f := &File{Class: W1R1}
	plan := buildPlan(f, trace.Epoch, end, rng)
	if len(plan) != 2 {
		t.Fatalf("W1R1 plan length = %d, want 2", len(plan))
	}
	reads, writes := 0, 0
	for _, p := range plan {
		if p.op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	if reads != 1 || writes != 1 {
		t.Errorf("W1R1 plan = %d reads, %d writes", reads, writes)
	}
}

func TestBuildPlanTimesAscendAndRespectWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	end := trace.Epoch.Add(731 * 24 * time.Hour)
	for i := 0; i < 500; i++ {
		f := &File{Class: WnRn}
		plan := buildPlan(f, trace.Epoch.Add(time.Duration(i)*24*time.Hour), end, rng)
		for j := range plan {
			if plan[j].at.After(end) || plan[j].at.Equal(end) {
				t.Fatalf("plan op %d at %v beyond trace end", j, plan[j].at)
			}
			if j > 0 && !plan[j].at.After(plan[j-1].at) {
				t.Fatalf("plan times not strictly ascending")
			}
		}
		if !dedupPlanInvariant(plan) {
			t.Fatalf("plan violates the 8-hour dedup invariant")
		}
	}
}

func TestBuildPlanTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Birth one hour before end: multi-access plans must truncate to few.
	end := trace.Epoch.Add(24 * time.Hour)
	f := &File{Class: WnRn}
	plan := buildPlan(f, end.Add(-time.Hour), end, rng)
	if len(plan) != 1 {
		t.Errorf("plan near trace end has %d ops, want 1 (rest truncated)", len(plan))
	}
	// Birth after end: nothing.
	plan = buildPlan(f, end.Add(time.Hour), end, rng)
	if len(plan) != 0 {
		t.Errorf("plan born after end has %d ops, want 0", len(plan))
	}
}
