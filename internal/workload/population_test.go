package workload

import (
	"math"
	"math/rand"
	"testing"

	"filemig/internal/stats"
	"filemig/internal/units"
)

func testPopulation(n int, seed int64) *Population {
	return NewPopulation(n, 200, rand.New(rand.NewSource(seed)))
}

func TestClassWeightsSumToOne(t *testing.T) {
	sum := 0.0
	for _, w := range classWeights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("class weights sum to %v", sum)
	}
}

func TestClassMarginalsMatchFigure8(t *testing.T) {
	p := testPopulation(60000, 1)
	var r0, r1, w0, w1, w1r0 int
	for i := range p.Files {
		c := p.Files[i].Class
		switch c.reads() {
		case 0:
			r0++
		case 1:
			r1++
		}
		switch c.writes() {
		case 0:
			w0++
		case 1:
			w1++
		}
		if c == W1R0 {
			w1r0++
		}
	}
	n := float64(len(p.Files))
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"files never read", float64(r0) / n, 0.50, 0.02}, // §5.3
		{"files read exactly once", float64(r1) / n, 0.25, 0.02},
		{"files never written", float64(w0) / n, 0.21, 0.02},
		{"files written exactly once", float64(w1) / n, 0.65, 0.02},
		{"write-once-read-never", float64(w1r0) / n, 0.44, 0.02},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.3f, want %.2f±%.2f", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestExactlyOnceIs57Percent(t *testing.T) {
	p := testPopulation(60000, 2)
	once := 0
	for i := range p.Files {
		c := p.Files[i].Class
		if c == W1R0 || c == W0R1 {
			once++
		}
	}
	frac := float64(once) / float64(len(p.Files))
	if math.Abs(frac-0.57) > 0.02 {
		t.Errorf("exactly-one-access fraction = %.3f, want 0.57 (§5.3)", frac)
	}
}

func TestPreExistsMatchesZeroWrites(t *testing.T) {
	p := testPopulation(5000, 3)
	for i := range p.Files {
		f := &p.Files[i]
		if f.PreExists != (f.Class.writes() == 0) {
			t.Fatalf("file %d: PreExists=%v but class %v has %d writes",
				i, f.PreExists, f.Class, f.Class.writes())
		}
	}
}

func TestSizeDistributionMatchesFigure11(t *testing.T) {
	p := testPopulation(60000, 4)
	var files stats.CDF
	var data stats.WeightedCDF
	for i := range p.Files {
		s := float64(p.Files[i].Size)
		files.Add(s)
		data.Add(s, s)
	}
	// Table 4: average file size ~25 MB. Allow 19-31.
	mean := units.Bytes(files.Mean())
	if mean < units.Bytes(19*units.MB) || mean > units.Bytes(31*units.MB) {
		t.Errorf("mean file size = %v, want ~25 MB", mean)
	}
	// Figure 11: "about half of the files are under 3 MB".
	under3 := files.P(3e6)
	if under3 < 0.40 || under3 > 0.62 {
		t.Errorf("fraction under 3 MB = %.3f, want ~0.5", under3)
	}
	// "...these files contain 2% of the data".
	dataUnder3 := data.P(3e6)
	if dataUnder3 > 0.06 {
		t.Errorf("data fraction in <3 MB files = %.3f, want ~0.02", dataUnder3)
	}
	// 200 MB cap is absolute (files cannot span tapes).
	if files.Max() > MSSFileCap {
		t.Errorf("max size %v exceeds the 200 MB cap", units.Bytes(files.Max()))
	}
	if files.Min() <= 0 {
		t.Errorf("min size %v not positive", files.Min())
	}
}

func TestModelChunkBump(t *testing.T) {
	p := testPopulation(60000, 5)
	chunks := 0
	for i := range p.Files {
		if p.Files[i].Kind == KindModelChunk {
			chunks++
			s := float64(p.Files[i].Size)
			if s < 6e6 || s > 10e6 {
				t.Fatalf("model chunk size %v outside the 8 MB bump", units.Bytes(s))
			}
		}
	}
	frac := float64(chunks) / float64(len(p.Files))
	if frac < 0.03 || frac > 0.09 {
		t.Errorf("model-chunk fraction = %.3f, want ~%.2f", frac, modelChunkFraction)
	}
}

func TestPreExistingFilesAreSmaller(t *testing.T) {
	p := testPopulation(60000, 6)
	var pre, post stats.Moments
	for i := range p.Files {
		if p.Files[i].Kind != KindGeneral {
			continue
		}
		if p.Files[i].PreExists {
			pre.Add(float64(p.Files[i].Size))
		} else {
			post.Add(float64(p.Files[i].Size))
		}
	}
	if pre.Mean() >= post.Mean() {
		t.Errorf("pre-existing mean %v >= in-trace mean %v; older files should be smaller",
			units.Bytes(pre.Mean()), units.Bytes(post.Mean()))
	}
}

func TestOwnershipSkewed(t *testing.T) {
	p := testPopulation(30000, 7)
	counts := map[uint32]int{}
	for i := range p.Files {
		o := p.Files[i].Owner
		if o < 1 || o > 200 {
			t.Fatalf("owner %d out of range [1,200]", o)
		}
		counts[o]++
	}
	// Zipf ownership: the busiest user should own far more than the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(p.Files)) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Errorf("heaviest user owns %d files, mean %v — want heavy skew", max, mean)
	}
}

func TestPopulationDeterminism(t *testing.T) {
	a, b := testPopulation(2000, 42), testPopulation(2000, 42)
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs across identical seeds", i)
		}
	}
	c := testPopulation(2000, 43)
	same := true
	for i := range a.Files {
		if a.Files[i].Size != c.Files[i].Size {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestTotalAndMean(t *testing.T) {
	p := testPopulation(1000, 8)
	if p.TotalBytes() <= 0 {
		t.Error("total bytes should be positive")
	}
	if got := p.MeanSize(); got != p.TotalBytes()/1000 {
		t.Errorf("MeanSize = %v", got)
	}
	empty := &Population{}
	if empty.MeanSize() != 0 {
		t.Error("empty population mean should be 0")
	}
}
