package workload

import (
	"math/rand"
	"sort"
	"time"

	"filemig/internal/stats"
	"filemig/internal/trace"
)

// This file turns a file's reference class into a concrete plan: a list of
// logical (deduplicated) accesses with operations and times, reproducing
// Figure 8's reference-count distribution and Figure 9's interreference
// intervals (70% under a day, a tail reaching beyond a year).

// multiReadCount draws the read count for a "read several times" class:
// two plus a heavy Pareto tail capped at the figure's 250-reference x-axis
// limit. Rereads dominate rewrites at NCAR (Table 3's 2:1 read/write
// ratio), so this tail is markedly heavier than the write tail below;
// jointly they are calibrated so ~5% of all files collect more than ten
// references (Figure 8).
func multiReadCount(rng *rand.Rand) int {
	tail := stats.Pareto{Xm: 1.2, Alpha: 1.15}.Sample(rng)
	n := 2 + int(tail)
	if n > 250 {
		n = 250
	}
	return n
}

// multiWriteCount draws the write count for a "rewritten" class: files are
// rewritten a handful of times (checkpoints, corrected runs), far less
// often than they are reread.
func multiWriteCount(rng *rand.Rand) int {
	tail := stats.Pareto{Xm: 0.3, Alpha: 1.5}.Sample(rng)
	n := 2 + int(tail)
	if n > 100 {
		n = 100
	}
	return n
}

// interRefGap draws a same-operation interreference interval: at least
// the 8-hour dedup window (or the pair would collapse), usually next
// morning, sometimes days-to-weeks, with a uniform long tail out to 500
// days so some rereferences arrive more than a year later (Figure 9).
func interRefGap(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	var hours float64
	switch {
	case u < 0.78:
		hours = 11 * lognorm(0.45, rng)
		if hours < 8.5 {
			hours = 8.5
		}
	case u < 0.93:
		hours = 24 * 8 * lognorm(1.1, rng)
		if hours < 24 {
			hours = 24
		}
	default:
		hours = 24 * (45 + rng.Float64()*455)
	}
	return time.Duration(hours * float64(time.Hour))
}

// crossOpGap separates consecutive accesses with *different* operations —
// typically the overnight batch write followed by the morning read. The
// dedup rule only collapses same-op pairs, so these can be much shorter;
// the 4.5-hour floor keeps any same-op pair bridged by one crossover at
// least 9 hours apart, preserving the dedup invariant. These short pairs
// are what puts ~70% of Figure 9's intervals under one day.
func crossOpGap(rng *rand.Rand) time.Duration {
	hours := 4.5 + 2.0*lognorm(0.8, rng)
	return time.Duration(hours * float64(time.Hour))
}

func lognorm(sigma float64, rng *rand.Rand) float64 {
	return stats.Lognormal{Median: 1, Sigma: sigma}.Sample(rng)
}

// planOp is one logical access in a file's plan.
type planOp struct {
	at time.Time
	op trace.Op
}

// buildPlan produces the file's logical access sequence within the trace
// window. Files created during the trace open with their first write;
// pre-existing files start with a read. Accesses whose interreference gaps
// run past the end of the trace are dropped — exactly the truncation a
// real fixed-window trace imposes.
func buildPlan(f *File, birth time.Time, end time.Time, rng *rand.Rand) []planOp {
	nr, nw := f.Class.reads(), f.Class.writes()
	if nr < 0 {
		nr = multiReadCount(rng)
	}
	if nw < 0 {
		nw = multiWriteCount(rng)
	}
	total := nr + nw
	if total == 0 {
		return nil
	}
	// Op sequence: a created file's first access is its creating write;
	// the remaining reads and rewrites interleave uniformly.
	ops := make([]trace.Op, 0, total)
	first := trace.Read
	if nw > 0 {
		first = trace.Write
		nw--
	} else {
		nr--
	}
	for i := 0; i < nr; i++ {
		ops = append(ops, trace.Read)
	}
	for i := 0; i < nw; i++ {
		ops = append(ops, trace.Write)
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	ops = append([]trace.Op{first}, ops...)

	plan := make([]planOp, 0, total)
	t := birth
	for i, op := range ops {
		if !t.Before(end) {
			break
		}
		plan = append(plan, planOp{at: t, op: op})
		if i+1 < len(ops) && ops[i+1] != op {
			t = t.Add(crossOpGap(rng))
		} else {
			t = t.Add(interRefGap(rng))
		}
	}
	return plan
}

// dedupPlanInvariant verifies the §5.3 dedup property a plan must satisfy:
// no two same-op accesses within the eight-hour window. Used by tests.
func dedupPlanInvariant(plan []planOp) bool {
	byOp := map[trace.Op][]time.Time{}
	for _, p := range plan {
		byOp[p.op] = append(byOp[p.op], p.at)
	}
	//lint:sorted-ok order-independent predicate: the result is the AND over all ops, no output or state escapes
	for _, ts := range byOp {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
		for i := 1; i < len(ts); i++ {
			if ts[i].Sub(ts[i-1]) < DedupWindow {
				return false
			}
		}
	}
	return true
}
