package workload

import (
	"math"
	"sync"
	"testing"
	"time"

	"io"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// genOnce caches a mid-size generated trace shared by the calibration
// tests (generation is the expensive step).
var genOnce = struct {
	sync.Once
	res *Result
	err error
}{}

func generated(t *testing.T) *Result {
	t.Helper()
	genOnce.Do(func() {
		genOnce.res, genOnce.err = Generate(DefaultConfig(0.02, 1234))
	})
	if genOnce.err != nil {
		t.Fatalf("Generate: %v", genOnce.err)
	}
	return genOnce.res
}

func TestGenerateBasics(t *testing.T) {
	res := generated(t)
	if len(res.Records) == 0 {
		t.Fatal("no records generated")
	}
	// Sorted by time, inside the window.
	end := res.Config.end()
	for i, r := range res.Records {
		if i > 0 && r.Start.Before(res.Records[i-1].Start) {
			t.Fatalf("record %d out of order", i)
		}
		if r.Start.Before(res.Config.Start) || !r.Start.Before(end) {
			t.Fatalf("record %d at %v outside trace window", i, r.Start)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
	}
}

func TestGenerateScaleApproximation(t *testing.T) {
	res := generated(t)
	// At scale 0.02 expect roughly 0.02 * 3.5M ≈ 70k raw requests.
	// The generator is calibrated to ±40%.
	n := float64(len(res.Records))
	want := 0.02 * PaperRequests
	if n < want*0.6 || n > want*1.4 {
		t.Errorf("records = %.0f, want %.0f±40%%", n, want)
	}
}

func TestReadWriteMixMatchesTable3(t *testing.T) {
	res := generated(t)
	var reads, writes, readGB, writeGB float64
	for _, r := range res.Records {
		if !r.OK() {
			continue
		}
		if r.Op == trace.Read {
			reads++
			readGB += float64(r.Size)
		} else {
			writes++
			writeGB += float64(r.Size)
		}
	}
	refFrac := reads / (reads + writes)
	if refFrac < 0.58 || refFrac > 0.74 {
		t.Errorf("read fraction of references = %.3f, want ~0.66 (Table 3)", refFrac)
	}
	byteFrac := readGB / (readGB + writeGB)
	if byteFrac < 0.62 || byteFrac > 0.82 {
		t.Errorf("read fraction of bytes = %.3f, want ~0.73 (Table 3)", byteFrac)
	}
}

func TestDeviceMixMatchesTable3(t *testing.T) {
	res := generated(t)
	counts := map[device.Class]float64{}
	sizes := map[device.Class]*stats.Moments{
		device.ClassDisk:       {},
		device.ClassSiloTape:   {},
		device.ClassManualTape: {},
	}
	total := 0.0
	for _, r := range res.Records {
		if !r.OK() {
			continue
		}
		counts[r.Device]++
		total++
		sizes[r.Device].Add(float64(r.Size))
	}
	// Table 3 reference mix: disk 66%, silo 20%, manual 12% (of total).
	checks := []struct {
		dev  device.Class
		want float64
		tol  float64
	}{
		{device.ClassDisk, 0.66, 0.10},
		{device.ClassSiloTape, 0.20, 0.09},
		{device.ClassManualTape, 0.12, 0.08},
	}
	for _, c := range checks {
		got := counts[c.dev] / total
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%v reference share = %.3f, want %.2f±%.2f", c.dev, got, c.want, c.tol)
		}
	}
	// Average request sizes (Table 3): disk 3.75 MB, silo ~80 MB,
	// manual ~47 MB. Shapes: disk small; silo largest; manual between.
	disk := units.Bytes(sizes[device.ClassDisk].Mean())
	silo := units.Bytes(sizes[device.ClassSiloTape].Mean())
	manual := units.Bytes(sizes[device.ClassManualTape].Mean())
	if disk > units.Bytes(10*units.MB) {
		t.Errorf("disk mean request size = %v, want a few MB", disk)
	}
	if silo < units.Bytes(45*units.MB) {
		t.Errorf("silo mean request size = %v, want ~80 MB", silo)
	}
	if manual >= silo {
		t.Errorf("manual mean (%v) should be below silo mean (%v), Table 3", manual, silo)
	}
	if manual < units.Bytes(15*units.MB) {
		t.Errorf("manual mean request size = %v, want ~47 MB", manual)
	}
}

func TestManualTapeIsReadDominated(t *testing.T) {
	res := generated(t)
	var reads, writes float64
	for _, r := range res.Records {
		if r.OK() && r.Device == device.ClassManualTape {
			if r.Op == trace.Read {
				reads++
			} else {
				writes++
			}
		}
	}
	// Table 3: manual-tape writes are only 2% of manual activity.
	frac := writes / (reads + writes)
	if frac > 0.10 {
		t.Errorf("manual write share = %.3f, want under 0.10", frac)
	}
}

func TestErrorFraction(t *testing.T) {
	res := generated(t)
	errs := 0.0
	for _, r := range res.Records {
		if !r.OK() {
			errs++
			if r.Err != trace.ErrNoFile {
				t.Fatalf("unexpected error code %v", r.Err)
			}
		}
	}
	frac := errs / float64(len(res.Records))
	if math.Abs(frac-ErrorFraction) > 0.01 {
		t.Errorf("error fraction = %.4f, want %.4f (§5.1)", frac, ErrorFraction)
	}
}

func TestDiskThresholdRespected(t *testing.T) {
	res := generated(t)
	for _, r := range res.Records {
		if !r.OK() {
			continue
		}
		// The MSS sends everything over 30 MB straight to tape: no large
		// file may ever appear on the staging disks.
		if r.Device == device.ClassDisk && int64(r.Size) > int64(DiskThreshold) {
			t.Fatalf("%v-byte file on disk violates the 30 MB placement rule", r.Size)
		}
	}
}

func TestWritesFlatReadsPeaked(t *testing.T) {
	res := generated(t)
	var readByHour, writeByHour [24]float64
	for _, r := range res.Records {
		if !r.OK() {
			continue
		}
		h := r.Start.Hour()
		if r.Op == trace.Read {
			readByHour[h]++
		} else {
			writeByHour[h]++
		}
	}
	ratio := func(a [24]float64) float64 {
		min, max := a[0], a[0]
		for _, v := range a {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min == 0 {
			min = 1
		}
		return max / min
	}
	if r := ratio(readByHour); r < 2.5 {
		t.Errorf("read hourly peak/trough = %.2f, want strong diurnal swing (Figure 4)", r)
	}
	if w := ratio(writeByHour); w > 1.6 {
		t.Errorf("write hourly peak/trough = %.2f, want nearly flat (Figure 4)", w)
	}
}

func TestWeekendReadDip(t *testing.T) {
	res := generated(t)
	var weekday, weekend float64
	var wdDays, weDays float64
	for d := 0; d < res.Config.Days; d++ {
		if wd := res.Rhythm.weekday(d); wd == time.Saturday || wd == time.Sunday {
			weDays++
		} else {
			wdDays++
		}
	}
	for _, r := range res.Records {
		if !r.OK() || r.Op != trace.Read {
			continue
		}
		if wd := r.Start.Weekday(); wd == time.Saturday || wd == time.Sunday {
			weekend++
		} else {
			weekday++
		}
	}
	perWeekday := weekday / wdDays
	perWeekend := weekend / weDays
	if perWeekend > 0.75*perWeekday {
		t.Errorf("weekend read rate %.1f vs weekday %.1f — want a clear dip (Figure 5)",
			perWeekend, perWeekday)
	}
}

func TestBurstInterarrivals(t *testing.T) {
	res := generated(t)
	var gaps stats.CDF
	for i := 1; i < len(res.Records); i++ {
		gaps.Add(res.Records[i].Start.Sub(res.Records[i-1].Start).Seconds())
	}
	// Figure 7: 90% of requests follow the previous one within 10 s at
	// full scale. At 2% scale the stream is 50x sparser, so the
	// within-burst fraction bounds what is achievable; require a strong
	// knee under 10 s.
	frac := gaps.P(10)
	if frac < 0.55 {
		t.Errorf("P(interarrival < 10s) = %.3f, want >= 0.55 (bursts on)", frac)
	}
}

func TestBurstsAblation(t *testing.T) {
	cfg := DefaultConfig(0.005, 99)
	cfg.Bursts = false
	flat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Bursts = true
	bursty, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := func(res *Result) float64 {
		var gaps stats.CDF
		for i := 1; i < len(res.Records); i++ {
			gaps.Add(res.Records[i].Start.Sub(res.Records[i-1].Start).Seconds())
		}
		return gaps.P(10)
	}
	if p(bursty) <= p(flat)+0.2 {
		t.Errorf("bursts should sharply raise P(<10s): bursty=%.3f flat=%.3f",
			p(bursty), p(flat))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig(0.003, 7)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across identical seeds", i)
		}
	}
}

func TestGenerateErrorsOnBadConfig(t *testing.T) {
	bad := DefaultConfig(0.01, 1)
	bad.Scale = 2
	if _, err := Generate(bad); err == nil {
		t.Error("scale > 1 should fail")
	}
	bad = DefaultConfig(0.01, 1)
	bad.Days = 3
	if _, err := Generate(bad); err == nil {
		t.Error("too-short trace should fail")
	}
	bad = DefaultConfig(0.01, 1)
	bad.Files = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero files should fail")
	}
}

func TestGeneratedPathsMatchNamespace(t *testing.T) {
	res := generated(t)
	// Every OK record's MSS path must come from the namespace tree.
	for _, r := range res.Records[:min(len(res.Records), 5000)] {
		if !r.OK() {
			continue
		}
		if len(r.MSSPath) == 0 || r.MSSPath[0] != '/' {
			t.Fatalf("bad MSS path %q", r.MSSPath)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRoundTripThroughCodec(t *testing.T) {
	cfg := DefaultConfig(0.002, 11)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf writerBuffer
	if err := trace.WriteAll(&buf, res.Records); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(res.Records) {
		t.Fatalf("decoded %d records, want %d", len(got), len(res.Records))
	}
}

// writerBuffer is a minimal bytes.Buffer stand-in to avoid importing bytes
// into this already-long test file... actually, simplicity wins:
type writerBuffer struct {
	data []byte
	off  int
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, errEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

var errEOF = io.EOF
