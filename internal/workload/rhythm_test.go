package workload

import (
	"math/rand"
	"testing"
	"time"

	"filemig/internal/trace"
)

func testRhythm() *Rhythm {
	return NewRhythm(trace.Epoch, PaperSpanDays, true, 2.0)
}

func TestReadHourProfileShape(t *testing.T) {
	// Figure 4: reads jump at 8 AM, stay high through the afternoon, and
	// decay slowly in the evening.
	if readHourWeights[8] < 2*readHourWeights[7] {
		t.Error("read intensity should jump sharply at 8 AM")
	}
	if readHourWeights[10] < readHourWeights[3]*4 {
		t.Error("mid-morning should dwarf the small hours")
	}
	// "The fall is slower than the rise": 3 hours after the 16:00 peak-end
	// should still be busier than 3 hours before the 8:00 jump.
	if readHourWeights[19] <= readHourWeights[5] {
		t.Error("evening tail should exceed early morning (scientists stay late)")
	}
}

func TestWriteHourProfileNearlyFlat(t *testing.T) {
	min, max := writeHourWeights[0], writeHourWeights[0]
	for _, w := range writeHourWeights {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max/min > 1.25 {
		t.Errorf("write profile varies %vx across the day, want under 1.25x (§5.2)", max/min)
	}
}

func TestDayWeights(t *testing.T) {
	// Figure 5: weekends low for reads.
	if readDayWeights[0] > 0.7 || readDayWeights[6] > 0.7 {
		t.Error("weekend read weight should be well below weekday")
	}
	// Monday is the lowest weekday.
	for d := 2; d <= 5; d++ {
		if readDayWeights[1] >= readDayWeights[d] {
			t.Errorf("Monday (%v) should be the slowest weekday (day %d = %v)",
				readDayWeights[1], d, readDayWeights[d])
		}
	}
	// Writes barely vary.
	for d := 1; d < 7; d++ {
		if writeDayWeights[d]/writeDayWeights[0] > 1.1 || writeDayWeights[0]/writeDayWeights[d] > 1.1 {
			t.Error("write day weights should be nearly constant")
		}
	}
}

func TestHolidayCalendar(t *testing.T) {
	r := testRhythm()
	// Thanksgiving 1990 was November 22; trace day index from Oct 1.
	tg1990 := int(time.Date(1990, 11, 22, 0, 0, 0, 0, time.UTC).Sub(trace.Epoch).Hours() / 24)
	if !r.IsHoliday(tg1990) {
		t.Errorf("day %d (Thanksgiving 1990) should be a holiday", tg1990)
	}
	// Thanksgiving 1991 was November 28.
	tg1991 := int(time.Date(1991, 11, 28, 0, 0, 0, 0, time.UTC).Sub(trace.Epoch).Hours() / 24)
	if !r.IsHoliday(tg1991) {
		t.Errorf("day %d (Thanksgiving 1991) should be a holiday", tg1991)
	}
	// Christmas both years.
	for _, y := range []int{1990, 1991} {
		d := int(time.Date(y, 12, 25, 0, 0, 0, 0, time.UTC).Sub(trace.Epoch).Hours() / 24)
		if !r.IsHoliday(d) {
			t.Errorf("Christmas %d (day %d) should be a holiday", y, d)
		}
	}
	// A plain mid-July day is not.
	july := int(time.Date(1991, 7, 15, 0, 0, 0, 0, time.UTC).Sub(trace.Epoch).Hours() / 24)
	if r.IsHoliday(july) {
		t.Error("mid-July should not be a holiday")
	}
	// Holidays off.
	r2 := NewRhythm(trace.Epoch, PaperSpanDays, false, 2.0)
	if r2.IsHoliday(tg1990) {
		t.Error("holidays disabled but still marked")
	}
}

func TestHolidaySuppressesReadsNotWrites(t *testing.T) {
	r := testRhythm()
	xmas := int(time.Date(1990, 12, 25, 0, 0, 0, 0, time.UTC).Sub(trace.Epoch).Hours() / 24)
	normal := xmas - 21 // same weekday three weeks earlier
	if r.ReadDayWeight(xmas) >= 0.5*r.ReadDayWeight(normal) {
		t.Errorf("Christmas read weight %v vs normal %v — want a deep dip",
			r.ReadDayWeight(xmas), r.ReadDayWeight(normal))
	}
	if r.WriteDayWeight(xmas) < r.WriteDayWeight(normal) {
		t.Errorf("Christmas write weight %v vs normal %v — writes must not dip (they rise)",
			r.WriteDayWeight(xmas), r.WriteDayWeight(normal))
	}
}

func TestGrowthAveragesToOne(t *testing.T) {
	r := testRhythm()
	sum := 0.0
	for d := 0; d < r.Days(); d++ {
		sum += r.growth(d)
	}
	mean := sum / float64(r.Days())
	if mean < 0.98 || mean > 1.02 {
		t.Errorf("growth mean = %v, want ~1", mean)
	}
	// End-to-start ratio equals the configured growth.
	ratio := r.growth(r.Days()-1) / r.growth(0)
	if ratio < 1.95 || ratio > 2.05 {
		t.Errorf("growth ratio = %v, want ~2", ratio)
	}
}

func TestGrowthDisabled(t *testing.T) {
	r := NewRhythm(trace.Epoch, 100, false, 0) // non-positive => flat
	if r.growth(0) != 1 || r.growth(99) != 1 {
		t.Error("growth should be flat when disabled")
	}
}

func TestSampleHoursFollowProfile(t *testing.T) {
	r := testRhythm()
	rng := rand.New(rand.NewSource(5))
	counts := [24]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.SampleReadHour(rng)]++
	}
	// 10 AM should see roughly readHourWeights[10]/readHourWeights[3]
	// times the 3 AM traffic.
	ratio := float64(counts[10]) / float64(counts[3])
	want := readHourWeights[10] / readHourWeights[3]
	if ratio < want*0.7 || ratio > want*1.3 {
		t.Errorf("hour ratio 10/3 = %v, want ~%v", ratio, want)
	}
	wcounts := [24]int{}
	for i := 0; i < n; i++ {
		wcounts[r.SampleWriteHour(rng)]++
	}
	wratio := float64(wcounts[10]) / float64(wcounts[3])
	if wratio > 1.35 {
		t.Errorf("write hours should be nearly flat, 10/3 ratio = %v", wratio)
	}
}

func TestMaxReadDayWeightBounds(t *testing.T) {
	r := testRhythm()
	max := r.MaxReadDayWeight()
	for d := 0; d < r.Days(); d++ {
		if r.ReadDayWeight(d) > max {
			t.Fatalf("day %d weight %v exceeds reported max %v", d, r.ReadDayWeight(d), max)
		}
	}
}
