package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"filemig/internal/device"
	"filemig/internal/namespace"
	"filemig/internal/stats"
	"filemig/internal/trace"
)

// Residence/routing model constants (§3.1, §5.1, Table 3). Small files
// live on the 3090 staging disks until they go cold; big files go straight
// to tape; cold silo cartridges are eventually shelved and need an
// operator.
const (
	// migrationWindow is how long a ≤30 MB file stays on MSS disk without
	// a reference before the MSS's internal migration moves it to tape.
	migrationWindow = 45 * 24 * time.Hour
	// shelfAge is the age past which a tape-resident file's cartridge has
	// been moved from the silo to shelf storage.
	shelfAge = 270 * 24 * time.Hour
	// manualWriteFraction of tape writes go to operator-mounted drives
	// (exports and special requests); Table 3 shows only 2% of manual
	// activity is writes.
	manualWriteFraction = 0.05
)

// Result is a generated trace plus the artefacts the analyzers need.
type Result struct {
	Config     Config
	Records    []trace.Record // time-sorted; latency fields zero (simulator fills them)
	Population *Population
	Tree       *namespace.Tree
	Rhythm     *Rhythm
}

// Generate synthesizes a trace. It is deterministic for a given Config.
// It is the materializing form of GenerateStream: the same records, as a
// slice.
func Generate(cfg Config) (*Result, error) {
	sr, err := GenerateStream(cfg)
	if err != nil {
		return nil, err
	}
	recs, err := trace.Collect(sr.Stream)
	if err != nil {
		return nil, err
	}
	return &Result{Config: sr.Config, Records: recs, Population: sr.Population,
		Tree: sr.Tree, Rhythm: sr.Rhythm}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type generator struct {
	cfg    Config
	rhythm *Rhythm
	tree   *namespace.Tree
	pop    *Population
}

// planFile expands one file into compact planned accesses: its logical
// plan, rhythm-mapped timestamps, device routing with residence tracking,
// and within-eight-hour duplicate requests. Each planned access carries
// its global emission sequence number, the tie-break that makes the
// streaming merge reproduce a stable sort of the eager emission order.
// A plannedAccess is a quarter the size of a trace.Record (the paths,
// size and user are per-file and materialize only when the stream
// assembles the record), which is what lets GenerateStream hold the plan
// instead of the trace.
func (g *generator) planFile(f *File, rng *rand.Rand, seq *int32) []plannedAccess {
	birth := g.sampleBirth(f, rng)
	plan := buildPlan(f, birth, g.cfg.end(), rng)
	if len(plan) == 0 {
		return nil
	}

	// Residence state. Pre-existing files start cold on shelf tape; files
	// created in-trace materialise with their first write.
	onDisk := false
	lastTouch := birth.Add(-2 * shelfAge) // pre-existing: long cold
	var created time.Time
	if f.PreExists {
		created = birth.Add(-2 * shelfAge)
	}

	var accs []plannedAccess
	for planIdx, p := range plan {
		at := g.mapToRhythm(p.at, p.op, planIdx == 0, rng)
		if !at.Before(g.cfg.end()) {
			continue
		}
		var dev device.Class
		if p.op == trace.Write {
			if created.IsZero() {
				created = at
			}
			dev = g.routeWrite(f, rng)
			onDisk = dev == device.ClassDisk
		} else {
			dev = g.routeRead(f, at, onDisk, lastTouch, created, rng)
			// An explicit read recalls small files to the staging disks.
			if int64(f.Size) <= int64(DiskThreshold) {
				onDisk = true
			}
		}
		lastTouch = at
		accs = appendAccess(accs, at, p.op, dev, seq)
		// Duplicates: batch scripts re-request the same file within the
		// eight-hour window (§6), on the same device.
		accs = g.planDuplicates(at, p.op, dev, rng, seq, accs)
	}
	return accs
}

// plannedAccess is one routed raw access before record assembly: when it
// happens, which way the data moves, and which device serves it.
type plannedAccess struct {
	at  time.Time
	seq int32 // global emission order; stable-sort tie-break
	op  uint8 // trace.Op
	dev uint8 // device.Class
}

// appendAccess appends one planned access and advances the sequence.
func appendAccess(accs []plannedAccess, at time.Time, op trace.Op, dev device.Class, seq *int32) []plannedAccess {
	accs = append(accs, plannedAccess{at: at, seq: *seq, op: uint8(op), dev: uint8(dev)})
	*seq++
	return accs
}

// sampleBirth places the file's first logical access. Created files are
// born uniformly across the trace (write intensity is flat); pre-existing
// files surface with a read, so their first access follows read intensity.
func (g *generator) sampleBirth(f *File, rng *rand.Rand) time.Time {
	day := rng.Intn(g.cfg.Days)
	if f.PreExists {
		day = g.sampleReadDay(rng)
	}
	secs := rng.Int63n(24 * 3600)
	return g.cfg.Start.AddDate(0, 0, day).Add(time.Duration(secs) * time.Second)
}

// sampleReadDay draws a trace day proportional to read intensity
// (weekday, holiday, growth) by rejection.
func (g *generator) sampleReadDay(rng *rand.Rand) int {
	max := g.rhythm.MaxReadDayWeight()
	for {
		d := rng.Intn(g.cfg.Days)
		if rng.Float64()*max <= g.rhythm.ReadDayWeight(d) {
			return d
		}
	}
}

// mapToRhythm rewrites an access's nominal time to honour the calendar:
// reads are pushed onto acceptable days (weekday/holiday/growth weighting)
// and given a working-hours hour-of-day; writes keep their day and get a
// flat hour. A file's first access uses full-strength day rejection (it
// sets the weekly shape); follow-up reads use a softened acceptance so
// they stay near their nominal day and Figure 9's short intervals
// survive. Seconds are drawn uniformly and later rewritten by burst
// packing.
func (g *generator) mapToRhythm(at time.Time, op trace.Op, first bool, rng *rand.Rand) time.Time {
	day := int(at.Sub(g.cfg.Start) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	if day >= g.cfg.Days {
		return g.cfg.end() // dropped by caller
	}
	var hour int
	if op == trace.Read {
		max := g.rhythm.MaxReadDayWeight()
		for tries := 0; tries < 14; tries++ {
			accept := g.rhythm.ReadDayWeight(day) / max
			if !first {
				// Soften the weekday/growth filter for follow-up reads so
				// they stay near their nominal day and Figure 9's short
				// intervals survive the calendar remap — but keep holiday
				// suppression at full strength: nobody reads model output
				// on Christmas Day no matter when it was written.
				hol := g.rhythm.HolidayFactor(day)
				base := accept / hol
				accept = hol * math.Pow(base, 0.4)
			}
			if rng.Float64() <= accept {
				break
			}
			day++
			if day >= g.cfg.Days {
				return g.cfg.end()
			}
		}
		hour = g.rhythm.SampleReadHour(rng)
	} else {
		hour = g.rhythm.SampleWriteHour(rng)
	}
	sec := rng.Int63n(3600)
	return g.cfg.Start.AddDate(0, 0, day).
		Add(time.Duration(hour) * time.Hour).
		Add(time.Duration(sec) * time.Second)
}

// routeWrite picks the destination device per the MSS placement policy.
func (g *generator) routeWrite(f *File, rng *rand.Rand) device.Class {
	if int64(f.Size) <= int64(DiskThreshold) {
		return device.ClassDisk
	}
	if rng.Float64() < manualWriteFraction {
		return device.ClassManualTape
	}
	return device.ClassSiloTape
}

// routeRead picks the source device from the file's residence state.
func (g *generator) routeRead(f *File, at time.Time, onDisk bool, lastTouch, created time.Time, rng *rand.Rand) device.Class {
	small := int64(f.Size) <= int64(DiskThreshold)
	if small && onDisk && at.Sub(lastTouch) <= migrationWindow {
		return device.ClassDisk
	}
	// The file is on tape: silo if its cartridge is still young, shelf
	// (operator) once it has aged out.
	age := at.Sub(created)
	if created.IsZero() {
		age = 2 * shelfAge
	}
	if age > shelfAge {
		return device.ClassManualTape
	}
	return device.ClassSiloTape
}

// planDuplicates appends the §6 repeat requests: Poisson-ish count with
// the configured mean, offsets lognormal around 40 minutes, capped inside
// the dedup window. Duplicates repeat the same operation on the same
// device.
func (g *generator) planDuplicates(at time.Time, op trace.Op, dev device.Class,
	rng *rand.Rand, seq *int32, accs []plannedAccess) []plannedAccess {
	if g.cfg.DuplicateMean <= 0 {
		return accs
	}
	p := g.cfg.DuplicateMean / (1 + g.cfg.DuplicateMean)
	n := int(stats.Geometric{P: 1 - p}.Sample(rng))
	for i := 0; i < n; i++ {
		off := time.Duration(40*lognorm(1.0, rng)) * time.Minute
		if off >= DedupWindow {
			off = DedupWindow - time.Minute
		}
		dupAt := at.Add(off)
		if dupAt.Before(g.cfg.end()) {
			accs = appendAccess(accs, dupAt, op, dev, seq)
		}
	}
	return accs
}

// buildErrors materialises the error requests for files that never
// existed (§5.1: 4.76% of references, dominated by nonexistence errors).
// They carry a size of zero, land on the disk path the lookup would have
// taken, and fail. planned is the number of good accesses already
// planned; the error count keeps the configured fraction of the total.
func (g *generator) buildErrors(rng *rand.Rand, planned int) []trace.Record {
	if g.cfg.ErrorFraction <= 0 {
		return nil
	}
	n := int(float64(planned) * g.cfg.ErrorFraction / (1 - g.cfg.ErrorFraction))
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		day := g.sampleReadDay(rng)
		hour := g.rhythm.SampleReadHour(rng)
		at := g.cfg.Start.AddDate(0, 0, day).
			Add(time.Duration(hour) * time.Hour).
			Add(time.Duration(rng.Int63n(3600)) * time.Second)
		uid := uint32(1 + rng.Intn(g.cfg.Users))
		recs = append(recs, trace.Record{
			Start:     at,
			Op:        trace.Read,
			Device:    device.ClassDisk,
			Err:       trace.ErrNoFile,
			Size:      0,
			MSSPath:   fmt.Sprintf("/mss/missing/f%d", rng.Intn(1<<30)),
			LocalPath: fmt.Sprintf("/usr/tmp/u%d/missing", uid),
			UserID:    uid,
		})
	}
	return recs
}

// Burst-packing parameters (Figure 7): sessions of about a dozen
// requests with seconds-scale intra-burst gaps.
const (
	meanBurstLen  = 12.0
	smallGapMean  = 2.5 // seconds
	smallGapFloor = 0.5
)

func packHour(recs []trace.Record, hour time.Time, rng *rand.Rand, meanBurst, gapMean, gapFloor float64) {
	n := len(recs)
	// Expected seconds consumed by small gaps; the rest spreads across
	// burst boundaries.
	bursts := float64(n)/meanBurst + 1
	largeMean := (3600 - float64(n)*gapMean) / bursts
	if largeMean < 5 {
		largeMean = 5
	}
	offsets := make([]float64, n)
	t := rng.Float64() * largeMean / 2
	remaining := 0 // remaining requests in current burst
	for k := 0; k < n; k++ {
		if remaining == 0 {
			if k > 0 {
				t += rng.ExpFloat64() * largeMean
			}
			remaining = 1 + int(stats.Geometric{P: 1 / meanBurst}.Sample(rng))
		} else {
			t += gapFloor + rng.ExpFloat64()*gapMean
		}
		remaining--
		offsets[k] = t
	}
	// Keep everything inside the hour: rescale only if we overflowed.
	if last := offsets[n-1]; last >= 3599 {
		scale := 3599 / last
		for k := range offsets {
			offsets[k] *= scale
		}
	}
	for k := range recs {
		recs[k].Start = hour.Add(time.Duration(offsets[k] * float64(time.Second)))
	}
}
