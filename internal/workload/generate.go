package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"filemig/internal/device"
	"filemig/internal/namespace"
	"filemig/internal/stats"
	"filemig/internal/trace"
)

// Residence/routing model constants (§3.1, §5.1, Table 3). Small files
// live on the 3090 staging disks until they go cold; big files go straight
// to tape; cold silo cartridges are eventually shelved and need an
// operator.
const (
	// migrationWindow is how long a ≤30 MB file stays on MSS disk without
	// a reference before the MSS's internal migration moves it to tape.
	migrationWindow = 45 * 24 * time.Hour
	// shelfAge is the age past which a tape-resident file's cartridge has
	// been moved from the silo to shelf storage.
	shelfAge = 270 * 24 * time.Hour
	// manualWriteFraction of tape writes go to operator-mounted drives
	// (exports and special requests); Table 3 shows only 2% of manual
	// activity is writes.
	manualWriteFraction = 0.05
)

// Result is a generated trace plus the artefacts the analyzers need.
type Result struct {
	Config     Config
	Records    []trace.Record // time-sorted; latency fields zero (simulator fills them)
	Population *Population
	Tree       *namespace.Tree
	Rhythm     *Rhythm
}

// Generate synthesizes a trace. It is deterministic for a given Config.
func Generate(cfg Config) (*Result, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("workload: scale %v out of (0,1]", cfg.Scale)
	}
	if cfg.Days < 7 {
		return nil, fmt.Errorf("workload: need at least 7 days, got %d", cfg.Days)
	}
	if cfg.Files < 1 || cfg.Users < 1 {
		return nil, fmt.Errorf("workload: files (%d) and users (%d) must be positive", cfg.Files, cfg.Users)
	}
	if cfg.Start.IsZero() {
		cfg.Start = trace.Epoch
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	treeRng := rand.New(rand.NewSource(master.Int63()))
	popRng := rand.New(rand.NewSource(master.Int63()))
	planRng := rand.New(rand.NewSource(master.Int63()))
	errRng := rand.New(rand.NewSource(master.Int63()))
	burstRng := rand.New(rand.NewSource(master.Int63()))

	// Namespace scaled to keep the paper's ~6.3 files/directory.
	nsCfg := namespace.DefaultConfig(1.0, treeRng.Int63())
	nsCfg.Dirs = maxInt(1, cfg.Files*143245/PaperFiles)
	nsCfg.Files = cfg.Files
	if nsCfg.Dirs < nsCfg.MaxDepth+1 {
		nsCfg.MaxDepth = maxInt(1, nsCfg.Dirs-1)
	}
	tree, err := namespace.Generate(nsCfg)
	if err != nil {
		return nil, fmt.Errorf("workload: namespace: %v", err)
	}

	pop := NewPopulation(cfg.Files, cfg.Users, popRng)
	for i := range pop.Files {
		tree.AddBytes(i, pop.Files[i].Size)
	}
	rhythm := NewRhythm(cfg.Start, cfg.Days, cfg.Holidays, cfg.ReadGrowth)

	g := &generator{cfg: cfg, rhythm: rhythm, tree: tree, pop: pop}
	var recs []trace.Record
	for i := range pop.Files {
		recs = g.emitFile(&pop.Files[i], planRng, recs)
	}
	recs = g.emitErrors(errRng, recs)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	if cfg.Bursts {
		packBursts(recs, burstRng)
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	}
	return &Result{Config: cfg, Records: recs, Population: pop, Tree: tree, Rhythm: rhythm}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type generator struct {
	cfg    Config
	rhythm *Rhythm
	tree   *namespace.Tree
	pop    *Population
}

// emitFile expands one file into raw trace records: its logical plan,
// rhythm-mapped timestamps, device routing with residence tracking, and
// within-eight-hour duplicate requests.
func (g *generator) emitFile(f *File, rng *rand.Rand, recs []trace.Record) []trace.Record {
	birth := g.sampleBirth(f, rng)
	plan := buildPlan(f, birth, g.cfg.end(), rng)
	if len(plan) == 0 {
		return recs
	}
	mssPath := g.tree.FilePath(f.ID)
	localPath := fmt.Sprintf("/usr/tmp/u%d/f%d", f.Owner, f.ID)

	// Residence state. Pre-existing files start cold on shelf tape; files
	// created in-trace materialise with their first write.
	onDisk := false
	lastTouch := birth.Add(-2 * shelfAge) // pre-existing: long cold
	var created time.Time
	if f.PreExists {
		created = birth.Add(-2 * shelfAge)
	}

	for planIdx, p := range plan {
		at := g.mapToRhythm(p.at, p.op, planIdx == 0, rng)
		if !at.Before(g.cfg.end()) {
			continue
		}
		var dev device.Class
		if p.op == trace.Write {
			if created.IsZero() {
				created = at
			}
			dev = g.routeWrite(f, rng)
			onDisk = dev == device.ClassDisk
		} else {
			dev = g.routeRead(f, at, onDisk, lastTouch, created, rng)
			// An explicit read recalls small files to the staging disks.
			if int64(f.Size) <= int64(DiskThreshold) {
				onDisk = true
			}
		}
		lastTouch = at
		rec := trace.Record{
			Start:     at,
			Op:        p.op,
			Device:    dev,
			Size:      f.Size,
			MSSPath:   mssPath,
			LocalPath: localPath,
			UserID:    f.Owner,
		}
		recs = append(recs, rec)
		// Duplicates: batch scripts re-request the same file within the
		// eight-hour window (§6), on the same device.
		recs = g.emitDuplicates(rec, rng, recs)
	}
	return recs
}

// sampleBirth places the file's first logical access. Created files are
// born uniformly across the trace (write intensity is flat); pre-existing
// files surface with a read, so their first access follows read intensity.
func (g *generator) sampleBirth(f *File, rng *rand.Rand) time.Time {
	day := rng.Intn(g.cfg.Days)
	if f.PreExists {
		day = g.sampleReadDay(rng)
	}
	secs := rng.Int63n(24 * 3600)
	return g.cfg.Start.AddDate(0, 0, day).Add(time.Duration(secs) * time.Second)
}

// sampleReadDay draws a trace day proportional to read intensity
// (weekday, holiday, growth) by rejection.
func (g *generator) sampleReadDay(rng *rand.Rand) int {
	max := g.rhythm.MaxReadDayWeight()
	for {
		d := rng.Intn(g.cfg.Days)
		if rng.Float64()*max <= g.rhythm.ReadDayWeight(d) {
			return d
		}
	}
}

// mapToRhythm rewrites an access's nominal time to honour the calendar:
// reads are pushed onto acceptable days (weekday/holiday/growth weighting)
// and given a working-hours hour-of-day; writes keep their day and get a
// flat hour. A file's first access uses full-strength day rejection (it
// sets the weekly shape); follow-up reads use a softened acceptance so
// they stay near their nominal day and Figure 9's short intervals
// survive. Seconds are drawn uniformly and later rewritten by burst
// packing.
func (g *generator) mapToRhythm(at time.Time, op trace.Op, first bool, rng *rand.Rand) time.Time {
	day := int(at.Sub(g.cfg.Start) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	if day >= g.cfg.Days {
		return g.cfg.end() // dropped by caller
	}
	var hour int
	if op == trace.Read {
		max := g.rhythm.MaxReadDayWeight()
		for tries := 0; tries < 14; tries++ {
			accept := g.rhythm.ReadDayWeight(day) / max
			if !first {
				// Soften the weekday/growth filter for follow-up reads so
				// they stay near their nominal day and Figure 9's short
				// intervals survive the calendar remap — but keep holiday
				// suppression at full strength: nobody reads model output
				// on Christmas Day no matter when it was written.
				hol := g.rhythm.HolidayFactor(day)
				base := accept / hol
				accept = hol * math.Pow(base, 0.4)
			}
			if rng.Float64() <= accept {
				break
			}
			day++
			if day >= g.cfg.Days {
				return g.cfg.end()
			}
		}
		hour = g.rhythm.SampleReadHour(rng)
	} else {
		hour = g.rhythm.SampleWriteHour(rng)
	}
	sec := rng.Int63n(3600)
	return g.cfg.Start.AddDate(0, 0, day).
		Add(time.Duration(hour) * time.Hour).
		Add(time.Duration(sec) * time.Second)
}

// routeWrite picks the destination device per the MSS placement policy.
func (g *generator) routeWrite(f *File, rng *rand.Rand) device.Class {
	if int64(f.Size) <= int64(DiskThreshold) {
		return device.ClassDisk
	}
	if rng.Float64() < manualWriteFraction {
		return device.ClassManualTape
	}
	return device.ClassSiloTape
}

// routeRead picks the source device from the file's residence state.
func (g *generator) routeRead(f *File, at time.Time, onDisk bool, lastTouch, created time.Time, rng *rand.Rand) device.Class {
	small := int64(f.Size) <= int64(DiskThreshold)
	if small && onDisk && at.Sub(lastTouch) <= migrationWindow {
		return device.ClassDisk
	}
	// The file is on tape: silo if its cartridge is still young, shelf
	// (operator) once it has aged out.
	age := at.Sub(created)
	if created.IsZero() {
		age = 2 * shelfAge
	}
	if age > shelfAge {
		return device.ClassManualTape
	}
	return device.ClassSiloTape
}

// emitDuplicates appends the §6 repeat requests: Poisson-ish count with
// the configured mean, offsets lognormal around 40 minutes, capped inside
// the dedup window.
func (g *generator) emitDuplicates(rec trace.Record, rng *rand.Rand, recs []trace.Record) []trace.Record {
	if g.cfg.DuplicateMean <= 0 {
		return recs
	}
	p := g.cfg.DuplicateMean / (1 + g.cfg.DuplicateMean)
	n := int(stats.Geometric{P: 1 - p}.Sample(rng))
	for i := 0; i < n; i++ {
		off := time.Duration(40*lognorm(1.0, rng)) * time.Minute
		if off >= DedupWindow {
			off = DedupWindow - time.Minute
		}
		dup := rec
		dup.Start = rec.Start.Add(off)
		if dup.Start.Before(g.cfg.end()) {
			recs = append(recs, dup)
		}
	}
	return recs
}

// emitErrors injects requests for files that never existed (§5.1: 4.76% of
// references, dominated by nonexistence errors). They carry a size of
// zero, land on the disk path the lookup would have taken, and fail.
func (g *generator) emitErrors(rng *rand.Rand, recs []trace.Record) []trace.Record {
	if g.cfg.ErrorFraction <= 0 {
		return recs
	}
	n := int(float64(len(recs)) * g.cfg.ErrorFraction / (1 - g.cfg.ErrorFraction))
	for i := 0; i < n; i++ {
		day := g.sampleReadDay(rng)
		hour := g.rhythm.SampleReadHour(rng)
		at := g.cfg.Start.AddDate(0, 0, day).
			Add(time.Duration(hour) * time.Hour).
			Add(time.Duration(rng.Int63n(3600)) * time.Second)
		uid := uint32(1 + rng.Intn(g.cfg.Users))
		recs = append(recs, trace.Record{
			Start:     at,
			Op:        trace.Read,
			Device:    device.ClassDisk,
			Err:       trace.ErrNoFile,
			Size:      0,
			MSSPath:   fmt.Sprintf("/mss/missing/f%d", rng.Intn(1<<30)),
			LocalPath: fmt.Sprintf("/usr/tmp/u%d/missing", uid),
			UserID:    uid,
		})
	}
	return recs
}

// packBursts rewrites the within-hour second offsets of a time-sorted
// record slice so requests arrive in sessions: geometric bursts with
// seconds-scale intra-burst gaps. This produces Figure 7's knee — 90% of
// successive MSS requests within 10 seconds — while leaving hour-level
// rhythm untouched.
func packBursts(recs []trace.Record, rng *rand.Rand) {
	const (
		meanBurstLen  = 12.0
		smallGapMean  = 2.5 // seconds
		smallGapFloor = 0.5
	)
	i := 0
	for i < len(recs) {
		// Find the run of records in the same hour.
		hour := recs[i].Start.Truncate(time.Hour)
		j := i
		for j < len(recs) && recs[j].Start.Truncate(time.Hour).Equal(hour) {
			j++
		}
		n := j - i
		if n > 1 {
			packHour(recs[i:j], hour, rng, meanBurstLen, smallGapMean, smallGapFloor)
		}
		i = j
	}
}

func packHour(recs []trace.Record, hour time.Time, rng *rand.Rand, meanBurst, gapMean, gapFloor float64) {
	n := len(recs)
	// Expected seconds consumed by small gaps; the rest spreads across
	// burst boundaries.
	bursts := float64(n)/meanBurst + 1
	largeMean := (3600 - float64(n)*gapMean) / bursts
	if largeMean < 5 {
		largeMean = 5
	}
	offsets := make([]float64, n)
	t := rng.Float64() * largeMean / 2
	remaining := 0 // remaining requests in current burst
	for k := 0; k < n; k++ {
		if remaining == 0 {
			if k > 0 {
				t += rng.ExpFloat64() * largeMean
			}
			remaining = 1 + int(stats.Geometric{P: 1 / meanBurst}.Sample(rng))
		} else {
			t += gapFloor + rng.ExpFloat64()*gapMean
		}
		remaining--
		offsets[k] = t
	}
	// Keep everything inside the hour: rescale only if we overflowed.
	if last := offsets[n-1]; last >= 3599 {
		scale := 3599 / last
		for k := range offsets {
			offsets[k] *= scale
		}
	}
	for k := range recs {
		recs[k].Start = hour.Add(time.Duration(offsets[k] * float64(time.Second)))
	}
}
