package workload

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"filemig/internal/trace"
)

// scenarioGolden pins each named scenario's exact trace at a small scale:
// the scenario library is an experiment-spec surface, so a preset drifting
// silently would invalidate every manifest that names it. Hashes are over
// the v1 ASCII encoding, like TestGenerateGoldenHashes.
var scenarioGolden = map[string]struct {
	n   int
	sha string
}{
	"paper-1993":          {7483, "659d2632fc04694f2e07f65a664a65a0076f19be02c951ec90bb445e2490af4f"},
	"diurnal-interactive": {8724, "e0226a6a80384ef596d1805ac3b277b65c72af60813924db2790fd4d518eabb3"},
	"checkpoint-restart":  {10081, "060ea6e204dd70aa4fe607b2b270994a9ceb01e13ca980d5fdafd0c6e3a0f818"},
	"archive-coldscan":    {6134, "a3715055970d22828dad893e5dbc2b3dde69f67a8e9ee8d960a5d1630d242697"},
}

// scenarioTrace generates the pinned-parameter trace for one scenario.
func scenarioTrace(t *testing.T, s Scenario) *Result {
	t.Helper()
	cfg := s.Configure(0.003, 42)
	cfg.Days = 90
	res, err := Generate(cfg)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return res
}

func TestScenarioGoldenHashes(t *testing.T) {
	if len(Scenarios()) != len(scenarioGolden) {
		t.Fatalf("library has %d scenarios, golden table has %d — pin the new one",
			len(Scenarios()), len(scenarioGolden))
	}
	seen := map[string]string{}
	for _, s := range Scenarios() {
		g, ok := scenarioGolden[s.Name]
		if !ok {
			t.Errorf("scenario %s has no golden entry", s.Name)
			continue
		}
		res := scenarioTrace(t, s)
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, res.Records); err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
		if len(res.Records) != g.n || got != g.sha {
			t.Errorf("%s: n=%d sha=%s, want n=%d sha=%s",
				s.Name, len(res.Records), got, g.n, g.sha)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s generated identical traces", s.Name, prev)
		}
		seen[got] = s.Name
	}
}

// TestScenarioShapes sanity-checks that each scenario's knobs move the
// trace in the direction its description promises, relative to the paper
// profile.
func TestScenarioShapes(t *testing.T) {
	byName := map[string]*Result{}
	for _, s := range Scenarios() {
		byName[s.Name] = scenarioTrace(t, s)
	}
	paper := byName["paper-1993"]

	// Checkpoint images are larger than the interactive mix.
	if ck := byName["checkpoint-restart"]; ck.Population.MeanSize() <= paper.Population.MeanSize() {
		t.Errorf("checkpoint-restart mean size %v not above paper's %v",
			ck.Population.MeanSize(), paper.Population.MeanSize())
	}

	// The cold scan flattens the day/night swing: compare the share of
	// reads landing in the 8 AM-4 PM working window.
	working := func(r *Result) float64 {
		var day, all int
		for i := range r.Records {
			rec := &r.Records[i]
			if rec.Op != trace.Read || !rec.OK() {
				continue
			}
			all++
			if h := rec.Start.Hour(); h >= 8 && h < 16 {
				day++
			}
		}
		return float64(day) / float64(all)
	}
	pw, cw, iw := working(paper), working(byName["archive-coldscan"]), working(byName["diurnal-interactive"])
	if cw >= pw {
		t.Errorf("archive-coldscan working-hours read share %.3f not below paper's %.3f", cw, pw)
	}
	if iw <= pw {
		t.Errorf("diurnal-interactive working-hours read share %.3f not above paper's %.3f", iw, pw)
	}

	// FindScenario and ScenarioConfig agree with the library.
	if _, ok := FindScenario("no-such-scenario"); ok {
		t.Error("FindScenario invented a scenario")
	}
	if _, err := ScenarioConfig("no-such-scenario", 0.01, 1); err == nil {
		t.Error("ScenarioConfig accepted an unknown name")
	}
	cfg, err := ScenarioConfig(ScenarioPaper1993, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != DefaultConfig(0.01, 1) {
		t.Error("paper-1993 drifted from DefaultConfig")
	}
}
