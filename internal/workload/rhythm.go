package workload

import (
	"math"
	"math/rand"
	"time"
)

// Rhythm models the calendar structure of MSS activity. Reads are made by
// humans: they surge at 8 AM when the scientists arrive, tail off slowly
// after 4 PM (people stay late more than they come early), sag on
// weekends, dip at Thanksgiving and Christmas, and grow over the two years
// (Figures 4-6). Writes are made by the machine: batch jobs run around the
// clock every day of the year, with only a small daytime increase, no
// weekend or holiday effect, and no growth (the Cray was already at full
// capacity, §5.2).

// readHourWeights is the relative read intensity per hour of day. The
// shape implements Figure 4: low overnight, a sharp jump at 8 AM, a broad
// working-day plateau and a slow evening decay.
var readHourWeights = [24]float64{
	// 0   1     2     3     4     5     6     7
	0.30, 0.25, 0.22, 0.20, 0.20, 0.22, 0.30, 0.50,
	// 8   9     10    11    12    13    14    15
	1.30, 1.60, 1.70, 1.70, 1.55, 1.60, 1.65, 1.65,
	// 16  17    18    19    20    21    22    23
	1.50, 1.25, 1.00, 0.85, 0.70, 0.60, 0.50, 0.40,
}

// writeHourWeights implements Figure 4's nearly flat write curve, with the
// "small increase in write requests during the day" of §5.2.
var writeHourWeights = [24]float64{
	0.95, 0.95, 0.95, 0.95, 0.95, 0.95, 0.95, 0.97,
	1.02, 1.05, 1.08, 1.08, 1.05, 1.05, 1.08, 1.08,
	1.05, 1.02, 1.00, 0.98, 0.95, 0.95, 0.95, 0.95,
}

// readDayWeights is the relative read intensity per day of week
// (0=Sunday). Figure 5: weekends are quiet; Monday starts lowest among
// weekdays (weekend maintenance and drained batch queues, §5.2).
var readDayWeights = [7]float64{0.45, 0.95, 1.25, 1.30, 1.30, 1.20, 0.55}

// writeDayWeights: "write requests ... experience little variation over
// the course of the week, as the Cray CPU runs batch jobs all weekend."
var writeDayWeights = [7]float64{0.97, 0.96, 1.00, 1.02, 1.02, 1.01, 1.00}

// Rhythm answers intensity queries for a configured trace.
type Rhythm struct {
	start      time.Time
	days       int
	holidays   bool
	readGrowth float64
	holiday    map[int]float64 // day index -> read multiplier
	readHours  [24]float64     // hour-of-day read weights, possibly reshaped
}

// NewRhythm builds the rhythm model for a trace starting at start and
// lasting days days, with the paper's calibrated hour-of-day shape.
func NewRhythm(start time.Time, days int, holidays bool, readGrowth float64) *Rhythm {
	return NewShapedRhythm(start, days, holidays, readGrowth, 1)
}

// NewShapedRhythm is NewRhythm with a diurnal sharpness exponent applied
// to the read hour-of-day profile: each hourly weight is raised to
// sharpness before sampling (Config.DiurnalSharpness). Sharpness <= 0 or
// exactly 1 keeps the calibrated Figure 4 shape bit-for-bit.
func NewShapedRhythm(start time.Time, days int, holidays bool, readGrowth, sharpness float64) *Rhythm {
	r := &Rhythm{start: start, days: days, holidays: holidays, readGrowth: readGrowth}
	if readGrowth <= 0 {
		r.readGrowth = 1
	}
	r.readHours = readHourWeights
	if sharpness > 0 && sharpness != 1 {
		for h, w := range r.readHours {
			r.readHours[h] = math.Pow(w, sharpness)
		}
	}
	r.holiday = map[int]float64{}
	if holidays {
		r.markHolidays()
	}
	return r
}

// markHolidays suppresses reads around Thanksgiving (the fourth Thursday
// of November) and the Christmas/New Year week for every year the trace
// spans. Figure 6 shows these dips in read rate for 1990 and 1991 — and
// explicitly no write dip ("the Cray doesn't take a Christmas vacation
// while the scientists do").
func (r *Rhythm) markHolidays() {
	end := r.start.AddDate(0, 0, r.days)
	for year := r.start.Year(); year <= end.Year(); year++ {
		// Fourth Thursday of November plus the following Friday.
		nov1 := time.Date(year, time.November, 1, 0, 0, 0, 0, time.UTC)
		offset := (int(time.Thursday) - int(nov1.Weekday()) + 7) % 7
		thanksgiving := nov1.AddDate(0, 0, offset+21)
		r.suppress(thanksgiving, 2, 0.25)
		// Christmas through New Year.
		r.suppress(time.Date(year, time.December, 24, 0, 0, 0, 0, time.UTC), 9, 0.30)
	}
}

func (r *Rhythm) suppress(from time.Time, days int, factor float64) {
	for i := 0; i < days; i++ {
		d := int(from.AddDate(0, 0, i).Sub(r.start).Hours() / 24)
		if d >= 0 && d < r.days {
			r.holiday[d] = factor
		}
	}
}

// dayInfo reports the weekday of trace day d.
func (r *Rhythm) weekday(day int) time.Weekday {
	return r.start.AddDate(0, 0, day).Weekday()
}

// growth reports the linear read-growth multiplier on trace day d,
// normalised to average 1 over the trace.
func (r *Rhythm) growth(day int) float64 {
	if r.days <= 1 {
		return 1
	}
	frac := float64(day) / float64(r.days-1)
	// Linear from g0 to g1 with mean 1: g0 = 2/(1+G), g1 = G*g0.
	g0 := 2 / (1 + r.readGrowth)
	return g0 + (r.readGrowth*g0-g0)*frac
}

// ReadDayWeight reports the relative read intensity of trace day d,
// combining weekday, holiday and growth effects.
func (r *Rhythm) ReadDayWeight(day int) float64 {
	w := readDayWeights[r.weekday(day)] * r.growth(day)
	if f, ok := r.holiday[day]; ok {
		w *= f
	}
	return w
}

// WriteDayWeight reports the relative write intensity of trace day d.
// No growth, no holidays — the batch queue never empties.
func (r *Rhythm) WriteDayWeight(day int) float64 {
	w := writeDayWeights[r.weekday(day)]
	// Figure 6: "write requests increased at the end of the year" — a
	// mild end-of-December bump while scientists queue up long runs.
	d := r.start.AddDate(0, 0, day)
	if r.holidays && d.Month() == time.December && d.Day() >= 20 {
		w *= 1.10
	}
	return w
}

// HolidayFactor reports the read-suppression multiplier of trace day d
// (1 on ordinary days).
func (r *Rhythm) HolidayFactor(day int) float64 {
	if f, ok := r.holiday[day]; ok {
		return f
	}
	return 1
}

// MaxReadDayWeight bounds ReadDayWeight over the trace, for rejection
// sampling.
func (r *Rhythm) MaxReadDayWeight() float64 {
	max := 0.0
	for d := 0; d < r.days; d++ {
		if w := r.ReadDayWeight(d); w > max {
			max = w
		}
	}
	return max
}

// SampleReadHour draws an hour of day from the read profile.
func (r *Rhythm) SampleReadHour(rng *rand.Rand) int {
	return sampleHour(r.readHours, rng)
}

// SampleWriteHour draws an hour of day from the write profile.
func (r *Rhythm) SampleWriteHour(rng *rand.Rand) int {
	return sampleHour(writeHourWeights, rng)
}

func sampleHour(weights [24]float64, rng *rand.Rand) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for h, w := range weights {
		u -= w
		if u <= 0 {
			return h
		}
	}
	return 23
}

// Days reports the trace length in days.
func (r *Rhythm) Days() int { return r.days }

// Start reports the trace start.
func (r *Rhythm) Start() time.Time { return r.start }

// IsHoliday reports whether reads are suppressed on trace day d.
func (r *Rhythm) IsHoliday(day int) bool {
	_, ok := r.holiday[day]
	return ok
}
