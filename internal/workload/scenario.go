package workload

import (
	"fmt"
	"sort"
	"strings"
)

// The scenario library: named workload presets selectable by experiment
// specs and the migexp CLI. Every scenario is a full workload.Config
// derived from the same calibrated machinery, so each one is exactly as
// deterministic and hash-pinnable as the paper's profile; they differ
// only in which causal knobs are turned. The non-paper scenarios are
// motivated by the related work: wide-area file service clients are
// burstier and more diurnal than NCAR's 1993 mix, cluster
// checkpoint-restart traffic is machine-paced rewrite-heavy traffic with
// large files, and archive cold scans are flat, sessionless sweeps over
// old data.

// Scenario is one named workload preset: a recipe that turns a scale and
// a seed into a complete generator configuration.
type Scenario struct {
	// Name is the stable identifier experiment specs use.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Configure builds the scenario's generator configuration at the
	// given scale in (0, 1] and master seed.
	Configure func(scale float64, seed int64) Config
}

// ScenarioPaper1993 is the name of the paper-calibrated default scenario.
const ScenarioPaper1993 = "paper-1993"

// scenarios is the library, in presentation order.
var scenarios = []Scenario{
	{
		Name:        ScenarioPaper1993,
		Description: "the paper's NCAR profile: two-year calendar, Figure 4-11 calibration",
		Configure:   DefaultConfig,
	},
	{
		Name:        "diurnal-interactive",
		Description: "interactive client mix: sharp day/night swing, long sessions, fast growth",
		Configure: func(scale float64, seed int64) Config {
			cfg := DefaultConfig(scale, seed)
			// Wide-area interactive clients amplify every human rhythm:
			// the 8 AM surge is steeper, sessions run longer (editors and
			// notebooks re-request eagerly), re-requests inside the dedup
			// window are more common, and the population grows faster
			// than NCAR's did.
			cfg.DiurnalSharpness = 1.8
			cfg.BurstMean = 20
			cfg.DuplicateMean = 0.45
			cfg.ReadGrowth = 3.0
			return cfg
		},
	},
	{
		Name:        "checkpoint-restart",
		Description: "cluster checkpoint traffic: machine-paced, large files, heavy re-reads",
		Configure: func(scale float64, seed int64) Config {
			cfg := DefaultConfig(scale, seed)
			// Batch schedulers do not sleep or take holidays: the read
			// curve flattens toward the write curve, checkpoint images
			// run several times the interactive mix's sizes, and restarts
			// re-read what was just written, so duplicate pressure is
			// high while error lookups are rare (jobs reference files by
			// generated, existing names).
			cfg.DiurnalSharpness = 0.4
			cfg.BurstMean = 30
			cfg.DuplicateMean = 0.7
			cfg.SizeScale = 2.5
			cfg.Holidays = false
			cfg.ReadGrowth = 1.0
			cfg.ErrorFraction = 0.01
			return cfg
		},
	},
	{
		Name:        "archive-coldscan",
		Description: "archival sweep: flat sessionless reads of old data, few repeats",
		Configure: func(scale float64, seed int64) Config {
			cfg := DefaultConfig(scale, seed)
			// A migration or integrity scan walks the archive at a steady
			// machine pace: nearly flat around the clock, no session
			// structure, almost no re-requests within the window, files
			// skewed large (the archive keeps the model histories), and
			// no growth over the trace.
			cfg.DiurnalSharpness = 0.25
			cfg.Bursts = false
			cfg.DuplicateMean = 0.05
			cfg.SizeScale = 1.5
			cfg.Holidays = false
			cfg.ReadGrowth = 1.0
			cfg.ErrorFraction = 0.005
			return cfg
		},
	},
}

// Scenarios returns the scenario library in presentation order. The
// returned slice is a copy; callers may reorder it freely.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioNames returns the library's names, sorted.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// FindScenario returns the named scenario.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioConfig builds the named scenario's configuration, failing with
// the list of known names when the scenario does not exist.
func ScenarioConfig(name string, scale float64, seed int64) (Config, error) {
	s, ok := FindScenario(name)
	if !ok {
		return Config{}, fmt.Errorf("workload: unknown scenario %q (known: %s)",
			name, strings.Join(ScenarioNames(), ", "))
	}
	return s.Configure(scale, seed), nil
}
