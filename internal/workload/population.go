package workload

import (
	"math/rand"

	"filemig/internal/stats"
	"filemig/internal/units"
)

// FileKind distinguishes the two size regimes visible in Figure 10: batch
// model output is written in near-constant chunks (the 8 MB bump), while
// everything else draws from the heavy-tailed general mixture.
type FileKind int

// File kinds.
const (
	KindGeneral FileKind = iota
	KindModelChunk
)

// RefClass is the joint read/write reference-count class of a file,
// constructed so the marginals reproduce Figure 8:
//
//	reads:  50% zero, 25% one, 25% two or more;
//	writes: 21% zero (files created before the trace), 65% one, 14% more;
//	44% written once and never read; 57% accessed exactly once.
type RefClass int

// Reference classes. W = writes during trace, R = reads during trace.
const (
	W1R0 RefClass = iota // written once, never read (44%)
	W0R1                 // pre-existing, read once (13%)
	W0Rn                 // pre-existing, read several times (8%)
	W1R1                 // written once, read once (10%)
	W1Rn                 // written once, read several times (11%)
	WnR0                 // rewritten, never read (6%)
	WnR1                 // rewritten, read once (2%)
	WnRn                 // rewritten and reread (6%)
)

// classWeights are the joint probabilities above; they are the unique
// solution (up to the free multi-multi split) of the paper's published
// marginals.
var classWeights = []float64{0.44, 0.13, 0.08, 0.10, 0.11, 0.06, 0.02, 0.06}

// reads/writes report whether the class has zero, one, or many (-1) of each.
func (c RefClass) reads() int {
	switch c {
	case W1R0, WnR0:
		return 0
	case W0R1, W1R1, WnR1:
		return 1
	default:
		return -1
	}
}

func (c RefClass) writes() int {
	switch c {
	case W0R1, W0Rn:
		return 0
	case W1R0, W1R1, W1Rn:
		return 1
	default:
		return -1
	}
}

// File is one member of the synthetic population.
type File struct {
	ID        int
	Size      units.Bytes
	Owner     uint32
	Class     RefClass
	Kind      FileKind
	PreExists bool // created before the trace started (the W0 classes)
}

// sizeMixture is the general file-size model. Calibration targets: about
// half of files at or under 3 MB holding ~2% of bytes (Figure 11), a mean
// near 25 MB (Table 4), and nothing above the 200 MB MSS cap.
func sizeMixture() stats.Sampler {
	return stats.Bounded{
		Inner: stats.NewMixture(
			// Small interactive files: scripts, plots, parameter sets.
			// Median 0.35 MB puts ~40% of requests at or under 1 MB
			// (Figure 10) and ~half of files under 3 MB (Figure 11).
			stats.MixtureComponent{Weight: 0.58, Sampler: stats.Lognormal{Median: 0.35e6, Sigma: 1.6}},
			// Mid-size model history files.
			stats.MixtureComponent{Weight: 0.30, Sampler: stats.Lognormal{Median: 28e6, Sigma: 0.9}},
			// Near-cap archives: big runs split into ≤200 MB pieces.
			stats.MixtureComponent{Weight: 0.12, Sampler: stats.Lognormal{Median: 120e6, Sigma: 0.45}},
		),
		Lo: 2e3, // 2 KB floor: the MSS held no empty bitfiles
		Hi: MSSFileCap,
	}
}

// modelChunkSize is the batch-output chunk size: tightly clustered around
// 8 MB (Figure 10's write bump).
func modelChunkSize() stats.Sampler {
	return stats.Bounded{
		Inner: stats.Lognormal{Median: 8e6, Sigma: 0.06},
		Lo:    6e6,
		Hi:    10e6,
	}
}

// modelChunkFraction is the share of files that are batch model chunks.
const modelChunkFraction = 0.06

// preExistShrink scales pre-trace files: §5.4 and Table 3 imply older
// files are smaller (manual-tape reads average 47 MB against the silo's
// 80 MB), reflecting the growth of file sizes over time.
const preExistShrink = 0.6

// rereadBoost inflates files in the read-several-times classes: the files
// scientists keep coming back to are the big model history files, which
// is what pushes Table 3's average read size (27.4 MB) above the average
// write size (19.8 MB) and gives reads 73% of the bytes on 66% of the
// references.
const rereadBoost = 2.0

// Population is the full synthetic file set.
type Population struct {
	Files []File
}

// NewPopulation draws n files deterministically from seed. Users own files
// with a Zipf-skewed popularity so a few groups dominate, as at any shared
// centre.
func NewPopulation(n, users int, rng *rand.Rand) *Population {
	classes := stats.NewDiscrete(classWeights...)
	general := sizeMixture()
	chunk := modelChunkSize()
	userZipf := stats.NewZipf(rng, 1.3, uint64(users))
	p := &Population{Files: make([]File, n)}
	for i := range p.Files {
		f := &p.Files[i]
		f.ID = i
		f.Class = RefClass(classes.Sample(rng))
		f.PreExists = f.Class.writes() == 0
		f.Owner = uint32(userZipf.Next())
		if rng.Float64() < modelChunkFraction && !f.PreExists {
			f.Kind = KindModelChunk
			f.Size = units.Bytes(chunk.Sample(rng))
		} else {
			f.Kind = KindGeneral
			s := general.Sample(rng)
			if f.PreExists {
				s *= preExistShrink
				if s < 2e3 {
					s = 2e3
				}
			}
			if f.Class.reads() < 0 { // read-several-times classes
				s *= rereadBoost
				if s > MSSFileCap {
					s = MSSFileCap
				}
			}
			f.Size = units.Bytes(s)
		}
	}
	return p
}

// ScaleSizes multiplies every file size by scale, clamped to the model's
// [2 KB, MSSFileCap] range (Config.SizeScale). Scale <= 0 or exactly 1
// leaves the population untouched. It is a deterministic post-pass: no
// RNG is consumed, so the rest of the generation pipeline is unaffected.
func (p *Population) ScaleSizes(scale float64) {
	if scale <= 0 || scale == 1 {
		return
	}
	for i := range p.Files {
		s := float64(p.Files[i].Size) * scale
		if s > MSSFileCap {
			s = MSSFileCap
		}
		if s < 2e3 {
			s = 2e3
		}
		p.Files[i].Size = units.Bytes(s)
	}
}

// TotalBytes sums the population's sizes.
func (p *Population) TotalBytes() units.Bytes {
	var t units.Bytes
	for i := range p.Files {
		t += p.Files[i].Size
	}
	return t
}

// MeanSize reports the average file size.
func (p *Population) MeanSize() units.Bytes {
	if len(p.Files) == 0 {
		return 0
	}
	return p.TotalBytes() / units.Bytes(len(p.Files))
}
