package workload

import (
	"crypto/sha256"
	"fmt"
	"io"
	"testing"
	"time"

	"filemig/internal/trace"
)

// TestGenerateStreamMatchesGenerate pins the streaming generator to the
// materializing one: same config, same records, same order — including
// the burst-packed and burst-free paths and the error records.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	for _, tc := range []struct {
		scale  float64
		seed   int64
		days   int
		bursts bool
	}{
		{0.003, 5, 90, true},
		{0.003, 5, 90, false},
		{0.001, 9, 30, true},
	} {
		cfg := DefaultConfig(tc.scale, tc.seed)
		cfg.Days = tc.days
		cfg.Bursts = tc.bursts
		want, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := GenerateStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Planned != len(want.Records) {
			t.Fatalf("Planned = %d, want %d", sr.Planned, len(want.Records))
		}
		i := 0
		for {
			got, err := sr.Stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if i >= len(want.Records) {
				t.Fatalf("stream yielded more than %d records", len(want.Records))
			}
			w := want.Records[i]
			if !got.Start.Equal(w.Start) || got.Op != w.Op || got.Device != w.Device ||
				got.Err != w.Err || got.Size != w.Size || got.UserID != w.UserID ||
				got.MSSPath != w.MSSPath || got.LocalPath != w.LocalPath {
				t.Fatalf("record %d differs:\nstream %+v\nslice  %+v", i, got, w)
			}
			i++
		}
		if i != len(want.Records) {
			t.Fatalf("stream yielded %d records, want %d", i, len(want.Records))
		}
	}
}

// TestGenerateStreamSorted verifies the merged stream is time-sorted,
// which the codec writers and the sharded analysis both rely on.
func TestGenerateStreamSorted(t *testing.T) {
	cfg := DefaultConfig(0.004, 21)
	cfg.Days = 120
	sr, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	n := 0
	for {
		r, err := sr.Stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if r.Start.Before(prev) {
			t.Fatalf("record %d at %v precedes %v", n, r.Start, prev)
		}
		prev = r.Start
		n++
	}
	if n != sr.Planned {
		t.Fatalf("yielded %d, planned %d", n, sr.Planned)
	}
}

// TestGenerateStreamThroughCodec streams the generator straight into the
// binary writer — the tracegen -format binary pipeline — and checks the
// decoded record count.
func TestGenerateStreamThroughCodec(t *testing.T) {
	cfg := DefaultConfig(0.002, 13)
	cfg.Days = 60
	sr, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf writerBuffer
	w := trace.NewFormatWriterEpoch(&buf, trace.FormatBinary, cfg.Start)
	n, err := trace.Copy(w, sr.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n != int64(sr.Planned) {
		t.Fatalf("copied %d, planned %d", n, sr.Planned)
	}
	got, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != sr.Planned {
		t.Fatalf("decoded %d, planned %d", len(got), sr.Planned)
	}
}

func TestGenerateStreamValidatesConfig(t *testing.T) {
	bad := DefaultConfig(0.01, 1)
	bad.Scale = 0
	if _, err := GenerateStream(bad); err == nil {
		t.Fatal("zero scale accepted")
	}
	bad = DefaultConfig(0.01, 1)
	bad.Days = 2
	if _, err := GenerateStream(bad); err == nil {
		t.Fatal("two-day trace accepted")
	}
}

// TestGenerateGoldenHashes pins the generator's exact output. Generate is
// implemented as Collect(GenerateStream), so TestGenerateStreamMatchesGenerate
// alone cannot detect the stream implementation drifting away from what the
// eager generator historically produced — these hashes were recorded from
// the pre-streaming implementation and must never change for a fixed
// (scale, seed, days, bursts).
func TestGenerateGoldenHashes(t *testing.T) {
	golden := []struct {
		scale  float64
		seed   int64
		days   int
		bursts bool
		n      int
		sha    string
	}{
		{0.004, 77, 180, true, 10484, "c13fa55f647e2e30ac861f437d190a2052942d39bb109341316c23b74ef08845"},
		{0.002, 3, 60, false, 4890, "e9c032680044517265d4f058bd44aad102085bb2b0820d88771cf609a4888210"},
		{0.006, 19, 365, true, 16788, "3fabb1e5872fc2bf2e8299cd10e55dc5a193a71f61b314eed9ce0c309047053f"},
	}
	for _, g := range golden {
		cfg := DefaultConfig(g.scale, g.seed)
		cfg.Days = g.days
		cfg.Bursts = g.bursts
		res, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != g.n {
			t.Errorf("scale=%v seed=%d: %d records, want %d", g.scale, g.seed, len(res.Records), g.n)
			continue
		}
		var buf writerBuffer
		if err := trace.WriteAll(&buf, res.Records); err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(buf.data)); got != g.sha {
			t.Errorf("scale=%v seed=%d days=%d bursts=%v: trace hash %s, want %s",
				g.scale, g.seed, g.days, g.bursts, got, g.sha)
		}
	}
}
