package workload

import (
	"container/heap"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"filemig/internal/device"
	"filemig/internal/namespace"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// GenerateStream is the streaming form of Generate. Planning — reference
// plans, calendar mapping, device routing, duplicates, errors — still
// happens up front (it must: the shared RNG streams are consumed in file
// order to stay deterministic), but the plan is held as compact
// plannedAccess entries, roughly a quarter of a materialized
// trace.Record. Records themselves are assembled lazily, one at a time,
// by a k-way merge over the per-file plans, with burst packing applied
// per hour bucket on the fly. Generate is Collect(GenerateStream), so
// the two are identical record for record; TestGenerateStreamMatchesGenerate
// pins it.

// StreamResult is a generated trace as a stream, plus the artefacts the
// analyzers need.
type StreamResult struct {
	Config     Config
	Stream     trace.Stream // time-sorted; latency fields zero
	Population *Population
	Tree       *namespace.Tree
	Rhythm     *Rhythm
	Planned    int // number of records the stream will yield
}

// GenerateStream synthesizes a trace as a record stream. It is
// deterministic for a given Config and yields exactly the records
// Generate would return, in the same order.
func GenerateStream(cfg Config) (*StreamResult, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("workload: scale %v out of (0,1]", cfg.Scale)
	}
	if cfg.Days < 7 {
		return nil, fmt.Errorf("workload: need at least 7 days, got %d", cfg.Days)
	}
	if cfg.Files < 1 || cfg.Users < 1 {
		return nil, fmt.Errorf("workload: files (%d) and users (%d) must be positive", cfg.Files, cfg.Users)
	}
	if cfg.Start.IsZero() {
		cfg.Start = trace.Epoch
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	treeRng := rand.New(rand.NewSource(master.Int63()))
	popRng := rand.New(rand.NewSource(master.Int63()))
	planRng := rand.New(rand.NewSource(master.Int63()))
	errRng := rand.New(rand.NewSource(master.Int63()))
	burstRng := rand.New(rand.NewSource(master.Int63()))

	// Namespace scaled to keep the paper's ~6.3 files/directory.
	nsCfg := namespace.DefaultConfig(1.0, treeRng.Int63())
	nsCfg.Dirs = maxInt(1, cfg.Files*143245/PaperFiles)
	nsCfg.Files = cfg.Files
	if nsCfg.Dirs < nsCfg.MaxDepth+1 {
		nsCfg.MaxDepth = maxInt(1, nsCfg.Dirs-1)
	}
	tree, err := namespace.Generate(nsCfg)
	if err != nil {
		return nil, fmt.Errorf("workload: namespace: %v", err)
	}

	pop := NewPopulation(cfg.Files, cfg.Users, popRng)
	pop.ScaleSizes(cfg.SizeScale)
	for i := range pop.Files {
		tree.AddBytes(i, pop.Files[i].Size)
	}
	rhythm := NewShapedRhythm(cfg.Start, cfg.Days, cfg.Holidays, cfg.ReadGrowth, cfg.DiurnalSharpness)

	// Plan phase: file order, shared RNG, compact output. The sequence
	// counter records eager emission order so the merge can reproduce a
	// stable time sort.
	g := &generator{cfg: cfg, rhythm: rhythm, tree: tree, pop: pop}
	var seq int32
	planned := 0
	ms := &mergeStream{}
	for i := range pop.Files {
		f := &pop.Files[i]
		accs := g.planFile(f, planRng, &seq)
		if len(accs) == 0 {
			continue
		}
		planned += len(accs)
		// Stable per-file time sort; merge tie-breaks on seq, so the
		// global order equals a stable sort of the eager emission order.
		sort.SliceStable(accs, func(a, b int) bool { return accs[a].at.Before(accs[b].at) })
		ms.cursors = append(ms.cursors, &fileCursor{
			accs:  accs,
			size:  f.Size,
			mss:   tree.FilePath(f.ID),
			local: fmt.Sprintf("/usr/tmp/u%d/f%d", f.Owner, f.ID),
			uid:   f.Owner,
		})
	}
	errs := g.buildErrors(errRng, planned)
	planned += len(errs)
	if len(errs) > 0 {
		sort.SliceStable(errs, func(a, b int) bool { return errs[a].Start.Before(errs[b].Start) })
		// Error records were emitted after every file record, so their
		// sequence numbers all rank behind the file cursors' on ties.
		ms.cursors = append(ms.cursors, &errCursor{recs: errs, baseSeq: seq})
	}
	heap.Init(ms)

	var s trace.Stream = ms
	if cfg.Bursts {
		mean := cfg.BurstMean
		if mean <= 0 {
			mean = meanBurstLen
		}
		s = &burstStream{src: ms, rng: burstRng, mean: mean}
	}
	return &StreamResult{Config: cfg, Stream: s, Population: pop, Tree: tree,
		Rhythm: rhythm, Planned: planned}, nil
}

// cursor is one sorted run feeding the merge: a file's planned accesses
// or the error-record run.
type cursor interface {
	empty() bool
	at() time.Time
	seq() int32
	pop() trace.Record
}

// fileCursor assembles records lazily from one file's planned accesses.
type fileCursor struct {
	accs  []plannedAccess
	i     int
	size  units.Bytes
	mss   string
	local string
	uid   uint32
}

func (c *fileCursor) empty() bool   { return c.i >= len(c.accs) }
func (c *fileCursor) at() time.Time { return c.accs[c.i].at }
func (c *fileCursor) seq() int32    { return c.accs[c.i].seq }

func (c *fileCursor) pop() trace.Record {
	pa := &c.accs[c.i]
	c.i++
	return trace.Record{
		Start:     pa.at,
		Op:        trace.Op(pa.op),
		Device:    device.Class(pa.dev),
		Size:      c.size,
		MSSPath:   c.mss,
		LocalPath: c.local,
		UserID:    c.uid,
	}
}

// errCursor yields the pre-built error records.
type errCursor struct {
	recs    []trace.Record
	i       int
	baseSeq int32
}

func (c *errCursor) empty() bool   { return c.i >= len(c.recs) }
func (c *errCursor) at() time.Time { return c.recs[c.i].Start }
func (c *errCursor) seq() int32    { return c.baseSeq + int32(c.i) }

func (c *errCursor) pop() trace.Record {
	r := c.recs[c.i]
	c.i++
	return r
}

// mergeStream is a k-way merge over per-file cursors, ordered by
// (time, sequence) — exactly a stable time sort of the eager emission
// order. It doubles as the heap it merges with.
type mergeStream struct {
	cursors []cursor
}

// Len, Less, Swap, Push and Pop implement heap.Interface.
func (m *mergeStream) Len() int { return len(m.cursors) }

func (m *mergeStream) Less(a, b int) bool {
	ca, cb := m.cursors[a], m.cursors[b]
	ta, tb := ca.at(), cb.at()
	if !ta.Equal(tb) {
		return ta.Before(tb)
	}
	return ca.seq() < cb.seq()
}

func (m *mergeStream) Swap(a, b int) { m.cursors[a], m.cursors[b] = m.cursors[b], m.cursors[a] }

func (m *mergeStream) Push(x any) { m.cursors = append(m.cursors, x.(cursor)) }

func (m *mergeStream) Pop() any {
	c := m.cursors[len(m.cursors)-1]
	m.cursors = m.cursors[:len(m.cursors)-1]
	return c
}

// Next yields the globally next record.
func (m *mergeStream) Next() (trace.Record, error) {
	if len(m.cursors) == 0 {
		return trace.Record{}, io.EOF
	}
	c := m.cursors[0]
	rec := c.pop()
	if c.empty() {
		heap.Pop(m)
	} else {
		heap.Fix(m, 0)
	}
	return rec, nil
}

// burstStream rewrites within-hour second offsets so requests arrive in
// sessions (Figure 7's knee: 90% of successive requests within 10
// seconds), buffering one hour of records at a time. Hour-level rhythm is
// untouched, and packed offsets stay inside the hour and in order, so the
// output remains time-sorted.
type burstStream struct {
	src     trace.Stream
	rng     *rand.Rand
	mean    float64 // mean session length (Config.BurstMean)
	buf     []trace.Record
	i       int
	pending trace.Record
	hasPend bool
	done    bool
}

// Next yields the next burst-packed record.
func (b *burstStream) Next() (trace.Record, error) {
	for {
		if b.i < len(b.buf) {
			r := b.buf[b.i]
			b.i++
			return r, nil
		}
		if b.done {
			return trace.Record{}, io.EOF
		}
		if err := b.fill(); err != nil {
			return trace.Record{}, err
		}
	}
}

// fill buffers the next hour's records and packs them into bursts.
func (b *burstStream) fill() error {
	b.buf = b.buf[:0]
	b.i = 0
	var hour time.Time
	if b.hasPend {
		b.buf = append(b.buf, b.pending)
		b.hasPend = false
		hour = b.pending.Start.Truncate(time.Hour)
	}
	for {
		r, err := b.src.Next()
		if err == io.EOF {
			b.done = true
			break
		}
		if err != nil {
			return err
		}
		if len(b.buf) == 0 {
			hour = r.Start.Truncate(time.Hour)
			b.buf = append(b.buf, r)
			continue
		}
		if r.Start.Truncate(time.Hour).Equal(hour) {
			b.buf = append(b.buf, r)
			continue
		}
		b.pending = r
		b.hasPend = true
		break
	}
	if len(b.buf) > 1 {
		packHour(b.buf, hour, b.rng, b.mean, smallGapMean, smallGapFloor)
	}
	return nil
}
