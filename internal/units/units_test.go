package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestByteConstants(t *testing.T) {
	if KB != 1000 || MB != 1000*1000 || GB != 1e9 || TB != 1e12 {
		t.Fatalf("decimal units expected: KB=%d MB=%d GB=%d TB=%d", KB, MB, GB, TB)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{999, "999 B"},
		{Bytes(KB), "1.00 KB"},
		{Bytes(25 * MB), "25.00 MB"},
		{Bytes(23 * TB), "23.00 TB"},
		{Bytes(1200 * MB), "1.20 GB"},
		{-Bytes(2 * MB), "-2.00 MB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesConversions(t *testing.T) {
	b := Bytes(80 * MB)
	if b.MB() != 80 {
		t.Errorf("MB() = %v, want 80", b.MB())
	}
	if Bytes(23*TB).TB() != 23 {
		t.Errorf("TB() = %v, want 23", Bytes(23*TB).TB())
	}
	if Bytes(GB).GB() != 1 {
		t.Errorf("GB() = %v, want 1", Bytes(GB).GB())
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
		ok   bool
	}{
		{"30MB", Bytes(30 * MB), true},
		{"1.2 GB", Bytes(1200 * MB), true},
		{"200 mb", Bytes(200 * MB), true},
		{"25 TB", Bytes(25 * TB), true},
		{"12345", 12345, true},
		{"7 kb", Bytes(7 * KB), true},
		{"512B", 512, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12XB", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseBytes(%q) unexpected error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseBytes(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		b := Bytes(n)
		got, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String() rounds to 2 decimals, so allow 1% relative slack above 1 KB.
		diff := int64(got - b)
		if diff < 0 {
			diff = -diff
		}
		if b < Bytes(KB) {
			return diff == 0
		}
		return float64(diff) <= 0.01*float64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	d := 98*time.Second + 100*time.Millisecond
	if got := Seconds(d); got != 98.1 {
		t.Errorf("Seconds = %v, want 98.1", got)
	}
	if got := DurationSeconds(98.1); got != d {
		t.Errorf("DurationSeconds = %v, want %v", got, d)
	}
}

func TestTimeSpans(t *testing.T) {
	if Day != 24*time.Hour || Week != 7*Day {
		t.Fatal("time span constants wrong")
	}
}
