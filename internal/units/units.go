// Package units provides byte-size and time constants and formatting
// helpers shared by the trace, device, and analysis packages.
//
// The paper reports sizes in decimal megabytes ("an average file of 80 MB")
// and gigabytes; to stay comparable with the published numbers this package
// uses decimal (SI) units: 1 MB = 1e6 bytes, matching the convention of the
// 1993 mass-storage literature.
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Decimal byte units, following the paper's convention (1 MB = 10^6 bytes).
const (
	Byte int64 = 1
	KB         = 1000 * Byte
	MB         = 1000 * KB
	GB         = 1000 * MB
	TB         = 1000 * GB
)

// Common time spans used by the rhythm model and analyzers.
const (
	Hour = time.Hour
	Day  = 24 * time.Hour
	Week = 7 * Day
)

// Bytes is a byte count with convenient formatting.
type Bytes int64

// MB reports b in decimal megabytes.
func (b Bytes) MB() float64 { return float64(b) / float64(MB) }

// GB reports b in decimal gigabytes.
func (b Bytes) GB() float64 { return float64(b) / float64(GB) }

// TB reports b in decimal terabytes.
func (b Bytes) TB() float64 { return float64(b) / float64(TB) }

// String formats b with a unit suffix chosen so the mantissa is < 1000,
// e.g. "25.0 MB", "23.0 TB".
func (b Bytes) String() string {
	v := float64(b)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= float64(TB):
		return fmt.Sprintf("%s%.2f TB", neg, v/float64(TB))
	case v >= float64(GB):
		return fmt.Sprintf("%s%.2f GB", neg, v/float64(GB))
	case v >= float64(MB):
		return fmt.Sprintf("%s%.2f MB", neg, v/float64(MB))
	case v >= float64(KB):
		return fmt.Sprintf("%s%.2f KB", neg, v/float64(KB))
	default:
		return fmt.Sprintf("%s%d B", neg, int64(v))
	}
}

// ParseBytes parses strings such as "30MB", "1.2 GB", "200 mb", or a bare
// integer byte count. It accepts the SI suffixes B, KB, MB, GB, TB
// (case-insensitive, optional space).
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty byte quantity")
	}
	upper := strings.ToUpper(t)
	mult := Byte
	switch {
	case strings.HasSuffix(upper, "TB"):
		mult, upper = TB, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "GB"):
		mult, upper = GB, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, upper = MB, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, upper = KB, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "B"):
		upper = upper[:len(upper)-1]
	}
	upper = strings.TrimSpace(upper)
	v, err := strconv.ParseFloat(upper, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte quantity %q: %v", s, err)
	}
	return Bytes(v * float64(mult)), nil
}

// Seconds converts a duration to float seconds; used throughout the
// analyzers, which report latencies the way the paper does.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// DurationSeconds builds a duration from float seconds.
func DurationSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
