// Package mss simulates the NCAR mass storage system of §3: a bitfile
// server (the MSCP on the IBM 3090) fronting staging disks, a StorageTek
// 4400 cartridge silo, and an operator-staffed shelf-tape vault, with
// bitfile movers carrying data to the Cray. Replaying a trace through the
// simulator fills each record's startup latency and transfer time with the
// §5.1.1 decomposition — queueing + mount + seek + transfer — which is
// what regenerates Figure 3 and the Table 3 latency rows.
package mss

import (
	"time"

	"filemig/internal/device"
)

// Config sizes the simulated installation. DefaultConfig follows the
// hardware described in §3.1.
type Config struct {
	Seed int64

	// MSCP is the request-processing stage on the 3090: catalog lookup,
	// authentication, device scheduling. Its service time is the
	// irreducible floor under every request, and its queue is where burst
	// congestion first appears.
	MSCPServers int
	MSCPService time.Duration // median service time
	MSCPSigma   float64       // lognormal spread

	DiskDrives   int // independent staging-disk paths
	SiloDrives   int // 3480 drives inside the silo
	SiloRobots   int // robot arms in the ACS
	ManualDrives int // operator-attached 3480 drives
	Operators    int // humans fetching shelf tapes

	Cartridges int // cartridges in the silo (§2.2: 6000)

	Disk    device.Profile
	Silo    device.Profile
	Manual  device.Profile
	Optical device.Profile

	// SmallOnOptical reroutes the staging-disk traffic to an optical
	// jukebox — §5.4's alternative: "If magnetic disk would be too
	// expensive, an optical disk jukebox could provide low latency to
	// the first byte and high capacity."
	SmallOnOptical bool
	OpticalDrives  int
	OpticalRobots  int

	// ErrorBounce is the MSCP turnaround for failed requests (the file
	// does not exist; no device is touched).
	ErrorBounce time.Duration

	// WriteBehind enables §6's recommendation: tape writes complete for
	// the user as soon as the data lands on the staging disks ("write
	// data to tape relatively quickly, and then mark the file as
	// deleteable"); the tape copy proceeds in the background, still
	// consuming drive/robot/operator resources.
	WriteBehind bool
}

// DefaultConfig returns the §3.1 installation.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		MSCPServers:   2,
		MSCPService:   2500 * time.Millisecond,
		MSCPSigma:     0.45,
		DiskDrives:    8,
		SiloDrives:    4,
		SiloRobots:    2,
		ManualDrives:  4,
		Operators:     2,
		Cartridges:    6000,
		Disk:          device.IBM3380,
		Silo:          device.SiloTape3480,
		Manual:        device.ManualTape3480,
		Optical:       device.OpticalJukebox,
		OpticalDrives: 4,
		OpticalRobots: 2,
		ErrorBounce:   time.Second,
	}
}

// Topology describes the Figure 2 network: which components connect to
// which, and over what path. Purely descriptive; returned by the
// mssanalyze command's -figure 2 mode.
func Topology() []Link {
	return []Link{
		{From: "Cray Y-MP (shavano)", To: "MSS disks/tape drives", Via: "LDN (high-speed direct data path)"},
		{From: "Cray Y-MP (shavano)", To: "IBM 3090 MSCP", Via: "MASnet (hyperchannel control path)"},
		{From: "IBM 3090 MSCP", To: "IBM 3380 staging disks", Via: "channel"},
		{From: "IBM 3090 MSCP", To: "StorageTek 4400 ACS", Via: "channel"},
		{From: "IBM 3090 MSCP", To: "shelf tape vault", Via: "operator"},
		{From: "workstation gateways", To: "IBM 3090 MSCP", Via: "MASnet"},
		{From: "workstation gateways", To: "desktop workstations", Via: "local networks (NFS)"},
	}
}

// Link is one edge of the Figure 2 topology.
type Link struct {
	From, To, Via string
}
