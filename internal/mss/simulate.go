package mss

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"filemig/internal/device"
	"filemig/internal/sim"
	"filemig/internal/trace"
)

// Simulator replays a trace through the modelled installation, filling in
// each record's Startup (latency to first byte: queueing + mount + seek)
// and Transfer fields.
type Simulator struct {
	cfg     Config
	engine  *sim.Engine
	rng     *rand.Rand
	catalog *Catalog

	mscp     *sim.Resource
	disks    *sim.Resource
	siloDrv  *sim.Resource
	siloBot  *sim.Resource
	manDrv   *sim.Resource
	operator *sim.Resource
	optDrv   *sim.Resource
	optBot   *sim.Resource

	siloMounts   *MountCache
	manualMounts *MountCache
	optMounts    *MountCache

	mountsSkipped int
	mountsDone    int
}

// NewSimulator builds a simulator from the configuration.
func NewSimulator(cfg Config) *Simulator {
	e := sim.New()
	optDrives := cfg.OpticalDrives
	if optDrives < 1 {
		optDrives = 1
	}
	optRobots := cfg.OpticalRobots
	if optRobots < 1 {
		optRobots = 1
	}
	return &Simulator{
		cfg:          cfg,
		engine:       e,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		catalog:      NewCatalog(cfg.Cartridges),
		mscp:         sim.NewResource(e, "mscp", cfg.MSCPServers),
		disks:        sim.NewResource(e, "disk", cfg.DiskDrives),
		siloDrv:      sim.NewResource(e, "silo-drive", cfg.SiloDrives),
		siloBot:      sim.NewResource(e, "silo-robot", cfg.SiloRobots),
		manDrv:       sim.NewResource(e, "manual-drive", cfg.ManualDrives),
		operator:     sim.NewResource(e, "operator", cfg.Operators),
		optDrv:       sim.NewResource(e, "optical-drive", optDrives),
		optBot:       sim.NewResource(e, "optical-robot", optRobots),
		siloMounts:   NewMountCache(cfg.SiloDrives),
		manualMounts: NewMountCache(cfg.ManualDrives),
		optMounts:    NewMountCache(optDrives),
	}
}

// Replay simulates every record (which must be time-sorted) and returns a
// copy with latencies filled in, in completion order re-sorted by start
// time. The input slice is not modified.
func (s *Simulator) Replay(recs []trace.Record) ([]trace.Record, error) {
	for i := 1; i < len(recs); i++ {
		if recs[i].Start.Before(recs[i-1].Start) {
			return nil, fmt.Errorf("mss: input records not time-sorted at %d", i)
		}
	}
	out := make([]trace.Record, len(recs))
	copy(out, recs)
	if len(recs) == 0 {
		return out, nil
	}
	epoch := recs[0].Start
	for i := range out {
		i := i
		at := out[i].Start.Sub(epoch)
		s.engine.At(at, func(now time.Duration) {
			s.admit(&out[i], now)
		})
	}
	s.engine.Run()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out, nil
}

// admit runs a request through the MSCP stage and dispatches it to its
// device pipeline. arrival is the request's arrival time.
func (s *Simulator) admit(rec *trace.Record, arrival time.Duration) {
	if rec.Err != trace.ErrNone {
		// Failed lookups bounce at the MSCP without touching a device.
		s.mscp.Use(s.cfg.ErrorBounce, func(now, wait time.Duration) {
			rec.Startup = now - arrival
			rec.Transfer = 0
		})
		return
	}
	service := s.lognormal(s.cfg.MSCPService, s.cfg.MSCPSigma)
	s.mscp.Use(service, func(now, wait time.Duration) {
		tape := rec.Device == device.ClassSiloTape || rec.Device == device.ClassManualTape
		if s.cfg.WriteBehind && tape && rec.Op == trace.Write {
			// User-visible: a staging-disk write. The tape copy runs in
			// the background and loads the drives, but the user never
			// waits for it.
			s.runDisk(rec, arrival)
			s.backgroundCopy(rec)
			return
		}
		switch rec.Device {
		case device.ClassDisk:
			if s.cfg.SmallOnOptical {
				s.runOptical(rec, arrival)
				return
			}
			s.runDisk(rec, arrival)
		case device.ClassSiloTape:
			s.runSilo(rec, arrival)
		case device.ClassManualTape:
			s.runManual(rec, arrival)
		case device.ClassOptical:
			s.runOptical(rec, arrival)
		default:
			// Future classes: treat as silo-like.
			s.runSilo(rec, arrival)
		}
	})
}

// runDisk services a staging-disk transfer: queue for a disk path, seek
// (milliseconds), transfer at the observed rate.
func (s *Simulator) runDisk(rec *trace.Record, arrival time.Duration) {
	cost := s.cfg.Disk.Access(s.rng.Float64(), rec.Size, true, s.rng)
	pre := cost.Seek
	s.disks.Acquire(func(now, wait time.Duration) {
		s.engine.At(now+pre, func(firstByte time.Duration) {
			rec.Startup = firstByte - arrival
			s.engine.At(firstByte+cost.Transfer, func(end time.Duration) {
				rec.Transfer = cost.Transfer
				s.disks.Release()
			})
		})
	})
}

// runSilo services a silo-tape transfer: queue for a drive; if the
// cartridge is not already mounted, queue for a robot arm to pick and
// mount it; then seek and transfer.
func (s *Simulator) runSilo(rec *trace.Record, arrival time.Duration) {
	cart := s.catalog.Cartridge(rec.MSSPath)
	mounted := s.siloMounts.Mounted(cart)
	cost := s.cfg.Silo.Access(s.catalog.OffsetFrac(rec.MSSPath), rec.Size, mounted, s.rng)
	if mounted {
		s.mountsSkipped++
	} else {
		s.mountsDone++
		// Register at decision time so same-cartridge requests arriving
		// during the pick ride the same mount — the MSCP batches them
		// onto one drive (§6's coalescing opportunity).
		s.siloMounts.Mount(cart)
	}
	s.siloDrv.Acquire(func(now, wait time.Duration) {
		afterMount := func(t time.Duration) {
			s.engine.At(t+cost.Seek, func(firstByte time.Duration) {
				rec.Startup = firstByte - arrival
				s.engine.At(firstByte+cost.Transfer, func(end time.Duration) {
					rec.Transfer = cost.Transfer
					s.siloDrv.Release()
				})
			})
		}
		if mounted {
			afterMount(now)
			return
		}
		s.siloBot.Use(cost.Mount, func(end, botWait time.Duration) {
			afterMount(end)
		})
	})
}

// runManual services a shelf-tape transfer: queue for a drive, then for a
// human operator who fetches and mounts the cartridge (the long-tailed
// stage), then seek and transfer.
func (s *Simulator) runManual(rec *trace.Record, arrival time.Duration) {
	cart := s.catalog.Cartridge(rec.MSSPath)
	mounted := s.manualMounts.Mounted(cart)
	cost := s.cfg.Manual.Access(s.catalog.OffsetFrac(rec.MSSPath), rec.Size, mounted, s.rng)
	if mounted {
		s.mountsSkipped++
	} else {
		s.mountsDone++
		s.manualMounts.Mount(cart)
	}
	s.manDrv.Acquire(func(now, wait time.Duration) {
		afterMount := func(t time.Duration) {
			s.engine.At(t+cost.Seek, func(firstByte time.Duration) {
				rec.Startup = firstByte - arrival
				s.engine.At(firstByte+cost.Transfer, func(end time.Duration) {
					rec.Transfer = cost.Transfer
					s.manDrv.Release()
				})
			})
		}
		if mounted {
			afterMount(now)
			return
		}
		s.operator.Use(cost.Mount, func(end, opWait time.Duration) {
			afterMount(end)
		})
	})
}

// runOptical services a jukebox transfer: queue for a drive; a robot
// swaps the platter unless it is already loaded; then seek and transfer
// at the (slow) optical rate. First byte comes fast, last byte slowly —
// exactly the §2.2 trade.
func (s *Simulator) runOptical(rec *trace.Record, arrival time.Duration) {
	cart := s.catalog.Cartridge(rec.MSSPath)
	mounted := s.optMounts.Mounted(cart)
	cost := s.cfg.Optical.Access(s.catalog.OffsetFrac(rec.MSSPath), rec.Size, mounted, s.rng)
	if mounted {
		s.mountsSkipped++
	} else {
		s.mountsDone++
		s.optMounts.Mount(cart)
	}
	s.optDrv.Acquire(func(now, wait time.Duration) {
		afterMount := func(t time.Duration) {
			s.engine.At(t+cost.Seek, func(firstByte time.Duration) {
				rec.Startup = firstByte - arrival
				s.engine.At(firstByte+cost.Transfer, func(end time.Duration) {
					rec.Transfer = cost.Transfer
					s.optDrv.Release()
				})
			})
		}
		if mounted {
			afterMount(now)
			return
		}
		s.optBot.Use(cost.Mount, func(end, botWait time.Duration) {
			afterMount(end)
		})
	})
}

// backgroundCopy schedules the deferred tape write of a write-behind
// record: it occupies a drive (and robot or operator) like any transfer
// but records nothing in the trace — the user already went home.
func (s *Simulator) backgroundCopy(rec *trace.Record) {
	shadow := *rec // local copy; latency writes go nowhere visible
	bg := &shadow
	if rec.Device == device.ClassManualTape {
		s.runManual(bg, s.engine.Now())
		return
	}
	s.runSilo(bg, s.engine.Now())
}

func (s *Simulator) lognormal(median time.Duration, sigma float64) time.Duration {
	if sigma <= 0 {
		return median
	}
	return time.Duration(float64(median) * math.Exp(sigma*s.rng.NormFloat64()))
}

// ResourceStats reports the queueing statistics of every station, in a
// fixed order: mscp, disk, silo-drive, silo-robot, manual-drive,
// operator, optical-drive, optical-robot.
func (s *Simulator) ResourceStats() []sim.Stats {
	return []sim.Stats{
		s.mscp.Stats(),
		s.disks.Stats(),
		s.siloDrv.Stats(),
		s.siloBot.Stats(),
		s.manDrv.Stats(),
		s.operator.Stats(),
		s.optDrv.Stats(),
		s.optBot.Stats(),
	}
}

// MountStats reports how many tape mounts were performed vs. avoided via
// an already-mounted cartridge.
func (s *Simulator) MountStats() (done, skipped int) {
	return s.mountsDone, s.mountsSkipped
}
