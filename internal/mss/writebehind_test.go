package mss

import (
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/trace"
	"filemig/internal/units"
)

func TestWriteBehindCutsVisibleWriteLatency(t *testing.T) {
	recs := []trace.Record{
		mkRec(0, trace.Write, device.ClassSiloTape, units.Bytes(80*units.MB), "/mss/w1"),
		mkRec(time.Minute, trace.Write, device.ClassManualTape, units.Bytes(40*units.MB), "/mss/w2"),
	}
	base := NewSimulator(DefaultConfig(1))
	baseOut, err := base.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.WriteBehind = true
	wb := NewSimulator(cfg)
	wbOut, err := wb.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if wbOut[i].Startup >= baseOut[i].Startup {
			t.Errorf("record %d: write-behind startup %v not below baseline %v",
				i, wbOut[i].Startup, baseOut[i].Startup)
		}
		// The visible path is the staging disk: seconds, not minutes.
		if wbOut[i].Startup > 20*time.Second {
			t.Errorf("record %d: write-behind startup %v, want disk-speed", i, wbOut[i].Startup)
		}
	}
	// The background copies still consumed tape resources.
	stats := wb.ResourceStats()
	var siloArrivals, manArrivals uint64
	for _, st := range stats {
		switch st.Name {
		case "silo-drive":
			siloArrivals = st.Arrivals
		case "manual-drive":
			manArrivals = st.Arrivals
		}
	}
	if siloArrivals == 0 || manArrivals == 0 {
		t.Errorf("background copies missing: silo=%d manual=%d arrivals",
			siloArrivals, manArrivals)
	}
}

func TestWriteBehindLeavesReadsOnTape(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.WriteBehind = true
	s := NewSimulator(cfg)
	rec := mkRec(0, trace.Read, device.ClassSiloTape, units.Bytes(50*units.MB), "/mss/r")
	out, err := s.Replay([]trace.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	// Reads are untouched by write-behind: still a tape access.
	if out[0].Startup < 30*time.Second {
		t.Errorf("read startup = %v, want tape-speed", out[0].Startup)
	}
}

func TestSimulatorLognormalDegenerate(t *testing.T) {
	s := NewSimulator(DefaultConfig(3))
	if got := s.lognormal(5*time.Second, 0); got != 5*time.Second {
		t.Errorf("sigma 0 should return the median, got %v", got)
	}
}

func TestNewSimulatorClampsOpticalPools(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.OpticalDrives = 0
	cfg.OpticalRobots = 0
	s := NewSimulator(cfg)
	st := s.ResourceStats()
	if st[6].Name != "optical-drive" || st[7].Name != "optical-robot" {
		t.Fatalf("optical pools missing: %v %v", st[6].Name, st[7].Name)
	}
}
