package mss

import (
	"hash/fnv"
)

// Catalog maps MSS files onto tape cartridges. Placement is deterministic
// (a hash of the MSS path), so repeated requests for one file always hit
// the same cartridge — which is what makes mount reuse and §6's
// coalescing observations meaningful.
type Catalog struct {
	cartridges int
}

// NewCatalog builds a catalog over the given cartridge count.
func NewCatalog(cartridges int) *Catalog {
	if cartridges < 1 {
		cartridges = 1
	}
	return &Catalog{cartridges: cartridges}
}

// Cartridge reports which cartridge holds the file.
func (c *Catalog) Cartridge(mssPath string) int {
	return int(hash64(mssPath) % uint64(c.cartridges))
}

// OffsetFrac reports the file's fractional position along its tape,
// in [0, 1); it scales the seek portion of an access.
func (c *Catalog) OffsetFrac(mssPath string) float64 {
	// Use a different fold of the hash than Cartridge so position and
	// cartridge are independent.
	h := hash64(mssPath)
	return float64((h>>17)%10000) / 10000
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// MountCache remembers the last k cartridges left mounted on a drive
// pool, approximating per-drive mount state: a request whose cartridge is
// still mounted skips the robot or operator entirely.
type MountCache struct {
	cap   int
	order []int
	in    map[int]bool
}

// NewMountCache holds up to cap cartridges (one per drive).
func NewMountCache(cap int) *MountCache {
	if cap < 1 {
		cap = 1
	}
	return &MountCache{cap: cap, in: make(map[int]bool, cap)}
}

// Mounted reports whether the cartridge is currently mounted.
func (m *MountCache) Mounted(cart int) bool { return m.in[cart] }

// Mount records that the cartridge is now on a drive, evicting the
// oldest mount if the pool is full.
func (m *MountCache) Mount(cart int) {
	if m.in[cart] {
		return
	}
	if len(m.order) >= m.cap {
		old := m.order[0]
		m.order = m.order[1:]
		delete(m.in, old)
	}
	m.order = append(m.order, cart)
	m.in[cart] = true
}

// Len reports how many cartridges are mounted.
func (m *MountCache) Len() int { return len(m.order) }
