package mss

import (
	"time"

	"filemig/internal/trace"
)

// Cut-through open (§5.1.1, after MSS-II/RASH [7]): a call to open a
// migrated file returns immediately while the system keeps loading it;
// reads stall only if the application outruns the staging transfer.
// "This scheme works because applications often do not read data as fast
// as the MSS can deliver it."
//
// The NCAR system made users wait for the whole transfer before the
// first byte could be used, so the perceived read time was
// startup + transfer + processing. With cut-through the transfer overlaps
// processing: perceived time is startup + max(transfer, size/appRate).
// CutThroughReport quantifies that difference over a simulated trace.

// CutThroughResult compares perceived read-completion times with and
// without cut-through at a given application consumption rate.
type CutThroughResult struct {
	AppRate        float64 // bytes/second the application consumes
	Reads          int64
	BaselineMean   time.Duration // startup + transfer + processing
	CutThroughMean time.Duration // startup + max(transfer, processing)
	StalledReads   int64         // reads where the app outran the MSS
}

// Speedup is the mean perceived-latency ratio (baseline over cut-through).
func (r CutThroughResult) Speedup() float64 {
	if r.CutThroughMean == 0 {
		return 0
	}
	return float64(r.BaselineMean) / float64(r.CutThroughMean)
}

// CutThroughReport evaluates cut-through over simulated records (their
// Startup/Transfer must be filled, i.e. after Replay).
func CutThroughReport(recs []trace.Record, appRate float64) CutThroughResult {
	res := CutThroughResult{AppRate: appRate}
	var base, cut time.Duration
	for i := range recs {
		r := &recs[i]
		if !r.OK() || r.Op != trace.Read || r.Size == 0 {
			continue
		}
		res.Reads++
		processing := time.Duration(float64(r.Size) / appRate * float64(time.Second))
		base += r.Startup + r.Transfer + processing
		overlap := processing
		if r.Transfer > processing {
			overlap = r.Transfer
			res.StalledReads++
		}
		cut += r.Startup + overlap
	}
	if res.Reads > 0 {
		res.BaselineMean = base / time.Duration(res.Reads)
		res.CutThroughMean = cut / time.Duration(res.Reads)
	}
	return res
}
