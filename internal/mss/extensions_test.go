package mss

import (
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/trace"
	"filemig/internal/units"
)

func TestCutThroughReport(t *testing.T) {
	// One 80 MB tape read: startup 85s, transfer 40s (2 MB/s). An app
	// consuming at 1 MB/s needs 80s of processing.
	recs := []trace.Record{{
		Start: trace.Epoch, Op: trace.Read, Device: device.ClassSiloTape,
		Startup: 85 * time.Second, Transfer: 40 * time.Second,
		Size: units.Bytes(80 * units.MB), MSSPath: "/m", LocalPath: "/l", UserID: 1,
	}}
	res := CutThroughReport(recs, 1e6)
	if res.Reads != 1 {
		t.Fatalf("reads = %d", res.Reads)
	}
	// Baseline: 85 + 40 + 80 = 205s. Cut-through: 85 + max(40, 80) = 165s.
	if res.BaselineMean != 205*time.Second {
		t.Errorf("baseline = %v, want 205s", res.BaselineMean)
	}
	if res.CutThroughMean != 165*time.Second {
		t.Errorf("cut-through = %v, want 165s", res.CutThroughMean)
	}
	if res.StalledReads != 0 {
		t.Errorf("slow app should never stall, got %d", res.StalledReads)
	}
	if s := res.Speedup(); s < 1.2 || s > 1.3 {
		t.Errorf("speedup = %v, want ~1.24", s)
	}
	// A fast app (10 MB/s, 8s processing) outruns the 2 MB/s transfer.
	res = CutThroughReport(recs, 10e6)
	if res.StalledReads != 1 {
		t.Errorf("fast app should stall, got %d", res.StalledReads)
	}
	// Cut-through: 85 + max(40, 8) = 125s; baseline 85+40+8 = 133s.
	if res.CutThroughMean != 125*time.Second {
		t.Errorf("cut-through = %v, want 125s", res.CutThroughMean)
	}
}

func TestCutThroughSkipsWritesAndErrors(t *testing.T) {
	recs := []trace.Record{
		{Start: trace.Epoch, Op: trace.Write, Device: device.ClassSiloTape,
			Startup: time.Second, Transfer: time.Second,
			Size: units.Bytes(units.MB), MSSPath: "/m", LocalPath: "/l"},
		{Start: trace.Epoch, Op: trace.Read, Device: device.ClassDisk,
			Err: trace.ErrNoFile, MSSPath: "/x", LocalPath: "/l"},
	}
	res := CutThroughReport(recs, 1e6)
	if res.Reads != 0 {
		t.Errorf("reads = %d, want 0", res.Reads)
	}
	if res.Speedup() != 0 {
		t.Errorf("empty speedup = %v", res.Speedup())
	}
}

func TestSmallOnOpticalRouting(t *testing.T) {
	// The same small-file read through disk vs optical: optical carries a
	// platter-swap penalty up front but the paper's point is it still
	// bounds the first byte in seconds, unlike tape.
	rec := mkRec(0, trace.Read, device.ClassDisk, units.Bytes(units.MB), "/mss/s")

	plain := NewSimulator(DefaultConfig(1))
	outDisk, err := plain.Replay([]trace.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.SmallOnOptical = true
	opt := NewSimulator(cfg)
	outOpt, err := opt.Replay([]trace.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	if outOpt[0].Startup <= outDisk[0].Startup {
		t.Errorf("optical first byte (%v) should trail disk (%v) — platter swap",
			outOpt[0].Startup, outDisk[0].Startup)
	}
	if outOpt[0].Startup > 30*time.Second {
		t.Errorf("optical first byte = %v, want seconds (not tape minutes)", outOpt[0].Startup)
	}
	// Transfer at 0.25 MB/s: 1 MB ≈ 4s, versus 0.5s on disk.
	if outOpt[0].Transfer <= outDisk[0].Transfer {
		t.Error("optical transfer should be slower than disk")
	}
	// Tape comparison: a silo read of the same file takes far longer to
	// the first byte.
	tapeRec := mkRec(0, trace.Read, device.ClassSiloTape, units.Bytes(units.MB), "/mss/s")
	tape := NewSimulator(DefaultConfig(1))
	outTape, err := tape.Replay([]trace.Record{tapeRec})
	if err != nil {
		t.Fatal(err)
	}
	if outOpt[0].Startup >= outTape[0].Startup {
		t.Errorf("optical (%v) should beat tape (%v) to the first byte",
			outOpt[0].Startup, outTape[0].Startup)
	}
}

func TestOpticalClassDirect(t *testing.T) {
	s := NewSimulator(DefaultConfig(2))
	rec := mkRec(0, trace.Read, device.ClassOptical, units.Bytes(2*units.MB), "/mss/o")
	out, err := s.Replay([]trace.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Startup <= 0 || out[0].Transfer <= 0 {
		t.Errorf("optical record not serviced: %+v", out[0])
	}
}

func TestOpticalMountReuse(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.SmallOnOptical = true
	s := NewSimulator(cfg)
	var recs []trace.Record
	for i := 0; i < 3; i++ {
		recs = append(recs, mkRec(time.Duration(i)*10*time.Second,
			trace.Read, device.ClassDisk, units.Bytes(units.MB), "/mss/same"))
	}
	if _, err := s.Replay(recs); err != nil {
		t.Fatal(err)
	}
	done, skipped := s.MountStats()
	if done != 1 || skipped != 2 {
		t.Errorf("mounts done/skipped = %d/%d, want 1/2", done, skipped)
	}
}
