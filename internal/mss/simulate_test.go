package mss

import (
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
)

func mkRec(offset time.Duration, op trace.Op, dev device.Class, size units.Bytes, path string) trace.Record {
	return trace.Record{
		Start: trace.Epoch.Add(offset), Op: op, Device: dev,
		Size: size, MSSPath: path, LocalPath: "/t/x", UserID: 1,
	}
}

func TestReplayFillsLatencies(t *testing.T) {
	s := NewSimulator(DefaultConfig(1))
	recs := []trace.Record{
		mkRec(0, trace.Read, device.ClassDisk, units.Bytes(2*units.MB), "/mss/a"),
		mkRec(time.Minute, trace.Read, device.ClassSiloTape, units.Bytes(80*units.MB), "/mss/b"),
		mkRec(2*time.Minute, trace.Read, device.ClassManualTape, units.Bytes(47*units.MB), "/mss/c"),
	}
	out, err := s.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("out = %d records", len(out))
	}
	for i, r := range out {
		if r.Startup <= 0 {
			t.Errorf("record %d startup = %v, want > 0", i, r.Startup)
		}
		if r.Transfer <= 0 {
			t.Errorf("record %d transfer = %v, want > 0", i, r.Transfer)
		}
	}
	// Uncontended latency ordering: disk < silo < manual.
	if !(out[0].Startup < out[1].Startup && out[1].Startup < out[2].Startup) {
		t.Errorf("startup ordering wrong: disk=%v silo=%v manual=%v",
			out[0].Startup, out[1].Startup, out[2].Startup)
	}
	// Transfer at ~2 MB/s: 80 MB ≈ 40 s.
	if out[1].Transfer < 35*time.Second || out[1].Transfer > 45*time.Second {
		t.Errorf("80 MB silo transfer = %v, want ~40s", out[1].Transfer)
	}
}

func TestReplayInputUntouchedAndSorted(t *testing.T) {
	s := NewSimulator(DefaultConfig(2))
	recs := []trace.Record{
		mkRec(0, trace.Read, device.ClassDisk, units.Bytes(units.MB), "/mss/a"),
		mkRec(time.Second, trace.Read, device.ClassDisk, units.Bytes(units.MB), "/mss/b"),
	}
	out, err := s.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Startup != 0 || recs[1].Startup != 0 {
		t.Error("input slice was modified")
	}
	if out[1].Start.Before(out[0].Start) {
		t.Error("output not sorted")
	}
}

func TestReplayRejectsUnsorted(t *testing.T) {
	s := NewSimulator(DefaultConfig(3))
	recs := []trace.Record{
		mkRec(time.Minute, trace.Read, device.ClassDisk, units.Bytes(units.MB), "/mss/a"),
		mkRec(0, trace.Read, device.ClassDisk, units.Bytes(units.MB), "/mss/b"),
	}
	if _, err := s.Replay(recs); err == nil {
		t.Error("unsorted input should be rejected")
	}
}

func TestReplayEmpty(t *testing.T) {
	s := NewSimulator(DefaultConfig(4))
	out, err := s.Replay(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty replay: %v %v", out, err)
	}
}

func TestErrorRequestsBounceQuickly(t *testing.T) {
	s := NewSimulator(DefaultConfig(5))
	rec := mkRec(0, trace.Read, device.ClassManualTape, 0, "/mss/none")
	rec.Err = trace.ErrNoFile
	out, err := s.Replay([]trace.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Transfer != 0 {
		t.Errorf("error request transferred data: %v", out[0].Transfer)
	}
	if out[0].Startup > 10*time.Second {
		t.Errorf("error bounce = %v, want fast (no device touched)", out[0].Startup)
	}
}

func TestMountReuseWithinBurst(t *testing.T) {
	s := NewSimulator(DefaultConfig(6))
	// Five back-to-back reads of the same tape file: the cartridge mounts
	// once; followers skip the robot.
	var recs []trace.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, mkRec(time.Duration(i)*5*time.Second,
			trace.Read, device.ClassSiloTape, units.Bytes(50*units.MB), "/mss/same"))
	}
	if _, err := s.Replay(recs); err != nil {
		t.Fatal(err)
	}
	done, skipped := s.MountStats()
	if done != 1 {
		t.Errorf("mounts done = %d, want 1", done)
	}
	if skipped != 4 {
		t.Errorf("mounts skipped = %d, want 4", skipped)
	}
}

func TestQueueingUnderBurst(t *testing.T) {
	// Ten simultaneous manual-tape requests against 2 operators: waits
	// must stack up, producing the long tail of Figure 3.
	cfg := DefaultConfig(7)
	s := NewSimulator(cfg)
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, mkRec(time.Duration(i)*time.Second,
			trace.Read, device.ClassManualTape, units.Bytes(20*units.MB),
			"/mss/m"+string(rune('a'+i))))
	}
	out, err := s.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	var lat stats.CDF
	for _, r := range out {
		lat.Add(r.Startup.Seconds())
	}
	if lat.Max() < 400 {
		t.Errorf("max manual latency under burst = %vs, want > 400s tail", lat.Max())
	}
	if lat.Min() > 400 {
		t.Errorf("min manual latency = %vs — even the first should be ~100-300s", lat.Min())
	}
}

func TestDiskFastPath(t *testing.T) {
	s := NewSimulator(DefaultConfig(8))
	out, err := s.Replay([]trace.Record{
		mkRec(0, trace.Read, device.ClassDisk, units.Bytes(3750*units.KB), "/mss/d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uncontended disk: startup ≈ MSCP service (~2.5s) + ms seek. The
	// paper's 4s median includes light queueing.
	if out[0].Startup > 15*time.Second {
		t.Errorf("uncontended disk startup = %v, want seconds", out[0].Startup)
	}
	if out[0].Transfer < time.Second || out[0].Transfer > 3*time.Second {
		t.Errorf("3.75 MB at 2 MB/s = %v, want ~1.9s", out[0].Transfer)
	}
}

func TestDeterministicReplay(t *testing.T) {
	mk := func() []trace.Record {
		s := NewSimulator(DefaultConfig(42))
		var recs []trace.Record
		for i := 0; i < 50; i++ {
			dev := device.ClassDisk
			if i%3 == 1 {
				dev = device.ClassSiloTape
			} else if i%3 == 2 {
				dev = device.ClassManualTape
			}
			recs = append(recs, mkRec(time.Duration(i)*7*time.Second,
				trace.Read, dev, units.Bytes(10*units.MB), "/mss/f"+string(rune('a'+i%26))))
		}
		out, err := s.Replay(recs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Startup != b[i].Startup || a[i].Transfer != b[i].Transfer {
			t.Fatalf("record %d latencies differ across identical seeds", i)
		}
	}
}

func TestResourceStatsExposed(t *testing.T) {
	s := NewSimulator(DefaultConfig(9))
	if _, err := s.Replay([]trace.Record{
		mkRec(0, trace.Read, device.ClassSiloTape, units.Bytes(units.MB), "/mss/a"),
	}); err != nil {
		t.Fatal(err)
	}
	st := s.ResourceStats()
	if len(st) != 8 {
		t.Fatalf("stats = %d resources, want 8", len(st))
	}
	names := []string{"mscp", "disk", "silo-drive", "silo-robot",
		"manual-drive", "operator", "optical-drive", "optical-robot"}
	for i, want := range names {
		if st[i].Name != want {
			t.Errorf("stats[%d] = %q, want %q", i, st[i].Name, want)
		}
	}
	if st[0].Arrivals != 1 {
		t.Errorf("mscp arrivals = %d, want 1", st[0].Arrivals)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	c := NewCatalog(6000)
	if c.Cartridge("/mss/x") != c.Cartridge("/mss/x") {
		t.Error("cartridge assignment must be deterministic")
	}
	if c.OffsetFrac("/mss/x") != c.OffsetFrac("/mss/x") {
		t.Error("offset must be deterministic")
	}
	f := c.OffsetFrac("/mss/y")
	if f < 0 || f >= 1 {
		t.Errorf("offset = %v, want [0,1)", f)
	}
	if NewCatalog(0).Cartridge("/a") != 0 {
		t.Error("degenerate catalog should map to cartridge 0")
	}
	// Different paths should spread across cartridges.
	seen := map[int]bool{}
	for _, p := range []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"} {
		seen[c.Cartridge(p)] = true
	}
	if len(seen) < 4 {
		t.Errorf("8 paths landed on %d cartridges — hash too weak", len(seen))
	}
}

func TestMountCache(t *testing.T) {
	m := NewMountCache(2)
	if m.Mounted(1) {
		t.Error("nothing mounted yet")
	}
	m.Mount(1)
	m.Mount(2)
	if !m.Mounted(1) || !m.Mounted(2) {
		t.Error("both cartridges should be mounted")
	}
	m.Mount(3) // evicts 1 (FIFO)
	if m.Mounted(1) {
		t.Error("cartridge 1 should have been evicted")
	}
	if !m.Mounted(3) || !m.Mounted(2) {
		t.Error("2 and 3 should be mounted")
	}
	m.Mount(2) // re-mount is a no-op
	if m.Len() != 2 {
		t.Errorf("len = %d, want 2", m.Len())
	}
	if NewMountCache(0).cap != 1 {
		t.Error("zero cap should clamp to 1")
	}
}

func TestTopologyDescribed(t *testing.T) {
	links := Topology()
	if len(links) < 5 {
		t.Fatalf("topology has %d links, want the Figure 2 set", len(links))
	}
	foundLDN, foundMASnet := false, false
	for _, l := range links {
		if l.Via == "LDN (high-speed direct data path)" {
			foundLDN = true
		}
		if l.Via == "MASnet (hyperchannel control path)" {
			foundMASnet = true
		}
	}
	if !foundLDN || !foundMASnet {
		t.Error("topology must include both the LDN data path and MASnet control path")
	}
}
