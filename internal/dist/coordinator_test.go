package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced coordinator clock, so lease expiry,
// backoff, and speculation are tested without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// testCoordinator builds a coordinator over n one-byte payloads whose
// Handle records delivery order.
func testCoordinator(t *testing.T, n int, opts Options) (*Coordinator, *[]int) {
	t.Helper()
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	var delivered []int
	c, err := NewCoordinator(Config{
		Kind:     "unit/v1",
		PlanHash: "unit-hash",
		Plan:     []byte("{}"),
		Payloads: payloads,
		Handle: func(id int, result []byte) error {
			delivered = append(delivered, id)
			return nil
		},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, &delivered
}

// claim performs one claim through the HTTP handler.
func claim(t *testing.T, c *Coordinator) claimMsg {
	t.Helper()
	rec := httptest.NewRecorder()
	c.handleClaim(rec, httptest.NewRequest("POST", pathClaim, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("claim: HTTP %d: %s", rec.Code, rec.Body)
	}
	payload, err := DecodeFrame(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	var msg claimMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		t.Fatalf("claim: %v", err)
	}
	return msg
}

// postResult performs one framed result upload, returning the HTTP
// status and body.
func postResult(c *Coordinator, id int, result []byte) (int, string) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", fmt.Sprintf("%s?id=%d", pathResult, id), bytes.NewReader(EncodeFrame(result)))
	c.handleResult(rec, req)
	return rec.Code, rec.Body.String()
}

// postFail reports one execution failure through the HTTP handler.
func postFail(t *testing.T, c *Coordinator, id int, lease int64, msg string) {
	t.Helper()
	body, err := json.Marshal(failMsg{ID: id, Lease: lease, Error: msg})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	c.handleFail(rec, httptest.NewRequest("POST", pathFail, bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("fail report: HTTP %d: %s", rec.Code, rec.Body)
	}
}

func TestClaimWindowBoundsBuffering(t *testing.T) {
	clk := newFakeClock()
	c, delivered := testCoordinator(t, 5, Options{Now: clk.Now, Window: 2, Lease: time.Minute})

	first, second := claim(t, c), claim(t, c)
	if !first.Claimed || first.ID != 0 || !second.Claimed || second.ID != 1 {
		t.Fatalf("first claims granted %+v, %+v; want tasks 0 and 1", first, second)
	}
	// Task 2 is outside the window until the frontier moves.
	if msg := claim(t, c); msg.Claimed || msg.Done || msg.WaitMillis <= 0 {
		t.Fatalf("claim past the window: %+v; want a wait hint", msg)
	}
	// Completing task 1 buffers it (frontier still at 0): window unchanged.
	if code, _ := postResult(c, 1, []byte("r1")); code != http.StatusOK {
		t.Fatalf("result 1: HTTP %d", code)
	}
	if msg := claim(t, c); msg.Claimed {
		t.Fatalf("window opened before the frontier moved: %+v", msg)
	}
	// Completing task 0 delivers 0 and 1 in order and opens the window.
	if code, _ := postResult(c, 0, []byte("r0")); code != http.StatusOK {
		t.Fatalf("result 0: HTTP %d", code)
	}
	if got := fmt.Sprint(*delivered); got != "[0 1]" {
		t.Fatalf("delivered %s, want [0 1]", got)
	}
	if msg := claim(t, c); !msg.Claimed || msg.ID != 2 {
		t.Fatalf("claim after frontier advance: %+v; want task 2", msg)
	}
}

func TestLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	c, delivered := testCoordinator(t, 1, Options{
		Now: clk.Now, Lease: 10 * time.Second,
		BackoffBase: 100 * time.Millisecond, BackoffCap: 100 * time.Millisecond,
	})

	first := claim(t, c)
	if !first.Claimed {
		t.Fatalf("first claim not granted: %+v", first)
	}
	if msg := claim(t, c); msg.Claimed {
		t.Fatal("leased task claimable twice without expiry or speculation")
	}
	// Past the lease the task is re-queued, claimable after its backoff.
	clk.Advance(11 * time.Second)
	if msg := claim(t, c); msg.Claimed {
		t.Fatalf("expired task claimable before its backoff elapsed: %+v", msg)
	}
	clk.Advance(time.Second)
	second := claim(t, c)
	if !second.Claimed || second.ID != 0 {
		t.Fatalf("expired task not re-granted: %+v", second)
	}
	if second.Lease == first.Lease {
		t.Fatal("re-grant reused the dead lease ID")
	}
	// A result from the presumed-dead worker's lease still lands: first
	// result wins regardless of which lease produced it.
	if code, _ := postResult(c, 0, []byte("late")); code != http.StatusOK {
		t.Fatalf("late result: HTTP %d", code)
	}
	if got := fmt.Sprint(*delivered); got != "[0]" {
		t.Fatalf("delivered %s, want [0]", got)
	}
}

func TestSpeculationDuplicatesStragglersOnce(t *testing.T) {
	clk := newFakeClock()
	c, delivered := testCoordinator(t, 1, Options{
		Now: clk.Now, Lease: time.Hour, SpeculateAfter: 5 * time.Second,
	})
	first := claim(t, c)
	if !first.Claimed {
		t.Fatalf("claim not granted: %+v", first)
	}
	if msg := claim(t, c); msg.Claimed {
		t.Fatal("speculative duplicate granted before SpeculateAfter")
	}
	clk.Advance(6 * time.Second)
	spec := claim(t, c)
	if !spec.Claimed || spec.ID != 0 || spec.Lease == first.Lease {
		t.Fatalf("straggler not speculatively re-granted: %+v", spec)
	}
	// At two live leases the straggler is not triplicated.
	clk.Advance(6 * time.Second)
	if msg := claim(t, c); msg.Claimed {
		t.Fatalf("straggler granted a third lease: %+v", msg)
	}
	// Both workers answer; the first result wins, the second is a no-op.
	if code, _ := postResult(c, 0, []byte("same bytes")); code != http.StatusOK {
		t.Fatal("first result rejected")
	}
	code, body := postResult(c, 0, []byte("same bytes"))
	if code != http.StatusOK || body != "duplicate" {
		t.Fatalf("second result: HTTP %d %q, want 200 \"duplicate\"", code, body)
	}
	if got := fmt.Sprint(*delivered); got != "[0]" {
		t.Fatalf("delivered %s, want exactly [0]", got)
	}
	if msg := claim(t, c); !msg.Done {
		t.Fatalf("claim after completion: %+v, want done", msg)
	}
}

func TestFailReportRequeuesAndMaxAttemptsFailsRun(t *testing.T) {
	clk := newFakeClock()
	c, _ := testCoordinator(t, 1, Options{
		Now: clk.Now, Lease: time.Minute, MaxAttempts: 2,
		BackoffBase: 10 * time.Millisecond, BackoffCap: 10 * time.Millisecond,
	})
	first := claim(t, c)
	postFail(t, c, first.ID, first.Lease, "exec blew up")
	clk.Advance(time.Second)
	second := claim(t, c)
	if !second.Claimed {
		t.Fatalf("failed task not re-granted: %+v", second)
	}
	// A stale fail report against the dead lease is ignored.
	postFail(t, c, first.ID, first.Lease, "stale")
	if msg := claim(t, c); msg.Fatal != "" {
		t.Fatalf("stale fail report charged an attempt: %+v", msg)
	}
	// The second real failure exhausts MaxAttempts and fails the run.
	postFail(t, c, second.ID, second.Lease, "exec blew up again")
	msg := claim(t, c)
	if msg.Fatal == "" || !strings.Contains(msg.Fatal, "after 2 attempts") {
		t.Fatalf("claim after exhaustion: %+v, want fatal", msg)
	}
	if code, _ := postResult(c, 0, []byte("too late")); code != http.StatusConflict {
		t.Fatalf("result on a failed run: HTTP %d, want 409", code)
	}
}

func TestResultRejectsDamagedUploadsAndBadIDs(t *testing.T) {
	clk := newFakeClock()
	c, delivered := testCoordinator(t, 1, Options{Now: clk.Now})
	rec := httptest.NewRecorder()
	c.handleResult(rec, httptest.NewRequest("POST", pathResult+"?id=0",
		bytes.NewReader(EncodeFrame([]byte("x"))[:8])))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated upload: HTTP %d, want 400", rec.Code)
	}
	if code, _ := postResult(c, 7, []byte("x")); code != http.StatusBadRequest {
		t.Fatalf("out-of-range id: HTTP %d, want 400", code)
	}
	if len(*delivered) != 0 {
		t.Fatalf("damaged uploads delivered results: %v", *delivered)
	}
}

func TestJournalResumeSkipsCompletedTasks(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	opts := Options{Now: clk.Now, JournalDir: dir}

	c1, d1 := testCoordinator(t, 3, opts)
	if c1.Resumed() != 0 {
		t.Fatalf("fresh run resumed %d tasks", c1.Resumed())
	}
	// Complete tasks 0 and 2, then "crash": 2 stays buffered past the
	// frontier and both are spooled.
	for _, id := range []int{0, 2} {
		if code, _ := postResult(c1, id, []byte(fmt.Sprintf("result-%d", id))); code != http.StatusOK {
			t.Fatalf("result %d rejected", id)
		}
	}
	if got := fmt.Sprint(*d1); got != "[0]" {
		t.Fatalf("pre-crash delivery %s, want [0]", got)
	}

	// Corrupt spools must be re-executed, not merged: tear task 2's file.
	spool := filepath.Join(dir, spoolName(2))
	b, err := os.ReadFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spool, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, d2 := testCoordinator(t, 3, opts)
	if c2.Resumed() != 1 {
		t.Fatalf("resumed %d tasks, want 1 (task 0 valid, task 2 torn)", c2.Resumed())
	}
	if got := fmt.Sprint(*d2); got != "[0]" {
		t.Fatalf("resume delivery %s, want [0]", got)
	}
	if msg := claim(t, c2); !msg.Claimed || msg.ID != 1 {
		t.Fatalf("first claim after resume: %+v, want task 1", msg)
	}
	if msg := claim(t, c2); !msg.Claimed || msg.ID != 2 {
		t.Fatalf("second claim after resume: %+v, want torn task 2", msg)
	}
	for _, id := range []int{1, 2} {
		if code, _ := postResult(c2, id, []byte(fmt.Sprintf("result-%d", id))); code != http.StatusOK {
			t.Fatalf("result %d rejected", id)
		}
	}
	if got := fmt.Sprint(*d2); got != "[0 1 2]" {
		t.Fatalf("final delivery %s, want [0 1 2]", got)
	}
}

func TestJournalRefusesForeignRun(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	if _, err := NewCoordinator(Config{
		Kind: "unit/v1", PlanHash: "hash-a", Plan: []byte("{}"),
		Payloads: [][]byte{{0}}, Handle: func(int, []byte) error { return nil },
	}, Options{Now: clk.Now, JournalDir: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := NewCoordinator(Config{
		Kind: "unit/v1", PlanHash: "hash-b", Plan: []byte("{}"),
		Payloads: [][]byte{{0}}, Handle: func(int, []byte) error { return nil },
	}, Options{Now: clk.Now, JournalDir: dir})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("foreign journal accepted: %v", err)
	}
}

func TestCoordinatorRequiresClock(t *testing.T) {
	_, err := NewCoordinator(Config{
		Kind: "unit/v1", PlanHash: "h", Plan: []byte("{}"),
		Payloads: [][]byte{{0}}, Handle: func(int, []byte) error { return nil },
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "Now") {
		t.Fatalf("clock-free coordinator accepted: %v", err)
	}
}
