package dist

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffShape checks the documented contract: the pre-jitter delay
// doubles per attempt from base, caps at cap, and every sample lands in
// [d/2, d).
func TestBackoffShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, cap := 100*time.Millisecond, 5*time.Second
	for attempt := 1; attempt <= 12; attempt++ {
		d := base << (attempt - 1)
		if d > cap || d <= 0 {
			d = cap
		}
		for i := 0; i < 50; i++ {
			got := backoff(rng, base, cap, attempt)
			if got < d/2 || got >= d {
				t.Fatalf("attempt %d: sample %v outside [%v, %v)", attempt, got, d/2, d)
			}
		}
	}
}

// TestBackoffDegenerateInputs must not panic or return nonsense for
// attempt 0 and tiny bases.
func TestBackoffDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := backoff(rng, time.Nanosecond, time.Second, 0); got <= 0 {
		t.Fatalf("attempt 0 with 1ns base: %v", got)
	}
	if got := backoff(rng, 50*time.Millisecond, time.Second, 1000); got >= time.Second {
		t.Fatalf("huge attempt escaped the cap: %v", got)
	}
}
