package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ExecFunc executes one task payload and returns the result bytes the
// coordinator will merge. Executors must be deterministic: any two
// executions of the same payload must return identical bytes, which is
// what makes retries, speculation, and duplicate deliveries safe.
type ExecFunc func(ctx context.Context, payload []byte) ([]byte, error)

// WorkerOptions tunes a worker's claim loop.
type WorkerOptions struct {
	// Client performs the HTTP requests; wrap its Transport to inject
	// faults in tests. Nil means a fresh client with sane timeouts.
	Client *http.Client

	// Poll is the idle re-claim delay base (jittered). Zero means the
	// coordinator's wait hint.
	Poll time.Duration

	// Seed seeds the worker's jitter RNG.
	Seed int64

	// MaxNetFailures bounds consecutive failed exchanges (transport
	// errors, bad frames, 5xx) before the worker gives up on the
	// coordinator. Default 40 — with capped backoff that is roughly a
	// minute of a coordinator being unreachable, long enough to ride
	// out a coordinator restart. Any successful exchange resets the
	// count.
	MaxNetFailures int

	// NewExec resolves the executor for the plan served by the
	// coordinator. Nil means DefaultExec.
	NewExec func(kind string, plan []byte) (ExecFunc, error)
}

// withDefaults resolves zero fields.
func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if o.MaxNetFailures <= 0 {
		o.MaxNetFailures = 40
	}
	if o.NewExec == nil {
		o.NewExec = DefaultExec
	}
	return o
}

// RunWorker joins the coordinator at baseURL, executes tasks until the
// coordinator reports the run complete, and returns nil. It survives
// transient transport faults (drops, delays, truncations, duplicate
// deliveries, coordinator restarts) by retrying with jittered backoff;
// it returns an error if the run fails, the coordinator stays
// unreachable past MaxNetFailures consecutive attempts, or ctx is
// cancelled.
func RunWorker(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{
		base:   strings.TrimRight(baseURL, "/"),
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		client: opts.Client,
	}
	return w.run(ctx)
}

// worker is one claim loop's state.
type worker struct {
	base     string
	opts     WorkerOptions
	rng      *rand.Rand
	client   *http.Client
	netFails int
	exec     ExecFunc
}

// run drives the claim loop.
func (w *worker) run(ctx context.Context) error {
	if err := w.fetchPlan(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		msg, err := w.claim(ctx)
		if err != nil {
			var fatal errFatal
			if errors.As(err, &fatal) {
				return err
			}
			if err := w.netFailure(ctx, err); err != nil {
				return err
			}
			continue
		}
		w.netFails = 0
		switch {
		case msg.Done:
			return nil
		case msg.Fatal != "":
			return errFatal{msg: msg.Fatal}
		case !msg.Claimed:
			w.idle(ctx, msg.WaitMillis)
		default:
			w.execute(ctx, msg)
		}
	}
}

// fetchPlan retrieves the run description (with retries) and builds the
// executor.
func (w *worker) fetchPlan(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload, err := w.exchange(ctx, http.MethodGet, pathPlan, nil)
		if err != nil {
			if err := w.netFailure(ctx, err); err != nil {
				return err
			}
			continue
		}
		w.netFails = 0
		var info planInfo
		if err := json.Unmarshal(payload, &info); err != nil {
			return fmt.Errorf("dist: bad plan description: %w", err)
		}
		exec, err := w.opts.NewExec(info.Kind, info.Plan)
		if err != nil {
			return err
		}
		w.exec = exec
		return nil
	}
}

// claim asks for one task.
func (w *worker) claim(ctx context.Context) (claimMsg, error) {
	payload, err := w.exchange(ctx, http.MethodPost, pathClaim, nil)
	if err != nil {
		return claimMsg{}, err
	}
	var msg claimMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return claimMsg{}, fmt.Errorf("dist: bad claim response: %w", err)
	}
	return msg, nil
}

// execute runs one claimed task and reports the outcome. Execution
// errors are reported to the coordinator (releasing the lease for
// retry) but do not stop the worker: the coordinator owns retry
// policy. Upload failures are retried here a few times; past that the
// lease expiry path takes over.
func (w *worker) execute(ctx context.Context, msg claimMsg) {
	result, err := w.exec(ctx, msg.Payload)
	if err != nil {
		body, merr := json.Marshal(failMsg{ID: msg.ID, Lease: msg.Lease, Error: err.Error()})
		if merr == nil {
			w.exchange(ctx, http.MethodPost, pathFail, body) // best effort
		}
		return
	}
	path := pathResult + "?id=" + strconv.Itoa(msg.ID) + "&lease=" + strconv.FormatInt(msg.Lease, 10)
	for attempt := 1; attempt <= 5; attempt++ {
		if ctx.Err() != nil {
			return
		}
		if _, err := w.exchangeRaw(ctx, http.MethodPost, path, EncodeFrame(result)); err == nil {
			w.netFails = 0
			return
		}
		w.sleep(ctx, backoff(w.rng, 20*time.Millisecond, 500*time.Millisecond, attempt))
	}
}

// idle sleeps out a no-work-yet poll with jitter.
func (w *worker) idle(ctx context.Context, hintMillis int64) {
	d := w.opts.Poll
	if d <= 0 {
		d = time.Duration(hintMillis) * time.Millisecond
	}
	if d <= 0 {
		d = waitHint * time.Millisecond
	}
	w.sleep(ctx, d/2+time.Duration(w.rng.Int63n(int64(d))))
}

// netFailure charges one failed exchange, sleeping with backoff; it
// returns an error once MaxNetFailures consecutive exchanges failed.
func (w *worker) netFailure(ctx context.Context, cause error) error {
	w.netFails++
	if w.netFails >= w.opts.MaxNetFailures {
		return fmt.Errorf("dist: coordinator unreachable after %d consecutive attempts: %w", w.netFails, cause)
	}
	w.sleep(ctx, backoff(w.rng, 20*time.Millisecond, 2*time.Second, w.netFails))
	return nil
}

// sleep waits for d or ctx, whichever ends first.
func (w *worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// exchange performs one framed exchange: the response body must decode
// as a frame, whose payload is returned.
func (w *worker) exchange(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	raw, err := w.exchangeRaw(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	if method == http.MethodPost && path == pathFail {
		return raw, nil // fail acks are unframed
	}
	payload, err := DecodeFrame(raw)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// exchangeRaw performs one HTTP exchange, returning the body on 2xx
// and an error otherwise. A 409 Conflict carries a run-fatal message.
func (w *worker) exchangeRaw(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Dist-Protocol", protocolVersion)
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFramePayload+1024))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusConflict {
		return nil, errFatal{msg: strings.TrimSpace(string(raw))}
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("dist: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(raw)))
	}
	return raw, nil
}
