package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The coordinator's resumable journal: a directory holding one
// plan-identity file plus one framed spool file per completed task.
// Every result is spooled (write-to-temp, rename) before the task is
// marked done, so at any kill point the directory is a consistent
// prefix of the truth: a restarted coordinator re-loads exactly the
// completed set and finishes the remainder without re-running done
// tasks. A torn or tampered spool file fails its frame check and is
// treated as not-done — re-executed, never merged corrupt.

// journalPlanFile records the run identity a journal belongs to.
const journalPlanFile = "plan.json"

// journalMeta is the contents of plan.json.
type journalMeta struct {
	Version  string `json:"version"`
	Kind     string `json:"kind"`
	PlanHash string `json:"planHash"`
	NumTasks int    `json:"numTasks"`
}

// journal persists completed results under dir.
type journal struct {
	dir string
}

// openJournal creates (or re-opens) a journal directory for the given
// run identity. Re-opening verifies the identity: resuming a journal
// written by a different plan is an error, not a silent mis-merge.
func openJournal(dir, kind, planHash string, numTasks int) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: journal: %w", err)
	}
	meta := journalMeta{Version: protocolVersion, Kind: kind, PlanHash: planHash, NumTasks: numTasks}
	path := filepath.Join(dir, journalPlanFile)
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		b, err := json.Marshal(meta)
		if err != nil {
			return nil, err
		}
		if err := writeFileAtomic(path, b); err != nil {
			return nil, fmt.Errorf("dist: journal: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("dist: journal: %w", err)
	default:
		var got journalMeta
		if err := json.Unmarshal(raw, &got); err != nil {
			return nil, fmt.Errorf("dist: journal: corrupt %s: %w", journalPlanFile, err)
		}
		if got != meta {
			return nil, fmt.Errorf("dist: journal %s was written by a different run (have %+v, want %+v); "+
				"point -journal at a fresh directory or re-run the original plan", dir, got, meta)
		}
	}
	return &journal{dir: dir}, nil
}

// spoolName returns task id's spool file name; fixed width keeps
// directory listings in task order.
func spoolName(id int) string { return fmt.Sprintf("r%08d.frame", id) }

// put spools one completed result durably (temp + rename).
func (j *journal) put(id int, payload []byte) error {
	if err := writeFileAtomic(filepath.Join(j.dir, spoolName(id)), EncodeFrame(payload)); err != nil {
		return fmt.Errorf("dist: journal: %w", err)
	}
	return nil
}

// get loads one spooled result, reporting ok=false when the task has
// no valid spool entry (missing or failing its frame check).
func (j *journal) get(id int) (payload []byte, ok bool) {
	b, err := os.ReadFile(filepath.Join(j.dir, spoolName(id)))
	if err != nil {
		return nil, false
	}
	payload, err = DecodeFrame(b)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// writeFileAtomic writes b to path via a temp file and rename, so a
// kill mid-write never leaves a half-written file under the final name.
func writeFileAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
