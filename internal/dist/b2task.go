package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"filemig/internal/core"
	"filemig/internal/trace"
)

// The KindB2Shard glue: one b2 trace file's block-indexed analysis
// distributed shard by shard. The coordinator cuts contiguous block
// ranges from the trailing index (core.B2TaskRanges) without decoding
// anything; workers open the same file, decode only their range, and
// return a journaled s1 snapshot; the coordinator folds snapshots in
// range order (core.SnapshotMerger), which reproduces the
// single-process analysis byte-for-byte. Workers must see the trace at
// the same path — same host, or a shared filesystem.

// b2Plan is the KindB2Shard plan blob.
type b2Plan struct {
	// Path is the b2 trace file as workers will open it.
	Path string `json:"path"`
	// Size, Blocks and Records cross-check that a worker opened the same
	// file the coordinator indexed.
	Size    int64 `json:"size"`
	Blocks  int   `json:"blocks"`
	Records int64 `json:"records"`
	// DedupWindow and Shard configure each shard's analysis.
	DedupWindow time.Duration `json:"dedupWindow"`
	Shard       time.Duration `json:"shard,omitempty"`
}

// b2Task is one task payload: the block range [Lo, Hi).
type b2Task struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// B2ShardConfig describes one distributed b2 analysis.
type B2ShardConfig struct {
	// Path is the b2 trace file, as workers will open it.
	Path string
	// File is the coordinator's open handle on Path, used only for index
	// arithmetic — the coordinator never decodes a block.
	File *trace.B2File
	// Size is Path's size in bytes.
	Size int64
	// DedupWindow is the per-file dedup window (callers pass
	// workload.DedupWindow for the paper's analysis).
	DedupWindow time.Duration
	// ShardDuration is the task cut width; zero means the core default.
	ShardDuration time.Duration
}

// B2ShardCoordinator distributes one b2 file's analysis over workers.
type B2ShardCoordinator struct {
	c      *Coordinator
	merger *core.SnapshotMerger
}

// NewB2ShardCoordinator builds a coordinator serving cfg's block-range
// shards.
func NewB2ShardCoordinator(cfg B2ShardConfig, opts Options) (*B2ShardCoordinator, error) {
	ranges := core.B2TaskRanges(cfg.File, cfg.ShardDuration)
	if len(ranges) == 0 {
		return nil, fmt.Errorf("dist: %s holds no blocks to analyse", cfg.Path)
	}
	blob, err := json.Marshal(b2Plan{
		Path:        cfg.Path,
		Size:        cfg.Size,
		Blocks:      cfg.File.NumBlocks(),
		Records:     cfg.File.NumRecords(),
		DedupWindow: cfg.DedupWindow,
		Shard:       cfg.ShardDuration,
	})
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, len(ranges))
	for i, r := range ranges {
		if payloads[i], err = json.Marshal(b2Task{Lo: r[0], Hi: r[1]}); err != nil {
			return nil, err
		}
	}
	b := &B2ShardCoordinator{merger: core.NewSnapshotMerger()}
	b.c, err = NewCoordinator(Config{
		Kind:     KindB2Shard,
		PlanHash: fmt.Sprintf("%x", sha256.Sum256(blob)),
		Plan:     blob,
		Payloads: payloads,
		Handle: func(id int, result []byte) error {
			return b.merger.Add(bytes.NewReader(result))
		},
	}, opts)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Resumed reports how many shards were restored from the journal.
func (b *B2ShardCoordinator) Resumed() int { return b.c.Resumed() }

// Serve runs the coordinator until the analysis completes, the run
// fails, or ctx is cancelled (see Coordinator.Serve).
func (b *B2ShardCoordinator) Serve(ctx context.Context, ln net.Listener) error {
	return b.c.Serve(ctx, ln)
}

// Analysis returns the merged analysis — state-identical to one process
// analysing the whole file. Call only after Serve returns nil.
func (b *B2ShardCoordinator) Analysis() (*core.Analysis, error) {
	return b.merger.Analysis()
}

// newB2Exec builds the worker-side KindB2Shard executor: open the
// plan's file per task, decode only the task's blocks, and return the
// journaled snapshot. Opening per task keeps the executor stateless —
// no handle outlives a task — at the cost of re-reading the small
// trailing index.
func newB2Exec(blob []byte) (ExecFunc, error) {
	var p b2Plan
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("dist: bad b2 plan: %w", err)
	}
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		var t b2Task
		if err := json.Unmarshal(payload, &t); err != nil {
			return nil, fmt.Errorf("dist: bad b2 task payload: %w", err)
		}
		f, err := os.Open(p.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if st.Size() != p.Size {
			return nil, fmt.Errorf("dist: %s is %d bytes here, %d at the coordinator — workers must see the same trace file",
				p.Path, st.Size(), p.Size)
		}
		bf, err := trace.OpenB2File(f, st.Size())
		if err != nil {
			return nil, err
		}
		if bf.NumBlocks() != p.Blocks || bf.NumRecords() != p.Records {
			return nil, fmt.Errorf("dist: %s indexes %d blocks/%d records here, %d/%d at the coordinator",
				p.Path, bf.NumBlocks(), bf.NumRecords(), p.Blocks, p.Records)
		}
		var opts core.B2Options
		opts.Options = core.Options{DedupWindow: p.DedupWindow, Journal: true}
		opts.ShardDuration = p.Shard
		opts.Workers = 1
		a, err := core.AccumulateB2Blocks(ctx, opts, bf, t.Lo, t.Hi)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}, nil
}
