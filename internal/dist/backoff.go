package dist

import (
	"math/rand"
	"time"
)

// backoff returns the re-queue delay before attempt n (1-based: the
// delay after the n-th failed attempt): base doubled per attempt,
// capped, then jittered into [d/2, d) so synchronized failures spread
// out instead of thundering back together. rng is a seeded generator
// owned by the caller; jitter shapes wall-clock behavior only, never
// results.
func backoff(rng *rand.Rand, base, cap time.Duration, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)))
}
