package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"time"
)

// Config describes one coordinated run: a fixed ordered task list, the
// plan blob workers execute it from, and the in-order result consumer.
type Config struct {
	// Kind selects the worker-side executor (KindGrid, KindB2Shard).
	Kind string
	// PlanHash identifies the plan; workers echo it back implicitly by
	// fetching the plan blob, and journals refuse to resume under a
	// different hash.
	PlanHash string
	// Plan is the kind-specific plan blob served to workers.
	Plan []byte
	// Payloads holds one task payload per task ID.
	Payloads [][]byte
	// Handle consumes results in strict task order (0, 1, 2, ...). It
	// is never called twice for one ID, and a Handle error fails the
	// run. Calls are serialized.
	Handle func(id int, result []byte) error
}

// taskState tracks one task through the claim/retry/complete life
// cycle. All fields are guarded by the coordinator mutex.
type taskState struct {
	done     bool
	result   []byte              // buffered until delivered in order
	attempts int                 // failed or expired leases so far
	readyAt  time.Time           // pending: claimable at/after this time
	leases   map[int64]time.Time // active lease ID -> expiry deadline
	specAt   time.Time           // leased: speculative duplicate allowed after this
	lastErr  string
}

// Coordinator owns a run's task queue and serves the worker protocol.
// Create with NewCoordinator, drive with Serve.
type Coordinator struct {
	cfg  Config
	opts Options
	jr   *journal

	mu       sync.Mutex
	tasks    []taskState
	frontier int // next task ID to deliver to Handle
	leaseSeq int64
	rng      *rand.Rand
	fatal    error
	done     chan struct{} // closed on completion or fatal error
	resumed  int           // tasks loaded done from the journal
}

// NewCoordinator validates the config, opens (and replays) the journal
// if one is configured, and returns a coordinator ready to Serve.
func NewCoordinator(cfg Config, opts Options) (*Coordinator, error) {
	if len(cfg.Payloads) == 0 {
		return nil, errors.New("dist: a run needs at least one task")
	}
	if cfg.Handle == nil {
		return nil, errors.New("dist: Config.Handle is required")
	}
	opts = opts.withDefaults()
	if opts.Now == nil {
		return nil, errors.New("dist: Options.Now is required on coordinators (pass host.Now at the boundary)")
	}
	c := &Coordinator{
		cfg:   cfg,
		opts:  opts,
		tasks: make([]taskState, len(cfg.Payloads)),
		rng:   rand.New(rand.NewSource(opts.Seed)),
		done:  make(chan struct{}),
	}
	if opts.JournalDir != "" {
		jr, err := openJournal(opts.JournalDir, cfg.Kind, cfg.PlanHash, len(cfg.Payloads))
		if err != nil {
			return nil, err
		}
		c.jr = jr
		for id := range c.tasks {
			if payload, ok := jr.get(id); ok {
				c.tasks[id].done = true
				c.tasks[id].result = payload
				c.resumed++
			}
		}
		if err := c.deliverLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Resumed reports how many tasks were restored already-complete from
// the journal — zero on a fresh run.
func (c *Coordinator) Resumed() int { return c.resumed }

// Serve runs the coordinator protocol on ln until every task has been
// delivered, the run fails, or ctx is cancelled. On cancellation the
// HTTP server drains gracefully and the journal (if any) is already
// durable, so a new coordinator over the same journal directory
// resumes without re-running completed tasks; the returned error is
// ctx's.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathPlan, c.handlePlan)
	mux.HandleFunc("POST "+pathClaim, c.handleClaim)
	mux.HandleFunc("POST "+pathResult, c.handleResult)
	mux.HandleFunc("POST "+pathFail, c.handleFail)
	srv := &http.Server{Handler: mux}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Lease-expiry backstop: expiry is also checked on every request,
	// but with zero traffic (every worker dead) the ticker still
	// re-queues, so a later worker finds work immediately.
	tick := time.NewTicker(expiryInterval(c.opts.Lease))
	defer tick.Stop()

	var runErr error
loop:
	for {
		select {
		case <-c.done:
			c.mu.Lock()
			runErr = c.fatal
			c.mu.Unlock()
			if runErr == nil && c.opts.Linger > 0 {
				// Stay up briefly answering "done" so idle workers exit
				// cleanly instead of dialing a dead address.
				t := time.NewTimer(c.opts.Linger)
				select {
				case <-t.C:
				case <-ctx.Done():
				}
				t.Stop()
			}
			break loop
		case <-ctx.Done():
			runErr = ctx.Err()
			break loop
		case err := <-serveErr:
			runErr = fmt.Errorf("dist: coordinator server: %w", err)
			break loop
		case <-tick.C:
			c.mu.Lock()
			c.expireLocked(c.opts.Now())
			c.mu.Unlock()
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	return runErr
}

// expiryInterval picks the lease-expiry ticker period: a quarter lease,
// clamped to [5 ms, 1 s].
func expiryInterval(lease time.Duration) time.Duration {
	d := lease / 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// handlePlan serves the framed run description.
func (c *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	info := planInfo{Kind: c.cfg.Kind, PlanHash: c.cfg.PlanHash, NumTasks: len(c.cfg.Payloads), Plan: c.cfg.Plan}
	b, err := json.Marshal(info)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(EncodeFrame(b))
}

// handleClaim hands out the lowest eligible task in the merge window,
// or tells the worker to wait, exit (done), or abort (fatal).
func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	now := c.opts.Now()
	c.mu.Lock()
	c.expireLocked(now)
	msg := c.claimLocked(now)
	c.mu.Unlock()
	b, err := json.Marshal(msg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(EncodeFrame(b))
}

// claimLocked implements the claim policy: within the bounded window
// past the delivery frontier, prefer the lowest pending task whose
// backoff has elapsed; with none pending, hand out a speculative
// duplicate lease on the lowest straggler. Speculation is safe because
// results are byte-identical — the first result wins and the rest are
// discarded as duplicates.
func (c *Coordinator) claimLocked(now time.Time) claimMsg {
	if c.fatal != nil {
		return claimMsg{Fatal: c.fatal.Error()}
	}
	if c.frontier >= len(c.tasks) {
		return claimMsg{Done: true}
	}
	hi := min(c.frontier+c.opts.Window, len(c.tasks))
	grant := func(id int) claimMsg {
		t := &c.tasks[id]
		c.leaseSeq++
		if t.leases == nil {
			t.leases = map[int64]time.Time{}
		}
		t.leases[c.leaseSeq] = now.Add(c.opts.Lease)
		t.specAt = now.Add(c.opts.SpeculateAfter)
		return claimMsg{ID: id, Lease: c.leaseSeq, Payload: c.cfg.Payloads[id], Claimed: true}
	}
	for id := c.frontier; id < hi; id++ {
		t := &c.tasks[id]
		if !t.done && len(t.leases) == 0 && !t.readyAt.After(now) {
			return grant(id)
		}
	}
	if c.opts.SpeculateAfter > 0 {
		for id := c.frontier; id < hi; id++ {
			t := &c.tasks[id]
			if !t.done && len(t.leases) == 1 && !t.specAt.After(now) {
				return grant(id)
			}
		}
	}
	return claimMsg{WaitMillis: waitHint}
}

// waitHint is the poll-again delay (milliseconds) suggested to an idle
// worker; workers jitter around it.
const waitHint = 100

// expireLocked re-queues tasks whose every lease has expired: the
// worker holding the lease is presumed dead, the attempt is charged,
// and the task becomes claimable again after a jittered exponential
// backoff. A task exhausting MaxAttempts fails the whole run.
func (c *Coordinator) expireLocked(now time.Time) {
	for id := c.frontier; id < len(c.tasks) && id < c.frontier+c.opts.Window; id++ {
		t := &c.tasks[id]
		if t.done || len(t.leases) == 0 {
			continue
		}
		var lids []int64
		for lid := range t.leases {
			lids = append(lids, lid)
		}
		slices.Sort(lids)
		for _, lid := range lids {
			if t.leases[lid].After(now) {
				continue
			}
			delete(t.leases, lid)
			c.chargeAttemptLocked(id, now, "lease expired (worker presumed dead)")
		}
	}
}

// chargeAttemptLocked records one failed or expired attempt on a task
// and either re-queues it with backoff or fails the run.
func (c *Coordinator) chargeAttemptLocked(id int, now time.Time, why string) {
	t := &c.tasks[id]
	if t.done {
		return
	}
	t.attempts++
	t.lastErr = why
	if t.attempts >= c.opts.MaxAttempts {
		c.failLocked(fmt.Errorf("dist: task %d failed after %d attempts: %s", id, t.attempts, why))
		return
	}
	if len(t.leases) == 0 {
		t.readyAt = now.Add(backoff(c.rng, c.opts.BackoffBase, c.opts.BackoffCap, t.attempts))
	}
}

// failLocked records the run-level failure and wakes Serve.
func (c *Coordinator) failLocked(err error) {
	if c.fatal != nil {
		return
	}
	c.fatal = err
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// handleResult accepts one task's result: the first result for a task
// wins (every run's results are byte-identical, so duplicates — from
// speculation, retries, or a duplicated delivery — are simply
// discarded), the result is spooled to the journal before the task is
// marked done, and completed results are handed to Handle in strict
// task order.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || id < 0 || id >= len(c.tasks) {
		http.Error(w, "dist: bad task id", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFramePayload+1024))
	if err != nil {
		http.Error(w, "dist: short read: "+err.Error(), http.StatusBadRequest)
		return
	}
	payload, err := DecodeFrame(body)
	if err != nil {
		// A truncated or corrupt upload: reject so the worker retries.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		http.Error(w, c.fatal.Error(), http.StatusConflict)
		return
	}
	t := &c.tasks[id]
	if t.done {
		w.Write([]byte("duplicate"))
		return
	}
	if c.jr != nil {
		if err := c.jr.put(id, payload); err != nil {
			c.failLocked(err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	t.done = true
	t.result = payload
	t.leases = nil
	if err := c.deliverLocked(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write([]byte("ok"))
}

// deliverLocked advances the frontier, handing buffered results to
// Handle in task order. On completion it wakes Serve; on a Handle
// error it fails the run.
func (c *Coordinator) deliverLocked() error {
	for c.frontier < len(c.tasks) && c.tasks[c.frontier].done {
		t := &c.tasks[c.frontier]
		if err := c.cfg.Handle(c.frontier, t.result); err != nil {
			err = fmt.Errorf("dist: merging task %d: %w", c.frontier, err)
			c.failLocked(err)
			return err
		}
		t.result = nil
		c.frontier++
	}
	if c.frontier == len(c.tasks) && c.fatal == nil {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return nil
}

// handleFail releases a worker's lease after an execution error and
// charges the attempt.
func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var msg failMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if msg.ID < 0 || msg.ID >= len(c.tasks) {
		http.Error(w, "dist: bad task id", http.StatusBadRequest)
		return
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &c.tasks[msg.ID]
	if _, held := t.leases[msg.Lease]; held && !t.done {
		delete(t.leases, msg.Lease)
		c.chargeAttemptLocked(msg.ID, now, msg.Error)
	}
	w.Write([]byte("ok"))
}
