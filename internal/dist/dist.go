// Package dist is the fault-tolerant distributed fan-out layer: a
// coordinator serves a fixed, ordered list of tasks over HTTP, workers
// claim tasks under expiring leases, execute them with the repository's
// deterministic runners, and stream results back; the coordinator
// re-queues tasks from dead workers, retries failures with capped
// exponential backoff, speculatively re-dispatches stragglers (safe
// because every runner is byte-deterministic, so duplicate results are
// identical and the first one wins), and folds results in strict task
// order — turning the byte-identical merge property of experiment
// manifests and s1 snapshots from a test property into a
// fault-tolerance mechanism.
//
// Two task kinds ride on the generic layer: experiment-grid cells
// (KindGrid, driven by `migexp run -distributed` / `migexp worker`) and
// b2 block-group analysis shards (KindB2Shard, driven by `mssanalyze
// -distributed` / `mssanalyze worker`). The wire protocol, the failure
// matrix, and worked examples are documented in docs/distributed.md.
//
// This package is deliberately clock-free: the coordinator's notion of
// "now" and every jitter seed arrive through Options, resolved at the
// command boundary from internal/host — miglint's detsource analyzer
// enforces that no wall-clock read hides in here.
package dist

import (
	"fmt"
	"time"
)

// Task kinds understood by DefaultExec and the bundled coordinators.
const (
	// KindGrid tasks are experiment-grid cells: the plan blob is the
	// normalized spec JSON, each payload a cell reference, each result a
	// framed CellOutcome JSON.
	KindGrid = "expgrid/v1"
	// KindB2Shard tasks are block-group analysis shards of one b2 trace
	// file: the plan blob names the file and the calendar origin, each
	// payload a block range, each result a framed s1 snapshot.
	KindB2Shard = "b2shard/v1"
)

// Options tunes the fault-tolerance machinery on both sides of the
// protocol. The zero value of every field means "use the default"; Now
// is the exception and must be set on coordinators (cmd/* pass
// host.Now — see the package comment).
type Options struct {
	// Lease is how long a claimed task stays assigned before the
	// coordinator assumes the worker died and re-queues it. Default 15 s.
	Lease time.Duration

	// SpeculateAfter is how long a leased task may run before the
	// coordinator hands a duplicate lease to another idle worker —
	// straggler hedging with first-result-wins dedup. Zero means twice
	// the lease; negative disables speculation.
	SpeculateAfter time.Duration

	// MaxAttempts bounds how many times one task may be leased (initial
	// attempt included) before the run fails. Default 6.
	MaxAttempts int

	// BackoffBase and BackoffCap shape the re-queue delay after a
	// failed or expired attempt: the delay doubles each attempt from
	// Base, is capped at Cap, and is jittered into [delay/2, delay).
	// Defaults 100 ms and 5 s.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Window bounds result buffering: only tasks with ID below
	// (delivered frontier + Window) are claimable, so at most Window
	// results are ever buffered awaiting in-order delivery. Default 64.
	Window int

	// JournalDir, when non-empty, persists every completed task's
	// result so an interrupted coordinator can be restarted with the
	// same directory and finish the run without re-executing done
	// tasks. The directory is created if missing.
	JournalDir string

	// Now supplies the coordinator's clock; required there (workers do
	// not need it). cmd/* pass internal/host.Now.
	Now func() time.Time

	// Seed seeds the jitter RNG (backoff spreading). Execution-side
	// only — results never depend on it.
	Seed int64

	// Linger keeps the coordinator answering "done" to late workers for
	// this long after the last result lands, so idle workers exit
	// cleanly instead of dialing a dead address. Default 1 s; negative
	// disables lingering.
	Linger time.Duration
}

// withDefaults resolves zero fields to the documented defaults.
func (o Options) withDefaults() Options {
	if o.Lease <= 0 {
		o.Lease = 15 * time.Second
	}
	if o.SpeculateAfter == 0 {
		o.SpeculateAfter = 2 * o.Lease
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.Linger == 0 {
		o.Linger = time.Second
	}
	return o
}

// planInfo is the coordinator's run description, served framed at
// /v1/plan so every worker can verify it executes the same plan the
// coordinator is merging.
type planInfo struct {
	// Kind selects the worker-side executor.
	Kind string `json:"kind"`
	// PlanHash identifies the plan; a journal written under one hash
	// refuses to resume under another.
	PlanHash string `json:"planHash"`
	// NumTasks is the fixed task count.
	NumTasks int `json:"numTasks"`
	// Plan is the kind-specific plan blob (base64 in JSON).
	Plan []byte `json:"plan"`
}

// claimMsg is one /v1/claim response, framed. Exactly one of Done,
// Fatal, WaitMillis, or Task is meaningful.
type claimMsg struct {
	// Done reports the run is complete; the worker should exit.
	Done bool `json:"done,omitempty"`
	// Fatal carries a run-level failure; the worker should exit with it.
	Fatal string `json:"fatal,omitempty"`
	// WaitMillis asks the worker to poll again after roughly this long.
	WaitMillis int64 `json:"waitMillis,omitempty"`
	// ID, Lease and Payload describe the claimed task.
	ID      int    `json:"id"`
	Lease   int64  `json:"lease"`
	Payload []byte `json:"payload,omitempty"`
	// Claimed marks a real task grant (ID 0 is a valid task).
	Claimed bool `json:"claimed,omitempty"`
}

// failMsg is one /v1/fail request: a worker reporting that executing a
// task errored, releasing its lease for retry.
type failMsg struct {
	ID    int    `json:"id"`
	Lease int64  `json:"lease"`
	Error string `json:"error"`
}

// protocolVersion guards worker/coordinator pairing; bump on any wire
// change.
const protocolVersion = "1"

// pathPlan, pathClaim, pathResult and pathFail are the protocol
// endpoints.
const (
	pathPlan   = "/v1/plan"
	pathClaim  = "/v1/claim"
	pathResult = "/v1/result"
	pathFail   = "/v1/fail"
)

// errFatal wraps a run-level failure so workers can distinguish "the
// run is broken, exit" from transient transport trouble.
type errFatal struct{ msg string }

func (e errFatal) Error() string { return fmt.Sprintf("dist: coordinator reported fatal: %s", e.msg) }
