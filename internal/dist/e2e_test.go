package dist

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"filemig/internal/core"
	"filemig/internal/dist/chaos"
	"filemig/internal/experiment"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

// quickSpec is the committed-golden grid: small enough for CI, big
// enough to exercise every axis (two scenarios, stateless/stateful/
// offline policies, three capacities — 18 cells).
func quickSpec() *experiment.Spec {
	return &experiment.Spec{
		Name:       "quickgrid",
		Scenarios:  []string{"paper-1993", "checkpoint-restart"},
		Scale:      0.002,
		Seed:       5,
		Days:       45,
		Policies:   []string{"stp:1.4", "random:3", "opt"},
		Capacities: []float64{0.01, 0.02, 0.10},
	}
}

func quickPlan(t *testing.T) *experiment.Plan {
	t.Helper()
	plan, err := experiment.BuildPlan(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// localManifestJSON runs the quickgrid locally — the byte truth the
// distributed paths must reproduce.
func localManifestJSON(t *testing.T) []byte {
	t.Helper()
	m, err := experiment.RunPlan(context.Background(), quickPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// serveGrid starts a grid coordinator on a loopback listener and
// returns its base URL plus the Serve result channel.
func serveGrid(t *testing.T, ctx context.Context, g *GridCoordinator) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- g.Serve(ctx, ln) }()
	return "http://" + ln.Addr().String(), served
}

// startWorkers launches n workers against base and returns a wait
// function that collects their errors.
func startWorkers(ctx context.Context, base string, n int, opts func(i int) WorkerOptions) func() []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(ctx, base, opts(i))
		}(i)
	}
	return func() []error { wg.Wait(); return errs }
}

// TestChaosGridReproducesGolden is the headline fault-injection test:
// three workers behind transports injecting drops, delays, duplicates,
// truncations, and corruption on well over 30% of exchanges must still
// assemble the committed golden manifest byte for byte.
func TestChaosGridReproducesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full distributed grid under fault injection")
	}
	local := localManifestJSON(t)
	goldenPath := filepath.Join("testdata", "quickgrid_manifest.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, local, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/dist -run TestChaosGrid -update` to create it)", err)
	}
	if !bytes.Equal(local, golden) {
		t.Fatal("local run no longer matches the committed golden manifest; " +
			"if the change is intentional, regenerate with -update")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	g, err := NewGridCoordinator(quickPlan(t), Options{
		Lease:          1500 * time.Millisecond,
		SpeculateAfter: 400 * time.Millisecond,
		MaxAttempts:    12,
		BackoffBase:    10 * time.Millisecond,
		BackoffCap:     200 * time.Millisecond,
		Window:         8,
		Now:            time.Now,
		Seed:           42,
		Linger:         300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, served := serveGrid(t, ctx, g)

	transports := make([]*chaos.Transport, 3)
	wait := startWorkers(ctx, base, len(transports), func(i int) WorkerOptions {
		transports[i] = chaos.New(nil, chaos.Options{
			Seed:         int64(1000 + i),
			DropRequest:  0.15,
			DropResponse: 0.10,
			Duplicate:    0.12,
			Truncate:     0.10,
			Corrupt:      0.10,
			DelayProb:    0.20,
			MaxDelay:     20 * time.Millisecond,
		})
		return WorkerOptions{
			Client: &http.Client{Transport: transports[i], Timeout: 30 * time.Second},
			Seed:   int64(i + 1),
		}
	})

	if err := <-served; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, err := range wait() {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	var injected, total int64
	for _, tr := range transports {
		i, n := tr.Counts()
		injected, total = injected+i, total+n
	}
	t.Logf("chaos: %d of %d exchanges had faults injected (%.0f%%)", injected, total, 100*float64(injected)/float64(total))
	if total == 0 || injected*10 < total*3 {
		t.Fatalf("fault injection too weak to prove anything: %d/%d < 30%%", injected, total)
	}

	m, err := g.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Error("distributed manifest under fault injection differs from the committed golden")
	}
}

// TestCoordinatorCrashResume kills a journaled coordinator mid-grid and
// proves a restart over the same journal finishes the run without
// re-executing completed cells and still emits the local manifest byte
// for byte.
func TestCoordinatorCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full distributed grid, twice")
	}
	local := localManifestJSON(t)
	journal := t.TempDir()
	opts := Options{
		Lease:       5 * time.Second,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
		JournalDir:  journal,
		Now:         time.Now,
		Seed:        7,
		Linger:      200 * time.Millisecond,
	}

	// Phase 1: run until at least two cells are spooled, then kill the
	// coordinator (context cancel = SIGINT's graceful drain).
	g1, err := NewGridCoordinator(quickPlan(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	base1, served1 := serveGrid(t, ctx1, g1)
	wait1 := startWorkers(ctx1, base1, 2, func(i int) WorkerOptions {
		return WorkerOptions{Seed: int64(i + 1)}
	})
	deadline := time.Now().Add(time.Minute)
	for spooled(t, journal) < 2 {
		select {
		case err := <-served1:
			// The whole grid finished before we pulled the plug — rare but
			// legal; resume below then just replays a complete journal.
			if err != nil {
				t.Fatalf("phase 1 coordinator: %v", err)
			}
			served1 <- nil
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no cells spooled within a minute")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel1()
	<-served1
	wait1()

	// Phase 2: a fresh coordinator over the same journal resumes the
	// completed prefix and finishes the rest.
	g2, err := NewGridCoordinator(quickPlan(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Resumed() == 0 {
		t.Fatal("restart resumed no cells despite a spooled journal")
	}
	t.Logf("resumed %d of 18 cells from the journal", g2.Resumed())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, served2 := serveGrid(t, ctx2, g2)
	wait2 := startWorkers(ctx2, base2, 2, func(i int) WorkerOptions {
		return WorkerOptions{Seed: int64(i + 100)}
	})
	if err := <-served2; err != nil {
		t.Fatalf("phase 2 coordinator: %v", err)
	}
	for i, err := range wait2() {
		if err != nil {
			t.Errorf("phase 2 worker %d: %v", i, err)
		}
	}
	m, err := g2.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, local) {
		t.Error("resumed manifest differs from the local run")
	}
}

// spooled counts valid journal spool files.
func spooled(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "r") && strings.HasSuffix(e.Name(), ".frame") {
			n++
		}
	}
	return n
}

// TestB2ShardDistributedMatchesLocal distributes one b2 file's
// block-group shards over two workers and requires the merged analysis
// snapshot to be byte-identical to a single-process journaled
// accumulation of the same file.
func TestB2ShardDistributedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and distributes a b2 trace")
	}
	cfg, err := workload.ScenarioConfig("paper-1993", 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Days = 60
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	w := trace.NewB2WriterEpochBlock(&enc, res.Records[0].Start, 256)
	for i := range res.Records {
		if err := w.Write(&res.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.b2")
	if err := os.WriteFile(path, enc.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := trace.OpenB2File(bytes.NewReader(enc.Bytes()), int64(enc.Len()))
	if err != nil {
		t.Fatal(err)
	}

	shard := 10 * 24 * time.Hour
	localA, err := core.AccumulateB2(context.Background(), core.B2Options{StreamOptions: core.StreamOptions{
		Options:       core.Options{DedupWindow: workload.DedupWindow, Journal: true},
		Workers:       2,
		ShardDuration: shard,
	}}, bf)
	if err != nil {
		t.Fatal(err)
	}
	var localSnap bytes.Buffer
	if err := localA.WriteSnapshot(&localSnap); err != nil {
		t.Fatal(err)
	}

	b, err := NewB2ShardCoordinator(B2ShardConfig{
		Path:          path,
		File:          bf,
		Size:          int64(enc.Len()),
		DedupWindow:   workload.DedupWindow,
		ShardDuration: shard,
	}, Options{Now: time.Now, Seed: 3, Linger: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- b.Serve(ctx, ln) }()
	wait := startWorkers(ctx, "http://"+ln.Addr().String(), 2, func(i int) WorkerOptions {
		return WorkerOptions{Seed: int64(i + 1)}
	})
	if err := <-served; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, err := range wait() {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	distA, err := b.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	var distSnap bytes.Buffer
	if err := distA.WriteSnapshot(&distSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(distSnap.Bytes(), localSnap.Bytes()) {
		t.Error("distributed b2 analysis snapshot differs from the single-process accumulation")
	}
}

// TestWorkerFaultPathsEndToEnd drives a live coordinator/worker pair
// through the execution-failure and lease-expiry paths: one task fails
// its first attempt, one stalls past its lease, and the run still
// completes with every result delivered exactly once, in order.
func TestWorkerFaultPathsEndToEnd(t *testing.T) {
	payloads := [][]byte{[]byte("ok-0"), []byte("fail-once"), []byte("stall-once"), []byte("ok-3")}
	var delivered []string
	c, err := NewCoordinator(Config{
		Kind: "unit/v1", PlanHash: "e2e", Plan: []byte("{}"),
		Payloads: payloads,
		Handle: func(id int, result []byte) error {
			delivered = append(delivered, fmt.Sprintf("%d=%s", id, result))
			return nil
		},
	}, Options{
		Lease:       250 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  50 * time.Millisecond,
		Now:         time.Now,
		Linger:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- c.Serve(ctx, ln) }()

	var failed, stalled atomic.Bool
	exec := func(kind string, plan []byte) (ExecFunc, error) {
		if kind != "unit/v1" {
			return nil, fmt.Errorf("unexpected kind %q", kind)
		}
		return func(ctx context.Context, payload []byte) ([]byte, error) {
			switch {
			case string(payload) == "fail-once" && failed.CompareAndSwap(false, true):
				return nil, fmt.Errorf("injected execution failure")
			case string(payload) == "stall-once" && stalled.CompareAndSwap(false, true):
				// Outlive the lease, then fail: the coordinator must already
				// have presumed this worker dead and re-queued the task.
				time.Sleep(600 * time.Millisecond)
				return nil, fmt.Errorf("injected straggler death")
			}
			return append([]byte("done:"), payload...), nil
		}, nil
	}
	wait := startWorkers(ctx, "http://"+ln.Addr().String(), 1, func(i int) WorkerOptions {
		return WorkerOptions{Seed: 9, NewExec: exec, Poll: 30 * time.Millisecond}
	})
	if err := <-served; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := wait()[0]; err != nil {
		t.Fatalf("worker: %v", err)
	}
	want := "[0=done:ok-0 1=done:fail-once 2=done:stall-once 3=done:ok-3]"
	if got := fmt.Sprint(delivered); got != want {
		t.Fatalf("delivered %s, want %s", got, want)
	}
	if !failed.Load() || !stalled.Load() {
		t.Fatal("fault hooks never fired")
	}
}
