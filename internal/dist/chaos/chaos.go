// Package chaos is a fault-injecting http.RoundTripper for exercising
// the dist layer's recovery machinery. Wrapped around a worker's HTTP
// client it drops requests before they are sent, drops responses after
// the server has processed them (the nastier half: the work happened,
// the worker doesn't know), delays exchanges, duplicates deliveries,
// and truncates or corrupts response bodies — every failure mode the
// coordinator/worker protocol claims to survive. Faults fire from a
// seeded RNG, so a failing chaos test replays exactly; injection shapes
// wall-clock behavior and transport traffic only, never the bytes of a
// completed run's results.
package chaos

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjected is the transport error returned for injected drops, so
// tests (and log readers) can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Options sets each fault's independent firing probability (0 to 1).
type Options struct {
	// Seed seeds the fault RNG.
	Seed int64
	// DropRequest is the probability a request is never sent.
	DropRequest float64
	// DropResponse is the probability a delivered request's response is
	// discarded and replaced with an error — the server did the work,
	// the client sees a failure.
	DropResponse float64
	// Duplicate is the probability a request is delivered twice before
	// its response is returned.
	Duplicate float64
	// Truncate is the probability a response body is cut short.
	Truncate float64
	// Corrupt is the probability one response body byte is flipped.
	Corrupt float64
	// DelayProb is the probability an exchange is delayed; MaxDelay
	// bounds the injected delay.
	DelayProb float64
	MaxDelay  time.Duration
}

// Transport injects faults around a base RoundTripper.
type Transport struct {
	base http.RoundTripper
	opts Options

	mu       sync.Mutex
	rng      *rand.Rand
	injected int64
	total    int64
}

// New wraps base (nil means http.DefaultTransport) with fault
// injection.
func New(base http.RoundTripper, opts Options) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Counts reports how many exchanges had at least one fault injected,
// out of how many total — tests assert the injected share.
func (t *Transport) Counts() (injected, total int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected, t.total
}

// plan is one exchange's drawn faults.
type plan struct {
	dropReq  bool
	dropResp bool
	dup      bool
	trunc    bool
	corrupt  bool
	delay    time.Duration
}

// any reports whether the plan injects anything.
func (p plan) any() bool {
	return p.dropReq || p.dropResp || p.dup || p.trunc || p.corrupt || p.delay > 0
}

// draw rolls one exchange's faults under the lock.
func (t *Transport) draw() plan {
	t.mu.Lock()
	defer t.mu.Unlock()
	var p plan
	o := &t.opts
	p.dropReq = t.rng.Float64() < o.DropRequest
	p.dropResp = t.rng.Float64() < o.DropResponse
	p.dup = t.rng.Float64() < o.Duplicate
	p.trunc = t.rng.Float64() < o.Truncate
	p.corrupt = t.rng.Float64() < o.Corrupt
	if o.MaxDelay > 0 && t.rng.Float64() < o.DelayProb {
		p.delay = time.Duration(t.rng.Int63n(int64(o.MaxDelay))) + 1
	}
	t.total++
	if p.any() {
		t.injected++
	}
	return p
}

// RoundTrip delivers one exchange through the drawn faults.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.draw()

	// Buffer the body so the request can be replayed for duplication.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	clone := func() *http.Request {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return r
	}

	if p.delay > 0 {
		timer := time.NewTimer(p.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if p.dropReq {
		return nil, ErrInjected
	}
	if p.dup {
		// First delivery: the server processes it; the response is
		// discarded, so the client-visible exchange is the second copy.
		if resp, err := t.base.RoundTrip(clone()); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := t.base.RoundTrip(clone())
	if err != nil {
		return nil, err
	}
	if p.dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrInjected
	}
	if p.trunc || p.corrupt {
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		if p.trunc && len(b) > 0 {
			b = b[:t.rng.Intn(len(b))]
		}
		if p.corrupt && len(b) > 0 {
			b[t.rng.Intn(len(b))] ^= 0x40
		}
		t.mu.Unlock()
		resp.Body = io.NopCloser(bytes.NewReader(b))
		resp.ContentLength = int64(len(b))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}
