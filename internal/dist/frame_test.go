package dist

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xa5}, 1<<16)} {
		enc := EncodeFrame(payload)
		got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed %d-byte payload", len(payload))
		}
	}
}

// TestFrameRejectsDamage flips, truncates, and extends an encoded frame
// and requires every mutation to fail the decode — the property the
// whole retry machinery leans on.
func TestFrameRejectsDamage(t *testing.T) {
	enc := EncodeFrame([]byte("the quick brown fox"))
	for i := range enc {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x40
		if _, err := DecodeFrame(bad); err == nil {
			t.Errorf("bit flip at byte %d decoded cleanly", i)
		} else if !errors.Is(err, ErrFrame) {
			t.Errorf("bit flip at byte %d: error %v does not wrap ErrFrame", i, err)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeFrame(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	if _, err := DecodeFrame(append(bytes.Clone(enc), 0)); err == nil {
		t.Error("trailing byte decoded cleanly")
	}
}

// FuzzDistFrame fuzzes both directions: arbitrary bytes must never
// panic the decoder, and any input that does decode must re-encode to
// a frame carrying the same payload.
func FuzzDistFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(frameMagic))
	f.Add(EncodeFrame(nil))
	f.Add(EncodeFrame([]byte("seed payload")))
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := DecodeFrame(b)
		if err != nil {
			return
		}
		back, err := DecodeFrame(EncodeFrame(payload))
		if err != nil {
			t.Fatalf("re-encode of decoded payload fails: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatal("re-encode changed the payload")
		}
	})
}
