package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"

	"filemig/internal/experiment"
)

// The KindGrid glue: an experiment plan's policy × capacity × source
// grid distributed cell by cell. The plan blob is the normalized spec's
// JSON (so every worker rebuilds the identical plan), each payload is a
// CellRef, and each result a CellOutcome; the coordinator folds
// delivered outcomes back into the manifest RunPlan would have
// produced, byte for byte.

// GridCoordinator distributes one experiment plan's grid over workers.
type GridCoordinator struct {
	c        *Coordinator
	plan     *experiment.Plan
	outcomes []experiment.CellOutcome
}

// NewGridCoordinator builds a coordinator serving plan's cells.
func NewGridCoordinator(plan *experiment.Plan, opts Options) (*GridCoordinator, error) {
	hash, err := plan.Hash()
	if err != nil {
		return nil, err
	}
	spec := plan.Spec
	spec.Workers = 0 // execution knob: keep the served plan byte-stable
	blob, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	refs := plan.CellRefs()
	payloads := make([][]byte, len(refs))
	for i, r := range refs {
		if payloads[i], err = json.Marshal(r); err != nil {
			return nil, err
		}
	}
	g := &GridCoordinator{plan: plan, outcomes: make([]experiment.CellOutcome, 0, len(refs))}
	g.c, err = NewCoordinator(Config{
		Kind:     KindGrid,
		PlanHash: hash,
		Plan:     blob,
		Payloads: payloads,
		Handle:   g.handle,
	}, opts)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// handle folds one delivered cell, verifying the worker answered the
// task it was asked.
func (g *GridCoordinator) handle(id int, result []byte) error {
	var out experiment.CellOutcome
	if err := json.Unmarshal(result, &out); err != nil {
		return fmt.Errorf("bad cell outcome: %w", err)
	}
	if got := g.plan.CellID(out.Ref); got != id {
		return fmt.Errorf("task %d answered with %v (task %d)", id, out.Ref, got)
	}
	g.outcomes = append(g.outcomes, out)
	return nil
}

// Resumed reports how many cells were restored from the journal.
func (g *GridCoordinator) Resumed() int { return g.c.Resumed() }

// Serve runs the coordinator until the grid completes, the run fails,
// or ctx is cancelled (see Coordinator.Serve).
func (g *GridCoordinator) Serve(ctx context.Context, ln net.Listener) error {
	return g.c.Serve(ctx, ln)
}

// Manifest assembles the completed grid. Call only after Serve returns
// nil.
func (g *GridCoordinator) Manifest() (*experiment.Manifest, error) {
	return experiment.AssembleManifest(g.plan, g.outcomes)
}

// newGridExec builds the worker-side KindGrid executor: rebuild the
// plan from the served spec and answer each CellRef with its
// CellOutcome, caching loaded sources across cells.
func newGridExec(blob []byte) (ExecFunc, error) {
	spec, err := experiment.Parse(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	plan, err := experiment.BuildPlan(spec)
	if err != nil {
		return nil, err
	}
	runner := experiment.NewCellRunner(plan)
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		var ref experiment.CellRef
		if err := json.Unmarshal(payload, &ref); err != nil {
			return nil, fmt.Errorf("dist: bad cell payload: %w", err)
		}
		out, err := runner.RunCell(ctx, ref)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	}, nil
}
