package dist

import "fmt"

// DefaultExec resolves the bundled executor for a task kind — the
// NewExec a worker uses unless WorkerOptions overrides it (tests swap
// in instrumented executors here).
func DefaultExec(kind string, plan []byte) (ExecFunc, error) {
	switch kind {
	case KindGrid:
		return newGridExec(plan)
	case KindB2Shard:
		return newB2Exec(plan)
	}
	return nil, fmt.Errorf("dist: unknown task kind %q (this worker understands %s and %s)",
		kind, KindGrid, KindB2Shard)
}
