package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The wire framing for everything that crosses the coordinator/worker
// boundary as a body: claim responses, plan descriptions, and result
// uploads. HTTP already delimits messages, but a fault-injecting (or
// merely unreliable) transport can truncate or bit-flip a body without
// breaking the HTTP framing around it — so every body carries its own
// magic, length, and CRC-32C, and a receiver either gets exactly the
// bytes the sender framed or a decode error that triggers a retry.
// Journal spool files reuse the same frame, giving a restarted
// coordinator the same protection against torn writes.

// frameMagic opens every framed body. The trailing newline keeps a
// frame from ever parsing as one of the repository's ASCII headers.
const frameMagic = "#dist-frame f1\n"

// maxFramePayload bounds the declared payload length (1 GiB) so a
// corrupt length field cannot drive a huge allocation.
const maxFramePayload = 1 << 30

// crcTable is the Castagnoli table shared with the b2 block codec.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame is wrapped by every frame decode failure.
var ErrFrame = errors.New("dist: bad frame")

// EncodeFrame wraps payload in the dist wire frame: magic, big-endian
// u32 length, payload, big-endian CRC-32C of the payload.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, 0, len(frameMagic)+8+len(payload))
	out = append(out, frameMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return out
}

// DecodeFrame unwraps one frame, verifying magic, length, and
// checksum. The returned slice aliases b. Trailing bytes after the
// frame are an error: a frame is a whole body, not a stream element.
func DecodeFrame(b []byte) ([]byte, error) {
	payload, rest, err := NextFrame(b)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame", ErrFrame, len(rest))
	}
	return payload, nil
}

// NextFrame unwraps the first frame in b, verifying magic, length, and
// checksum, and returns the bytes after it — the stream-element sibling
// of DecodeFrame, for concatenated-frame files such as the migd
// checkpoint. Both returned slices alias b.
func NextFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < len(frameMagic)+8 {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than any frame", ErrFrame, len(b))
	}
	if string(b[:len(frameMagic)]) != frameMagic {
		return nil, nil, fmt.Errorf("%w: missing magic", ErrFrame)
	}
	body := b[len(frameMagic):]
	n := binary.BigEndian.Uint32(body[:4])
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("%w: declared payload %d exceeds %d", ErrFrame, n, maxFramePayload)
	}
	body = body[4:]
	if uint64(len(body)) < uint64(n)+4 {
		return nil, nil, fmt.Errorf("%w: truncated (want %d payload+crc bytes, have %d)", ErrFrame, n+4, len(body))
	}
	payload = body[:n]
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(body[n:n+4]); got != want {
		return nil, nil, fmt.Errorf("%w: payload crc 0x%08x != stored 0x%08x", ErrFrame, got, want)
	}
	return payload, body[n+4:], nil
}
