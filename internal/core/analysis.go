// Package core is the paper's primary contribution rebuilt as a library:
// the two-part analysis of MSS trace data. Part one characterises the
// whole system — request mix and latency (Table 3, Figure 3), daily,
// weekly, and two-year usage rhythm (Figures 4-6), inter-request intervals
// (Figure 7) and their periodicity (§5.2). Part two characterises
// individual files — reference counts under the eight-hour dedup rule
// (Figure 8), per-file interreference intervals (Figure 9), dynamic and
// static size distributions (Figures 10-11), directory sizes (Figure 12),
// and the file-store summary (Table 4). Everything is computed in one
// pass over a trace — either record by record through Analysis.Add, or
// shard by shard through AnalyzeStream, which fans time partitions of a
// trace.Stream over a worker pool and merges byte-identical results.
package core

import (
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/namespace"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

// Options configures an Analysis pass.
type Options struct {
	// Start and Days bound the calendar series (Figures 4-6). When Start
	// is zero it is taken from the first record; when Days is zero it is
	// sized from the data.
	Start time.Time
	Days  int

	// DedupWindow is §5.3's rule: at most one read and one write per file
	// per window. Zero means the paper's eight hours.
	DedupWindow time.Duration

	// Tree, when set, supplies the full MSS namespace for Table 4's
	// directory rows and Figure 12. A trace only reveals directories
	// holding referenced files; the real archive — like NCAR's — also
	// carries empty directories ("more than half of the directories had
	// only zero or one file"), which only the namespace knows about.
	// When nil, directory statistics are derived from the trace alone
	// and are conditioned on non-emptiness.
	Tree *namespace.Tree

	// Journal retains the compact per-reference journal WriteSnapshot
	// serializes (one entry per good reference: FileID, op, start,
	// size), at ~24 bytes per record of extra memory. Dedup survival
	// under the §5.3 rule does not compose from per-shard end states —
	// earlier history can flip which accesses survive arbitrarily deep
	// into a shard — so exact snapshot merging replays this journal;
	// see docs/snapshots.md.
	Journal bool
}

// Analysis accumulates one streaming pass. Create with New, feed records
// in time order with Add, then call Report. The incremental paths — the
// stream and b2 shard mergers, the s1 snapshot codec, and the migd
// daemon — use this same type under its Accumulator alias, cutting the
// trace into Partial segments and folding them (see accum.go); to keep
// all the paths byte-identical, every
// accumulator below is either an exact integer sum, a sample list whose
// queries are order-insensitive, or per-file state replayed in record
// order at merge time.
//
// The per-record hot path is flat: the op×class accumulators are fixed
// arrays indexed by (op index, device class), and per-file state lives in
// a FileID-indexed slice arena behind a trace.Interner rather than a
// string-keyed map of pointers, so a record's file lookup is one interner
// probe and the rest of Add touches only dense array slots.
type Analysis struct {
	opts  Options
	start time.Time
	days  int

	// Table 3 accumulators: [op index][device class]. Bytes are summed as
	// integers (exact, order-independent); latency as (count, µs-sum)
	// cells held inline — no per-cell allocation.
	refs    [2][device.NClasses]int64
	bytes   [2][device.NClasses]int64
	latency [2][device.NClasses]latencyAgg
	errors  int64
	total   int64

	// Figure 3: latency to first byte per device class; nil until the
	// class shows a positive startup latency.
	latCDF [device.NClasses]*stats.CDF

	// Figures 4-6: calendar series, raw bytes and request counts; the
	// GB conversions happen once, at Report time.
	hourBytes  [24][2]int64 // [hour][op]
	hourCount  [24][2]int64
	dayBytes   [7][2]int64
	weekBytes  map[int][2]int64 // week index -> [op] bytes
	hourlyReqs []float64        // request count per absolute hour (periodicity)
	hourlyRead []float64

	// Figure 7: global inter-request intervals.
	lastStart time.Time
	interCDF  *stats.CDF

	// Part two: per-file state in a FileID-indexed arena. The interner
	// assigns dense IDs in first-seen record order, which also fixes the
	// (deterministic) iteration order of every per-file report loop.
	interner *trace.Interner
	files    []fileState

	// Figure 9: interreference gaps, appended in record order as each
	// surviving access closes one — per-file gap lists are never stored.
	gapCDF *stats.CDF

	// Figure 10: dynamic size distributions, [op index].
	dynFiles [2]*stats.CDF
	dynBytes [2]*stats.WeightedCDF

	// journal is the good-reference journal behind Options.Journal:
	// exactly what snapshot merging must replay, in record order.
	journal []journalEntry
}

// journalEntry is one good reference as the snapshot journal stores it:
// the file's dense ID, the direction, the start instant, and the size.
// Everything else a snapshot needs merges by sums or CDF concatenation.
type journalEntry struct {
	start int64 // UnixNano
	size  int64
	id    trace.FileID
	write bool
}

// opIndex collapses the two transfer directions onto array indices 0
// (read) and 1 (write).
func opIndex(op trace.Op) int {
	if op == trace.Write {
		return 1
	}
	return 0
}

// classIndex maps a device class onto its accumulator slot; classes
// outside the known range share the ClassUnknown slot rather than
// corrupting memory on malformed records.
func classIndex(c device.Class) int {
	if i := int(c); i >= 0 && i < device.NClasses {
		return i
	}
	return int(device.ClassUnknown)
}

// latencyAgg accumulates a mean latency exactly: an integer microsecond
// sum and a count merge across shards without floating-point drift.
type latencyAgg struct {
	n      int64
	micros int64
}

// meanSeconds reports the mean latency in seconds.
func (l *latencyAgg) meanSeconds() float64 {
	return float64(l.micros) / float64(l.n) / 1e6
}

// fileState is one file's part-two accumulator, held inline in the
// FileID-indexed arena — fixed size, no per-file heap pointers.
type fileState struct {
	size      units.Bytes
	reads     int64
	writes    int64
	lastRead  time.Time
	lastWrite time.Time
	lastDedup time.Time // last access surviving dedup, either op
	everRead  bool
	everWrite bool
}

// New builds an Analysis.
func New(opts Options) *Analysis {
	if opts.DedupWindow == 0 {
		opts.DedupWindow = workload.DedupWindow
	}
	return &Analysis{
		opts:      opts,
		weekBytes: map[int][2]int64{},
		interCDF:  &stats.CDF{},
		interner:  trace.NewInterner(),
		gapCDF:    &stats.CDF{},
		dynFiles:  [2]*stats.CDF{{}, {}},
		dynBytes:  [2]*stats.WeightedCDF{{}, {}},
	}
}

// Add feeds one record. Records must arrive in non-decreasing start order.
func (a *Analysis) Add(r *trace.Record) {
	if !a.addShared(r) {
		return
	}
	a.addInterval(r.Start)
	a.addFileAccess(r.MSSPath, r.Op, r.Start, r.Size)
}

// addShared accumulates the whole-system statistics (Tables 3, Figures
// 3-6 and 10, the periodicity series). These merge across shards with
// plain sums and sample-list concatenation, unlike the inter-request
// intervals (addInterval) and per-file state (addFileAccess), which need
// cross-shard context at merge time. It reports whether the record is a
// good reference; error references are excluded from all further
// analysis, as in the paper (§5.1).
func (a *Analysis) addShared(r *trace.Record) bool {
	a.total++
	if a.start.IsZero() {
		a.start = a.opts.Start
		if a.start.IsZero() {
			a.start = r.Start.Truncate(24 * time.Hour)
		}
	}
	if !r.OK() {
		a.errors++
		return false
	}
	opIdx, cls := opIndex(r.Op), classIndex(r.Device)

	// Table 3. These cells — and Figure 3's latency CDFs below — need the
	// device class (and startup latency), which the snapshot journal does
	// not carry; snapshots serialize them directly instead of replaying
	// them, so they stay out of addDerived.
	a.refs[opIdx][cls]++
	a.bytes[opIdx][cls] += int64(r.Size)
	if r.Startup > 0 {
		l := &a.latency[opIdx][cls]
		l.n++
		l.micros += int64(r.Startup / time.Microsecond)

		// Figure 3.
		c := a.latCDF[cls]
		if c == nil {
			c = &stats.CDF{}
			a.latCDF[cls] = c
		}
		c.Add(r.Startup.Seconds())
	}

	a.addDerived(r.Start, opIdx, int64(r.Size))
	return true
}

// addDerived accumulates the whole-system statistics a good reference
// contributes beyond Table 3 and Figure 3: the calendar series (Figures
// 4-6), the periodicity series, and the dynamic size distributions
// (Figure 10). Everything here is a function of (start, op, size) alone,
// which is why snapshot loading can recompute it by replaying the
// journal through this same method; a.start must be resolved first.
func (a *Analysis) addDerived(start time.Time, opIdx int, size int64) {
	day := int(start.Sub(a.start) / (24 * time.Hour))
	if day+1 > a.days {
		a.days = day + 1
	}

	// Figures 4-6.
	a.hourBytes[start.Hour()][opIdx] += size
	a.hourCount[start.Hour()][opIdx]++
	a.dayBytes[int(start.Weekday())][opIdx] += size
	week := day / 7
	wb := a.weekBytes[week]
	wb[opIdx] += size
	a.weekBytes[week] = wb

	// Periodicity series.
	hourIdx := int(start.Sub(a.start) / time.Hour)
	if hourIdx >= 0 {
		for len(a.hourlyReqs) <= hourIdx {
			a.hourlyReqs = append(a.hourlyReqs, 0)
			a.hourlyRead = append(a.hourlyRead, 0)
		}
		//lint:floatsum-ok integer-valued count incremented in record order, exact below 2^53
		a.hourlyReqs[hourIdx]++
		if opIdx == 0 {
			a.hourlyRead[hourIdx]++ //lint:floatsum-ok same integer-valued hourly counter as above
		}
	}

	// Figure 10 (dynamic sizes): every access counts.
	a.dynFiles[opIdx].Add(float64(size))
	a.dynBytes[opIdx].Add(float64(size), float64(size))
}

// addInterval feeds Figure 7: the interval from the previous good
// reference anywhere in the trace to this one.
func (a *Analysis) addInterval(start time.Time) {
	if !a.lastStart.IsZero() {
		a.interCDF.Add(start.Sub(a.lastStart).Seconds())
	}
	a.lastStart = start
}

// addFileAccess advances one file's part-two state (reference counts,
// interreference gaps) under the §5.3 dedup rule. Dedup depends only on
// the file's own access history in time order, which is what lets the
// shard merge replay each shard's accesses through this same method. The
// file is resolved through the interner: a known path costs one map
// probe, a new one extends the arena by a single inline slot.
func (a *Analysis) addFileAccess(path string, op trace.Op, start time.Time, size units.Bytes) {
	a.addFileAccessID(a.internFile(path), op, start, size)
}

// internFile resolves a path to its dense FileID, extending the
// per-file arena in step with the interner on first sight.
func (a *Analysis) internFile(path string) trace.FileID {
	id := a.interner.Intern(path)
	if int(id) == len(a.files) {
		a.files = append(a.files, fileState{})
	}
	return id
}

// addFileAccessID is addFileAccess below the interner: the dedup state
// transition for an already-resolved FileID. Snapshot merging replays
// decoded journals through it directly, and — when the journal is
// enabled — it is also the single capture point feeding that journal.
//
//filemig:hotpath
func (a *Analysis) addFileAccessID(id trace.FileID, op trace.Op, start time.Time, size units.Bytes) {
	if a.opts.Journal {
		a.appendJournal(id, op, start, size)
	}
	f := &a.files[id]
	f.size = size
	survives := false
	if op == trace.Read {
		if !f.everRead || start.Sub(f.lastRead) >= a.opts.DedupWindow {
			f.reads++
			f.lastRead = start
			f.everRead = true
			survives = true
		}
	} else {
		if !f.everWrite || start.Sub(f.lastWrite) >= a.opts.DedupWindow {
			f.writes++
			f.lastWrite = start
			f.everWrite = true
			survives = true
		}
	}
	if survives {
		if !f.lastDedup.IsZero() {
			a.gapCDF.Add(start.Sub(f.lastDedup).Hours() / 24)
		}
		f.lastDedup = start
	}
}

// appendJournal records one good reference in the snapshot/replay
// journal without advancing per-file dedup state — the capture half of
// addFileAccessID. Segment accumulators (Partial) call it directly:
// their per-file truth is replayed into a master at fold time, so
// running the dedup transition locally would be wasted work.
//
//filemig:hotpath
func (a *Analysis) appendJournal(id trace.FileID, op trace.Op, start time.Time, size units.Bytes) {
	a.journal = append(a.journal, journalEntry{
		start: start.UnixNano(), size: int64(size), id: id, write: op == trace.Write})
}

// AddAll feeds a whole slice.
func (a *Analysis) AddAll(recs []trace.Record) {
	for i := range recs {
		a.Add(&recs[i])
	}
}

// depthOf counts path components below the root. (Directory derivation
// itself lives in trace.Interner, the single copy of that rule.)
func depthOf(path string) int {
	return strings.Count(path, "/")
}
