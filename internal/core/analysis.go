// Package core is the paper's primary contribution rebuilt as a library:
// the two-part analysis of MSS trace data. Part one characterises the
// whole system — request mix and latency (Table 3, Figure 3), daily,
// weekly, and two-year usage rhythm (Figures 4-6), inter-request intervals
// (Figure 7) and their periodicity (§5.2). Part two characterises
// individual files — reference counts under the eight-hour dedup rule
// (Figure 8), per-file interreference intervals (Figure 9), dynamic and
// static size distributions (Figures 10-11), directory sizes (Figure 12),
// and the file-store summary (Table 4). Everything is computed in one
// streaming pass over a trace.
package core

import (
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/namespace"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

// Options configures an Analysis pass.
type Options struct {
	// Start and Days bound the calendar series (Figures 4-6). When Start
	// is zero it is taken from the first record; when Days is zero it is
	// sized from the data.
	Start time.Time
	Days  int

	// DedupWindow is §5.3's rule: at most one read and one write per file
	// per window. Zero means the paper's eight hours.
	DedupWindow time.Duration

	// Tree, when set, supplies the full MSS namespace for Table 4's
	// directory rows and Figure 12. A trace only reveals directories
	// holding referenced files; the real archive — like NCAR's — also
	// carries empty directories ("more than half of the directories had
	// only zero or one file"), which only the namespace knows about.
	// When nil, directory statistics are derived from the trace alone
	// and are conditioned on non-emptiness.
	Tree *namespace.Tree
}

// Analysis accumulates one streaming pass. Create with New, feed records
// in time order with Add, then call Report.
type Analysis struct {
	opts  Options
	start time.Time
	days  int

	// Table 3 accumulators: [op][device class].
	refs    map[trace.Op]map[device.Class]int64
	bytes   map[trace.Op]map[device.Class]int64
	latency map[trace.Op]map[device.Class]*stats.Moments
	errors  int64
	total   int64

	// Figure 3: latency to first byte per device.
	latCDF map[device.Class]*stats.CDF

	// Figures 4-6: calendar series, GB and request counts.
	hourBytes  [24][2]float64 // [hour][op]
	hourCount  [24][2]int64
	dayBytes   [7][2]float64
	weekBytes  map[int][2]float64 // week index -> [op] bytes
	hourlyReqs []float64          // request count per absolute hour (periodicity)
	hourlyRead []float64

	// Figure 7: global inter-request intervals.
	lastStart time.Time
	interCDF  *stats.CDF

	// Part two: per-file state (keyed by MSS path).
	files map[string]*fileState

	// Figure 10: dynamic size distributions.
	dynFiles map[trace.Op]*stats.CDF
	dynBytes map[trace.Op]*stats.WeightedCDF
}

type fileState struct {
	size      units.Bytes
	reads     int64
	writes    int64
	lastRead  time.Time
	lastWrite time.Time
	lastDedup time.Time // last access surviving dedup, either op
	gaps      []float64 // interreference intervals in days (deduped)
	everRead  bool
	everWrite bool
}

// New builds an Analysis.
func New(opts Options) *Analysis {
	if opts.DedupWindow == 0 {
		opts.DedupWindow = workload.DedupWindow
	}
	a := &Analysis{
		opts:      opts,
		refs:      map[trace.Op]map[device.Class]int64{},
		bytes:     map[trace.Op]map[device.Class]int64{},
		latency:   map[trace.Op]map[device.Class]*stats.Moments{},
		latCDF:    map[device.Class]*stats.CDF{},
		weekBytes: map[int][2]float64{},
		interCDF:  &stats.CDF{},
		files:     map[string]*fileState{},
		dynFiles:  map[trace.Op]*stats.CDF{trace.Read: {}, trace.Write: {}},
		dynBytes:  map[trace.Op]*stats.WeightedCDF{trace.Read: {}, trace.Write: {}},
	}
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		a.refs[op] = map[device.Class]int64{}
		a.bytes[op] = map[device.Class]int64{}
		a.latency[op] = map[device.Class]*stats.Moments{}
	}
	return a
}

// Add feeds one record. Records must arrive in non-decreasing start order.
func (a *Analysis) Add(r *trace.Record) {
	a.total++
	if a.start.IsZero() {
		a.start = a.opts.Start
		if a.start.IsZero() {
			a.start = r.Start.Truncate(24 * time.Hour)
		}
	}
	if !r.OK() {
		// The paper excludes error references from all analysis (§5.1).
		a.errors++
		return
	}
	day := int(r.Start.Sub(a.start) / (24 * time.Hour))
	if day+1 > a.days {
		a.days = day + 1
	}

	// Table 3.
	a.refs[r.Op][r.Device]++
	a.bytes[r.Op][r.Device] += int64(r.Size)
	m := a.latency[r.Op][r.Device]
	if m == nil {
		m = &stats.Moments{}
		a.latency[r.Op][r.Device] = m
	}
	if r.Startup > 0 {
		m.Add(r.Startup.Seconds())
	}

	// Figure 3.
	if r.Startup > 0 {
		c := a.latCDF[r.Device]
		if c == nil {
			c = &stats.CDF{}
			a.latCDF[r.Device] = c
		}
		c.Add(r.Startup.Seconds())
	}

	// Figures 4-6.
	opIdx := 0
	if r.Op == trace.Write {
		opIdx = 1
	}
	gb := float64(r.Size) / float64(units.GB)
	a.hourBytes[r.Start.Hour()][opIdx] += gb
	a.hourCount[r.Start.Hour()][opIdx]++
	a.dayBytes[int(r.Start.Weekday())][opIdx] += gb
	week := day / 7
	wb := a.weekBytes[week]
	wb[opIdx] += gb
	a.weekBytes[week] = wb

	// Periodicity series.
	hourIdx := int(r.Start.Sub(a.start) / time.Hour)
	if hourIdx >= 0 {
		for len(a.hourlyReqs) <= hourIdx {
			a.hourlyReqs = append(a.hourlyReqs, 0)
			a.hourlyRead = append(a.hourlyRead, 0)
		}
		a.hourlyReqs[hourIdx]++
		if r.Op == trace.Read {
			a.hourlyRead[hourIdx]++
		}
	}

	// Figure 7.
	if !a.lastStart.IsZero() {
		a.interCDF.Add(r.Start.Sub(a.lastStart).Seconds())
	}
	a.lastStart = r.Start

	// Figure 10 (dynamic sizes): every access counts.
	a.dynFiles[r.Op].Add(float64(r.Size))
	a.dynBytes[r.Op].Add(float64(r.Size), float64(r.Size))

	// Part two per-file state with dedup.
	f := a.files[r.MSSPath]
	if f == nil {
		f = &fileState{}
		a.files[r.MSSPath] = f
	}
	f.size = r.Size
	survives := false
	if r.Op == trace.Read {
		if !f.everRead || r.Start.Sub(f.lastRead) >= a.opts.DedupWindow {
			f.reads++
			f.lastRead = r.Start
			f.everRead = true
			survives = true
		}
	} else {
		if !f.everWrite || r.Start.Sub(f.lastWrite) >= a.opts.DedupWindow {
			f.writes++
			f.lastWrite = r.Start
			f.everWrite = true
			survives = true
		}
	}
	if survives {
		if !f.lastDedup.IsZero() {
			f.gaps = append(f.gaps, r.Start.Sub(f.lastDedup).Hours()/24)
		}
		f.lastDedup = r.Start
	}
}

// AddAll feeds a whole slice.
func (a *Analysis) AddAll(recs []trace.Record) {
	for i := range recs {
		a.Add(&recs[i])
	}
}

// dirOf extracts the directory of an MSS path.
func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "/"
}

// depthOf counts path components below the root.
func depthOf(path string) int {
	return strings.Count(path, "/")
}
