// Package core is the paper's primary contribution rebuilt as a library:
// the two-part analysis of MSS trace data. Part one characterises the
// whole system — request mix and latency (Table 3, Figure 3), daily,
// weekly, and two-year usage rhythm (Figures 4-6), inter-request intervals
// (Figure 7) and their periodicity (§5.2). Part two characterises
// individual files — reference counts under the eight-hour dedup rule
// (Figure 8), per-file interreference intervals (Figure 9), dynamic and
// static size distributions (Figures 10-11), directory sizes (Figure 12),
// and the file-store summary (Table 4). Everything is computed in one
// pass over a trace — either record by record through Analysis.Add, or
// shard by shard through AnalyzeStream, which fans time partitions of a
// trace.Stream over a worker pool and merges byte-identical results.
package core

import (
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/namespace"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

// Options configures an Analysis pass.
type Options struct {
	// Start and Days bound the calendar series (Figures 4-6). When Start
	// is zero it is taken from the first record; when Days is zero it is
	// sized from the data.
	Start time.Time
	Days  int

	// DedupWindow is §5.3's rule: at most one read and one write per file
	// per window. Zero means the paper's eight hours.
	DedupWindow time.Duration

	// Tree, when set, supplies the full MSS namespace for Table 4's
	// directory rows and Figure 12. A trace only reveals directories
	// holding referenced files; the real archive — like NCAR's — also
	// carries empty directories ("more than half of the directories had
	// only zero or one file"), which only the namespace knows about.
	// When nil, directory statistics are derived from the trace alone
	// and are conditioned on non-emptiness.
	Tree *namespace.Tree
}

// Analysis accumulates one streaming pass. Create with New, feed records
// in time order with Add, then call Report. AnalyzeStream builds the same
// Report from a trace.Stream by running per-shard Analyses in parallel
// and merging them; to keep the two paths byte-identical, every
// accumulator below is either an exact integer sum, a sample list whose
// queries are order-insensitive, or per-file state replayed in record
// order at merge time.
type Analysis struct {
	opts  Options
	start time.Time
	days  int

	// Table 3 accumulators: [op][device class]. Bytes are summed as
	// integers (exact, order-independent); latency as (count, µs-sum).
	refs    map[trace.Op]map[device.Class]int64
	bytes   map[trace.Op]map[device.Class]int64
	latency map[trace.Op]map[device.Class]*latencyAgg
	errors  int64
	total   int64

	// Figure 3: latency to first byte per device.
	latCDF map[device.Class]*stats.CDF

	// Figures 4-6: calendar series, raw bytes and request counts; the
	// GB conversions happen once, at Report time.
	hourBytes  [24][2]int64 // [hour][op]
	hourCount  [24][2]int64
	dayBytes   [7][2]int64
	weekBytes  map[int][2]int64 // week index -> [op] bytes
	hourlyReqs []float64        // request count per absolute hour (periodicity)
	hourlyRead []float64

	// Figure 7: global inter-request intervals.
	lastStart time.Time
	interCDF  *stats.CDF

	// Part two: per-file state (keyed by MSS path).
	files map[string]*fileState

	// Figure 10: dynamic size distributions.
	dynFiles map[trace.Op]*stats.CDF
	dynBytes map[trace.Op]*stats.WeightedCDF
}

// latencyAgg accumulates a mean latency exactly: an integer microsecond
// sum and a count merge across shards without floating-point drift.
type latencyAgg struct {
	n      int64
	micros int64
}

// meanSeconds reports the mean latency in seconds.
func (l *latencyAgg) meanSeconds() float64 {
	return float64(l.micros) / float64(l.n) / 1e6
}

type fileState struct {
	size      units.Bytes
	reads     int64
	writes    int64
	lastRead  time.Time
	lastWrite time.Time
	lastDedup time.Time // last access surviving dedup, either op
	gaps      []float64 // interreference intervals in days (deduped)
	everRead  bool
	everWrite bool
}

// New builds an Analysis.
func New(opts Options) *Analysis {
	if opts.DedupWindow == 0 {
		opts.DedupWindow = workload.DedupWindow
	}
	a := &Analysis{
		opts:      opts,
		refs:      map[trace.Op]map[device.Class]int64{},
		bytes:     map[trace.Op]map[device.Class]int64{},
		latency:   map[trace.Op]map[device.Class]*latencyAgg{},
		latCDF:    map[device.Class]*stats.CDF{},
		weekBytes: map[int][2]int64{},
		interCDF:  &stats.CDF{},
		files:     map[string]*fileState{},
		dynFiles:  map[trace.Op]*stats.CDF{trace.Read: {}, trace.Write: {}},
		dynBytes:  map[trace.Op]*stats.WeightedCDF{trace.Read: {}, trace.Write: {}},
	}
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		a.refs[op] = map[device.Class]int64{}
		a.bytes[op] = map[device.Class]int64{}
		a.latency[op] = map[device.Class]*latencyAgg{}
	}
	return a
}

// Add feeds one record. Records must arrive in non-decreasing start order.
func (a *Analysis) Add(r *trace.Record) {
	if !a.addShared(r) {
		return
	}
	a.addInterval(r.Start)
	a.addFileAccess(r.MSSPath, r.Op, r.Start, r.Size)
}

// addShared accumulates the whole-system statistics (Tables 3, Figures
// 3-6 and 10, the periodicity series). These merge across shards with
// plain sums and sample-list concatenation, unlike the inter-request
// intervals (addInterval) and per-file state (addFileAccess), which need
// cross-shard context at merge time. It reports whether the record is a
// good reference; error references are excluded from all further
// analysis, as in the paper (§5.1).
func (a *Analysis) addShared(r *trace.Record) bool {
	a.total++
	if a.start.IsZero() {
		a.start = a.opts.Start
		if a.start.IsZero() {
			a.start = r.Start.Truncate(24 * time.Hour)
		}
	}
	if !r.OK() {
		a.errors++
		return false
	}
	day := int(r.Start.Sub(a.start) / (24 * time.Hour))
	if day+1 > a.days {
		a.days = day + 1
	}

	// Table 3.
	a.refs[r.Op][r.Device]++
	a.bytes[r.Op][r.Device] += int64(r.Size)
	if r.Startup > 0 {
		l := a.latency[r.Op][r.Device]
		if l == nil {
			l = &latencyAgg{}
			a.latency[r.Op][r.Device] = l
		}
		l.n++
		l.micros += int64(r.Startup / time.Microsecond)
	}

	// Figure 3.
	if r.Startup > 0 {
		c := a.latCDF[r.Device]
		if c == nil {
			c = &stats.CDF{}
			a.latCDF[r.Device] = c
		}
		c.Add(r.Startup.Seconds())
	}

	// Figures 4-6.
	opIdx := 0
	if r.Op == trace.Write {
		opIdx = 1
	}
	a.hourBytes[r.Start.Hour()][opIdx] += int64(r.Size)
	a.hourCount[r.Start.Hour()][opIdx]++
	a.dayBytes[int(r.Start.Weekday())][opIdx] += int64(r.Size)
	week := day / 7
	wb := a.weekBytes[week]
	wb[opIdx] += int64(r.Size)
	a.weekBytes[week] = wb

	// Periodicity series.
	hourIdx := int(r.Start.Sub(a.start) / time.Hour)
	if hourIdx >= 0 {
		for len(a.hourlyReqs) <= hourIdx {
			a.hourlyReqs = append(a.hourlyReqs, 0)
			a.hourlyRead = append(a.hourlyRead, 0)
		}
		a.hourlyReqs[hourIdx]++
		if r.Op == trace.Read {
			a.hourlyRead[hourIdx]++
		}
	}

	// Figure 10 (dynamic sizes): every access counts.
	a.dynFiles[r.Op].Add(float64(r.Size))
	a.dynBytes[r.Op].Add(float64(r.Size), float64(r.Size))
	return true
}

// addInterval feeds Figure 7: the interval from the previous good
// reference anywhere in the trace to this one.
func (a *Analysis) addInterval(start time.Time) {
	if !a.lastStart.IsZero() {
		a.interCDF.Add(start.Sub(a.lastStart).Seconds())
	}
	a.lastStart = start
}

// addFileAccess advances one file's part-two state (reference counts,
// interreference gaps) under the §5.3 dedup rule. Dedup depends only on
// the file's own access history in time order, which is what lets the
// shard merge replay each shard's accesses through this same method.
func (a *Analysis) addFileAccess(path string, op trace.Op, start time.Time, size units.Bytes) {
	f := a.files[path]
	if f == nil {
		f = &fileState{}
		a.files[path] = f
	}
	f.size = size
	survives := false
	if op == trace.Read {
		if !f.everRead || start.Sub(f.lastRead) >= a.opts.DedupWindow {
			f.reads++
			f.lastRead = start
			f.everRead = true
			survives = true
		}
	} else {
		if !f.everWrite || start.Sub(f.lastWrite) >= a.opts.DedupWindow {
			f.writes++
			f.lastWrite = start
			f.everWrite = true
			survives = true
		}
	}
	if survives {
		if !f.lastDedup.IsZero() {
			f.gaps = append(f.gaps, start.Sub(f.lastDedup).Hours()/24)
		}
		f.lastDedup = start
	}
}

// AddAll feeds a whole slice.
func (a *Analysis) AddAll(recs []trace.Record) {
	for i := range recs {
		a.Add(&recs[i])
	}
}

// dirOf extracts the directory of an MSS path.
func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "/"
}

// depthOf counts path components below the root.
func depthOf(path string) int {
	return strings.Count(path, "/")
}
