package core

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"filemig/internal/trace"
	"filemig/internal/workload"
)

// renderAll concatenates every rendered table and figure the analysis
// produces, so a single string comparison covers the whole Report.
func renderAll(r *Report) string {
	return RenderReport(r) + fmt.Sprintf("days=%d autocorr=%v\n", r.Days, r.ReadAutocorrelation(48)[:2])
}

func streamFixture(t *testing.T) *workload.Result {
	t.Helper()
	cfg := workload.DefaultConfig(0.004, 77)
	cfg.Days = 180
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("workload.Generate: %v", err)
	}
	if len(res.Records) < 2000 {
		t.Fatalf("fixture too small: %d records", len(res.Records))
	}
	return res
}

// TestStreamEquivalence is the acceptance test for the sharded streaming
// path: for a generated trace, AnalyzeStream must produce byte-identical
// rendered tables and figures to the slice path, for every combination of
// worker count and shard width — including shards far narrower than the
// dedup window.
func TestStreamEquivalence(t *testing.T) {
	res := streamFixture(t)
	opts := Options{Start: res.Config.Start, Days: res.Config.Days, Tree: res.Tree}

	slice := New(opts)
	slice.AddAll(res.Records)
	want := renderAll(slice.Report())

	for _, tc := range []struct {
		workers int
		shard   time.Duration
	}{
		{1, DefaultShardDuration},
		{1, 24 * time.Hour},
		{4, DefaultShardDuration},
		{4, 7 * 24 * time.Hour},
		{4, 3 * time.Hour}, // narrower than the 8 h dedup window
		{16, 13 * 24 * time.Hour},
	} {
		t.Run(fmt.Sprintf("workers=%d/shard=%v", tc.workers, tc.shard), func(t *testing.T) {
			rep, err := AnalyzeStream(context.Background(), StreamOptions{
				Options:       opts,
				ShardDuration: tc.shard,
				Workers:       tc.workers,
			}, trace.SliceStream(res.Records))
			if err != nil {
				t.Fatalf("AnalyzeStream: %v", err)
			}
			got := renderAll(rep)
			if got != want {
				t.Fatalf("stream analysis diverged from slice path:\n%s",
					firstDiff(want, got))
			}
		})
	}
}

// TestStreamEquivalenceNoTreeNoStart exercises the auto-derived origin
// (Options.Start zero) and the trace-derived directory statistics
// (Options.Tree nil), which follow different code paths.
func TestStreamEquivalenceNoTreeNoStart(t *testing.T) {
	res := streamFixture(t)
	slice := New(Options{})
	slice.AddAll(res.Records)
	want := renderAll(slice.Report())

	rep, err := AnalyzeStream(context.Background(), StreamOptions{ShardDuration: 11 * 24 * time.Hour, Workers: 3},
		trace.SliceStream(res.Records))
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(rep); got != want {
		t.Fatalf("stream analysis diverged from slice path:\n%s", firstDiff(want, got))
	}
}

// TestStreamEquivalenceThroughCodec runs the stream path straight off an
// encoded trace — the mssanalyze -stream scenario — and compares it with
// decoding everything first.
func TestStreamEquivalenceThroughCodec(t *testing.T) {
	res := streamFixture(t)
	for _, f := range []trace.Format{trace.FormatASCII, trace.FormatBinary} {
		var enc pipeBuffer
		if err := trace.WriteAllFormat(&enc, res.Records, f); err != nil {
			t.Fatal(err)
		}
		recs, err := trace.ReadAll(newPipeReader(&enc))
		if err != nil {
			t.Fatal(err)
		}
		slice := New(Options{})
		slice.AddAll(recs)
		want := renderAll(slice.Report())

		src, err := trace.OpenStream(newPipeReader(&enc))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeStream(context.Background(), StreamOptions{Workers: 4, ShardDuration: 9 * 24 * time.Hour}, src)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(rep); got != want {
			t.Fatalf("%v: codec stream diverged:\n%s", f, firstDiff(want, got))
		}
	}
}

// pipeBuffer is a minimal append-only buffer we can re-read many times.
type pipeBuffer struct{ b []byte }

func (p *pipeBuffer) Write(b []byte) (int, error) {
	p.b = append(p.b, b...)
	return len(b), nil
}

type pipeReader struct {
	b []byte
	i int
}

func newPipeReader(p *pipeBuffer) io.Reader { return &pipeReader{b: p.b} }

func (r *pipeReader) Read(b []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(b, r.b[r.i:])
	r.i += n
	return n, nil
}

func TestStreamEmptyAndErrors(t *testing.T) {
	rep, err := AnalyzeStream(context.Background(), StreamOptions{}, trace.SliceStream(nil))
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if rep.Table3.GrandTotal != 0 {
		t.Fatalf("empty stream produced %d records", rep.Table3.GrandTotal)
	}

	res := streamFixture(t)
	recs := append([]trace.Record(nil), res.Records[:100]...)
	recs[50], recs[10] = recs[10], recs[50] // break the sort order
	for _, workers := range []int{1, 4} {
		if _, err := AnalyzeStream(context.Background(), StreamOptions{Workers: workers, ShardDuration: time.Hour},
			trace.SliceStream(recs)); err == nil {
			t.Fatalf("workers=%d: out-of-order stream accepted", workers)
		}
	}
}

// TestStreamReportFieldsMatch compares the raw (pre-render) periodicity
// series, which the renderers only summarise.
func TestStreamReportFieldsMatch(t *testing.T) {
	res := streamFixture(t)
	slice := New(Options{Start: res.Config.Start})
	slice.AddAll(res.Records)
	want := slice.Report()

	rep, err := AnalyzeStream(context.Background(), StreamOptions{
		Options: Options{Start: res.Config.Start},
		Workers: 4,
	}, trace.SliceStream(res.Records))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.HourlyRequests, want.HourlyRequests) {
		t.Fatal("HourlyRequests series diverged")
	}
	if !reflect.DeepEqual(rep.HourlyReads, want.HourlyReads) {
		t.Fatal("HourlyReads series diverged")
	}
	if rep.Days != want.Days {
		t.Fatalf("Days = %d, want %d", rep.Days, want.Days)
	}
}

// firstDiff locates the first line where two renderings disagree.
func firstDiff(want, got string) string {
	w, g := want, got
	line := 1
	for len(w) > 0 && len(g) > 0 {
		wl, gl := cutLine(&w), cutLine(&g)
		if wl != gl {
			return fmt.Sprintf("line %d:\nwant: %q\ngot:  %q", line, wl, gl)
		}
		line++
	}
	return fmt.Sprintf("length mismatch: want %d bytes, got %d bytes", len(want), len(got))
}

func cutLine(s *string) string {
	for i := 0; i < len(*s); i++ {
		if (*s)[i] == '\n' {
			l := (*s)[:i]
			*s = (*s)[i+1:]
			return l
		}
	}
	l := *s
	*s = ""
	return l
}
