package core

import (
	"testing"
)

// TestAnalyzeSteadyStateAllocs is the allocation-regression guard for the
// per-record hot path. A warmed Analysis re-fed the same records touches
// only interned IDs, inline array slots and amortised sample appends, so
// the per-record allocation rate must stay far below one: before the
// interner refactor every record paid map inserts, per-file gap appends
// and pointer-cell allocations.
func TestAnalyzeSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression needs the generated fixture")
	}
	res := streamFixture(t)
	recs := res.Records
	a := New(Options{Start: res.Config.Start, Days: res.Config.Days})
	a.AddAll(recs) // warm: interner, arena and CDF capacity all grow here
	perRun := testing.AllocsPerRun(5, func() {
		a.AddAll(recs)
	})
	perRecord := perRun / float64(len(recs))
	// Steady state still appends samples (interCDF, latCDF, dynFiles,
	// gapCDF, hourly series), so slice growth amortises to a handful of
	// allocations per run — not per record.
	if perRecord > 0.02 {
		t.Fatalf("steady-state Add allocates %.4f per record (%.0f per %d-record run), want <= 0.02",
			perRecord, perRun, len(recs))
	}
}
