package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"filemig/internal/trace"
)

// The index-seek analysis path for b2 traces. Where AnalyzeStream must
// decode every record just to find its shard, a b2 file's trailing
// index already says how many records each block holds and what time
// range they cover — so shard cutting here is pure planning over index
// metadata: blocks are grouped into contiguous shard-width runs, blocks
// outside the analysis window are skipped without ever being read, and
// only the workers decode, each block exactly once. The merge machinery
// is shared with AnalyzeStream, and it is exact for ANY contiguous
// partition of the record sequence, so cutting at block granularity
// (rather than exact shard-boundary records) still renders
// byte-identically to the slice and stream paths; TestB2Equivalence
// pins that down, and the DecodeCount assertions prove the skipping.

// B2Options configures AnalyzeB2.
type B2Options struct {
	StreamOptions

	// From and To bound the analyzed records to [From, To); a zero time
	// leaves that side unbounded. Blocks whose index time range lies
	// entirely outside the window are never decoded. When From is set
	// and Start is not, resolving the calendar origin needs the first
	// in-window record, which costs one extra decode of the first
	// overlapping block; set Start explicitly to avoid it.
	From, To time.Time
}

// blockGroup is one shard's worth of whole blocks: a contiguous block
// range and its total index record count, for presizing.
type blockGroup struct {
	lo, hi int // block index range [lo, hi)
	count  int64
}

// AnalyzeB2 computes the paper's full Report from an opened b2 trace
// by fanning block groups over a bounded worker pool, decoding blocks
// in parallel. The result is byte-identical to AnalyzeStream over the
// same records at any worker count. Cancelling ctx aborts between
// block groups with ctx's error; it never changes results.
func AnalyzeB2(ctx context.Context, opts B2Options, f *trace.B2File) (*Report, error) {
	a, err := AccumulateB2(ctx, opts, f)
	if err != nil {
		return nil, err
	}
	return a.Report(), nil
}

// AccumulateB2 is AnalyzeB2 stopped one step short of the Report,
// returning the merged accumulator itself — state-identical to the
// slice path over the same records, like AccumulateStream.
func AccumulateB2(ctx context.Context, opts B2Options, f *trace.B2File) (*Analysis, error) {
	if opts.ShardDuration <= 0 {
		opts.ShardDuration = DefaultShardDuration
	}

	lo, hi := b2Window(opts, f)
	if lo >= hi {
		return New(opts.Options), nil
	}
	windowed := !opts.From.IsZero() || !opts.To.IsZero()

	// Resolve the calendar origin exactly as AccumulateStream would. The
	// index gives the first record's start directly (a block's base IS
	// its first record's start); only a windowed run with no explicit
	// Start must decode the first overlapping block to find the first
	// record inside the window.
	origin := opts.Start
	if origin.IsZero() {
		first := f.Meta(lo).Base
		if windowed {
			var err error
			if first, err = b2FirstInWindow(opts, f, lo); err != nil {
				return nil, err
			}
			if first.IsZero() {
				// The first overlapping block straddled the window without
				// any record inside it. Later blocks start at or after this
				// block's end (>= From) and before To, so the next block's
				// base — if any — is the first in-window record.
				lo++
				if lo >= hi {
					return New(opts.Options), nil
				}
				first = f.Meta(lo).Base
			}
		}
		origin = first.Truncate(24 * time.Hour)
	}
	opts.Start = origin
	return accumulateB2Range(ctx, opts, f, lo, hi)
}

// AccumulateB2Blocks analyses exactly blocks [lo, hi) of f — the
// distributed shard path. Block ranges are an exact partition of the
// record sequence (unlike time windows, which cannot split two records
// sharing a timestamp across blocks), so analysing each range of a
// contiguous partition with Options.Journal set and merging the
// snapshots in range order reproduces the single-process analysis
// byte-for-byte. The From/To window does not apply here and must be
// zero.
func AccumulateB2Blocks(ctx context.Context, opts B2Options, f *trace.B2File, lo, hi int) (*Analysis, error) {
	if !opts.From.IsZero() || !opts.To.IsZero() {
		return nil, errors.New("core: AccumulateB2Blocks takes a block range, not a From/To window")
	}
	if lo < 0 || hi > f.NumBlocks() || lo > hi {
		return nil, fmt.Errorf("core: block range [%d, %d) outside [0, %d)", lo, hi, f.NumBlocks())
	}
	if opts.ShardDuration <= 0 {
		opts.ShardDuration = DefaultShardDuration
	}
	if lo >= hi {
		return New(opts.Options), nil
	}
	if opts.Start.IsZero() {
		opts.Start = f.Meta(lo).Base.Truncate(24 * time.Hour)
	}
	return accumulateB2Range(ctx, opts, f, lo, hi)
}

// B2TaskRanges cuts a b2 file's blocks into contiguous shard-width
// ranges [lo, hi) for distribution — the same calendar-aligned grouping
// AccumulateB2 fans over its local pool, computed from index metadata
// alone. Concatenated, the ranges cover every block exactly once.
func B2TaskRanges(f *trace.B2File, shard time.Duration) [][2]int {
	if shard <= 0 {
		shard = DefaultShardDuration
	}
	n := f.NumBlocks()
	if n == 0 {
		return nil
	}
	var opts B2Options
	opts.ShardDuration = shard
	opts.Start = f.Meta(0).Base.Truncate(24 * time.Hour)
	groups := b2Groups(opts, f, 0, n)
	out := make([][2]int, len(groups))
	for i, g := range groups {
		out[i] = [2]int{g.lo, g.hi}
	}
	return out
}

// accumulateB2Range runs blocks [lo, hi) (origin already resolved into
// opts.Start) through the serial or parallel group pipeline.
func accumulateB2Range(ctx context.Context, opts B2Options, f *trace.B2File, lo, hi int) (*Analysis, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	master := New(opts.Options)
	master.start = opts.Start

	groups := b2Groups(opts, f, lo, hi)
	if workers == 1 {
		d := f.NewBlockDecoder()
		for _, g := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sh, err := accumulateB2Group(opts, f, d, g)
			if err != nil {
				return nil, err
			}
			master.Fold(sh)
		}
		return master, nil
	}
	return accumulateB2Parallel(ctx, opts, f, master, groups, workers)
}

// b2Window returns the range of blocks overlapping [From, To) from the
// index alone.
func b2Window(opts B2Options, f *trace.B2File) (lo, hi int) {
	n := f.NumBlocks()
	lo, hi = 0, n
	if !opts.From.IsZero() {
		for lo < n && f.Meta(lo).End.Before(opts.From) {
			lo++
		}
	}
	if !opts.To.IsZero() {
		for hi > lo && !f.Meta(hi-1).Base.Before(opts.To) {
			hi--
		}
	}
	return lo, hi
}

// inB2Window reports whether a record time falls inside [From, To).
func inB2Window(opts *B2Options, at time.Time) bool {
	if !opts.From.IsZero() && at.Before(opts.From) {
		return false
	}
	if !opts.To.IsZero() && !at.Before(opts.To) {
		return false
	}
	return true
}

// b2FirstInWindow decodes block lo and returns the start of its first
// in-window record, or the zero time if the window skips the whole
// block.
func b2FirstInWindow(opts B2Options, f *trace.B2File, lo int) (time.Time, error) {
	recs, err := f.NewBlockDecoder().Decode(lo)
	if err != nil {
		return time.Time{}, err
	}
	for i := range recs {
		if inB2Window(&opts, recs[i].Start) {
			return recs[i].Start, nil
		}
	}
	return time.Time{}, nil
}

// b2Groups cuts blocks [lo, hi) into contiguous shard groups: a new
// group starts whenever a block's base time crosses into a new shard.
// Pure index arithmetic — nothing is decoded.
func b2Groups(opts B2Options, f *trace.B2File, lo, hi int) []blockGroup {
	var groups []blockGroup
	curShard := int64(0)
	for i := lo; i < hi; i++ {
		m := f.Meta(i)
		s := shardIndex(opts.Start, opts.ShardDuration, m.Base)
		if len(groups) == 0 || s != curShard {
			groups = append(groups, blockGroup{lo: i, hi: i + 1, count: m.Count})
			curShard = s
			continue
		}
		g := &groups[len(groups)-1]
		g.hi = i + 1
		g.count += m.Count
	}
	return groups
}

// accumulateB2Group decodes one group's blocks into a single presized
// record slice, applies the window filter, and accumulates the shard.
func accumulateB2Group(opts B2Options, f *trace.B2File, d *trace.B2BlockDecoder, g blockGroup) (*Partial, error) {
	recs := make([]trace.Record, g.count)
	at := int64(0)
	for i := g.lo; i < g.hi; i++ {
		n := f.Meta(i).Count
		if err := d.DecodeInto(i, recs[at:at+n]); err != nil {
			return nil, err
		}
		at += n
	}
	if !opts.From.IsZero() || !opts.To.IsZero() {
		kept := recs[:0]
		for i := range recs {
			if inB2Window(&opts, recs[i].Start) {
				kept = append(kept, recs[i])
			}
		}
		recs = kept
	}
	return AccumulatePartial(opts.Options, recs), nil
}

// accumulateB2Parallel fans block groups over a worker pool, each
// worker decoding its groups' blocks with a private block decoder, and
// merges shard results in group order — the same bounded pending-map
// shape as analyzeParallel, with in-flight groups capped by the pool.
// Cancellation is checked between dispatches: in-flight groups finish
// and merge, no new group starts, and ctx's error is returned.
func accumulateB2Parallel(ctx context.Context, opts B2Options, f *trace.B2File, master *Analysis, groups []blockGroup, workers int) (*Analysis, error) {
	type result struct {
		idx int
		sh  *Partial
		err error
	}
	jobs := make(chan int)
	results := make(chan result)
	sem := make(chan struct{}, workers+1)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			d := f.NewBlockDecoder()
			for idx := range jobs {
				sh, err := accumulateB2Group(opts, f, d, groups[idx])
				results <- result{idx: idx, sh: sh, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	errAt := len(groups)
	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		pending := map[int]*Partial{}
		next := 0
		for res := range results {
			if res.err != nil {
				// Keep the earliest failing group's error, deterministic
				// at any worker count, and stop merging past it.
				if res.idx < errAt {
					errAt, firstErr = res.idx, res.err
				}
				pending[res.idx] = nil
			} else {
				pending[res.idx] = res.sh
			}
			for sh, ok := pending[next]; ok; sh, ok = pending[next] {
				delete(pending, next)
				if next < errAt {
					master.Fold(sh)
				}
				next++
				<-sem
			}
		}
	}()

	var ctxErr error
	for idx := range groups {
		if ctxErr = ctx.Err(); ctxErr != nil {
			break
		}
		sem <- struct{}{}
		jobs <- idx
	}
	close(jobs)
	<-mergeDone
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return master, nil
}
