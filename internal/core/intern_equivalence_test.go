package core

import (
	"strings"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

// This file pins the interner refactor: the FileID-indexed arena and the
// enum-indexed op×class accumulators must render byte-identically to the
// historical string-keyed path. The reference implementation below keeps
// the old shapes — map[string]*state for files, nested op→class maps for
// Table 3, per-dir string maps for Table 4/Figure 12 — and feeds the same
// Report structs through the same renderers.

// refAnalysis is the pre-interner accumulator layout.
type refAnalysis struct {
	window  time.Duration
	refs    map[trace.Op]map[device.Class]int64
	bytes   map[trace.Op]map[device.Class]int64
	latN    map[trace.Op]map[device.Class]int64
	latUS   map[trace.Op]map[device.Class]int64
	errors  int64
	total   int64
	files   map[string]*refFileState
	order   []string // first-seen order, so sample insertion mirrors records
	gapsCDF *stats.CDF
}

type refFileState struct {
	size                units.Bytes
	reads, writes       int64
	lastRead, lastWrite time.Time
	lastDedup           time.Time
	everRead, everWrite bool
}

func newRefAnalysis(window time.Duration) *refAnalysis {
	a := &refAnalysis{
		window:  window,
		refs:    map[trace.Op]map[device.Class]int64{},
		bytes:   map[trace.Op]map[device.Class]int64{},
		latN:    map[trace.Op]map[device.Class]int64{},
		latUS:   map[trace.Op]map[device.Class]int64{},
		files:   map[string]*refFileState{},
		gapsCDF: &stats.CDF{},
	}
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		a.refs[op] = map[device.Class]int64{}
		a.bytes[op] = map[device.Class]int64{}
		a.latN[op] = map[device.Class]int64{}
		a.latUS[op] = map[device.Class]int64{}
	}
	return a
}

func (a *refAnalysis) add(r *trace.Record) {
	a.total++
	if !r.OK() {
		a.errors++
		return
	}
	a.refs[r.Op][r.Device]++
	a.bytes[r.Op][r.Device] += int64(r.Size)
	if r.Startup > 0 {
		a.latN[r.Op][r.Device]++
		a.latUS[r.Op][r.Device] += int64(r.Startup / time.Microsecond)
	}
	f := a.files[r.MSSPath]
	if f == nil {
		f = &refFileState{}
		a.files[r.MSSPath] = f
		a.order = append(a.order, r.MSSPath)
	}
	f.size = r.Size
	survives := false
	if r.Op == trace.Read {
		if !f.everRead || r.Start.Sub(f.lastRead) >= a.window {
			f.reads++
			f.lastRead = r.Start
			f.everRead = true
			survives = true
		}
	} else {
		if !f.everWrite || r.Start.Sub(f.lastWrite) >= a.window {
			f.writes++
			f.lastWrite = r.Start
			f.everWrite = true
			survives = true
		}
	}
	if survives {
		if !f.lastDedup.IsZero() {
			a.gapsCDF.Add(r.Start.Sub(f.lastDedup).Hours() / 24)
		}
		f.lastDedup = r.Start
	}
}

func (a *refAnalysis) table3() Table3 {
	t := Table3{Cells: map[trace.Op]map[device.Class]Cell{}, ErrorRefs: a.errors, GrandTotal: a.total}
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		t.Cells[op] = map[device.Class]Cell{}
		for _, dev := range RefDevices {
			c := Cell{Refs: a.refs[op][dev], Bytes: units.Bytes(a.bytes[op][dev])}
			if n := a.latN[op][dev]; n > 0 {
				c.MeanLatency = units.DurationSeconds(float64(a.latUS[op][dev]) / float64(n) / 1e6)
			}
			t.Cells[op][dev] = c
			t.TotalRefs += c.Refs
		}
	}
	return t
}

func (a *refAnalysis) fileFigures() (Figure8, *stats.CDF, Figure11, Table4, Figure12) {
	f8 := Figure8{Reads: &stats.CDF{}, Writes: &stats.CDF{}, Total: &stats.CDF{}}
	f11 := Figure11{Files: &stats.CDF{}, Data: &stats.WeightedCDF{}}
	type dirAgg struct {
		files int64
		bytes units.Bytes
	}
	dirs := map[string]*dirAgg{}
	var dirOrder []string
	var total units.Bytes
	maxDepth := 0
	var zeroRead, oneRead, zeroWrite, oneWrite, once, twice, w1r0, over10, neverReread int64
	for _, path := range a.order {
		f := a.files[path]
		f8.Files++
		f8.Reads.Add(float64(f.reads))
		f8.Writes.Add(float64(f.writes))
		tot := f.reads + f.writes
		f8.Total.Add(float64(tot))
		switch f.reads {
		case 0:
			zeroRead++
		case 1:
			oneRead++
		}
		switch f.writes {
		case 0:
			zeroWrite++
		case 1:
			oneWrite++
		}
		if tot == 1 {
			once++
		}
		if tot == 2 {
			twice++
		}
		if f.writes == 1 && f.reads == 0 {
			w1r0++
		}
		if tot > 10 {
			over10++
		}
		s := float64(f.size)
		f11.Files.Add(s)
		f11.Data.Add(s, s)
		d := "/"
		if i := strings.LastIndexByte(path, '/'); i > 0 {
			d = path[:i]
		}
		agg := dirs[d]
		if agg == nil {
			agg = &dirAgg{}
			dirs[d] = agg
			dirOrder = append(dirOrder, d)
		}
		agg.files++
		agg.bytes += f.size
		total += f.size
		if dep := strings.Count(path, "/"); dep > maxDepth {
			maxDepth = dep
		}
		if f.reads == 0 && f.writes <= 1 {
			neverReread++
		}
	}
	if f8.Files > 0 {
		n := float64(f8.Files)
		f8.ZeroReadFrac = float64(zeroRead) / n
		f8.OneReadFrac = float64(oneRead) / n
		f8.ZeroWriteFrac = float64(zeroWrite) / n
		f8.OneWriteFrac = float64(oneWrite) / n
		f8.ExactlyOnceFrac = float64(once) / n
		f8.ExactlyTwiceFrac = float64(twice) / n
		f8.WriteOnceNeverReadFrac = float64(w1r0) / n
		f8.MoreThanTenFrac = float64(over10) / n
	}
	t4 := Table4{
		NumFiles:  f8.Files,
		NumDirs:   int64(len(dirs)),
		MaxDepth:  maxDepth,
		TotalData: total,
	}
	if t4.NumFiles > 0 {
		t4.AvgFileSize = total / units.Bytes(t4.NumFiles)
		t4.NeverReread = float64(neverReread) / float64(t4.NumFiles)
	}
	f12 := Figure12{Dirs: &stats.WeightedCDF{}, Files: &stats.WeightedCDF{}, Data: &stats.WeightedCDF{}}
	for _, d := range dirOrder {
		agg := dirs[d]
		n := float64(agg.files)
		if agg.files > t4.LargestDir {
			t4.LargestDir = agg.files
		}
		f12.Dirs.Add(n, 1)
		f12.Files.Add(n, n)
		f12.Data.Add(n, float64(agg.bytes))
	}
	return f8, a.gapsCDF, f11, t4, f12
}

// TestInternerEquivalence feeds a generated trace through the interned
// Analysis and through the string-keyed reference, then compares the
// rendered output of every table and figure the refactor touched.
func TestInternerEquivalence(t *testing.T) {
	res := streamFixture(t)

	a := New(Options{Start: res.Config.Start, Days: res.Config.Days})
	a.AddAll(res.Records)
	rep := a.Report()

	ref := newRefAnalysis(workload.DedupWindow)
	for i := range res.Records {
		ref.add(&res.Records[i])
	}
	refT3 := ref.table3()
	refF8, refF9, refF11, refT4, refF12 := ref.fileFigures()

	compare := func(name, got, want string) {
		t.Helper()
		if got != want {
			t.Errorf("%s diverged from string-keyed reference:\n%s", name, firstDiff(want, got))
		}
	}
	compare("Table3", RenderTable3(rep.Table3), RenderTable3(refT3))
	compare("Table4", RenderTable4(rep.Table4), RenderTable4(refT4))
	compare("Figure8", RenderFigure8(rep.Figure8), RenderFigure8(refF8))
	compare("Figure9", RenderFigure9(rep.Figure9), RenderFigure9(refF9))
	compare("Figure11", RenderFigure11(rep.Figure11), RenderFigure11(refF11))
	compare("Figure12", RenderFigure12(rep.Figure12), RenderFigure12(refF12))
}

// TestInternerEquivalenceSynthetic exercises the corner cases the
// generator's path population misses: root-level files, deep nesting,
// shared directories first seen via their second file, and an unknown
// device class landing in the shared fallback slot.
func TestInternerEquivalenceSynthetic(t *testing.T) {
	base := time.Date(1990, time.October, 1, 0, 0, 0, 0, time.UTC)
	mk := func(i int, path string, op trace.Op, dev device.Class, size units.Bytes) trace.Record {
		return trace.Record{
			Start: base.Add(time.Duration(i) * 90 * time.Minute), Op: op, Device: dev,
			Startup: time.Duration(1+i%7) * time.Second, Transfer: time.Second,
			Size: size, MSSPath: path, LocalPath: "/tmp/x", UserID: 7,
		}
	}
	recs := []trace.Record{
		mk(0, "/rootfile", trace.Write, device.ClassDisk, 100),
		mk(1, "/a/b/c/deep", trace.Write, device.ClassSiloTape, 2e6),
		mk(2, "/a/b/other", trace.Read, device.ClassManualTape, 5e5),
		mk(3, "/a/b/c/deep", trace.Read, device.ClassSiloTape, 2e6),
		mk(4, "/rootfile", trace.Read, device.ClassDisk, 100),
		mk(5, "/a/b/c/deep", trace.Read, device.Class(99), 2e6), // fallback slot
		mk(6, "/z", trace.Write, device.ClassOptical, 42),
		mk(7, "/a/b/other", trace.Read, device.ClassManualTape, 5e5),
		mk(8, "/a/b/c/deep", trace.Read, device.ClassSiloTape, 3e6), // size update
	}
	recs[3].Err = trace.ErrMedia // error reference: excluded everywhere

	a := New(Options{})
	a.AddAll(recs)
	rep := a.Report()

	ref := newRefAnalysis(workload.DedupWindow)
	for i := range recs {
		ref.add(&recs[i])
	}
	refT3 := ref.table3()
	refF8, refF9, refF11, refT4, refF12 := ref.fileFigures()

	for _, c := range []struct{ name, got, want string }{
		{"Table3", RenderTable3(rep.Table3), RenderTable3(refT3)},
		{"Table4", RenderTable4(rep.Table4), RenderTable4(refT4)},
		{"Figure8", RenderFigure8(rep.Figure8), RenderFigure8(refF8)},
		{"Figure9", RenderFigure9(rep.Figure9), RenderFigure9(refF9)},
		{"Figure11", RenderFigure11(rep.Figure11), RenderFigure11(refF11)},
		{"Figure12", RenderFigure12(rep.Figure12), RenderFigure12(refF12)},
	} {
		if c.got != c.want {
			t.Errorf("%s diverged from string-keyed reference:\n%s", c.name, firstDiff(c.want, c.got))
		}
	}
}
