package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"filemig/internal/trace"
)

// saveSlice analyses one record slice with the journal enabled and
// returns its s1 snapshot bytes — the "map" side of a distributed run.
func saveSlice(t *testing.T, opts Options, recs []trace.Record) []byte {
	t.Helper()
	opts.Journal = true
	a := New(opts)
	a.AddAll(recs)
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// mergeSnapshots runs the "reduce" side over encoded snapshots.
func mergeSnapshots(t *testing.T, snaps [][]byte) *Analysis {
	t.Helper()
	rs := make([]io.Reader, len(snaps))
	for i, s := range snaps {
		rs[i] = bytes.NewReader(s)
	}
	m, err := MergeSnapshots(rs...)
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	return m
}

// splitN cuts records into n contiguous slices of near-equal length.
func splitN(recs []trace.Record, n int) [][]trace.Record {
	out := make([][]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(recs)/n, (i+1)*len(recs)/n
		out = append(out, recs[lo:hi])
	}
	return out
}

// splitWidth cuts records at time boundaries of the given width — the
// distributed analogue of AnalyzeStream's shard cutting.
func splitWidth(recs []trace.Record, width time.Duration) [][]trace.Record {
	if len(recs) == 0 {
		return nil
	}
	origin := recs[0].Start
	var out [][]trace.Record
	lo := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Start.Sub(origin)/width != recs[lo].Start.Sub(origin)/width {
			out = append(out, recs[lo:i])
			lo = i
		}
	}
	return append(out, recs[lo:])
}

// TestSnapshotEquivalence is the acceptance test for the s1 codec: a
// trace split N ways, each slice analysed independently and saved, then
// loaded and merged, must render the paper's full report byte-identical
// to the single-process slice path — for N ∈ {1, 2, 8} and for time
// slices far narrower than the eight-hour dedup window.
func TestSnapshotEquivalence(t *testing.T) {
	res := streamFixture(t)
	for _, withStart := range []bool{true, false} {
		opts := Options{}
		if withStart {
			opts.Start = res.Config.Start
		}
		slice := New(opts)
		slice.AddAll(res.Records)
		want := renderAll(slice.Report())

		splits := map[string][][]trace.Record{
			"N=1": splitN(res.Records, 1),
			"N=2": splitN(res.Records, 2),
			"N=8": splitN(res.Records, 8),
		}
		if !withStart {
			// Far narrower than the 8 h dedup window, so nearly every
			// file's dedup chain crosses snapshot boundaries.
			splits["width=3h"] = splitWidth(res.Records, 3*time.Hour)
		}
		for name, slices := range splits {
			t.Run(fmt.Sprintf("start=%v/%s", withStart, name), func(t *testing.T) {
				snaps := make([][]byte, len(slices))
				for i, s := range slices {
					snaps[i] = saveSlice(t, opts, s)
				}
				m := mergeSnapshots(t, snaps)
				if got := renderAll(m.Report()); got != want {
					t.Fatalf("merged snapshots diverged from slice path:\n%s", firstDiff(want, got))
				}
			})
		}
	}
}

// TestSnapshotStreamSaveIdentical proves the two producers agree: an
// AccumulateStream master (sharded, parallel) with the journal on saves
// byte-identical snapshot bytes to a slice-path analysis of the same
// records — so distributed workers can use whichever path fits their
// memory budget.
func TestSnapshotStreamSaveIdentical(t *testing.T) {
	res := streamFixture(t)
	want := saveSlice(t, Options{}, res.Records)

	a, err := AccumulateStream(context.Background(), StreamOptions{
		Options:       Options{Journal: true},
		Workers:       4,
		ShardDuration: 3 * time.Hour,
	}, trace.SliceStream(res.Records))
	if err != nil {
		t.Fatalf("AccumulateStream: %v", err)
	}
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("stream-path snapshot differs from slice-path snapshot (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}

// TestSnapshotRoundTripStable checks the fuzz target's core property on
// real data: save → load → save is byte-stable, including for a merged
// analysis re-saved as a new snapshot (merge trees compose).
func TestSnapshotRoundTripStable(t *testing.T) {
	res := streamFixture(t)
	enc := saveSlice(t, Options{}, res.Records)

	a, err := ReadSnapshot(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Fatal("save → load → save is not byte-stable")
	}

	// A merged pair re-saves to exactly the single-slice snapshot.
	halves := splitN(res.Records, 2)
	m := mergeSnapshots(t, [][]byte{
		saveSlice(t, Options{}, halves[0]),
		saveSlice(t, Options{}, halves[1]),
	})
	buf.Reset()
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatalf("merged save: %v", err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Fatal("snapshot of a merge differs from snapshot of the whole")
	}
}

// TestSnapshotResume checks that a loaded snapshot is a live analysis:
// feeding it the rest of the trace matches analysing everything in one
// process.
func TestSnapshotResume(t *testing.T) {
	res := streamFixture(t)
	slice := New(Options{})
	slice.AddAll(res.Records)
	want := renderAll(slice.Report())

	halves := splitN(res.Records, 2)
	a, err := ReadSnapshot(bytes.NewReader(saveSlice(t, Options{}, halves[0])))
	if err != nil {
		t.Fatal(err)
	}
	a.AddAll(halves[1])
	if got := renderAll(a.Report()); got != want {
		t.Fatalf("resumed analysis diverged:\n%s", firstDiff(want, got))
	}
}

// TestSnapshotEmpty round-trips an analysis that saw no records.
func TestSnapshotEmpty(t *testing.T) {
	a := New(Options{Journal: true})
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Report().Table3.GrandTotal != 0 {
		t.Fatal("empty snapshot produced records")
	}
}

// TestSnapshotWriteErrors covers the producer-side refusals.
func TestSnapshotWriteErrors(t *testing.T) {
	res := streamFixture(t)
	var buf bytes.Buffer

	a := New(Options{}) // no journal
	a.AddAll(res.Records[:100])
	if err := a.WriteSnapshot(&buf); err == nil || !strings.Contains(err.Error(), "Journal") {
		t.Fatalf("journal-less save: err = %v", err)
	}

	withTree := New(Options{Journal: true, Tree: res.Tree})
	withTree.AddAll(res.Records[:100])
	if err := withTree.WriteSnapshot(&buf); err == nil || !strings.Contains(err.Error(), "Tree") {
		t.Fatalf("tree save: err = %v", err)
	}
}

// TestSnapshotDecodeErrors feeds malformed and misused snapshots and
// expects errors — never panics, never silent corruption.
func TestSnapshotDecodeErrors(t *testing.T) {
	res := streamFixture(t)
	halves := splitN(res.Records[:2000], 2)
	first := saveSlice(t, Options{}, halves[0])
	second := saveSlice(t, Options{}, halves[1])

	t.Run("no input", func(t *testing.T) {
		if _, err := MergeSnapshots(); err == nil {
			t.Fatal("no error for zero snapshots")
		}
	})
	t.Run("trace not snapshot", func(t *testing.T) {
		var tr bytes.Buffer
		if err := trace.WriteAllFormat(&tr, res.Records[:50], trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(tr.Bytes())); err == nil ||
			!strings.Contains(err.Error(), "snapshot header") {
			t.Fatalf("trace input: err = %v", err)
		}
	})
	t.Run("snapshot not trace", func(t *testing.T) {
		if _, err := trace.OpenStream(bytes.NewReader(first)); err == nil ||
			!strings.Contains(err.Error(), "merge") {
			t.Fatalf("OpenStream on snapshot: err = %v", err)
		}
	})
	t.Run("out of order merge", func(t *testing.T) {
		if _, err := MergeSnapshots(bytes.NewReader(second), bytes.NewReader(first)); err == nil ||
			!strings.Contains(err.Error(), "order") {
			t.Fatalf("swapped halves: err = %v", err)
		}
	})
	t.Run("dedup window mismatch", func(t *testing.T) {
		other := saveSlice(t, Options{DedupWindow: time.Hour}, halves[1])
		if _, err := MergeSnapshots(bytes.NewReader(first), bytes.NewReader(other)); err == nil ||
			!strings.Contains(err.Error(), "dedup window") {
			t.Fatalf("window mismatch: err = %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, first...), 0x7)
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Fatalf("trailing byte: err = %v", err)
		}
	})
	t.Run("every truncation errors", func(t *testing.T) {
		small := saveSlice(t, Options{}, res.Records[:40])
		for cut := 0; cut < len(small); cut++ {
			if _, err := ReadSnapshot(bytes.NewReader(small[:cut])); err == nil {
				t.Fatalf("truncation at %d of %d bytes loaded cleanly", cut, len(small))
			}
		}
	})
	t.Run("single bit flips never load silently", func(t *testing.T) {
		small := saveSlice(t, Options{}, res.Records[:40])
		var enc bytes.Buffer
		flipped := 0
		for i := len(trace.SnapshotHeader) + 1; i < len(small); i++ {
			bad := append([]byte{}, small...)
			bad[i] ^= 0x40
			a, err := ReadSnapshot(bytes.NewReader(bad))
			if err != nil {
				continue
			}
			// A flip that still decodes must decode to *different* valid
			// content, never to a half-applied mix: re-saving must give
			// back exactly the mutated bytes.
			enc.Reset()
			if err := a.WriteSnapshot(&enc); err != nil {
				t.Fatalf("flip at %d: loaded but cannot re-save: %v", i, err)
			}
			flipped++
		}
		if flipped == len(small) {
			t.Fatal("no bit flip was ever detected")
		}
	})
}

// TestSnapshotSums spot-checks that the loaded analysis preserves the
// serialized (non-replayed) accumulators, not just the rendered report:
// Table 3 cells and Figure 3 CDFs come from the sums sections.
func TestSnapshotSums(t *testing.T) {
	res := streamFixture(t)
	slice := New(Options{})
	slice.AddAll(res.Records)
	want := slice.Report()

	m, err := ReadSnapshot(bytes.NewReader(saveSlice(t, Options{}, res.Records)))
	if err != nil {
		t.Fatal(err)
	}
	got := m.Report()
	if got.Table3.GrandTotal != want.Table3.GrandTotal ||
		got.Table3.ErrorRefs != want.Table3.ErrorRefs ||
		got.Table3.TotalRefs != want.Table3.TotalRefs {
		t.Fatalf("Table 3 headline counts differ: %+v vs %+v", got.Table3, want.Table3)
	}
	for dev, wc := range want.Figure3 {
		gc := got.Figure3[dev]
		if gc == nil || gc.N() != wc.N() || gc.Median() != wc.Median() {
			t.Fatalf("Figure 3 class %v differs", dev)
		}
	}
}
