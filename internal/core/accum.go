package core

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// The one online accumulator behind every analysis path. The slice path
// feeds an Accumulator directly (New + Add); the stream and b2 paths cut
// the trace into contiguous segments, accumulate each into a Partial,
// and Fold them into a master in time order; the s1 snapshot codec
// serializes an Accumulator and decodes back into a Partial that
// FoldReplay merges; and the migd daemon (internal/serve) keeps live
// Partials per ingest segment and FoldPartials them on demand. The
// three folds differ in how much they recompute and what they assume
// about segment order:
//
//   - Fold requires master and segment to share a calendar origin
//     (AccumulateStream and AccumulateB2 resolve Options.Start once for
//     exactly this reason). Every derived series then folds by integer
//     sums and sample-list concatenation, and only the per-file journal
//     is replayed — the fast in-process merge.
//   - FoldReplay makes no origin assumption: only the fields a journal
//     replay cannot recompute — the op×class accumulators and the
//     startup-latency CDFs, which need the device class the journal does
//     not carry — fold by addition, and everything else is recomputed by
//     replaying the segment's journal through the exact per-record
//     transitions the slice path runs. Snapshots produced by different
//     processes merge through this path, one at a time, in trace order.
//   - FoldPartials drops the remaining assumption — that segments
//     arrive contiguous and in order. It takes every segment at once,
//     k-way merges their journals back into global record time, and
//     replays the merged stream into a fresh master: segments whose
//     time ranges interleave arbitrarily (a live daemon's out-of-order
//     batch arrivals) still fold to the exact slice-path state.
//
// Every fold replays per-file state rather than merging it, because
// §5.3 dedup survival does not compose from end states (see the package
// comment in snapshot.go), and every fold preserves the master's
// first-seen FileID assignment by interning segment paths in the order
// the replayed records first touch them.

// Accumulator is the unified online accumulator: Analysis under the name
// the incremental paths use. The two names alias one type.
type Accumulator = Analysis

// NewAccumulator builds an empty online accumulator — New under its
// accumulator name.
func NewAccumulator(opts Options) *Accumulator { return New(opts) }

// Partial is one contiguous trace segment's partial accumulation: a
// segment-local Accumulator whose reference journal is always retained
// (it is the replay log Fold and FoldReplay consume), plus the segment's
// boundary instants for Figure 7's cross-segment intervals and for
// ordering segments at fold time.
type Partial struct {
	acc *Accumulator

	// first and last bound every observed record, errors included;
	// firstOK and lastOK bound the good references only.
	first, last     time.Time
	firstOK, lastOK time.Time
}

// NewPartial opens an empty segment accumulator. The segment journals
// unconditionally and never carries a namespace Tree, whatever opts
// says: a Partial's journal is its serialized truth.
func NewPartial(opts Options) *Partial {
	opts.Journal = true
	opts.Tree = nil
	return &Partial{acc: New(opts)}
}

// Observe feeds one record into the segment. Records must arrive in
// non-decreasing start order within the segment. Per-file dedup state is
// not advanced here — it cannot be known without the earlier segments —
// only captured in the journal for replay at fold time.
func (p *Partial) Observe(r *trace.Record) {
	if p.first.IsZero() {
		p.first = r.Start
	}
	p.last = r.Start
	if !p.acc.addShared(r) {
		return
	}
	p.acc.addInterval(r.Start)
	p.acc.appendJournal(p.acc.internFile(r.MSSPath), r.Op, r.Start, r.Size)
	if p.firstOK.IsZero() {
		p.firstOK = r.Start
	}
	p.lastOK = r.Start
}

// Records reports how many records the segment has observed, errors
// included.
func (p *Partial) Records() int64 { return p.acc.total }

// Errors reports how many of the segment's records were error records.
func (p *Partial) Errors() int64 { return p.acc.errors }

// VisitRefs replays the segment's good references in record order,
// calling fn with each reference's canonical path, op, start, and size —
// the hook migd uses to rebuild its live per-file table after restoring
// segments from a checkpoint.
func (p *Partial) VisitRefs(fn func(path string, op trace.Op, start time.Time, size units.Bytes)) {
	for k := range p.acc.journal {
		e := &p.acc.journal[k]
		op := trace.Read
		if e.write {
			op = trace.Write
		}
		fn(p.acc.interner.Path(e.id), op, time.Unix(0, e.start).UTC(), units.Bytes(e.size))
	}
}

// Bounds reports the segment's first and last observed record times
// (zero for an empty segment), errors included.
func (p *Partial) Bounds() (first, last time.Time) { return p.first, p.last }

// WriteSnapshot serializes the segment's accumulator in the s1 format —
// the daemon's checkpoint unit. The segment stays live and can keep
// observing records afterwards.
func (p *Partial) WriteSnapshot(w io.Writer) error {
	return p.acc.WriteSnapshot(w)
}

// PartialFromSnapshot rebuilds a segment from a decoded snapshot
// accumulator plus its externally-recorded record-time bounds (the s1
// format does not carry the bounds of error records; the daemon's
// checkpoint frames do).
func PartialFromSnapshot(acc *Accumulator, first, last time.Time) (*Partial, error) {
	if !acc.opts.Journal {
		return nil, errors.New("core: a segment accumulator must carry its journal")
	}
	p := &Partial{acc: acc, first: first, last: last}
	if n := len(acc.journal); n > 0 {
		p.firstOK = time.Unix(0, acc.journal[0].start).UTC()
		p.lastOK = time.Unix(0, acc.journal[n-1].start).UTC()
		if p.first.IsZero() {
			p.first = p.firstOK
		}
		if p.last.IsZero() {
			p.last = p.lastOK
		}
	}
	return p, nil
}

// AccumulatePartial runs one contiguous segment of records through a
// fresh Partial — the stream and b2 shard workers' unit of work.
func AccumulatePartial(opts Options, recs []trace.Record) *Partial {
	p := NewPartial(opts)
	// Pre-size the periodicity series to the segment's last hour so the
	// grow-by-append loop in addDerived allocates once per segment.
	if len(recs) > 0 && !opts.Start.IsZero() {
		if hi := int(recs[len(recs)-1].Start.Sub(opts.Start) / time.Hour); hi >= 0 {
			p.acc.hourlyReqs = make([]float64, 0, hi+1)
			p.acc.hourlyRead = make([]float64, 0, hi+1)
		}
	}
	for i := range recs {
		p.Observe(&recs[i])
	}
	return p
}

// Fold merges one segment into the master. Master and segment must share
// a calendar origin — AccumulateStream and AccumulateB2 resolve
// Options.Start once before cutting segments — so every derived series
// folds by plain sums and sample concatenation; only the per-file
// journal is replayed. Segments must fold in time order.
func (a *Accumulator) Fold(p *Partial) {
	sub := p.acc
	a.total += sub.total
	a.errors += sub.errors
	if sub.days > a.days {
		a.days = sub.days
	}
	for oi := 0; oi < 2; oi++ {
		for ci := 0; ci < device.NClasses; ci++ {
			a.refs[oi][ci] += sub.refs[oi][ci]
			a.bytes[oi][ci] += sub.bytes[oi][ci]
			a.latency[oi][ci].n += sub.latency[oi][ci].n
			a.latency[oi][ci].micros += sub.latency[oi][ci].micros
		}
		a.dynFiles[oi].Merge(sub.dynFiles[oi])
		a.dynBytes[oi].Merge(sub.dynBytes[oi])
	}
	a.foldLatCDF(sub)
	for h := range a.hourBytes {
		a.hourBytes[h][0] += sub.hourBytes[h][0]
		a.hourBytes[h][1] += sub.hourBytes[h][1]
		a.hourCount[h][0] += sub.hourCount[h][0]
		a.hourCount[h][1] += sub.hourCount[h][1]
	}
	for d := range a.dayBytes {
		a.dayBytes[d][0] += sub.dayBytes[d][0]
		a.dayBytes[d][1] += sub.dayBytes[d][1]
	}
	weeks := make([]int, 0, len(sub.weekBytes))
	for w := range sub.weekBytes {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	for _, w := range weeks {
		b := sub.weekBytes[w]
		wb := a.weekBytes[w]
		wb[0] += b[0]
		wb[1] += b[1]
		a.weekBytes[w] = wb
	}
	for len(a.hourlyReqs) < len(sub.hourlyReqs) {
		a.hourlyReqs = append(a.hourlyReqs, 0)
		a.hourlyRead = append(a.hourlyRead, 0)
	}
	for i, v := range sub.hourlyReqs {
		//lint:floatsum-ok index-aligned sums of integer-valued counts, merged in fixed segment order and exact below 2^53
		a.hourlyReqs[i] += v
		a.hourlyRead[i] += sub.hourlyRead[i] //lint:floatsum-ok same integer-valued hourly counter as the line above
	}

	// Figure 7: the boundary interval precedes the segment's internal
	// intervals, matching global record order.
	if !p.firstOK.IsZero() {
		a.addInterval(p.firstOK)
		a.interCDF.Merge(sub.interCDF)
		a.lastStart = p.lastOK
	}

	remap := a.remapIDs(sub)
	for k := range sub.journal {
		e := &sub.journal[k]
		op := trace.Read
		if e.write {
			op = trace.Write
		}
		a.addFileAccessID(remap[e.id], op, time.Unix(0, e.start).UTC(), units.Bytes(e.size))
	}
}

// FoldReplay merges one segment into the master without a shared
// calendar origin: the op×class accumulators and startup-latency CDFs —
// which need the device class the journal does not carry — fold by
// addition, and every derived series (calendar, periodicity, Figure 7
// intervals, Figure 10, per-file state) is recomputed by replaying the
// journal through the per-record transitions the slice path runs. This
// is the split the s1 snapshot merge uses, and the fold the daemon's
// report and checkpoint paths take. Segments must fold in time order;
// an overlap with already-folded data is an error, as is a dedup-window
// disagreement.
func (a *Accumulator) FoldReplay(p *Partial) error {
	sub := p.acc
	if sub.opts.DedupWindow != a.opts.DedupWindow {
		return fmt.Errorf("segment dedup window %v disagrees with the master's %v",
			sub.opts.DedupWindow, a.opts.DedupWindow)
	}
	if len(sub.journal) > 0 {
		t0 := time.Unix(0, sub.journal[0].start).UTC()
		if !a.lastStart.IsZero() && t0.Before(a.lastStart) {
			return fmt.Errorf("segment starts at %v, before already-merged data ending %v (segments must fold in trace order)",
				t0, a.lastStart)
		}
	}
	if a.start.IsZero() {
		if !a.opts.Start.IsZero() {
			a.start = a.opts.Start
		} else {
			a.start = sub.start
		}
	}
	if len(sub.journal) > 0 && a.start.IsZero() {
		return errors.New("journal entries present but no segment so far has a start time")
	}

	a.total += sub.total
	a.errors += sub.errors
	for oi := 0; oi < 2; oi++ {
		for ci := 0; ci < device.NClasses; ci++ {
			a.refs[oi][ci] += sub.refs[oi][ci]
			a.bytes[oi][ci] += sub.bytes[oi][ci]
			a.latency[oi][ci].n += sub.latency[oi][ci].n
			a.latency[oi][ci].micros += sub.latency[oi][ci].micros
		}
	}
	a.foldLatCDF(sub)

	remap := a.remapIDs(sub)
	for k := range sub.journal {
		e := &sub.journal[k]
		opIdx, op := 0, trace.Read
		if e.write {
			opIdx, op = 1, trace.Write
		}
		t := time.Unix(0, e.start).UTC()
		a.addDerived(t, opIdx, e.size)
		a.addInterval(t)
		a.addFileAccessID(remap[e.id], op, t, units.Bytes(e.size))
	}
	return nil
}

// FoldPartials merges any number of segments into a fresh master: the
// position-independent state — record and error counts, the op×class
// accumulators, the startup-latency CDFs — folds by addition in any
// order, and the segments' journals are then merged into one global
// time order and replayed through the per-record transitions the slice
// path runs. Unlike Fold and FoldReplay, the segments' record-time
// ranges may interleave arbitrarily — a live daemon's batches arrive
// from concurrent clients in no particular order, and a late single
// event may split an already-extended segment's range — provided the
// records themselves are distinct instants; ties across segments replay
// in the given segment order. Master file IDs are assigned in replay
// order, exactly as a single process reading the merged trace would.
func (a *Accumulator) FoldPartials(ps []*Partial) error {
	if a.total != 0 {
		return errors.New("core: FoldPartials merges into a fresh accumulator")
	}
	entries := 0
	for i, p := range ps {
		sub := p.acc
		if sub.opts.DedupWindow != a.opts.DedupWindow {
			return fmt.Errorf("core: segment %d dedup window %v disagrees with the master's %v",
				i, sub.opts.DedupWindow, a.opts.DedupWindow)
		}
		entries += len(sub.journal)
	}

	// Anchor the calendar origin the way the slice path does: from the
	// explicit option, else from the earliest segment's own anchor —
	// which that segment resolved from its first record, errors
	// included.
	if !a.opts.Start.IsZero() {
		a.start = a.opts.Start
	} else {
		var first time.Time
		for _, p := range ps {
			if p.first.IsZero() {
				continue
			}
			if first.IsZero() || p.first.Before(first) {
				first = p.first
				a.start = p.acc.start
			}
		}
	}
	if entries > 0 && a.start.IsZero() {
		return errors.New("core: journal entries present but no segment has a start time")
	}

	for _, p := range ps {
		sub := p.acc
		a.total += sub.total
		a.errors += sub.errors
		for oi := 0; oi < 2; oi++ {
			for ci := 0; ci < device.NClasses; ci++ {
				a.refs[oi][ci] += sub.refs[oi][ci]
				a.bytes[oi][ci] += sub.bytes[oi][ci]
				a.latency[oi][ci].n += sub.latency[oi][ci].n
				a.latency[oi][ci].micros += sub.latency[oi][ci].micros
			}
		}
		a.foldLatCDF(sub)
	}

	// Merge-replay the journals. The heap orders by (start, segment
	// index); within one segment the journal is already in record order,
	// so only each segment's next entry competes. File IDs intern
	// lazily, on first appearance in the merged order.
	h := make(journalHeap, 0, len(ps))
	for si, p := range ps {
		if len(p.acc.journal) > 0 {
			h = append(h, journalCursor{si: si, start: p.acc.journal[0].start})
		}
	}
	heap.Init(&h)
	remap := make([][]trace.FileID, len(ps))
	seen := make([][]bool, len(ps))
	for si, p := range ps {
		remap[si] = make([]trace.FileID, p.acc.interner.Len())
		seen[si] = make([]bool, p.acc.interner.Len())
	}
	for len(h) > 0 {
		cur := &h[0]
		sub := ps[cur.si].acc
		e := &sub.journal[cur.k]
		op := trace.Read
		opIdx := 0
		if e.write {
			op, opIdx = trace.Write, 1
		}
		t := time.Unix(0, e.start).UTC()
		id := remap[cur.si][e.id]
		if !seen[cur.si][e.id] {
			id = a.internFile(sub.interner.Path(e.id))
			remap[cur.si][e.id] = id
			seen[cur.si][e.id] = true
		}
		a.addDerived(t, opIdx, e.size)
		a.addInterval(t)
		a.addFileAccessID(id, op, t, units.Bytes(e.size))
		if cur.k++; cur.k < len(sub.journal) {
			cur.start = sub.journal[cur.k].start
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// journalCursor is one segment's replay position in the merge heap.
type journalCursor struct {
	start int64 // the segment's next entry's start, UnixNano
	si    int   // segment index, the tie-break
	k     int   // next journal index
}

// journalHeap is a min-heap of journal cursors by (start, segment).
type journalHeap []journalCursor

func (h journalHeap) Len() int { return len(h) }
func (h journalHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].si < h[j].si
}
func (h journalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *journalHeap) Push(x any)   { *h = append(*h, x.(journalCursor)) }
func (h *journalHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// foldLatCDF folds the segment's Figure 3 latency CDFs into the master.
func (a *Accumulator) foldLatCDF(sub *Accumulator) {
	for ci, c := range sub.latCDF {
		if c == nil {
			continue
		}
		m := a.latCDF[ci]
		if m == nil {
			m = &stats.CDF{}
			a.latCDF[ci] = m
		}
		m.Merge(c)
	}
}

// remapIDs interns a segment's path table into the master in table
// order, returning the segment→master FileID translation. Table order
// is first-seen order within the segment, so folding segments in time
// order keeps the master's ID assignment identical to a single-process
// run over the concatenated records.
func (a *Accumulator) remapIDs(sub *Accumulator) []trace.FileID {
	remap := make([]trace.FileID, sub.interner.Len())
	for i := range remap {
		remap[i] = a.internFile(sub.interner.Path(trace.FileID(i)))
	}
	return remap
}
