package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"filemig/internal/trace"
	"filemig/internal/workload"
)

// encodeB2Blocks encodes records as a b2 trace cut into blocks of the
// given size, so index-seek tests get many blocks from a modest
// fixture. The epoch is the first record's start, as WriteAllFormat
// uses.
func encodeB2Blocks(t *testing.T, recs []trace.Record, perBlock int) []byte {
	t.Helper()
	if len(recs) == 0 {
		t.Fatal("encodeB2Blocks needs records")
	}
	var buf bytes.Buffer
	w := trace.NewB2WriterEpochBlock(&buf, recs[0].Start, perBlock)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openB2 opens an encoded b2 trace seekably, with a fresh decode
// counter.
func openB2(t *testing.T, enc []byte) *trace.B2File {
	t.Helper()
	f, err := trace.OpenB2File(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatalf("OpenB2File: %v", err)
	}
	return f
}

// TestB2Equivalence is the acceptance test for the b2 analysis paths:
// every format (ascii, b1, b2), through both the slice and the stream
// analysis, and the b2 index-seek path at every worker count and shard
// width, must render byte-identical tables and figures — and the
// index-seek path must decode each block exactly once, with zero
// decodes spent on planning.
func TestB2Equivalence(t *testing.T) {
	res := streamFixture(t)

	// Each codec quantizes times onto its wire grid, so every comparison
	// is against the slice path over the records as decoded from that
	// same encoding.
	sliceWant := func(enc []byte) string {
		recs, err := trace.ReadAll(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		slice := New(Options{})
		slice.AddAll(recs)
		return renderAll(slice.Report())
	}

	// Sequential stream analysis over each encoded format.
	for _, f := range []trace.Format{trace.FormatASCII, trace.FormatBinary, trace.FormatB2} {
		var encf bytes.Buffer
		if err := trace.WriteAllFormat(&encf, res.Records, f); err != nil {
			t.Fatal(err)
		}
		want := sliceWant(encf.Bytes())
		src, err := trace.OpenStream(bytes.NewReader(encf.Bytes()))
		if err != nil {
			t.Fatalf("%v: OpenStream: %v", f, err)
		}
		rep, err := AnalyzeStream(context.Background(), StreamOptions{Workers: 2, ShardDuration: 9 * 24 * time.Hour}, src)
		if err != nil {
			t.Fatalf("%v: AnalyzeStream: %v", f, err)
		}
		if got := renderAll(rep); got != want {
			t.Fatalf("%v: stream analysis diverged from slice path:\n%s", f, firstDiff(want, got))
		}
	}

	// The index-seek path over a many-block encoding.
	enc := encodeB2Blocks(t, res.Records, 64)
	want := sliceWant(enc)
	for _, workers := range []int{1, 2, 8} {
		for _, shard := range []time.Duration{DefaultShardDuration, 24 * time.Hour, 3 * time.Hour} {
			t.Run(fmt.Sprintf("indexseek/workers=%d/shard=%v", workers, shard), func(t *testing.T) {
				f := openB2(t, enc)
				rep, err := AnalyzeB2(context.Background(), B2Options{StreamOptions: StreamOptions{
					Workers:       workers,
					ShardDuration: shard,
				}}, f)
				if err != nil {
					t.Fatalf("AnalyzeB2: %v", err)
				}
				if got := renderAll(rep); got != want {
					t.Fatalf("index-seek analysis diverged from slice path:\n%s", firstDiff(want, got))
				}
				if got, blocks := f.DecodeCount(), int64(f.NumBlocks()); got != blocks {
					t.Fatalf("decoded %d blocks, want each of %d exactly once", got, blocks)
				}
			})
		}
	}

	// The parallel block stream feeding the ordinary stream analysis.
	f := openB2(t, enc)
	rep, err := AnalyzeStream(context.Background(), StreamOptions{Workers: 4, ShardDuration: 13 * 24 * time.Hour}, f.Stream(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(rep); got != want {
		t.Fatalf("parallel block stream diverged from slice path:\n%s", firstDiff(want, got))
	}
}

// TestB2IndexSeekSkipsBlocks proves the shard cutter plans from the
// index alone: opening decodes nothing, and a windowed analysis never
// decodes a block outside the window — the decode counter is exactly
// the overlapping block count when the origin is given, at most one
// more when it must be derived.
func TestB2IndexSeekSkipsBlocks(t *testing.T) {
	res := streamFixture(t)
	enc := encodeB2Blocks(t, res.Records, 50)
	// The window filter sees wire-quantized times, so the expectation is
	// built from the records as decoded.
	recs, err := trace.ReadAll(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}

	from := recs[len(recs)/3].Start
	to := recs[2*len(recs)/3].Start
	var sub []trace.Record
	for _, r := range recs {
		if !r.Start.Before(from) && r.Start.Before(to) {
			sub = append(sub, r)
		}
	}
	if len(sub) < 500 {
		t.Fatalf("window keeps only %d records", len(sub))
	}
	slice := New(Options{})
	slice.AddAll(sub)
	want := renderAll(slice.Report())
	origin := sub[0].Start.Truncate(24 * time.Hour)

	probe := openB2(t, enc)
	if got := probe.DecodeCount(); got != 0 {
		t.Fatalf("opening the file decoded %d blocks", got)
	}
	overlap := 0
	for i := 0; i < probe.NumBlocks(); i++ {
		m := probe.Meta(i)
		if !m.End.Before(from) && m.Base.Before(to) {
			overlap++
		}
	}
	if skipped := probe.NumBlocks() - overlap; skipped < 10 {
		t.Fatalf("fixture leaves only %d skippable blocks of %d", skipped, probe.NumBlocks())
	}

	for _, workers := range []int{1, 8} {
		// Derived origin: one extra decode of the first overlapping block.
		f := openB2(t, enc)
		rep, err := AnalyzeB2(context.Background(), B2Options{
			StreamOptions: StreamOptions{Workers: workers, ShardDuration: 5 * 24 * time.Hour},
			From:          from, To: to,
		}, f)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderAll(rep); got != want {
			t.Fatalf("workers=%d: windowed analysis diverged from the filtered slice:\n%s",
				workers, firstDiff(want, got))
		}
		if got := f.DecodeCount(); got > int64(overlap)+1 {
			t.Fatalf("workers=%d: decoded %d blocks for %d overlapping the window", workers, got, overlap)
		}

		// Explicit origin: exactly the overlapping blocks, nothing else.
		f = openB2(t, enc)
		rep, err = AnalyzeB2(context.Background(), B2Options{
			StreamOptions: StreamOptions{
				Options: Options{Start: origin},
				Workers: workers, ShardDuration: 5 * 24 * time.Hour,
			},
			From: from, To: to,
		}, f)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderAll(rep); got != want {
			t.Fatalf("workers=%d: explicit-origin windowed analysis diverged:\n%s",
				workers, firstDiff(want, got))
		}
		if got := f.DecodeCount(); got != int64(overlap) {
			t.Fatalf("workers=%d: decoded %d blocks, want exactly the %d overlapping the window",
				workers, got, overlap)
		}
	}

	// An empty window decodes nothing at all.
	f := openB2(t, enc)
	rep, err := AnalyzeB2(context.Background(), B2Options{
		StreamOptions: StreamOptions{Workers: 4},
		From:          recs[len(recs)-1].Start.Add(time.Hour),
	}, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table3.GrandTotal != 0 {
		t.Fatalf("empty window produced %d records", rep.Table3.GrandTotal)
	}
	if got := f.DecodeCount(); got != 0 {
		t.Fatalf("empty window decoded %d blocks", got)
	}
}

// TestB2SnapshotEquivalence pins the distributed-run contract: the
// index-seek path with the journal enabled serializes the exact same s1
// snapshot bytes as the sequential streaming path.
func TestB2SnapshotEquivalence(t *testing.T) {
	res := streamFixture(t)
	opts := Options{DedupWindow: workload.DedupWindow, Journal: true}
	enc := encodeB2Blocks(t, res.Records, 64)
	recs, err := trace.ReadAll(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}

	a1, err := AccumulateStream(context.Background(), StreamOptions{Options: opts, Workers: 3},
		trace.SliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	var s1 bytes.Buffer
	if err := a1.WriteSnapshot(&s1); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		f := openB2(t, enc)
		a2, err := AccumulateB2(context.Background(), B2Options{StreamOptions: StreamOptions{
			Options: opts, Workers: workers,
		}}, f)
		if err != nil {
			t.Fatal(err)
		}
		var s2 bytes.Buffer
		if err := a2.WriteSnapshot(&s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("workers=%d: index-seek snapshot differs from the streamed snapshot", workers)
		}
	}
}

// TestB2AnalyzeErrorsDeterministic corrupts one block and checks every
// worker count reports the same earliest failing block.
func TestB2AnalyzeErrorsDeterministic(t *testing.T) {
	res := streamFixture(t)
	enc := encodeB2Blocks(t, res.Records, 50)
	probe := openB2(t, enc)
	if probe.NumBlocks() < 8 {
		t.Fatalf("fixture has only %d blocks", probe.NumBlocks())
	}

	// Flip a byte inside block 5's body; the frame CRC catches it.
	mut := append([]byte(nil), enc...)
	mut[b2BlockBodyOffset(t, enc, 5)] ^= 0x40

	var msgs []string
	for _, workers := range []int{1, 2, 8} {
		f := openB2(t, mut)
		_, err := AnalyzeB2(context.Background(), B2Options{StreamOptions: StreamOptions{Workers: workers}}, f)
		if err == nil {
			t.Fatalf("workers=%d: corrupt block accepted", workers)
		}
		if !strings.Contains(err.Error(), "block 5") {
			t.Fatalf("workers=%d: error does not name the failing block: %v", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("error differs across worker counts:\n%q\n%q", msgs[0], m)
		}
	}
}

// b2BlockBodyOffset walks the documented frame layout — a one-line
// header, then framed sections of tag byte, uvarint body length, body,
// and 4-byte CRC (docs/trace-format.md) — and returns an offset in the
// middle of block i's body.
func b2BlockBodyOffset(t *testing.T, enc []byte, i int) int {
	t.Helper()
	off := bytes.IndexByte(enc, '\n') + 1
	for b := 0; ; b++ {
		if off >= len(enc) || enc[off] != 0x01 {
			t.Fatalf("no block frame at offset %d (looking for block %d)", off, i)
		}
		n, k := binary.Uvarint(enc[off+1:])
		if k <= 0 {
			t.Fatalf("bad frame length at offset %d", off)
		}
		if b == i {
			return off + 1 + k + int(n)/2
		}
		off += 1 + k + int(n) + 4
	}
}
