package core

import (
	"fmt"
	"strings"

	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// This file renders each table and figure the way the paper prints them:
// Table 3's rows with read/write/total columns and percentages, and each
// figure as the series of (x, cumulative %) or (x, rate) points one would
// plot.

// RenderTable3 prints the overall trace statistics like the paper's
// Table 3.
func RenderTable3(t Table3) string {
	var b strings.Builder
	pct := func(part, whole int64) string {
		if whole == 0 {
			return "(—)"
		}
		return fmt.Sprintf("(%.0f%%)", 100*float64(part)/float64(whole))
	}
	pctF := func(part, whole units.Bytes) string {
		if whole == 0 {
			return "(—)"
		}
		return fmt.Sprintf("(%.0f%%)", 100*float64(part)/float64(whole))
	}
	total := t.Total()
	readT, writeT := t.OpTotal(trace.Read), t.OpTotal(trace.Write)

	fmt.Fprintf(&b, "%-22s %16s %8s %16s %8s %16s\n", "", "Reads", "", "Writes", "", "Total")
	fmt.Fprintf(&b, "%-22s %16d %8s %16d %8s %16d\n", "References",
		readT.Refs, pct(readT.Refs, total.Refs),
		writeT.Refs, pct(writeT.Refs, total.Refs), total.Refs)
	for _, dev := range RefDevices {
		dt := t.DevTotal(dev)
		fmt.Fprintf(&b, "  %-20s %16d %8s %16d %8s %16d %8s\n", dev,
			t.Cells[trace.Read][dev].Refs, pct(t.Cells[trace.Read][dev].Refs, dt.Refs),
			t.Cells[trace.Write][dev].Refs, pct(t.Cells[trace.Write][dev].Refs, dt.Refs),
			dt.Refs, pct(dt.Refs, total.Refs))
	}
	fmt.Fprintf(&b, "%-22s %16.1f %8s %16.1f %8s %16.1f\n", "GB transferred",
		readT.Bytes.GB(), pctF(readT.Bytes, total.Bytes),
		writeT.Bytes.GB(), pctF(writeT.Bytes, total.Bytes), total.Bytes.GB())
	for _, dev := range RefDevices {
		dt := t.DevTotal(dev)
		fmt.Fprintf(&b, "  %-20s %16.1f %8s %16.1f %8s %16.1f %8s\n", dev,
			t.Cells[trace.Read][dev].Bytes.GB(), pctF(t.Cells[trace.Read][dev].Bytes, dt.Bytes),
			t.Cells[trace.Write][dev].Bytes.GB(), pctF(t.Cells[trace.Write][dev].Bytes, dt.Bytes),
			dt.Bytes.GB(), pctF(dt.Bytes, total.Bytes))
	}
	fmt.Fprintf(&b, "%-22s %16.2f %8s %16.2f %8s %16.2f\n", "Avg. file size (MB)",
		readT.AvgFileSize().MB(), "", writeT.AvgFileSize().MB(), "", total.AvgFileSize().MB())
	for _, dev := range RefDevices {
		dt := t.DevTotal(dev)
		fmt.Fprintf(&b, "  %-20s %16.2f %8s %16.2f %8s %16.2f\n", dev,
			t.Cells[trace.Read][dev].AvgFileSize().MB(), "",
			t.Cells[trace.Write][dev].AvgFileSize().MB(), "", dt.AvgFileSize().MB())
	}
	fmt.Fprintf(&b, "%-22s %16.1f %8s %16.1f %8s %16.1f\n", "Secs to first byte",
		readT.MeanLatency.Seconds(), "", writeT.MeanLatency.Seconds(), "", total.MeanLatency.Seconds())
	for _, dev := range RefDevices {
		dt := t.DevTotal(dev)
		fmt.Fprintf(&b, "  %-20s %16.1f %8s %16.1f %8s %16.1f\n", dev,
			t.Cells[trace.Read][dev].MeanLatency.Seconds(), "",
			t.Cells[trace.Write][dev].MeanLatency.Seconds(), "", dt.MeanLatency.Seconds())
	}
	fmt.Fprintf(&b, "%-22s %16d (%.2f%% of %d)\n", "Error references",
		t.ErrorRefs, 100*float64(t.ErrorRefs)/float64(maxI64(t.GrandTotal, 1)), t.GrandTotal)
	return b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RenderTable4 prints the file-store summary like the paper's Table 4.
func RenderTable4(t Table4) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %16d\n", "Number of files", t.NumFiles)
	fmt.Fprintf(&b, "%-28s %16s\n", "Average file size", t.AvgFileSize)
	fmt.Fprintf(&b, "%-28s %16d\n", "Number of directories", t.NumDirs)
	fmt.Fprintf(&b, "%-28s %10d files\n", "Largest directory", t.LargestDir)
	fmt.Fprintf(&b, "%-28s %16d\n", "Maximum directory depth", t.MaxDepth)
	fmt.Fprintf(&b, "%-28s %16s\n", "Total data in MSS", t.TotalData)
	fmt.Fprintf(&b, "%-28s %15.0f%%\n", "Metadata never rereferenced", 100*t.NeverReread)
	return b.String()
}

// RenderCDF prints a CDF sampled at the given points with a label/unit.
func RenderCDF(name string, c interface{ P(float64) float64 }, xs []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	for _, x := range xs {
		fmt.Fprintf(&b, "  %12g %-8s %6.1f%%\n", x, unit, 100*c.P(x))
	}
	return b.String()
}

// RenderFigure3 prints the latency CDFs at the paper's 0-400 s range.
func RenderFigure3(r *Report) string {
	xs := []float64{5, 10, 25, 50, 100, 200, 300, 400}
	var b strings.Builder
	b.WriteString("Figure 3: latency to first byte (cumulative % of requests)\n")
	fmt.Fprintf(&b, "  %8s", "secs")
	for _, dev := range RefDevices {
		fmt.Fprintf(&b, " %10s", dev)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "  %8g", x)
		for _, dev := range RefDevices {
			c := r.Figure3[dev]
			if c == nil {
				fmt.Fprintf(&b, " %10s", "—")
				continue
			}
			fmt.Fprintf(&b, " %9.1f%%", 100*c.P(x))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure4 prints the hourly profile.
func RenderFigure4(f Figure4) string {
	var b strings.Builder
	b.WriteString("Figure 4: average GB transferred per hour of day\n")
	fmt.Fprintf(&b, "  %4s %10s %10s %10s\n", "hour", "reads", "writes", "total")
	for h := 0; h < 24; h++ {
		fmt.Fprintf(&b, "  %4d %10.3f %10.3f %10.3f\n", h, f.ReadRate(h), f.WriteRate(h), f.Rate(h))
	}
	return b.String()
}

// RenderFigure5 prints the weekday profile.
func RenderFigure5(f Figure5) string {
	names := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	var b strings.Builder
	b.WriteString("Figure 5: average GB/hour by day of week\n")
	fmt.Fprintf(&b, "  %4s %10s %10s %10s\n", "day", "reads", "writes", "total")
	for d := 0; d < 7; d++ {
		fmt.Fprintf(&b, "  %4s %10.3f %10.3f %10.3f\n", names[d],
			f.ReadRate(d), f.WriteRate(d), f.ReadRate(d)+f.WriteRate(d))
	}
	return b.String()
}

// RenderFigure6 prints the weekly series.
func RenderFigure6(f Figure6) string {
	var b strings.Builder
	b.WriteString("Figure 6: weekly average transfer rate (GB/hour)\n")
	fmt.Fprintf(&b, "  %5s %10s %10s %10s\n", "week", "reads", "writes", "total")
	for _, w := range f.Weeks {
		fmt.Fprintf(&b, "  %5d %10.3f %10.3f %10.3f\n", w.Week, w.ReadGBh, w.WriteGBh, w.ReadGBh+w.WriteGBh)
	}
	return b.String()
}

// RenderFigure7 prints the inter-request interval CDF.
func RenderFigure7(c *stats.CDF) string {
	return RenderCDF("Figure 7: intervals between MSS requests",
		c, []float64{1, 2, 5, 10, 30, 60, 100, 400}, "sec")
}

// RenderFigure8 prints the reference-count distribution and headline
// fractions.
func RenderFigure8(f Figure8) string {
	var b strings.Builder
	b.WriteString("Figure 8: per-file reference counts (8-hour dedup)\n")
	fmt.Fprintf(&b, "  files analysed            %12d\n", f.Files)
	fmt.Fprintf(&b, "  never read                %11.1f%%\n", 100*f.ZeroReadFrac)
	fmt.Fprintf(&b, "  read exactly once         %11.1f%%\n", 100*f.OneReadFrac)
	fmt.Fprintf(&b, "  never written             %11.1f%%\n", 100*f.ZeroWriteFrac)
	fmt.Fprintf(&b, "  written exactly once      %11.1f%%\n", 100*f.OneWriteFrac)
	fmt.Fprintf(&b, "  accessed exactly once     %11.1f%%\n", 100*f.ExactlyOnceFrac)
	fmt.Fprintf(&b, "  accessed exactly twice    %11.1f%%\n", 100*f.ExactlyTwiceFrac)
	fmt.Fprintf(&b, "  write-once-never-read     %11.1f%%\n", 100*f.WriteOnceNeverReadFrac)
	fmt.Fprintf(&b, "  more than ten references  %11.1f%%\n", 100*f.MoreThanTenFrac)
	for _, x := range []float64{1, 2, 5, 10, 100, 250} {
		fmt.Fprintf(&b, "  refs <= %-6g reads %5.1f%%  writes %5.1f%%  total %5.1f%%\n",
			x, 100*f.Reads.P(x), 100*f.Writes.P(x), 100*f.Total.P(x))
	}
	return b.String()
}

// RenderFigure9 prints the per-file interreference interval CDF.
func RenderFigure9(c *stats.CDF) string {
	return RenderCDF("Figure 9: intervals between successive references to the same file",
		c, []float64{1, 10, 30, 100, 300}, "days")
}

// RenderFigure10 prints the dynamic size distributions.
func RenderFigure10(f Figure10) string {
	xs := []float64{0.1e6, 1e6, 8e6, 10e6, 30e6, 100e6, 200e6}
	var b strings.Builder
	b.WriteString("Figure 10: size distribution of transfers (per access)\n")
	fmt.Fprintf(&b, "  %8s %11s %13s %10s %12s\n", "MB", "files read", "files written", "data read", "data written")
	for _, x := range xs {
		fmt.Fprintf(&b, "  %8.1f %10.1f%% %12.1f%% %9.1f%% %11.1f%%\n", x/1e6,
			100*f.FilesRead.P(x), 100*f.FilesWritten.P(x),
			100*f.DataRead.P(x), 100*f.DataWritten.P(x))
	}
	return b.String()
}

// RenderFigure11 prints the static size distributions.
func RenderFigure11(f Figure11) string {
	xs := []float64{0.02e6, 0.1e6, 1e6, 3e6, 10e6, 100e6, 200e6}
	var b strings.Builder
	b.WriteString("Figure 11: distribution of file sizes on the MSS (per file)\n")
	fmt.Fprintf(&b, "  %8s %10s %10s\n", "MB", "files", "data")
	for _, x := range xs {
		fmt.Fprintf(&b, "  %8.2f %9.1f%% %9.1f%%\n", x/1e6, 100*f.Files.P(x), 100*f.Data.P(x))
	}
	return b.String()
}

// RenderFigure12 prints the directory size distributions.
func RenderFigure12(f Figure12) string {
	xs := []float64{1, 10, 100, 1000, 10000, 100000}
	var b strings.Builder
	b.WriteString("Figure 12: distribution of directory sizes (files per directory)\n")
	fmt.Fprintf(&b, "  %8s %10s %10s %10s\n", "files", "dirs", "files", "data")
	for _, x := range xs {
		fmt.Fprintf(&b, "  %8g %9.1f%% %9.1f%% %9.1f%%\n", x,
			100*f.Dirs.P(x), 100*f.Files.P(x), 100*f.Data.P(x))
	}
	return b.String()
}

// RenderPeriodicity prints the dominant periods of the request stream.
func RenderPeriodicity(r *Report) string {
	periods := r.DominantPeriods(4)
	var b strings.Builder
	b.WriteString("Periodicity of MSS requests (dominant periods, hours):")
	for _, p := range periods {
		fmt.Fprintf(&b, " %.0f", p)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderReport concatenates every rendered table and figure — the whole
// report as one string, in the paper's order. The CLI's full output and
// the daemon's /v1/report endpoint both render through here, which is
// what lets the equivalence tests compare whole reports byte for byte.
func RenderReport(r *Report) string {
	return RenderTable3(r.Table3) +
		RenderTable4(r.Table4) +
		RenderFigure3(r) +
		RenderFigure4(r.Figure4) +
		RenderFigure5(r.Figure5) +
		RenderFigure6(r.Figure6) +
		RenderFigure7(r.Figure7) +
		RenderFigure8(r.Figure8) +
		RenderFigure9(r.Figure9) +
		RenderFigure10(r.Figure10) +
		RenderFigure11(r.Figure11) +
		RenderFigure12(r.Figure12) +
		RenderPeriodicity(r)
}
