package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
)

// The s1 analysis-snapshot codec: a serialized Analysis that any number
// of processes can produce over slices of a trace and a reducer can
// merge into a result byte-identical to one process analysing the whole
// trace — the map-reduce shape of the sharded in-process path
// (AnalyzeStream) carried across process and machine boundaries. The
// full wire layout is specified in docs/snapshots.md; briefly, after a
// one-line ASCII header ("#filemig-trace b1"'s sibling,
// "#filemig-snapshot s1") a snapshot carries
//
//	meta      start time, dedup window, total/error counts
//	sums      the op×class accumulators (references, bytes, latency)
//	latency   one serialized CDF per device class (Figure 3)
//	interner  the path table, FileID-dense in first-seen order
//	journal   one (fileID, op, Δstart, size) entry per good reference
//
// Two facts shape the format. First, per-file dedup survival (§5.3)
// does not compose from end states: earlier history can flip which of a
// later shard's accesses survive arbitrarily deep into the shard, and
// Figure 9's interreference gaps must interleave across files in global
// record order — so the journal, not the per-file arena, is the
// serialized truth, and loading rebuilds the arena (plus everything
// else derivable from (time, op, size): the calendar and periodicity
// series, Figures 7 and 10) by replaying it through the exact code the
// slice path runs. Second, what is not derivable from the journal — the
// device-class split and the startup latencies — is serialized
// directly, and doubles as an integrity check: the op×class reference
// sums must equal the journal length, so a truncated or tampered
// snapshot fails to load instead of skewing the merged report.

// snapHasStart marks a snapshot whose analysis has seen at least one
// record and therefore carries its resolved calendar origin. The
// remaining flag bits are reserved and must be zero.
const snapHasStart = 1 << 0

// maxSnapshotPathLen bounds interned path fields, matching the b1 trace
// codec's limit.
const maxSnapshotPathLen = 1 << 16

// maxSnapshotBlobLen bounds the length prefix of a serialized CDF
// section. Reading is chunked, so this is a sanity bound on the length
// field, not an allocation.
const maxSnapshotBlobLen = 1 << 40

// WriteSnapshot serializes the analysis accumulated so far in the s1
// format. It requires Options.Journal (the reference journal is the
// serialized source of per-file truth) and refuses an analysis carrying
// a namespace Tree, which is not serializable. Snapshots are typically
// written instead of reporting: a Report call is harmless but re-orders
// CDF samples in place, so only an unreported analysis re-saves
// byte-identically.
func (a *Analysis) WriteSnapshot(w io.Writer) error {
	if !a.opts.Journal {
		return errors.New("core: WriteSnapshot needs Options.Journal set from the start of the analysis")
	}
	if a.opts.Tree != nil {
		return errors.New("core: an analysis with a namespace Tree cannot be snapshotted (trees are not serialized)")
	}
	ww := trace.NewWireWriter(w)
	ww.Raw([]byte(trace.SnapshotHeader))
	ww.Byte('\n')

	var flags byte
	if !a.start.IsZero() {
		flags |= snapHasStart
	}
	ww.Byte(flags)
	if !a.start.IsZero() {
		ww.Svarint(a.start.UnixNano())
	}
	ww.Uvarint(uint64(a.opts.DedupWindow))
	ww.Uvarint(uint64(device.NClasses))
	ww.Uvarint(uint64(a.total))
	ww.Uvarint(uint64(a.errors))

	for oi := 0; oi < 2; oi++ {
		for ci := 0; ci < device.NClasses; ci++ {
			ww.Uvarint(uint64(a.refs[oi][ci]))
			ww.Uvarint(uint64(a.bytes[oi][ci]))
			ww.Uvarint(uint64(a.latency[oi][ci].n))
			ww.Uvarint(uint64(a.latency[oi][ci].micros))
		}
	}

	var blob []byte
	for ci := range a.latCDF {
		blob = blob[:0]
		if c := a.latCDF[ci]; c != nil {
			blob, _ = c.AppendBinary(blob) // error is always nil
		}
		ww.Bytes(blob)
	}

	ww.Uvarint(uint64(a.interner.Len()))
	for i := 0; i < a.interner.Len(); i++ {
		ww.String(a.interner.Path(trace.FileID(i)))
	}

	ww.Uvarint(uint64(len(a.journal)))
	var prev int64
	for k := range a.journal {
		e := &a.journal[k]
		idOp := uint64(e.id) << 1
		if e.write {
			idOp |= 1
		}
		ww.Uvarint(idOp)
		if k == 0 {
			ww.Svarint(e.start)
		} else {
			if e.start < prev {
				return fmt.Errorf("core: journal out of time order at entry %d", k+1)
			}
			ww.Uvarint(uint64(e.start - prev))
		}
		if e.size < 0 {
			return fmt.Errorf("core: journal entry %d has negative size %d", k+1, e.size)
		}
		ww.Uvarint(uint64(e.size))
		prev = e.start
	}
	return ww.Flush()
}

// ReadSnapshot loads one s1 snapshot into a fresh Analysis, replaying
// its journal so the result is state-identical to the analysis that was
// saved — Report renders the same bytes, further records can be fed
// with Add, and the journal stays enabled so the analysis can be
// re-snapshotted.
func ReadSnapshot(r io.Reader) (*Analysis, error) {
	return MergeSnapshots(r)
}

// MergeSnapshots loads any number of s1 snapshots — in trace time
// order, each covering a disjoint contiguous slice — and merges them
// into one Analysis whose rendered Report is byte-identical to a single
// process analysing the concatenated trace. Slice boundaries need not
// respect the dedup window or any shard width, and the snapshot
// producers need not have agreed on a calendar origin: the first
// snapshot's resolved origin anchors the merge, exactly as the first
// record anchors a single-process run. Dedup windows must agree across
// snapshots. On any decode or validation error the partial merge is
// discarded.
func MergeSnapshots(rs ...io.Reader) (*Analysis, error) {
	if len(rs) == 0 {
		return nil, errors.New("core: MergeSnapshots needs at least one snapshot")
	}
	sm := NewSnapshotMerger()
	for _, r := range rs {
		if err := sm.Add(r); err != nil {
			return nil, err
		}
	}
	return sm.Analysis()
}

// SnapshotMerger is MergeSnapshots for callers that receive snapshots
// one at a time — the distributed coordinator folds each arriving shard
// snapshot immediately instead of buffering them all. Snapshots must be
// Added in trace time order; the first snapshot's resolved origin
// anchors the merge. After any Add error the merger is poisoned and
// every later call fails the same way.
type SnapshotMerger struct {
	a    *Analysis
	n    int
	fail error
}

// NewSnapshotMerger returns an empty merger.
func NewSnapshotMerger() *SnapshotMerger {
	return &SnapshotMerger{a: New(Options{Journal: true})}
}

// Add folds the next snapshot in trace order.
func (sm *SnapshotMerger) Add(r io.Reader) error {
	if sm.fail != nil {
		return sm.fail
	}
	if err := sm.a.mergeSnapshot(r, sm.n == 0); err != nil {
		sm.fail = fmt.Errorf("core: snapshot %d: %w", sm.n+1, err)
		return sm.fail
	}
	sm.n++
	return nil
}

// Count reports how many snapshots have been merged so far.
func (sm *SnapshotMerger) Count() int { return sm.n }

// Analysis returns the merged analysis — state-identical to a single
// process analysing the concatenated trace. It errors on an empty or
// poisoned merger.
func (sm *SnapshotMerger) Analysis() (*Analysis, error) {
	if sm.fail != nil {
		return nil, sm.fail
	}
	if sm.n == 0 {
		return nil, errors.New("core: no snapshots merged")
	}
	return sm.a, nil
}

// mergeSnapshot decodes one snapshot from r into a Partial and folds
// it into m through FoldReplay — the same origin-free fold the daemon's
// segments take. The master is untouched on any decode or validation
// error.
func (m *Analysis) mergeSnapshot(r io.Reader, first bool) error {
	p, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	if first {
		m.opts.DedupWindow = p.acc.opts.DedupWindow
	} else if m.opts.DedupWindow != p.acc.opts.DedupWindow {
		return fmt.Errorf("dedup window %v disagrees with first snapshot's %v",
			p.acc.opts.DedupWindow, m.opts.DedupWindow)
	}
	return m.FoldReplay(p)
}

// decodeSnapshot decodes one s1 snapshot into a segment Partial,
// validating structure and cross-checking the serialized sums against
// the journal as it goes. Nothing is replayed here: the returned
// segment holds the raw accumulators and the absolute-time journal, and
// FoldReplay recomputes everything derivable when the segment folds
// into a master.
func decodeSnapshot(r io.Reader) (*Partial, error) {
	wr := trace.NewWireReader(r)
	line, err := wr.Line()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if line != trace.SnapshotHeader {
		return nil, fmt.Errorf("not an s1 snapshot header: %.60q", line)
	}
	flags, err := wr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("flags: %w", unexpectEOF(err))
	}
	if flags&^byte(snapHasStart) != 0 {
		return nil, fmt.Errorf("reserved flag bits set (0x%02x)", flags)
	}
	var start time.Time
	if flags&snapHasStart != 0 {
		ns, err := wr.Svarint("start time")
		if err != nil {
			return nil, err
		}
		start = time.Unix(0, ns).UTC()
	}
	dw, err := wr.Uvarint("dedup window", math.MaxInt64)
	if err != nil {
		return nil, err
	}
	if dw == 0 {
		return nil, errors.New("dedup window must be positive")
	}
	nc, err := wr.Uvarint("device class count", 64)
	if err != nil {
		return nil, err
	}
	if int(nc) != device.NClasses {
		return nil, fmt.Errorf("snapshot has %d device classes, this build has %d", nc, device.NClasses)
	}
	total, err := wr.Uvarint("total references", math.MaxInt64)
	if err != nil {
		return nil, err
	}
	errRefs, err := wr.Uvarint("error references", math.MaxInt64)
	if err != nil {
		return nil, err
	}
	if errRefs > total {
		return nil, fmt.Errorf("%d error references exceed %d total", errRefs, total)
	}

	sub := New(Options{Journal: true, DedupWindow: time.Duration(dw)})
	sub.start = start
	sub.total = int64(total)
	sub.errors = int64(errRefs)

	// The op×class accumulators; their reference sum must match the
	// journal length below.
	var refsSum, latSum int64
	for oi := 0; oi < 2; oi++ {
		for ci := 0; ci < device.NClasses; ci++ {
			for _, f := range []struct {
				dst   *int64
				field string
			}{
				{&sub.refs[oi][ci], "references"},
				{&sub.bytes[oi][ci], "byte total"},
				{&sub.latency[oi][ci].n, "latency count"},
				{&sub.latency[oi][ci].micros, "latency total"},
			} {
				v, err := wr.Uvarint(f.field, math.MaxInt64)
				if err != nil {
					return nil, err
				}
				*f.dst = int64(v)
			}
			refsSum += sub.refs[oi][ci]
			latSum += sub.latency[oi][ci].n
		}
	}

	// Figure 3's per-class latency CDFs.
	var latSamples int64
	for ci := range sub.latCDF {
		blob, err := readBlob(wr, "latency cdf")
		if err != nil {
			return nil, err
		}
		if len(blob) == 0 {
			continue
		}
		c := &stats.CDF{}
		if err := c.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("latency cdf class %d: %w", ci, err)
		}
		if c.N() == 0 {
			return nil, fmt.Errorf("latency cdf class %d: present but empty", ci)
		}
		sub.latCDF[ci] = c
		latSamples += int64(c.N())
	}
	if latSamples != latSum {
		return nil, fmt.Errorf("latency cdfs hold %d samples, op×class counts say %d", latSamples, latSum)
	}

	// The interner table, in first-seen order, becomes the segment's own
	// table; FoldReplay re-interns it into the master in this same order.
	nPaths, err := wr.Uvarint("path count", 1<<32)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPaths; i++ {
		p, err := wr.Bytes("path", "path length", maxSnapshotPathLen)
		if err != nil {
			return nil, err
		}
		if len(p) == 0 {
			return nil, fmt.Errorf("path %d is empty", i)
		}
		sub.internFile(string(p))
	}

	// The journal, decoded to absolute times for replay at fold time.
	nEntries, err := wr.Uvarint("journal entry count", math.MaxInt64)
	if err != nil {
		return nil, err
	}
	if int64(nEntries) != refsSum {
		return nil, fmt.Errorf("journal holds %d entries, op×class references sum to %d", nEntries, refsSum)
	}
	if total != errRefs+uint64(refsSum) {
		return nil, fmt.Errorf("%d total references != %d errors + %d good", total, errRefs, refsSum)
	}
	sub.journal = make([]journalEntry, 0, capHint(nEntries))
	var prev int64
	seen := trace.FileID(0) // enforces dense first-seen ID order
	for k := uint64(0); k < nEntries; k++ {
		idOp, err := wr.Uvarint("journal file id", 1<<33-1)
		if err != nil {
			return nil, err
		}
		sid := trace.FileID(idOp >> 1)
		if uint64(sid) >= nPaths {
			return nil, fmt.Errorf("journal entry %d references path %d of %d", k+1, sid, nPaths)
		}
		if sid > seen {
			return nil, fmt.Errorf("journal entry %d breaks first-seen id order (%d after %d ids)", k+1, sid, seen)
		}
		if sid == seen {
			seen++
		}
		var at int64
		if k == 0 {
			at, err = wr.Svarint("journal start time")
			if err != nil {
				return nil, err
			}
		} else {
			dt, err := wr.Uvarint("journal time delta", math.MaxInt64)
			if err != nil {
				return nil, err
			}
			if prev > 0 && int64(dt) > math.MaxInt64-prev {
				return nil, fmt.Errorf("journal entry %d time overflows", k+1)
			}
			at = prev + int64(dt)
		}
		size, err := wr.Uvarint("journal size", math.MaxInt64)
		if err != nil {
			return nil, err
		}
		sub.journal = append(sub.journal, journalEntry{
			start: at, size: int64(size), id: sid, write: idOp&1 != 0})
		prev = at
	}
	if uint64(seen) != nPaths {
		return nil, fmt.Errorf("interner table has %d paths but the journal references only %d", nPaths, seen)
	}
	if err := wr.ExpectEOF(); err != nil {
		return nil, err
	}
	return PartialFromSnapshot(sub, time.Time{}, time.Time{})
}

// readBlob reads one length-prefixed binary section in window-sized
// chunks, so a corrupt length prefix cannot force a large allocation
// before the stream runs dry.
func readBlob(wr *trace.WireReader, field string) ([]byte, error) {
	n, err := wr.Uvarint(field+" length", maxSnapshotBlobLen)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, capHint(n))
	for remaining := n; remaining > 0; {
		chunk := remaining
		if chunk > 1<<15 {
			chunk = 1 << 15
		}
		b, err := wr.Fixed(field, int(chunk))
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
		remaining -= chunk
	}
	return out, nil
}

// capHint bounds a pre-allocation by a declared-but-unverified count.
func capHint(n uint64) int {
	if n > 1<<16 {
		return 1 << 16
	}
	return int(n)
}

// unexpectEOF converts a clean EOF into io.ErrUnexpectedEOF for fields
// that must be present.
func unexpectEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
