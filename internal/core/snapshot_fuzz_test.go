package core

import (
	"bytes"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// fuzzSeedRecords builds a tiny hand-written trace exercising both ops,
// several device classes, an error record, repeated paths (dedup), and
// a startup latency, so the seed snapshots cover every codec section.
func fuzzSeedRecords() []trace.Record {
	at := func(h int) time.Time { return trace.Epoch.Add(time.Duration(h) * time.Hour) }
	return []trace.Record{
		{Start: at(0), Op: trace.Write, Device: device.ClassDisk, Size: 1 << 20,
			Startup: 4 * time.Second, MSSPath: "/mss/u1/a", LocalPath: "/tmp/a", UserID: 7},
		{Start: at(1), Op: trace.Read, Device: device.ClassSiloTape, Size: 3 << 20,
			Startup: 85 * time.Second, MSSPath: "/mss/u1/a", LocalPath: "/tmp/a", UserID: 7},
		{Start: at(2), Op: trace.Read, Device: device.ClassManualTape, Size: 2 << 10,
			Err: trace.ErrNoFile, MSSPath: "/mss/u2/gone", LocalPath: "/tmp/g", UserID: 9},
		{Start: at(3), Op: trace.Read, Device: device.ClassSiloTape, Size: 3 << 20,
			MSSPath: "/mss/u1/a", LocalPath: "/tmp/a", UserID: 7}, // deduped: < 8 h after the last read
		{Start: at(30), Op: trace.Write, Device: device.ClassDisk, Size: 5 << 20,
			MSSPath: "/mss/u2/b", LocalPath: "/tmp/b", UserID: 9},
	}
}

// FuzzSnapshotRoundTrip is the robustness gate for the s1 decoder:
// arbitrary input must either fail to load or load into an analysis
// that re-saves and re-loads byte-stably. Panics, hangs, and
// silently-inconsistent loads are the bugs this hunts.
func FuzzSnapshotRoundTrip(f *testing.F) {
	recs := fuzzSeedRecords()
	for _, cut := range []int{len(recs), 2, 0} {
		a := New(Options{Journal: true})
		a.AddAll(recs[:cut])
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(trace.SnapshotHeader + "\n"))
	f.Add([]byte("#filemig-trace b1 epoch=654739200\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking or hanging is not
		}
		var enc1 bytes.Buffer
		if err := a.WriteSnapshot(&enc1); err != nil {
			t.Fatalf("loaded snapshot cannot re-save: %v", err)
		}
		b, err := ReadSnapshot(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-saved snapshot cannot re-load: %v", err)
		}
		var enc2 bytes.Buffer
		if err := b.WriteSnapshot(&enc2); err != nil {
			t.Fatalf("re-loaded snapshot cannot save: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("save → load → save is not byte-stable")
		}
	})
}

// TestFuzzSeedsValid keeps the fuzz seeds honest in normal test runs:
// the valid seeds load, the invalid ones are rejected.
func TestFuzzSeedsValid(t *testing.T) {
	recs := fuzzSeedRecords()
	for i := range recs {
		if err := recs[i].Validate(); err != nil && recs[i].OK() {
			t.Fatalf("seed record %d invalid: %v", i, err)
		}
	}
	a := New(Options{Journal: true})
	a.AddAll(recs)
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if rep.Table3.GrandTotal != 5 || rep.Table3.ErrorRefs != 1 {
		t.Fatalf("seed snapshot counts wrong: %+v", rep.Table3)
	}
	if rep.Table4.NumFiles != 2 {
		t.Fatalf("seed snapshot files = %d, want 2", rep.Table4.NumFiles)
	}
	if got := units.Bytes(rep.Table3.Cells[trace.Read][device.ClassSiloTape].Bytes); got != 6<<20 {
		t.Fatalf("silo read bytes = %d", got)
	}
}
