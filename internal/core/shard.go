package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"filemig/internal/trace"
)

// The sharded streaming analysis path. AnalyzeStream consumes a
// trace.Stream instead of a []trace.Record: records are cut into
// time-partitioned shards, each shard is accumulated by an independent
// worker, and the per-shard partials are merged in shard order. Peak
// memory holds only the shards currently in flight (bounded by the
// worker count), never the whole trace. The merge is constructed to be
// byte-identical to the slice path (New + AddAll + Report):
//
//   - counts and byte totals are integer sums, which are associative;
//   - distribution samples are concatenated in shard order, so every
//     sample list ends up in exactly the record order the slice path
//     would have produced it in;
//   - Figure 7's boundary intervals (last record of shard k to first
//     record of shard k+1) are inserted between the shard-internal
//     interval lists during the merge;
//   - per-file dedup state, which depends only on each file's own access
//     history, is advanced by replaying every shard's reference journal
//     through the same addFileAccessID the slice path uses.
//
// Shards are core.Partial segments folded with Accumulator.Fold (see
// accum.go) — the same segment type the b2, snapshot, and daemon paths
// are built on.
//
// TestStreamEquivalence pins all of this down by comparing rendered
// output from both paths.

// DefaultShardDuration is the time span of one analysis shard when
// StreamOptions does not specify one: four weeks, long enough that
// shard-boundary bookkeeping is negligible, short enough that a two-year
// trace still fans out over two dozen workers.
const DefaultShardDuration = 28 * 24 * time.Hour

// StreamOptions configures AnalyzeStream.
type StreamOptions struct {
	Options

	// ShardDuration is the width of each time partition. Zero means
	// DefaultShardDuration.
	ShardDuration time.Duration

	// Workers bounds the shard worker pool. <= 1 runs every shard on
	// the calling goroutine; this package never reads the host CPU
	// count, so callers wanting one worker per CPU resolve the count
	// explicitly (the facade and cmd/* use internal/host). The merged
	// result is byte-identical for any worker count.
	Workers int
}

// AnalyzeStream computes the paper's full Report from a record stream by
// fanning time-partitioned shards over a bounded worker pool. The result
// is byte-identical to feeding the same records through New + AddAll +
// Report, but peak memory is proportional to a shard, not the trace, and
// the shards accumulate concurrently. Records must arrive in
// non-decreasing start order (the codec readers guarantee this).
// Cancelling ctx aborts between shards with ctx's error; it never
// changes results.
func AnalyzeStream(ctx context.Context, opts StreamOptions, src trace.Stream) (*Report, error) {
	a, err := AccumulateStream(ctx, opts, src)
	if err != nil {
		return nil, err
	}
	return a.Report(), nil
}

// AccumulateStream is AnalyzeStream stopped one step short of the
// Report: it returns the merged accumulator itself, state-identical to a
// slice-path New + AddAll over the same records. That is the handle
// snapshot producers need — run with Options.Journal set and hand the
// result to WriteSnapshot.
func AccumulateStream(ctx context.Context, opts StreamOptions, src trace.Stream) (*Analysis, error) {
	if opts.ShardDuration <= 0 {
		opts.ShardDuration = DefaultShardDuration
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}

	first, err := src.Next()
	if err == io.EOF {
		return New(opts.Options), nil
	}
	if err != nil {
		return nil, err
	}
	// Resolve the calendar origin exactly as Analysis.addShared would, so
	// every shard computes the same day/hour indices.
	origin := opts.Start
	if origin.IsZero() {
		origin = first.Start.Truncate(24 * time.Hour)
	}
	opts.Start = origin
	master := New(opts.Options)
	master.start = origin

	if workers == 1 {
		return analyzeSerial(ctx, opts, master, first, src)
	}
	return analyzeParallel(ctx, opts, master, first, src, workers)
}

// shardIndex places a record in its time partition.
func shardIndex(origin time.Time, d time.Duration, at time.Time) int64 {
	off := at.Sub(origin)
	idx := int64(off / d)
	if off < 0 && off%d != 0 {
		idx-- // floor division for records before the origin
	}
	return idx
}

// nextShard reads one shard's worth of records. first is the record that
// opened the shard (already read); the returned next is the record that
// opens the following shard, or zero with done=true at EOF.
func nextShard(opts StreamOptions, first trace.Record, src trace.Stream) (
	batch []trace.Record, next trace.Record, done bool, err error) {
	idx := shardIndex(opts.Start, opts.ShardDuration, first.Start)
	batch = append(batch, first)
	prev := first.Start
	for {
		r, err := src.Next()
		if err == io.EOF {
			return batch, trace.Record{}, true, nil
		}
		if err != nil {
			return nil, trace.Record{}, false, err
		}
		if r.Start.Before(prev) {
			return nil, trace.Record{}, false,
				fmt.Errorf("core: stream out of order: %v after %v", r.Start, prev)
		}
		prev = r.Start
		if shardIndex(opts.Start, opts.ShardDuration, r.Start) != idx {
			return batch, r, false, nil
		}
		batch = append(batch, r)
	}
}

// analyzeSerial is the workers == 1 path: accumulate and merge one shard
// at a time on the calling goroutine.
func analyzeSerial(ctx context.Context, opts StreamOptions, master *Analysis, first trace.Record, src trace.Stream) (*Analysis, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch, next, done, err := nextShard(opts, first, src)
		if err != nil {
			return nil, err
		}
		master.Fold(AccumulatePartial(opts.Options, batch))
		if done {
			return master, nil
		}
		first = next
	}
}

// analyzeParallel fans shards over a worker pool and merges results in
// shard order. In-flight shards are bounded by the pool size: a semaphore
// token is held from the moment a shard is cut until it has been merged.
// Cancellation is checked between shard cuts: in-flight shards finish
// and merge, no new shard is read, and ctx's error is returned.
func analyzeParallel(ctx context.Context, opts StreamOptions, master *Analysis, first trace.Record, src trace.Stream, workers int) (*Analysis, error) {
	type job struct {
		idx   int
		batch []trace.Record
	}
	type result struct {
		idx int
		sh  *Partial
	}
	jobs := make(chan job)
	results := make(chan result)
	sem := make(chan struct{}, workers+1)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- result{idx: j.idx, sh: AccumulatePartial(opts.Options, j.batch)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merger: fold results in shard order, buffering out-of-order
	// arrivals (at most the pool size).
	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		pending := map[int]*Partial{}
		next := 0
		for res := range results {
			pending[res.idx] = res.sh
			for sh, ok := pending[next]; ok; sh, ok = pending[next] {
				delete(pending, next)
				master.Fold(sh)
				next++
				<-sem
			}
		}
	}()

	var readErr error
	idx := 0
	for {
		if err := ctx.Err(); err != nil {
			readErr = err
			break
		}
		batch, next, done, err := nextShard(opts, first, src)
		if err != nil {
			readErr = err
			break
		}
		sem <- struct{}{}
		jobs <- job{idx: idx, batch: batch}
		idx++
		if done {
			break
		}
		first = next
	}
	close(jobs)
	<-mergeDone
	if readErr != nil {
		return nil, readErr
	}
	return master, nil
}
