package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
)

// The sharded streaming analysis path. AnalyzeStream consumes a
// trace.Stream instead of a []trace.Record: records are cut into
// time-partitioned shards, each shard is accumulated by an independent
// worker, and the per-shard partials are merged in shard order. Peak
// memory holds only the shards currently in flight (bounded by the
// worker count), never the whole trace. The merge is constructed to be
// byte-identical to the slice path (New + AddAll + Report):
//
//   - counts and byte totals are integer sums, which are associative;
//   - distribution samples are concatenated in shard order, so every
//     sample list ends up in exactly the record order the slice path
//     would have produced it in;
//   - Figure 7's boundary intervals (last record of shard k to first
//     record of shard k+1) are inserted between the shard-internal
//     interval lists during the merge;
//   - per-file dedup state, which depends only on each file's own access
//     history, is advanced by replaying every shard's access log through
//     the same addFileAccess the slice path uses.
//
// TestStreamEquivalence pins all of this down by comparing rendered
// output from both paths.

// DefaultShardDuration is the time span of one analysis shard when
// StreamOptions does not specify one: four weeks, long enough that
// shard-boundary bookkeeping is negligible, short enough that a two-year
// trace still fans out over two dozen workers.
const DefaultShardDuration = 28 * 24 * time.Hour

// StreamOptions configures AnalyzeStream.
type StreamOptions struct {
	Options

	// ShardDuration is the width of each time partition. Zero means
	// DefaultShardDuration.
	ShardDuration time.Duration

	// Workers bounds the shard worker pool. <= 1 runs every shard on
	// the calling goroutine; this package never reads the host CPU
	// count, so callers wanting one worker per CPU resolve the count
	// explicitly (the facade and cmd/* use internal/host). The merged
	// result is byte-identical for any worker count.
	Workers int
}

// shardAccum is one shard's partial analysis: a shard-local Analysis for
// everything that merges by sums and concatenation, the shard's first and
// last good-reference times for Figure 7's boundary intervals, and the
// shard's records themselves, replayed through the per-file dedup at
// merge time.
type shardAccum struct {
	sub     *Analysis
	firstOK time.Time
	lastOK  time.Time
	recs    []trace.Record
}

// accumulateShard runs one shard's records through a fresh Analysis.
// Shard-local analyses never serialize, so the snapshot journal — fed by
// the master during merge — is disabled whatever the caller asked for.
func accumulateShard(opts Options, recs []trace.Record) *shardAccum {
	opts.Journal = false
	sh := &shardAccum{sub: New(opts), recs: recs}
	// Pre-size the periodicity series to the shard's last hour so the
	// grow-by-append loop in addShared allocates once per shard.
	if len(recs) > 0 && !opts.Start.IsZero() {
		if hi := int(recs[len(recs)-1].Start.Sub(opts.Start) / time.Hour); hi >= 0 {
			sh.sub.hourlyReqs = make([]float64, 0, hi+1)
			sh.sub.hourlyRead = make([]float64, 0, hi+1)
		}
	}
	for i := range recs {
		r := &recs[i]
		if !sh.sub.addShared(r) {
			continue
		}
		sh.sub.addInterval(r.Start)
		if sh.firstOK.IsZero() {
			sh.firstOK = r.Start
		}
		sh.lastOK = r.Start
	}
	return sh
}

// merge folds one shard into the master analysis. Shards must be merged
// in time order.
func (a *Analysis) merge(sh *shardAccum) {
	sub := sh.sub
	a.total += sub.total
	a.errors += sub.errors
	if sub.days > a.days {
		a.days = sub.days
	}
	for oi := 0; oi < 2; oi++ {
		for ci := 0; ci < device.NClasses; ci++ {
			a.refs[oi][ci] += sub.refs[oi][ci]
			a.bytes[oi][ci] += sub.bytes[oi][ci]
			a.latency[oi][ci].n += sub.latency[oi][ci].n
			a.latency[oi][ci].micros += sub.latency[oi][ci].micros
		}
		a.dynFiles[oi].Merge(sub.dynFiles[oi])
		a.dynBytes[oi].Merge(sub.dynBytes[oi])
	}
	for ci, c := range sub.latCDF {
		if c == nil {
			continue
		}
		m := a.latCDF[ci]
		if m == nil {
			m = &stats.CDF{}
			a.latCDF[ci] = m
		}
		m.Merge(c)
	}
	for h := range a.hourBytes {
		a.hourBytes[h][0] += sub.hourBytes[h][0]
		a.hourBytes[h][1] += sub.hourBytes[h][1]
		a.hourCount[h][0] += sub.hourCount[h][0]
		a.hourCount[h][1] += sub.hourCount[h][1]
	}
	for d := range a.dayBytes {
		a.dayBytes[d][0] += sub.dayBytes[d][0]
		a.dayBytes[d][1] += sub.dayBytes[d][1]
	}
	weeks := make([]int, 0, len(sub.weekBytes))
	for w := range sub.weekBytes {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	for _, w := range weeks {
		b := sub.weekBytes[w]
		wb := a.weekBytes[w]
		wb[0] += b[0]
		wb[1] += b[1]
		a.weekBytes[w] = wb
	}
	for len(a.hourlyReqs) < len(sub.hourlyReqs) {
		a.hourlyReqs = append(a.hourlyReqs, 0)
		a.hourlyRead = append(a.hourlyRead, 0)
	}
	for i, v := range sub.hourlyReqs {
		//lint:floatsum-ok index-aligned sums of integer-valued counts, merged in fixed shard order and exact below 2^53
		a.hourlyReqs[i] += v
		a.hourlyRead[i] += sub.hourlyRead[i] //lint:floatsum-ok same integer-valued hourly counter as the line above
	}

	// Figure 7: the boundary interval precedes the shard's internal
	// intervals, matching global record order.
	if !sh.firstOK.IsZero() {
		a.addInterval(sh.firstOK)
		a.interCDF.Merge(sub.interCDF)
		a.lastStart = sh.lastOK
	}

	// Part two: replay the shard's good references through the same dedup
	// transition the slice path uses.
	for i := range sh.recs {
		if r := &sh.recs[i]; r.OK() {
			a.addFileAccess(r.MSSPath, r.Op, r.Start, r.Size)
		}
	}
}

// AnalyzeStream computes the paper's full Report from a record stream by
// fanning time-partitioned shards over a bounded worker pool. The result
// is byte-identical to feeding the same records through New + AddAll +
// Report, but peak memory is proportional to a shard, not the trace, and
// the shards accumulate concurrently. Records must arrive in
// non-decreasing start order (the codec readers guarantee this).
// Cancelling ctx aborts between shards with ctx's error; it never
// changes results.
func AnalyzeStream(ctx context.Context, opts StreamOptions, src trace.Stream) (*Report, error) {
	a, err := AccumulateStream(ctx, opts, src)
	if err != nil {
		return nil, err
	}
	return a.Report(), nil
}

// AccumulateStream is AnalyzeStream stopped one step short of the
// Report: it returns the merged accumulator itself, state-identical to a
// slice-path New + AddAll over the same records. That is the handle
// snapshot producers need — run with Options.Journal set and hand the
// result to WriteSnapshot.
func AccumulateStream(ctx context.Context, opts StreamOptions, src trace.Stream) (*Analysis, error) {
	if opts.ShardDuration <= 0 {
		opts.ShardDuration = DefaultShardDuration
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}

	first, err := src.Next()
	if err == io.EOF {
		return New(opts.Options), nil
	}
	if err != nil {
		return nil, err
	}
	// Resolve the calendar origin exactly as Analysis.addShared would, so
	// every shard computes the same day/hour indices.
	origin := opts.Start
	if origin.IsZero() {
		origin = first.Start.Truncate(24 * time.Hour)
	}
	opts.Start = origin
	master := New(opts.Options)
	master.start = origin

	if workers == 1 {
		return analyzeSerial(ctx, opts, master, first, src)
	}
	return analyzeParallel(ctx, opts, master, first, src, workers)
}

// shardIndex places a record in its time partition.
func shardIndex(origin time.Time, d time.Duration, at time.Time) int64 {
	off := at.Sub(origin)
	idx := int64(off / d)
	if off < 0 && off%d != 0 {
		idx-- // floor division for records before the origin
	}
	return idx
}

// nextShard reads one shard's worth of records. first is the record that
// opened the shard (already read); the returned next is the record that
// opens the following shard, or zero with done=true at EOF.
func nextShard(opts StreamOptions, first trace.Record, src trace.Stream) (
	batch []trace.Record, next trace.Record, done bool, err error) {
	idx := shardIndex(opts.Start, opts.ShardDuration, first.Start)
	batch = append(batch, first)
	prev := first.Start
	for {
		r, err := src.Next()
		if err == io.EOF {
			return batch, trace.Record{}, true, nil
		}
		if err != nil {
			return nil, trace.Record{}, false, err
		}
		if r.Start.Before(prev) {
			return nil, trace.Record{}, false,
				fmt.Errorf("core: stream out of order: %v after %v", r.Start, prev)
		}
		prev = r.Start
		if shardIndex(opts.Start, opts.ShardDuration, r.Start) != idx {
			return batch, r, false, nil
		}
		batch = append(batch, r)
	}
}

// analyzeSerial is the workers == 1 path: accumulate and merge one shard
// at a time on the calling goroutine.
func analyzeSerial(ctx context.Context, opts StreamOptions, master *Analysis, first trace.Record, src trace.Stream) (*Analysis, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch, next, done, err := nextShard(opts, first, src)
		if err != nil {
			return nil, err
		}
		master.merge(accumulateShard(opts.Options, batch))
		if done {
			return master, nil
		}
		first = next
	}
}

// analyzeParallel fans shards over a worker pool and merges results in
// shard order. In-flight shards are bounded by the pool size: a semaphore
// token is held from the moment a shard is cut until it has been merged.
// Cancellation is checked between shard cuts: in-flight shards finish
// and merge, no new shard is read, and ctx's error is returned.
func analyzeParallel(ctx context.Context, opts StreamOptions, master *Analysis, first trace.Record, src trace.Stream, workers int) (*Analysis, error) {
	type job struct {
		idx   int
		batch []trace.Record
	}
	type result struct {
		idx int
		sh  *shardAccum
	}
	jobs := make(chan job)
	results := make(chan result)
	sem := make(chan struct{}, workers+1)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- result{idx: j.idx, sh: accumulateShard(opts.Options, j.batch)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merger: fold results in shard order, buffering out-of-order
	// arrivals (at most the pool size).
	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		pending := map[int]*shardAccum{}
		next := 0
		for res := range results {
			pending[res.idx] = res.sh
			for sh, ok := pending[next]; ok; sh, ok = pending[next] {
				delete(pending, next)
				master.merge(sh)
				next++
				<-sem
			}
		}
	}()

	var readErr error
	idx := 0
	for {
		if err := ctx.Err(); err != nil {
			readErr = err
			break
		}
		batch, next, done, err := nextShard(opts, first, src)
		if err != nil {
			readErr = err
			break
		}
		sem <- struct{}{}
		jobs <- job{idx: idx, batch: batch}
		idx++
		if done {
			break
		}
		first = next
	}
	close(jobs)
	<-mergeDone
	if readErr != nil {
		return nil, readErr
	}
	return master, nil
}
