package core

import (
	"sort"
	"time"

	"filemig/internal/device"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// Report is the finished analysis: every table and figure of the paper.
type Report struct {
	Table3 Table3
	Table4 Table4

	Figure3  map[device.Class]*stats.CDF // latency-to-first-byte CDFs
	Figure4  Figure4                     // hourly transfer profile
	Figure5  Figure5                     // day-of-week profile
	Figure6  Figure6                     // weekly two-year series
	Figure7  *stats.CDF                  // inter-request intervals (seconds)
	Figure8  Figure8                     // per-file reference counts
	Figure9  *stats.CDF                  // per-file interreference intervals (days)
	Figure10 Figure10                    // dynamic size distributions
	Figure11 Figure11                    // static size distributions
	Figure12 Figure12                    // directory size distributions

	HourlyRequests []float64 // request counts per absolute hour (periodicity)
	HourlyReads    []float64
	Days           int
}

// Cell is one Table 3 cell: references, bytes, and latency for an
// (operation, device) pair.
type Cell struct {
	Refs        int64
	Bytes       units.Bytes
	MeanLatency time.Duration
}

// AvgFileSize is bytes over references.
func (c Cell) AvgFileSize() units.Bytes {
	if c.Refs == 0 {
		return 0
	}
	return c.Bytes / units.Bytes(c.Refs)
}

// Table3 is the overall trace statistics table.
type Table3 struct {
	// Indexed by op then device class.
	Cells      map[trace.Op]map[device.Class]Cell
	TotalRefs  int64 // good references
	ErrorRefs  int64
	GrandTotal int64 // including errors
}

// RefDevices are the device classes Table 3 reports, in paper order.
var RefDevices = []device.Class{device.ClassDisk, device.ClassSiloTape, device.ClassManualTape}

// OpTotal sums a row over devices for one op.
func (t Table3) OpTotal(op trace.Op) Cell {
	var out Cell
	var latSum float64
	for _, d := range RefDevices {
		c := t.Cells[op][d]
		out.Refs += c.Refs
		out.Bytes += c.Bytes
		latSum += c.MeanLatency.Seconds() * float64(c.Refs)
	}
	if out.Refs > 0 {
		out.MeanLatency = units.DurationSeconds(latSum / float64(out.Refs))
	}
	return out
}

// DevTotal sums reads+writes for one device.
func (t Table3) DevTotal(dev device.Class) Cell {
	var out Cell
	var latSum float64
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		c := t.Cells[op][dev]
		out.Refs += c.Refs
		out.Bytes += c.Bytes
		latSum += c.MeanLatency.Seconds() * float64(c.Refs)
	}
	if out.Refs > 0 {
		out.MeanLatency = units.DurationSeconds(latSum / float64(out.Refs))
	}
	return out
}

// Total sums everything.
func (t Table3) Total() Cell {
	var out Cell
	var latSum float64
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		c := t.OpTotal(op)
		out.Refs += c.Refs
		out.Bytes += c.Bytes
		latSum += c.MeanLatency.Seconds() * float64(c.Refs)
	}
	if out.Refs > 0 {
		out.MeanLatency = units.DurationSeconds(latSum / float64(out.Refs))
	}
	return out
}

// Table4 is the file-store summary derived, as in the paper, from the
// referenced files only.
type Table4 struct {
	NumFiles    int64
	AvgFileSize units.Bytes
	NumDirs     int64
	LargestDir  int64
	MaxDepth    int
	TotalData   units.Bytes
	NeverReread float64 // fraction of metadata describing never-reread files (§5.4: >40%)
}

// Figure4 is the average transfer rate by hour of day, GB/hour.
type Figure4 struct {
	ReadGB  [24]float64
	WriteGB [24]float64
	Days    int
}

// Rate returns reads+writes average GB/h for the given hour.
func (f Figure4) Rate(hour int) float64 {
	if f.Days == 0 {
		return 0
	}
	return (f.ReadGB[hour] + f.WriteGB[hour]) / float64(f.Days)
}

// ReadRate and WriteRate report per-op averages.
func (f Figure4) ReadRate(hour int) float64 {
	if f.Days == 0 {
		return 0
	}
	return f.ReadGB[hour] / float64(f.Days)
}

// WriteRate reports the write average for the hour.
func (f Figure4) WriteRate(hour int) float64 {
	if f.Days == 0 {
		return 0
	}
	return f.WriteGB[hour] / float64(f.Days)
}

// Figure5 is the average transfer rate by day of week (0 = Sunday),
// GB/hour averaged over the hours of that weekday.
type Figure5 struct {
	ReadGB  [7]float64
	WriteGB [7]float64
	Weeks   float64
}

// ReadRate reports average GB/h on the given weekday.
func (f Figure5) ReadRate(day int) float64 {
	if f.Weeks == 0 {
		return 0
	}
	return f.ReadGB[day] / (f.Weeks * 24)
}

// WriteRate reports average write GB/h on the given weekday.
func (f Figure5) WriteRate(day int) float64 {
	if f.Weeks == 0 {
		return 0
	}
	return f.WriteGB[day] / (f.Weeks * 24)
}

// Figure6 is the week-by-week average transfer rate across the trace.
type Figure6 struct {
	Weeks []WeekPoint
}

// WeekPoint is one week's average rates in GB/hour.
type WeekPoint struct {
	Week     int
	ReadGBh  float64
	WriteGBh float64
}

// Figure8 is the distribution of per-file reference counts after the
// eight-hour dedup.
type Figure8 struct {
	Files                  int64
	ZeroReadFrac           float64    // §5.3: 50%
	OneReadFrac            float64    // 25%
	ZeroWriteFrac          float64    // 21%
	OneWriteFrac           float64    // 65%
	ExactlyOnceFrac        float64    // 57%
	ExactlyTwiceFrac       float64    // 19%
	WriteOnceNeverReadFrac float64    // 44%
	MoreThanTenFrac        float64    // 5%
	Reads                  *stats.CDF // per-file read counts
	Writes                 *stats.CDF
	Total                  *stats.CDF
}

// Figure10 is the dynamic (per-access) size distribution.
type Figure10 struct {
	FilesRead    *stats.CDF
	FilesWritten *stats.CDF
	DataRead     *stats.WeightedCDF
	DataWritten  *stats.WeightedCDF
}

// Figure11 is the static (per-file) size distribution.
type Figure11 struct {
	Files *stats.CDF
	Data  *stats.WeightedCDF
}

// Figure12 is the directory size distribution, from referenced files.
type Figure12 struct {
	Dirs  *stats.WeightedCDF // weight 1 per directory, x = file count
	Files *stats.WeightedCDF // weight = files in dir
	Data  *stats.WeightedCDF // weight = bytes in dir
}

// Report finalises the analysis.
func (a *Analysis) Report() *Report {
	fig3 := make(map[device.Class]*stats.CDF, device.NClasses)
	for cls, c := range a.latCDF {
		if c != nil {
			fig3[device.Class(cls)] = c
		}
	}
	r := &Report{
		Figure3:        fig3,
		Figure7:        a.interCDF,
		HourlyRequests: a.hourlyReqs,
		HourlyReads:    a.hourlyRead,
		Days:           a.days,
	}
	r.Table3 = a.buildTable3()
	r.Table4, r.Figure12 = a.buildFileStore()
	r.Figure4 = Figure4{ReadGB: gbCol(a.hourBytes, 0), WriteGB: gbCol(a.hourBytes, 1), Days: a.days}
	r.Figure5 = a.buildFigure5()
	r.Figure6 = a.buildFigure6()
	r.Figure8, r.Figure9 = a.buildFileFigures()
	r.Figure10 = Figure10{
		FilesRead:    a.dynFiles[opIndex(trace.Read)],
		FilesWritten: a.dynFiles[opIndex(trace.Write)],
		DataRead:     a.dynBytes[opIndex(trace.Read)],
		DataWritten:  a.dynBytes[opIndex(trace.Write)],
	}
	r.Figure11 = a.buildFigure11()
	return r
}

// gbCol converts one op's column of an hourly byte-count table to GB.
func gbCol(src [24][2]int64, idx int) [24]float64 {
	var out [24]float64
	for i := range src {
		out[i] = gb(src[i][idx])
	}
	return out
}

// gb converts an exact byte count to decimal gigabytes.
func gb(b int64) float64 { return float64(b) / float64(units.GB) }

func (a *Analysis) buildTable3() Table3 {
	t := Table3{Cells: map[trace.Op]map[device.Class]Cell{}, ErrorRefs: a.errors, GrandTotal: a.total}
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		oi := opIndex(op)
		t.Cells[op] = map[device.Class]Cell{}
		for _, dev := range RefDevices {
			ci := classIndex(dev)
			c := Cell{Refs: a.refs[oi][ci], Bytes: units.Bytes(a.bytes[oi][ci])}
			if l := &a.latency[oi][ci]; l.n > 0 {
				c.MeanLatency = units.DurationSeconds(l.meanSeconds())
			}
			t.Cells[op][dev] = c
			t.TotalRefs += c.Refs
		}
	}
	return t
}

func (a *Analysis) buildFigure5() Figure5 {
	f := Figure5{
		ReadGB:  [7]float64{},
		WriteGB: [7]float64{},
		Weeks:   float64(a.days) / 7,
	}
	for d := 0; d < 7; d++ {
		f.ReadGB[d] = gb(a.dayBytes[d][0])
		f.WriteGB[d] = gb(a.dayBytes[d][1])
	}
	return f
}

func (a *Analysis) buildFigure6() Figure6 {
	weeks := make([]int, 0, len(a.weekBytes))
	for w := range a.weekBytes {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	f := Figure6{}
	for _, w := range weeks {
		b := a.weekBytes[w]
		f.Weeks = append(f.Weeks, WeekPoint{
			Week:     w,
			ReadGBh:  gb(b[0]) / (7 * 24),
			WriteGBh: gb(b[1]) / (7 * 24),
		})
	}
	return f
}

func (a *Analysis) buildFileFigures() (Figure8, *stats.CDF) {
	f8 := Figure8{Reads: &stats.CDF{}, Writes: &stats.CDF{}, Total: &stats.CDF{}}
	var zeroRead, oneRead, zeroWrite, oneWrite, once, twice, w1r0, over10 int64
	for i := range a.files {
		f := &a.files[i]
		f8.Files++
		f8.Reads.Add(float64(f.reads))
		f8.Writes.Add(float64(f.writes))
		total := f.reads + f.writes
		f8.Total.Add(float64(total))
		switch f.reads {
		case 0:
			zeroRead++
		case 1:
			oneRead++
		}
		switch f.writes {
		case 0:
			zeroWrite++
		case 1:
			oneWrite++
		}
		if total == 1 {
			once++
		}
		if total == 2 {
			twice++
		}
		if f.writes == 1 && f.reads == 0 {
			w1r0++
		}
		if total > 10 {
			over10++
		}
	}
	if f8.Files > 0 {
		n := float64(f8.Files)
		f8.ZeroReadFrac = float64(zeroRead) / n
		f8.OneReadFrac = float64(oneRead) / n
		f8.ZeroWriteFrac = float64(zeroWrite) / n
		f8.OneWriteFrac = float64(oneWrite) / n
		f8.ExactlyOnceFrac = float64(once) / n
		f8.ExactlyTwiceFrac = float64(twice) / n
		f8.WriteOnceNeverReadFrac = float64(w1r0) / n
		f8.MoreThanTenFrac = float64(over10) / n
	}
	return f8, a.gapCDF
}

func (a *Analysis) buildFigure11() Figure11 {
	f := Figure11{Files: &stats.CDF{}, Data: &stats.WeightedCDF{}}
	for i := range a.files {
		s := float64(a.files[i].size)
		f.Files.Add(s)
		f.Data.Add(s, s)
	}
	return f
}

func (a *Analysis) buildFileStore() (Table4, Figure12) {
	type dirAgg struct {
		files int64
		bytes units.Bytes
	}
	// Every interned directory has at least one interned file, so the
	// DirID-indexed slice plays the role of the old dir-keyed map.
	dirs := make([]dirAgg, a.interner.NumDirs())
	var total units.Bytes
	maxDepth := 0
	var neverReread int64
	for i := range a.files {
		st := &a.files[i]
		agg := &dirs[a.interner.Dir(trace.FileID(i))]
		agg.files++
		agg.bytes += st.size
		total += st.size
		if dep := depthOf(a.interner.Path(trace.FileID(i))); dep > maxDepth {
			maxDepth = dep
		}
		// §5.4: metadata describing files never accessed again — here,
		// files whose whole history is a single write.
		if st.reads == 0 && st.writes <= 1 {
			neverReread++
		}
	}
	t4 := Table4{
		NumFiles:  int64(len(a.files)),
		NumDirs:   int64(len(dirs)),
		MaxDepth:  maxDepth,
		TotalData: total,
	}
	if t4.NumFiles > 0 {
		t4.AvgFileSize = total / units.Bytes(t4.NumFiles)
		t4.NeverReread = float64(neverReread) / float64(t4.NumFiles)
	}
	f12 := Figure12{Dirs: &stats.WeightedCDF{}, Files: &stats.WeightedCDF{}, Data: &stats.WeightedCDF{}}
	if tree := a.opts.Tree; tree != nil {
		// The full namespace (including empty directories, which a trace
		// cannot reveal) gives the paper's view of Table 4 and Figure 12.
		t4.NumDirs = int64(tree.NumDirs())
		t4.LargestDir = int64(tree.LargestDir().FileCount)
		t4.MaxDepth = tree.MaxDepth()
		treeDirs, treeFiles, treeData := tree.SizeDistribution()
		f12.Dirs, f12.Files, f12.Data = treeDirs, treeFiles, treeData
		return t4, f12
	}
	for i := range dirs {
		agg := &dirs[i]
		n := float64(agg.files)
		if agg.files > t4.LargestDir {
			t4.LargestDir = agg.files
		}
		f12.Dirs.Add(n, 1)
		f12.Files.Add(n, n)
		f12.Data.Add(n, float64(agg.bytes))
	}
	return t4, f12
}

// DominantPeriods runs the §5.2 periodicity detection over the hourly
// request series, returning the top period lengths in hours.
func (r *Report) DominantPeriods(max int) []float64 {
	return stats.DominantPeriods(r.HourlyRequests, max, 0.15)
}

// ReadAutocorrelation returns the autocorrelation of the hourly read
// series up to maxLag hours.
func (r *Report) ReadAutocorrelation(maxLag int) []float64 {
	return stats.Autocorrelation(r.HourlyReads, maxLag)
}
