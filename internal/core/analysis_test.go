package core

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/mss"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

// The calibration fixture: a 2%-scale two-year synthetic trace run
// through the MSS simulator, analysed once and shared across tests.
var fixture struct {
	sync.Once
	report *Report
	err    error
}

func report(t *testing.T) *Report {
	t.Helper()
	fixture.Do(func() {
		res, err := workload.Generate(workload.DefaultConfig(0.02, 77))
		if err != nil {
			fixture.err = err
			return
		}
		sim := mss.NewSimulator(mss.DefaultConfig(77))
		recs, err := sim.Replay(res.Records)
		if err != nil {
			fixture.err = err
			return
		}
		a := New(Options{Start: res.Config.Start, Days: res.Config.Days, Tree: res.Tree})
		a.AddAll(recs)
		fixture.report = a.Report()
	})
	if fixture.err != nil {
		t.Fatalf("fixture: %v", fixture.err)
	}
	return fixture.report
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.2f±%.2f", name, got, want, tol)
	}
}

func TestTable3ReferenceShares(t *testing.T) {
	r := report(t)
	total := r.Table3.Total()
	reads := r.Table3.OpTotal(trace.Read)
	approx(t, "read share of references",
		float64(reads.Refs)/float64(total.Refs), 0.66, 0.08)
	approx(t, "read share of bytes",
		float64(reads.Bytes)/float64(total.Bytes), 0.73, 0.10)
	// Device mix.
	approx(t, "disk share",
		float64(r.Table3.DevTotal(device.ClassDisk).Refs)/float64(total.Refs), 0.66, 0.10)
	approx(t, "silo share",
		float64(r.Table3.DevTotal(device.ClassSiloTape).Refs)/float64(total.Refs), 0.20, 0.09)
	approx(t, "manual share",
		float64(r.Table3.DevTotal(device.ClassManualTape).Refs)/float64(total.Refs), 0.12, 0.08)
	// Error rate ~4.76%.
	approx(t, "error fraction",
		float64(r.Table3.ErrorRefs)/float64(r.Table3.GrandTotal), 0.0476, 0.01)
}

func TestTable3Latencies(t *testing.T) {
	r := report(t)
	disk := r.Table3.DevTotal(device.ClassDisk).MeanLatency.Seconds()
	silo := r.Table3.DevTotal(device.ClassSiloTape).MeanLatency.Seconds()
	manual := r.Table3.DevTotal(device.ClassManualTape).MeanLatency.Seconds()
	// Paper: disk 29.67s, silo 104.08s, manual 290.18s. Our queueing at 2%
	// scale is lighter, so accept the ordering plus broad bands.
	if !(disk < silo && silo < manual) {
		t.Errorf("latency ordering wrong: disk=%.1f silo=%.1f manual=%.1f", disk, silo, manual)
	}
	if disk < 1 || disk > 45 {
		t.Errorf("disk mean latency = %.1fs, want single to tens of seconds", disk)
	}
	if silo < 50 || silo > 140 {
		t.Errorf("silo mean latency = %.1fs, want ~104s", silo)
	}
	if manual < 120 || manual > 400 {
		t.Errorf("manual mean latency = %.1fs, want 120-400s (paper: 290s under full-scale operator queueing)", manual)
	}
	// Reads slower than writes on average (reads hit tape more).
	reads := r.Table3.OpTotal(trace.Read).MeanLatency.Seconds()
	writes := r.Table3.OpTotal(trace.Write).MeanLatency.Seconds()
	if reads <= writes {
		t.Errorf("mean read latency %.1f should exceed write latency %.1f (Table 3: 98.1 vs 38.6)",
			reads, writes)
	}
}

func TestTable3AvgSizes(t *testing.T) {
	r := report(t)
	disk := r.Table3.DevTotal(device.ClassDisk).AvgFileSize()
	silo := r.Table3.DevTotal(device.ClassSiloTape).AvgFileSize()
	manual := r.Table3.DevTotal(device.ClassManualTape).AvgFileSize()
	if disk > units.Bytes(10*units.MB) {
		t.Errorf("disk avg request size %v, want ~3.75 MB", disk)
	}
	if silo < units.Bytes(45*units.MB) || silo > units.Bytes(120*units.MB) {
		t.Errorf("silo avg request size %v, want ~80 MB", silo)
	}
	if manual >= silo || manual < units.Bytes(15*units.MB) {
		t.Errorf("manual avg %v should sit between disk %v and silo %v (paper: 47 MB)",
			manual, disk, silo)
	}
	total := r.Table3.Total().AvgFileSize()
	if total < units.Bytes(15*units.MB) || total > units.Bytes(40*units.MB) {
		t.Errorf("overall avg request size %v, want ~24.8 MB", total)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := report(t)
	disk := r.Figure3[device.ClassDisk]
	silo := r.Figure3[device.ClassSiloTape]
	manual := r.Figure3[device.ClassManualTape]
	if disk == nil || silo == nil || manual == nil {
		t.Fatal("missing latency CDFs")
	}
	// Disk median a few seconds (paper: 4s).
	if med := disk.Median(); med < 1 || med > 12 {
		t.Errorf("disk median latency = %.1fs, want ~4s", med)
	}
	// Nearly all disk and silo requests done by 400s; manual has a long
	// tail with ~10% beyond 400s.
	if p := disk.P(400); p < 0.97 {
		t.Errorf("disk P(<=400s) = %.3f, want ~1", p)
	}
	if p := silo.P(400); p < 0.95 {
		t.Errorf("silo P(<=400s) = %.3f, want ~1", p)
	}
	manualTail := 1 - manual.P(400)
	if manualTail < 0.02 || manualTail > 0.30 {
		t.Errorf("manual tail beyond 400s = %.3f, want ~0.10", manualTail)
	}
	// Silo beats manual to the first byte across the range.
	for _, x := range []float64{60, 120, 240} {
		if silo.P(x) <= manual.P(x) {
			t.Errorf("at %vs silo CDF (%.2f) should lead manual (%.2f)",
				x, silo.P(x), manual.P(x))
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	r := report(t)
	f := r.Figure4
	// Reads: peak during working hours, trough overnight.
	peak, trough := 0.0, math.Inf(1)
	for h := 9; h <= 16; h++ {
		peak = math.Max(peak, f.ReadRate(h))
	}
	for h := 1; h <= 5; h++ {
		trough = math.Min(trough, f.ReadRate(h))
	}
	if peak < 3*trough {
		t.Errorf("read peak %.3f vs trough %.3f — want at least 3x swing", peak, trough)
	}
	// Writes: nearly constant.
	wPeak, wTrough := 0.0, math.Inf(1)
	for h := 0; h < 24; h++ {
		wPeak = math.Max(wPeak, f.WriteRate(h))
		wTrough = math.Min(wTrough, f.WriteRate(h))
	}
	if wPeak > 2.2*wTrough {
		t.Errorf("write peak %.3f vs trough %.3f — want nearly flat", wPeak, wTrough)
	}
}

func TestFigure5Shape(t *testing.T) {
	r := report(t)
	f := r.Figure5
	weekdayAvg := (f.ReadRate(2) + f.ReadRate(3) + f.ReadRate(4)) / 3
	weekendAvg := (f.ReadRate(0) + f.ReadRate(6)) / 2
	if weekendAvg > 0.7*weekdayAvg {
		t.Errorf("weekend read rate %.3f vs weekday %.3f — want a dip", weekendAvg, weekdayAvg)
	}
	// Writes steady across the week.
	for d := 1; d < 7; d++ {
		ratio := f.WriteRate(d) / math.Max(f.WriteRate(0), 1e-9)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("write rate day %d ratio %.2f — want little variation", d, ratio)
		}
	}
}

func TestFigure6GrowthAndHolidays(t *testing.T) {
	r := report(t)
	weeks := r.Figure6.Weeks
	if len(weeks) < 100 {
		t.Fatalf("weeks = %d, want ~104", len(weeks))
	}
	// Read growth: last quarter should out-rate first quarter by >1.3x.
	q := len(weeks) / 4
	first, last := 0.0, 0.0
	for i := 0; i < q; i++ {
		first += weeks[i].ReadGBh
		last += weeks[len(weeks)-1-i].ReadGBh
	}
	if last < 1.3*first {
		t.Errorf("read growth last/first quarter = %.2f, want > 1.3 (Figure 6)", last/first)
	}
	// Writes flat: same comparison within ±35%.
	fw, lw := 0.0, 0.0
	for i := 0; i < q; i++ {
		fw += weeks[i].WriteGBh
		lw += weeks[len(weeks)-1-i].WriteGBh
	}
	if ratio := lw / fw; ratio < 0.65 || ratio > 1.35 {
		t.Errorf("write last/first quarter = %.2f, want ~1 (no growth)", ratio)
	}
	// Christmas 1990 (week ~12) read dip vs neighbours.
	xmasWeek := int(time.Date(1990, 12, 25, 0, 0, 0, 0, time.UTC).Sub(trace.Epoch).Hours() / 24 / 7)
	var xmas, around float64
	n := 0.0
	for _, w := range weeks {
		if w.Week == xmasWeek {
			xmas = w.ReadGBh
		}
		if (w.Week >= xmasWeek-4 && w.Week < xmasWeek-1) || (w.Week > xmasWeek+1 && w.Week <= xmasWeek+4) {
			around += w.ReadGBh
			n++
		}
	}
	if n > 0 && xmas > 0.8*(around/n) {
		t.Errorf("Christmas week reads %.3f vs neighbours %.3f — want a dip", xmas, around/n)
	}
}

func TestFigure7Interarrivals(t *testing.T) {
	r := report(t)
	// At 2% scale the mean gap stretches ~50x (paper: 18s), but the burst
	// knee must remain: most consecutive requests within 10s.
	if p := r.Figure7.P(10); p < 0.55 {
		t.Errorf("P(gap <= 10s) = %.3f, want a strong sub-10s knee (Figure 7)", p)
	}
}

func TestFigure8Fractions(t *testing.T) {
	r := report(t)
	f := r.Figure8
	approx(t, "never read", f.ZeroReadFrac, 0.50, 0.06)
	approx(t, "read once", f.OneReadFrac, 0.25, 0.06)
	approx(t, "never written", f.ZeroWriteFrac, 0.21, 0.06)
	approx(t, "written once", f.OneWriteFrac, 0.65, 0.07)
	approx(t, "accessed exactly once", f.ExactlyOnceFrac, 0.57, 0.07)
	approx(t, "accessed exactly twice", f.ExactlyTwiceFrac, 0.19, 0.07)
	approx(t, "write-once-never-read", f.WriteOnceNeverReadFrac, 0.44, 0.06)
	if f.MoreThanTenFrac < 0.01 || f.MoreThanTenFrac > 0.09 {
		t.Errorf("more-than-ten fraction = %.3f, want ~0.05", f.MoreThanTenFrac)
	}
	// Median number of references is one (§5.3, contrasting Smith's two).
	if med := f.Total.Median(); med != 1 {
		t.Errorf("median reference count = %v, want 1", med)
	}
}

func TestFigure9Intervals(t *testing.T) {
	r := report(t)
	day := r.Figure9.P(1)
	if day < 0.55 || day > 0.82 {
		t.Errorf("P(interval < 1 day) = %.3f, want ~0.70 (Figure 9)", day)
	}
	if year := 1 - r.Figure9.P(365); year <= 0 {
		t.Error("no per-file intervals beyond a year — paper saw some")
	}
}

func TestFigure10DynamicSizes(t *testing.T) {
	r := report(t)
	f := r.Figure10
	// "40% of all requests are for files 1 MB or smaller."
	readSmall := f.FilesRead.P(1e6)
	writeSmall := f.FilesWritten.P(1e6)
	small := (readSmall*float64(f.FilesRead.N()) + writeSmall*float64(f.FilesWritten.N())) /
		float64(f.FilesRead.N()+f.FilesWritten.N())
	if small < 0.25 || small > 0.55 {
		t.Errorf("requests <= 1 MB = %.3f, want ~0.40", small)
	}
	// "such small files make up under 1% of the total data storage" —
	// dynamically, well under 5% of bytes.
	if dr := f.DataRead.P(1e6); dr > 0.05 {
		t.Errorf("read bytes in <=1MB files = %.3f, want tiny", dr)
	}
	// Write bump at 8 MB: the CDF of files written should jump between
	// 6 MB and 10 MB by more than the CDF of files read does.
	writeJump := f.FilesWritten.P(10e6) - f.FilesWritten.P(6e6)
	readJump := f.FilesRead.P(10e6) - f.FilesRead.P(6e6)
	if writeJump <= readJump {
		t.Errorf("8 MB write bump missing: write jump %.3f vs read jump %.3f", writeJump, readJump)
	}
}

func TestFigure11StaticSizes(t *testing.T) {
	r := report(t)
	f := r.Figure11
	under3 := f.Files.P(3e6)
	if under3 < 0.38 || under3 > 0.62 {
		t.Errorf("files under 3 MB = %.3f, want ~0.5 (Figure 11)", under3)
	}
	if data := f.Data.P(3e6); data > 0.06 {
		t.Errorf("data in <3 MB files = %.3f, want ~0.02", data)
	}
}

func TestFigure12Directories(t *testing.T) {
	r := report(t)
	f := r.Figure12
	// Paper: "75% had only zero or one file" (the namespace includes
	// empty directories).
	if p := f.Dirs.P(1); p < 0.68 || p > 0.82 {
		t.Errorf("dirs with <=1 file = %.3f, want ~0.75", p)
	}
	if p := f.Dirs.P(10); p < 0.84 || p > 0.96 {
		t.Errorf("dirs with <=10 files = %.3f, want ~0.90", p)
	}
	// Over half of files in directories with more than 100 files.
	if p := 1 - f.Files.P(100); p < 0.35 {
		t.Errorf("files in >100-file dirs = %.3f, want > 0.35", p)
	}
	// The largest directory caps near the paper's 2.8% of all files.
	frac := float64(r.Table4.LargestDir) / float64(r.Table4.NumFiles)
	if frac < 0.005 || frac > 0.06 {
		t.Errorf("largest dir holds %.3f of files, want ~0.028 (Table 4)", frac)
	}
}

func TestTable4Summary(t *testing.T) {
	r := report(t)
	t4 := r.Table4
	// 2% scale: ~18k files, ~2.8k dirs referenced (the trace only sees
	// files with at least one access, so slightly fewer than generated).
	if t4.NumFiles < 10000 || t4.NumFiles > 20000 {
		t.Errorf("files = %d, want ~17k at 2%% scale", t4.NumFiles)
	}
	if t4.AvgFileSize < units.Bytes(15*units.MB) || t4.AvgFileSize > units.Bytes(35*units.MB) {
		t.Errorf("avg file size = %v, want ~25 MB", t4.AvgFileSize)
	}
	if t4.MaxDepth < 6 || t4.MaxDepth > 14 {
		t.Errorf("max depth = %d, want ~12", t4.MaxDepth)
	}
	if t4.LargestDir < 100 {
		t.Errorf("largest dir = %d files, want hundreds", t4.LargestDir)
	}
	// §5.4: over 40% of the metadata describes files never accessed again.
	if t4.NeverReread < 0.30 {
		t.Errorf("never-reread fraction = %.3f, want > 0.40-ish", t4.NeverReread)
	}
}

func TestPeriodicityDayAndWeek(t *testing.T) {
	r := report(t)
	periods := r.DominantPeriods(3)
	foundDay, foundWeek := false, false
	for _, p := range periods {
		if math.Abs(p-24) < 2 {
			foundDay = true
		}
		if math.Abs(p-168) < 17 {
			foundWeek = true
		}
	}
	if !foundDay {
		t.Errorf("dominant periods %v missing the one-day period", periods)
	}
	if !foundWeek {
		t.Errorf("dominant periods %v missing the one-week period", periods)
	}
	// Autocorrelation peaks at 24h.
	ac := r.ReadAutocorrelation(24 * 8)
	if ac[24] < 0.2 {
		t.Errorf("read autocorrelation at lag 24h = %.3f, want clearly positive", ac[24])
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	r := report(t)
	outputs := map[string]string{
		"table3":  RenderTable3(r.Table3),
		"table4":  RenderTable4(r.Table4),
		"fig3":    RenderFigure3(r),
		"fig4":    RenderFigure4(r.Figure4),
		"fig5":    RenderFigure5(r.Figure5),
		"fig6":    RenderFigure6(r.Figure6),
		"fig7":    RenderFigure7(r.Figure7),
		"fig8":    RenderFigure8(r.Figure8),
		"fig9":    RenderFigure9(r.Figure9),
		"fig10":   RenderFigure10(r.Figure10),
		"fig11":   RenderFigure11(r.Figure11),
		"fig12":   RenderFigure12(r.Figure12),
		"periods": RenderPeriodicity(r),
	}
	for name, out := range outputs {
		if len(out) < 40 {
			t.Errorf("%s render suspiciously short: %q", name, out)
		}
	}
	if !strings.Contains(outputs["table3"], "References") ||
		!strings.Contains(outputs["table3"], "Secs to first byte") {
		t.Error("table3 missing paper rows")
	}
	if !strings.Contains(outputs["table4"], "Number of files") {
		t.Error("table4 missing rows")
	}
}

func TestDirDepthHelpers(t *testing.T) {
	if depthOf("/mss/a/b/f1") != 4 {
		t.Errorf("depthOf = %d", depthOf("/mss/a/b/f1"))
	}
}

func TestAnalysisSkipsErrors(t *testing.T) {
	a := New(Options{})
	rec := trace.Record{
		Start: trace.Epoch, Op: trace.Read, Device: device.ClassDisk,
		Err: trace.ErrNoFile, MSSPath: "/x", LocalPath: "/y", UserID: 1,
	}
	a.Add(&rec)
	r := a.Report()
	if r.Table3.TotalRefs != 0 || r.Table3.ErrorRefs != 1 {
		t.Errorf("errors must not enter the analysis: %+v", r.Table3)
	}
	if r.Table4.NumFiles != 0 {
		t.Error("error records must not create files")
	}
}

func TestDedupWindowApplied(t *testing.T) {
	a := New(Options{})
	base := trace.Epoch
	mk := func(offset time.Duration) trace.Record {
		return trace.Record{
			Start: base.Add(offset), Op: trace.Read, Device: device.ClassDisk,
			Size: units.Bytes(units.MB), MSSPath: "/mss/f", LocalPath: "/l", UserID: 1,
		}
	}
	// Three reads within one hour: dedup to a single read.
	for _, off := range []time.Duration{0, 10 * time.Minute, 50 * time.Minute} {
		rec := mk(off)
		a.Add(&rec)
	}
	// One more read nine hours later: survives.
	rec := mk(9 * time.Hour)
	a.Add(&rec)
	r := a.Report()
	if got := r.Figure8.Reads.Max(); got != 2 {
		t.Errorf("deduped read count = %v, want 2", got)
	}
	// Figure 9 sees exactly one gap (9h = 0.375 days).
	if n := r.Figure9.N(); n != 1 {
		t.Errorf("gap samples = %d, want 1", n)
	}
}
