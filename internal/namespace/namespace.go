// Package namespace models the MSS file namespace of the paper's §5.4:
// a directory tree whose population is extremely skewed. At full scale the
// traced store held over 900,000 files in 143,245 directories (Table 4)
// with a maximum depth of 12 and a largest directory of 24,926 files;
// Figure 12 shows 75% of directories holding zero or one file, 90% holding
// ten or fewer, while 5% of the directories hold about half of all files
// and data. The tree generated here reproduces those proportions at any
// scale and supplies per-file directory placement and metadata accounting
// for the analyzers.
package namespace

import (
	"fmt"
	"math/rand"
	"sort"

	"filemig/internal/stats"
	"filemig/internal/units"
)

// Directory is one directory of the MSS namespace.
type Directory struct {
	ID     int
	Parent int // -1 for the root
	Depth  int // root is 0
	Path   string

	FileCount int         // files assigned directly to this directory
	Bytes     units.Bytes // bytes of those files
}

// Tree is a generated namespace with per-directory population targets.
type Tree struct {
	dirs []Directory
	// fileDirs[i] is the directory of file i, filled by PlaceFiles.
	fileDirs []int
}

// Config controls generation. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	Dirs     int   // number of directories (paper: 143,245)
	Files    int   // number of files to place (paper: ~900,000+)
	MaxDepth int   // maximum directory depth (paper: 12)
	Seed     int64 // RNG seed; generation is deterministic per seed

	// Population shape, expressed as Figure 12 fractions.
	FracEmpty      float64 // directories with zero files (default 0.40)
	FracSingle     float64 // directories with exactly one file (default 0.35)
	FracSmallMax10 float64 // directories with 2..10 files (default 0.15)
	// The remainder draws a heavy Pareto tail so ~5% of directories end up
	// holding ~50% of the files.
	TailAlpha float64 // Pareto shape for big directories (default 0.95)
}

// largestDirFraction caps any one directory at the paper's observed
// maximum: 24,926 files of ~905,000 (Table 4), about 2.8%. Without the
// cap a near-critical Pareto tail is dominated by its single largest
// draw at small scales.
const largestDirFraction = 0.028

// DefaultConfig returns the paper-shaped configuration at a given scale in
// (0, 1]; scale 1.0 reproduces Table 4's counts.
func DefaultConfig(scale float64, seed int64) Config {
	if scale <= 0 || scale > 1 {
		panic("namespace: scale must be in (0, 1]")
	}
	return Config{
		Dirs:           max(1, int(143245*scale)),
		Files:          max(1, int(905000*scale)),
		MaxDepth:       12,
		Seed:           seed,
		FracEmpty:      0.40,
		FracSingle:     0.35,
		FracSmallMax10: 0.15,
		TailAlpha:      0.95,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds the tree and places cfg.Files files into directories
// according to the skewed population model.
func Generate(cfg Config) (*Tree, error) {
	if cfg.Dirs < 1 || cfg.Files < 0 || cfg.MaxDepth < 1 {
		return nil, fmt.Errorf("namespace: bad config %+v", cfg)
	}
	if cfg.FracEmpty < 0 || cfg.FracSingle < 0 || cfg.FracSmallMax10 < 0 ||
		cfg.FracEmpty+cfg.FracSingle+cfg.FracSmallMax10 > 1 {
		return nil, fmt.Errorf("namespace: population fractions invalid")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &Tree{dirs: make([]Directory, cfg.Dirs)}
	t.buildSkeleton(cfg, r)
	if err := t.placeFiles(cfg, r); err != nil {
		return nil, err
	}
	return t, nil
}

// buildSkeleton creates the directory hierarchy. Parents are chosen by
// preferential attachment (directories that already have children attract
// more), which yields the bushy-but-deep shape of real archives, capped at
// MaxDepth. At least one chain reaches exactly MaxDepth so Table 4's
// maximum-depth row is reproduced whenever enough directories exist.
func (t *Tree) buildSkeleton(cfg Config, r *rand.Rand) {
	t.dirs[0] = Directory{ID: 0, Parent: -1, Depth: 0, Path: "/mss"}
	// children[i] counts existing children to drive preferential attachment.
	children := make([]int, cfg.Dirs)
	// Force one maximal-depth chain first.
	chain := cfg.MaxDepth
	if chain > cfg.Dirs-1 {
		chain = cfg.Dirs - 1
	}
	for i := 1; i <= chain; i++ {
		parent := i - 1
		t.dirs[i] = Directory{
			ID:     i,
			Parent: parent,
			Depth:  t.dirs[parent].Depth + 1,
			Path:   fmt.Sprintf("%s/d%d", t.dirs[parent].Path, i),
		}
		children[parent]++
	}
	for i := chain + 1; i < cfg.Dirs; i++ {
		parent := t.pickParent(i, children, cfg.MaxDepth, r)
		t.dirs[i] = Directory{
			ID:     i,
			Parent: parent,
			Depth:  t.dirs[parent].Depth + 1,
			Path:   fmt.Sprintf("%s/d%d", t.dirs[parent].Path, i),
		}
		children[parent]++
	}
}

// pickParent samples an existing directory with probability proportional
// to children+1, retrying (bounded) to respect the depth cap.
func (t *Tree) pickParent(limit int, children []int, maxDepth int, r *rand.Rand) int {
	for attempt := 0; attempt < 16; attempt++ {
		p := r.Intn(limit)
		// Preferential attachment: accept with probability scaled by the
		// candidate's weight relative to a small cap; cheap and adequate.
		w := children[p] + 1
		if w > 8 {
			w = 8
		}
		if r.Intn(8) < w && t.dirs[p].Depth < maxDepth {
			return p
		}
	}
	// Fall back to the root, which always has capacity.
	return 0
}

// placeFiles draws a per-directory file-count plan matching the Figure 12
// fractions, scales it to exactly cfg.Files, and materialises fileDirs.
func (t *Tree) placeFiles(cfg Config, r *rand.Rand) error {
	n := len(t.dirs)
	counts := make([]float64, n)
	classes := stats.NewDiscrete(
		cfg.FracEmpty,
		cfg.FracSingle,
		cfg.FracSmallMax10,
		1-cfg.FracEmpty-cfg.FracSingle-cfg.FracSmallMax10,
	)
	// The tail is bimodal, as in real archives: most over-10 directories
	// are medium project directories, but a minority are the huge
	// model-output directories (one file per simulated day) that Figure 12
	// shows holding over half of all files. The Pareto component gives the
	// big ones their spread.
	bigTail := stats.Pareto{Xm: 120, Alpha: cfg.TailAlpha + 0.15}
	dirCap := float64(cfg.Files) * largestDirFraction
	if dirCap < 11 {
		dirCap = 11
	}
	for i := range counts {
		switch classes.Sample(r) {
		case 0:
			counts[i] = 0
		case 1:
			counts[i] = 1
		case 2:
			counts[i] = float64(2 + r.Intn(9)) // 2..10
		default:
			var c float64
			if r.Float64() < 0.3 {
				c = bigTail.Sample(r)
			} else {
				c = 11 + r.Float64()*29 // medium: 11..40
			}
			if c > dirCap {
				c = dirCap
			}
			counts[i] = c
		}
	}
	// Scale the tail so totals hit cfg.Files exactly without disturbing
	// the 0/1/2-10 classes (which define the CDF's left side).
	var fixed, tailSum float64
	for _, c := range counts {
		if c <= 10 {
			fixed += c
		} else {
			tailSum += c
		}
	}
	want := float64(cfg.Files)
	if want < fixed {
		return fmt.Errorf("namespace: %d files too few for %d directories (need >= %.0f)", cfg.Files, cfg.Dirs, fixed)
	}
	scale := 0.0
	if tailSum > 0 {
		scale = (want - fixed) / tailSum
	}
	total := 0
	for i := range counts {
		if counts[i] > 10 {
			counts[i] = counts[i] * scale
			if counts[i] < 11 {
				counts[i] = 11 // keep tail directories large
			}
			if counts[i] > dirCap {
				counts[i] = dirCap
			}
		}
		c := int(counts[i])
		t.dirs[i].FileCount = c
		total += c
	}
	// Distribute the integer remainder over the largest directories.
	rem := cfg.Files - total
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return t.dirs[order[a]].FileCount > t.dirs[order[b]].FileCount
	})
	for i := 0; rem != 0 && n > 0; i = (i + 1) % n {
		d := order[i]
		if rem > 0 {
			t.dirs[d].FileCount++
			rem--
		} else if t.dirs[d].FileCount > 0 {
			t.dirs[d].FileCount--
			rem++
		}
	}
	// Materialise file placement: file indices grouped by directory.
	t.fileDirs = make([]int, 0, cfg.Files)
	for i := range t.dirs {
		for k := 0; k < t.dirs[i].FileCount; k++ {
			t.fileDirs = append(t.fileDirs, i)
		}
	}
	// Shuffle so file IDs do not correlate with directory IDs.
	r.Shuffle(len(t.fileDirs), func(i, j int) {
		t.fileDirs[i], t.fileDirs[j] = t.fileDirs[j], t.fileDirs[i]
	})
	return nil
}

// NumDirs reports the number of directories.
func (t *Tree) NumDirs() int { return len(t.dirs) }

// NumFiles reports the number of placed files.
func (t *Tree) NumFiles() int { return len(t.fileDirs) }

// Dir returns directory metadata by ID.
func (t *Tree) Dir(id int) Directory { return t.dirs[id] }

// FileDir reports the directory ID of file i.
func (t *Tree) FileDir(i int) int { return t.fileDirs[i] }

// FilePath builds the full MSS path of file i.
func (t *Tree) FilePath(i int) string {
	return fmt.Sprintf("%s/f%d", t.dirs[t.fileDirs[i]].Path, i)
}

// AddBytes credits a file's size to its directory (called by the workload
// generator once sizes are drawn).
func (t *Tree) AddBytes(fileID int, size units.Bytes) {
	t.dirs[t.fileDirs[fileID]].Bytes += size
}

// MaxDepth reports the deepest directory.
func (t *Tree) MaxDepth() int {
	d := 0
	for i := range t.dirs {
		if t.dirs[i].Depth > d {
			d = t.dirs[i].Depth
		}
	}
	return d
}

// LargestDir returns the directory holding the most files.
func (t *Tree) LargestDir() Directory {
	best := t.dirs[0]
	for _, d := range t.dirs[1:] {
		if d.FileCount > best.FileCount {
			best = d
		}
	}
	return best
}

// TotalBytes sums all directory byte counts.
func (t *Tree) TotalBytes() units.Bytes {
	var s units.Bytes
	for i := range t.dirs {
		s += t.dirs[i].Bytes
	}
	return s
}

// SizeDistribution returns the three Figure 12 series as weighted CDFs
// over directory size (file count): fraction of directories, fraction of
// files, and fraction of data in directories of at most x files.
func (t *Tree) SizeDistribution() (dirs, files, data *stats.WeightedCDF) {
	dirs, files, data = &stats.WeightedCDF{}, &stats.WeightedCDF{}, &stats.WeightedCDF{}
	for i := range t.dirs {
		n := float64(t.dirs[i].FileCount)
		dirs.Add(n, 1)
		files.Add(n, n)
		data.Add(n, float64(t.dirs[i].Bytes))
	}
	return dirs, files, data
}

// Metadata sizing constants for the §5.4 observation that the NCAR system
// needed gigabytes of disk for metadata (inodes and directories) and that
// over 40% of it described files never referenced again.
const (
	inodeBytes    = 512 // bitfile server per-file metadata record
	dirEntryBytes = 64  // name + id in the parent directory
	dirBytes      = 1024
)

// MetadataBytes estimates the metadata footprint of the namespace.
func (t *Tree) MetadataBytes() units.Bytes {
	files := int64(t.NumFiles())
	dirs := int64(t.NumDirs())
	return units.Bytes(files*(inodeBytes+dirEntryBytes) + dirs*dirBytes)
}

// Table4 summarises the namespace the way the paper's Table 4 does.
type Table4 struct {
	NumFiles     int
	AvgFileSize  units.Bytes
	NumDirs      int
	LargestDir   int
	MaxDepth     int
	TotalData    units.Bytes
	MetadataSize units.Bytes
}

// Summary computes the Table 4 row values.
func (t *Tree) Summary() Table4 {
	var avg units.Bytes
	if n := t.NumFiles(); n > 0 {
		avg = t.TotalBytes() / units.Bytes(n)
	}
	return Table4{
		NumFiles:     t.NumFiles(),
		AvgFileSize:  avg,
		NumDirs:      t.NumDirs(),
		LargestDir:   t.LargestDir().FileCount,
		MaxDepth:     t.MaxDepth(),
		TotalData:    t.TotalBytes(),
		MetadataSize: t.MetadataBytes(),
	}
}
