package namespace

import (
	"strings"
	"testing"

	"filemig/internal/units"
)

func genSmall(t *testing.T) *Tree {
	t.Helper()
	tree, err := Generate(DefaultConfig(0.02, 42)) // ~2,865 dirs, ~18,100 files
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tree
}

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultConfig(0.02, 42)
	tree := genSmall(t)
	if tree.NumDirs() != cfg.Dirs {
		t.Errorf("dirs = %d, want %d", tree.NumDirs(), cfg.Dirs)
	}
	if tree.NumFiles() != cfg.Files {
		t.Errorf("files = %d, want exactly %d", tree.NumFiles(), cfg.Files)
	}
	// Per-directory counts must sum to the file total.
	sum := 0
	for i := 0; i < tree.NumDirs(); i++ {
		sum += tree.Dir(i).FileCount
	}
	if sum != cfg.Files {
		t.Errorf("sum of dir counts = %d, want %d", sum, cfg.Files)
	}
}

func TestMaxDepthReached(t *testing.T) {
	tree := genSmall(t)
	if got := tree.MaxDepth(); got != 12 {
		t.Errorf("max depth = %d, want 12 (Table 4)", got)
	}
	// No directory may exceed the cap.
	for i := 0; i < tree.NumDirs(); i++ {
		if d := tree.Dir(i).Depth; d > 12 {
			t.Fatalf("dir %d depth %d exceeds cap", i, d)
		}
	}
}

func TestTreeIsWellFormed(t *testing.T) {
	tree := genSmall(t)
	for i := 0; i < tree.NumDirs(); i++ {
		d := tree.Dir(i)
		if i == 0 {
			if d.Parent != -1 || d.Depth != 0 {
				t.Fatalf("root malformed: %+v", d)
			}
			continue
		}
		if d.Parent < 0 || d.Parent >= i {
			t.Fatalf("dir %d parent %d not an earlier directory", i, d.Parent)
		}
		p := tree.Dir(d.Parent)
		if d.Depth != p.Depth+1 {
			t.Fatalf("dir %d depth %d, parent depth %d", i, d.Depth, p.Depth)
		}
		if !strings.HasPrefix(d.Path, p.Path+"/") {
			t.Fatalf("dir %d path %q not under parent %q", i, d.Path, p.Path)
		}
	}
}

func TestFigure12Fractions(t *testing.T) {
	tree := genSmall(t)
	dirs, files, _ := tree.SizeDistribution()

	// "75% had only zero or one file".
	if got := dirs.P(1); got < 0.70 || got > 0.80 {
		t.Errorf("fraction of dirs with <=1 file = %.3f, want ~0.75", got)
	}
	// "90% of the directories had 10 or fewer files".
	if got := dirs.P(10); got < 0.85 || got > 0.95 {
		t.Errorf("fraction of dirs with <=10 files = %.3f, want ~0.90", got)
	}
	// "over half of all files ... were in large directories that contained
	// more than 100 files".
	if got := 1 - files.P(100); got < 0.40 {
		t.Errorf("fraction of files in dirs >100 files = %.3f, want > 0.40", got)
	}
}

func TestTopFivePercentHoldsHalfTheFiles(t *testing.T) {
	tree := genSmall(t)
	// Figure 12 caption: 5% of the directories held 50% of the files.
	counts := make([]int, tree.NumDirs())
	for i := range counts {
		counts[i] = tree.Dir(i).FileCount
	}
	// Sort descending and take the top 5%.
	for i := 1; i < len(counts); i++ { // insertion sort is fine at this size
		for j := i; j > 0 && counts[j] > counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	top := len(counts) / 20
	sum := 0
	for _, c := range counts[:top] {
		sum += c
	}
	frac := float64(sum) / float64(tree.NumFiles())
	if frac < 0.35 || frac > 0.75 {
		t.Errorf("top 5%% of dirs hold %.2f of files, want ~0.5", frac)
	}
}

func TestLargestDirScales(t *testing.T) {
	tree := genSmall(t)
	// Table 4: largest directory 24,926 of ~905,000 files (~2.75%). At
	// 2% scale expect a largest directory of hundreds of files.
	big := tree.LargestDir()
	if big.FileCount < 100 {
		t.Errorf("largest dir = %d files, want skew with hundreds", big.FileCount)
	}
	if big.FileCount > tree.NumFiles()/2 {
		t.Errorf("largest dir = %d files, absurdly dominant", big.FileCount)
	}
}

func TestFilePlacementAndPaths(t *testing.T) {
	tree := genSmall(t)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		d := tree.FileDir(i)
		if d < 0 || d >= tree.NumDirs() {
			t.Fatalf("file %d in invalid dir %d", i, d)
		}
		p := tree.FilePath(i)
		if !strings.HasPrefix(p, tree.Dir(d).Path+"/") {
			t.Errorf("file path %q not under its directory %q", p, tree.Dir(d).Path)
		}
		if seen[p] {
			t.Errorf("duplicate file path %q", p)
		}
		seen[p] = true
		if strings.ContainsAny(p, " \t") {
			t.Errorf("path %q contains whitespace", p)
		}
	}
}

func TestAddBytesAndSummary(t *testing.T) {
	tree := genSmall(t)
	for i := 0; i < tree.NumFiles(); i++ {
		tree.AddBytes(i, units.Bytes(25*units.MB))
	}
	s := tree.Summary()
	if s.NumFiles != tree.NumFiles() || s.NumDirs != tree.NumDirs() {
		t.Errorf("summary counts wrong: %+v", s)
	}
	if s.AvgFileSize != units.Bytes(25*units.MB) {
		t.Errorf("avg size = %v, want 25 MB", s.AvgFileSize)
	}
	if s.TotalData != units.Bytes(25*units.MB)*units.Bytes(tree.NumFiles()) {
		t.Errorf("total = %v", s.TotalData)
	}
	if s.MaxDepth != 12 {
		t.Errorf("depth = %d", s.MaxDepth)
	}
	if s.MetadataSize <= 0 {
		t.Error("metadata size should be positive")
	}
}

func TestMetadataGigabytesAtFullScale(t *testing.T) {
	// §5.4: "the NCAR system needs to store gigabytes of metadata on
	// disk". Check the estimate at paper scale without generating: the
	// formula is linear.
	files, dirs := int64(905000), int64(143245)
	meta := units.Bytes(files*(512+64) + dirs*1024)
	if meta < units.Bytes(500*units.MB) {
		t.Errorf("metadata estimate %v too small to support the paper's claim", meta)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(DefaultConfig(0.01, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(0.01, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFiles() != b.NumFiles() {
		t.Fatal("file counts differ across identical seeds")
	}
	for i := 0; i < a.NumFiles(); i += 97 {
		if a.FileDir(i) != b.FileDir(i) {
			t.Fatalf("file %d placed differently across identical seeds", i)
		}
	}
	c, err := Generate(DefaultConfig(0.01, 8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumFiles() && i < c.NumFiles(); i += 11 {
		if a.FileDir(i) != c.FileDir(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Dirs: 0, Files: 10, MaxDepth: 5}); err == nil {
		t.Error("zero dirs should fail")
	}
	if _, err := Generate(Config{Dirs: 10, Files: -1, MaxDepth: 5}); err == nil {
		t.Error("negative files should fail")
	}
	bad := DefaultConfig(0.01, 1)
	bad.FracEmpty = 0.9
	bad.FracSingle = 0.9
	if _, err := Generate(bad); err == nil {
		t.Error("fraction sum > 1 should fail")
	}
	// Far more directories than files cannot satisfy the plan.
	tiny := DefaultConfig(0.01, 1)
	tiny.Files = 10
	if _, err := Generate(tiny); err == nil {
		t.Error("files << dirs should fail")
	}
}

func TestDefaultConfigPanicsOnBadScale(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v should panic", s)
				}
			}()
			DefaultConfig(s, 1)
		}()
	}
}

func TestFullScaleConfigMatchesTable4(t *testing.T) {
	cfg := DefaultConfig(1.0, 1)
	if cfg.Dirs != 143245 {
		t.Errorf("dirs = %d, want 143245", cfg.Dirs)
	}
	if cfg.Files < 900000 {
		t.Errorf("files = %d, want over 900,000", cfg.Files)
	}
	if cfg.MaxDepth != 12 {
		t.Errorf("depth = %d, want 12", cfg.MaxDepth)
	}
}
