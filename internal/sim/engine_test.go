package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := New()
	var order []int
	e.At(3*time.Second, func(time.Duration) { order = append(order, 3) })
	e.At(1*time.Second, func(time.Duration) { order = append(order, 1) })
	e.At(2*time.Second, func(time.Duration) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", e.Steps())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var hits []time.Duration
	e.At(time.Second, func(now time.Duration) {
		hits = append(hits, now)
		e.After(2*time.Second, func(now time.Duration) {
			hits = append(hits, now)
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 3*time.Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5*time.Second, func(now time.Duration) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past should panic")
			}
		}()
		e.At(time.Second, func(time.Duration) {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.After(-time.Second, func(time.Duration) {})
}

func TestEngineStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Second, func(time.Duration) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Second, func(time.Duration) { count++ })
	}
	e.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
	e.RunUntil(20 * time.Second)
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 20*time.Second {
		t.Errorf("clock should advance to deadline; Now = %v", e.Now())
	}
}

func TestEngineEventTimesNondecreasing(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		e := New()
		var fired []time.Duration
		for _, d := range delaysMs {
			e.At(time.Duration(d)*time.Millisecond, func(now time.Duration) {
				fired = append(fired, now)
			})
		}
		e.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEngineRandomisedStress(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	e := New()
	fired := 0
	var schedule func(depth int) Event
	schedule = func(depth int) Event {
		return func(now time.Duration) {
			fired++
			if depth < 3 {
				n := r.Intn(3)
				for i := 0; i < n; i++ {
					e.After(time.Duration(r.Intn(1000))*time.Millisecond, schedule(depth+1))
				}
			}
		}
	}
	for i := 0; i < 100; i++ {
		e.At(time.Duration(r.Intn(10000))*time.Millisecond, schedule(0))
	}
	e.Run()
	if fired < 100 {
		t.Errorf("fired = %d, want >= 100", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Run", e.Pending())
	}
}
