package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestResourceImmediateGrant(t *testing.T) {
	e := New()
	r := NewResource(e, "disk", 2)
	granted := 0
	r.Acquire(func(now, wait time.Duration) {
		granted++
		if wait != 0 {
			t.Errorf("wait = %v, want 0", wait)
		}
	})
	r.Acquire(func(now, wait time.Duration) { granted++ })
	if granted != 2 {
		t.Fatalf("granted = %d, want 2 (both servers free)", granted)
	}
	if r.Busy() != 2 {
		t.Errorf("Busy = %d, want 2", r.Busy())
	}
}

func TestResourceQueueing(t *testing.T) {
	e := New()
	r := NewResource(e, "drive", 1)
	var waits []time.Duration
	// Three requests arrive at t=0, each holding for 10s.
	for i := 0; i < 3; i++ {
		r.Use(10*time.Second, func(now, wait time.Duration) {
			waits = append(waits, wait)
		})
	}
	e.Run()
	if len(waits) != 3 {
		t.Fatalf("completions = %d, want 3", len(waits))
	}
	want := []time.Duration{0, 10 * time.Second, 20 * time.Second}
	for i, w := range waits {
		if w != want[i] {
			t.Errorf("wait[%d] = %v, want %v", i, w, want[i])
		}
	}
	if e.Now() != 30*time.Second {
		t.Errorf("final time = %v, want 30s", e.Now())
	}
}

func TestResourceMultiServer(t *testing.T) {
	e := New()
	r := NewResource(e, "drives", 2)
	done := 0
	for i := 0; i < 4; i++ {
		r.Use(10*time.Second, func(now, wait time.Duration) { done++ })
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 4 jobs, 2 servers, 10s each -> makespan 20s.
	if e.Now() != 20*time.Second {
		t.Errorf("makespan = %v, want 20s", e.Now())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := New()
	r := NewResource(e, "op", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Duration(i)*time.Second, func(time.Duration) {
			r.Use(100*time.Second, func(now, wait time.Duration) {
				order = append(order, i)
			})
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	e := New()
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release on idle resource should panic")
		}
	}()
	r.Release()
}

func TestResourceNegativeHoldPanics(t *testing.T) {
	e := New()
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("negative hold should panic")
		}
	}()
	r.Use(-time.Second, nil)
}

func TestNewResourcePanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero servers should panic")
		}
	}()
	NewResource(New(), "x", 0)
}

func TestResourceStats(t *testing.T) {
	e := New()
	r := NewResource(e, "drive", 1)
	for i := 0; i < 3; i++ {
		r.Use(10*time.Second, nil)
	}
	e.Run()
	st := r.Stats()
	if st.Arrivals != 3 {
		t.Errorf("Arrivals = %d, want 3", st.Arrivals)
	}
	if st.MeanWait != 10*time.Second {
		t.Errorf("MeanWait = %v, want 10s (waits 0,10,20)", st.MeanWait)
	}
	if st.MaxWait != 20*time.Second {
		t.Errorf("MaxWait = %v, want 20s", st.MaxWait)
	}
	if st.MaxQueue != 2 {
		t.Errorf("MaxQueue = %d, want 2", st.MaxQueue)
	}
	if st.Utilization < 0.99 || st.Utilization > 1.01 {
		t.Errorf("Utilization = %v, want ~1.0 (always busy)", st.Utilization)
	}
	if st.Name != "drive" || r.Name() != "drive" {
		t.Errorf("Name = %q", st.Name)
	}
	if r.Servers() != 1 {
		t.Errorf("Servers = %d", r.Servers())
	}
}

func TestResourceUtilizationPartial(t *testing.T) {
	e := New()
	r := NewResource(e, "drive", 1)
	r.Use(10*time.Second, nil)
	e.Run()
	e.RunUntil(20 * time.Second) // idle for the second half
	st := r.Stats()
	if st.Utilization < 0.45 || st.Utilization > 0.55 {
		t.Errorf("Utilization = %v, want ~0.5", st.Utilization)
	}
}

// TestResourceConservation checks an M/M/k-ish random workload: every
// acquire is granted exactly once and queue drains completely.
func TestResourceConservation(t *testing.T) {
	e := New()
	r := NewResource(e, "pool", 3)
	rng := rand.New(rand.NewSource(99))
	const n = 500
	granted := 0
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Intn(100000)) * time.Millisecond
		hold := time.Duration(rng.Intn(5000)) * time.Millisecond
		e.At(at, func(time.Duration) {
			r.Use(hold, func(now, wait time.Duration) { granted++ })
		})
	}
	e.Run()
	if granted != n {
		t.Errorf("granted = %d, want %d", granted, n)
	}
	if r.Busy() != 0 || r.QueueLength() != 0 {
		t.Errorf("resource not drained: busy=%d queue=%d", r.Busy(), r.QueueLength())
	}
	if got := r.Stats().Arrivals; got != n {
		t.Errorf("Arrivals = %d, want %d", got, n)
	}
}
