package sim

import (
	"time"
)

// Resource is a k-server FIFO queueing station: up to Servers requests are
// in service at once, the rest wait in arrival order. It models every
// contended element of the MSS — individual disks, tape drives, silo robot
// arms, and the human operator pool that mounts shelf tapes.
type Resource struct {
	name    string
	servers int
	engine  *Engine

	busy    int
	waiting []*acquisition

	// Statistics.
	arrivals   uint64
	totalWait  time.Duration
	maxWait    time.Duration
	totalHold  time.Duration
	maxQueue   int
	lastChange time.Duration
	busyTime   time.Duration // integral of busy servers over time
}

type acquisition struct {
	arrived time.Duration
	grant   func(now time.Duration, wait time.Duration)
}

// NewResource creates a resource with the given number of parallel servers.
func NewResource(engine *Engine, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{name: name, servers: servers, engine: engine}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Servers reports the configured parallelism.
func (r *Resource) Servers() int { return r.servers }

func (r *Resource) accumulate(now time.Duration) {
	r.busyTime += time.Duration(int64(now-r.lastChange) * int64(r.busy) / int64(r.servers))
	r.lastChange = now
}

// Acquire requests a server. grant runs (possibly immediately) once a
// server is free, receiving the grant time and the time spent queued. The
// holder must call Release exactly once when done.
func (r *Resource) Acquire(grant func(now time.Duration, wait time.Duration)) {
	now := r.engine.Now()
	r.arrivals++
	if r.busy < r.servers {
		r.accumulate(now)
		r.busy++
		grant(now, 0)
		return
	}
	r.waiting = append(r.waiting, &acquisition{arrived: now, grant: grant})
	if len(r.waiting) > r.maxQueue {
		r.maxQueue = len(r.waiting)
	}
}

// Release frees one server, handing it to the longest-waiting requester if
// any. Calling Release with no server held panics.
func (r *Resource) Release() {
	now := r.engine.Now()
	if r.busy == 0 {
		panic("sim: Release on idle resource " + r.name)
	}
	if len(r.waiting) == 0 {
		r.accumulate(now)
		r.busy--
		return
	}
	next := r.waiting[0]
	r.waiting = r.waiting[0].grantAfterShift(r)
	wait := now - next.arrived
	r.totalWait += wait
	if wait > r.maxWait {
		r.maxWait = wait
	}
	// The server transfers directly to the next requester; busy unchanged.
	next.grant(now, wait)
}

func (a *acquisition) grantAfterShift(r *Resource) []*acquisition {
	copy(r.waiting, r.waiting[1:])
	r.waiting[len(r.waiting)-1] = nil
	return r.waiting[:len(r.waiting)-1]
}

// Use is the common acquire→hold→release pattern: wait for a server, hold
// it for hold, then release and invoke done (if non-nil) with the service
// completion time and the queueing delay experienced.
func (r *Resource) Use(hold time.Duration, done func(now time.Duration, wait time.Duration)) {
	if hold < 0 {
		panic("sim: negative hold time")
	}
	r.Acquire(func(now time.Duration, wait time.Duration) {
		r.totalHold += hold
		r.engine.At(now+hold, func(end time.Duration) {
			r.Release()
			if done != nil {
				done(end, wait)
			}
		})
	})
}

// QueueLength reports the number of waiting (not in-service) requests.
func (r *Resource) QueueLength() int { return len(r.waiting) }

// Busy reports the number of servers currently in service.
func (r *Resource) Busy() int { return r.busy }

// Stats is a snapshot of a resource's lifetime statistics.
type Stats struct {
	Name        string
	Arrivals    uint64
	MeanWait    time.Duration
	MaxWait     time.Duration
	MaxQueue    int
	Utilization float64 // mean fraction of servers busy over elapsed time
}

// Stats summarises behaviour up to the current virtual time.
func (r *Resource) Stats() Stats {
	now := r.engine.Now()
	var meanWait time.Duration
	if r.arrivals > 0 {
		meanWait = r.totalWait / time.Duration(r.arrivals)
	}
	util := 0.0
	if now > 0 {
		busyTime := r.busyTime + time.Duration(int64(now-r.lastChange)*int64(r.busy)/int64(r.servers))
		util = float64(busyTime) / float64(now)
	}
	return Stats{
		Name:        r.name,
		Arrivals:    r.arrivals,
		MeanWait:    meanWait,
		MaxWait:     r.maxWait,
		MaxQueue:    r.maxQueue,
		Utilization: util,
	}
}
