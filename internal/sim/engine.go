// Package sim is a small discrete-event simulation engine: an event heap,
// a virtual clock, and queueing resources. It is the substrate beneath the
// mass-storage-system simulator (internal/mss) that regenerates the paper's
// latency measurements: every queueing, mount, seek and transfer delay in
// Figure 3 and Table 3 is an event scheduled here.
//
// Time is a time.Duration offset from the simulation epoch; the engine is
// single-threaded and deterministic: events at equal times fire in
// scheduling order (a monotonically increasing sequence number breaks
// ties), so simulations are exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

type scheduledEvent struct {
	at    time.Duration
	seq   uint64
	fn    Event
	index int
}

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*scheduledEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event heap.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	steps   uint64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps reports how many events have been dispatched.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it indicates a simulator bug, never a data condition.
func (e *Engine) At(at time.Duration, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay after the current time.
func (e *Engine) After(delay time.Duration, fn Event) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// Stop aborts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue empties or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*scheduledEvent)
		e.now = ev.at
		e.steps++
		ev.fn(e.now)
	}
}

// RunUntil dispatches events with time <= deadline, advancing the clock to
// the deadline even if the queue drains early.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.queue).(*scheduledEvent)
		e.now = ev.at
		e.steps++
		ev.fn(e.now)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }
