package migration

import (
	"math/bits"
	"time"

	"filemig/internal/units"
)

// GreedyDual is the shared greedy-dual core behind GDSF and the
// cost-aware policy (Cao & Irani's GreedyDual-Size, with Cherkasova's
// frequency term): every resident file carries a priority
//
//	H(f) = L + Refs(f) · ⌊cost(f) · scale / size(f)⌋
//
// recomputed on each access, where L is the inflation clock — raised to
// the departing file's priority on every eviction, so newly admitted
// files compete against the current working set rather than against
// history. The file with the lowest H evicts first (ties to the lowest
// file ID).
//
// All arithmetic is exact unsigned 64-bit integer: the fixed-point
// scale keeps the cost/size quotient from flooring to zero, division
// truncates, and products saturate at 2^64-1 — so replays are
// byte-identical on every platform and worker count. The float64 image
// of H used for heap keys can collide above 2^53; a collision is just a
// tie and resolves to the lowest file ID, deterministically. Priorities
// change only when a file is accessed (the clock advances between
// accesses but touches nothing resident), so the order is
// time-invariant and GreedyDual implements KeyedPolicy.
type GreedyDual struct {
	name     string
	scale    uint64
	missCost func(size units.Bytes) uint64
	clock    uint64   // L: the inflation clock
	h        []uint64 // FileID -> priority at last access
}

// gdsfScale is the GDSF fixed-point scale: with unit cost the term is
// ⌊2^40/size⌋·Refs, nonzero for any realistic file size (< 2^40 bytes).
const gdsfScale = 1 << 40

// costScale is the cost-aware fixed-point scale: miss costs are
// microseconds (≥ 75e6), so 2^20 headroom keeps the quotient exact
// enough without overflowing the 64-bit product.
const costScale = 1 << 20

// DefaultTapeRateMBps is the cost-aware policy's default transfer rate:
// the silo's observed end-to-end rate (§5.1.1, Table 1 — 2 MB/s against
// the 3 MB/s peak; device.SiloTape3480.ObservedRate, restated here
// because the migration layer does not import the device models).
const DefaultTapeRateMBps = 2

// NewGDSF builds greedy-dual-size-frequency: unit miss cost, so the
// priority is Refs/size on the inflating clock — frequency-weighted
// favouritism for small files.
func NewGDSF() *GreedyDual {
	return &GreedyDual{
		name:     "GDSF",
		scale:    gdsfScale,
		missCost: func(units.Bytes) uint64 { return 1 },
	}
}

// NewCostAware builds the §2.3-priced greedy-dual policy: a miss costs
// the extra tape latency (ExtraTapeLatency, the human wait for a tape
// mount) plus the transfer time of the file's bytes at rateMBps
// megabytes per second, in exact integer microseconds — one megabyte
// per second is one byte per microsecond. rateMBps must be at least 1;
// DefaultTapeRateMBps is the calibrated default.
func NewCostAware(rateMBps int) *GreedyDual {
	if rateMBps < 1 {
		panic("migration: cost-aware transfer rate must be >= 1 MB/s")
	}
	rate := uint64(rateMBps)
	return &GreedyDual{
		name:  "cost:" + itoa(rateMBps),
		scale: costScale,
		missCost: func(size units.Bytes) uint64 {
			return uint64(ExtraTapeLatency/time.Microsecond) + uint64(size)/rate
		},
	}
}

// Name implements Policy.
func (p *GreedyDual) Name() string { return p.name }

// satMul64 multiplies, saturating at 2^64-1.
func satMul64(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi != 0 {
		return ^uint64(0)
	}
	return lo
}

// satAdd64 adds, saturating at 2^64-1.
func satAdd64(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

// FileAccessed implements AccessObserver: recompute the file's priority
// against the current clock.
//
//filemig:hotpath
func (p *GreedyDual) FileAccessed(f *CachedFile, _ time.Time) {
	size := uint64(f.Size)
	if size == 0 {
		size = 1
	}
	term := satMul64(satMul64(p.missCost(f.Size), p.scale)/size, uint64(f.Refs))
	p.h = growTo(p.h, f.ID)
	p.h[f.ID] = satAdd64(p.clock, term)
}

// FileEvicted implements AccessObserver: inflate the clock to the
// departing priority, keeping L monotone even when protection skips the
// true minimum.
//
//filemig:hotpath
func (p *GreedyDual) FileEvicted(f *CachedFile) {
	if f.ID < len(p.h) && p.h[f.ID] > p.clock {
		p.clock = p.h[f.ID]
	}
}

// Key implements KeyedPolicy: lowest priority evicts first.
func (p *GreedyDual) Key(f *CachedFile) float64 {
	if f.ID < len(p.h) {
		return -float64(p.h[f.ID])
	}
	return 0
}

// Rank implements Policy, identically to Key: priorities move only on
// access. Outside the cache's hook-driven replay every file scores
// zero and the order degrades to file-ID order.
func (p *GreedyDual) Rank(f *CachedFile, _ time.Time) float64 { return p.Key(f) }
