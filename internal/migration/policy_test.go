package migration

import (
	"testing"
	"time"

	"filemig/internal/trace"
	"filemig/internal/units"
)

var t0 = trace.Epoch

func cf(id int, size units.Bytes, lastRefAgo time.Duration, refs int) *CachedFile {
	return &CachedFile{
		ID: id, Size: size,
		Inserted: t0.Add(-2 * lastRefAgo), LastRef: t0.Add(-lastRefAgo), Refs: refs,
	}
}

func TestSTPPrefersOldAndLarge(t *testing.T) {
	p := STP{K: 1.4}
	oldBig := cf(1, units.Bytes(100*units.MB), 10*24*time.Hour, 1)
	oldSmall := cf(2, units.Bytes(units.MB), 10*24*time.Hour, 1)
	newBig := cf(3, units.Bytes(100*units.MB), time.Hour, 1)
	if p.Rank(oldBig, t0) <= p.Rank(oldSmall, t0) {
		t.Error("same age: larger file should rank higher")
	}
	if p.Rank(oldBig, t0) <= p.Rank(newBig, t0) {
		t.Error("same size: older file should rank higher")
	}
	if p.Name() != "STP^1.4" {
		t.Errorf("Name = %q", p.Name())
	}
	if (STP{K: 1}).Name() != "STP^1" {
		t.Errorf("Name K=1 = %q", (STP{K: 1}).Name())
	}
}

func TestSTPExponentTradesSizeForRecency(t *testing.T) {
	// With a tiny K, size dominates: a large recently-used file outranks a
	// small ancient one. With a huge K, recency dominates.
	large := cf(1, units.Bytes(199*units.MB), 2*24*time.Hour, 1)
	small := cf(2, units.Bytes(100*units.KB), 60*24*time.Hour, 1)
	lowK := STP{K: 0.1}
	highK := STP{K: 5}
	if lowK.Rank(large, t0) <= lowK.Rank(small, t0) {
		t.Error("K=0.1: size should dominate")
	}
	if highK.Rank(small, t0) <= highK.Rank(large, t0) {
		t.Error("K=5: age should dominate")
	}
}

func TestSTPRankPinnedValues(t *testing.T) {
	// Pin the age unit: Smith measured age in days, so a file last used
	// exactly one day ago has rank 1^K × size = size for every K. The
	// historical *24 bug made that age 576 "days".
	size := units.Bytes(10 * units.MB)
	day := cf(1, size, 24*time.Hour, 1)
	twoDays := cf(2, size, 48*time.Hour, 1)
	threeDays := cf(3, size, 72*time.Hour, 1)
	cases := []struct {
		p    STP
		f    *CachedFile
		want float64
	}{
		{STP{K: 1.4}, day, float64(size)},
		{STP{K: 1}, day, float64(size)},
		{STP{K: 1}, twoDays, 2 * float64(size)},
		{STP{K: 1}, threeDays, 3 * float64(size)},
		{STP{K: 2}, threeDays, 9 * float64(size)},
		{STP{K: 0}, threeDays, float64(size)},
	}
	for _, c := range cases {
		if got := c.p.Rank(c.f, t0); got != c.want {
			t.Errorf("%s.Rank(age %v) = %g, want %g",
				c.p.Name(), t0.Sub(c.f.LastRef), got, c.want)
		}
	}
	if got := (STP{K: 1.4}).Rank(cf(4, size, -time.Hour, 1), t0); got != 0 {
		t.Errorf("future LastRef must clamp to age 0, got rank %g", got)
	}
}

func TestKeyedPolicyCapability(t *testing.T) {
	// Policies with time-invariant victim ordering expose Key; the
	// rank-crossing ones must not, so the cache keeps the scan fallback.
	keyed := []Policy{LRU{}, FIFO{}, LargestFirst{}, SmallestFirst{}, NewOPT(NewFutureIndex(nil))}
	for _, p := range keyed {
		if _, ok := p.(KeyedPolicy); !ok {
			t.Errorf("%s should implement KeyedPolicy", p.Name())
		}
	}
	scan := []Policy{STP{K: 1.4}, SAAC{}, NewRandom(1), ScanOnly{P: LRU{}}}
	for _, p := range scan {
		if _, ok := p.(KeyedPolicy); ok {
			t.Errorf("%s must not implement KeyedPolicy", p.Name())
		}
	}
}

func TestKeyOrderMatchesRankOrder(t *testing.T) {
	// For every keyed policy, Key ordering must agree with Rank ordering
	// at any fixed now (higher rank ⇔ higher key).
	accs := []Access{
		{Time: t0.Add(30 * time.Hour), FileID: 1},
		{Time: t0.Add(90 * time.Hour), FileID: 2},
	}
	files := []*CachedFile{
		cf(1, units.Bytes(4*units.MB), 6*time.Hour, 2),
		cf(2, units.Bytes(64*units.MB), 3*time.Hour, 1),
		cf(3, units.Bytes(units.MB), 48*time.Hour, 5),
		cf(4, units.Bytes(16*units.MB), 12*time.Hour, 1),
	}
	for _, p := range []KeyedPolicy{LRU{}, FIFO{}, LargestFirst{}, SmallestFirst{},
		NewOPT(NewFutureIndex(accs))} {
		for i, a := range files {
			for _, b := range files[i+1:] {
				ra, rb := p.Rank(a, t0), p.Rank(b, t0)
				ka, kb := p.Key(a), p.Key(b)
				if (ra > rb) != (ka > kb) || (ra < rb) != (ka < kb) {
					t.Errorf("%s: rank order (%g vs %g) disagrees with key order (%g vs %g) for files %d/%d",
						p.Name(), ra, rb, ka, kb, a.ID, b.ID)
				}
			}
		}
	}
}

func TestLRURanks(t *testing.T) {
	p := LRU{}
	older := cf(1, 1, time.Hour, 1)
	newer := cf(2, 1000, time.Minute, 1)
	if p.Rank(older, t0) <= p.Rank(newer, t0) {
		t.Error("LRU must prefer the older file regardless of size")
	}
}

func TestSizePolicies(t *testing.T) {
	big := cf(1, units.Bytes(100*units.MB), time.Minute, 1)
	small := cf(2, units.Bytes(units.MB), 100*time.Hour, 1)
	if (LargestFirst{}).Rank(big, t0) <= (LargestFirst{}).Rank(small, t0) {
		t.Error("largest-first must prefer big files")
	}
	if (SmallestFirst{}).Rank(small, t0) <= (SmallestFirst{}).Rank(big, t0) {
		t.Error("smallest-first must prefer small files")
	}
}

func TestFIFORanks(t *testing.T) {
	p := FIFO{}
	early := &CachedFile{ID: 1, Inserted: t0.Add(-10 * time.Hour), LastRef: t0}
	late := &CachedFile{ID: 2, Inserted: t0.Add(-time.Hour), LastRef: t0.Add(-20 * time.Hour)}
	if p.Rank(early, t0) <= p.Rank(late, t0) {
		t.Error("FIFO ranks by insertion, not reference")
	}
}

func TestSAACPrefersQuietOnceBusyFiles(t *testing.T) {
	p := SAAC{}
	busy := cf(1, units.Bytes(10*units.MB), 24*time.Hour, 50)
	quiet := cf(2, units.Bytes(10*units.MB), 24*time.Hour, 1)
	if p.Rank(quiet, t0) <= p.Rank(busy, t0) {
		t.Error("SAAC should evict the file with fewer accumulated references")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, b := NewRandom(5), NewRandom(5)
	f := cf(1, 1, time.Hour, 1)
	for i := 0; i < 10; i++ {
		if a.Rank(f, t0) != b.Rank(f, t0) {
			t.Fatal("random policy must be deterministic per seed")
		}
	}
}

func TestOPTRanksByNextUse(t *testing.T) {
	accs := []Access{
		{Time: t0.Add(1 * time.Hour), FileID: 1},
		{Time: t0.Add(2 * time.Hour), FileID: 2},
		{Time: t0.Add(50 * time.Hour), FileID: 1},
	}
	idx := NewFutureIndex(accs)
	p := NewOPT(idx)
	// After t0+2h: file 1 next used at +50h; file 2 never again.
	now := t0.Add(2 * time.Hour)
	f1 := cf(1, units.Bytes(units.MB), time.Hour, 1)
	f2 := cf(2, units.Bytes(units.MB), time.Hour, 1)
	if p.Rank(f2, now) <= p.Rank(f1, now) {
		t.Error("never-used-again file must rank above one used soon")
	}
	// Among two never-again files, bigger ranks higher.
	f3 := cf(3, units.Bytes(100*units.MB), time.Hour, 1)
	if p.Rank(f3, now) <= p.Rank(f2, now) {
		t.Error("among dead files, bigger should rank higher")
	}
}

func TestFutureIndexCursorAdvances(t *testing.T) {
	accs := []Access{
		{Time: t0.Add(1 * time.Hour), FileID: 7},
		{Time: t0.Add(5 * time.Hour), FileID: 7},
		{Time: t0.Add(9 * time.Hour), FileID: 7},
	}
	idx := NewFutureIndex(accs)
	next, ok := idx.NextAfter(7, t0)
	if !ok || !next.Equal(t0.Add(1*time.Hour)) {
		t.Fatalf("NextAfter(t0) = %v %v", next, ok)
	}
	next, ok = idx.NextAfter(7, t0.Add(5*time.Hour))
	if !ok || !next.Equal(t0.Add(9*time.Hour)) {
		t.Fatalf("NextAfter(+5h) = %v %v", next, ok)
	}
	if _, ok := idx.NextAfter(7, t0.Add(10*time.Hour)); ok {
		t.Error("no reference after +9h")
	}
	if _, ok := idx.NextAfter(99, t0); ok {
		t.Error("unknown file has no future")
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[Policy]string{
		LRU{}:           "LRU",
		LargestFirst{}:  "largest-first",
		SmallestFirst{}: "smallest-first",
		FIFO{}:          "FIFO",
		SAAC{}:          "SAAC",
		NewRandom(1):    "random",
		STP{K: 1.4}:     "STP^1.4",
	}
	for p, want := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
	if NewOPT(NewFutureIndex(nil)).Name() != "OPT" {
		t.Error("OPT name wrong")
	}
}
