package migration

import (
	"testing"
	"time"

	"filemig/internal/units"
)

// modernPolicies builds a fresh instance of every post-1993 policy,
// keyed by name — all five carry per-replay state, so fresh instances
// are mandatory.
func modernPolicies() map[string]func(accs []Access) Policy {
	return map[string]func(accs []Access) Policy{
		"ARC":       func([]Access) Policy { return NewARC() },
		"LRU-2":     func([]Access) Policy { return NewLRUK(2) },
		"LRU-3":     func([]Access) Policy { return NewLRUK(3) },
		"GDSF":      func([]Access) Policy { return NewGDSF() },
		"cost:2":    func([]Access) Policy { return NewCostAware(DefaultTapeRateMBps) },
		"STP-adapt": func([]Access) Policy { return NewAdaptiveSTP() },
	}
}

// TestModernHeapMatchesScan extends the heap-vs-scan equivalence proof
// to the new keyed policies (LRU-K and the greedy-dual pair): forcing
// the scan path with ScanOnly — which passes the observer hooks
// through — must reproduce the heap path's results exactly. STP-adapt
// is scan-only on both sides, so its rows pin determinism instead. ARC
// is absent by design: its victims come from NextVictim on either
// path, so the comparison would be vacuous (TestARCListInvariants
// covers it).
func TestModernHeapMatchesScan(t *testing.T) {
	workloads := []struct {
		name string
		accs []Access
	}{
		{"locality", syntheticString(8000, 11)},
		{"churn", syntheticString(3000, 12)},
	}
	for _, w := range workloads {
		for _, div := range []int64{10, 40, 200} {
			capacity := TotalReferencedBytes(w.accs) / units.Bytes(div)
			for name, mk := range modernPolicies() {
				if name == "ARC" {
					continue
				}
				fast, err := NewCache(CacheConfig{Capacity: capacity, Policy: mk(w.accs)})
				if err != nil {
					t.Fatal(err)
				}
				slow, err := NewCache(CacheConfig{Capacity: capacity, Policy: ScanOnly{P: mk(w.accs)}})
				if err != nil {
					t.Fatal(err)
				}
				fastRes, slowRes := fast.Replay(w.accs), slow.Replay(w.accs)
				if fastRes != slowRes {
					t.Errorf("%s/%s at 1/%d capacity: heap and scan disagree:\n  heap: %+v\n  scan: %+v",
						w.name, name, div, fastRes, slowRes)
				}
			}
		}
	}
}

// TestModernReplayDeterministic replays each new policy twice on fresh
// instances and demands identical results — no hidden global state, no
// iteration-order dependence.
func TestModernReplayDeterministic(t *testing.T) {
	accs := syntheticString(6000, 5)
	capacity := TotalReferencedBytes(accs) / 25
	for name, mk := range modernPolicies() {
		var results [2]CacheResult
		for i := range results {
			c, err := NewCache(CacheConfig{Capacity: capacity, Policy: mk(accs)})
			if err != nil {
				t.Fatal(err)
			}
			results[i] = c.Replay(accs)
		}
		if results[0] != results[1] {
			t.Errorf("%s: two replays disagree:\n  %+v\n  %+v", name, results[0], results[1])
		}
		if results[0].Evictions == 0 {
			t.Errorf("%s: workload produced no evictions; the test is vacuous", name)
		}
	}
}

// TestLRUKOneIsLRU pins the LRU-K boundary case: with K=1 the backward
// K-distance is exactly the last reference time, so lruk:1 must replay
// byte-identically to plain LRU.
func TestLRUKOneIsLRU(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		accs := syntheticString(5000, seed)
		capacity := TotalReferencedBytes(accs) / 30
		lru, err := NewCache(CacheConfig{Capacity: capacity, Policy: LRU{}})
		if err != nil {
			t.Fatal(err)
		}
		lruk, err := NewCache(CacheConfig{Capacity: capacity, Policy: NewLRUK(1)})
		if err != nil {
			t.Fatal(err)
		}
		a, b := lru.Replay(accs), lruk.Replay(accs)
		b.Policy = a.Policy // names differ ("LRU" vs "LRU-1"); all else must not
		if a != b {
			t.Errorf("seed %d: LRU and LRU-1 disagree:\n  LRU:   %+v\n  LRU-1: %+v", seed, a, b)
		}
	}
}

// TestLRUKPrefersShortHistory pins the banding: a file without K
// recorded references evicts before any full-history file, and among
// short-history files the older last reference goes first.
func TestLRUKPrefersShortHistory(t *testing.T) {
	p := NewLRUK(2)
	full := cf(1, units.Bytes(units.MB), time.Hour, 2)
	onceOld := cf(2, units.Bytes(units.MB), 3*time.Hour, 1)
	onceNew := cf(3, units.Bytes(units.MB), time.Hour, 1)
	p.FileAccessed(full, full.LastRef.Add(-time.Hour))
	p.FileAccessed(full, full.LastRef)
	p.FileAccessed(onceOld, onceOld.LastRef)
	p.FileAccessed(onceNew, onceNew.LastRef)
	if !(p.Key(onceOld) > p.Key(onceNew)) {
		t.Error("older single-reference file should evict before the newer one")
	}
	if !(p.Key(onceNew) > p.Key(full)) {
		t.Error("any single-reference file should evict before a full-history one")
	}
}

// TestARCListInvariants replays ARC and checks the structural
// invariants at the end: T1 and T2 together hold exactly the resident
// set (same bytes, same count), the ghost lists stay within the
// capacity bounds, and the target stays within [0, capacity]. Run at
// several pressures so both ghost lists see traffic.
func TestARCListInvariants(t *testing.T) {
	for _, div := range []int64{10, 40, 200} {
		accs := syntheticString(8000, 11)
		capacity := TotalReferencedBytes(accs) / units.Bytes(div)
		p := NewARC()
		c, err := NewCache(CacheConfig{Capacity: capacity, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		res := c.Replay(accs)
		if res.Evictions == 0 {
			t.Fatalf("1/%d capacity: no evictions; the test is vacuous", div)
		}
		if got := p.t1.bytes + p.t2.bytes; got != c.Used() {
			t.Errorf("1/%d capacity: T1+T2 hold %v bytes, cache holds %v", div, got, c.Used())
		}
		n := 0
		for id, e := range p.ent {
			resident := c.lookup(id) != nil
			inT := e.list == arcT1 || e.list == arcT2
			if inT != resident {
				t.Errorf("1/%d capacity: file %d: list %d vs resident %v", div, id, e.list, resident)
			}
			if inT {
				n++
			}
		}
		if n != c.Resident() {
			t.Errorf("1/%d capacity: %d files in T1∪T2, %d resident", div, n, c.Resident())
		}
		if p.target < 0 || p.target > capacity {
			t.Errorf("1/%d capacity: target %v outside [0, %v]", div, p.target, capacity)
		}
		var maxSize units.Bytes
		for _, a := range accs {
			if a.Size > maxSize {
				maxSize = a.Size
			}
		}
		if total := p.t1.bytes + p.t2.bytes + p.b1.bytes + p.b2.bytes; total > 2*capacity+maxSize {
			t.Errorf("1/%d capacity: lists hold %v bytes, bound ~%v", div, total, 2*capacity)
		}
	}
}

// TestARCAdaptsTarget drives a workload with a ghost-hit phase and
// checks the target actually moved off its initial zero — the
// adaptation machinery is alive.
func TestARCAdaptsTarget(t *testing.T) {
	accs := syntheticString(8000, 11)
	capacity := TotalReferencedBytes(accs) / 40
	p := NewARC()
	c, err := NewCache(CacheConfig{Capacity: capacity, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	c.Replay(accs)
	if p.target == 0 {
		t.Error("target never adapted: no recency-ghost hit in a re-referencing workload")
	}
}

// TestAdaptiveSTPConverges feeds a synthetic replay and checks the
// exponent left the prior and stayed inside the clamp — and that the
// trajectory is identical across two runs.
func TestAdaptiveSTPConverges(t *testing.T) {
	accs := syntheticString(8000, 11)
	capacity := TotalReferencedBytes(accs) / 40
	var ks [2]float64
	for i := range ks {
		p := NewAdaptiveSTP()
		c, err := NewCache(CacheConfig{Capacity: capacity, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		c.Replay(accs)
		ks[i] = p.Exponent()
	}
	if ks[0] != ks[1] {
		t.Errorf("exponent trajectory not deterministic: %v vs %v", ks[0], ks[1])
	}
	if ks[0] == stpAdaptPrior {
		t.Error("exponent never refitted from the prior")
	}
	if ks[0] < stpAdaptMinK || ks[0] > stpAdaptMaxK {
		t.Errorf("fitted exponent %v outside clamp [%v, %v]", ks[0], stpAdaptMinK, stpAdaptMaxK)
	}
}

// TestGreedyDualPriorities pins the greedy-dual arithmetic: frequency
// raises priority, size lowers it, and the cost-aware variant prices a
// big file's transfer time above a small one's at equal frequency.
func TestGreedyDualPriorities(t *testing.T) {
	now := t0
	g := NewGDSF()
	small := cf(1, units.Bytes(units.MB), time.Hour, 1)
	large := cf(2, units.Bytes(100*units.MB), time.Hour, 1)
	g.FileAccessed(small, now)
	g.FileAccessed(large, now)
	if !(g.Key(large) > g.Key(small)) {
		t.Error("GDSF: at equal frequency the larger file should evict first")
	}
	hot := cf(3, units.Bytes(100*units.MB), time.Hour, 5)
	g.FileAccessed(hot, now)
	if !(g.Key(large) > g.Key(hot)) {
		t.Error("GDSF: at equal size the less-referenced file should evict first")
	}

	// Cost-aware: the 75 s mount dwarfs transfer for small files, so at
	// equal refs the policy behaves like GDSF (big evicts first); but a
	// big file's total miss cost is strictly higher than a small one's.
	ca := NewCostAware(DefaultTapeRateMBps)
	if cs, cl := ca.missCost(small.Size), ca.missCost(large.Size); cl <= cs {
		t.Errorf("cost: 100 MB miss (%d µs) should cost more than 1 MB (%d µs)", cl, cs)
	}
	if ca.missCost(0) != 75_000_000 {
		t.Errorf("cost: zero-byte miss should cost exactly the mount latency, got %d µs", ca.missCost(0))
	}
}

// TestGreedyDualClockInflates replays GDSF under pressure and checks
// the inflation clock moved — aging is alive — while priorities stay
// exactly reproducible.
func TestGreedyDualClockInflates(t *testing.T) {
	accs := syntheticString(6000, 5)
	capacity := TotalReferencedBytes(accs) / 25
	p := NewGDSF()
	c, err := NewCache(CacheConfig{Capacity: capacity, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	c.Replay(accs)
	if p.clock == 0 {
		t.Error("inflation clock never advanced under eviction pressure")
	}
}

// TestModernPolicyNames pins the display names the experiment grammar
// and rendered tables rely on.
func TestModernPolicyNames(t *testing.T) {
	for want, mk := range map[string]Policy{
		"ARC":       NewARC(),
		"LRU-2":     NewLRUK(2),
		"LRU-16":    NewLRUK(16),
		"GDSF":      NewGDSF(),
		"cost:2":    NewCostAware(2),
		"cost:40":   NewCostAware(40),
		"STP-adapt": NewAdaptiveSTP(),
	} {
		if got := mk.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

// TestModernConstructorsReject pins the loud-failure contracts.
func TestModernConstructorsReject(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewLRUK(0)", func() { NewLRUK(0) })
	mustPanic("NewCostAware(0)", func() { NewCostAware(0) })
	mustPanic("NewCostAware(-1)", func() { NewCostAware(-1) })
}
