package migration

import (
	"testing"

	"filemig/internal/units"
)

// shippedPolicies builds a fresh instance of every policy the package
// ships, keyed by name. Fresh instances matter: Random and OPT carry
// per-replay state.
func shippedPolicies() map[string]func(accs []Access) Policy {
	return map[string]func(accs []Access) Policy{
		"STP^1.4":        func([]Access) Policy { return STP{K: 1.4} },
		"STP^1":          func([]Access) Policy { return STP{K: 1.0} },
		"LRU":            func([]Access) Policy { return LRU{} },
		"FIFO":           func([]Access) Policy { return FIFO{} },
		"largest-first":  func([]Access) Policy { return LargestFirst{} },
		"smallest-first": func([]Access) Policy { return SmallestFirst{} },
		"SAAC":           func([]Access) Policy { return SAAC{} },
		"random":         func([]Access) Policy { return NewRandom(42) },
		"OPT":            func(accs []Access) Policy { return NewOPT(NewFutureIndex(accs)) },
	}
}

// TestHeapMatchesScanVictimSelection proves the tentpole refactor safe:
// for every shipped policy, replaying a generated workload with the
// indexed eviction heap (the default for keyed policies) produces exactly
// the same result — hence the same victim sequence — as forcing the
// deterministic scan path with ScanOnly. For scan-only policies the two
// runs take the same path and the test pins determinism instead.
func TestHeapMatchesScanVictimSelection(t *testing.T) {
	workloads := []struct {
		name string
		accs []Access
	}{
		{"locality", syntheticString(8000, 11)},
		{"churn", syntheticString(3000, 12)},
	}
	for _, w := range workloads {
		for _, div := range []int64{10, 40, 200} { // generous to starved caches
			capacity := TotalReferencedBytes(w.accs) / units.Bytes(div)
			for name, mk := range shippedPolicies() {
				fast, err := NewCache(CacheConfig{Capacity: capacity, Policy: mk(w.accs)})
				if err != nil {
					t.Fatal(err)
				}
				slow, err := NewCache(CacheConfig{Capacity: capacity, Policy: ScanOnly{P: mk(w.accs)}})
				if err != nil {
					t.Fatal(err)
				}
				fastRes, slowRes := fast.Replay(w.accs), slow.Replay(w.accs)
				if fastRes != slowRes {
					t.Errorf("%s/%s at 1/%d capacity: heap and scan disagree:\n  heap: %+v\n  scan: %+v",
						w.name, name, div, fastRes, slowRes)
				}
				if fast.Used() != slow.Used() || fast.Resident() != slow.Resident() {
					t.Errorf("%s/%s: final occupancy differs: %v/%d vs %v/%d",
						w.name, name, fast.Used(), fast.Resident(), slow.Used(), slow.Resident())
				}
			}
		}
	}
}
