package migration

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"filemig/internal/trace"
	"filemig/internal/units"
)

// Access is one reference in the replayed string: the inputs the cache
// simulator and the offline policies need. FileID and DirID must be the
// dense non-negative identifiers AccessesFromRecords assigns — every
// replay structure is a FileID-indexed slice, so a negative ID is a
// programming error (the simulators reject it loudly rather than
// corrupting an index).
type Access struct {
	Time   time.Time
	FileID int
	Size   units.Bytes
	Write  bool
	DirID  int // namespace directory, for prefetch experiments
}

// AccessesFromRecords converts trace records (time-sorted, errors skipped)
// into an access string, assigning dense file IDs by MSS path and
// directory IDs by the path's directory prefix. Directory derivation is
// the interner's, shared with the core analysis: a root-level file lives
// in "/" (historically this builder gave each root file a singleton
// directory named after itself; generated traces have no root files, so
// only hand-built ones can observe the unification).
func AccessesFromRecords(recs []trace.Record) []Access {
	return AccessesFromRecordsInterned(trace.NewInterner(), recs)
}

// AccessesFromRecordsInterned is AccessesFromRecords through a caller-
// supplied interner, so several conversions (or a conversion and other
// per-path state) share one path table instead of each building its own.
// File and directory IDs are the interner's: passing a fresh interner
// reproduces AccessesFromRecords' historical first-seen numbering, while
// a pre-warmed interner keeps IDs stable across calls.
func AccessesFromRecordsInterned(in *trace.Interner, recs []trace.Record) []Access {
	out := make([]Access, 0, len(recs))
	for i := range recs {
		out = AppendAccessInterned(in, out, &recs[i])
	}
	return out
}

// AppendAccessInterned appends one record's access to dst through in,
// skipping error records — the record-at-a-time form of
// AccessesFromRecordsInterned, for callers consuming a trace stream
// without materializing it.
func AppendAccessInterned(in *trace.Interner, dst []Access, r *trace.Record) []Access {
	if !r.OK() {
		return dst
	}
	id := in.Intern(r.MSSPath)
	return append(dst, Access{
		Time:   r.Start,
		FileID: int(id),
		Size:   r.Size,
		Write:  r.Op == trace.Write,
		DirID:  int(in.Dir(id)),
	})
}

// Prefetcher proposes extra files to stage in alongside a demand fetch.
type Prefetcher interface {
	// Prefetch returns file IDs to load after the given demand access.
	Prefetch(a Access) []int
}

// CacheConfig configures one cache-simulation run.
type CacheConfig struct {
	Capacity units.Bytes
	Policy   Policy
	// Prefetch, when non-nil, stages additional files on each demand miss
	// (§6: use idle resources to prefetch files that might be read soon).
	Prefetch Prefetcher
}

// CacheResult summarises a run. The paper's figure of merit is the read
// miss ratio: every read miss stalls a human for a tape fetch, while
// writes always land in the cache (§6: humans wait for reads, computers
// wait for writes).
type CacheResult struct {
	Policy       string
	Capacity     units.Bytes
	Accesses     int64
	Reads        int64
	ReadHits     int64
	ReadMisses   int64
	WriteInserts int64
	Evictions    int64
	// StreamThroughs counts accesses to files that cannot be resident:
	// bigger than the whole cache, or rewrites that grew a file beyond it.
	StreamThroughs int64
	BytesMissed    units.Bytes
	BytesRead      units.Bytes
	Prefetches     int64
	PrefetchHits   int64 // read hits on files present only due to prefetch
}

// MissRatio is read misses over reads.
func (r CacheResult) MissRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadMisses) / float64(r.Reads)
}

// ByteMissRatio is missed bytes over read bytes.
func (r CacheResult) ByteMissRatio() float64 {
	if r.BytesRead == 0 {
		return 0
	}
	return float64(r.BytesMissed) / float64(r.BytesRead)
}

// ExtraTapeLatency is the canonical added human wait of a read miss —
// the tape path versus the disk path to first byte (Table 3: ~104 s
// silo vs ~30 s disk) — the extraLatency the §2.3 person-minutes
// figures use.
const ExtraTapeLatency = 75 * time.Second

// PersonMinutesPerDay estimates the §2.3 human-cost metric: every read
// miss costs the requesting scientist the extra tape latency over disk.
func (r CacheResult) PersonMinutesPerDay(days float64, extraLatency time.Duration) float64 {
	if days <= 0 {
		return 0
	}
	return float64(r.ReadMisses) * extraLatency.Minutes() / days
}

type residentFile struct {
	CachedFile
	prefetched bool    // resident due to prefetch, not yet demanded
	key        float64 // eviction priority under a KeyedPolicy
	heapIndex  int     // position in Cache.order; -1 off-heap
}

// evictHeap is the indexed priority heap over resident files: the top is
// the next eviction victim — highest key first, ties to the lowest file
// ID, so victim selection never depends on map iteration order.
type evictHeap []*residentFile

func (h evictHeap) Len() int { return len(h) }
func (h evictHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key > h[j].key
	}
	return h[i].ID < h[j].ID
}
func (h evictHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *evictHeap) Push(x any) {
	f := x.(*residentFile)
	f.heapIndex = len(*h)
	*h = append(*h, f)
}
func (h *evictHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.heapIndex = -1
	*h = old[:n-1]
	return f
}

// Cache is the migration simulator: a finite staging disk in front of the
// tape archive, replaying an access string under a policy.
//
// Residency is a FileID-indexed slice (the access-string builder hands
// out dense IDs), so the per-access lookup is one bounds check and one
// load; evicted residentFile slots are recycled through a free list, so
// a steady-state replay allocates nothing per access. Victim selection
// is the policy's own NextVictim when it implements VictimPolicy (ARC's
// structural dual-list choice), O(log R) when it implements KeyedPolicy
// (its order is maintained in an indexed heap, updated on insert and
// touch), and otherwise a deterministic scan of the residents in
// ascending file ID order, so rank-crossing policies stay correct.
// Policies implementing AccessObserver are fed every insert, touch, and
// removal, in replay order.
type Cache struct {
	cfg      CacheConfig
	resident []*residentFile // FileID-indexed; nil when absent
	nres     int
	used     units.Bytes
	res      CacheResult

	keyed  KeyedPolicy    // non-nil when cfg.Policy supports heap ordering
	obs    AccessObserver // non-nil when the policy observes accesses
	victim VictimPolicy   // non-nil when the policy picks victims itself
	order  evictHeap
	live   liveSet         // scan path only: resident IDs
	free   []*residentFile // recycled slots
	ranked []rankedFile    // scratch: scan candidates with ranks
}

// NewCache builds a cache simulator.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("migration: capacity must be positive")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("migration: policy required")
	}
	c := &Cache{
		cfg: cfg,
		res: CacheResult{Policy: cfg.Policy.Name(), Capacity: cfg.Capacity},
	}
	if kp, ok := cfg.Policy.(KeyedPolicy); ok {
		c.keyed = kp
	}
	// Observer, victim, and capacity capabilities survive a ScanOnly
	// wrapper: ScanOnly exists to disable the keyed fast path, not to
	// cut a stateful policy off from the accesses it must see.
	core := policyCore(cfg.Policy)
	if o, ok := core.(AccessObserver); ok {
		c.obs = o
	}
	if v, ok := core.(VictimPolicy); ok {
		c.victim = v
	}
	if ca, ok := core.(CapacityAware); ok {
		ca.SetCapacity(cfg.Capacity)
	}
	return c, nil
}

// lookup returns the resident entry for a file ID, or nil.
func (c *Cache) lookup(id int) *residentFile {
	if id < 0 || id >= len(c.resident) {
		return nil
	}
	return c.resident[id]
}

// growTo extends a FileID-indexed slice with zero values until index id
// is addressable — the shared growth idiom for every dense-ID table in
// this package.
func growTo[T any](s []T, id int) []T {
	for id >= len(s) {
		var zero T
		s = append(s, zero)
	}
	return s
}

// liveSet maintains the ascending resident-ID list the scan eviction
// paths walk, so a shrink visits residents — not every FileID slot ever
// seen. Inserts are O(1) appends to an unsorted pending buffer; the
// buffer is sorted and merged into the main list only when a scan needs
// it, so insert-heavy replays (big caches, few evictions) never pay a
// per-insert array shift.
type liveSet struct {
	sorted  []int
	pending []int
	scratch []int // retired sorted buffer, reused by the next merge
}

// add registers a newly resident ID.
func (l *liveSet) add(id int) { l.pending = append(l.pending, id) }

// drop unregisters an ID, wherever it currently lives.
func (l *liveSet) drop(id int) {
	if i := sort.SearchInts(l.sorted, id); i < len(l.sorted) && l.sorted[i] == id {
		l.sorted = append(l.sorted[:i], l.sorted[i+1:]...)
		return
	}
	for j, p := range l.pending {
		if p == id {
			l.pending = append(l.pending[:j], l.pending[j+1:]...)
			return
		}
	}
}

// ids returns the resident IDs in ascending order, folding any pending
// inserts in first.
func (l *liveSet) ids() []int {
	if len(l.pending) == 0 {
		return l.sorted
	}
	sort.Ints(l.pending)
	if len(l.sorted) == 0 {
		l.sorted = append(l.sorted, l.pending...)
	} else {
		merged := l.scratch[:0]
		i, j := 0, 0
		for i < len(l.sorted) || j < len(l.pending) {
			if j >= len(l.pending) || (i < len(l.sorted) && l.sorted[i] < l.pending[j]) {
				merged = append(merged, l.sorted[i])
				i++
			} else {
				merged = append(merged, l.pending[j])
				j++
			}
		}
		l.scratch = l.sorted[:0] // retire the old buffer for the next merge
		l.sorted = merged
	}
	l.pending = l.pending[:0]
	return l.sorted
}

// Replay runs the whole access string and returns the result.
func (c *Cache) Replay(accs []Access) CacheResult {
	for i := range accs {
		c.Step(accs[i])
	}
	return c.Result()
}

// Step processes a single access.
//
//filemig:hotpath
func (c *Cache) Step(a Access) {
	if a.FileID < 0 {
		panic("migration: negative Access.FileID")
	}
	c.res.Accesses++
	f := c.lookup(a.FileID)
	hit := f != nil
	if a.Write {
		c.res.WriteInserts++
		if hit {
			if a.Size > c.cfg.Capacity {
				// The rewrite grew the file beyond the whole cache: it can
				// no longer be resident and streams through to tape.
				c.remove(f)
				c.res.StreamThroughs++
				return
			}
			// A rewrite may change the file's size; adjust occupancy and
			// evict if the growth overflows the cache.
			c.used += a.Size - f.CachedFile.Size
			f.Size = a.Size
			c.touch(f, a.Time)
			c.shrinkTo(c.cfg.Capacity, a.Time, a.FileID)
			return
		}
		c.insert(a, a.Time, false)
		return
	}
	c.res.Reads++
	c.res.BytesRead += a.Size
	if hit {
		c.res.ReadHits++
		if f.prefetched {
			c.res.PrefetchHits++
			f.prefetched = false
		}
		c.touch(f, a.Time)
		return
	}
	c.res.ReadMisses++
	c.res.BytesMissed += a.Size
	c.insert(a, a.Time, false)
	if c.cfg.Prefetch != nil {
		for _, id := range c.cfg.Prefetch.Prefetch(a) {
			if c.lookup(id) != nil || id == a.FileID {
				continue
			}
			c.res.Prefetches++
			c.insert(Access{Time: a.Time, FileID: id, Size: a.Size}, a.Time, true)
		}
	}
}

// touch refreshes a resident file's recency and, under a keyed policy,
// its position in the eviction heap. Policies keyed on insertion time or
// size (FIFO, largest/smallest-first) return an unchanged key on touch,
// making hot-path hits O(1).
func (c *Cache) touch(f *residentFile, now time.Time) {
	f.LastRef = now
	f.Refs++
	if c.obs != nil {
		c.obs.FileAccessed(&f.CachedFile, now)
	}
	if c.keyed != nil {
		if k := c.keyed.Key(&f.CachedFile); k != f.key {
			f.key = k
			heap.Fix(&c.order, f.heapIndex)
		}
	}
}

func (c *Cache) insert(a Access, now time.Time, prefetched bool) {
	size := a.Size
	if size > c.cfg.Capacity {
		// A file bigger than the whole cache can never be resident; it
		// streams through (counts as a miss each read). Only demand
		// accesses count: a prefetch candidate's size is a guess, not a
		// reference.
		if !prefetched {
			c.res.StreamThroughs++
		}
		return
	}
	c.shrinkTo(c.cfg.Capacity-size, now, a.FileID)
	var f *residentFile
	if n := len(c.free); n > 0 {
		f = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		f = &residentFile{}
	}
	*f = residentFile{
		CachedFile: CachedFile{
			ID: a.FileID, Size: size, Inserted: now, LastRef: now, Refs: 1,
		},
		prefetched: prefetched,
		heapIndex:  -1,
	}
	c.resident = growTo(c.resident, a.FileID)
	c.resident[a.FileID] = f
	c.nres++
	c.used += size
	if c.obs != nil {
		c.obs.FileAccessed(&f.CachedFile, now)
	}
	if c.keyed != nil {
		f.key = c.keyed.Key(&f.CachedFile)
		heap.Push(&c.order, f)
	} else {
		c.live.add(a.FileID)
	}
}

// remove drops a file from the cache without counting an eviction,
// recycling its slot through the free list.
func (c *Cache) remove(f *residentFile) {
	if c.obs != nil {
		c.obs.FileEvicted(&f.CachedFile)
	}
	c.used -= f.CachedFile.Size
	c.resident[f.ID] = nil
	c.nres--
	if c.keyed != nil {
		if f.heapIndex >= 0 {
			heap.Remove(&c.order, f.heapIndex)
		}
	} else {
		c.live.drop(f.ID)
	}
	c.free = append(c.free, f)
}

// shrinkTo evicts policy victims until used <= target. The protected file
// (the one being accessed) is never evicted.
func (c *Cache) shrinkTo(target units.Bytes, now time.Time, protect int) {
	if c.used <= target {
		return
	}
	if c.victim != nil {
		for c.used > target {
			id, ok := c.victim.NextVictim(protect)
			if !ok {
				return // nothing evictable
			}
			f := c.lookup(id)
			if f == nil {
				panic("migration: victim policy chose a non-resident file")
			}
			c.remove(f)
			c.res.Evictions++
		}
		return
	}
	if c.keyed != nil {
		for c.used > target {
			victim := c.pickHeap(protect)
			if victim == nil {
				return // nothing evictable
			}
			c.remove(victim)
			c.res.Evictions++
		}
		return
	}
	c.shrinkScan(target, now, protect)
}

// pickHeap returns the heap top, or — when the top is the protected file
// — the better of the root's children, which is where a binary heap keeps
// its second-best element.
func (c *Cache) pickHeap(protect int) *residentFile {
	if len(c.order) == 0 {
		return nil
	}
	if top := c.order[0]; top.ID != protect {
		return top
	}
	switch len(c.order) {
	case 1:
		return nil
	case 2:
		return c.order[1]
	}
	if c.order.Less(2, 1) {
		return c.order[2]
	}
	return c.order[1]
}

// rankedFile is a scan candidate paired with its rank at shrink time.
type rankedFile struct {
	f    *residentFile
	rank float64
}

// rankedBefore reports whether a evicts before b: higher rank first,
// equal ranks to the lowest file ID — never map iteration order.
func rankedBefore(a, b rankedFile) bool {
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	return a.f.ID < b.f.ID
}

func siftDown(h []rankedFile, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && rankedBefore(h[r], h[l]) {
			best = r
		}
		if !rankedBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// shrinkScan is the eviction path for rank-crossing policies (STP, SAAC,
// Random). The clock is fixed for the whole shrink and untouched files'
// ranks cannot move, so every candidate is ranked exactly once; the
// candidates are then max-heapified on (rank, lowest file ID) and popped
// until enough space is free. One Rank pass amortises over every victim
// of the shrink, instead of the historical full re-scan per eviction.
// The live resident-ID list is walked in ascending file ID order, which
// both keeps the victim sequence deterministic and hands stateful
// policies (Random) their rank draws in a reproducible order.
func (c *Cache) shrinkScan(target units.Bytes, now time.Time, protect int) {
	cands := c.ranked[:0]
	for _, id := range c.live.ids() {
		if id != protect {
			f := c.resident[id]
			cands = append(cands, rankedFile{f, c.cfg.Policy.Rank(&f.CachedFile, now)})
		}
	}
	for i := len(cands)/2 - 1; i >= 0; i-- {
		siftDown(cands, i)
	}
	for c.used > target && len(cands) > 0 {
		c.remove(cands[0].f)
		c.res.Evictions++
		n := len(cands) - 1
		cands[0] = cands[n]
		cands[n] = rankedFile{} // release the evicted file
		cands = cands[:n]
		siftDown(cands, 0)
	}
	for i := range cands {
		cands[i] = rankedFile{}
	}
	c.ranked = cands[:0]
}

// Result returns the statistics so far.
func (c *Cache) Result() CacheResult { return c.res }

// Used reports current occupancy.
func (c *Cache) Used() units.Bytes { return c.used }

// Resident reports the number of resident files.
func (c *Cache) Resident() int { return c.nres }

// SweepPoint is one (capacity, result) pair of a capacity sweep.
type SweepPoint struct {
	CapacityFraction float64
	Result           CacheResult
}

// CapacitySweep replays the access string at several cache sizes
// expressed as fractions of the total referenced data, for one policy
// builder (a fresh Policy per run — Random and OPT carry state). The
// replays run serially; use CapacitySweepWorkers to fan out.
func CapacitySweep(accs []Access, fractions []float64, mk func() Policy) ([]SweepPoint, error) {
	return CapacitySweepWorkers(accs, fractions, mk, 0)
}

// TotalReferencedBytes sums the distinct files' sizes (last size seen per
// file), i.e. the tertiary-store footprint of the access string. File IDs
// are dense, so the last-size table is a flat slice; unreferenced IDs
// stay zero and contribute nothing to the sum.
func TotalReferencedBytes(accs []Access) units.Bytes {
	var sizes []units.Bytes
	for _, a := range accs {
		sizes = growTo(sizes, a.FileID)
		sizes[a.FileID] = a.Size
	}
	var t units.Bytes
	for _, s := range sizes {
		t += s
	}
	return t
}

// ComparePolicies replays the same access string under each policy at the
// given capacity and returns results sorted by read miss ratio (best
// first). The replays run serially (use ComparePoliciesWorkers to fan
// out); each Policy instance must be private to its entry.
func ComparePolicies(accs []Access, capacity units.Bytes, policies []Policy) ([]CacheResult, error) {
	return ComparePoliciesWorkers(accs, capacity, policies, 0)
}

func sortByMissRatio(out []CacheResult) {
	sort.SliceStable(out, func(i, j int) bool { return out[i].MissRatio() < out[j].MissRatio() })
}

// DirPrefetcher prefetches the most recent other files of the directory
// being read — the paper's observation that a researcher reading day 1 of
// a model run will usually want day 2 (§5.2.1). Both indexes are flat
// slices over the dense file and directory ID spaces.
type DirPrefetcher struct {
	byDir [][]int // DirID -> file IDs in first-seen order
	pos   []int   // FileID -> index within its directory list; -1 unseen
	Count int     // how many neighbours to prefetch (default 1)
}

// NewDirPrefetcher indexes the access string's directory structure.
func NewDirPrefetcher(accs []Access, count int) *DirPrefetcher {
	if count < 1 {
		count = 1
	}
	p := &DirPrefetcher{Count: count}
	for _, a := range accs {
		for a.FileID >= len(p.pos) {
			p.pos = append(p.pos, -1) // not growTo: unseen is -1, not 0
		}
		p.byDir = growTo(p.byDir, a.DirID)
		if p.pos[a.FileID] < 0 {
			p.pos[a.FileID] = len(p.byDir[a.DirID])
			p.byDir[a.DirID] = append(p.byDir[a.DirID], a.FileID)
		}
	}
	return p
}

// Prefetch implements Prefetcher: the next Count files of the same
// directory in first-reference order.
func (p *DirPrefetcher) Prefetch(a Access) []int {
	if a.FileID < 0 || a.FileID >= len(p.pos) || p.pos[a.FileID] < 0 ||
		a.DirID < 0 || a.DirID >= len(p.byDir) {
		return nil
	}
	files := p.byDir[a.DirID]
	i := p.pos[a.FileID]
	var out []int
	for k := 1; k <= p.Count && i+k < len(files); k++ {
		out = append(out, files[i+k])
	}
	return out
}
