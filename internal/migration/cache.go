package migration

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"filemig/internal/trace"
	"filemig/internal/units"
)

// Access is one reference in the replayed string: the inputs the cache
// simulator and the offline policies need.
type Access struct {
	Time   time.Time
	FileID int
	Size   units.Bytes
	Write  bool
	DirID  int // namespace directory, for prefetch experiments
}

// AccessesFromRecords converts trace records (time-sorted, errors skipped)
// into an access string, assigning dense file IDs by MSS path and
// directory IDs by the path's directory prefix.
func AccessesFromRecords(recs []trace.Record) []Access {
	fileIDs := map[string]int{}
	dirIDs := map[string]int{}
	out := make([]Access, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if !r.OK() {
			continue
		}
		id, ok := fileIDs[r.MSSPath]
		if !ok {
			id = len(fileIDs)
			fileIDs[r.MSSPath] = id
		}
		dir := r.MSSPath
		if j := strings.LastIndexByte(dir, '/'); j > 0 {
			dir = dir[:j]
		}
		did, ok := dirIDs[dir]
		if !ok {
			did = len(dirIDs)
			dirIDs[dir] = did
		}
		out = append(out, Access{
			Time:   r.Start,
			FileID: id,
			Size:   r.Size,
			Write:  r.Op == trace.Write,
			DirID:  did,
		})
	}
	return out
}

// Prefetcher proposes extra files to stage in alongside a demand fetch.
type Prefetcher interface {
	// Prefetch returns file IDs to load after the given demand access.
	Prefetch(a Access) []int
}

// CacheConfig configures one cache-simulation run.
type CacheConfig struct {
	Capacity units.Bytes
	Policy   Policy
	// Prefetch, when non-nil, stages additional files on each demand miss
	// (§6: use idle resources to prefetch files that might be read soon).
	Prefetch Prefetcher
}

// CacheResult summarises a run. The paper's figure of merit is the read
// miss ratio: every read miss stalls a human for a tape fetch, while
// writes always land in the cache (§6: humans wait for reads, computers
// wait for writes).
type CacheResult struct {
	Policy       string
	Capacity     units.Bytes
	Accesses     int64
	Reads        int64
	ReadHits     int64
	ReadMisses   int64
	WriteInserts int64
	Evictions    int64
	BytesMissed  units.Bytes
	BytesRead    units.Bytes
	Prefetches   int64
	PrefetchHits int64 // read hits on files present only due to prefetch
}

// MissRatio is read misses over reads.
func (r CacheResult) MissRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadMisses) / float64(r.Reads)
}

// ByteMissRatio is missed bytes over read bytes.
func (r CacheResult) ByteMissRatio() float64 {
	if r.BytesRead == 0 {
		return 0
	}
	return float64(r.BytesMissed) / float64(r.BytesRead)
}

// PersonMinutesPerDay estimates the §2.3 human-cost metric: every read
// miss costs the requesting scientist the extra tape latency over disk.
func (r CacheResult) PersonMinutesPerDay(days float64, extraLatency time.Duration) float64 {
	if days <= 0 {
		return 0
	}
	return float64(r.ReadMisses) * extraLatency.Minutes() / days
}

type residentFile struct {
	CachedFile
	prefetched bool // resident due to prefetch, not yet demanded
}

// Cache is the migration simulator: a finite staging disk in front of the
// tape archive, replaying an access string under a policy.
type Cache struct {
	cfg      CacheConfig
	resident map[int]*residentFile
	used     units.Bytes
	res      CacheResult
}

// NewCache builds a cache simulator.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("migration: capacity must be positive")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("migration: policy required")
	}
	return &Cache{
		cfg:      cfg,
		resident: map[int]*residentFile{},
		res:      CacheResult{Policy: cfg.Policy.Name(), Capacity: cfg.Capacity},
	}, nil
}

// Replay runs the whole access string and returns the result.
func (c *Cache) Replay(accs []Access) CacheResult {
	for i := range accs {
		c.Step(accs[i])
	}
	return c.Result()
}

// Step processes a single access.
func (c *Cache) Step(a Access) {
	c.res.Accesses++
	f, hit := c.resident[a.FileID]
	if a.Write {
		c.res.WriteInserts++
		if hit {
			// A rewrite may change the file's size; adjust occupancy and
			// evict if the growth overflows the cache.
			c.used += a.Size - f.CachedFile.Size
			f.Size = a.Size
			c.touch(f, a.Time)
			c.shrinkTo(c.cfg.Capacity, a.Time, a.FileID)
			return
		}
		c.insert(a, a.Time, false)
		return
	}
	c.res.Reads++
	c.res.BytesRead += a.Size
	if hit {
		c.res.ReadHits++
		if f.prefetched {
			c.res.PrefetchHits++
			f.prefetched = false
		}
		c.touch(f, a.Time)
		return
	}
	c.res.ReadMisses++
	c.res.BytesMissed += a.Size
	c.insert(a, a.Time, false)
	if c.cfg.Prefetch != nil {
		for _, id := range c.cfg.Prefetch.Prefetch(a) {
			if _, ok := c.resident[id]; ok || id == a.FileID {
				continue
			}
			c.res.Prefetches++
			c.insert(Access{Time: a.Time, FileID: id, Size: a.Size}, a.Time, true)
		}
	}
}

func (c *Cache) touch(f *residentFile, now time.Time) {
	f.LastRef = now
	f.Refs++
}

func (c *Cache) insert(a Access, now time.Time, prefetched bool) {
	size := a.Size
	if size > c.cfg.Capacity {
		// A file bigger than the whole cache can never be resident; it
		// streams through (counts as a miss each read).
		return
	}
	c.shrinkTo(c.cfg.Capacity-size, now, a.FileID)
	c.resident[a.FileID] = &residentFile{
		CachedFile: CachedFile{
			ID: a.FileID, Size: size, Inserted: now, LastRef: now, Refs: 1,
		},
		prefetched: prefetched,
	}
	c.used += size
}

// shrinkTo evicts policy victims until used <= target. The protected file
// (the one being accessed) is never evicted.
func (c *Cache) shrinkTo(target units.Bytes, now time.Time, protect int) {
	for c.used > target {
		victim := c.pickVictim(now, protect)
		if victim == nil {
			return // nothing evictable
		}
		c.used -= victim.CachedFile.Size
		delete(c.resident, victim.ID)
		c.res.Evictions++
	}
}

func (c *Cache) pickVictim(now time.Time, protect int) *residentFile {
	var best *residentFile
	bestRank := 0.0
	for id, f := range c.resident {
		if id == protect {
			continue
		}
		r := c.cfg.Policy.Rank(&f.CachedFile, now)
		if best == nil || r > bestRank {
			best, bestRank = f, r
		}
	}
	return best
}

// Result returns the statistics so far.
func (c *Cache) Result() CacheResult { return c.res }

// Used reports current occupancy.
func (c *Cache) Used() units.Bytes { return c.used }

// Resident reports the number of resident files.
func (c *Cache) Resident() int { return len(c.resident) }

// SweepPoint is one (capacity, result) pair of a capacity sweep.
type SweepPoint struct {
	CapacityFraction float64
	Result           CacheResult
}

// CapacitySweep replays the access string at several cache sizes
// expressed as fractions of the total referenced data, for one policy
// builder (a fresh Policy per run — Random and OPT carry state).
func CapacitySweep(accs []Access, fractions []float64, mk func() Policy) ([]SweepPoint, error) {
	total := TotalReferencedBytes(accs)
	out := make([]SweepPoint, 0, len(fractions))
	for _, frac := range fractions {
		cap := units.Bytes(float64(total) * frac)
		if cap <= 0 {
			cap = 1
		}
		c, err := NewCache(CacheConfig{Capacity: cap, Policy: mk()})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{CapacityFraction: frac, Result: c.Replay(accs)})
	}
	return out, nil
}

// TotalReferencedBytes sums the distinct files' sizes (last size seen per
// file), i.e. the tertiary-store footprint of the access string.
func TotalReferencedBytes(accs []Access) units.Bytes {
	sizes := map[int]units.Bytes{}
	for _, a := range accs {
		sizes[a.FileID] = a.Size
	}
	var t units.Bytes
	for _, s := range sizes {
		t += s
	}
	return t
}

// ComparePolicies replays the same access string under each policy at the
// given capacity and returns results sorted by read miss ratio
// (best first).
func ComparePolicies(accs []Access, capacity units.Bytes, policies []Policy) ([]CacheResult, error) {
	out := make([]CacheResult, 0, len(policies))
	for _, p := range policies {
		c, err := NewCache(CacheConfig{Capacity: capacity, Policy: p})
		if err != nil {
			return nil, err
		}
		out = append(out, c.Replay(accs))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].MissRatio() < out[j].MissRatio() })
	return out, nil
}

// DirPrefetcher prefetches the most recent other files of the directory
// being read — the paper's observation that a researcher reading day 1 of
// a model run will usually want day 2 (§5.2.1).
type DirPrefetcher struct {
	byDir map[int][]int // directory -> file IDs in first-seen order
	pos   map[int]int   // fileID -> index within its directory list
	Count int           // how many neighbours to prefetch (default 1)
}

// NewDirPrefetcher indexes the access string's directory structure.
func NewDirPrefetcher(accs []Access, count int) *DirPrefetcher {
	if count < 1 {
		count = 1
	}
	p := &DirPrefetcher{byDir: map[int][]int{}, pos: map[int]int{}, Count: count}
	for _, a := range accs {
		if _, seen := p.pos[a.FileID]; !seen {
			p.pos[a.FileID] = len(p.byDir[a.DirID])
			p.byDir[a.DirID] = append(p.byDir[a.DirID], a.FileID)
		}
	}
	return p
}

// Prefetch implements Prefetcher: the next Count files of the same
// directory in first-reference order.
func (p *DirPrefetcher) Prefetch(a Access) []int {
	files := p.byDir[a.DirID]
	i, ok := p.pos[a.FileID]
	if !ok {
		return nil
	}
	var out []int
	for k := 1; k <= p.Count && i+k < len(files); k++ {
		out = append(out, files[i+k])
	}
	return out
}
