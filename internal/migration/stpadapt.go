package migration

import (
	"math"
	"time"
)

// Adaptive-STP tuning constants. The fit rule is a Hill maximum-
// likelihood estimate of the inter-reference gap distribution's tail
// exponent over a sliding window (heavier tail — gaps spreading over
// more decades — pushes the exponent down, weighting size over age,
// exactly the trade §2.3's STP exponent controls).
const (
	stpAdaptWindow = 512       // gaps retained in the sliding window
	stpAdaptRefit  = 64        // accepted gaps between refits
	stpAdaptMinFit = 32        // gaps required before the first refit
	stpAdaptFloor  = time.Hour // gaps below this are session noise, ignored
	stpAdaptPrior  = 1.4       // Smith's exponent, until enough data
	stpAdaptMinK   = 0.5       // clamp: most size-weighted useful STP
	stpAdaptMaxK   = 3.0       // clamp: most recency-weighted useful STP
)

// AdaptiveSTP is STP with its exponent re-fitted online from the
// observed inter-reference gaps: Rank is age(days)^K(t) × size, like
// STP, but K(t) tracks the workload instead of being fixed at Smith's
// 1.4. Every access to a previously seen file yields one gap (kept
// across evictions — the policy's own last-seen table outlives
// residency); gaps under an hour are discarded as intra-session noise.
// Accepted gaps enter a fixed 512-entry sliding window, and every 64
// accepted gaps the exponent is re-fitted by the Hill estimator
//
//	K = n / Σ ln(gᵢ / g_min)
//
// over the window (g_min the window's smallest gap), clamped to
// [0.5, 3]; until 32 gaps have been seen K stays at the 1.4 prior.
//
// The fit consumes nothing but the access sequence — no randomness, no
// wall clock — so two replays of the same string produce the same
// exponent trajectory and the same victims (seeded-deterministic in
// the degenerate sense: there is no seed to vary). Ranks cross over
// time, so AdaptiveSTP keeps the deterministic scan eviction path, like
// STP itself.
type AdaptiveSTP struct {
	k    float64
	last []time.Time             // FileID -> previous reference time; zero = unseen
	win  [stpAdaptWindow]float64 // ring of ln(gap/floor) for accepted gaps
	seen int                     // accepted gaps ever
	tick int                     // accepted gaps since the last refit
}

// NewAdaptiveSTP builds an adaptive-STP policy starting at the 1.4
// prior.
func NewAdaptiveSTP() *AdaptiveSTP {
	return &AdaptiveSTP{k: stpAdaptPrior}
}

// Name implements Policy.
func (*AdaptiveSTP) Name() string { return "STP-adapt" }

// Exponent reports the current fitted exponent, for tests and reports.
func (p *AdaptiveSTP) Exponent() float64 { return p.k }

// FileAccessed implements AccessObserver: harvest the inter-reference
// gap and periodically refit the exponent.
//
//filemig:hotpath
func (p *AdaptiveSTP) FileAccessed(f *CachedFile, now time.Time) {
	id := f.ID
	p.last = growTo(p.last, id)
	prev := p.last[id]
	p.last[id] = now
	if prev.IsZero() {
		return
	}
	gap := now.Sub(prev)
	if gap < stpAdaptFloor {
		return
	}
	p.win[p.seen%stpAdaptWindow] = math.Log(gap.Seconds() / stpAdaptFloor.Seconds())
	p.seen++
	p.tick++
	if p.tick >= stpAdaptRefit && p.seen >= stpAdaptMinFit {
		p.tick = 0
		p.refit()
	}
}

// FileEvicted implements AccessObserver: gaps span evictions, nothing
// to do.
func (*AdaptiveSTP) FileEvicted(*CachedFile) {}

// refit recomputes the exponent from the window via the Hill estimator.
func (p *AdaptiveSTP) refit() {
	n := p.seen
	if n > stpAdaptWindow {
		n = stpAdaptWindow
	}
	min := p.win[0]
	for _, v := range p.win[1:n] {
		if v < min {
			min = v
		}
	}
	var sum float64
	for _, v := range p.win[:n] {
		sum += v - min
	}
	if sum <= 0 {
		return // degenerate window (all gaps equal): keep the current fit
	}
	k := float64(n) / sum
	if k < stpAdaptMinK {
		k = stpAdaptMinK
	} else if k > stpAdaptMaxK {
		k = stpAdaptMaxK
	}
	p.k = k
}

// Rank implements Policy: Smith's space-time product under the current
// fitted exponent.
func (p *AdaptiveSTP) Rank(f *CachedFile, now time.Time) float64 {
	age := now.Sub(f.LastRef).Hours() / 24
	if age < 0 {
		age = 0
	}
	return math.Pow(age, p.k) * float64(f.Size)
}
