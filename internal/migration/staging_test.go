package migration

import (
	"testing"
	"time"

	"filemig/internal/units"
)

func stagingCfg(eager bool) StagingConfig {
	return StagingConfig{
		Capacity:      units.Bytes(100 * units.MB),
		TapeBandwidth: 2e6, // 2 MB/s, the paper's observed rate
		CopyDelay:     time.Minute,
		Policy:        STP{K: 1.4},
		Eager:         eager,
	}
}

func TestStagingValidation(t *testing.T) {
	bad := stagingCfg(true)
	bad.Capacity = 0
	if _, err := NewStagingManager(bad); err == nil {
		t.Error("zero capacity should fail")
	}
	bad = stagingCfg(true)
	bad.TapeBandwidth = 0
	if _, err := NewStagingManager(bad); err == nil {
		t.Error("zero bandwidth should fail")
	}
	ok := stagingCfg(true)
	ok.Policy = nil // defaults to STP^1.4
	if _, err := NewStagingManager(ok); err != nil {
		t.Errorf("nil policy should default: %v", err)
	}
}

func TestStagingWriteBecomesCleanAfterCopy(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// 10 MB write at t0: copy ready at t0+1min, takes 5s.
	m.Step(acc(0, 1, units.Bytes(10*units.MB), true))
	if m.resident[1].dirty != true {
		t.Fatal("freshly written file must be dirty")
	}
	// A read two minutes later triggers the drain; the file is now clean.
	m.Step(acc(2, 1, units.Bytes(10*units.MB), false))
	if m.resident[1].dirty {
		t.Error("file should be clean after the background copy")
	}
	st := m.stats
	if st.CopiedBytes != units.Bytes(10*units.MB) {
		t.Errorf("copied = %v, want 10 MB", st.CopiedBytes)
	}
	if st.ReadHits != 1 {
		t.Errorf("read hits = %d, want 1 (file still staged)", st.ReadHits)
	}
}

func TestStagingLazyNeverCopiesUntilForced(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the 100 MB disk with dirty files, then overflow it: the lazy
	// manager must force synchronous copy-outs and accumulate stall.
	for i := 0; i < 12; i++ {
		m.Step(acc(i, i, units.Bytes(10*units.MB), true))
	}
	st := m.Result()
	if st.ForcedCopies == 0 {
		t.Error("lazy overflow must force copies")
	}
	if st.StallTime == 0 {
		t.Error("forced copies must cost stall time")
	}
	// 10 MB at 2 MB/s = 5s per forced copy.
	if got := st.StallTime / time.Duration(st.ForcedCopies); got != 5*time.Second {
		t.Errorf("stall per forced copy = %v, want 5s", got)
	}
}

// Result exposes stats mid-run for tests.
func (m *StagingManager) Result() StagingStats { return m.stats }

func TestEagerBeatsLazyOnStalls(t *testing.T) {
	// A day of writes spaced a minute apart, each 10 MB, onto a 100 MB
	// disk: eager copies retire dirty data between writes, lazy stalls on
	// every eviction.
	var accs []Access
	for i := 0; i < 200; i++ {
		accs = append(accs, acc(i*2, 100+i, units.Bytes(10*units.MB), true))
	}
	eager, lazy, err := CompareWriteBehind(accs, units.Bytes(100*units.MB), 2e6, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if eager.StallTime >= lazy.StallTime {
		t.Errorf("eager stall %v should be below lazy stall %v", eager.StallTime, lazy.StallTime)
	}
	if lazy.ForcedCopies == 0 {
		t.Error("lazy should be forced to copy")
	}
	if eager.CopiedBytes == 0 {
		t.Error("eager should have copied in the background")
	}
}

func TestStagingReadMissRecallsClean(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(acc(0, 7, units.Bytes(5*units.MB), false)) // miss: recall
	st := m.Result()
	if st.ReadMisses != 1 {
		t.Fatalf("misses = %d", st.ReadMisses)
	}
	if m.resident[7].dirty {
		t.Error("recalled file must be clean (tape already has it)")
	}
	m.Step(acc(1, 7, units.Bytes(5*units.MB), false))
	if m.Result().ReadHits != 1 {
		t.Error("second read should hit")
	}
}

func TestStagingOversizeStreamsThrough(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(acc(0, 1, units.Bytes(150*units.MB), true))
	m.Step(acc(1, 1, units.Bytes(150*units.MB), true)) // 150 MB > 100 MB
	if m.used != 0 {
		t.Errorf("oversize file staged: used=%v", m.used)
	}
}

func TestStagingDirtyPeakTracked(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(acc(0, 1, units.Bytes(10*units.MB), true))
	m.Step(acc(0, 2, units.Bytes(20*units.MB), true))
	if m.Result().DirtyPeak != units.Bytes(30*units.MB) {
		t.Errorf("dirty peak = %v, want 30 MB", m.Result().DirtyPeak)
	}
}

func TestStagingCapacityInvariant(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		size := units.Bytes((i%9 + 1) * 3 * int(units.MB))
		m.Step(acc(i, i%60, size, i%3 == 0))
		if m.used > m.cfg.Capacity {
			t.Fatalf("step %d: used %v exceeds capacity %v", i, m.used, m.cfg.Capacity)
		}
	}
}

func TestDedupAccesses(t *testing.T) {
	accs := []Access{
		acc(0, 1, 10, false),
		acc(5, 1, 10, false),       // within 8h of previous read: dropped
		acc(5, 1, 10, true),        // different op: kept
		acc(9*60, 1, 10, false),    // 9h later: kept
		acc(9*60+10, 2, 10, false), // different file: kept
	}
	out := DedupAccesses(accs, 8*time.Hour)
	if len(out) != 4 {
		t.Fatalf("deduped = %d, want 4", len(out))
	}
	if out[1].Write != true {
		t.Error("the write should have survived")
	}
}

func TestDedupAccessesEmpty(t *testing.T) {
	if got := DedupAccesses(nil, time.Hour); len(got) != 0 {
		t.Errorf("dedup of nil = %v", got)
	}
}
