package migration

import (
	"math/rand"
	"testing"
	"time"

	"filemig/internal/units"
)

// placementString mimics the NCAR dynamic mix: many rereferenced small
// files plus rarely-reread large ones.
func placementString(n int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	var accs []Access
	for i := 0; i < n; i++ {
		var file int
		var size units.Bytes
		if rng.Float64() < 0.7 {
			file = rng.Intn(100)
			size = units.Bytes(rng.Int63n(3*units.MB) + 100*units.KB)
		} else {
			file = 100 + rng.Intn(400)
			size = units.Bytes(rng.Int63n(150*units.MB) + 40*units.MB)
		}
		accs = append(accs, Access{
			Time:   t0.Add(time.Duration(i) * time.Minute),
			FileID: file, Size: size, Write: rng.Float64() < 0.3,
		})
	}
	return accs
}

func TestPlacementSweepShape(t *testing.T) {
	accs := placementString(6000, 1)
	thresholds := []units.Bytes{
		units.Bytes(units.MB), units.Bytes(10 * units.MB),
		units.Bytes(30 * units.MB), units.Bytes(200 * units.MB),
	}
	capacity := units.Bytes(300 * units.MB)
	res, err := PlacementSweep(accs, thresholds, capacity, 30*time.Second, 104*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	// Accounting: disk + tape = reads, fractions sane.
	for _, r := range res {
		if r.DiskReads+r.TapeReads != r.Reads {
			t.Fatalf("reads don't add up: %+v", r)
		}
		if f := r.DiskReadFraction(); f < 0 || f > 1 {
			t.Fatalf("fraction %v out of range", f)
		}
		if r.MeanFirstByte < 30*time.Second || r.MeanFirstByte > 104*time.Second {
			t.Fatalf("mean first byte %v outside the disk..tape band", r.MeanFirstByte)
		}
	}
	// A 30 MB threshold must beat both extremes here: at 1 MB most small
	// files bypass disk; at 200 MB the big files churn the small ones out.
	mid := res[2].MeanFirstByte
	if mid >= res[0].MeanFirstByte {
		t.Errorf("30 MB threshold (%v) should beat 1 MB (%v)", mid, res[0].MeanFirstByte)
	}
	if mid > res[3].MeanFirstByte {
		t.Errorf("30 MB threshold (%v) should not lose to 200 MB (%v)", mid, res[3].MeanFirstByte)
	}
}

func TestPlacementSweepEmptyReads(t *testing.T) {
	accs := []Access{{Time: t0, FileID: 1, Size: 10, Write: true}}
	res, err := PlacementSweep(accs, []units.Bytes{100}, 1000, time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Reads != 0 || res[0].MeanFirstByte != 0 {
		t.Errorf("write-only string should have no reads: %+v", res[0])
	}
}

func TestPlacementSweepPropagatesError(t *testing.T) {
	if _, err := PlacementSweep(nil, []units.Bytes{1}, 0, time.Second, time.Second); err == nil {
		t.Error("zero capacity should fail")
	}
}
