package migration

import (
	"context"
	"fmt"
	"sync"

	"filemig/internal/units"
)

// The sweep runner: the paper's experiments replay the same reference
// string many times — once per capacity, policy, or STP exponent — and
// every replay is independent (a fresh Cache and a fresh Policy per job),
// so the sweeps fan out over a bounded worker pool. Results are written
// by job index, preserving input order regardless of completion order,
// and each job's replay stays single-threaded and deterministic.

// forEachJob runs fn(0..jobs-1) on at most workers goroutines and
// returns the lowest-indexed job's error. A failing job cancels the
// pool so no further jobs dispatch, but jobs already dispatched still
// run — dispatch is in index order, so every job below the failing
// index has been dispatched and the lowest-indexed failure is always
// the one reported, at any worker count. Cancelling ctx stops dispatch
// and drains dispatched jobs unrun; it is reported as ctx's error.
// workers <= 1 runs serially on the calling goroutine; this package
// never reads the host CPU count, so callers wanting one worker per
// CPU resolve the count explicitly (cmd/* use internal/host).
func forEachJob(ctx context.Context, jobs, workers int, fn func(i int) error) error {
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	pool, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, jobs)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain: the caller cancelled
				}
				if errs[i] = fn(i); errs[i] != nil {
					cancel()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < jobs; i++ {
		select {
		case next <- i:
		case <-pool.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// CapacitySweepWorkers is CapacitySweep with an explicit worker count
// (<= 1 runs serially).
func CapacitySweepWorkers(accs []Access, fractions []float64, mk func() Policy,
	workers int) ([]SweepPoint, error) {
	total := TotalReferencedBytes(accs)
	// Build every job's policy serially before fanning out: builders may
	// close over shared state (a seed counter, say) and are not required
	// to be goroutine-safe.
	policies := make([]Policy, len(fractions))
	for i := range policies {
		policies[i] = mk()
	}
	out := make([]SweepPoint, len(fractions))
	err := forEachJob(context.Background(), len(fractions), workers, func(i int) error {
		frac := fractions[i]
		cap := units.Bytes(float64(total) * frac)
		if cap <= 0 {
			cap = 1
		}
		c, err := NewCache(CacheConfig{Capacity: cap, Policy: policies[i]})
		if err != nil {
			return err
		}
		out[i] = SweepPoint{CapacityFraction: frac, Result: c.Replay(accs)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ComparePoliciesWorkers is ComparePolicies with an explicit worker
// count. Each policy instance is used by exactly one job, so stateful
// policies (Random, OPT) are safe as long as they are not shared between
// entries.
func ComparePoliciesWorkers(accs []Access, capacity units.Bytes, policies []Policy,
	workers int) ([]CacheResult, error) {
	out := make([]CacheResult, len(policies))
	err := forEachJob(context.Background(), len(policies), workers, func(i int) error {
		c, err := NewCache(CacheConfig{Capacity: capacity, Policy: policies[i]})
		if err != nil {
			return err
		}
		out[i] = c.Replay(accs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortByMissRatio(out)
	return out, nil
}

// PolicySweep is one policy's full capacity sweep within a
// MultiPolicySweep.
type PolicySweep struct {
	Policy string
	Points []SweepPoint
}

// MultiPolicySweep runs the full policies × fractions cross product
// through one worker pool and returns one sweep per builder, in input
// order — the capacity-planning experiment behind §2.3.
func MultiPolicySweep(accs []Access, fractions []float64, mks []func() Policy,
	workers int) ([]PolicySweep, error) {
	return MultiPolicySweepContext(context.Background(), accs, fractions, mks, workers)
}

// MultiPolicySweepContext is MultiPolicySweep with cancellation: a
// cancelled ctx stops dispatching cells (in-flight replays finish) and
// the first failing cell cancels its siblings the same way. Results are
// unchanged by ctx — cancellation only ever surfaces as an error.
func MultiPolicySweepContext(ctx context.Context, accs []Access, fractions []float64,
	mks []func() Policy, workers int) ([]PolicySweep, error) {
	total := TotalReferencedBytes(accs)
	out := make([]PolicySweep, len(mks))
	// One serial builder pass per cell — builders need not be
	// goroutine-safe, and every job needs a private policy instance.
	policies := make([][]Policy, len(mks))
	for i, mk := range mks {
		p := mk()
		if p == nil {
			return nil, fmt.Errorf("migration: policy builder %d returned nil", i)
		}
		out[i] = PolicySweep{Policy: p.Name(), Points: make([]SweepPoint, len(fractions))}
		policies[i] = make([]Policy, len(fractions))
		for j := range fractions {
			policies[i][j] = mk()
		}
	}
	err := forEachJob(ctx, len(mks)*len(fractions), workers, func(job int) error {
		pi, fi := job/len(fractions), job%len(fractions)
		frac := fractions[fi]
		cap := units.Bytes(float64(total) * frac)
		if cap <= 0 {
			cap = 1
		}
		c, err := NewCache(CacheConfig{Capacity: cap, Policy: policies[pi][fi]})
		if err != nil {
			return err
		}
		out[pi].Points[fi] = SweepPoint{CapacityFraction: frac, Result: c.Replay(accs)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExponentPoint is one STP exponent's outcome in an exponent sweep.
type ExponentPoint struct {
	K      float64
	Result CacheResult
}

// STPExponentSweep replays the access string under STP^k for each
// exponent at the given capacity — Smith's ablation that singled out
// K=1.4. The replays run serially; use STPExponentSweepWorkers to fan
// out.
func STPExponentSweep(accs []Access, capacity units.Bytes, ks []float64) ([]ExponentPoint, error) {
	return STPExponentSweepWorkers(accs, capacity, ks, 0)
}

// STPExponentSweepWorkers is STPExponentSweep with an explicit worker
// count.
func STPExponentSweepWorkers(accs []Access, capacity units.Bytes, ks []float64,
	workers int) ([]ExponentPoint, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("migration: sweep capacity must be positive")
	}
	out := make([]ExponentPoint, len(ks))
	err := forEachJob(context.Background(), len(ks), workers, func(i int) error {
		c, err := NewCache(CacheConfig{Capacity: capacity, Policy: STP{K: ks[i]}})
		if err != nil {
			return err
		}
		out[i] = ExponentPoint{K: ks[i], Result: c.Replay(accs)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BestExponent returns the exponent with the lowest read miss ratio
// (first such on ties, in input order).
func BestExponent(pts []ExponentPoint) (ExponentPoint, bool) {
	if len(pts) == 0 {
		return ExponentPoint{}, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Result.MissRatio() < best.Result.MissRatio() {
			best = p
		}
	}
	return best, true
}
