package migration

import (
	"time"

	"filemig/internal/units"
)

// This file evaluates §6's size-split placement: "The NCAR system already
// does this by storing smaller files on magnetic disk and larger files
// only on tape. ... The dividing point between storing files on disk and
// storing them on tape is a subject for future research." PlacementSweep
// is that research: it sweeps the threshold and reports how the
// first-byte latency experienced by readers moves.

// PlacementResult is one threshold's outcome.
type PlacementResult struct {
	Threshold     units.Bytes
	Reads         int64
	DiskReads     int64 // reads served from the staging disk
	TapeReads     int64 // reads paying the tape path
	MeanFirstByte time.Duration
}

// DiskReadFraction reports the share of reads absorbed by disk.
func (r PlacementResult) DiskReadFraction() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.DiskReads) / float64(r.Reads)
}

// PlacementSweep replays the access string once per threshold: files at
// or under the threshold compete for the staging disk (capacity bytes,
// STP^1.4 eviction); larger files always read from tape. diskLat and
// tapeLat are the first-byte costs of the two paths (Table 3: ~30 s and
// ~104 s at NCAR).
func PlacementSweep(accs []Access, thresholds []units.Bytes, capacity units.Bytes,
	diskLat, tapeLat time.Duration) ([]PlacementResult, error) {
	out := make([]PlacementResult, 0, len(thresholds))
	for _, th := range thresholds {
		res := PlacementResult{Threshold: th}
		cache, err := NewCache(CacheConfig{Capacity: capacity, Policy: STP{K: 1.4}})
		if err != nil {
			return nil, err
		}
		for _, a := range accs {
			small := a.Size <= th
			if a.Write {
				if small {
					cache.Step(a)
				}
				continue
			}
			res.Reads++
			if small {
				before := cache.Result().ReadHits
				cache.Step(a)
				if cache.Result().ReadHits > before {
					res.DiskReads++
					continue
				}
			}
			res.TapeReads++
		}
		if res.Reads > 0 {
			total := time.Duration(res.DiskReads)*diskLat + time.Duration(res.TapeReads)*tapeLat
			res.MeanFirstByte = total / time.Duration(res.Reads)
		}
		out = append(out, res)
	}
	return out, nil
}
