package migration

import (
	"math/rand"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/trace"
	"filemig/internal/units"
)

func acc(minute int, file int, size units.Bytes, write bool) Access {
	return Access{
		Time:   t0.Add(time.Duration(minute) * time.Minute),
		FileID: file, Size: size, Write: write,
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := NewCache(CacheConfig{Capacity: units.Bytes(10 * units.MB), Policy: LRU{}})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Replay([]Access{
		acc(0, 1, units.Bytes(4*units.MB), true),  // write insert
		acc(1, 1, units.Bytes(4*units.MB), false), // read hit
		acc(2, 2, units.Bytes(4*units.MB), false), // read miss, insert
		acc(3, 2, units.Bytes(4*units.MB), false), // read hit
	})
	if res.Reads != 3 || res.ReadHits != 2 || res.ReadMisses != 1 {
		t.Errorf("reads/hits/misses = %d/%d/%d", res.Reads, res.ReadHits, res.ReadMisses)
	}
	if res.WriteInserts != 1 {
		t.Errorf("writes = %d", res.WriteInserts)
	}
	if got := res.MissRatio(); got != 1.0/3 {
		t.Errorf("miss ratio = %v", got)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c, _ := NewCache(CacheConfig{Capacity: units.Bytes(10 * units.MB), Policy: LRU{}})
	c.Step(acc(0, 1, units.Bytes(4*units.MB), false))
	c.Step(acc(1, 2, units.Bytes(4*units.MB), false))
	c.Step(acc(2, 1, units.Bytes(4*units.MB), false)) // touch 1; 2 is now LRU
	c.Step(acc(3, 3, units.Bytes(4*units.MB), false)) // evicts 2
	c.Step(acc(4, 1, units.Bytes(4*units.MB), false)) // still resident: hit
	c.Step(acc(5, 2, units.Bytes(4*units.MB), false)) // was evicted: miss
	res := c.Result()
	if res.Evictions < 1 {
		t.Error("expected at least one eviction")
	}
	// Reads: 6 total; misses at t0(1), t1(2), t3(3), t5(2) = 4.
	if res.ReadMisses != 4 || res.ReadHits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/4", res.ReadHits, res.ReadMisses)
	}
}

func TestCacheCapacityInvariant(t *testing.T) {
	cap := units.Bytes(20 * units.MB)
	c, _ := NewCache(CacheConfig{Capacity: cap, Policy: STP{K: 1.4}})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		size := units.Bytes(rng.Int63n(8*units.MB) + 1)
		c.Step(acc(i, rng.Intn(300), size, rng.Intn(3) == 0))
		if c.Used() > cap {
			t.Fatalf("occupancy %v exceeds capacity %v at step %d", c.Used(), cap, i)
		}
	}
	if c.Resident() == 0 {
		t.Error("cache should retain files")
	}
}

func TestFileLargerThanCacheStreamsThrough(t *testing.T) {
	c, _ := NewCache(CacheConfig{Capacity: units.Bytes(units.MB), Policy: LRU{}})
	c.Step(acc(0, 1, units.Bytes(5*units.MB), false))
	c.Step(acc(1, 1, units.Bytes(5*units.MB), false))
	res := c.Result()
	if res.ReadMisses != 2 {
		t.Errorf("oversized file should miss every time, got %d misses", res.ReadMisses)
	}
	if c.Used() != 0 {
		t.Errorf("oversized file must not occupy the cache: used=%v", c.Used())
	}
}

func TestRewriteAdjustsSize(t *testing.T) {
	c, _ := NewCache(CacheConfig{Capacity: units.Bytes(10 * units.MB), Policy: LRU{}})
	c.Step(acc(0, 1, units.Bytes(2*units.MB), true))
	c.Step(acc(1, 1, units.Bytes(6*units.MB), true)) // grew
	if c.Used() != units.Bytes(6*units.MB) {
		t.Errorf("used = %v, want 6 MB after rewrite", c.Used())
	}
	c.Step(acc(2, 1, units.Bytes(units.MB), true)) // shrank
	if c.Used() != units.Bytes(units.MB) {
		t.Errorf("used = %v, want 1 MB", c.Used())
	}
}

func TestRewriteGrowthBeyondCapacityStreamsThrough(t *testing.T) {
	// Regression: a rewrite that grows a resident file beyond the whole
	// cache used to leave the cache permanently over-full, because the
	// grown file was protected from eviction. It must stream through.
	c, _ := NewCache(CacheConfig{Capacity: units.Bytes(10 * units.MB), Policy: LRU{}})
	c.Step(acc(0, 1, units.Bytes(2*units.MB), true))
	c.Step(acc(1, 2, units.Bytes(3*units.MB), true))
	c.Step(acc(2, 1, units.Bytes(12*units.MB), true)) // grows past capacity
	if c.Used() > c.cfg.Capacity {
		t.Fatalf("cache over-full after growth: used %v > capacity %v", c.Used(), c.cfg.Capacity)
	}
	if c.Used() != units.Bytes(3*units.MB) || c.Resident() != 1 {
		t.Errorf("used/resident = %v/%d, want 3 MB/1 (grown file gone)", c.Used(), c.Resident())
	}
	res := c.Result()
	if res.StreamThroughs != 1 {
		t.Errorf("stream-throughs = %d, want 1", res.StreamThroughs)
	}
	if res.Evictions != 0 {
		t.Errorf("evictions = %d; streaming through is not a policy eviction", res.Evictions)
	}
	c.Step(acc(3, 1, units.Bytes(12*units.MB), false))
	if got := c.Result(); got.ReadMisses != 1 || got.StreamThroughs != 2 {
		t.Errorf("oversized file must keep missing: misses=%d streamThroughs=%d",
			got.ReadMisses, got.StreamThroughs)
	}
}

func TestCapacityInvariantUnderOversizedRewrites(t *testing.T) {
	// Occupancy never exceeds capacity even when rewrites grow files past
	// it, under both heap (LRU) and scan (STP) victim selection.
	for _, p := range []Policy{LRU{}, STP{K: 1.4}} {
		cap := units.Bytes(20 * units.MB)
		c, _ := NewCache(CacheConfig{Capacity: cap, Policy: p})
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 3000; i++ {
			size := units.Bytes(rng.Int63n(30*units.MB) + 1) // up to 1.5× capacity
			c.Step(acc(i, rng.Intn(100), size, rng.Intn(2) == 0))
			if c.Used() > cap {
				t.Fatalf("%s: occupancy %v exceeds capacity %v at step %d",
					p.Name(), c.Used(), cap, i)
			}
			if len(c.order) != 0 && len(c.order) != c.Resident() {
				t.Fatalf("%s: heap has %d entries for %d residents at step %d",
					p.Name(), len(c.order), c.Resident(), i)
			}
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	// Repeated replays of the same string must produce byte-identical
	// results for every policy — including Random (per seed) and the
	// scan-fallback policies whose ties used to follow map order.
	accs := syntheticString(6000, 7)
	capacity := TotalReferencedBytes(accs) / 40
	for name, mk := range shippedPolicies() {
		var first CacheResult
		for run := 0; run < 5; run++ {
			c, err := NewCache(CacheConfig{Capacity: capacity, Policy: mk(accs)})
			if err != nil {
				t.Fatal(err)
			}
			res := c.Replay(accs)
			if run == 0 {
				first = res
				continue
			}
			if res != first {
				t.Fatalf("%s: run %d diverged:\n  first: %+v\n  later: %+v", name, run, first, res)
			}
		}
	}
}

func TestNewCacheErrors(t *testing.T) {
	if _, err := NewCache(CacheConfig{Capacity: 0, Policy: LRU{}}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewCache(CacheConfig{Capacity: 1}); err == nil {
		t.Error("nil policy should fail")
	}
}

// syntheticString builds a reusable access string with locality: a hot set
// rereferenced often plus a cold long tail, sized so policies separate.
func syntheticString(n int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	var accs []Access
	minute := 0
	for i := 0; i < n; i++ {
		minute += rng.Intn(30) + 1
		var file int
		if rng.Float64() < 0.6 {
			file = rng.Intn(20) // hot set
		} else {
			file = 20 + rng.Intn(2000) // cold tail
		}
		size := units.Bytes((file%40)*int(units.MB)/4 + int(units.MB))
		accs = append(accs, acc(minute, file, size, rng.Float64() < 0.3))
	}
	return accs
}

func TestOPTBeatsOnlinePolicies(t *testing.T) {
	accs := syntheticString(8000, 2)
	capacity := TotalReferencedBytes(accs) / 20
	opt, err := NewCache(CacheConfig{Capacity: capacity, Policy: NewOPT(NewFutureIndex(accs))})
	if err != nil {
		t.Fatal(err)
	}
	optRes := opt.Replay(accs)
	for _, p := range []Policy{LRU{}, STP{K: 1.4}, FIFO{}, LargestFirst{}} {
		c, _ := NewCache(CacheConfig{Capacity: capacity, Policy: p})
		res := c.Replay(accs)
		if optRes.MissRatio() > res.MissRatio()+0.02 {
			t.Errorf("OPT (%v) should not lose to %s (%v)",
				optRes.MissRatio(), p.Name(), res.MissRatio())
		}
	}
}

func TestSTPCompetitiveWithLRU(t *testing.T) {
	// §2.3: STP was the best online policy in both Smith's and Lawrie's
	// studies, "though only by a slim margin". Require STP^1.4 to be at
	// least close to LRU on byte miss ratio and no disaster on miss ratio.
	accs := syntheticString(8000, 3)
	capacity := TotalReferencedBytes(accs) / 20
	stp, _ := NewCache(CacheConfig{Capacity: capacity, Policy: STP{K: 1.4}})
	lru, _ := NewCache(CacheConfig{Capacity: capacity, Policy: LRU{}})
	stpRes, lruRes := stp.Replay(accs), lru.Replay(accs)
	if stpRes.MissRatio() > lruRes.MissRatio()*1.25 {
		t.Errorf("STP miss ratio %v far above LRU %v", stpRes.MissRatio(), lruRes.MissRatio())
	}
}

func TestComparePoliciesSortsByMissRatio(t *testing.T) {
	accs := syntheticString(4000, 4)
	capacity := TotalReferencedBytes(accs) / 20
	res, err := ComparePolicies(accs, capacity, []Policy{
		LRU{}, FIFO{}, LargestFirst{}, SmallestFirst{}, STP{K: 1.4}, SAAC{}, NewRandom(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("results = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].MissRatio() < res[i-1].MissRatio() {
			t.Fatal("results not sorted by miss ratio")
		}
	}
}

func TestCapacitySweepMonotone(t *testing.T) {
	accs := syntheticString(6000, 5)
	pts, err := CapacitySweep(accs, []float64{0.005, 0.02, 0.10, 0.5}, func() Policy { return STP{K: 1.4} })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		// More cache must not hurt much (tiny non-monotonicities possible
		// with size-aware policies; allow 2% slack).
		if pts[i].Result.MissRatio() > pts[i-1].Result.MissRatio()+0.02 {
			t.Errorf("miss ratio rose with capacity: %v -> %v",
				pts[i-1].Result.MissRatio(), pts[i].Result.MissRatio())
		}
	}
	if pts[3].Result.MissRatio() >= pts[0].Result.MissRatio() {
		t.Error("50% cache should beat 0.5% cache decisively")
	}
}

func TestPersonMinutes(t *testing.T) {
	res := CacheResult{ReadMisses: 100}
	got := res.PersonMinutesPerDay(10, 90*time.Second)
	if got != 15 { // 100 misses * 1.5 min / 10 days
		t.Errorf("person-minutes/day = %v, want 15", got)
	}
	if res.PersonMinutesPerDay(0, time.Second) != 0 {
		t.Error("zero days should give 0")
	}
}

func TestAccessesFromRecords(t *testing.T) {
	recs := []trace.Record{
		{Start: t0, Op: trace.Write, Device: device.ClassDisk, Size: 10,
			MSSPath: "/mss/d1/a", LocalPath: "/l", UserID: 1},
		{Start: t0.Add(time.Minute), Op: trace.Read, Device: device.ClassDisk, Size: 10,
			MSSPath: "/mss/d1/a", LocalPath: "/l", UserID: 1},
		{Start: t0.Add(2 * time.Minute), Op: trace.Read, Device: device.ClassDisk, Size: 20,
			MSSPath: "/mss/d2/b", LocalPath: "/l", UserID: 1},
		{Start: t0.Add(3 * time.Minute), Op: trace.Read, Device: device.ClassDisk, Size: 0,
			MSSPath: "/mss/gone", LocalPath: "/l", UserID: 1, Err: trace.ErrNoFile},
	}
	accs := AccessesFromRecords(recs)
	if len(accs) != 3 {
		t.Fatalf("accesses = %d, want 3 (error dropped)", len(accs))
	}
	if accs[0].FileID != accs[1].FileID {
		t.Error("same path must map to same file ID")
	}
	if accs[0].FileID == accs[2].FileID {
		t.Error("different paths must map to different file IDs")
	}
	if accs[0].DirID == accs[2].DirID {
		t.Error("different directories must map to different dir IDs")
	}
	if !accs[0].Write || accs[1].Write {
		t.Error("ops mis-mapped")
	}
}

func TestTotalReferencedBytes(t *testing.T) {
	accs := []Access{
		acc(0, 1, units.Bytes(5*units.MB), true),
		acc(1, 1, units.Bytes(5*units.MB), false),
		acc(2, 2, units.Bytes(3*units.MB), false),
	}
	if got := TotalReferencedBytes(accs); got != units.Bytes(8*units.MB) {
		t.Errorf("total = %v, want 8 MB", got)
	}
}

func TestDirPrefetcher(t *testing.T) {
	accs := []Access{
		{Time: t0, FileID: 1, DirID: 5, Size: 1},
		{Time: t0.Add(time.Minute), FileID: 2, DirID: 5, Size: 1},
		{Time: t0.Add(2 * time.Minute), FileID: 3, DirID: 5, Size: 1},
		{Time: t0.Add(3 * time.Minute), FileID: 9, DirID: 6, Size: 1},
	}
	p := NewDirPrefetcher(accs, 2)
	got := p.Prefetch(accs[0])
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("prefetch after file 1 = %v, want [2 3]", got)
	}
	if got := p.Prefetch(accs[3]); len(got) != 0 {
		t.Errorf("last file of dir should prefetch nothing, got %v", got)
	}
	if got := p.Prefetch(Access{FileID: 77, DirID: 5}); got != nil {
		t.Errorf("unknown file should prefetch nothing, got %v", got)
	}
}

func TestPrefetchImprovesSequentialReads(t *testing.T) {
	// A "movie" workload (§3.3): read day1..dayN of a model run in order.
	var accs []Access
	for day := 0; day < 50; day++ {
		accs = append(accs, Access{
			Time:   t0.Add(time.Duration(day) * time.Minute),
			FileID: day, DirID: 1, Size: units.Bytes(8 * units.MB),
		})
	}
	capacity := units.Bytes(200 * units.MB)
	plain, _ := NewCache(CacheConfig{Capacity: capacity, Policy: LRU{}})
	plainRes := plain.Replay(accs)
	pre, _ := NewCache(CacheConfig{
		Capacity: capacity, Policy: LRU{},
		Prefetch: NewDirPrefetcher(accs, 1),
	})
	preRes := pre.Replay(accs)
	if preRes.ReadMisses >= plainRes.ReadMisses {
		t.Errorf("prefetch misses %d should beat plain %d", preRes.ReadMisses, plainRes.ReadMisses)
	}
	if preRes.PrefetchHits == 0 {
		t.Error("prefetch hits should be counted")
	}
}

func TestCoalesceMatchesSection6(t *testing.T) {
	// Three requests for the same file within 8h: two savable; a fourth a
	// week later is not.
	recs := []trace.Record{
		{Start: t0, Op: trace.Read, Device: device.ClassDisk, Size: 10, MSSPath: "/mss/a", LocalPath: "/l", UserID: 1},
		{Start: t0.Add(time.Hour), Op: trace.Read, Device: device.ClassDisk, Size: 10, MSSPath: "/mss/a", LocalPath: "/l", UserID: 1},
		{Start: t0.Add(7 * time.Hour), Op: trace.Read, Device: device.ClassDisk, Size: 10, MSSPath: "/mss/a", LocalPath: "/l", UserID: 1},
		{Start: t0.Add(8 * 24 * time.Hour), Op: trace.Read, Device: device.ClassDisk, Size: 10, MSSPath: "/mss/a", LocalPath: "/l", UserID: 1},
	}
	res := Coalesce(recs, 8*time.Hour)
	if res.Requests != 4 || res.Savable != 2 {
		t.Errorf("requests/savable = %d/%d, want 4/2", res.Requests, res.Savable)
	}
	if res.SavableFraction() != 0.5 {
		t.Errorf("fraction = %v", res.SavableFraction())
	}
}

func TestCoalesceSweepMonotone(t *testing.T) {
	var recs []trace.Record
	rng := rand.New(rand.NewSource(6))
	cur := t0
	for i := 0; i < 2000; i++ {
		cur = cur.Add(time.Duration(rng.Intn(3600)) * time.Second)
		recs = append(recs, trace.Record{
			Start: cur, Op: trace.Read, Device: device.ClassDisk, Size: 10,
			MSSPath: "/mss/f" + string(rune('a'+rng.Intn(26))), LocalPath: "/l", UserID: 1,
		})
	}
	windows := []time.Duration{0, time.Hour, 8 * time.Hour, 24 * time.Hour}
	res := CoalesceSweep(recs, windows)
	for i := 1; i < len(res); i++ {
		if res[i].Savable < res[i-1].Savable {
			t.Error("longer windows must save at least as many requests")
		}
	}
	if res[0].Savable != 0 {
		t.Errorf("zero window saved %d", res[0].Savable)
	}
}

func TestCoalesceEmptyAndErrors(t *testing.T) {
	if got := Coalesce(nil, time.Hour).SavableFraction(); got != 0 {
		t.Errorf("empty trace fraction = %v", got)
	}
	recs := []trace.Record{{Start: t0, Err: trace.ErrNoFile, MSSPath: "/x"}}
	if got := Coalesce(recs, time.Hour); got.Requests != 0 {
		t.Error("error records must not count")
	}
}
