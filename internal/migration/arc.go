package migration

import (
	"time"

	"filemig/internal/units"
)

// ARC list tags. The zero value (arcNone) means "in no list", so the
// dense entry arena can grow with zero values.
const (
	arcNone int8 = iota
	arcT1        // resident, referenced exactly once since entering
	arcT2        // resident, referenced at least twice
	arcB1        // ghost: recently evicted from T1 (recency history)
	arcB2        // ghost: recently evicted from T2 (frequency history)
)

// arcEntry is one file's node in the intrusive doubly-linked ARC lists.
// prev/next are file IDs (-1 terminates); they are meaningful only while
// list != arcNone. size remembers the file's bytes as last seen, so
// ghosts keep the size they were evicted at.
type arcEntry struct {
	list       int8
	prev, next int32
	size       units.Bytes
}

// arcQueue is one of the four ARC lists: head is the MRU end, tail the
// LRU end, bytes the list's total remembered size.
type arcQueue struct {
	head, tail int32
	bytes      units.Bytes
}

// ARC is adaptive replacement caching (Megiddo & Modha, FAST '03) sized
// in bytes to match the simulator's capacity model: the resident set is
// split into a recency list T1 (files referenced once) and a frequency
// list T2 (files referenced again), with ghost lists B1/B2 remembering
// recently evicted IDs. A hit in B1 means the recency list was too
// small and grows the byte target for T1; a hit in B2 shrinks it — the
// policy continuously tunes itself between LRU and LFU.
//
// Deviations from the paper, forced by the simulator's shape and all
// deterministic:
//
//   - Sizing is in bytes, not uniform pages: list bounds, the target,
//     and the adaptation step all use file sizes, with the adaptation
//     ratio B2/B1 (or B1/B2) computed in integer byte arithmetic.
//   - The cache shrinks before it admits a missed file, so a ghost hit
//     adjusts the target after the eviction it triggered, not before —
//     the adaptation lags one eviction behind the paper's REPLACE.
//   - Multi-victim shrinks (variable file sizes) repeat the single
//     T1-vs-T2 choice per victim.
//
// ARC implements VictimPolicy — the dual-list choice is structural and
// cannot be expressed as a frozen rank order — plus AccessObserver and
// CapacityAware. Rank is advisory only (LRU order biased toward the
// currently preferred list) for rank-only consumers like the staging
// manager; the cache's victim path never uses it.
type ARC struct {
	capacity units.Bytes
	target   units.Bytes // adaptive byte target for T1 ("p" in the paper)
	ent      []arcEntry  // FileID-indexed node arena
	t1, t2   arcQueue
	b1, b2   arcQueue
}

// NewARC builds an ARC policy. The capacity (list bounds and adaptation
// clamp) arrives via SetCapacity, which NewCache calls before replay.
func NewARC() *ARC {
	p := &ARC{}
	for _, q := range []*arcQueue{&p.t1, &p.t2, &p.b1, &p.b2} {
		q.head, q.tail = -1, -1
	}
	return p
}

// Name implements Policy.
func (*ARC) Name() string { return "ARC" }

// SetCapacity implements CapacityAware.
func (p *ARC) SetCapacity(capacity units.Bytes) { p.capacity = capacity }

// queue maps a list tag to its queue.
func (p *ARC) queue(list int8) *arcQueue {
	switch list {
	case arcT1:
		return &p.t1
	case arcT2:
		return &p.t2
	case arcB1:
		return &p.b1
	case arcB2:
		return &p.b2
	}
	panic("migration: bad ARC list tag")
}

// pushMRU inserts id at the MRU end of list with the given size.
func (p *ARC) pushMRU(list int8, id int, size units.Bytes) {
	q := p.queue(list)
	e := &p.ent[id]
	e.list, e.size = list, size
	e.prev, e.next = -1, q.head
	if q.head >= 0 {
		p.ent[q.head].prev = int32(id)
	}
	q.head = int32(id)
	if q.tail < 0 {
		q.tail = int32(id)
	}
	q.bytes += size
}

// unlink removes id from whatever list holds it.
func (p *ARC) unlink(id int) {
	e := &p.ent[id]
	q := p.queue(e.list)
	if e.prev >= 0 {
		p.ent[e.prev].next = e.next
	} else {
		q.head = e.next
	}
	if e.next >= 0 {
		p.ent[e.next].prev = e.prev
	} else {
		q.tail = e.prev
	}
	q.bytes -= e.size
	e.list = arcNone
}

// FileAccessed implements AccessObserver: the ARC case analysis.
//
//filemig:hotpath
func (p *ARC) FileAccessed(f *CachedFile, _ time.Time) {
	id := f.ID
	p.ent = growTo(p.ent, id)
	switch p.ent[id].list {
	case arcT1, arcT2:
		// Repeated reference (touch, or a rewrite syncing a new size):
		// promote to the frequency list's MRU end.
		p.unlink(id)
		p.pushMRU(arcT2, id, f.Size)
	case arcB1:
		// Ghost hit in the recency history: T1 was too small. Grow the
		// target by the ghost's size, scaled up when B2 outweighs B1.
		delta := arcDelta(p.ent[id].size, p.b2.bytes, p.b1.bytes, p.capacity)
		if p.target += delta; p.target > p.capacity {
			p.target = p.capacity
		}
		p.unlink(id)
		p.pushMRU(arcT2, id, f.Size)
	case arcB2:
		// Ghost hit in the frequency history: symmetric shrink.
		delta := arcDelta(p.ent[id].size, p.b1.bytes, p.b2.bytes, p.capacity)
		if p.target -= delta; p.target < 0 {
			p.target = 0
		}
		p.unlink(id)
		p.pushMRU(arcT2, id, f.Size)
	default:
		// Brand-new file: bound the histories (recency side to one
		// capacity, everything to two), then enter the recency list.
		for p.b1.tail >= 0 && p.t1.bytes+p.b1.bytes+f.Size > p.capacity {
			p.unlink(int(p.b1.tail))
		}
		total := p.t1.bytes + p.t2.bytes + p.b1.bytes + p.b2.bytes
		for p.b2.tail >= 0 && total+f.Size > 2*p.capacity {
			total -= p.ent[p.b2.tail].size
			p.unlink(int(p.b2.tail))
		}
		p.pushMRU(arcT1, id, f.Size)
	}
}

// FileEvicted implements AccessObserver: a departing resident becomes a
// ghost in the history list matching where it lived.
//
//filemig:hotpath
func (p *ARC) FileEvicted(f *CachedFile) {
	id := f.ID
	if id >= len(p.ent) {
		return
	}
	switch p.ent[id].list {
	case arcT1:
		size := p.ent[id].size
		p.unlink(id)
		p.pushMRU(arcB1, id, size)
	case arcT2:
		size := p.ent[id].size
		p.unlink(id)
		p.pushMRU(arcB2, id, size)
	}
}

// arcDelta is the adaptation step for a ghost hit of the given size:
// scaled up by the integer ratio of the opposite history's bytes to the
// hit history's when the opposite outweighs it, and clamped to the
// capacity (the largest move the target can usefully make, and an
// overflow guard for extreme size ratios).
func arcDelta(size, opposite, hit, capacity units.Bytes) units.Bytes {
	delta := size
	if hit > 0 && opposite > hit {
		if ratio := opposite / hit; delta > capacity/ratio {
			return capacity
		} else {
			delta *= ratio
		}
	}
	if delta > capacity {
		delta = capacity
	}
	return delta
}

// lruExcept walks a list from its LRU tail and returns the first entry
// that is not the protected file.
func (p *ARC) lruExcept(q *arcQueue, protect int) (int, bool) {
	for id := q.tail; id >= 0; id = p.ent[id].prev {
		if int(id) != protect {
			return int(id), true
		}
	}
	return 0, false
}

// NextVictim implements VictimPolicy: evict the recency list's LRU tail
// while T1 holds more bytes than the adaptive target, otherwise the
// frequency list's — falling back to the other list when the preferred
// one has nothing evictable.
func (p *ARC) NextVictim(protect int) (int, bool) {
	first, second := &p.t2, &p.t1
	if p.t1.bytes > p.target {
		first, second = &p.t1, &p.t2
	}
	if id, ok := p.lruExcept(first, protect); ok {
		return id, true
	}
	return p.lruExcept(second, protect)
}

// arcPreferred biases advisory ranks toward the currently preferred
// list; like optDead it dwarfs any timeKey magnitude.
const arcPreferred = 1e12

// Rank implements Policy, advisory only: within T1 the LRU order is
// insertion order, within T2 it is last-reference order, and the list
// NextVictim currently prefers ranks uniformly higher. Outside the
// cache's hook-driven replay (where FileAccessed never fires) every
// file is unknown and the order degrades to plain LRU.
func (p *ARC) Rank(f *CachedFile, _ time.Time) float64 {
	list := arcNone
	if f.ID < len(p.ent) {
		list = p.ent[f.ID].list
	}
	preferT1 := p.t1.bytes > p.target
	switch list {
	case arcT1:
		r := -timeKey(f.Inserted)
		if preferT1 {
			r += arcPreferred
		}
		return r
	case arcT2:
		r := -timeKey(f.LastRef)
		if !preferT1 {
			r += arcPreferred
		}
		return r
	}
	return -timeKey(f.LastRef)
}
