package migration

import (
	"strings"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// internRecords is a record mix with shared directories, root files,
// errors and path revisits — the shapes that could disturb dense ID
// assignment.
func internRecords() []trace.Record {
	base := time.Date(1990, time.October, 1, 0, 0, 0, 0, time.UTC)
	paths := []string{
		"/u/a/one", "/u/a/two", "/u/b/one", "/root1", "/u/a/one",
		"/u/c/d/deep", "/root2", "/u/b/one", "/u/c/d/deep", "/u/a/two",
	}
	recs := make([]trace.Record, 0, len(paths))
	for i, p := range paths {
		r := trace.Record{
			Start: base.Add(time.Duration(i) * 2 * time.Hour),
			Op:    trace.Read, Device: device.ClassSiloTape,
			Size: units.Bytes(1000 * (i + 1)), MSSPath: p, LocalPath: "/tmp/f", UserID: 9,
		}
		if i%3 == 1 {
			r.Op = trace.Write
		}
		if i == 4 {
			r.Err = trace.ErrNoFile // excluded: must not consume an ID
		}
		recs = append(recs, r)
	}
	return recs
}

// refAccesses is the historical map-based AccessesFromRecords, with one
// deliberate difference carried over to the interner: a root-level file
// ("/top") now lives in the "/" directory, as the core analysis always
// had it, instead of forming a singleton directory named after itself.
func refAccesses(recs []trace.Record) []Access {
	fileIDs := map[string]int{}
	dirIDs := map[string]int{}
	out := make([]Access, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if !r.OK() {
			continue
		}
		id, ok := fileIDs[r.MSSPath]
		if !ok {
			id = len(fileIDs)
			fileIDs[r.MSSPath] = id
		}
		dir := "/"
		if j := strings.LastIndexByte(r.MSSPath, '/'); j > 0 {
			dir = r.MSSPath[:j]
		}
		did, ok := dirIDs[dir]
		if !ok {
			did = len(dirIDs)
			dirIDs[dir] = did
		}
		out = append(out, Access{
			Time: r.Start, FileID: id, Size: r.Size,
			Write: r.Op == trace.Write, DirID: did,
		})
	}
	return out
}

// TestAccessesInternerEquivalence pins the interner swap: the dense file
// and directory IDs must match the historical per-call string maps
// exactly, access by access.
func TestAccessesInternerEquivalence(t *testing.T) {
	recs := internRecords()
	got := AccessesFromRecords(recs)
	want := refAccesses(recs)
	if len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAccessesSharedInterner checks ID stability across conversions
// sharing one interner: the same path must keep its ID in both halves.
func TestAccessesSharedInterner(t *testing.T) {
	recs := internRecords()
	in := trace.NewInterner()
	first := AccessesFromRecordsInterned(in, recs[:5])
	second := AccessesFromRecordsInterned(in, recs[5:])
	whole := AccessesFromRecordsInterned(trace.NewInterner(), recs)
	both := append(append([]Access(nil), first...), second...)
	if len(both) != len(whole) {
		t.Fatalf("split conversion yielded %d accesses, want %d", len(both), len(whole))
	}
	for i := range whole {
		if both[i] != whole[i] {
			t.Fatalf("access %d = %+v via shared interner, want %+v", i, both[i], whole[i])
		}
	}
}

// refCoalesce is the historical map-based Coalesce.
func refCoalesce(recs []trace.Record, window time.Duration) CoalesceResult {
	res := CoalesceResult{Window: window}
	last := map[string]time.Time{}
	for i := range recs {
		r := &recs[i]
		if !r.OK() {
			continue
		}
		res.Requests++
		if prev, ok := last[r.MSSPath]; ok && r.Start.Sub(prev) <= window {
			res.Savable++
			res.BytesSaved += int64(r.Size)
		}
		last[r.MSSPath] = r.Start
	}
	return res
}

// TestCoalescerEquivalence pins the Coalescer against the string-keyed
// scan across windows, including reuse of one Coalescer for a sweep.
func TestCoalescerEquivalence(t *testing.T) {
	recs := internRecords()
	windows := []time.Duration{time.Hour, 5 * time.Hour, 8 * time.Hour, 48 * time.Hour}
	sweep := CoalesceSweep(recs, windows)
	for i, w := range windows {
		want := refCoalesce(recs, w)
		if got := Coalesce(recs, w); got != want {
			t.Errorf("Coalesce(%v) = %+v, want %+v", w, got, want)
		}
		if sweep[i] != want {
			t.Errorf("CoalesceSweep[%v] = %+v, want %+v", w, sweep[i], want)
		}
	}
	// Re-running on a shared Coalescer must fully reset between runs.
	c := NewCoalescer(nil)
	for _, w := range []time.Duration{48 * time.Hour, time.Hour, 48 * time.Hour} {
		if got, want := c.Run(recs, w), refCoalesce(recs, w); got != want {
			t.Errorf("Coalescer.Run(%v) = %+v, want %+v", w, got, want)
		}
	}
}

// TestCoalescerSteadyStateAllocs pins the zero-allocation scan loop: a
// warmed Coalescer re-running over the same trace allocates nothing.
func TestCoalescerSteadyStateAllocs(t *testing.T) {
	recs := internRecords()
	c := NewCoalescer(nil)
	c.Run(recs, 8*time.Hour)
	allocs := testing.AllocsPerRun(20, func() {
		c.Run(recs, 8*time.Hour)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Coalescer.Run allocates %v per run, want 0", allocs)
	}
}
