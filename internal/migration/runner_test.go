package migration

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachJobRunsEveryJobOncePerWorkerCount(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var ran [50]int32
		err := forEachJob(context.Background(), len(ran), workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachJobReportsFirstErrorByJobOrder(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := forEachJob(context.Background(), 10, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestCapacitySweepParallelMatchesSerial(t *testing.T) {
	accs := syntheticString(5000, 21)
	fractions := []float64{0.004, 0.02, 0.08, 0.3}
	mk := func() Policy { return STP{K: 1.4} }
	serial, err := CapacitySweepWorkers(accs, fractions, mk, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CapacitySweepWorkers(accs, fractions, mk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("fraction %v: serial %+v != parallel %+v",
				fractions[i], serial[i], parallel[i])
		}
	}
}

func TestComparePoliciesParallelMatchesSerial(t *testing.T) {
	accs := syntheticString(5000, 22)
	capacity := TotalReferencedBytes(accs) / 30
	mks := func() []Policy {
		return []Policy{STP{K: 1.4}, LRU{}, FIFO{}, SAAC{}, LargestFirst{},
			SmallestFirst{}, NewRandom(3), NewOPT(NewFutureIndex(accs))}
	}
	serial, err := ComparePoliciesWorkers(accs, capacity, mks(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ComparePoliciesWorkers(accs, capacity, mks(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("rank %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestMultiPolicySweepMatchesPerPolicySweeps(t *testing.T) {
	accs := syntheticString(4000, 23)
	fractions := []float64{0.01, 0.05, 0.2}
	mks := []func() Policy{
		func() Policy { return STP{K: 1.4} },
		func() Policy { return LRU{} },
		func() Policy { return LargestFirst{} },
	}
	multi, err := MultiPolicySweep(accs, fractions, mks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(mks) {
		t.Fatalf("sweeps = %d, want %d", len(multi), len(mks))
	}
	for i, mk := range mks {
		if multi[i].Policy != mk().Name() {
			t.Errorf("sweep %d policy = %q, want %q (input order)", i, multi[i].Policy, mk().Name())
		}
		solo, err := CapacitySweepWorkers(accs, fractions, mk, 1)
		if err != nil {
			t.Fatal(err)
		}
		for j := range solo {
			if multi[i].Points[j] != solo[j] {
				t.Errorf("%s at %v: multi %+v != solo %+v",
					multi[i].Policy, fractions[j], multi[i].Points[j], solo[j])
			}
		}
	}
}

func TestSTPExponentSweep(t *testing.T) {
	accs := syntheticString(4000, 24)
	capacity := TotalReferencedBytes(accs) / 30
	ks := []float64{0, 1.0, 1.4, 3.0}
	pts, err := STPExponentSweep(accs, capacity, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ks) {
		t.Fatalf("points = %d, want %d", len(pts), len(ks))
	}
	for i, k := range ks {
		if pts[i].K != k {
			t.Errorf("point %d has K=%v, want %v (input order)", i, pts[i].K, k)
		}
		c, _ := NewCache(CacheConfig{Capacity: capacity, Policy: STP{K: k}})
		if want := c.Replay(accs); pts[i].Result != want {
			t.Errorf("K=%v: sweep %+v != direct replay %+v", k, pts[i].Result, want)
		}
	}
	best, ok := BestExponent(pts)
	if !ok {
		t.Fatal("BestExponent found nothing")
	}
	for _, p := range pts {
		if p.Result.MissRatio() < best.Result.MissRatio() {
			t.Errorf("best exponent %v (%v) beaten by %v (%v)",
				best.K, best.Result.MissRatio(), p.K, p.Result.MissRatio())
		}
	}
	if _, ok := BestExponent(nil); ok {
		t.Error("empty sweep must report no best exponent")
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	accs := syntheticString(200, 25)
	if _, err := STPExponentSweepWorkers(accs, 0, []float64{1}, 0); err == nil {
		t.Error("non-positive capacity must error")
	}
	if _, err := ComparePoliciesWorkers(accs, 1, []Policy{nil}, 0); err == nil {
		t.Error("nil policy must error")
	}
	bad := []func() Policy{func() Policy { return nil }}
	if _, err := MultiPolicySweep(accs, []float64{0.1}, bad, 0); err == nil {
		t.Error("nil policy builder must error")
	}
}
