package migration

import (
	"container/heap"
	"fmt"
	"time"

	"filemig/internal/units"
)

// StagingManager implements the migration daemon §6 proposes: "an
// algorithm should not wait until it is absolutely necessary to free up
// space; instead, it should write data to tape relatively quickly, and
// then mark the file as 'deleteable'. Since files would be written
// lazily, their placement on tertiary media could be optimized ... A mass
// storage system should be optimized to make read access to files faster
// at the cost of requiring more work for writes."
//
// Model: a staging disk of fixed capacity in front of the tape archive.
// Writes land on the disk dirty. In eager mode, a background copier
// streams dirty files to tape at the configured bandwidth as soon as they
// have aged CopyDelay; a copied file is clean ("deleteable") and remains
// cached until space pressure evicts it by policy. In lazy mode
// (Eager=false), nothing is copied until eviction is forced, and every
// forced copy stalls the system for the file's transfer time — the
// behaviour §6 argues against.
type StagingManager struct {
	cfg  StagingConfig
	now  time.Time
	used units.Bytes

	resident []*stagedFile // FileID-indexed; nil when absent
	live     liveSet       // resident IDs for the victim scans
	dirty    units.Bytes   // running sum of resident dirty bytes
	copyq    copyQueue
	copyBusy time.Time // when the tape copier frees up

	stats StagingStats
}

// StagingConfig sizes the staging layer.
type StagingConfig struct {
	Capacity      units.Bytes
	TapeBandwidth float64       // bytes/sec of background copy bandwidth
	CopyDelay     time.Duration // age before a dirty file is copied (eager mode)
	Policy        Policy        // eviction order among clean files
	Eager         bool          // §6's recommendation on/off
}

// StagingStats is the outcome of a run.
type StagingStats struct {
	Reads          int64
	ReadHits       int64
	ReadMisses     int64
	Writes         int64
	Evictions      int64
	ForcedCopies   int64         // lazy-mode synchronous copy-outs
	StallTime      time.Duration // time spent waiting for forced copies
	CopiedBytes    units.Bytes   // background bytes moved to tape
	DirtyPeak      units.Bytes   // high-water mark of uncopied data
	CleanResidency time.Duration // total deleteable-file residency (space "banked" for reads)
}

// ReadMissRatio reports read misses over reads.
func (s StagingStats) ReadMissRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.Reads)
}

type stagedFile struct {
	CachedFile
	dirty     bool
	cleanedAt time.Time
}

type pendingCopy struct {
	fileID int
	ready  time.Time // write time + CopyDelay
}

type copyQueue []pendingCopy

func (q copyQueue) Len() int           { return len(q) }
func (q copyQueue) Less(i, j int) bool { return q[i].ready.Before(q[j].ready) }
func (q copyQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *copyQueue) Push(x any)        { *q = append(*q, x.(pendingCopy)) }
func (q *copyQueue) Pop() any {
	old := *q
	n := len(old)
	v := old[n-1]
	*q = old[:n-1]
	return v
}

// NewStagingManager validates the configuration.
func NewStagingManager(cfg StagingConfig) (*StagingManager, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("migration: staging capacity must be positive")
	}
	if cfg.TapeBandwidth <= 0 {
		return nil, fmt.Errorf("migration: tape bandwidth must be positive")
	}
	if cfg.Policy == nil {
		cfg.Policy = STP{K: 1.4}
	}
	return &StagingManager{cfg: cfg}, nil
}

// lookup returns the resident entry for a file ID, or nil.
func (m *StagingManager) lookup(id int) *stagedFile {
	if id < 0 || id >= len(m.resident) {
		return nil
	}
	return m.resident[id]
}

// Replay runs the access string (time-sorted) through the staging layer.
func (m *StagingManager) Replay(accs []Access) StagingStats {
	for i := range accs {
		m.Step(accs[i])
	}
	// Account residual clean residency up to the last event.
	for _, f := range m.resident {
		if f != nil && !f.dirty {
			m.stats.CleanResidency += m.now.Sub(f.cleanedAt)
		}
	}
	return m.stats
}

// Step processes one access.
func (m *StagingManager) Step(a Access) {
	if a.FileID < 0 {
		panic("migration: negative Access.FileID")
	}
	m.now = a.Time
	if m.cfg.Eager {
		m.drainCopies(a.Time)
	}
	if a.Write {
		m.stats.Writes++
		m.write(a)
	} else {
		m.stats.Reads++
		m.read(a)
	}
	m.trackDirtyPeak()
}

func (m *StagingManager) write(a Access) {
	if f := m.lookup(a.FileID); f != nil {
		m.used += a.Size - f.CachedFile.Size
		if f.dirty {
			m.dirty += a.Size - f.CachedFile.Size
		} else {
			m.dirty += a.Size
		}
		f.Size = a.Size
		f.LastRef = a.Time
		f.Refs++
		if !f.dirty {
			m.stats.CleanResidency += a.Time.Sub(f.cleanedAt)
		}
		f.dirty = true
		m.makeRoom(m.cfg.Capacity, a.FileID)
		if m.cfg.Eager {
			heap.Push(&m.copyq, pendingCopy{fileID: a.FileID, ready: a.Time.Add(m.cfg.CopyDelay)})
		}
		return
	}
	m.insert(a, true)
	if m.cfg.Eager {
		heap.Push(&m.copyq, pendingCopy{fileID: a.FileID, ready: a.Time.Add(m.cfg.CopyDelay)})
	}
}

func (m *StagingManager) read(a Access) {
	if f := m.lookup(a.FileID); f != nil {
		m.stats.ReadHits++
		f.LastRef = a.Time
		f.Refs++
		return
	}
	m.stats.ReadMisses++
	// Fetch from tape: the recalled copy is clean by construction.
	m.insert(a, false)
}

func (m *StagingManager) insert(a Access, dirty bool) {
	if a.Size > m.cfg.Capacity {
		return // streams through; cannot be staged
	}
	m.makeRoom(m.cfg.Capacity-a.Size, a.FileID)
	m.resident = growTo(m.resident, a.FileID)
	m.resident[a.FileID] = &stagedFile{
		CachedFile: CachedFile{ID: a.FileID, Size: a.Size, Inserted: a.Time, LastRef: a.Time, Refs: 1},
		dirty:      dirty,
		cleanedAt:  a.Time,
	}
	m.live.add(a.FileID)
	m.used += a.Size
	if dirty {
		m.dirty += a.Size
	}
}

// drainCopies completes background copies whose turn has come by now.
// The copier is a single stream of TapeBandwidth bytes/sec.
func (m *StagingManager) drainCopies(now time.Time) {
	for len(m.copyq) > 0 {
		next := m.copyq[0]
		start := next.ready
		if m.copyBusy.After(start) {
			start = m.copyBusy
		}
		f := m.lookup(next.fileID)
		if f == nil || !f.dirty {
			heap.Pop(&m.copyq) // evaporated or already cleaned
			continue
		}
		dur := time.Duration(float64(f.CachedFile.Size) / m.cfg.TapeBandwidth * float64(time.Second))
		end := start.Add(dur)
		if end.After(now) {
			return // copier still busy with this file
		}
		heap.Pop(&m.copyq)
		m.copyBusy = end
		f.dirty = false
		m.dirty -= f.CachedFile.Size
		f.cleanedAt = end
		m.stats.CopiedBytes += f.CachedFile.Size
	}
}

// makeRoom frees space down to target. Clean files evict silently by
// policy rank. If only dirty files remain, each eviction forces a
// synchronous copy-out — the §6 anti-pattern — whose transfer time is
// charged as stall.
func (m *StagingManager) makeRoom(target units.Bytes, protect int) {
	for m.used > target {
		victim := m.pickVictim(protect, false)
		if victim == nil {
			victim = m.pickVictim(protect, true)
			if victim == nil {
				return
			}
			dur := time.Duration(float64(victim.CachedFile.Size) / m.cfg.TapeBandwidth * float64(time.Second))
			m.stats.ForcedCopies++
			m.stats.StallTime += dur
			m.stats.CopiedBytes += victim.CachedFile.Size
		} else if !victim.dirty {
			m.stats.CleanResidency += m.now.Sub(victim.cleanedAt)
		}
		if victim.dirty {
			m.dirty -= victim.CachedFile.Size
		}
		m.used -= victim.CachedFile.Size
		m.resident[victim.ID] = nil
		m.live.drop(victim.ID)
		m.stats.Evictions++
	}
}

// pickVictim picks the highest-ranked candidate by walking the live
// resident-ID list in ascending order: equal ranks resolve to the
// lowest file ID, stateful policies (Random) consume their rank draws
// in a reproducible order, and the scan visits residents — not every
// FileID slot ever inserted.
func (m *StagingManager) pickVictim(protect int, dirty bool) *stagedFile {
	var best *stagedFile
	bestRank := 0.0
	for _, id := range m.live.ids() {
		f := m.resident[id]
		if id == protect || f.dirty != dirty {
			continue
		}
		r := m.cfg.Policy.Rank(&f.CachedFile, m.now)
		if best == nil || r > bestRank {
			best, bestRank = f, r
		}
	}
	return best
}

// trackDirtyPeak advances the high-water mark from the running dirty
// counter — O(1) per access, where it historically rescanned every
// resident.
func (m *StagingManager) trackDirtyPeak() {
	if m.dirty > m.stats.DirtyPeak {
		m.stats.DirtyPeak = m.dirty
	}
}

// CompareWriteBehind runs the same access string through an eager and a
// lazy staging layer and returns both outcomes — the §6 experiment.
func CompareWriteBehind(accs []Access, capacity units.Bytes, bandwidth float64,
	delay time.Duration) (eager, lazy StagingStats, err error) {
	e, err := NewStagingManager(StagingConfig{
		Capacity: capacity, TapeBandwidth: bandwidth, CopyDelay: delay,
		Policy: STP{K: 1.4}, Eager: true,
	})
	if err != nil {
		return eager, lazy, err
	}
	l, err := NewStagingManager(StagingConfig{
		Capacity: capacity, TapeBandwidth: bandwidth, CopyDelay: delay,
		Policy: STP{K: 1.4}, Eager: false,
	})
	if err != nil {
		return eager, lazy, err
	}
	return e.Replay(accs), l.Replay(accs), nil
}

// DedupAccesses applies the paper's §5.3 rule to an access string: at
// most one read and one write per file per window. Useful for feeding
// the staging and cache simulators the same deduplicated view the
// analysis uses. The per-file last-seen tables are FileID-indexed
// slices; the zero time marks a file not yet seen.
func DedupAccesses(accs []Access, window time.Duration) []Access {
	var lastRead, lastWrite []time.Time
	out := make([]Access, 0, len(accs))
	for _, a := range accs {
		lastRead = growTo(lastRead, a.FileID)
		lastWrite = growTo(lastWrite, a.FileID)
		last := &lastRead[a.FileID]
		if a.Write {
			last = &lastWrite[a.FileID]
		}
		if !last.IsZero() && a.Time.Sub(*last) < window {
			continue
		}
		*last = a.Time
		out = append(out, a)
	}
	return out
}
