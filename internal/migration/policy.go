// Package migration implements the file migration algorithms discussed in
// the paper's §2.3 and §6 — Smith's space-time product (STP) with its
// canonical 1.4 exponent, LRU, pure-size, FIFO, random, Lawrie's SAAC, and
// an offline OPT bound — plus the disk-cache simulator that replays a
// reference string against a finite staging disk to compare them, the
// eight-hour request-coalescing analysis, and prefetching.
package migration

import (
	"math"
	"math/rand"
	"time"

	"filemig/internal/trace"
	"filemig/internal/units"
)

// CachedFile is a resident file as seen by a policy.
type CachedFile struct {
	ID       int
	Size     units.Bytes
	Inserted time.Time
	LastRef  time.Time
	Refs     int // references since insertion
}

// Policy ranks eviction candidates. The cache evicts the resident file
// with the highest Rank until enough space is free; ties resolve to the
// lowest file ID. Rank must not mutate the file.
type Policy interface {
	Name() string
	Rank(f *CachedFile, now time.Time) float64
}

// KeyedPolicy is an optional Policy capability for policies whose victim
// ordering is time-invariant during replay: the relative order of two
// resident files never changes between touches, so the cache can keep an
// indexed priority heap (highest Key evicts first, ties to the lowest
// file ID) and pick victims in O(log R) instead of scanning every
// resident file. Key is recomputed only when a file is inserted or
// touched. Policies whose ranks cross over time (STP, SAAC, Random) must
// not implement it; they keep the deterministic scan fallback.
type KeyedPolicy interface {
	Policy
	Key(f *CachedFile) float64
}

// ScanOnly wraps a policy and hides any KeyedPolicy capability, forcing
// the cache onto the scan path — used by the equivalence tests and
// benchmarks to compare heap and scan victim selection. Only the keyed
// fast path is hidden: the cache still resolves AccessObserver,
// VictimPolicy, and CapacityAware through the wrapper, so stateful
// policies keep seeing their accesses.
type ScanOnly struct{ P Policy }

// Name implements Policy.
func (s ScanOnly) Name() string { return s.P.Name() }

// Rank implements Policy.
func (s ScanOnly) Rank(f *CachedFile, now time.Time) float64 { return s.P.Rank(f, now) }

// timeKey maps a timestamp onto a float64 eviction key: seconds relative
// to the trace epoch. Over the paper's ±2-year window keys are spaced
// ≤8ns — the same precision class as the scan path's float64 rank
// seconds (and far below optDead) — so heap and scan victim orders agree
// for any realistic trace resolution.
func timeKey(t time.Time) float64 {
	return t.Sub(trace.Epoch).Seconds()
}

// STP is Smith's space-time product criterion: evict the file with the
// largest (time since last reference)^K × size. K=1.4 was the best
// exponent in Smith's study and the one Lawrie validated; K=1 is the
// plain space-time product; K→0 degenerates toward pure size; K→∞ toward
// LRU.
type STP struct {
	K float64
}

// Name implements Policy.
func (p STP) Name() string {
	if p.K == 1.4 {
		return "STP^1.4"
	}
	return "STP^" + trimFloat(p.K)
}

// Rank implements Policy.
func (p STP) Rank(f *CachedFile, now time.Time) float64 {
	age := now.Sub(f.LastRef).Hours() / 24 // in days, as Smith measured
	if age < 0 {
		age = 0
	}
	return math.Pow(age, p.K) * float64(f.Size)
}

// LRU evicts the least recently used file regardless of size.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Rank implements Policy.
func (LRU) Rank(f *CachedFile, now time.Time) float64 {
	return now.Sub(f.LastRef).Seconds()
}

// Key implements KeyedPolicy: oldest last reference evicts first.
func (LRU) Key(f *CachedFile) float64 { return -timeKey(f.LastRef) }

// LargestFirst migrates the biggest files first ("pure length" in
// Lawrie's study): frees the most space per eviction but throws away big
// hot files.
type LargestFirst struct{}

// Name implements Policy.
func (LargestFirst) Name() string { return "largest-first" }

// Rank implements Policy.
func (LargestFirst) Rank(f *CachedFile, _ time.Time) float64 { return float64(f.Size) }

// Key implements KeyedPolicy.
func (LargestFirst) Key(f *CachedFile) float64 { return float64(f.Size) }

// SmallestFirst is the mirror baseline: keeps big files pinned.
type SmallestFirst struct{}

// Name implements Policy.
func (SmallestFirst) Name() string { return "smallest-first" }

// Rank implements Policy.
func (SmallestFirst) Rank(f *CachedFile, _ time.Time) float64 { return -float64(f.Size) }

// Key implements KeyedPolicy.
func (SmallestFirst) Key(f *CachedFile) float64 { return -float64(f.Size) }

// FIFO evicts the file resident longest, ignoring use.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Rank implements Policy.
func (FIFO) Rank(f *CachedFile, now time.Time) float64 {
	return now.Sub(f.Inserted).Seconds()
}

// Key implements KeyedPolicy: earliest insertion evicts first.
func (FIFO) Key(f *CachedFile) float64 { return -timeKey(f.Inserted) }

// Random evicts uniformly at random (deterministic per seed).
type Random struct {
	rng *rand.Rand
}

// NewRandom builds a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Rank implements Policy. Each call consumes the next rng draw; replays
// stay deterministic because every scan ranks candidates in ascending
// file ID order (the resident slices are walked in index order).
func (r *Random) Rank(*CachedFile, time.Time) float64 { return r.rng.Float64() }

// SAAC approximates Lawrie's "migrate files that became less active"
// criterion: rank grows with idle time and shrinks with the reference
// count accumulated while resident, so a once-busy file that went quiet
// leaves before a steadily-used one.
type SAAC struct{}

// Name implements Policy.
func (SAAC) Name() string { return "SAAC" }

// Rank implements Policy.
func (SAAC) Rank(f *CachedFile, now time.Time) float64 {
	idle := now.Sub(f.LastRef).Hours()
	if idle < 0 {
		idle = 0
	}
	return idle * float64(f.Size) / float64(1+f.Refs)
}

// OPT is the clairvoyant bound: evict the file whose next reference is
// farthest in the future (never-referenced files first, largest first
// among them). It needs the full future reference string, which Smith
// noted makes the best algorithms unrealisable online (§2.3).
type OPT struct {
	future *FutureIndex
}

// NewOPT builds the offline policy over a prepared future index.
func NewOPT(future *FutureIndex) *OPT { return &OPT{future: future} }

// Name implements Policy.
func (*OPT) Name() string { return "OPT" }

// Rank implements Policy.
func (o *OPT) Rank(f *CachedFile, now time.Time) float64 {
	next, ok := o.future.NextAfter(f.ID, now)
	if !ok {
		return optDead + float64(f.Size)
	}
	return next.Sub(now).Seconds()
}

// optDead ranks files that are never referenced again: always safer to
// evict than any live file; among dead files prefer the biggest. The
// 1e12 base exceeds any realistic next-use distance in seconds (and any
// Unix timestamp, so heap keys order the same way) while staying small
// enough that the size term survives float64 rounding.
const optDead = 1e12

// Key implements KeyedPolicy: farthest next reference evicts first. A
// resident file's next reference cannot lie between its last touch and
// the replay clock — a reference to a resident file is a touch — so the
// absolute next-reference time recorded at touch time stays the file's
// true next reference until it is touched again, making OPT's victim
// ordering time-invariant during a forward replay.
func (o *OPT) Key(f *CachedFile) float64 {
	next, ok := o.future.NextAfter(f.ID, f.LastRef)
	if !ok {
		return optDead + float64(f.Size)
	}
	return timeKey(next)
}

// FutureIndex answers "when is file f next referenced after t" from a
// prepared, time-sorted access list. File IDs are dense, so both the
// per-file reference lists and the replay cursors are flat slices — the
// hottest OPT operations never touch a map.
type FutureIndex struct {
	times [][]time.Time // FileID -> reference times, in trace order
	pos   []int         // FileID -> replay cursor
}

// NewFutureIndex builds the index from accesses, which must be
// time-sorted.
func NewFutureIndex(accs []Access) *FutureIndex {
	idx := &FutureIndex{}
	for _, a := range accs {
		idx.times = growTo(idx.times, a.FileID)
		idx.pos = growTo(idx.pos, a.FileID)
		idx.times[a.FileID] = append(idx.times[a.FileID], a.Time)
	}
	return idx
}

// NextAfter reports the first reference to file strictly after t. The
// query times must be non-decreasing per file (true during a forward
// replay), letting the index advance a cursor instead of searching.
func (x *FutureIndex) NextAfter(file int, t time.Time) (time.Time, bool) {
	if file < 0 || file >= len(x.times) {
		return time.Time{}, false
	}
	ts := x.times[file]
	i := x.pos[file]
	for i < len(ts) && !ts[i].After(t) {
		i++
	}
	x.pos[file] = i
	if i >= len(ts) {
		return time.Time{}, false
	}
	return ts[i], true
}

func trimFloat(v float64) string {
	s := math.Trunc(v*100) / 100
	if s == math.Trunc(s) {
		return itoa(int(s))
	}
	// Two decimals, trailing zero trimmed.
	whole := int(s)
	frac := int(math.Round((s - float64(whole)) * 100))
	if frac%10 == 0 {
		return itoa(whole) + "." + itoa(frac/10)
	}
	return itoa(whole) + "." + pad2(frac)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		b[p] = '-'
	}
	return string(b[p:])
}

func pad2(i int) string {
	if i < 10 {
		return "0" + itoa(i)
	}
	return itoa(i)
}
