package migration

import "time"

// LRUK is the LRU-K replacement policy (O'Neil, O'Neil & Weikum,
// SIGMOD '93): evict the file whose K-th most recent reference is
// oldest — backward K-distance — so one-shot scans cannot displace
// files with a proven re-reference history. Files with fewer than K
// recorded references have infinite backward K-distance and evict
// first, oldest last reference first among them; all remaining ties
// resolve to the lowest file ID through the shared (rank, fileID)
// machinery.
//
// Reference history is retained across evictions (the paper's retained
// information), in a flattened FileID-indexed ring of the last K
// reference times, so a file's second cache life starts with its first
// life's history. The ordering is time-invariant between touches, so
// LRUK implements KeyedPolicy and victims come from the indexed heap;
// LRUK{K: 1} reproduces plain LRU exactly.
type LRUK struct {
	k    int
	hist []time.Time // fileID*k+i ring slots of recent reference times
	n    []int32     // FileID -> references recorded
}

// NewLRUK builds an LRU-K policy; k must be at least 1.
func NewLRUK(k int) *LRUK {
	if k < 1 {
		panic("migration: LRU-K depth must be >= 1")
	}
	return &LRUK{k: k}
}

// Name implements Policy.
func (p *LRUK) Name() string { return "LRU-" + itoa(p.k) }

// FileAccessed implements AccessObserver: record the reference time in
// the file's ring.
//
//filemig:hotpath
func (p *LRUK) FileAccessed(f *CachedFile, now time.Time) {
	id := f.ID
	p.n = growTo(p.n, id)
	p.hist = growTo(p.hist, (id+1)*p.k-1)
	p.hist[id*p.k+int(p.n[id])%p.k] = now
	p.n[id]++
}

// FileEvicted implements AccessObserver: history is retained, so
// eviction changes nothing.
func (*LRUK) FileEvicted(*CachedFile) {}

// lrukShort bands files with fewer than K references, which evict
// before any full-history file; like optDead the base dwarfs any
// timeKey magnitude.
const lrukShort = 1e12

// Key implements KeyedPolicy: oldest K-th most recent reference evicts
// first; short-history files band above every full-history file,
// ordered by oldest last reference.
func (p *LRUK) Key(f *CachedFile) float64 {
	id := f.ID
	if id < len(p.n) && int(p.n[id]) >= p.k {
		// The slot the next write would claim holds the oldest of the K
		// retained references — the backward K-distance anchor.
		return -timeKey(p.hist[id*p.k+int(p.n[id])%p.k])
	}
	return lrukShort - timeKey(f.LastRef)
}

// Rank implements Policy, identically to Key: the order is
// time-invariant.
func (p *LRUK) Rank(f *CachedFile, _ time.Time) float64 { return p.Key(f) }
