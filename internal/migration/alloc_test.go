package migration

import (
	"testing"
	"time"

	"filemig/internal/units"
)

// allocAccesses builds a reference string that forces steady eviction
// traffic at a small capacity: many files, revisits, and size variety.
func allocAccesses() []Access {
	base := time.Date(1990, time.October, 1, 0, 0, 0, 0, time.UTC)
	accs := make([]Access, 0, 4000)
	for i := 0; i < 4000; i++ {
		accs = append(accs, Access{
			Time:   base.Add(time.Duration(i) * time.Minute),
			FileID: (i * 7) % 257,
			Size:   units.Bytes(1000 + (i%13)*500),
			Write:  i%4 == 0,
			DirID:  (i * 7) % 31,
		})
	}
	return accs
}

// TestCacheReplaySteadyStateAllocs pins the free-list recycling: once a
// cache has been through the access string, replaying it again on the
// same instance allocates nothing per access — on the heap path (LRU),
// on the scan path (STP, STP-adapt), on the victim path (ARC), and
// through the stateful observers' dense arenas (LRU-K, GDSF, cost)
// alike.
func TestCacheReplaySteadyStateAllocs(t *testing.T) {
	accs := allocAccesses()
	capacity := TotalReferencedBytes(accs) / 10
	for _, p := range []Policy{LRU{}, STP{K: 1.4}, NewARC(), NewLRUK(2),
		NewGDSF(), NewCostAware(DefaultTapeRateMBps), NewAdaptiveSTP()} {
		c, err := NewCache(CacheConfig{Capacity: capacity, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		c.Replay(accs) // warm: resident slice, heap, free list, scratch
		perRun := testing.AllocsPerRun(10, func() {
			c.Replay(accs)
		})
		if perRun > 1 {
			t.Errorf("%s: steady-state Replay allocates %v per run, want <= 1", p.Name(), perRun)
		}
	}
}
