package migration

import (
	"math"
	"testing"
	"time"

	"filemig/internal/units"
)

func TestStagingRewriteTransitions(t *testing.T) {
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// Write, let the copy clean it, then rewrite: the file must flip back
	// to dirty, adjust occupancy, and be re-queued for copy.
	m.Step(acc(0, 1, units.Bytes(10*units.MB), true))
	m.Step(acc(5, 2, units.Bytes(1*units.MB), false)) // drains the copier
	if m.resident[1].dirty {
		t.Fatal("file 1 should be clean after drain")
	}
	m.Step(acc(6, 1, units.Bytes(30*units.MB), true)) // rewrite, larger
	if !m.resident[1].dirty {
		t.Error("rewrite must dirty the file again")
	}
	wantUsed := units.Bytes(31 * units.MB) // 30 MB rewritten + 1 MB recalled
	if m.used != wantUsed {
		t.Errorf("used = %v, want %v", m.used, wantUsed)
	}
	// The recopy happens: copied bytes grow beyond the first 10 MB.
	m.Step(acc(60, 2, units.Bytes(1*units.MB), false))
	if got := m.Result().CopiedBytes; got != units.Bytes(40*units.MB) {
		t.Errorf("copied = %v, want 40 MB (10 original + 30 rewrite)", got)
	}
}

func TestStagingRewriteWhileDirty(t *testing.T) {
	// Rewrite before the first copy completes: the original copy request
	// refers to a still-dirty file; no double-count, no stall.
	m, err := NewStagingManager(stagingCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(acc(0, 1, units.Bytes(10*units.MB), true))
	m.Step(acc(0, 1, units.Bytes(12*units.MB), true))
	if m.used != units.Bytes(12*units.MB) {
		t.Errorf("used = %v, want 12 MB", m.used)
	}
	// Much later, both queued copies have drained; the file was copied
	// once per queue entry at most, and is clean.
	m.Step(acc(200, 2, units.Bytes(1*units.MB), false))
	if m.resident[1].dirty {
		t.Error("file should be clean")
	}
}

func TestStagingStatsRatios(t *testing.T) {
	s := StagingStats{Reads: 10, ReadMisses: 3}
	if got := s.ReadMissRatio(); got != 0.3 {
		t.Errorf("ReadMissRatio = %v", got)
	}
	if (StagingStats{}).ReadMissRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestCacheResultRatios(t *testing.T) {
	r := CacheResult{
		Reads: 10, ReadMisses: 2,
		BytesRead: units.Bytes(100), BytesMissed: units.Bytes(25),
	}
	if got := r.MissRatio(); got != 0.2 {
		t.Errorf("MissRatio = %v", got)
	}
	if got := r.ByteMissRatio(); got != 0.25 {
		t.Errorf("ByteMissRatio = %v", got)
	}
	empty := CacheResult{}
	if empty.MissRatio() != 0 || empty.ByteMissRatio() != 0 {
		t.Error("empty ratios should be 0")
	}
}

func TestSTPNameFormatting(t *testing.T) {
	cases := map[float64]string{
		1.4:  "STP^1.4",
		1.0:  "STP^1",
		0:    "STP^0",
		2.0:  "STP^2",
		0.5:  "STP^0.5",
		1.25: "STP^1.25",
	}
	for k, want := range cases {
		if got := (STP{K: k}).Name(); got != want {
			t.Errorf("STP{%v}.Name() = %q, want %q", k, got, want)
		}
	}
}

func TestSTPRankClampsNegativeAge(t *testing.T) {
	// A file "referenced in the future" (clock skew) must not produce NaN.
	p := STP{K: 1.4}
	f := cf(1, units.Bytes(units.MB), -time.Hour, 1)
	if r := p.Rank(f, t0); math.IsNaN(r) || r != 0 {
		t.Errorf("rank with negative age = %v, want 0", r)
	}
	s := SAAC{}
	if r := s.Rank(f, t0); math.IsNaN(r) || r != 0 {
		t.Errorf("SAAC rank with negative age = %v, want 0", r)
	}
}

func TestCompareWriteBehindPropagatesError(t *testing.T) {
	if _, _, err := CompareWriteBehind(nil, 0, 1, time.Second); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, _, err := CompareWriteBehind(nil, 1, 0, time.Second); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestPlacementDiskReadFractionEmpty(t *testing.T) {
	if (PlacementResult{}).DiskReadFraction() != 0 {
		t.Error("empty fraction should be 0")
	}
	r := PlacementResult{Reads: 4, DiskReads: 1}
	if r.DiskReadFraction() != 0.25 {
		t.Error("fraction wrong")
	}
}
