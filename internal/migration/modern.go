package migration

import (
	"time"

	"filemig/internal/units"
)

// This file defines the optional capabilities the post-1993 policies
// (ARC, LRU-K, GDSF, cost-aware, adaptive STP) need on top of the
// Rank/Key machinery: per-access bookkeeping hooks, structural victim
// selection, and capacity awareness. The capabilities compose with the
// existing paths — a policy that implements none of them behaves
// exactly as before — and every hook is driven by the replay's own
// access sequence, so replays stay deterministic at any worker count.

// AccessObserver is an optional Policy capability for stateful policies
// that maintain their own per-file bookkeeping (reference histories,
// ghost lists, priority clocks). The cache calls FileAccessed once per
// insert and per touch, after the file's Size/LastRef/Refs reflect the
// access and before any eviction key is recomputed, and FileEvicted
// whenever a file leaves residency (policy evictions and stream-through
// removals alike). Observers keep dense FileID-indexed tables, so the
// hooks stay allocation-free in steady state.
//
// The hooks fire only from the Cache replay loop. Used outside it (for
// example by the staging manager, which consults Rank alone), an
// observer policy never sees accesses and degrades to whatever its Rank
// reports for unseen files — deterministic, but not the policy's real
// ordering.
type AccessObserver interface {
	Policy
	// FileAccessed records one access to f at time now. f reflects the
	// access already (Refs counts it, LastRef equals now).
	FileAccessed(f *CachedFile, now time.Time)
	// FileEvicted records that f left residency.
	FileEvicted(f *CachedFile)
}

// VictimPolicy is an optional Policy capability for policies whose
// victim choice is structural rather than a per-file score — ARC's
// dual-queue choice cannot be expressed as a frozen rank order. When
// the policy implements it, the cache's shrink loop asks NextVictim for
// each eviction instead of consulting the heap or scan paths; Rank
// remains as an advisory order for rank-only consumers.
type VictimPolicy interface {
	Policy
	// NextVictim returns the resident file to evict next, skipping the
	// protected file ID. ok is false when nothing is evictable.
	NextVictim(protect int) (id int, ok bool)
}

// CapacityAware is an optional Policy capability for policies sized in
// bytes against the cache they serve (ARC's target and ghost bounds).
// NewCache calls SetCapacity exactly once, before any access.
type CapacityAware interface {
	Policy
	SetCapacity(capacity units.Bytes)
}

// policyCore unwraps ScanOnly for capability discovery: ScanOnly hides
// only the KeyedPolicy fast path; observer, victim, and capacity
// capabilities must keep working underneath it or stateful policies
// would silently stop updating on the scan path.
func policyCore(p Policy) Policy {
	if s, ok := p.(ScanOnly); ok {
		return s.P
	}
	return p
}
