package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// Wire-format selection and auto-detection. Both formats announce
// themselves with a one-line ASCII header ("#filemig-trace v1 ..." or
// "#filemig-trace b1 ..."), so readers can sniff the format without any
// out-of-band signal; see docs/trace-format.md.

// Format identifies a trace wire format.
type Format int

// The three wire formats: the human-readable ASCII v1 codec, the
// compact record-at-a-time binary b1 codec, and the columnar block b2
// codec. All are loss-free transcodings of each other.
const (
	FormatASCII Format = iota
	FormatBinary
	FormatB2
)

// String names the format the way the -format flags spell it.
func (f Format) String() string {
	switch f {
	case FormatASCII:
		return "ascii"
	case FormatBinary:
		return "binary"
	case FormatB2:
		return "b2"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseFormat parses a -format flag value: "ascii"/"v1",
// "binary"/"b1", or "b2"/"block".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "ascii", "v1", "text":
		return FormatASCII, nil
	case "binary", "b1", "bin":
		return FormatBinary, nil
	case "b2", "block", "columnar":
		return FormatB2, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (want ascii, binary, or b2)", s)
}

// NewFormatWriter returns the codec writer for the given format, using
// the package Epoch.
func NewFormatWriter(w io.Writer, f Format) FlushSink {
	return NewFormatWriterEpoch(w, f, Epoch)
}

// NewFormatWriterEpoch returns the codec writer for the given format with
// an explicit epoch.
func NewFormatWriterEpoch(w io.Writer, f Format, epoch time.Time) FlushSink {
	switch f {
	case FormatBinary:
		return NewBinaryWriterEpoch(w, epoch)
	case FormatB2:
		return NewB2WriterEpoch(w, epoch)
	}
	return NewWriterEpoch(w, epoch)
}

// sniffLen covers "#filemig-trace XX" — enough of the header line to tell
// the two formats apart.
const sniffLen = len(headerPrefix) - len(" epoch=")

// SnapshotHeader is the header line (sans newline) of the s1 analysis
// snapshot format (internal/core, docs/snapshots.md). It lives here so
// trace readers can tell a snapshot from a trace and point the user at
// the snapshot tooling instead of failing with a generic header error.
const SnapshotHeader = "#filemig-snapshot s1"

// emptyStream is what OpenStream returns for zero-byte input: a stream
// that is immediately at io.EOF, matching the ASCII Reader's tolerance
// for empty traces.
type emptyStream struct{}

// Next reports the end of the (empty) stream.
func (emptyStream) Next() (Record, error) { return Record{}, io.EOF }

// OpenStream sniffs the header of an encoded trace and returns the
// matching codec reader as a Stream. Zero-byte input yields an empty
// stream; an unrecognised header is an error.
func OpenStream(r io.Reader) (Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(SnapshotHeader))
	if err == io.EOF && len(head) == 0 {
		return emptyStream{}, nil
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniffing format: %v", err)
	}
	f, ferr := sniffFormat(head)
	if ferr != nil {
		return nil, ferr
	}
	switch f {
	case FormatBinary:
		return NewBinaryReader(br), nil
	case FormatB2:
		return NewB2Reader(br), nil
	}
	return NewReader(br), nil
}

// sniffFormat classifies a peeked header prefix.
func sniffFormat(head []byte) (Format, error) {
	const common = "#filemig-trace "
	if len(head) >= len(SnapshotHeader) && string(head[:len(SnapshotHeader)]) == SnapshotHeader {
		return 0, fmt.Errorf("trace: input is an s1 analysis snapshot, not a trace; load it with mssanalyze merge (or core.ReadSnapshot)")
	}
	if len(head) < sniffLen || string(head[:len(common)]) != common {
		return 0, fmt.Errorf("trace: unrecognised header %q", head)
	}
	switch string(head[len(common):sniffLen]) {
	case "v1":
		return FormatASCII, nil
	case "b1":
		return FormatBinary, nil
	case "b2":
		return FormatB2, nil
	}
	return 0, fmt.Errorf("trace: unrecognised trace version in header %q", head)
}

// NewFormatReader returns the codec reader for a known format as a
// Stream, without sniffing the header.
func NewFormatReader(r io.Reader, f Format) Stream {
	switch f {
	case FormatBinary:
		return NewBinaryReader(r)
	case FormatB2:
		return NewB2Reader(r)
	}
	return NewReader(r)
}

// OpenStreamFlag resolves a -format flag value into a record Stream:
// "auto" sniffs the header, anything else names a codec (ParseFormat
// spellings). It backs the -format flag of mssanalyze and msssim.
func OpenStreamFlag(r io.Reader, flag string) (Stream, error) {
	if flag == "auto" {
		return OpenStream(r)
	}
	f, err := ParseFormat(flag)
	if err != nil {
		return nil, err
	}
	return NewFormatReader(r, f), nil
}

// WriteAllFormat encodes every record to w in the given format and
// flushes. Like WriteAll, the epoch is the first record's start time.
func WriteAllFormat(w io.Writer, recs []Record, f Format) error {
	epoch := Epoch
	if len(recs) > 0 {
		epoch = recs[0].Start
	}
	tw := NewFormatWriterEpoch(w, f, epoch)
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}
