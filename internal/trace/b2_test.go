package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// encodeB2 encodes recs with the given records-per-block target,
// deltaing from the first record's start like WriteAllFormat.
func encodeB2(t *testing.T, recs []Record, perBlock int) []byte {
	t.Helper()
	epoch := Epoch
	if len(recs) > 0 {
		epoch = recs[0].Start
	}
	var buf bytes.Buffer
	w := NewB2WriterEpochBlock(&buf, epoch, perBlock)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// b2Fixture is a deterministic multi-block trace: enough records over
// few paths and several same-second runs to exercise every column
// encoding, split into many small blocks.
func b2Fixture(t *testing.T, n, perBlock int) ([]Record, []byte) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	devs := []device.Class{device.ClassDisk, device.ClassSiloTape, device.ClassManualTape, device.ClassOptical}
	recs := make([]Record, n)
	cur := Epoch
	for i := range recs {
		cur = cur.Add(time.Duration(r.Intn(3)) * 40 * time.Second) // ~1/3 share a second
		recs[i] = Record{
			Start:      cur,
			Op:         Op(r.Intn(2)),
			Device:     devs[r.Intn(len(devs))],
			Err:        ErrCode(r.Intn(4)),
			Compressed: r.Intn(2) == 0,
			Startup:    time.Duration(r.Intn(300)) * time.Second,
			Transfer:   time.Duration(r.Intn(90000)) * time.Millisecond,
			Size:       units.Bytes(r.Int63n(64 * units.MB)),
			MSSPath:    "/mss/u" + itoa(r.Intn(7)) + "/f" + itoa(r.Intn(23)),
			LocalPath:  "/tmp/j" + itoa(r.Intn(11)),
			UserID:     uint32(100 + r.Intn(9)),
		}
	}
	return recs, encodeB2(t, recs, perBlock)
}

// requireSameRecords fails on the first field-level difference.
func requireSameRecords(t *testing.T, got, want []Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if !a.Start.Equal(b.Start) || a.Op != b.Op || a.Device != b.Device ||
			a.Err != b.Err || a.Compressed != b.Compressed ||
			a.Startup != b.Startup || a.Transfer != b.Transfer ||
			a.Size != b.Size || a.UserID != b.UserID ||
			a.MSSPath != b.MSSPath || a.LocalPath != b.LocalPath {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, a, b)
		}
	}
}

func TestB2RoundTrip(t *testing.T) {
	recs := sampleRecords()
	enc := encodeB2(t, recs, DefaultB2BlockRecords)
	got, err := Collect(NewB2Reader(bytes.NewReader(enc)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	requireSameRecords(t, got, recs, "b2 round trip")

	// b2 carries the same quantisation as b1: transcoding b2 → b1 must
	// equal encoding the originals as b1 directly.
	var viaB2, direct bytes.Buffer
	if err := WriteAllFormat(&viaB2, got, FormatBinary); err != nil {
		t.Fatal(err)
	}
	if err := WriteAllFormat(&direct, recs, FormatBinary); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaB2.Bytes(), direct.Bytes()) {
		t.Fatal("b2-decoded records do not b1-encode identically to the originals")
	}
}

func TestB2MultiBlock(t *testing.T) {
	recs, enc := b2Fixture(t, 100, 7)
	got, err := Collect(NewB2Reader(bytes.NewReader(enc)))
	if err != nil {
		t.Fatalf("sequential decode: %v", err)
	}
	requireSameRecords(t, got, recs, "sequential")

	f, err := OpenB2File(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatalf("OpenB2File: %v", err)
	}
	if f.NumBlocks() != 15 { // ceil(100/7)
		t.Fatalf("NumBlocks = %d, want 15", f.NumBlocks())
	}
	if f.NumRecords() != 100 {
		t.Fatalf("NumRecords = %d, want 100", f.NumRecords())
	}
	if f.DecodeCount() != 0 {
		t.Fatalf("opening the file decoded %d blocks; planning must decode none", f.DecodeCount())
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := Collect(f.Stream(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameRecords(t, got, recs, "parallel")
	}
	if f.DecodeCount() != 3*15 {
		t.Fatalf("DecodeCount = %d after three full reads of 15 blocks", f.DecodeCount())
	}

	// Block metadata matches the records without decoding.
	var total int64
	prevEnd := time.Time{}
	for i := 0; i < f.NumBlocks(); i++ {
		m := f.Meta(i)
		total += m.Count
		if m.End.Before(m.Base) || m.Base.Before(prevEnd) {
			t.Fatalf("block %d range [%v,%v] disordered (prev end %v)", i, m.Base, m.End, prevEnd)
		}
		prevEnd = m.End
	}
	if total != 100 {
		t.Fatalf("index counts sum to %d", total)
	}
}

func TestB2SingleBlockDecode(t *testing.T) {
	recs, enc := b2Fixture(t, 60, 10)
	f, err := OpenB2File(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	d := f.NewBlockDecoder()
	// Decode only block 3; exactly its records come back and exactly one
	// decode happens.
	got, err := d.Decode(3)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRecords(t, got, recs[30:40], "block 3")
	if f.DecodeCount() != 1 {
		t.Fatalf("DecodeCount = %d, want 1", f.DecodeCount())
	}
	if err := d.DecodeInto(2, make([]Record, 3)); err == nil {
		t.Fatal("wrong-sized dst must be rejected")
	}
}

func TestB2EmptyTrace(t *testing.T) {
	enc := encodeB2(t, nil, DefaultB2BlockRecords)
	if len(enc) != 0 {
		t.Fatalf("empty trace encodes to %d bytes, want 0", len(enc))
	}
	if _, err := NewB2Reader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
	if _, err := OpenB2File(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("OpenB2File on empty input must report ErrNotB2")
	}
}

func TestB2WriterRejects(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewB2Writer(&buf)
	if err := w.Write(&recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&recs[0]); err == nil {
		t.Error("out-of-order record must be rejected")
	}
	bad := recs[0]
	bad.MSSPath = "has space"
	if err := w.Write(&bad); err == nil {
		t.Error("invalid path must be rejected")
	}
	bad = recs[0]
	bad.Start = Epoch.Add(-time.Hour)
	if err := NewB2Writer(&bytes.Buffer{}).Write(&bad); err == nil {
		t.Error("pre-epoch record must be rejected")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&recs[2]); err == nil {
		t.Error("Write after Flush must be rejected")
	}
	if err := w.Flush(); err != nil {
		t.Errorf("second Flush: %v", err)
	}

	// Ordering is enforced across a block boundary too.
	w2 := NewB2WriterEpochBlock(&bytes.Buffer{}, Epoch, 1)
	if err := w2.Write(&recs[1]); err != nil {
		t.Fatal(err)
	}
	early := recs[1]
	early.Start = recs[1].Start.Add(-10 * time.Second)
	if err := w2.Write(&early); err == nil {
		t.Error("cross-block out-of-order record must be rejected")
	}
}

// decodeB2All runs both decode paths over data and reports whether
// either succeeded — the torture suites require both to error.
func decodeB2All(data []byte) error {
	_, seqErr := Collect(NewB2Reader(bytes.NewReader(data)))
	if seqErr == nil {
		return nil
	}
	f, err := OpenB2File(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return seqErr
	}
	if _, err := Collect(f.Stream(2)); err == nil {
		return nil
	}
	return seqErr
}

func TestB2TruncationTorture(t *testing.T) {
	_, enc := b2Fixture(t, 24, 5)
	for cut := 1; cut < len(enc); cut++ {
		if err := decodeB2All(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", cut, len(enc))
		}
	}
}

func TestB2BitFlipTorture(t *testing.T) {
	_, enc := b2Fixture(t, 24, 5)
	mut := make([]byte, len(enc))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			copy(mut, enc)
			mut[i] ^= 1 << bit
			if err := decodeB2All(mut); err == nil {
				t.Fatalf("flipping bit %d of byte %d decoded cleanly", bit, i)
			}
		}
	}
}

// reindexB2 rebuilds data's trailing index from mutated entries,
// recomputing the frame CRC and footer, so index-validation tests reach
// the index parser instead of tripping the checksum.
func reindexB2(t *testing.T, data []byte, mutate func([]b2IndexEntry) []b2IndexEntry) []byte {
	t.Helper()
	if len(data) < b2FooterLen {
		t.Fatal("fixture too short")
	}
	indexOff := int64(binary.LittleEndian.Uint64(data[len(data)-b2FooterLen:]))
	body, err := openB2Frame(data[indexOff:len(data)-b2FooterLen], b2IndexTag)
	if err != nil {
		t.Fatalf("fixture index frame: %v", err)
	}
	c := byteCursor{b: body}
	epochSec, err := c.svarint("epoch")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.uvarint("count", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]b2IndexEntry, n)
	for i := range entries {
		e := &entries[i]
		for _, dst := range []*int64{&e.offset, &e.frameLen, &e.count, &e.base, &e.span} {
			v, err := c.uvarint("field", 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			*dst = int64(v)
		}
		for col := range e.colSizes {
			v, err := c.uvarint("col", 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			e.colSizes[col] = int64(v)
		}
	}
	newBody := appendB2IndexBody(nil, epochSec, mutate(entries))
	out := append([]byte(nil), data[:indexOff]...)
	out = append(out, b2IndexTag)
	out = binary.AppendUvarint(out, uint64(len(newBody)))
	out = append(out, newBody...)
	out = binary.LittleEndian.AppendUint32(out, b2CRC(newBody))
	var foot [b2FooterLen]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(indexOff))
	copy(foot[8:], b2Magic)
	return append(out, foot[:]...)
}

func TestB2MalformedIndexTorture(t *testing.T) {
	_, enc := b2Fixture(t, 24, 5)
	cases := map[string]func([]b2IndexEntry) []b2IndexEntry{
		"record count off by one": func(es []b2IndexEntry) []b2IndexEntry {
			es[1].count++
			es[1].colSizes[b2ColFlags]++ // keep the flags-column invariant so the count check itself fires
			return es
		},
		"flags column size mismatch": func(es []b2IndexEntry) []b2IndexEntry {
			es[1].colSizes[b2ColFlags]++
			return es
		},
		"other column size mismatch": func(es []b2IndexEntry) []b2IndexEntry {
			es[2].colSizes[b2ColSize]++
			return es
		},
		"overlapping blocks": func(es []b2IndexEntry) []b2IndexEntry {
			es[2].offset -= 3
			return es
		},
		"gap between blocks": func(es []b2IndexEntry) []b2IndexEntry {
			es[1].frameLen -= 2
			return es
		},
		"out-of-order time ranges": func(es []b2IndexEntry) []b2IndexEntry {
			es[1].base, es[2].base = es[2].base, es[1].base
			es[1].span, es[2].span = es[2].span, es[1].span
			return es
		},
		"block span shrunk": func(es []b2IndexEntry) []b2IndexEntry {
			if es[0].span == 0 {
				panic("fixture block 0 must span time")
			}
			es[0].span--
			es[1].base-- // keep ordering valid so the span mismatch itself fires
			return es
		},
		"missing last block": func(es []b2IndexEntry) []b2IndexEntry {
			return es[:len(es)-1]
		},
		"no blocks": func(es []b2IndexEntry) []b2IndexEntry {
			return es[:0]
		},
		"zero-count block": func(es []b2IndexEntry) []b2IndexEntry {
			es[3].count = 0
			es[3].colSizes[b2ColFlags] = 0
			return es
		},
	}
	for name, mutate := range cases {
		if err := decodeB2All(reindexB2(t, enc, mutate)); err == nil {
			t.Errorf("%s: decoded cleanly", name)
		}
	}
	// The rebuild helper itself must reproduce a valid file unmutated.
	if err := decodeB2All(reindexB2(t, enc, func(es []b2IndexEntry) []b2IndexEntry { return es })); err != nil {
		t.Fatalf("identity reindex broke the fixture: %v", err)
	}
}

func TestB2MalformedInput(t *testing.T) {
	cases := map[string]string{
		"truncated header":  "#filemig-trace b2 epo",
		"non-numeric epoch": "#filemig-trace b2 epoch=zzz\n",
		"bare header":       "#filemig-trace b2 epoch=0\n", // a started file must close with an index
		"wrong format tag":  "#filemig-trace b9 epoch=0\n",
	}
	for name, in := range cases {
		if _, err := Collect(NewB2Reader(bytes.NewReader([]byte(in)))); err == nil {
			t.Errorf("%s: decoded cleanly", name)
		}
	}
}

func TestB2ParallelErrorIsDeterministic(t *testing.T) {
	// Corrupt an early block's body; whatever worker order, the stream
	// must report that block's CRC failure (after the records of the
	// blocks before it), at every worker count.
	_, enc := b2Fixture(t, 40, 4)
	f0, err := OpenB2File(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in block 2's body: entry offsets are private, so find
	// it by decoding geometry from the clean file.
	d := f0.NewBlockDecoder()
	if _, err := d.Decode(2); err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), enc...)
	mut[f0.entries[2].offset+5] ^= 0x10
	for _, workers := range []int{1, 2, 8} {
		f, err := OpenB2File(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			t.Fatal(err)
		}
		s := f.Stream(workers)
		n := 0
		var gotErr error
		for {
			_, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				gotErr = err
				break
			}
			n++
		}
		if gotErr == nil {
			t.Fatalf("workers=%d: corrupt block decoded cleanly", workers)
		}
		if n != 8 { // blocks 0 and 1 hold 4 records each
			t.Fatalf("workers=%d: %d records before the error, want 8", workers, n)
		}
	}
}

func TestB2OpenStreamSniff(t *testing.T) {
	recs, enc := b2Fixture(t, 12, 4)
	s, err := OpenStream(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRecords(t, got, recs, "sniffed")
	if _, err := ParseFormat("b2"); err != nil {
		t.Fatal(err)
	}
	if FormatB2.String() != "b2" {
		t.Fatalf("FormatB2.String() = %q", FormatB2.String())
	}
}
