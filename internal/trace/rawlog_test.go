package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

func TestRawLogRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var raw bytes.Buffer
	if err := WriteRawLog(&raw, recs); err != nil {
		t.Fatalf("WriteRawLog: %v", err)
	}
	got, skipped, err := ConvertRawLog(&raw)
	if err != nil {
		t.Fatalf("ConvertRawLog: %v", err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i]
		if !got[i].Start.Equal(want.Start) {
			t.Errorf("rec %d start = %v, want %v", i, got[i].Start, want.Start)
		}
		if got[i].Op != want.Op || got[i].Device != want.Device || got[i].Err != want.Err {
			t.Errorf("rec %d: got %+v want %+v", i, got[i], want)
		}
		if got[i].Size != want.Size || got[i].UserID != want.UserID {
			t.Errorf("rec %d payload: got %+v want %+v", i, got[i], want)
		}
		if want.Err == ErrNone {
			if got[i].Startup != want.Startup || got[i].Transfer != want.Transfer {
				t.Errorf("rec %d durations: got %v/%v want %v/%v",
					i, got[i].Startup, got[i].Transfer, want.Startup, want.Transfer)
			}
			if got[i].Compressed != want.Compressed {
				t.Errorf("rec %d compressed = %v", i, got[i].Compressed)
			}
		}
	}
}

func TestRawLogIsVerbose(t *testing.T) {
	recs := sampleRecords()
	// Add a *successful* manual-tape read: ErrNoFile requests never reach
	// the mount stage, so only this record produces an operator MOUNT.
	recs = append(recs, Record{
		Start: recs[len(recs)-1].Start.Add(time.Minute), Op: Read,
		Device:  device.ClassManualTape,
		Startup: 290 * time.Second, Transfer: 30 * time.Second,
		Size:    units.Bytes(47 * units.MB),
		MSSPath: "/mss/u3/old", LocalPath: "/tmp/old", UserID: 303,
	})
	var raw bytes.Buffer
	if err := WriteRawLog(&raw, recs); err != nil {
		t.Fatal(err)
	}
	out := raw.String()
	// The raw log carries the redundancy the paper complains about:
	// labelled fields, human-readable dates, user *name* and project in
	// addition to uid.
	for _, want := range []string{"user=", "uid=", "project=", "date=", "MOUNT", "TRANSFER"} {
		if !strings.Contains(out, want) {
			t.Errorf("raw log missing %q", want)
		}
	}
	// Tape requests get MOUNT lines; disk requests must not.
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, "MOUNT") && strings.Contains(l, "by=operator") {
			return // manual mount present — good
		}
	}
	t.Error("expected an operator MOUNT line for the manual-tape record")
}

func TestRawLogCompression(t *testing.T) {
	// §4.1: processing cut 50 MB/month of log to 10-11 MB/month — roughly
	// a factor of 4.5-5. Our emulation should shrink by at least 2.5x
	// (paths dominate and cannot shrink, per the paper).
	base := Epoch
	var recs []Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, Record{
			Start: base.Add(time.Duration(i*11) * time.Second), Op: Read,
			Device:  device.ClassSiloTape,
			Startup: 85 * time.Second, Transfer: 40 * time.Second,
			Size:      units.Bytes(80 * units.MB),
			MSSPath:   "/mss/climate/run42/day" + itoa(i%365),
			LocalPath: "/usr/tmp/ccm" + itoa(i%100), UserID: uint32(i % 50),
		})
	}
	var raw, compact bytes.Buffer
	if err := WriteRawLog(&raw, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(&compact, recs); err != nil {
		t.Fatal(err)
	}
	ratio := float64(raw.Len()) / float64(compact.Len())
	if ratio < 2.5 {
		t.Errorf("raw/compact size ratio = %.2f, want >= 2.5 (paper: ~4.5-5x)", ratio)
	}
	t.Logf("raw %d bytes, compact %d bytes, ratio %.2f", raw.Len(), compact.Len(), ratio)
}

func TestConvertRawLogSkipsGarbage(t *testing.T) {
	in := "not a log line\nMSCP: gibberish without seq\nMSCP: seq=zz op=read\n"
	recs, skipped, err := ConvertRawLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("recs = %v, want none", recs)
	}
	if skipped == 0 {
		t.Error("garbage lines should be counted as skipped")
	}
}

func TestConvertRawLogIncompleteRequest(t *testing.T) {
	// A MOVER line whose MSCP REQUEST line is missing cannot be attributed.
	in := "MOVER: seq=7 COMPLETE transfer_msec=100 status=ok\n"
	recs, skipped, err := ConvertRawLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || skipped != 1 {
		t.Errorf("recs=%d skipped=%d, want 0/1", len(recs), skipped)
	}
}

func TestParseRawFieldsQuoted(t *testing.T) {
	m, ok := parseRawFields(`MSCP: seq=3 date="Mon Oct 1 00:00:10 1990" op=read`)
	if !ok {
		t.Fatal("parse failed")
	}
	if m["seq"] != "3" || m["op"] != "read" {
		t.Errorf("fields = %v", m)
	}
	if m["date"] != "Mon Oct 1 00:00:10 1990" {
		t.Errorf("date = %q", m["date"])
	}
	if _, ok := parseRawFields("OTHER: x=1"); ok {
		t.Error("non-MSS prefix should fail")
	}
	if _, ok := parseRawFields(`MSCP: date="unterminated`); ok {
		t.Error("unterminated quote should fail")
	}
}
