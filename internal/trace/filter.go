package trace

import (
	"sort"
	"time"

	"filemig/internal/device"
)

// Stream utilities: the small toolbox the paper's authors needed to slice
// 24 months of trace into analysable views — time windows, device or
// operation subsets, per-user extracts, and merges of traces captured in
// parallel (e.g. per bitfile mover).

// Predicate selects records.
type Predicate func(*Record) bool

// Filter returns the records satisfying every predicate, preserving order.
func Filter(recs []Record, preds ...Predicate) []Record {
	out := make([]Record, 0, len(recs))
	for i := range recs {
		ok := true
		for _, p := range preds {
			if !p(&recs[i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, recs[i])
		}
	}
	return out
}

// ByOp selects one transfer direction.
func ByOp(op Op) Predicate {
	return func(r *Record) bool { return r.Op == op }
}

// ByDevice selects one device class.
func ByDevice(c device.Class) Predicate {
	return func(r *Record) bool { return r.Device == c }
}

// ByUser selects one user's requests.
func ByUser(uid uint32) Predicate {
	return func(r *Record) bool { return r.UserID == uid }
}

// OKOnly drops error records, as the paper's analysis does.
func OKOnly() Predicate {
	return func(r *Record) bool { return r.OK() }
}

// Between selects records with from <= Start < to.
func Between(from, to time.Time) Predicate {
	return func(r *Record) bool {
		return !r.Start.Before(from) && r.Start.Before(to)
	}
}

// MinSize selects records moving at least n bytes.
func MinSize(n int64) Predicate {
	return func(r *Record) bool { return int64(r.Size) >= n }
}

// Merge interleaves multiple time-sorted traces into one time-sorted
// trace (stable across inputs: ties keep input order).
func Merge(traces ...[]Record) []Record {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]Record, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		best := -1
		for i, t := range traces {
			if idx[i] >= len(t) {
				continue
			}
			if best < 0 || t[idx[i]].Start.Before(traces[best][idx[best]].Start) {
				best = i
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out
}

// Clip returns the sub-trace within [from, to), assuming recs are sorted.
func Clip(recs []Record, from, to time.Time) []Record {
	lo := sort.Search(len(recs), func(i int) bool { return !recs[i].Start.Before(from) })
	hi := sort.Search(len(recs), func(i int) bool { return !recs[i].Start.Before(to) })
	return recs[lo:hi]
}

// Sample keeps every nth record (n >= 1), a cheap way to downscale a
// trace while roughly preserving its mix.
func Sample(recs []Record, n int) []Record {
	if n <= 1 {
		return append([]Record(nil), recs...)
	}
	out := make([]Record, 0, len(recs)/n+1)
	for i := 0; i < len(recs); i += n {
		out = append(out, recs[i])
	}
	return out
}

// Span reports the first and last start times of a non-empty sorted trace.
func Span(recs []Record) (from, to time.Time, ok bool) {
	if len(recs) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return recs[0].Start, recs[len(recs)-1].Start, true
}
