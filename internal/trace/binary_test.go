package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

func encodeBinary(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAllFormat(&buf, recs, FormatBinary); err != nil {
		t.Fatalf("WriteAllFormat(binary): %v", err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords()
	got, err := ReadAll(bytes.NewReader(encodeBinary(t, recs)))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("binary round trip mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

// TestBinaryMatchesASCII is the transcoding property: both codecs quantise
// identically, so decoding the ASCII and binary encodings of the same
// trace must yield identical records — including traces whose sub-second
// start offsets are truncated by the delta encoding.
func TestBinaryMatchesASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randomRecords(rng, 500)

	var ascii bytes.Buffer
	if err := WriteAllFormat(&ascii, recs, FormatASCII); err != nil {
		t.Fatalf("ascii encode: %v", err)
	}
	fromASCII, err := ReadAll(&ascii)
	if err != nil {
		t.Fatalf("ascii decode: %v", err)
	}
	fromBinary, err := ReadAll(bytes.NewReader(encodeBinary(t, recs)))
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	if len(fromASCII) != len(fromBinary) {
		t.Fatalf("decoded %d ascii vs %d binary records", len(fromASCII), len(fromBinary))
	}
	for i := range fromASCII {
		if !reflect.DeepEqual(fromASCII[i], fromBinary[i]) {
			t.Fatalf("record %d differs between codecs:\nascii  %+v\nbinary %+v",
				i, fromASCII[i], fromBinary[i])
		}
	}
}

// randomRecords builds a valid, time-sorted trace with every flag
// combination exercised, including sub-second jitter that the codecs
// truncate.
func randomRecords(rng *rand.Rand, n int) []Record {
	devs := []device.Class{device.ClassDisk, device.ClassSiloTape,
		device.ClassManualTape, device.ClassOptical}
	errs := []ErrCode{ErrNone, ErrNone, ErrNone, ErrNoFile, ErrMedia, ErrTerminated}
	recs := make([]Record, 0, n)
	at := Epoch.Add(time.Duration(rng.Intn(1000)) * time.Second)
	for i := 0; i < n; i++ {
		at = at.Add(time.Duration(rng.Intn(100000)) * time.Millisecond)
		op := Read
		if rng.Intn(3) == 0 {
			op = Write
		}
		recs = append(recs, Record{
			Start:      at,
			Op:         op,
			Device:     devs[rng.Intn(len(devs))],
			Err:        errs[rng.Intn(len(errs))],
			Compressed: rng.Intn(4) == 0,
			Startup:    time.Duration(rng.Intn(500)) * time.Second,
			Transfer:   time.Duration(rng.Intn(200000)) * time.Millisecond,
			Size:       units.Bytes(rng.Int63n(200e6)),
			MSSPath:    "/mss/u" + string(rune('a'+rng.Intn(26))) + "/f",
			LocalPath:  "/usr/tmp/x",
			UserID:     uint32(rng.Intn(40)),
		})
	}
	return recs
}

func TestBinarySameUserBit(t *testing.T) {
	recs := sampleRecords() // users 101,101,202,202: two same-user transitions
	full := encodeBinary(t, recs)
	// Re-encode with distinct users; the same-user bit saves one uvarint
	// per repeat, so the distinct-user encoding must be strictly larger.
	distinct := append([]Record(nil), recs...)
	for i := range distinct {
		distinct[i].UserID = uint32(1000 + 100*i)
	}
	if d := encodeBinary(t, distinct); len(d) <= len(full) {
		t.Fatalf("distinct-user encoding (%d bytes) not larger than same-user (%d bytes)",
			len(d), len(full))
	}
	got, err := ReadAll(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range recs {
		if got[i].UserID != recs[i].UserID {
			t.Fatalf("record %d uid = %d, want %d", i, got[i].UserID, recs[i].UserID)
		}
	}
}

func TestBinarySmallerThanASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := randomRecords(rng, 2000)
	var ascii bytes.Buffer
	if err := WriteAllFormat(&ascii, recs, FormatASCII); err != nil {
		t.Fatal(err)
	}
	bin := encodeBinary(t, recs)
	if len(bin) >= ascii.Len() {
		t.Fatalf("binary (%d bytes) not smaller than ascii (%d bytes)", len(bin), ascii.Len())
	}
}

// TestBinaryTruncationFailsCleanly cuts a valid binary trace at every
// byte boundary and asserts the reader returns a clean error or a short
// read — never a panic, never fabricated records beyond the cut.
func TestBinaryTruncationFailsCleanly(t *testing.T) {
	recs := sampleRecords()
	full := encodeBinary(t, recs)
	for cut := 0; cut < len(full); cut++ {
		got, err := ReadAll(bytes.NewReader(full[:cut]))
		if err == nil && len(got) >= len(recs) {
			t.Fatalf("cut at %d of %d still decoded %d records with no error",
				cut, len(full), len(got))
		}
		if len(got) > len(recs) {
			t.Fatalf("cut at %d fabricated %d records", cut, len(got))
		}
	}
}

// TestBinaryCorruptionFailsCleanly flips each byte of the payload and
// asserts decoding never panics. (Some flips decode to different but
// structurally valid records; flips that break framing must error.)
func TestBinaryCorruptionFailsCleanly(t *testing.T) {
	recs := sampleRecords()
	full := encodeBinary(t, recs)
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at byte %d panicked: %v", i, r)
				}
			}()
			_, _ = ReadAll(bytes.NewReader(mut))
		}()
	}
}

func TestBinaryRejectsReservedFlagBit(t *testing.T) {
	full := encodeBinary(t, sampleRecords())
	// The first byte after the header line is the first record's flags.
	idx := bytes.IndexByte(full, '\n') + 1
	mut := append([]byte(nil), full...)
	mut[idx] |= binFlagReserved
	if _, err := ReadAll(bytes.NewReader(mut)); err == nil ||
		!strings.Contains(err.Error(), "reserved") {
		t.Fatalf("reserved-bit flags byte not rejected: %v", err)
	}
}

func TestBinaryRejectsHugePathLength(t *testing.T) {
	r := sampleRecords()[0]
	var buf bytes.Buffer
	w := NewBinaryWriterEpoch(&buf, Epoch)
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Overwrite the mss-path length varint (first byte after the fixed
	// numeric fields) with a 5-byte varint encoding ~1 GiB.
	i := bytes.Index(full, []byte(r.MSSPath))
	mut := append([]byte(nil), full[:i-1]...)
	mut = append(mut, 0xff, 0xff, 0xff, 0xff, 0x04)
	mut = append(mut, full[i:]...)
	_, err := ReadAll(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "length") {
		t.Fatalf("huge path length not rejected: %v", err)
	}

	// The writer enforces the same bound, so every record it accepts
	// round-trips.
	long := r
	long.MSSPath = "/" + strings.Repeat("x", maxBinaryPathLen)
	w2 := NewBinaryWriterEpoch(&bytes.Buffer{}, Epoch)
	if err := w2.Write(&long); err == nil {
		t.Fatal("writer accepted a path longer than the decoder allows")
	}
}

// TestBinaryRejectsOverflowingVarints crafts records whose duration
// varints would wrap int64 nanoseconds; decoding must error, not
// produce garbage timestamps.
func TestBinaryRejectsOverflowingVarints(t *testing.T) {
	craft := func(dt, startup uint64) []byte {
		b := []byte("#filemig-trace b1 epoch=654739200\n")
		b = append(b, 0) // flags: read, disk, no error
		b = binary.AppendUvarint(b, dt)
		b = binary.AppendUvarint(b, startup)
		b = binary.AppendUvarint(b, 0) // transfer
		b = binary.AppendUvarint(b, 1) // size
		b = binary.AppendUvarint(b, 7) // uid
		b = binary.AppendUvarint(b, 2)
		b = append(b, "/a"...)
		b = binary.AppendUvarint(b, 2)
		b = append(b, "/b"...)
		return b
	}
	for name, enc := range map[string][]byte{
		"dt=1<<60":      craft(1<<60, 0),
		"startup=1<<56": craft(0, 1<<56),
	} {
		if _, err := ReadAll(bytes.NewReader(enc)); err == nil ||
			!strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s: decode err = %v, want out-of-range error", name, err)
		}
	}
	// Control: the same frame with sane values decodes.
	if got, err := ReadAll(bytes.NewReader(craft(10, 4))); err != nil || len(got) != 1 {
		t.Fatalf("control record failed to decode: %v (%d records)", err, len(got))
	}
}

func TestBinaryWriterRejectsOutOfOrder(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewBinaryWriterEpoch(&buf, recs[1].Start)
	if err := w.Write(&recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&recs[0]); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}

func TestOpenStreamDetectsFormats(t *testing.T) {
	recs := sampleRecords()
	var ascii bytes.Buffer
	if err := WriteAllFormat(&ascii, recs, FormatASCII); err != nil {
		t.Fatal(err)
	}
	for name, enc := range map[string][]byte{
		"ascii":  ascii.Bytes(),
		"binary": encodeBinary(t, recs),
	} {
		s, err := OpenStream(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: OpenStream: %v", name, err)
		}
		got, err := Collect(s)
		if err != nil {
			t.Fatalf("%s: Collect: %v", name, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: got %d records, want %d", name, len(got), len(recs))
		}
	}
}

func TestOpenStreamEmptyAndGarbage(t *testing.T) {
	s, err := OpenStream(bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("empty input: %v", err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v, want io.EOF", err)
	}
	if _, err := OpenStream(strings.NewReader("#filemig-trace q9 epoch=0\n1 2 3")); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := OpenStream(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"ascii": FormatASCII, "v1": FormatASCII, "text": FormatASCII,
		"binary": FormatBinary, "b1": FormatBinary, "bin": FormatBinary,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("json"); err == nil {
		t.Fatal("bad format accepted")
	}
	if FormatASCII.String() != "ascii" || FormatBinary.String() != "binary" {
		t.Fatal("Format.String drifted from flag spelling")
	}
}
