package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzB2RoundTrip is the property both the fuzzer and the seed guard
// check: data either fails to decode, or decodes into records that
// re-encode deterministically — encode(decode(data)) is a fixed point
// of a further decode/encode cycle — and that the seekable parallel
// reader agrees with the sequential one byte for byte.
func fuzzB2RoundTrip(t *testing.T, data []byte) (accepted bool) {
	r := NewB2Reader(bytes.NewReader(data))
	recs, err := Collect(r)
	if err != nil {
		return false // rejected input is fine; panicking or hanging is not
	}
	epoch := r.Epoch()
	var enc1 bytes.Buffer
	w := NewB2WriterEpoch(&enc1, epoch)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("accepted input does not re-encode: record %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs2, err := Collect(NewB2Reader(bytes.NewReader(enc1.Bytes())))
	if err != nil {
		t.Fatalf("re-encoded trace does not decode: %v", err)
	}
	var enc2 bytes.Buffer
	w2 := NewB2WriterEpoch(&enc2, epoch)
	for i := range recs2 {
		if err := w2.Write(&recs2[i]); err != nil {
			t.Fatalf("re-decoded trace does not encode: record %d: %v", i, err)
		}
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
		t.Fatal("encode → decode → encode is not byte-stable")
	}
	if len(data) > 0 {
		f, err := OpenB2File(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("sequentially valid file fails to open seekably: %v", err)
		}
		par, err := Collect(f.Stream(3))
		if err != nil {
			t.Fatalf("sequentially valid file fails parallel decode: %v", err)
		}
		requireSameRecords(t, par, recs, "parallel vs sequential")
	}
	return true
}

// FuzzB2RoundTrip is the robustness gate for the b2 decoder, mirroring
// FuzzSnapshotRoundTrip: arbitrary input must either be rejected with
// an error or decode into records that re-encode byte-stably and read
// identically through both the sequential and the parallel reader.
func FuzzB2RoundTrip(f *testing.F) {
	for _, seed := range b2FuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzB2RoundTrip(t, data)
	})
}

// b2FuzzSeeds loads the committed corpus under testdata/fuzz so the
// seeds ride along in normal test runs too.
func b2FuzzSeeds() [][]byte {
	dir := filepath.Join("testdata", "fuzz", "FuzzB2RoundTrip")
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out [][]byte
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n.Name()))
		if err != nil {
			continue
		}
		if data, ok := parseFuzzCorpusBytes(string(b)); ok {
			out = append(out, data)
		}
	}
	return out
}

// parseFuzzCorpusBytes extracts the single []byte value of a "go test
// fuzz v1" corpus file.
func parseFuzzCorpusBytes(s string) ([]byte, bool) {
	lines := strings.SplitN(s, "\n", 2)
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, false
	}
	v := strings.TrimSpace(lines[1])
	v = strings.TrimSuffix(strings.TrimPrefix(v, "[]byte("), ")")
	q, err := strconv.Unquote(v)
	if err != nil {
		return nil, false
	}
	return []byte(q), true
}

// TestB2FuzzSeedsValid keeps the committed corpus honest: it must
// exist, hold at least one decodable trace and at least one rejected
// input, and every seed must satisfy the fuzz property.
func TestB2FuzzSeedsValid(t *testing.T) {
	seeds := b2FuzzSeeds()
	if len(seeds) < 3 {
		t.Fatalf("committed fuzz corpus holds %d seeds, want at least 3", len(seeds))
	}
	valid, invalid := 0, 0
	for i, s := range seeds {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v", i, r)
				}
			}()
			if fuzzB2RoundTrip(t, s) {
				valid++
			} else {
				invalid++
			}
		}()
	}
	if valid == 0 || invalid == 0 {
		t.Fatalf("corpus must mix accepted and rejected seeds (got %d accepted, %d rejected)", valid, invalid)
	}
}
