package trace

import "strings"

// Path interning: the shared hot-path layer that maps MSS path strings to
// dense integer identifiers. Every per-record consumer of a trace — the
// core analysis arena, the migration access-string builder, the request
// coalescer, the codec readers — used to carry its own throwaway
// map[string]T keyed by path; an Interner replaces all of them with one
// table that hands out dense FileIDs (and derived DirIDs), so downstream
// state lives in flat slices indexed by ID instead of string-keyed maps.

// FileID densely identifies one distinct MSS path within an Interner:
// the first path interned is 0, the next new path 1, and so on. IDs are
// only meaningful relative to the Interner that issued them.
type FileID uint32

// DirID densely identifies one distinct directory within an Interner.
// Directories are numbered in the order their first file is interned,
// which — because a never-seen directory implies a never-seen file — is
// also first-appearance order over the record stream.
type DirID uint32

// Interner assigns dense FileIDs to MSS path strings and derives a DirID
// for each file's directory. The zero value is not ready; use NewInterner.
// An Interner is not safe for concurrent use.
type Interner struct {
	ids   map[string]FileID
	paths []string // FileID -> canonical path string
	dirs  []DirID  // FileID -> directory ID

	dirIDs   map[string]DirID
	dirPaths []string // DirID -> directory path
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]FileID), dirIDs: make(map[string]DirID)}
}

// Intern returns the FileID for path, assigning the next dense ID (and
// deriving the directory) on first sight.
//
//filemig:hotpath
func (in *Interner) Intern(path string) FileID {
	if id, ok := in.ids[path]; ok {
		return id
	}
	return in.add(path)
}

// InternBytes is Intern for a byte-slice key. On a hit — the overwhelming
// steady-state case — it performs no allocation; only a first sighting
// copies the bytes into a new canonical string.
//
//filemig:hotpath
func (in *Interner) InternBytes(path []byte) FileID {
	if id, ok := in.ids[string(path)]; ok { // no-alloc map lookup
		return id
	}
	return in.add(string(path)) //lint:hotalloc-ok first sighting only: the one canonical copy per distinct path
}

// add registers a new path under the next dense FileID.
func (in *Interner) add(path string) FileID {
	id := FileID(len(in.paths))
	in.ids[path] = id
	in.paths = append(in.paths, path)
	in.dirs = append(in.dirs, in.internDir(path))
	return id
}

// internDir returns the DirID for path's directory, registering it on
// first sight.
func (in *Interner) internDir(path string) DirID {
	dir := "/"
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		dir = path[:i]
	}
	if id, ok := in.dirIDs[dir]; ok {
		return id
	}
	id := DirID(len(in.dirPaths))
	in.dirIDs[dir] = id
	in.dirPaths = append(in.dirPaths, dir)
	return id
}

// Canonical returns the interned canonical string for the given path
// bytes: one string allocation per distinct path for the life of the
// Interner, however many records repeat it.
func (in *Interner) Canonical(path []byte) string {
	return in.paths[in.InternBytes(path)]
}

// Path returns the canonical path string for id.
func (in *Interner) Path(id FileID) string { return in.paths[id] }

// Dir returns the directory ID derived for id's path.
func (in *Interner) Dir(id FileID) DirID { return in.dirs[id] }

// DirPath returns the directory path string for a DirID.
func (in *Interner) DirPath(id DirID) string { return in.dirPaths[id] }

// Len reports the number of distinct paths interned.
func (in *Interner) Len() int { return len(in.paths) }

// NumDirs reports the number of distinct directories derived so far.
func (in *Interner) NumDirs() int { return len(in.dirPaths) }

// pathCache is a fixed-size direct-mapped canonical-string cache for
// path fields that have no interned downstream consumer (the codec
// readers' local paths). A repeated path is handed back without
// allocating, like an Interner — but a conflicting path simply evicts
// its slot, so memory stays bounded however many distinct paths a
// stream carries.
type pathCache struct {
	entries [1 << 10]string
}

// canonical returns a string equal to b, reusing the cached copy when
// the slot holds one.
func (c *pathCache) canonical(b []byte) string {
	// FNV-1a over the bytes; any mixing function works, collisions only
	// cost an eviction.
	h := uint32(2166136261)
	for _, x := range b {
		h = (h ^ uint32(x)) * 16777619
	}
	i := h & uint32(len(c.entries)-1)
	if s := c.entries[i]; s == string(b) { // no-alloc comparison
		return s
	}
	s := string(b)
	c.entries[i] = s
	return s
}
