package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"filemig/internal/units"
)

// The shared b2 decode layer: both b2 readers — the sequential stream
// reader in b2reader.go and the seekable parallel reader in b2file.go —
// materialize one whole section body into memory (the frames are small
// and CRC-framed, so there is nothing to gain from streaming inside
// one), verify its checksum, and hand the bytes here. This file decodes
// a block body into records and an index body into validated
// b2IndexEntry rows, returning an error for every malformed input —
// truncation, bit flips the CRC somehow missed, impossible counts,
// out-of-order timestamps — and never panicking or silently skewing.

// byteCursor decodes varint fields from a fully materialized section
// body. Unlike WireReader there is no refilling: the body's end is the
// hard end of every field, so truncation inside a field is always an
// explicit error.
type byteCursor struct {
	b   []byte
	pos int
}

// uvarint decodes one varint field, rejecting truncation, 64-bit
// overflow, and values above max.
func (c *byteCursor) uvarint(field string, max uint64) (uint64, error) {
	v, k := binary.Uvarint(c.b[c.pos:])
	if k <= 0 {
		if k == 0 {
			return 0, fmt.Errorf("%s: truncated varint", field)
		}
		return 0, fmt.Errorf("%s: varint overflows 64 bits", field)
	}
	c.pos += k
	if v > max {
		return 0, fmt.Errorf("%s %d out of range (max %d)", field, v, max)
	}
	return v, nil
}

// svarint decodes one zigzag-encoded signed varint field.
func (c *byteCursor) svarint(field string) (int64, error) {
	u, err := c.uvarint(field, math.MaxUint64)
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// take returns the next n bytes as a view into the body.
func (c *byteCursor) take(field string, n int) ([]byte, error) {
	if n < 0 || n > len(c.b)-c.pos {
		return nil, fmt.Errorf("%s: %d bytes wanted, %d left", field, n, len(c.b)-c.pos)
	}
	b := c.b[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

// rest reports the unconsumed byte count.
func (c *byteCursor) rest() int { return len(c.b) - c.pos }

// b2CRC is the checksum over one section body; it trails every frame.
func b2CRC(body []byte) uint32 { return crc32.Checksum(body, b2CRCTable) }

// b2Block is one decoded block body: its header fields, per-block path
// dictionaries already canonicalised to strings, and the raw column
// byte runs (views into the body buffer).
type b2Block struct {
	count      int
	base, span int64 // first record's start and last-minus-first, seconds since epoch
	mssDict    []string
	localDict  []string
	cols       [b2NumCols][]byte
}

// internFunc canonicalises one path's bytes into a string; the readers
// pass Interner.Canonical for MSS paths and pathCache.canonical for
// local paths so dictionary entries intern once per block, not once per
// record.
type internFunc func([]byte) string

// parseB2Block decodes a verified block body into blk. Dictionary
// entries are validated as wire-legal paths here, so any record
// assembled from the block re-encodes cleanly. blk's dictionary slices
// are reused across calls; the column slices are views into body and
// share its lifetime.
func parseB2Block(body []byte, mss, local internFunc, blk *b2Block) error {
	c := byteCursor{b: body}
	count, err := c.uvarint("block record count", maxB2BlockRecords)
	if err != nil {
		return err
	}
	if count == 0 {
		return fmt.Errorf("block record count must be positive")
	}
	base, err := c.uvarint("block base time", maxWireSeconds)
	if err != nil {
		return err
	}
	span, err := c.uvarint("block time span", maxWireSeconds-base)
	if err != nil {
		return err
	}
	blk.count = int(count)
	blk.base, blk.span = int64(base), int64(span)
	if blk.mssDict, err = parseB2Dict(&c, "mss", count, mss, blk.mssDict[:0]); err != nil {
		return err
	}
	if blk.localDict, err = parseB2Dict(&c, "local", count, local, blk.localDict[:0]); err != nil {
		return err
	}
	// Every record carries two path references, so a non-empty block
	// cannot have an empty dictionary (and the reference columns below
	// bound their values by the dictionary sizes).
	if len(blk.mssDict) == 0 || len(blk.localDict) == 0 {
		return fmt.Errorf("empty path dictionary in a block of %d records", blk.count)
	}
	for col := 0; col < b2NumCols; col++ {
		n, err := c.uvarint("column length", uint64(c.rest()))
		if err != nil {
			return fmt.Errorf("column %d: %v", col, err)
		}
		if blk.cols[col], err = c.take("column bytes", int(n)); err != nil {
			return fmt.Errorf("column %d: %v", col, err)
		}
	}
	if c.rest() != 0 {
		return fmt.Errorf("%d trailing bytes after the last column", c.rest())
	}
	if len(blk.cols[b2ColFlags]) != blk.count {
		return fmt.Errorf("flags column holds %d bytes for %d records",
			len(blk.cols[b2ColFlags]), blk.count)
	}
	return nil
}

// parseB2Dict decodes one per-block path dictionary: an entry count and
// that many length-prefixed paths in first-appearance order. Every
// entry backs at least one record, so the count is bounded by the
// block's record count.
func parseB2Dict(c *byteCursor, which string, maxEntries uint64, canon internFunc, dst []string) ([]string, error) {
	n, err := c.uvarint("dictionary size", maxEntries)
	if err != nil {
		return dst, fmt.Errorf("%s dictionary: %v", which, err)
	}
	for i := uint64(0); i < n; i++ {
		l, err := c.uvarint("path length", maxBinaryPathLen)
		if err != nil {
			return dst, fmt.Errorf("%s dictionary entry %d: %v", which, i, err)
		}
		b, err := c.take("path", int(l))
		if err != nil {
			return dst, fmt.Errorf("%s dictionary entry %d: %v", which, i, err)
		}
		s := canon(b)
		if !validPath(s) {
			return dst, fmt.Errorf("%s dictionary entry %d: bad path %q", which, i, s)
		}
		dst = append(dst, s)
	}
	return dst, nil
}

// decodeB2Columns assembles blk's columns into dst, which must hold
// exactly blk.count records. This is the bulk-decode hot loop: one pass
// of inline varint decoding per column with no per-record dispatch, no
// map traffic (dictionary references index the pre-canonicalised
// slices), and no allocation — the callers own dst and reuse it. Every
// malformed run errors: a first delta that is not zero, deltas
// overshooting the block span, reserved flag bits, references outside
// the dictionary, or a column with leftover or missing bytes.
//
//filemig:hotpath
func decodeB2Columns(blk *b2Block, epoch time.Time, dst []Record) error {
	flags := blk.cols[b2ColFlags]
	dt := byteCursor{b: blk.cols[b2ColDT]}
	startup := byteCursor{b: blk.cols[b2ColStartup]}
	transfer := byteCursor{b: blk.cols[b2ColTransfer]}
	size := byteCursor{b: blk.cols[b2ColSize]}
	uid := byteCursor{b: blk.cols[b2ColUID]}
	mssRef := byteCursor{b: blk.cols[b2ColMSSRef]}
	localRef := byteCursor{b: blk.cols[b2ColLocalRef]}

	sec := blk.base
	prevUID := int64(0)
	for i := range dst {
		r := &dst[i]
		f := flags[i]
		if f&(binFlagSameUser|binFlagReserved) != 0 {
			return fmt.Errorf("record %d: reserved flag bit set (0x%02x)", i, f)
		}
		r.Op = Read
		if f&binFlagWrite != 0 {
			r.Op = Write
		}
		r.Compressed = f&binFlagCompressed != 0
		r.Err = ErrCode(f >> binErrShift & 3)
		r.Device = wireToDev[f>>binDevShift&3]

		d, err := dt.uvarint("start delta", uint64(blk.span-(sec-blk.base)))
		if err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		if i == 0 && d != 0 {
			return fmt.Errorf("record 0: first start delta must be zero, got %d", d)
		}
		sec += int64(d)
		r.Start = epoch.Add(time.Duration(sec) * time.Second)

		v, err := startup.uvarint("startup", maxWireSeconds)
		if err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		r.Startup = time.Duration(v) * time.Second
		if v, err = transfer.uvarint("transfer", maxWireMillis); err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		r.Transfer = time.Duration(v) * time.Millisecond
		if v, err = size.uvarint("size", math.MaxInt64); err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		r.Size = units.Bytes(v)

		du, err := uid.svarint("uid delta")
		if err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		u := prevUID + du
		if u < 0 || u > math.MaxUint32 {
			return fmt.Errorf("record %d: uid %d out of range", i, u)
		}
		prevUID = u
		r.UserID = uint32(u)

		if v, err = mssRef.uvarint("mss path ref", uint64(len(blk.mssDict))-1); err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		r.MSSPath = blk.mssDict[v]
		if v, err = localRef.uvarint("local path ref", uint64(len(blk.localDict))-1); err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		r.LocalPath = blk.localDict[v]
	}
	if sec != blk.base+blk.span {
		return fmt.Errorf("start deltas end %d seconds short of the block span", blk.base+blk.span-sec)
	}
	for col, c := range [...]*byteCursor{&dt, &startup, &transfer, &size, &uid, &mssRef, &localRef} {
		if c.rest() != 0 {
			return fmt.Errorf("column %d: %d trailing bytes after the last record", col+1, c.rest())
		}
	}
	return nil
}

// parseB2IndexBody decodes and validates an index body against the file
// geometry: headerLen is where the first block must start and indexOff
// is where the index frame was found, so the entries must tile the
// bytes between them exactly — contiguous, in order, and with
// non-decreasing block time ranges. wantEpochSec cross-checks the
// CRC-protected index against the plain-ASCII header, catching header
// corruption the frame checksums cannot see.
func parseB2IndexBody(body []byte, wantEpochSec, headerLen, indexOff int64) ([]b2IndexEntry, error) {
	c := byteCursor{b: body}
	epochSec, err := c.svarint("index epoch")
	if err != nil {
		return nil, err
	}
	if epochSec != wantEpochSec {
		return nil, fmt.Errorf("index epoch %d disagrees with header epoch %d", epochSec, wantEpochSec)
	}
	n, err := c.uvarint("index block count", uint64(len(body)))
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("index holds no blocks")
	}
	entries := make([]b2IndexEntry, n)
	nextOff := headerLen
	nextBase := int64(0)
	for i := range entries {
		e := &entries[i]
		if e.offset, err = c.svarintU("block offset", math.MaxInt64); err != nil {
			return nil, fmt.Errorf("index entry %d: %v", i, err)
		}
		if e.frameLen, err = c.svarintU("block frame length", maxB2BlockBytes); err != nil {
			return nil, fmt.Errorf("index entry %d: %v", i, err)
		}
		if e.count, err = c.svarintU("block record count", maxB2BlockRecords); err != nil {
			return nil, fmt.Errorf("index entry %d: %v", i, err)
		}
		if e.base, err = c.svarintU("block base time", int64(maxWireSeconds)); err != nil {
			return nil, fmt.Errorf("index entry %d: %v", i, err)
		}
		if e.span, err = c.svarintU("block time span", int64(maxWireSeconds)-e.base); err != nil {
			return nil, fmt.Errorf("index entry %d: %v", i, err)
		}
		for col := range e.colSizes {
			if e.colSizes[col], err = c.svarintU("column size", maxB2BlockBytes); err != nil {
				return nil, fmt.Errorf("index entry %d column %d: %v", i, col, err)
			}
		}
		switch {
		case e.count == 0:
			return nil, fmt.Errorf("index entry %d: block record count must be positive", i)
		case e.offset != nextOff:
			return nil, fmt.Errorf("index entry %d: block at offset %d, want %d (blocks must tile the file)",
				i, e.offset, nextOff)
		case e.base < nextBase:
			return nil, fmt.Errorf("index entry %d: block base %d before the previous block's end %d",
				i, e.base, nextBase)
		case e.colSizes[b2ColFlags] != e.count:
			return nil, fmt.Errorf("index entry %d: flags column %d bytes for %d records",
				i, e.colSizes[b2ColFlags], e.count)
		}
		nextOff = e.offset + e.frameLen
		nextBase = e.base + e.span
	}
	if nextOff != indexOff {
		return nil, fmt.Errorf("last block ends at %d but the index starts at %d", nextOff, indexOff)
	}
	if c.rest() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after the last index entry", c.rest())
	}
	return entries, nil
}

// svarintU reads a non-negative int64 field stored as a uvarint.
func (c *byteCursor) svarintU(field string, max int64) (int64, error) {
	v, err := c.uvarint(field, uint64(max))
	if err != nil {
		return 0, err
	}
	return int64(v), nil
}

// checkB2Block cross-checks a decoded block against its index row; the
// sequential reader uses it to prove the index describes the blocks it
// actually read, and the seek reader to prove a block matches the row
// that located it.
func checkB2Block(i int, blk *b2Block, e *b2IndexEntry) error {
	if int64(blk.count) != e.count || blk.base != e.base || blk.span != e.span {
		return fmt.Errorf("block %d is %d records over [%d,%d] but the index says %d over [%d,%d]",
			i, blk.count, blk.base, blk.base+blk.span, e.count, e.base, e.base+e.span)
	}
	for col := range blk.cols {
		if int64(len(blk.cols[col])) != e.colSizes[col] {
			return fmt.Errorf("block %d column %d is %d bytes but the index says %d",
				i, col, len(blk.cols[col]), e.colSizes[col])
		}
	}
	return nil
}
