package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"filemig/internal/device"
)

func TestSliceStreamCollect(t *testing.T) {
	recs := sampleRecords()
	got, err := Collect(SliceStream(recs))
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("Collect(SliceStream(recs)) != recs")
	}
	s := SliceStream(nil)
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("empty SliceStream Next = %v, want io.EOF", err)
	}
}

func TestCopyStreamToSink(t *testing.T) {
	recs := sampleRecords()
	for _, f := range []Format{FormatASCII, FormatBinary} {
		var buf bytes.Buffer
		w := NewFormatWriterEpoch(&buf, f, recs[0].Start)
		n, err := Copy(w, SliceStream(recs))
		if err != nil {
			t.Fatalf("%v: Copy: %v", f, err)
		}
		if n != int64(len(recs)) || w.Count() != n {
			t.Fatalf("%v: copied %d (writer count %d), want %d", f, n, w.Count(), len(recs))
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("%v: ReadAll: %v", f, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%v: round trip lost records: %d of %d", f, len(got), len(recs))
		}
	}
}

func TestCopyPropagatesStreamError(t *testing.T) {
	boom := errors.New("boom")
	src := &errStream{recs: sampleRecords()[:2], err: boom}
	var buf bytes.Buffer
	n, err := Copy(NewWriter(&buf), src)
	if !errors.Is(err, boom) {
		t.Fatalf("Copy err = %v, want boom", err)
	}
	if n != 2 {
		t.Fatalf("Copy moved %d records before the error, want 2", n)
	}
}

type errStream struct {
	recs []Record
	i    int
	err  error
}

func (s *errStream) Next() (Record, error) {
	if s.i < len(s.recs) {
		s.i++
		return s.recs[s.i-1], nil
	}
	return Record{}, s.err
}

func TestFilterStream(t *testing.T) {
	recs := sampleRecords()
	got, err := Collect(FilterStream(SliceStream(recs), OKOnly(), ByDevice(device.ClassSiloTape)))
	if err != nil {
		t.Fatal(err)
	}
	want := Filter(recs, OKOnly(), ByDevice(device.ClassSiloTape))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FilterStream disagrees with Filter: %d vs %d records", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("test fixture filtered to nothing")
	}
}

// TestReaderIsStream pins the codec readers to the Stream interface and
// the writers to FlushSink, so the streaming pipeline can hold any of
// them interchangeably.
func TestReaderIsStream(t *testing.T) {
	var _ Stream = (*Reader)(nil)
	var _ Stream = (*BinaryReader)(nil)
	var _ FlushSink = (*Writer)(nil)
	var _ FlushSink = (*BinaryWriter)(nil)
}
