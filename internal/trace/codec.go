package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// The compact ASCII trace format, one line per record:
//
//	#filemig-trace v1 epoch=<unix-seconds>
//	<dt> <src> <dst> <flags> <startup-s> <transfer-ms> <size-bytes> <uid|= > <mss-path> <local-path>
//
// dt is the start time in seconds since the previous record's start time
// (first record: since the epoch) — the delta encoding suggested by
// Samples' Mache and adopted by the paper (§4.2). flags packs the
// direction (R/W), compression (C) and error class (Enofile etc.). A uid
// of "=" marks the same-user flag bit. Fields are whitespace-separated;
// paths therefore may not contain whitespace (Validate enforces this).
//
// The full grammar, and the layout of the binary b1 sibling format
// (binary.go), are specified in docs/trace-format.md. ReadAll and
// OpenStream auto-detect which of the two they are given.

const headerPrefix = "#filemig-trace v1 epoch="

// Writer emits records in the compact format. Records must be written in
// non-decreasing start-time order (the delta encoding demands it).
type Writer struct {
	w         *bufio.Writer
	epoch     time.Time
	headerOut bool
	prevStart time.Time
	prevUID   uint32
	prevSet   bool
	count     int64
}

// NewWriter returns a Writer using the package Epoch.
func NewWriter(w io.Writer) *Writer { return NewWriterEpoch(w, Epoch) }

// NewWriterEpoch returns a Writer with an explicit epoch; records must not
// start before it.
func NewWriterEpoch(w io.Writer, epoch time.Time) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), epoch: epoch, prevStart: epoch}
}

// Count reports the number of records written.
func (w *Writer) Count() int64 { return w.count }

// Write encodes one record.
func (w *Writer) Write(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !w.headerOut {
		if _, err := fmt.Fprintf(w.w, "%s%d\n", headerPrefix, w.epoch.Unix()); err != nil {
			return err
		}
		w.headerOut = true
	}
	dt := int64(r.Start.Sub(w.prevStart) / time.Second)
	if dt < 0 {
		return fmt.Errorf("trace: record at %v out of order (previous %v)", r.Start, w.prevStart)
	}
	flags := encodeFlags(r)
	uid := strconv.FormatUint(uint64(r.UserID), 10)
	if w.prevSet && r.UserID == w.prevUID {
		uid = "="
	}
	_, err := fmt.Fprintf(w.w, "%d %s %s %s %d %d %d %s %s %s\n",
		dt, r.Source(), r.Destination(), flags,
		int64(r.Startup/time.Second), int64(r.Transfer/time.Millisecond),
		int64(r.Size), uid, r.MSSPath, r.LocalPath)
	if err != nil {
		return err
	}
	// Reconstructable state must use the *truncated* start time, or deltas
	// drift from what the reader reconstructs.
	w.prevStart = w.prevStart.Add(time.Duration(dt) * time.Second)
	w.prevUID = r.UserID
	w.prevSet = true
	w.count++
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

func encodeFlags(r *Record) string {
	var b strings.Builder
	if r.Op == Read {
		b.WriteByte('R')
	} else {
		b.WriteByte('W')
	}
	if r.Compressed {
		b.WriteByte('C')
	}
	if r.Err != ErrNone {
		b.WriteByte('E')
		b.WriteString(r.Err.String())
	}
	return b.String()
}

func decodeFlags(s []byte, r *Record) error {
	if len(s) == 0 {
		return fmt.Errorf("trace: empty flags")
	}
	switch s[0] {
	case 'R':
		r.Op = Read
	case 'W':
		r.Op = Write
	default:
		return fmt.Errorf("trace: flags %q must start with R or W", s)
	}
	rest := s[1:]
	if len(rest) > 0 && rest[0] == 'C' {
		r.Compressed = true
		rest = rest[1:]
	}
	if len(rest) == 0 {
		r.Err = ErrNone
		return nil
	}
	if rest[0] != 'E' {
		return fmt.Errorf("trace: bad flags suffix %q", rest)
	}
	name := rest[1:]
	for code := ErrNone + 1; int(code) < len(errNames); code++ {
		if errNames[code] == string(name) {
			r.Err = code
			return nil
		}
	}
	return fmt.Errorf("trace: unknown error code %q", name)
}

// Reader decodes the compact format. It streams: each Next call reads one
// line. Like the binary reader, MSS paths are interned and local paths
// pass through a bounded cache, so a repeated path is decoded without
// allocating; the rest of the line is parsed in place from the
// scanner's byte buffer.
type Reader struct {
	s         *bufio.Scanner
	epoch     time.Time
	prevStart time.Time
	prevUID   uint32
	started   bool
	line      int
	in        *Interner
	local     pathCache
}

// NewReader returns a Reader over r with a private path interner. The
// header line is consumed lazily on the first Next.
func NewReader(r io.Reader) *Reader {
	return NewReaderInterned(r, NewInterner())
}

// NewReaderInterned returns a Reader that canonicalises MSS path fields
// through the given Interner; local paths, which no downstream consumer
// interns, go through a bounded cache instead, so the interner's memory
// tracks distinct MSS paths only.
func NewReaderInterned(r io.Reader, in *Interner) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<20)
	return &Reader{s: s, in: in}
}

// Next decodes the next record. It returns io.EOF when the stream ends.
func (r *Reader) Next() (Record, error) {
	if !r.started {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
		r.line++
		header := r.s.Text()
		if !strings.HasPrefix(header, headerPrefix) {
			return Record{}, fmt.Errorf("trace: missing header, got %q", header)
		}
		sec, err := strconv.ParseInt(strings.TrimPrefix(header, headerPrefix), 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad header epoch: %v", err)
		}
		r.epoch = time.Unix(sec, 0).UTC()
		r.prevStart = r.epoch
		r.started = true
	}
	if !r.s.Scan() {
		if err := r.s.Err(); err != nil {
			return Record{}, err
		}
		return Record{}, io.EOF
	}
	r.line++
	return r.parseLine(r.s.Bytes())
}

// splitFields cuts a line on runs of spaces and tabs into at most
// len(out)+1 fields without allocating; the extra slot detection lets the
// caller reject over-long lines. It returns the field count.
func splitFields(line []byte, out *[10][]byte) int {
	n := 0
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
			j++
		}
		if n == len(out) {
			return n + 1 // too many fields; exact surplus count is irrelevant
		}
		out[n] = line[i:j]
		n++
		i = j
	}
	return n
}

// parseUint parses a non-negative decimal integer from b, rejecting
// empty input, non-digits and values above max.
func parseUint(b []byte, max uint64) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (max-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

func (r *Reader) parseLine(line []byte) (Record, error) {
	var f [10][]byte
	if n := splitFields(line, &f); n != 10 {
		if n > 10 { // splitFields stops counting at the first surplus field
			return Record{}, fmt.Errorf("trace: line %d: more than 10 fields, want 10", r.line)
		}
		return Record{}, fmt.Errorf("trace: line %d: %d fields, want 10", r.line, n)
	}
	var rec Record
	// Duration fields share the binary codec's wire bounds, so a huge
	// delta fails loudly instead of wrapping time.Duration.
	dt, ok := parseUint(f[0], maxWireSeconds)
	if !ok {
		return Record{}, fmt.Errorf("trace: line %d: bad delta %q", r.line, f[0])
	}
	rec.Start = r.prevStart.Add(time.Duration(dt) * time.Second)
	if err := decodeFlags(f[3], &rec); err != nil {
		return Record{}, fmt.Errorf("trace: line %d: %v", r.line, err)
	}
	devName := f[1]
	if rec.Op == Write {
		devName = f[2]
	}
	cls, ok := device.ParseClassBytes(devName)
	if !ok {
		return Record{}, fmt.Errorf("trace: line %d: device: unknown class %q", r.line, devName)
	}
	rec.Device = cls
	startup, ok := parseUint(f[4], maxWireSeconds)
	if !ok {
		return Record{}, fmt.Errorf("trace: line %d: bad startup %q", r.line, f[4])
	}
	rec.Startup = time.Duration(startup) * time.Second
	transfer, ok := parseUint(f[5], maxWireMillis)
	if !ok {
		return Record{}, fmt.Errorf("trace: line %d: bad transfer %q", r.line, f[5])
	}
	rec.Transfer = time.Duration(transfer) * time.Millisecond
	size, ok := parseUint(f[6], math.MaxInt64)
	if !ok {
		return Record{}, fmt.Errorf("trace: line %d: bad size %q", r.line, f[6])
	}
	rec.Size = units.Bytes(size)
	if len(f[7]) == 1 && f[7][0] == '=' {
		rec.UserID = r.prevUID
	} else {
		uid, ok := parseUint(f[7], 1<<32-1)
		if !ok {
			return Record{}, fmt.Errorf("trace: line %d: bad uid %q", r.line, f[7])
		}
		rec.UserID = uint32(uid)
	}
	rec.MSSPath = r.in.Canonical(f[8])
	rec.LocalPath = r.local.canonical(f[9])
	r.prevStart = rec.Start
	r.prevUID = rec.UserID
	return rec, nil
}

// ReadAll decodes every record from r, auto-detecting the wire format
// (ASCII v1 or binary b1) from the header.
func ReadAll(r io.Reader) ([]Record, error) {
	s, err := OpenStream(r)
	if err != nil {
		return nil, err
	}
	return Collect(s)
}

// WriteAll encodes every record to w in the ASCII v1 format and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	return WriteAllFormat(w, recs, FormatASCII)
}
