package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// The compact ASCII trace format, one line per record:
//
//	#filemig-trace v1 epoch=<unix-seconds>
//	<dt> <src> <dst> <flags> <startup-s> <transfer-ms> <size-bytes> <uid|= > <mss-path> <local-path>
//
// dt is the start time in seconds since the previous record's start time
// (first record: since the epoch) — the delta encoding suggested by
// Samples' Mache and adopted by the paper (§4.2). flags packs the
// direction (R/W), compression (C) and error class (Enofile etc.). A uid
// of "=" marks the same-user flag bit. Fields are whitespace-separated;
// paths therefore may not contain whitespace (Validate enforces this).
//
// The full grammar, and the layout of the binary b1 sibling format
// (binary.go), are specified in docs/trace-format.md. ReadAll and
// OpenStream auto-detect which of the two they are given.

const headerPrefix = "#filemig-trace v1 epoch="

// Writer emits records in the compact format. Records must be written in
// non-decreasing start-time order (the delta encoding demands it).
type Writer struct {
	w         *bufio.Writer
	epoch     time.Time
	headerOut bool
	prevStart time.Time
	prevUID   uint32
	prevSet   bool
	count     int64
}

// NewWriter returns a Writer using the package Epoch.
func NewWriter(w io.Writer) *Writer { return NewWriterEpoch(w, Epoch) }

// NewWriterEpoch returns a Writer with an explicit epoch; records must not
// start before it.
func NewWriterEpoch(w io.Writer, epoch time.Time) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), epoch: epoch, prevStart: epoch}
}

// Count reports the number of records written.
func (w *Writer) Count() int64 { return w.count }

// Write encodes one record.
func (w *Writer) Write(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !w.headerOut {
		if _, err := fmt.Fprintf(w.w, "%s%d\n", headerPrefix, w.epoch.Unix()); err != nil {
			return err
		}
		w.headerOut = true
	}
	dt := int64(r.Start.Sub(w.prevStart) / time.Second)
	if dt < 0 {
		return fmt.Errorf("trace: record at %v out of order (previous %v)", r.Start, w.prevStart)
	}
	flags := encodeFlags(r)
	uid := strconv.FormatUint(uint64(r.UserID), 10)
	if w.prevSet && r.UserID == w.prevUID {
		uid = "="
	}
	_, err := fmt.Fprintf(w.w, "%d %s %s %s %d %d %d %s %s %s\n",
		dt, r.Source(), r.Destination(), flags,
		int64(r.Startup/time.Second), int64(r.Transfer/time.Millisecond),
		int64(r.Size), uid, r.MSSPath, r.LocalPath)
	if err != nil {
		return err
	}
	// Reconstructable state must use the *truncated* start time, or deltas
	// drift from what the reader reconstructs.
	w.prevStart = w.prevStart.Add(time.Duration(dt) * time.Second)
	w.prevUID = r.UserID
	w.prevSet = true
	w.count++
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

func encodeFlags(r *Record) string {
	var b strings.Builder
	if r.Op == Read {
		b.WriteByte('R')
	} else {
		b.WriteByte('W')
	}
	if r.Compressed {
		b.WriteByte('C')
	}
	if r.Err != ErrNone {
		b.WriteByte('E')
		b.WriteString(r.Err.String())
	}
	return b.String()
}

func decodeFlags(s string, r *Record) error {
	if s == "" {
		return fmt.Errorf("trace: empty flags")
	}
	switch s[0] {
	case 'R':
		r.Op = Read
	case 'W':
		r.Op = Write
	default:
		return fmt.Errorf("trace: flags %q must start with R or W", s)
	}
	rest := s[1:]
	if strings.HasPrefix(rest, "C") {
		r.Compressed = true
		rest = rest[1:]
	}
	if rest == "" {
		r.Err = ErrNone
		return nil
	}
	if rest[0] != 'E' {
		return fmt.Errorf("trace: bad flags suffix %q", rest)
	}
	name := rest[1:]
	for code, n := range errNames {
		if n == name && code != ErrNone {
			r.Err = code
			return nil
		}
	}
	return fmt.Errorf("trace: unknown error code %q", name)
}

// Reader decodes the compact format. It streams: each Next call reads one
// line.
type Reader struct {
	s         *bufio.Scanner
	epoch     time.Time
	prevStart time.Time
	prevUID   uint32
	started   bool
	line      int
}

// NewReader returns a Reader over r. The header line is consumed lazily on
// the first Next.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<20)
	return &Reader{s: s}
}

// Next decodes the next record. It returns io.EOF when the stream ends.
func (r *Reader) Next() (Record, error) {
	if !r.started {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
		r.line++
		header := r.s.Text()
		if !strings.HasPrefix(header, headerPrefix) {
			return Record{}, fmt.Errorf("trace: missing header, got %q", header)
		}
		sec, err := strconv.ParseInt(strings.TrimPrefix(header, headerPrefix), 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad header epoch: %v", err)
		}
		r.epoch = time.Unix(sec, 0).UTC()
		r.prevStart = r.epoch
		r.started = true
	}
	if !r.s.Scan() {
		if err := r.s.Err(); err != nil {
			return Record{}, err
		}
		return Record{}, io.EOF
	}
	r.line++
	return r.parseLine(r.s.Text())
}

func (r *Reader) parseLine(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) != 10 {
		return Record{}, fmt.Errorf("trace: line %d: %d fields, want 10", r.line, len(f))
	}
	var rec Record
	dt, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil || dt < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad delta %q", r.line, f[0])
	}
	rec.Start = r.prevStart.Add(time.Duration(dt) * time.Second)
	if err := decodeFlags(f[3], &rec); err != nil {
		return Record{}, fmt.Errorf("trace: line %d: %v", r.line, err)
	}
	devName := f[1]
	if rec.Op == Write {
		devName = f[2]
	}
	cls, err := device.ParseClass(devName)
	if err != nil {
		return Record{}, fmt.Errorf("trace: line %d: %v", r.line, err)
	}
	rec.Device = cls
	startup, err := strconv.ParseInt(f[4], 10, 64)
	if err != nil || startup < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad startup %q", r.line, f[4])
	}
	rec.Startup = time.Duration(startup) * time.Second
	transfer, err := strconv.ParseInt(f[5], 10, 64)
	if err != nil || transfer < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad transfer %q", r.line, f[5])
	}
	rec.Transfer = time.Duration(transfer) * time.Millisecond
	size, err := strconv.ParseInt(f[6], 10, 64)
	if err != nil || size < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad size %q", r.line, f[6])
	}
	rec.Size = units.Bytes(size)
	if f[7] == "=" {
		rec.UserID = r.prevUID
	} else {
		uid, err := strconv.ParseUint(f[7], 10, 32)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: bad uid %q", r.line, f[7])
		}
		rec.UserID = uint32(uid)
	}
	rec.MSSPath, rec.LocalPath = f[8], f[9]
	r.prevStart = rec.Start
	r.prevUID = rec.UserID
	return rec, nil
}

// ReadAll decodes every record from r, auto-detecting the wire format
// (ASCII v1 or binary b1) from the header.
func ReadAll(r io.Reader) ([]Record, error) {
	s, err := OpenStream(r)
	if err != nil {
		return nil, err
	}
	return Collect(s)
}

// WriteAll encodes every record to w in the ASCII v1 format and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	return WriteAllFormat(w, recs, FormatASCII)
}
