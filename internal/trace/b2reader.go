package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// B2Reader decodes the columnar b2 format from a forward-only stream.
// It implements Stream by decoding one whole block at a time into an
// internal record buffer and handing records out of it; the buffer,
// the frame-body scratch, and the per-block dictionaries are all
// reused, so steady-state decode allocates only for never-seen paths.
// As it reads, it records each block's actual geometry and, on reaching
// the trailing index, verifies the index describes exactly the blocks
// it decoded and the footer points at the index — so a sequential read
// proves the file is self-consistent end to end.
type B2Reader struct {
	wire    *WireReader
	epoch   time.Time
	started bool
	done    bool

	in         *Interner
	local      pathCache
	mssCanon   internFunc
	localCanon internFunc

	blk  b2Block
	recs []Record
	next int

	body     []byte
	observed []b2IndexEntry
	pos      int64 // bytes consumed: where the next section's tag sits
	header   int64 // header line length including its newline
}

// NewB2Reader returns a B2Reader over r with a private path interner.
// The header line is consumed lazily on the first Next.
func NewB2Reader(r io.Reader) *B2Reader {
	return NewB2ReaderInterned(r, NewInterner())
}

// NewB2ReaderInterned returns a B2Reader that canonicalises MSS path
// fields through the given Interner; local paths go through a bounded
// private cache, as in the b1 reader.
func NewB2ReaderInterned(r io.Reader, in *Interner) *B2Reader {
	b := &B2Reader{wire: NewWireReader(r), in: in}
	b.mssCanon = in.Canonical
	b.localCanon = b.local.canonical
	return b
}

// Epoch returns the epoch parsed from the header; it is the zero time
// until the first Next has consumed the header.
func (r *B2Reader) Epoch() time.Time { return r.epoch }

// Next returns the next record, io.EOF after the verified end of the
// file, and a decoding error for any malformed input.
func (r *B2Reader) Next() (Record, error) {
	for r.next >= len(r.recs) {
		if r.done {
			return Record{}, io.EOF
		}
		if err := r.advance(); err != nil {
			return Record{}, err
		}
	}
	rec := r.recs[r.next]
	r.next++
	return rec, nil
}

// advance consumes the next section of the stream: the header on the
// first call, then one block (refilling the record buffer), or the
// index + footer, which ends the stream.
func (r *B2Reader) advance() error {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return err
		}
		r.started = true
		if r.done { // zero-byte input: the empty trace
			return nil
		}
	}
	tag, err := r.wire.ReadByte()
	if err == io.EOF {
		// A b2 file that got past the header has at least one block and
		// must close with its index and footer.
		return fmt.Errorf("trace: b2: file ends without an index: %w", io.ErrUnexpectedEOF)
	}
	if err != nil {
		return fmt.Errorf("trace: b2: section tag: %v", err)
	}
	switch tag {
	case b2BlockTag:
		if err := r.readBlock(); err != nil {
			return fmt.Errorf("trace: b2: block %d: %w", len(r.observed), err)
		}
		return nil
	case b2IndexTag:
		if err := r.readIndexAndFooter(); err != nil {
			return fmt.Errorf("trace: b2: index: %w", err)
		}
		r.done = true
		return nil
	}
	return fmt.Errorf("trace: b2: unknown section tag 0x%02x", tag)
}

// readHeader parses the one-line ASCII header. A clean zero-byte input
// is io.EOF: the empty trace.
func (r *B2Reader) readHeader() error {
	line, err := r.wire.Line()
	if err == io.EOF {
		r.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("trace: b2 header: %v", err)
	}
	if !strings.HasPrefix(line, b2HeaderPrefix) {
		return fmt.Errorf("trace: missing b2 header, got %q", line)
	}
	sec, err := strconv.ParseInt(strings.TrimPrefix(line, b2HeaderPrefix), 10, 64)
	if err != nil {
		return fmt.Errorf("trace: bad b2 header epoch: %v", err)
	}
	r.epoch = time.Unix(sec, 0).UTC()
	r.header = int64(len(line)) + 1
	r.pos = r.header
	return nil
}

// readFrame consumes one section frame after its tag — length prefix,
// body, CRC — returning the verified body in the reusable scratch.
func (r *B2Reader) readFrame(maxBody uint64) ([]byte, error) {
	n, err := r.wire.Uvarint("section length", maxBody)
	if err != nil {
		return nil, err
	}
	// Presize the scratch for ordinary section sizes so steady-state
	// reads don't regrow it; a huge (possibly corrupt) length still
	// grows incrementally inside AppendN as data actually arrives.
	if uint64(cap(r.body)) < n && n <= 1<<20 {
		r.body = make([]byte, 0, n)
	}
	r.body, err = r.wire.AppendN("section body", r.body[:0], int(n))
	if err != nil {
		return nil, err
	}
	crc, err := r.wire.Fixed("section checksum", 4)
	if err != nil {
		return nil, err
	}
	if got, want := b2CRC(r.body), binary.LittleEndian.Uint32(crc); got != want {
		return nil, fmt.Errorf("checksum mismatch: body sums to %08x, frame says %08x", got, want)
	}
	return r.body, nil
}

// readBlock consumes and decodes one block frame, refilling the record
// buffer and appending the block's observed index row.
func (r *B2Reader) readBlock() error {
	body, err := r.readFrame(maxB2BlockBytes)
	if err != nil {
		return err
	}
	if err := parseB2Block(body, r.mssCanon, r.localCanon, &r.blk); err != nil {
		return err
	}
	if n := len(r.observed); n > 0 {
		if prevEnd := r.observed[n-1].base + r.observed[n-1].span; r.blk.base < prevEnd {
			return fmt.Errorf("block base %d before the previous block's end %d", r.blk.base, prevEnd)
		}
	}
	if cap(r.recs) < r.blk.count {
		r.recs = make([]Record, r.blk.count)
	}
	r.recs = r.recs[:r.blk.count]
	if err := decodeB2Columns(&r.blk, r.epoch, r.recs); err != nil {
		return err
	}
	r.next = 0
	e := b2IndexEntry{
		offset:   r.pos,
		frameLen: int64(frameLen(len(body))),
		count:    int64(r.blk.count),
		base:     r.blk.base,
		span:     r.blk.span,
	}
	for col := range r.blk.cols {
		e.colSizes[col] = int64(len(r.blk.cols[col]))
	}
	r.observed = append(r.observed, e)
	r.pos += e.frameLen
	return nil
}

// readIndexAndFooter consumes the index frame and the footer, verifying
// the index matches the blocks actually decoded, the footer points back
// at the index, and nothing follows.
func (r *B2Reader) readIndexAndFooter() error {
	// r.pos still names the index tag's offset: advance consumed the tag
	// byte but only readBlock moves pos, by whole frames.
	indexOff := r.pos
	body, err := r.readFrame(maxB2IndexBytes)
	if err != nil {
		return err
	}
	entries, err := parseB2IndexBody(body, r.epoch.Unix(), r.header, indexOff)
	if err != nil {
		return err
	}
	if len(entries) != len(r.observed) {
		return fmt.Errorf("index describes %d blocks but the file holds %d", len(entries), len(r.observed))
	}
	for i := range entries {
		if entries[i] != r.observed[i] {
			return fmt.Errorf("index entry %d does not match block %d as read "+
				"(index: offset %d len %d count %d base %d span %d; read: offset %d len %d count %d base %d span %d)",
				i, i,
				entries[i].offset, entries[i].frameLen, entries[i].count, entries[i].base, entries[i].span,
				r.observed[i].offset, r.observed[i].frameLen, r.observed[i].count, r.observed[i].base, r.observed[i].span)
		}
	}
	foot, err := r.wire.Fixed("footer", b2FooterLen)
	if err != nil {
		return err
	}
	if string(foot[8:]) != b2Magic {
		return fmt.Errorf("bad footer magic %q", foot[8:])
	}
	if off := int64(binary.LittleEndian.Uint64(foot[:8])); off != indexOff {
		return fmt.Errorf("footer points at %d but the index is at %d", off, indexOff)
	}
	if err := r.wire.ExpectEOF(); err != nil {
		return fmt.Errorf("after footer: %v", err)
	}
	return nil
}
