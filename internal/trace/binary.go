package trace

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// The compact binary trace format ("#filemig-trace b1"), the
// machine-efficient sibling of the ASCII v1 codec in codec.go. Both carry
// exactly the same information at the same quantisation (delta start
// times in whole seconds, startup in seconds, transfer in milliseconds),
// so a trace can be transcoded between them losslessly. The full wire
// layout is specified in docs/trace-format.md; briefly, after a one-line
// ASCII header each record is
//
//	flags(1 byte) dt startup transfer size [uid] mssPath localPath
//
// with every integer a uvarint and paths length-prefixed. The flags byte
// packs direction, compression, error class, device class and the
// same-user bit — the same flag and delta packing the paper used to
// condense its system logs (§4.2), taken one step further than ASCII
// digits allow.

const binaryHeaderPrefix = "#filemig-trace b1 epoch="

// Flag-byte layout (bit 7 is reserved and must be zero).
const (
	binFlagWrite      = 1 << 0
	binFlagCompressed = 1 << 1
	binErrShift       = 2 // bits 2-3: ErrCode
	binDevShift       = 4 // bits 4-5: device class wire code
	binFlagSameUser   = 1 << 6
	binFlagReserved   = 1 << 7
)

// maxBinaryPathLen bounds the length-prefixed path fields; anything larger
// in the wire stream is treated as corruption rather than allocated.
const maxBinaryPathLen = 1 << 16

// Wire codes for device classes are explicit so the format stays stable
// even if the device.Class enum is ever reordered.
var devToWire = map[device.Class]byte{
	device.ClassDisk:       0,
	device.ClassSiloTape:   1,
	device.ClassManualTape: 2,
	device.ClassOptical:    3,
}

var wireToDev = [4]device.Class{
	device.ClassDisk,
	device.ClassSiloTape,
	device.ClassManualTape,
	device.ClassOptical,
}

// BinaryWriter emits records in the binary b1 format through the shared
// WireWriter. Like the ASCII Writer, records must be written in
// non-decreasing start-time order.
type BinaryWriter struct {
	wire      *WireWriter
	epoch     time.Time
	headerOut bool
	prevStart time.Time
	prevUID   uint32
	prevSet   bool
	count     int64
}

// NewBinaryWriter returns a BinaryWriter using the package Epoch.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return NewBinaryWriterEpoch(w, Epoch) }

// NewBinaryWriterEpoch returns a BinaryWriter with an explicit epoch;
// records must not start before it.
func NewBinaryWriterEpoch(w io.Writer, epoch time.Time) *BinaryWriter {
	return &BinaryWriter{wire: NewWireWriter(w), epoch: epoch, prevStart: epoch}
}

// Count reports the number of records written.
func (w *BinaryWriter) Count() int64 { return w.count }

// Write encodes one record.
func (w *BinaryWriter) Write(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !w.headerOut {
		w.wire.Raw(fmt.Appendf(nil, "%s%d\n", binaryHeaderPrefix, w.epoch.Unix()))
		w.headerOut = true
	}
	dt := int64(r.Start.Sub(w.prevStart) / time.Second)
	if dt < 0 {
		return fmt.Errorf("trace: record at %v out of order (previous %v)", r.Start, w.prevStart)
	}
	devCode, ok := devToWire[r.Device]
	if !ok {
		return fmt.Errorf("trace: device class %v has no binary wire code", r.Device)
	}
	if r.Err < 0 || r.Err > 3 {
		return fmt.Errorf("trace: error code %d does not fit the binary flags byte", int(r.Err))
	}
	if len(r.MSSPath) > maxBinaryPathLen || len(r.LocalPath) > maxBinaryPathLen {
		return fmt.Errorf("trace: path longer than %d bytes cannot be encoded", maxBinaryPathLen)
	}
	var flags byte
	if r.Op == Write {
		flags |= binFlagWrite
	}
	if r.Compressed {
		flags |= binFlagCompressed
	}
	flags |= byte(r.Err) << binErrShift
	flags |= devCode << binDevShift
	sameUser := w.prevSet && r.UserID == w.prevUID
	if sameUser {
		flags |= binFlagSameUser
	}

	w.wire.Byte(flags)
	w.wire.Uvarint(uint64(dt))
	w.wire.Uvarint(uint64(r.Startup / time.Second))
	w.wire.Uvarint(uint64(r.Transfer / time.Millisecond))
	w.wire.Uvarint(uint64(r.Size))
	if !sameUser {
		w.wire.Uvarint(uint64(r.UserID))
	}
	w.wire.String(r.MSSPath)
	w.wire.String(r.LocalPath)
	if err := w.wire.Err(); err != nil {
		return err
	}
	// Like the ASCII writer, track the *truncated* start time so deltas
	// agree with what the reader reconstructs.
	w.prevStart = w.prevStart.Add(time.Duration(dt) * time.Second)
	w.prevUID = r.UserID
	w.prevSet = true
	w.count++
	return nil
}

// Flush flushes buffered output.
func (w *BinaryWriter) Flush() error { return w.wire.Flush() }

// BinaryReader decodes the binary b1 format. It streams: each Next call
// decodes one record. The shared WireReader owns the buffer: varints
// decode inline from the buffered window and path fields are interned
// straight out of it, so each distinct path is allocated once and every
// later record carrying it reuses the canonical string — steady-state
// decode moves no memory and allocates nothing per record.
type BinaryReader struct {
	wire      *WireReader
	prevStart time.Time
	prevUID   uint32
	started   bool
	rec       int64
	in        *Interner
	local     pathCache // bounded cache for local paths (no interned consumer)
}

// NewBinaryReader returns a BinaryReader over r with a private path
// interner. The header line is consumed lazily on the first Next.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return NewBinaryReaderInterned(r, NewInterner())
}

// NewBinaryReaderInterned returns a BinaryReader that canonicalises MSS
// path fields through the given Interner, letting several readers — or
// a reader and downstream analysis state — share one string table.
// Local paths, which no downstream consumer interns, go through a
// bounded cache instead, so the interner's memory tracks distinct MSS
// paths only.
func NewBinaryReaderInterned(r io.Reader, in *Interner) *BinaryReader {
	return &BinaryReader{wire: NewWireReader(r), in: in}
}

// Next decodes the next record. It returns io.EOF when the stream ends
// cleanly and io.ErrUnexpectedEOF (wrapped) when it ends mid-record.
// Decode errors name both the record index and the byte offset the
// record begins at, so corruption in a long stream is diagnosable
// without bisecting the file.
func (r *BinaryReader) Next() (Record, error) {
	if !r.started {
		line, err := r.wire.Line()
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, fmt.Errorf("trace: binary header: %v", err)
		}
		if !strings.HasPrefix(line, binaryHeaderPrefix) {
			return Record{}, fmt.Errorf("trace: missing binary header, got %q", line)
		}
		sec, err := strconv.ParseInt(strings.TrimPrefix(line, binaryHeaderPrefix), 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad binary header epoch: %v", err)
		}
		r.prevStart = time.Unix(sec, 0).UTC()
		r.started = true
	}
	off := r.wire.Offset()
	flags, err := r.wire.ReadByte()
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d at byte offset %d: %v", r.rec+1, off, err)
	}
	rec, err := r.decodeBody(flags)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d at byte offset %d: %w", r.rec+1, off, err)
	}
	r.rec++
	return rec, nil
}

// decodeBody decodes everything after the flags byte. All errors are
// returned, never panicked, so truncated or corrupt input fails cleanly.
//
//filemig:hotpath
func (r *BinaryReader) decodeBody(flags byte) (Record, error) {
	var rec Record
	if flags&binFlagReserved != 0 {
		return rec, fmt.Errorf("reserved flag bit set (0x%02x)", flags)
	}
	if flags&binFlagWrite != 0 {
		rec.Op = Write
	}
	rec.Compressed = flags&binFlagCompressed != 0
	rec.Err = ErrCode(flags >> binErrShift & 3)
	rec.Device = wireToDev[flags>>binDevShift&3]

	dt, err := r.uvarint("start delta", maxWireSeconds)
	if err != nil {
		return rec, err
	}
	rec.Start = r.prevStart.Add(time.Duration(dt) * time.Second)
	startup, err := r.uvarint("startup", maxWireSeconds)
	if err != nil {
		return rec, err
	}
	rec.Startup = time.Duration(startup) * time.Second
	transfer, err := r.uvarint("transfer", maxWireMillis)
	if err != nil {
		return rec, err
	}
	rec.Transfer = time.Duration(transfer) * time.Millisecond
	size, err := r.uvarint("size", math.MaxInt64)
	if err != nil {
		return rec, err
	}
	rec.Size = units.Bytes(size)
	if flags&binFlagSameUser != 0 {
		rec.UserID = r.prevUID
	} else {
		uid, err := r.uvarint("uid", 1<<32-1)
		if err != nil {
			return rec, err
		}
		rec.UserID = uint32(uid)
	}
	mss, err := r.pathBytes("mss path", "mss path length")
	if err != nil {
		return rec, err
	}
	rec.MSSPath = r.in.Canonical(mss)
	local, err := r.pathBytes("local path", "local path length")
	if err != nil {
		return rec, err
	}
	rec.LocalPath = r.local.canonical(local)
	r.prevStart = rec.Start
	r.prevUID = rec.UserID
	return rec, nil
}

// Wire-field bounds: durations must survive conversion to int64
// nanoseconds without wrapping, so corrupt varints fail loudly instead
// of decoding to garbage timestamps.
const (
	maxWireSeconds = uint64(math.MaxInt64 / int64(time.Second))
	maxWireMillis  = uint64(math.MaxInt64 / int64(time.Millisecond))
)

// uvarint reads one varint field through the shared wire reader.
func (r *BinaryReader) uvarint(field string, max uint64) (uint64, error) {
	return r.wire.Uvarint(field, max)
}

// pathBytes reads one length-prefixed path field, returning a view the
// caller must canonicalise before the next read (WireReader.Bytes
// semantics), and rejecting the empty path b1 never emits.
func (r *BinaryReader) pathBytes(field, lenField string) ([]byte, error) {
	b, err := r.wire.Bytes(field, lenField, maxBinaryPathLen)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("%s length must be positive", field)
	}
	return b, nil
}
