package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// The compact binary trace format ("#filemig-trace b1"), the
// machine-efficient sibling of the ASCII v1 codec in codec.go. Both carry
// exactly the same information at the same quantisation (delta start
// times in whole seconds, startup in seconds, transfer in milliseconds),
// so a trace can be transcoded between them losslessly. The full wire
// layout is specified in docs/trace-format.md; briefly, after a one-line
// ASCII header each record is
//
//	flags(1 byte) dt startup transfer size [uid] mssPath localPath
//
// with every integer a uvarint and paths length-prefixed. The flags byte
// packs direction, compression, error class, device class and the
// same-user bit — the same flag and delta packing the paper used to
// condense its system logs (§4.2), taken one step further than ASCII
// digits allow.

const binaryHeaderPrefix = "#filemig-trace b1 epoch="

// Flag-byte layout (bit 7 is reserved and must be zero).
const (
	binFlagWrite      = 1 << 0
	binFlagCompressed = 1 << 1
	binErrShift       = 2 // bits 2-3: ErrCode
	binDevShift       = 4 // bits 4-5: device class wire code
	binFlagSameUser   = 1 << 6
	binFlagReserved   = 1 << 7
)

// maxBinaryPathLen bounds the length-prefixed path fields; anything larger
// in the wire stream is treated as corruption rather than allocated.
const maxBinaryPathLen = 1 << 16

// Wire codes for device classes are explicit so the format stays stable
// even if the device.Class enum is ever reordered.
var devToWire = map[device.Class]byte{
	device.ClassDisk:       0,
	device.ClassSiloTape:   1,
	device.ClassManualTape: 2,
	device.ClassOptical:    3,
}

var wireToDev = [4]device.Class{
	device.ClassDisk,
	device.ClassSiloTape,
	device.ClassManualTape,
	device.ClassOptical,
}

// BinaryWriter emits records in the binary b1 format. Like the ASCII
// Writer, records must be written in non-decreasing start-time order.
type BinaryWriter struct {
	w         *bufio.Writer
	epoch     time.Time
	headerOut bool
	prevStart time.Time
	prevUID   uint32
	prevSet   bool
	count     int64
	scratch   []byte
}

// NewBinaryWriter returns a BinaryWriter using the package Epoch.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return NewBinaryWriterEpoch(w, Epoch) }

// NewBinaryWriterEpoch returns a BinaryWriter with an explicit epoch;
// records must not start before it.
func NewBinaryWriterEpoch(w io.Writer, epoch time.Time) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16), epoch: epoch, prevStart: epoch}
}

// Count reports the number of records written.
func (w *BinaryWriter) Count() int64 { return w.count }

// Write encodes one record.
func (w *BinaryWriter) Write(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !w.headerOut {
		if _, err := fmt.Fprintf(w.w, "%s%d\n", binaryHeaderPrefix, w.epoch.Unix()); err != nil {
			return err
		}
		w.headerOut = true
	}
	dt := int64(r.Start.Sub(w.prevStart) / time.Second)
	if dt < 0 {
		return fmt.Errorf("trace: record at %v out of order (previous %v)", r.Start, w.prevStart)
	}
	devCode, ok := devToWire[r.Device]
	if !ok {
		return fmt.Errorf("trace: device class %v has no binary wire code", r.Device)
	}
	if r.Err < 0 || r.Err > 3 {
		return fmt.Errorf("trace: error code %d does not fit the binary flags byte", int(r.Err))
	}
	if len(r.MSSPath) > maxBinaryPathLen || len(r.LocalPath) > maxBinaryPathLen {
		return fmt.Errorf("trace: path longer than %d bytes cannot be encoded", maxBinaryPathLen)
	}
	var flags byte
	if r.Op == Write {
		flags |= binFlagWrite
	}
	if r.Compressed {
		flags |= binFlagCompressed
	}
	flags |= byte(r.Err) << binErrShift
	flags |= devCode << binDevShift
	sameUser := w.prevSet && r.UserID == w.prevUID
	if sameUser {
		flags |= binFlagSameUser
	}

	b := w.scratch[:0]
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(dt))
	b = binary.AppendUvarint(b, uint64(r.Startup/time.Second))
	b = binary.AppendUvarint(b, uint64(r.Transfer/time.Millisecond))
	b = binary.AppendUvarint(b, uint64(r.Size))
	if !sameUser {
		b = binary.AppendUvarint(b, uint64(r.UserID))
	}
	b = binary.AppendUvarint(b, uint64(len(r.MSSPath)))
	b = append(b, r.MSSPath...)
	b = binary.AppendUvarint(b, uint64(len(r.LocalPath)))
	b = append(b, r.LocalPath...)
	w.scratch = b[:0]
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	// Like the ASCII writer, track the *truncated* start time so deltas
	// agree with what the reader reconstructs.
	w.prevStart = w.prevStart.Add(time.Duration(dt) * time.Second)
	w.prevUID = r.UserID
	w.prevSet = true
	w.count++
	return nil
}

// Flush flushes buffered output.
func (w *BinaryWriter) Flush() error { return w.w.Flush() }

// BinaryReader decodes the binary b1 format. It streams: each Next call
// decodes one record.
type BinaryReader struct {
	r         *bufio.Reader
	prevStart time.Time
	prevUID   uint32
	started   bool
	rec       int64
}

// NewBinaryReader returns a BinaryReader over r. The header line is
// consumed lazily on the first Next.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next record. It returns io.EOF when the stream ends
// cleanly and io.ErrUnexpectedEOF (wrapped) when it ends mid-record.
func (r *BinaryReader) Next() (Record, error) {
	if !r.started {
		line, err := r.r.ReadString('\n')
		if err == io.EOF && line == "" {
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, fmt.Errorf("trace: binary header: %v", err)
		}
		line = strings.TrimSuffix(line, "\n")
		if !strings.HasPrefix(line, binaryHeaderPrefix) {
			return Record{}, fmt.Errorf("trace: missing binary header, got %q", line)
		}
		sec, err := strconv.ParseInt(strings.TrimPrefix(line, binaryHeaderPrefix), 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad binary header epoch: %v", err)
		}
		r.prevStart = time.Unix(sec, 0).UTC()
		r.started = true
	}
	flags, err := r.r.ReadByte()
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d: %v", r.rec+1, err)
	}
	rec, err := r.decodeBody(flags)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d: %w", r.rec+1, err)
	}
	r.rec++
	return rec, nil
}

// decodeBody decodes everything after the flags byte. All errors are
// returned, never panicked, so truncated or corrupt input fails cleanly.
func (r *BinaryReader) decodeBody(flags byte) (Record, error) {
	var rec Record
	if flags&binFlagReserved != 0 {
		return rec, fmt.Errorf("reserved flag bit set (0x%02x)", flags)
	}
	if flags&binFlagWrite != 0 {
		rec.Op = Write
	}
	rec.Compressed = flags&binFlagCompressed != 0
	rec.Err = ErrCode(flags >> binErrShift & 3)
	rec.Device = wireToDev[flags>>binDevShift&3]

	dt, err := r.uvarint("start delta", maxWireSeconds)
	if err != nil {
		return rec, err
	}
	rec.Start = r.prevStart.Add(time.Duration(dt) * time.Second)
	startup, err := r.uvarint("startup", maxWireSeconds)
	if err != nil {
		return rec, err
	}
	rec.Startup = time.Duration(startup) * time.Second
	transfer, err := r.uvarint("transfer", maxWireMillis)
	if err != nil {
		return rec, err
	}
	rec.Transfer = time.Duration(transfer) * time.Millisecond
	size, err := r.uvarint("size", math.MaxInt64)
	if err != nil {
		return rec, err
	}
	rec.Size = units.Bytes(size)
	if flags&binFlagSameUser != 0 {
		rec.UserID = r.prevUID
	} else {
		uid, err := r.uvarint("uid", 1<<32-1)
		if err != nil {
			return rec, err
		}
		rec.UserID = uint32(uid)
	}
	if rec.MSSPath, err = r.path("mss path"); err != nil {
		return rec, err
	}
	if rec.LocalPath, err = r.path("local path"); err != nil {
		return rec, err
	}
	r.prevStart = rec.Start
	r.prevUID = rec.UserID
	return rec, nil
}

// Wire-field bounds: durations must survive conversion to int64
// nanoseconds without wrapping, so corrupt varints fail loudly instead
// of decoding to garbage timestamps.
const (
	maxWireSeconds = uint64(math.MaxInt64 / int64(time.Second))
	maxWireMillis  = uint64(math.MaxInt64 / int64(time.Millisecond))
)

// uvarint reads one varint field, converting a mid-record EOF into
// io.ErrUnexpectedEOF and rejecting values above max.
func (r *BinaryReader) uvarint(field string, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return 0, fmt.Errorf("%s: %w", field, io.ErrUnexpectedEOF)
	}
	if err != nil {
		return 0, fmt.Errorf("%s: %w", field, err)
	}
	if v > max {
		return 0, fmt.Errorf("%s %d out of range (max %d)", field, v, max)
	}
	return v, nil
}

// path reads one length-prefixed path field.
func (r *BinaryReader) path(field string) (string, error) {
	n, err := r.uvarint(field+" length", maxBinaryPathLen)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("%s length must be positive", field)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return "", fmt.Errorf("%s: %w", field, io.ErrUnexpectedEOF)
		}
		return "", fmt.Errorf("%s: %w", field, err)
	}
	return string(buf), nil
}
