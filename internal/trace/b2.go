package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// The columnar block trace format ("#filemig-trace b2"), the bulk-decode
// sibling of the record-at-a-time b1 codec in binary.go. A b2 file is a
// one-line ASCII header, a sequence of self-contained CRC-framed blocks,
// a trailing block index (per-block record count, min/max timestamp,
// byte offset and length, per-column sizes), and a fixed 12-byte footer
// locating the index. Within a block every record field lives in its own
// column of delta+varint runs, and paths go through a per-block
// dictionary, so a block decodes with a handful of tight column loops
// instead of per-record field dispatch — and, because blocks are
// independent and the index describes them without decoding, a reader
// over an io.ReaderAt can seek straight to any block and decode blocks
// in parallel. Quantisation is identical to v1/b1 (start deltas in whole
// seconds, startup in seconds, transfer in milliseconds), so the three
// formats transcode losslessly. The full wire layout is specified in
// docs/trace-format.md.

// b2HeaderPrefix opens a b2 file; the epoch that follows anchors every
// block's timestamps.
const b2HeaderPrefix = "#filemig-trace b2 epoch="

// Section framing: each section after the header is a tag byte, a
// uvarint body length, the body, and a CRC-32C of the body.
const (
	b2BlockTag = 0x01 // one columnar record block
	b2IndexTag = 0x02 // the trailing block index
)

// b2Footer is the fixed 12-byte file trailer: the byte offset of the
// index section as a little-endian uint64, then the b2Magic. Seekable
// readers locate the index from here without scanning the file.
const (
	b2FooterLen = 12
	b2Magic     = "b2ix"
)

// b2NumCols is the number of per-record columns in a block, in wire
// order: flags, Δstart, startup, transfer, size, Δuid, mss-path ref,
// local-path ref.
const b2NumCols = 8

// Column indexes into a block's column table.
const (
	b2ColFlags = iota
	b2ColDT
	b2ColStartup
	b2ColTransfer
	b2ColSize
	b2ColUID
	b2ColMSSRef
	b2ColLocalRef
)

// DefaultB2BlockRecords is the writer's records-per-block target when
// none is given: large enough that per-block overhead (dictionary,
// framing, index entry) amortizes to noise, small enough that a few
// blocks exist even in modest traces and parallel decode has work to
// scatter.
const DefaultB2BlockRecords = 4096

// Wire-format hard limits, enforced by both ends so corrupt input fails
// loudly instead of provoking huge allocations.
const (
	maxB2BlockRecords = 1 << 20 // records in one block
	maxB2BlockBytes   = 1 << 26 // bytes in one block body
	maxB2IndexBytes   = 1 << 26 // bytes in the index body
)

// b2CRCTable is the CRC-32C (Castagnoli) table shared by both ends;
// every section body is checksummed, so any single corrupted bit inside
// a section is detected rather than decoded into skewed records.
var b2CRCTable = crc32.MakeTable(crc32.Castagnoli)

// b2IndexEntry is one block's row in the trailing index: where the
// block's frame lives, how many records it holds, its time span in
// whole seconds since the epoch, and each column's encoded size.
type b2IndexEntry struct {
	offset   int64 // byte offset of the block's tag from the file start
	frameLen int64 // whole frame: tag + length prefix + body + CRC
	count    int64 // records in the block (>= 1)
	base     int64 // first record's start, seconds since the epoch
	span     int64 // last record's start minus base, seconds
	colSizes [b2NumCols]int64
}

// B2Writer encodes records into the columnar b2 format. Records must be
// written in non-decreasing start-time order and must not start before
// the epoch. Unlike the other writers, Flush finalizes the file — it
// emits the pending block, the index, and the footer — so it must be
// called exactly once, after the last Write.
type B2Writer struct {
	wire      *WireWriter
	epoch     time.Time
	blockRecs int
	headerOut bool
	finalized bool
	pos       int64 // bytes emitted so far (header + block frames)
	count     int64

	// Pending-block state, reset after each flushBlock.
	n        int   // records in the pending block
	baseSec  int64 // first pending record's start, seconds since epoch
	lastSec  int64 // latest pending record's start
	prevUID  uint32
	cols     [b2NumCols][]byte
	mssIdx   map[string]uint64
	localIdx map[string]uint64
	mssDict  []byte // length-prefixed dictionary entries, appearance order
	locDict  []byte
	nMSS     uint64
	nLocal   uint64

	body  []byte // block/index body assembly scratch
	index []b2IndexEntry
}

// NewB2Writer returns a B2Writer using the package Epoch and the default
// block size.
func NewB2Writer(w io.Writer) *B2Writer { return NewB2WriterEpoch(w, Epoch) }

// NewB2WriterEpoch returns a B2Writer with an explicit epoch; records
// must not start before it.
func NewB2WriterEpoch(w io.Writer, epoch time.Time) *B2Writer {
	return NewB2WriterEpochBlock(w, epoch, DefaultB2BlockRecords)
}

// NewB2WriterEpochBlock returns a B2Writer with an explicit epoch and
// records-per-block target; out-of-range targets fall back to the
// default. Small targets exist for tests that need many blocks from few
// records.
func NewB2WriterEpochBlock(w io.Writer, epoch time.Time, recordsPerBlock int) *B2Writer {
	if recordsPerBlock < 1 || recordsPerBlock > maxB2BlockRecords {
		recordsPerBlock = DefaultB2BlockRecords
	}
	return &B2Writer{
		wire:      NewWireWriter(w),
		epoch:     epoch,
		blockRecs: recordsPerBlock,
		mssIdx:    make(map[string]uint64),
		localIdx:  make(map[string]uint64),
	}
}

// Count reports the number of records written.
func (w *B2Writer) Count() int64 { return w.count }

// Write buffers one record into the pending block, flushing a full
// block to the underlying writer.
func (w *B2Writer) Write(r *Record) error {
	if w.finalized {
		return fmt.Errorf("trace: b2: Write after Flush")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	devCode, ok := devToWire[r.Device]
	if !ok {
		return fmt.Errorf("trace: device class %v has no b2 wire code", r.Device)
	}
	if r.Err < 0 || r.Err > 3 {
		return fmt.Errorf("trace: error code %d does not fit the b2 flags byte", int(r.Err))
	}
	if len(r.MSSPath) > maxBinaryPathLen || len(r.LocalPath) > maxBinaryPathLen {
		return fmt.Errorf("trace: path longer than %d bytes cannot be encoded", maxBinaryPathLen)
	}
	sec := int64(r.Start.Sub(w.epoch) / time.Second)
	if r.Start.Before(w.epoch) {
		return fmt.Errorf("trace: record at %v starts before the b2 epoch %v", r.Start, w.epoch)
	}
	if sec > int64(maxWireSeconds) {
		return fmt.Errorf("trace: record at %v is out of b2 timestamp range", r.Start)
	}
	prev := w.lastSec
	if w.n == 0 {
		prev = sec // the block's first record carries Δt = 0
	}
	if sec < prev || (w.n == 0 && len(w.index) > 0 && sec < w.index[len(w.index)-1].base+w.index[len(w.index)-1].span) {
		return fmt.Errorf("trace: record at %v out of order", r.Start)
	}
	if !w.headerOut {
		w.wire.Raw(fmt.Appendf(nil, "%s%d\n", b2HeaderPrefix, w.epoch.Unix()))
		w.pos = int64(len(b2HeaderPrefix) + uvarintDecimalLen(w.epoch.Unix()) + 1)
		w.headerOut = true
	}
	if w.n == 0 {
		w.baseSec = sec
		w.prevUID = 0
	}

	var flags byte
	if r.Op == Write {
		flags |= binFlagWrite
	}
	if r.Compressed {
		flags |= binFlagCompressed
	}
	flags |= byte(r.Err) << binErrShift
	flags |= devCode << binDevShift
	w.cols[b2ColFlags] = append(w.cols[b2ColFlags], flags)
	w.cols[b2ColDT] = binary.AppendUvarint(w.cols[b2ColDT], uint64(sec-prev))
	w.cols[b2ColStartup] = binary.AppendUvarint(w.cols[b2ColStartup], uint64(r.Startup/time.Second))
	w.cols[b2ColTransfer] = binary.AppendUvarint(w.cols[b2ColTransfer], uint64(r.Transfer/time.Millisecond))
	w.cols[b2ColSize] = binary.AppendUvarint(w.cols[b2ColSize], uint64(r.Size))
	du := int64(r.UserID) - int64(w.prevUID)
	w.cols[b2ColUID] = binary.AppendUvarint(w.cols[b2ColUID], uint64(du<<1)^uint64(du>>63))
	w.prevUID = r.UserID
	w.cols[b2ColMSSRef] = binary.AppendUvarint(w.cols[b2ColMSSRef],
		dictRef(w.mssIdx, r.MSSPath, &w.mssDict, &w.nMSS))
	w.cols[b2ColLocalRef] = binary.AppendUvarint(w.cols[b2ColLocalRef],
		dictRef(w.localIdx, r.LocalPath, &w.locDict, &w.nLocal))

	w.lastSec = sec
	w.n++
	w.count++
	if w.n >= w.blockRecs {
		w.flushBlock()
	}
	return w.wire.Err()
}

// dictRef resolves path to its per-block dictionary reference, appending
// a new length-prefixed entry on first sight.
func dictRef(idx map[string]uint64, path string, dict *[]byte, n *uint64) uint64 {
	if ref, ok := idx[path]; ok {
		return ref
	}
	ref := *n
	idx[path] = ref
	*dict = binary.AppendUvarint(*dict, uint64(len(path)))
	*dict = append(*dict, path...)
	*n = ref + 1
	return ref
}

// flushBlock assembles the pending block body, frames it with its CRC,
// and records its index entry.
func (w *B2Writer) flushBlock() {
	body := w.body[:0]
	body = binary.AppendUvarint(body, uint64(w.n))
	body = binary.AppendUvarint(body, uint64(w.baseSec))
	body = binary.AppendUvarint(body, uint64(w.lastSec-w.baseSec))
	body = binary.AppendUvarint(body, w.nMSS)
	body = append(body, w.mssDict...)
	body = binary.AppendUvarint(body, w.nLocal)
	body = append(body, w.locDict...)
	var sizes [b2NumCols]int64
	for c := 0; c < b2NumCols; c++ {
		sizes[c] = int64(len(w.cols[c]))
		body = binary.AppendUvarint(body, uint64(len(w.cols[c])))
		body = append(body, w.cols[c]...)
	}
	w.body = body

	w.index = append(w.index, b2IndexEntry{
		offset:   w.pos,
		frameLen: int64(frameLen(len(body))),
		count:    int64(w.n),
		base:     w.baseSec,
		span:     w.lastSec - w.baseSec,
		colSizes: sizes,
	})
	w.emitFrame(b2BlockTag, body)

	w.n = 0
	w.nMSS, w.nLocal = 0, 0
	w.mssDict, w.locDict = w.mssDict[:0], w.locDict[:0]
	clear(w.mssIdx)
	clear(w.localIdx)
	for c := range w.cols {
		w.cols[c] = w.cols[c][:0]
	}
}

// emitFrame writes one tagged, length-prefixed, CRC-trailed section and
// advances the writer's position.
func (w *B2Writer) emitFrame(tag byte, body []byte) {
	w.wire.Byte(tag)
	w.wire.Uvarint(uint64(len(body)))
	w.wire.Raw(body)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, b2CRCTable))
	w.wire.Raw(crc[:])
	w.pos += int64(frameLen(len(body)))
}

// Flush finalizes the file: it emits the pending partial block, the
// index section, and the footer, then drains buffered output. A writer
// that never saw a record emits nothing (the empty trace is zero
// bytes). Calling Flush again is a no-op; calling Write again is an
// error.
func (w *B2Writer) Flush() error {
	if w.finalized {
		return w.wire.Flush()
	}
	w.finalized = true
	if !w.headerOut {
		return w.wire.Flush()
	}
	if w.n > 0 {
		w.flushBlock()
	}
	indexOff := w.pos
	w.body = appendB2IndexBody(w.body[:0], w.epoch.Unix(), w.index)
	w.emitFrame(b2IndexTag, w.body)
	var foot [b2FooterLen]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(indexOff))
	copy(foot[8:], b2Magic)
	w.wire.Raw(foot[:])
	return w.wire.Flush()
}

// appendB2IndexBody serializes the index entries: the epoch (cross-check
// against the ASCII header), the block count, then one row per block.
func appendB2IndexBody(dst []byte, epochSec int64, entries []b2IndexEntry) []byte {
	dst = binary.AppendVarint(dst, epochSec)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = binary.AppendUvarint(dst, uint64(e.offset))
		dst = binary.AppendUvarint(dst, uint64(e.frameLen))
		dst = binary.AppendUvarint(dst, uint64(e.count))
		dst = binary.AppendUvarint(dst, uint64(e.base))
		dst = binary.AppendUvarint(dst, uint64(e.span))
		for _, s := range e.colSizes {
			dst = binary.AppendUvarint(dst, uint64(s))
		}
	}
	return dst
}

// frameLen is the on-disk size of a section frame with the given body
// length: tag, uvarint length prefix, body, CRC.
func frameLen(bodyLen int) int {
	return 1 + uvarintLen(uint64(bodyLen)) + bodyLen + 4
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// uvarintDecimalLen is the printed width of v in base 10, including a
// leading minus sign — the header-length bookkeeping for the epoch.
func uvarintDecimalLen(v int64) int {
	n := 1
	if v < 0 {
		n++
		v = -v
	}
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}
