package trace

import "io"

// This file is the streaming layer: records flowing one at a time instead
// of as materialized []Record slices. Everything that produces a trace
// (the workload generator, the codec readers) can be viewed as a Stream,
// and everything that consumes one (the codec writers, the analysis) as a
// Sink, so multi-year traces move through the pipeline in O(1) record
// memory. See docs/trace-format.md for the wire formats behind the codec
// implementations of these interfaces.

// Stream is a pull-based source of trace records in non-decreasing start
// order. Next returns io.EOF after the final record; any other error is a
// decoding or transport failure and ends the stream. Both codec readers
// (*Reader, *BinaryReader) implement Stream.
type Stream interface {
	Next() (Record, error)
}

// Sink consumes trace records one at a time, in non-decreasing start
// order. Both codec writers (*Writer, *BinaryWriter) implement Sink.
type Sink interface {
	Write(r *Record) error
}

// FlushSink is a Sink with buffered output that must be flushed when the
// stream ends; the codec writers implement it.
type FlushSink interface {
	Sink
	Flush() error
	Count() int64
}

// sliceStream adapts an in-memory record slice to the Stream interface.
type sliceStream struct {
	recs []Record
	i    int
}

// SliceStream returns a Stream that yields the given records in order.
// The slice is not copied; it must not be mutated while streaming.
func SliceStream(recs []Record) Stream {
	return &sliceStream{recs: recs}
}

// Next yields the next record of the underlying slice, or io.EOF.
func (s *sliceStream) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// Collect drains a Stream into a slice. It is the inverse of SliceStream
// and the bridge back to the slice-based APIs (the MSS simulator, the
// migration replays).
func Collect(s Stream) ([]Record, error) {
	var out []Record
	for {
		r, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// Copy pumps src into dst until io.EOF, returning the number of records
// moved. It does not flush dst; callers owning a FlushSink flush it when
// the whole stream is done.
func Copy(dst Sink, src Stream) (int64, error) {
	var n int64
	for {
		r, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Write(&r); err != nil {
			return n, err
		}
		n++
	}
}

// FilterStream returns a Stream yielding only the records of src that
// satisfy every predicate — the streaming counterpart of Filter.
func FilterStream(src Stream, preds ...Predicate) Stream {
	return &filterStream{src: src, preds: preds}
}

type filterStream struct {
	src   Stream
	preds []Predicate
}

// Next advances the underlying stream until a record passes every
// predicate.
func (f *filterStream) Next() (Record, error) {
	for {
		r, err := f.src.Next()
		if err != nil {
			return Record{}, err
		}
		ok := true
		for _, p := range f.preds {
			if !p(&r) {
				ok = false
				break
			}
		}
		if ok {
			return r, nil
		}
	}
}
