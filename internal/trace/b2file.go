package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// B2File is the seekable view of a b2 trace: it reads the footer and
// the trailing block index from an io.ReaderAt up front, after which
// every block's byte range, record count, and time range are known
// without decoding anything. Callers plan from that metadata — the
// index-aware shard cutter in internal/core groups whole blocks into
// shards from it — and then decode only the blocks they need, in any
// order, from any number of goroutines. DecodeCount exposes how many
// block decodes actually happened, so tests can prove planning decoded
// nothing and analysis decoded each block exactly once.
type B2File struct {
	r       io.ReaderAt
	epoch   time.Time
	header  int64
	entries []b2IndexEntry
	records int64
	decodes atomic.Int64

	// One interner serves every decoder so canonical path strings are
	// shared across blocks regardless of which goroutine decodes them.
	// It is locked per dictionary entry batch (per block), not per
	// record, so contention and allocation stay independent of worker
	// scheduling.
	mu    sync.Mutex
	in    *Interner
	local pathCache
}

// ErrNotB2 reports that the input does not begin with a b2 header; a
// zero-byte input (the empty trace, legal in every format) also reports
// it, so callers fall back to the sequential sniffing path.
var ErrNotB2 = errors.New("trace: not a b2 file")

// BlockMeta describes one block from the index alone: how many records
// it holds and the start times of its first and last records.
type BlockMeta struct {
	Count int64
	Base  time.Time // first record's start
	End   time.Time // last record's start
}

// OpenB2File reads and validates the header, footer, and block index of
// a b2 file of the given size. It decodes no blocks. Inputs that do not
// start with a b2 header return an error wrapping ErrNotB2; inputs that
// do but are malformed past the header return a corruption error.
func OpenB2File(r io.ReaderAt, size int64) (*B2File, error) {
	f := &B2File{r: r, in: NewInterner()}
	if err := f.readHeader(size); err != nil {
		return nil, err
	}
	if err := f.readIndex(size); err != nil {
		return nil, fmt.Errorf("trace: b2: %w", err)
	}
	for i := range f.entries {
		f.records += f.entries[i].count
	}
	return f, nil
}

// readHeader reads the leading ASCII header line.
func (f *B2File) readHeader(size int64) error {
	buf := make([]byte, 64)
	if size < int64(len(buf)) {
		buf = buf[:size]
	}
	if _, err := io.ReadFull(io.NewSectionReader(f.r, 0, int64(len(buf))), buf); err != nil {
		return fmt.Errorf("%w (cannot read a header: %v)", ErrNotB2, err)
	}
	if len(buf) < len(b2HeaderPrefix) || string(buf[:len(b2HeaderPrefix)]) != b2HeaderPrefix {
		return fmt.Errorf("%w (header is %q)", ErrNotB2, truncForErr(buf))
	}
	rest := buf[len(b2HeaderPrefix):]
	var sec int64
	i := 0
	for ; i < len(rest) && rest[i] >= '0' && rest[i] <= '9'; i++ {
		d := int64(rest[i] - '0')
		if sec > (1<<62)/10 {
			return fmt.Errorf("trace: b2: header epoch out of range")
		}
		sec = sec*10 + d
	}
	if i == 0 || i >= len(rest) || rest[i] != '\n' {
		return fmt.Errorf("trace: b2: malformed header line %q", truncForErr(buf))
	}
	f.epoch = time.Unix(sec, 0).UTC()
	f.header = int64(len(b2HeaderPrefix) + i + 1)
	return nil
}

// truncForErr bounds header bytes quoted in errors.
func truncForErr(b []byte) []byte {
	if len(b) > 32 {
		b = b[:32]
	}
	return b
}

// readIndex locates the index via the footer, verifies the index
// frame's checksum, and parses and validates the entries against the
// file geometry.
func (f *B2File) readIndex(size int64) error {
	var foot [b2FooterLen]byte
	if _, err := f.r.ReadAt(foot[:], size-b2FooterLen); err != nil {
		return fmt.Errorf("footer: %v", err)
	}
	if string(foot[8:]) != b2Magic {
		return fmt.Errorf("bad footer magic %q", foot[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[:8]))
	frameEnd := size - b2FooterLen
	if indexOff < f.header || frameEnd-indexOff < 6 || frameEnd-indexOff > maxB2IndexBytes+16 {
		return fmt.Errorf("footer points at %d, outside the file's [%d,%d) section range",
			indexOff, f.header, frameEnd)
	}
	frame := make([]byte, frameEnd-indexOff)
	if _, err := f.r.ReadAt(frame, indexOff); err != nil {
		return fmt.Errorf("index frame: %v", err)
	}
	body, err := openB2Frame(frame, b2IndexTag)
	if err != nil {
		return fmt.Errorf("index frame: %v", err)
	}
	f.entries, err = parseB2IndexBody(body, f.epoch.Unix(), f.header, indexOff)
	if err != nil {
		return fmt.Errorf("index: %v", err)
	}
	return nil
}

// openB2Frame verifies one fully materialized section frame — tag,
// length prefix, body, CRC, nothing more — and returns the body view.
func openB2Frame(frame []byte, wantTag byte) ([]byte, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("empty frame")
	}
	if frame[0] != wantTag {
		return nil, fmt.Errorf("section tag 0x%02x, want 0x%02x", frame[0], wantTag)
	}
	c := byteCursor{b: frame, pos: 1}
	n, err := c.uvarint("section length", uint64(len(frame)))
	if err != nil {
		return nil, err
	}
	body, err := c.take("section body", int(n))
	if err != nil {
		return nil, err
	}
	crc, err := c.take("section checksum", 4)
	if err != nil {
		return nil, err
	}
	if got, want := b2CRC(body), binary.LittleEndian.Uint32(crc); got != want {
		return nil, fmt.Errorf("checksum mismatch: body sums to %08x, frame says %08x", got, want)
	}
	if c.rest() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after the frame", c.rest())
	}
	return body, nil
}

// Epoch returns the header epoch.
func (f *B2File) Epoch() time.Time { return f.epoch }

// NumBlocks reports how many blocks the index describes.
func (f *B2File) NumBlocks() int { return len(f.entries) }

// NumRecords reports the total record count across all blocks, from the
// index alone.
func (f *B2File) NumRecords() int64 { return f.records }

// Meta returns block i's index metadata.
func (f *B2File) Meta(i int) BlockMeta {
	e := &f.entries[i]
	return BlockMeta{
		Count: e.count,
		Base:  f.epoch.Add(time.Duration(e.base) * time.Second),
		End:   f.epoch.Add(time.Duration(e.base+e.span) * time.Second),
	}
}

// DecodeCount reports how many block decodes have happened over the
// file's lifetime — the observable the shard-skipping tests assert on.
func (f *B2File) DecodeCount() int64 { return f.decodes.Load() }

// B2BlockDecoder decodes individual blocks of one B2File. It owns the
// frame and dictionary scratch a decode needs, so each concurrent
// goroutine uses its own decoder while the canonical path table stays
// shared through the file. Not safe for concurrent use itself.
type B2BlockDecoder struct {
	f    *B2File
	body []byte
	blk  b2Block
}

// NewBlockDecoder returns a decoder for f's blocks.
func (f *B2File) NewBlockDecoder() *B2BlockDecoder {
	return &B2BlockDecoder{f: f}
}

// Decode decodes block i into a freshly allocated record slice.
func (d *B2BlockDecoder) Decode(i int) ([]Record, error) {
	recs := make([]Record, d.f.entries[i].count)
	if err := d.DecodeInto(i, recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// DecodeInto decodes block i into dst, which must hold exactly the
// block's index record count (Meta(i).Count). The block's frame is
// read, checksum-verified, cross-checked against its index row, and
// column-decoded; any mismatch or malformation errors without touching
// a shared decode state.
func (d *B2BlockDecoder) DecodeInto(i int, dst []Record) error {
	e := &d.f.entries[i]
	if int64(len(dst)) != e.count {
		return fmt.Errorf("trace: b2: block %d holds %d records, dst holds %d", i, e.count, len(dst))
	}
	if cap(d.body) < int(e.frameLen) {
		d.body = make([]byte, e.frameLen)
	}
	frame := d.body[:e.frameLen]
	if _, err := d.f.r.ReadAt(frame, e.offset); err != nil {
		return fmt.Errorf("trace: b2: block %d at byte offset %d: %v", i, e.offset, err)
	}
	body, err := openB2Frame(frame, b2BlockTag)
	if err != nil {
		return fmt.Errorf("trace: b2: block %d at byte offset %d: %v", i, e.offset, err)
	}
	d.f.mu.Lock()
	err = parseB2Block(body, d.f.in.Canonical, d.f.local.canonical, &d.blk)
	d.f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("trace: b2: block %d at byte offset %d: %v", i, e.offset, err)
	}
	if err := checkB2Block(i, &d.blk, e); err != nil {
		return fmt.Errorf("trace: b2: at byte offset %d: %v", e.offset, err)
	}
	if err := decodeB2Columns(&d.blk, d.f.epoch, dst); err != nil {
		return fmt.Errorf("trace: b2: block %d at byte offset %d: %v", i, e.offset, err)
	}
	d.f.decodes.Add(1)
	return nil
}

// b2Result carries one decoded block from a worker to the stream
// consumer.
type b2Result struct {
	recs []Record
	err  error
}

// Stream returns a Stream over the whole file that decodes blocks with
// the given number of worker goroutines but yields records in exact
// file order — byte-for-byte the same sequence at any worker count.
// At most workers+cap blocks are in flight, so memory stays bounded on
// arbitrarily large files. The stream must be drained to io.EOF or its
// first error; both tear the workers down.
func (f *B2File) Stream(workers int) Stream {
	if workers < 1 {
		workers = 1
	}
	if workers > len(f.entries) && len(f.entries) > 0 {
		workers = len(f.entries)
	}
	type job struct {
		i  int
		ch chan b2Result
	}
	jobs := make(chan job)
	// The results channel carries per-block result slots in block order;
	// its capacity is the dispatch window — once the consumer falls that
	// many blocks behind, the dispatcher stops handing out work.
	results := make(chan chan b2Result, workers)
	go func() {
		defer close(jobs)
		defer close(results)
		for i := range f.entries {
			ch := make(chan b2Result, 1)
			results <- ch
			jobs <- job{i, ch}
		}
	}()
	for w := 0; w < workers; w++ {
		go func() {
			d := f.NewBlockDecoder()
			for j := range jobs {
				recs, err := d.Decode(j.i)
				j.ch <- b2Result{recs: recs, err: err}
			}
		}()
	}
	return &b2ParallelStream{results: results}
}

// b2ParallelStream yields records from parallel block decodes in block
// order. Errors are deterministic too: the error reported is the
// earliest failing block's, regardless of which worker failed first.
type b2ParallelStream struct {
	results chan chan b2Result
	cur     []Record
	next    int
	err     error
}

// Next returns the next record in file order.
func (s *b2ParallelStream) Next() (Record, error) {
	for s.next >= len(s.cur) {
		if s.err != nil {
			return Record{}, s.err
		}
		ch, ok := <-s.results
		if !ok {
			return Record{}, io.EOF
		}
		res := <-ch
		if res.err != nil {
			s.err = res.err
			// Drain the remaining blocks synchronously — bounded by the
			// file — so that when the error returns, the dispatcher and
			// every worker have finished and nothing still touches the
			// underlying reader.
			for ch := range s.results {
				<-ch
			}
			return Record{}, s.err
		}
		s.cur, s.next = res.recs, 0
	}
	rec := s.cur[s.next]
	s.next++
	return rec, nil
}
