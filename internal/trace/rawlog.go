package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// This file emulates the paper's §4.1 collection pipeline. The MSS control
// and bitfile-mover processes wrote a verbose, deliberately human-readable
// system log: every field labelled, dates and times in human-readable
// form, redundant identity information (user name and project number as
// well as the user id), and several records per I/O tied together by a
// request sequence number. Roughly 50 MB of log shrank to 10–11 MB of
// trace per month once redundancy was removed. WriteRawLog produces a
// faithful imitation of such a log from trace records; ConvertRawLog
// reassembles trace records from one, exactly the transformation the
// authors performed.

const rawTimeLayout = "Mon Jan 2 15:04:05 2006" // human-readable, as in real logs

// WriteRawLog renders records in verbose system-log form: for each request
// a REQUEST line, a MOUNT line (for tape), a TRANSFER line, and a COMPLETE
// or ERROR line, all sharing a sequence number.
func WriteRawLog(w io.Writer, recs []Record) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range recs {
		if err := writeRawRequest(bw, uint64(i+1), &recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRawRequest(w io.Writer, seq uint64, r *Record) error {
	user := fmt.Sprintf("u%05d", r.UserID)
	project := 40000 + r.UserID%1000 // redundant with uid, as in real logs
	ts := r.Start.Format(rawTimeLayout)
	if _, err := fmt.Fprintf(w,
		"MSCP: seq=%d date=%q op=%s user=%s uid=%d project=%d mssfile=%s localfile=%s bytes=%d source=%s destination=%s\n",
		seq, ts, r.Op, user, r.UserID, project, r.MSSPath, r.LocalPath, int64(r.Size), r.Source(), r.Destination()); err != nil {
		return err
	}
	if r.Err == ErrNoFile {
		_, err := fmt.Fprintf(w, "MSCP: seq=%d ERROR reason=%q\n", seq, "file does not exist")
		return err
	}
	if r.Device == device.ClassSiloTape || r.Device == device.ClassManualTape {
		mounter := "acs4400"
		if r.Device == device.ClassManualTape {
			mounter = "operator"
		}
		if _, err := fmt.Fprintf(w, "MSCP: seq=%d MOUNT volume=V%06d drive=D%02d by=%s\n",
			seq, seq%6000, seq%8, mounter); err != nil {
			return err
		}
	}
	startTransfer := r.Start.Add(r.Startup)
	if _, err := fmt.Fprintf(w,
		"MOVER: seq=%d TRANSFER start=%q startup_seconds=%d compressed=%t\n",
		seq, startTransfer.Format(rawTimeLayout), int64(r.Startup/time.Second), r.Compressed); err != nil {
		return err
	}
	if r.Err != ErrNone {
		_, err := fmt.Fprintf(w, "MOVER: seq=%d ERROR reason=%q\n", seq, r.Err.String())
		return err
	}
	_, err := fmt.Fprintf(w, "MOVER: seq=%d COMPLETE transfer_msec=%d status=ok\n",
		seq, int64(r.Transfer/time.Millisecond))
	return err
}

// ConvertRawLog parses a verbose system log back into trace records,
// reassembling the multiple per-request lines via their sequence numbers,
// exactly as the paper's preprocessing did. Lines it cannot attribute are
// counted in skipped.
func ConvertRawLog(r io.Reader) (recs []Record, skipped int, err error) {
	type partial struct {
		rec      Record
		haveReq  bool
		haveDone bool
	}
	parts := map[uint64]*partial{}
	var order []uint64

	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<20)
	for s.Scan() {
		line := s.Text()
		fields, ok := parseRawFields(line)
		if !ok {
			skipped++
			continue
		}
		seq, err := strconv.ParseUint(fields["seq"], 10, 64)
		if err != nil {
			skipped++
			continue
		}
		p := parts[seq]
		if p == nil {
			p = &partial{}
			parts[seq] = p
			order = append(order, seq)
		}
		switch {
		case strings.Contains(line, " ERROR "):
			reason := fields["reason"]
			switch reason {
			case "file does not exist", ErrNoFile.String():
				p.rec.Err = ErrNoFile
			case ErrMedia.String():
				p.rec.Err = ErrMedia
			case ErrTerminated.String():
				p.rec.Err = ErrTerminated
			default:
				p.rec.Err = ErrTerminated
			}
			p.haveDone = true
		case strings.HasPrefix(line, "MSCP: ") && fields["op"] != "":
			when, err := time.Parse(rawTimeLayout, fields["date"])
			if err != nil {
				skipped++
				continue
			}
			p.rec.Start = when
			if fields["op"] == "write" {
				p.rec.Op = Write
			}
			uid, _ := strconv.ParseUint(fields["uid"], 10, 32)
			p.rec.UserID = uint32(uid)
			size, _ := strconv.ParseInt(fields["bytes"], 10, 64)
			p.rec.Size = units.Bytes(size)
			p.rec.MSSPath = fields["mssfile"]
			p.rec.LocalPath = fields["localfile"]
			devName := fields["source"]
			if p.rec.Op == Write {
				devName = fields["destination"]
			}
			if cls, err := device.ParseClass(devName); err == nil {
				p.rec.Device = cls
			}
			p.haveReq = true
		case strings.Contains(line, " TRANSFER "):
			sec, _ := strconv.ParseInt(fields["startup_seconds"], 10, 64)
			p.rec.Startup = time.Duration(sec) * time.Second
			p.rec.Compressed = fields["compressed"] == "true"
		case strings.Contains(line, " COMPLETE "):
			ms, _ := strconv.ParseInt(fields["transfer_msec"], 10, 64)
			p.rec.Transfer = time.Duration(ms) * time.Millisecond
			p.haveDone = true
		case strings.Contains(line, " MOUNT "):
			// Redundant with the REQUEST line's device; dropped, exactly
			// the information the compact format sheds.
		default:
			skipped++
		}
	}
	if err := s.Err(); err != nil {
		return nil, skipped, err
	}
	for _, seq := range order {
		p := parts[seq]
		if !p.haveReq {
			skipped++
			continue
		}
		recs = append(recs, p.rec)
	}
	return recs, skipped, nil
}

// parseRawFields extracts key=value pairs (values optionally quoted).
func parseRawFields(line string) (map[string]string, bool) {
	if !strings.HasPrefix(line, "MSCP: ") && !strings.HasPrefix(line, "MOVER: ") {
		return nil, false
	}
	out := map[string]string{}
	rest := line[strings.Index(line, ": ")+2:]
	for len(rest) > 0 {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		sp := strings.IndexByte(rest, ' ')
		if eq < 0 || (sp >= 0 && sp < eq) {
			// Bare token such as ERROR/MOUNT/TRANSFER/COMPLETE: skip it and
			// keep scanning — the '=' we found belongs to a later pair.
			if sp < 0 {
				break
			}
			rest = rest[sp+1:]
			continue
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		var val string
		if strings.HasPrefix(rest, "\"") {
			end := strings.Index(rest[1:], "\"")
			if end < 0 {
				return nil, false
			}
			val = rest[1 : 1+end]
			rest = rest[end+2:]
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:sp], rest[sp+1:]
			}
		}
		out[key] = val
	}
	return out, len(out) > 0
}
