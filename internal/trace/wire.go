package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The shared wire layer: a buffered varint reader and an append-style
// varint writer used by every binary codec in the repository — the b1
// trace format in this package and the s1 analysis-snapshot format in
// internal/core. Both formats open with a one-line ASCII header and then
// carry uvarint integers, length-prefixed byte strings, and (for s1)
// raw little-endian float64 bits, so the buffering, refilling, varint
// bounds checking, and mid-stream EOF conversion live here once.

// WireReader reads varint-framed binary streams. It owns its buffer:
// integer fields decode inline from the buffered window, and byte fields
// are returned as views into it wherever possible, so steady-state
// decoding moves no memory. The zero value is not ready; use
// NewWireReader.
type WireReader struct {
	src      io.Reader
	buf      []byte // buffered window of the stream
	pos, end int    // unread bytes are buf[pos:end]
	srcErr   error  // sticky source error, surfaced once the window drains
	scratch  []byte // spill for byte fields straddling a window edge
	fetched  int64  // total bytes read from src into the window
}

// NewWireReader returns a WireReader over r with a 64 KiB window.
func NewWireReader(r io.Reader) *WireReader {
	return &WireReader{src: r, buf: make([]byte, 1<<16)}
}

// fill compacts the unread window to the front of the buffer and reads
// more data, reporting whether any arrived. After a false return the
// sticky source error is set. Like bufio, a reader that repeatedly
// returns (0, nil) — legal under the io.Reader contract — is cut off
// with io.ErrNoProgress rather than spun on forever.
func (r *WireReader) fill() bool {
	if r.pos > 0 {
		copy(r.buf, r.buf[r.pos:r.end])
		r.end -= r.pos
		r.pos = 0
	}
	for tries := 0; r.srcErr == nil && r.end < len(r.buf); tries++ {
		if tries >= 100 {
			r.srcErr = io.ErrNoProgress
			break
		}
		n, err := r.src.Read(r.buf[r.end:])
		r.end += n
		r.fetched += int64(n)
		if err != nil {
			r.srcErr = err
		}
		if n > 0 {
			return true
		}
	}
	return false
}

// Offset reports the stream position of the next unread byte — how many
// bytes of the source have been consumed so far. Codec readers capture
// it at record boundaries so corruption errors can name the offending
// byte offset, not just a record index.
func (r *WireReader) Offset() int64 {
	return r.fetched - int64(r.end-r.pos)
}

// ReadByte returns the next stream byte; at the end of the stream it
// returns the sticky source error (io.EOF for a clean end).
func (r *WireReader) ReadByte() (byte, error) {
	if r.pos >= r.end && !r.fill() {
		return 0, r.srcErr
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// Line consumes one header line up to and including its newline and
// returns it without the newline. A line longer than the window is an
// error; a clean end of input before any byte is io.EOF, and an end
// mid-line is io.ErrUnexpectedEOF.
func (r *WireReader) Line() (string, error) {
	for {
		for i := r.pos; i < r.end; i++ {
			if r.buf[i] == '\n' {
				line := string(r.buf[r.pos:i])
				r.pos = i + 1
				return line, nil
			}
		}
		if r.end-r.pos >= len(r.buf) {
			return "", fmt.Errorf("header line exceeds %d bytes", len(r.buf))
		}
		if !r.fill() {
			if r.pos == r.end && r.srcErr == io.EOF {
				return "", io.EOF
			}
			if r.srcErr == io.EOF {
				return "", io.ErrUnexpectedEOF
			}
			return "", r.srcErr
		}
	}
}

// Uvarint reads one varint field, converting a mid-record EOF into
// io.ErrUnexpectedEOF and rejecting values above max. The fast path
// decodes inline from the buffered window — no per-byte calls; only a
// varint near the window edge takes the refilling loop.
func (r *WireReader) Uvarint(field string, max uint64) (uint64, error) {
	if r.end-r.pos >= binary.MaxVarintLen64 {
		v, k := binary.Uvarint(r.buf[r.pos:r.end])
		if k <= 0 { // k == 0 impossible with a full varint's worth of bytes
			return 0, fmt.Errorf("%s: varint overflows 64 bits", field)
		}
		r.pos += k
		if v > max {
			return 0, fmt.Errorf("%s %d out of range (max %d)", field, v, max)
		}
		return v, nil
	}
	return r.uvarintSlow(field, max)
}

// uvarintSlow is the byte-at-a-time refilling tail of Uvarint, reached
// only within a varint's length of the window edge.
func (r *WireReader) uvarintSlow(field string, max uint64) (uint64, error) {
	var v uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("%s: %w", field, err)
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("%s: varint overflows 64 bits", field)
			}
			v |= uint64(b) << s
			break
		}
		if i >= binary.MaxVarintLen64-1 {
			return 0, fmt.Errorf("%s: varint overflows 64 bits", field)
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
	if v > max {
		return 0, fmt.Errorf("%s %d out of range (max %d)", field, v, max)
	}
	return v, nil
}

// Svarint reads one zigzag-encoded signed varint field.
func (r *WireReader) Svarint(field string) (int64, error) {
	u, err := r.Uvarint(field, math.MaxUint64)
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// Float64 reads eight raw little-endian bytes as a float64.
func (r *WireReader) Float64(field string) (float64, error) {
	b, err := r.Fixed(field, 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// Fixed reads exactly n bytes, returning a view the caller must copy or
// consume before the next read. n must be at most the window size.
func (r *WireReader) Fixed(field string, n int) ([]byte, error) {
	if n > len(r.buf) {
		return nil, fmt.Errorf("%s: fixed field of %d bytes exceeds the %d-byte window", field, n, len(r.buf))
	}
	for r.end-r.pos < n {
		if !r.fill() {
			err := r.srcErr
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%s: %w", field, err)
		}
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// Bytes reads one length-prefixed byte field of at most max bytes,
// returning a view the caller must copy or canonicalise before the next
// read: a field fully inside the buffered window — the overwhelming
// case — is sliced directly from the buffer with no copy; only a field
// straddling a window edge is gathered through the scratch spill. Both
// labels arrive as literals so the hot path never builds an
// error-message string it will not use.
func (r *WireReader) Bytes(field, lenField string, max uint64) ([]byte, error) {
	n64, err := r.Uvarint(lenField, max)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if r.end-r.pos >= n {
		b := r.buf[r.pos : r.pos+n]
		r.pos += n
		return b, nil
	}
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	buf := r.scratch[:n]
	got := copy(buf, r.buf[r.pos:r.end])
	r.pos = r.end
	for got < n {
		if !r.fill() {
			err := r.srcErr
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%s: %w", field, err)
		}
		m := copy(buf[got:], r.buf[r.pos:r.end])
		r.pos += m
		got += m
	}
	return buf, nil
}

// AppendN reads exactly n bytes from the stream, appending them to dst
// and returning the extended slice. Unlike Bytes it has no size ceiling
// beyond what the caller imposes on n, and the destination grows only as
// data actually arrives, so a corrupt length field cannot provoke a huge
// up-front allocation. A mid-field end of input is io.ErrUnexpectedEOF.
func (r *WireReader) AppendN(field string, dst []byte, n int) ([]byte, error) {
	for n > 0 {
		if r.pos >= r.end && !r.fill() {
			err := r.srcErr
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return dst, fmt.Errorf("%s: %w", field, err)
		}
		take := r.end - r.pos
		if take > n {
			take = n
		}
		dst = append(dst, r.buf[r.pos:r.pos+take]...)
		r.pos += take
		n -= take
	}
	return dst, nil
}

// ExpectEOF verifies the stream has ended cleanly; trailing bytes after
// the last field of a format are reported as corruption.
func (r *WireReader) ExpectEOF() error {
	if _, err := r.ReadByte(); err == nil {
		return fmt.Errorf("trailing bytes after final field")
	} else if err != io.EOF {
		return err
	}
	return nil
}

// WireWriter emits varint-framed binary output through a buffered
// writer: the counterpart of WireReader, shared by the b1 and s1
// encoders. Errors are sticky — the first write error is returned by
// every later call and by Flush, so encoders can emit a whole section
// and check once.
type WireWriter struct {
	w       io.Writer
	buf     []byte
	err     error
	written int64
}

// NewWireWriter returns a WireWriter over w with a 64 KiB buffer.
func NewWireWriter(w io.Writer) *WireWriter {
	return &WireWriter{w: w, buf: make([]byte, 0, 1<<16)}
}

// flushIfFull drains the buffer to the underlying writer when it is
// near capacity, keeping appends allocation-free.
func (w *WireWriter) flushIfFull() {
	if len(w.buf) >= cap(w.buf)-16 {
		w.flush()
	}
}

// flush drains the buffer unconditionally.
func (w *WireWriter) flush() {
	if w.err == nil && len(w.buf) > 0 {
		_, w.err = w.w.Write(w.buf)
		w.written += int64(len(w.buf))
	}
	w.buf = w.buf[:0]
}

// Byte appends one raw byte (flag fields).
func (w *WireWriter) Byte(b byte) {
	w.flushIfFull()
	w.buf = append(w.buf, b)
}

// Uvarint appends one unsigned varint.
func (w *WireWriter) Uvarint(v uint64) {
	w.flushIfFull()
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Svarint appends one zigzag-encoded signed varint.
func (w *WireWriter) Svarint(v int64) {
	w.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// Float64 appends eight raw little-endian bytes of the float64.
func (w *WireWriter) Float64(v float64) {
	w.flushIfFull()
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bytes appends one length-prefixed byte field.
func (w *WireWriter) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Raw(b)
}

// String appends one length-prefixed string field.
func (w *WireWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	for len(s) > 0 {
		w.flushIfFull()
		room := cap(w.buf) - len(w.buf)
		if room > len(s) {
			room = len(s)
		}
		w.buf = append(w.buf, s[:room]...)
		s = s[room:]
	}
}

// Raw appends bytes with no length prefix (header lines, pre-framed
// sections).
func (w *WireWriter) Raw(b []byte) {
	for len(b) > 0 {
		w.flushIfFull()
		room := cap(w.buf) - len(w.buf)
		if room > len(b) {
			room = len(b)
		}
		w.buf = append(w.buf, b[:room]...)
		b = b[room:]
	}
}

// Flush drains buffered output and returns the first error any write
// encountered.
func (w *WireWriter) Flush() error {
	w.flush()
	return w.err
}

// Err reports the sticky write error without flushing. Because output
// is buffered, an underlying failure may only surface after the next
// drain; Flush gives the definitive answer.
func (w *WireWriter) Err() error { return w.err }

// Written reports the bytes successfully handed to the underlying
// writer so far (buffered bytes are not counted until Flush).
func (w *WireWriter) Written() int64 { return w.written }
