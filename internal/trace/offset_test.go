package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// Regression coverage for diagnosable corruption errors: a corrupt
// mid-stream b1 or b2 input must fail with the offending byte offset in
// the message, not just a record or block index, so daemon-side ingest
// failures (and mssanalyze -stream on a damaged file) point at the
// bytes to look at.

// offsetFixture encodes a handful of b1 records with distinctive paths
// long enough that corruption lands mid-record, not just on a boundary.
func offsetFixture(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	base := Epoch.Add(time.Hour)
	for i := 0; i < 20; i++ {
		r := Record{
			Start:     base.Add(time.Duration(i) * time.Minute),
			Op:        Read,
			Device:    device.ClassDisk,
			Startup:   2 * time.Second,
			Transfer:  1500 * time.Millisecond,
			Size:      units.Bytes(1 << 20),
			UserID:    42,
			MSSPath:   "/mss/projects/climate/run-00/snapshot-file-number-longish",
			LocalPath: "/tmp/scratch/climate/run-00/snapshot-file-number-longish",
		}
		if i%2 == 1 {
			r.Op = Write
		}
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads records until the stream errors or ends.
func drain(enc []byte) error {
	r := NewBinaryReader(bytes.NewReader(enc))
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestBinaryReaderTruncationOffset cuts the stream mid-record at every
// byte position and expects either a clean record-boundary EOF or an
// error naming a byte offset no later than the cut.
func TestBinaryReaderTruncationOffset(t *testing.T) {
	enc := offsetFixture(t)
	sawOffset := false
	for cut := len(enc) / 2; cut < len(enc); cut++ {
		err := drain(enc[:cut])
		if err == nil {
			continue // cut landed exactly on a record boundary
		}
		if !strings.Contains(err.Error(), "at byte offset") {
			t.Fatalf("truncation at %d: error lacks a byte offset: %v", cut, err)
		}
		sawOffset = true
	}
	if !sawOffset {
		t.Fatal("no truncation produced a mid-record error")
	}
}

// TestBinaryReaderBitFlipOffset flips one bit at a time through the
// encoded stream; every detected corruption must carry the byte offset
// of the record it broke.
func TestBinaryReaderBitFlipOffset(t *testing.T) {
	enc := offsetFixture(t)
	detected := 0
	for i := len(enc) / 2; i < len(enc); i++ {
		bad := append([]byte{}, enc...)
		bad[i] ^= 0x80
		err := drain(bad)
		if err == nil {
			continue // some flips decode to different valid content
		}
		if !strings.Contains(err.Error(), "at byte offset") {
			t.Fatalf("bit flip at %d: error lacks a byte offset: %v", i, err)
		}
		detected++
	}
	if detected == 0 {
		t.Fatal("no bit flip was ever detected")
	}
}

// TestB2DecodeOffset corrupts a b2 block body and expects the decode
// error to carry the block's byte offset from the index.
func TestB2DecodeOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewB2Writer(&buf)
	base := Epoch.Add(time.Hour)
	for i := 0; i < 50; i++ {
		r := Record{
			Start:   base.Add(time.Duration(i) * time.Minute),
			Op:      Read,
			Device:  device.ClassSiloTape,
			Size:    units.Bytes(4096),
			UserID:  7,
			MSSPath: "/mss/u/a", LocalPath: "/tmp/a",
		}
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	open := func(b []byte) *B2File {
		f, err := OpenB2File(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatalf("OpenB2File: %v", err)
		}
		return f
	}
	f := open(enc)
	if f.NumBlocks() == 0 {
		t.Fatal("fixture encoded no blocks")
	}
	// Flip a byte inside the first block's frame body (past the tag) and
	// decode it: the CRC check must fail and the error must name the
	// block's byte offset.
	bad := append([]byte{}, enc...)
	bad[40] ^= 0x01
	_, err := open(bad).NewBlockDecoder().Decode(0)
	if err == nil {
		t.Fatal("corrupt block decoded cleanly")
	}
	if !strings.Contains(err.Error(), "at byte offset") {
		t.Fatalf("b2 corruption error lacks a byte offset: %v", err)
	}
}
