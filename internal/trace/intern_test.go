package trace

import (
	"bytes"
	"testing"
	"time"
)

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	paths := []string{"/a/x", "/a/y", "/b/z", "/a/x", "/b/z", "/top"}
	wantIDs := []FileID{0, 1, 2, 0, 2, 3}
	for i, p := range paths {
		if id := in.Intern(p); id != wantIDs[i] {
			t.Fatalf("Intern(%q) = %d, want %d", p, id, wantIDs[i])
		}
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
	for i, p := range paths {
		if got := in.Path(wantIDs[i]); got != p {
			t.Fatalf("Path(%d) = %q, want %q", wantIDs[i], got, p)
		}
	}
}

func TestInternerDirDerivation(t *testing.T) {
	in := NewInterner()
	// Dirs are numbered in file-first-seen order: /a, /b, then / (root).
	in.Intern("/a/x")
	in.Intern("/b/z")
	in.Intern("/a/y")
	in.Intern("/top") // LastIndexByte == 0 → root
	if in.NumDirs() != 3 {
		t.Fatalf("NumDirs = %d, want 3", in.NumDirs())
	}
	cases := []struct {
		path string
		dir  string
	}{
		{"/a/x", "/a"}, {"/a/y", "/a"}, {"/b/z", "/b"}, {"/top", "/"},
	}
	for _, c := range cases {
		id := in.Intern(c.path)
		if got := in.DirPath(in.Dir(id)); got != c.dir {
			t.Fatalf("DirPath(Dir(%q)) = %q, want %q", c.path, got, c.dir)
		}
	}
	if in.Dir(in.Intern("/a/x")) != in.Dir(in.Intern("/a/y")) {
		t.Fatal("files of one directory got different DirIDs")
	}
}

func TestInternBytesMatchesIntern(t *testing.T) {
	in := NewInterner()
	a := in.Intern("/model/run1/day1")
	b := in.InternBytes([]byte("/model/run1/day1"))
	if a != b {
		t.Fatalf("InternBytes diverged from Intern: %d vs %d", b, a)
	}
	if got := in.Canonical([]byte("/model/run1/day1")); got != "/model/run1/day1" {
		t.Fatalf("Canonical = %q", got)
	}
}

// TestInternBytesZeroAlloc pins the hot-path guarantee: interning an
// already-seen path from a byte slice performs no allocation.
func TestInternBytesZeroAlloc(t *testing.T) {
	in := NewInterner()
	p := []byte("/climate/ccm2/run7/day3.nc")
	in.InternBytes(p)
	allocs := testing.AllocsPerRun(100, func() {
		if in.InternBytes(p) != 0 {
			t.Fatal("unexpected id")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state InternBytes allocates %v per run, want 0", allocs)
	}
}

// TestReaderInterning verifies both codec readers hand back one shared
// canonical string for every repetition of a path: the decoded records'
// MSSPath fields for the same path must share backing storage (string
// equality plus identical data pointers via map identity of the interner).
func TestReaderInterning(t *testing.T) {
	base := sampleRecords()
	// Repeat the same two paths many times.
	recs := make([]Record, 0, 40)
	for i := 0; i < 20; i++ {
		r := base[i%2]
		r.Start = Epoch.Add(time.Duration(500+i) * time.Second)
		recs = append(recs, r)
	}
	for _, f := range []Format{FormatASCII, FormatBinary} {
		var buf bytes.Buffer
		if err := WriteAllFormat(&buf, recs, f); err != nil {
			t.Fatalf("%v: WriteAllFormat: %v", f, err)
		}
		in := NewInterner()
		var src Stream
		if f == FormatBinary {
			src = NewBinaryReaderInterned(bytes.NewReader(buf.Bytes()), in)
		} else {
			src = NewReaderInterned(bytes.NewReader(buf.Bytes()), in)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatalf("%v: Collect: %v", f, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%v: got %d records, want %d", f, len(got), len(recs))
		}
		for i := range got {
			if got[i].MSSPath != recs[i].MSSPath || got[i].LocalPath != recs[i].LocalPath {
				t.Fatalf("%v: record %d paths diverged", f, i)
			}
			// The canonical string registered in the interner must be the
			// exact string the record carries.
			if canon := in.Path(in.Intern(got[i].MSSPath)); canon != got[i].MSSPath {
				t.Fatalf("%v: record %d path not canonical", f, i)
			}
		}
		// Only the 2 distinct MSS paths are interned; local paths go
		// through the reader's bounded cache, not the shared interner.
		if in.Len() != 2 {
			t.Fatalf("%v: interner holds %d paths, want 2", f, in.Len())
		}
	}
}
