// Package trace defines the file-migration trace format of the paper's
// §4.2 (Table 2) and implements both directions of the paper's collection
// pipeline: the verbose human-readable MSS "system log" (§4.1) and the
// compact machine-readable trace it is condensed into, with start
// times delta-encoded and a same-user flag bit, exactly as the paper
// describes (times in seconds, transfer durations in milliseconds).
//
// Two interchangeable wire formats carry the compact trace — ASCII v1
// and the varint binary b1 — auto-detected on read (OpenStream, ReadAll)
// and specified in docs/trace-format.md. The Stream and Sink interfaces
// move records through the pipeline one at a time, so traces larger than
// memory flow from codec readers through filters into the analysis
// without ever materializing as a slice.
package trace

import (
	"errors"
	"fmt"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// Op is the direction of a transfer between the Cray and the MSS.
type Op int

// Transfer directions. Reads move data MSS→Cray (UNICOS iread); writes move
// Cray→MSS (lwrite).
const (
	Read Op = iota
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// ErrCode classifies failed requests. The paper found 4.76% of references
// had errors, dominated by requests for files that did not exist (§5.1),
// and excluded them from analysis.
type ErrCode int

// Error codes carried in the flags field.
const (
	ErrNone       ErrCode = iota
	ErrNoFile             // requested file never existed (the common case)
	ErrMedia              // media error during transfer
	ErrTerminated         // request terminated prematurely
)

// errNames spells each ErrCode as it appears in the flags field. A
// dense slice rather than a map: the codec scans it when parsing, and
// slice order is code order, not random map order.
var errNames = [...]string{
	ErrNone:       "",
	ErrNoFile:     "nofile",
	ErrMedia:      "media",
	ErrTerminated: "terminated",
}

// String names the error code; ErrNone is the empty string.
func (e ErrCode) String() string {
	if e >= 0 && int(e) < len(errNames) {
		return errNames[e]
	}
	return fmt.Sprintf("err(%d)", int(e))
}

// Record is one trace record: a single explicit MSS request from the Cray.
// It carries every Table 2 field. Startup latency has one-second
// resolution and transfer time one-millisecond resolution, the precisions
// available from the original system logs.
type Record struct {
	Start      time.Time     // wall-clock start of the request
	Op         Op            // read or write (flag field)
	Device     device.Class  // MSS device holding the data (source for reads, destination for writes)
	Err        ErrCode       // error information (flag field)
	Compressed bool          // compression information (flag field)
	Startup    time.Duration // latency to first byte
	Transfer   time.Duration // data transfer duration
	Size       units.Bytes   // file size in bytes
	MSSPath    string        // file name on the MSS
	LocalPath  string        // file name on the Cray
	UserID     uint32        // requesting user
}

// Source reports the Table 2 "source" field: the device data came from.
func (r *Record) Source() string {
	if r.Op == Read {
		return r.Device.String()
	}
	return "cray"
}

// Destination reports the Table 2 "destination" field.
func (r *Record) Destination() string {
	if r.Op == Read {
		return "cray"
	}
	return r.Device.String()
}

// OK reports whether the request completed without error; the paper's
// analysis only admits OK records.
func (r *Record) OK() bool { return r.Err == ErrNone }

// End reports when the transfer finished.
func (r *Record) End() time.Time { return r.Start.Add(r.Startup + r.Transfer) }

// Validate checks the invariants the codec relies on.
func (r *Record) Validate() error {
	switch {
	case r.Start.IsZero():
		return errors.New("trace: record has zero start time")
	case r.Size < 0:
		return fmt.Errorf("trace: negative size %d", r.Size)
	case r.Startup < 0 || r.Transfer < 0:
		return fmt.Errorf("trace: negative duration (startup %v, transfer %v)", r.Startup, r.Transfer)
	case !validPath(r.MSSPath):
		return fmt.Errorf("trace: bad MSS path %q", r.MSSPath)
	case !validPath(r.LocalPath):
		return fmt.Errorf("trace: bad local path %q", r.LocalPath)
	case r.Op != Read && r.Op != Write:
		return fmt.Errorf("trace: bad op %d", int(r.Op))
	}
	switch r.Device {
	case device.ClassDisk, device.ClassSiloTape, device.ClassManualTape, device.ClassOptical:
	default:
		return fmt.Errorf("trace: bad device class %v", r.Device)
	}
	return nil
}

// validPath reports whether a path can be carried by both wire formats:
// non-empty and free of the whitespace bytes the ASCII codec uses as
// field and record separators. A single byte scan, shared by both codec
// write paths through Validate, replaces the strings.ContainsAny call
// that used to build a byte-set per record.
func validPath(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n':
			return false
		}
	}
	return true
}

// Epoch is the reference time trace deltas are measured from when a writer
// is created without an explicit epoch: the start of the paper's trace
// period, October 1, 1990 UTC.
var Epoch = time.Date(1990, time.October, 1, 0, 0, 0, 0, time.UTC)
