package trace

import (
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

func TestFilterPredicates(t *testing.T) {
	recs := sampleRecords()
	reads := Filter(recs, ByOp(Read))
	for i := range reads {
		if reads[i].Op != Read {
			t.Fatal("ByOp leaked a write")
		}
	}
	if len(reads) != 3 {
		t.Errorf("reads = %d, want 3", len(reads))
	}
	silo := Filter(recs, ByDevice(device.ClassSiloTape))
	if len(silo) != 2 {
		t.Errorf("silo = %d, want 2", len(silo))
	}
	ok := Filter(recs, OKOnly())
	if len(ok) != 3 {
		t.Errorf("ok = %d, want 3 (one error record)", len(ok))
	}
	u := Filter(recs, ByUser(101))
	if len(u) != 2 {
		t.Errorf("user 101 = %d, want 2", len(u))
	}
	big := Filter(recs, MinSize(10*units.MB))
	if len(big) != 1 {
		t.Errorf("big = %d, want 1 (the 80 MB write)", len(big))
	}
	// Conjunction.
	both := Filter(recs, OKOnly(), ByOp(Read), ByUser(202))
	if len(both) != 1 {
		t.Errorf("conjunction = %d, want 1", len(both))
	}
}

func TestBetweenAndClip(t *testing.T) {
	recs := sampleRecords()
	from := Epoch.Add(12 * time.Second)
	to := Epoch.Add(400 * time.Second)
	got := Filter(recs, Between(from, to))
	if len(got) != 1 || got[0].MSSPath != "/mss/u1/b" {
		t.Errorf("Between = %v", got)
	}
	clipped := Clip(recs, from, to)
	if len(clipped) != 1 || clipped[0].MSSPath != "/mss/u1/b" {
		t.Errorf("Clip = %v", clipped)
	}
	// Clip boundaries are [from, to).
	atTo := Clip(recs, Epoch.Add(400*time.Second), Epoch.Add(401*time.Second))
	if len(atTo) != 1 || atTo[0].MSSPath != "/mss/u2/gone" {
		t.Errorf("Clip boundary = %v", atTo)
	}
}

func TestMerge(t *testing.T) {
	recs := sampleRecords()
	a := []Record{recs[0], recs[2]}
	b := []Record{recs[1], recs[3]}
	merged := Merge(a, b)
	if len(merged) != 4 {
		t.Fatalf("merged = %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Start.Before(merged[i-1].Start) {
			t.Fatal("merge not time-sorted")
		}
	}
	if len(Merge()) != 0 {
		t.Error("empty merge should be empty")
	}
	if got := Merge(nil, a); len(got) != 2 {
		t.Errorf("merge with nil = %d", len(got))
	}
}

func TestSample(t *testing.T) {
	recs := sampleRecords()
	if got := Sample(recs, 2); len(got) != 2 {
		t.Errorf("sample(2) = %d, want 2", len(got))
	}
	if got := Sample(recs, 1); len(got) != len(recs) {
		t.Errorf("sample(1) = %d, want all", len(got))
	}
	s := Sample(recs, 1)
	s[0].UserID = 999
	if recs[0].UserID == 999 {
		t.Error("Sample must copy, not alias")
	}
}

func TestSpan(t *testing.T) {
	recs := sampleRecords()
	from, to, ok := Span(recs)
	if !ok || !from.Equal(recs[0].Start) || !to.Equal(recs[3].Start) {
		t.Errorf("span = %v %v %v", from, to, ok)
	}
	if _, _, ok := Span(nil); ok {
		t.Error("span of empty trace should be not-ok")
	}
}
