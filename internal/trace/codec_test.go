package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

func sampleRecords() []Record {
	base := Epoch
	return []Record{
		{
			Start: base.Add(10 * time.Second), Op: Read, Device: device.ClassDisk,
			Startup: 4 * time.Second, Transfer: 1500 * time.Millisecond,
			Size: units.Bytes(3 * units.MB), MSSPath: "/mss/u1/a", LocalPath: "/tmp/a", UserID: 101,
		},
		{
			Start: base.Add(15 * time.Second), Op: Write, Device: device.ClassSiloTape,
			Startup: 85 * time.Second, Transfer: 40000 * time.Millisecond,
			Size: units.Bytes(80 * units.MB), MSSPath: "/mss/u1/b", LocalPath: "/tmp/b", UserID: 101,
		},
		{
			Start: base.Add(400 * time.Second), Op: Read, Device: device.ClassManualTape,
			Err:     ErrNoFile,
			Startup: 0, Transfer: 0,
			Size: 0, MSSPath: "/mss/u2/gone", LocalPath: "/tmp/gone", UserID: 202,
		},
		{
			Start: base.Add(401 * time.Second), Op: Read, Device: device.ClassSiloTape,
			Compressed: true,
			Startup:    100 * time.Second, Transfer: 2500 * time.Millisecond,
			Size: units.Bytes(5 * units.MB), MSSPath: "/mss/u2/c", LocalPath: "/tmp/c", UserID: 202,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i]
		if !got[i].Start.Equal(want.Start) {
			t.Errorf("rec %d start = %v, want %v", i, got[i].Start, want.Start)
		}
		if got[i].Op != want.Op || got[i].Device != want.Device ||
			got[i].Err != want.Err || got[i].Compressed != want.Compressed {
			t.Errorf("rec %d flags mismatch: %+v vs %+v", i, got[i], want)
		}
		if got[i].Startup != want.Startup || got[i].Transfer != want.Transfer {
			t.Errorf("rec %d durations = %v/%v, want %v/%v",
				i, got[i].Startup, got[i].Transfer, want.Startup, want.Transfer)
		}
		if got[i].Size != want.Size || got[i].UserID != want.UserID ||
			got[i].MSSPath != want.MSSPath || got[i].LocalPath != want.LocalPath {
			t.Errorf("rec %d payload mismatch: %+v vs %+v", i, got[i], want)
		}
	}
}

func TestSameUserFlagEncoding(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Line 0 is the header; records at index 1..4. Record 2 shares uid 101
	// with record 1, record 4 shares 202 with record 3.
	if !strings.Contains(lines[2], " = ") {
		t.Errorf("second record should use same-user '=': %q", lines[2])
	}
	if !strings.Contains(lines[4], " = ") {
		t.Errorf("fourth record should use same-user '=': %q", lines[4])
	}
	if strings.Contains(lines[1], " = ") || strings.Contains(lines[3], " = ") {
		t.Errorf("user-change records must carry explicit uid")
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	if err := w.Write(&recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&recs[0]); err == nil {
		t.Error("out-of-order record should be rejected")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bad := sampleRecords()[0]
	bad.MSSPath = "has space"
	if err := w.Write(&bad); err == nil {
		t.Error("path with space should be rejected")
	}
	bad = sampleRecords()[0]
	bad.Size = -1
	if err := w.Write(&bad); err == nil {
		t.Error("negative size should be rejected")
	}
	bad = sampleRecords()[0]
	bad.Device = device.ClassUnknown
	if err := w.Write(&bad); err == nil {
		t.Error("unknown device should be rejected")
	}
	bad = sampleRecords()[0]
	bad.Start = time.Time{}
	if err := w.Write(&bad); err == nil {
		t.Error("zero start should be rejected")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []string{
		"not a header\n1 disk cray R 0 0 0 1 /a /b\n",
		"#filemig-trace v1 epoch=zzz\n",
		"#filemig-trace v1 epoch=0\n1 disk cray R 0 0\n",             // short line
		"#filemig-trace v1 epoch=0\nx disk cray R 0 0 0 1 /a /b\n",   // bad delta
		"#filemig-trace v1 epoch=0\n-5 disk cray R 0 0 0 1 /a /b\n",  // negative delta
		"#filemig-trace v1 epoch=0\n1 disk cray Q 0 0 0 1 /a /b\n",   // bad flags
		"#filemig-trace v1 epoch=0\n1 floppy cray R 0 0 0 1 /a /b\n", // bad device
		"#filemig-trace v1 epoch=0\n1 disk cray R z 0 0 1 /a /b\n",   // bad startup
		"#filemig-trace v1 epoch=0\n1 disk cray R 0 z 0 1 /a /b\n",   // bad transfer
		"#filemig-trace v1 epoch=0\n1 disk cray R 0 0 z 1 /a /b\n",   // bad size
		"#filemig-trace v1 epoch=0\n1 disk cray R 0 0 0 zz /a /b\n",  // bad uid
		"#filemig-trace v1 epoch=0\n1 disk cray REbogus 0 0 0 1 /a /b\n",
	}
	for i, c := range cases {
		if _, err := ReadAll(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestReaderSameUserFirstRecord(t *testing.T) {
	// '=' on the first record resolves to uid 0 (the reader's initial state).
	in := "#filemig-trace v1 epoch=0\n1 disk cray R 0 0 0 = /a /b\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].UserID != 0 {
		t.Errorf("uid = %d, want 0", recs[0].UserID)
	}
}

func TestEmptyStream(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty stream: %v, %v", recs, err)
	}
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty = %v, want EOF", err)
	}
}

func TestSecondsTruncationIsStable(t *testing.T) {
	// Start times with sub-second components must not accumulate drift:
	// deltas are whole seconds, so decoded times equal the truncated chain.
	base := Epoch
	recs := []Record{
		mkRec(base.Add(1500*time.Millisecond), 1),
		mkRec(base.Add(2900*time.Millisecond), 2),
		mkRec(base.Add(4100*time.Millisecond), 3),
	}
	var buf bytes.Buffer
	w := NewWriterEpoch(&buf, base)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The writer deltas against the *truncated* previous start, so every
	// decoded time is floor(absolute): error stays under one second and
	// never accumulates.
	want := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second}
	for i := range got {
		if d := got[i].Start.Sub(base); d != want[i] {
			t.Errorf("rec %d decoded offset %v, want %v", i, d, want[i])
		}
		actual := recs[i].Start.Sub(base)
		if diff := actual - want[i]; diff < 0 || diff >= time.Second {
			t.Errorf("rec %d truncation error %v, want in [0s, 1s)", i, diff)
		}
	}
}

func mkRec(start time.Time, uid uint32) Record {
	return Record{
		Start: start, Op: Read, Device: device.ClassDisk,
		Size: units.Bytes(units.MB), MSSPath: "/m", LocalPath: "/l", UserID: uid,
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		recs := make([]Record, count)
		cur := Epoch
		devs := []device.Class{device.ClassDisk, device.ClassSiloTape, device.ClassManualTape, device.ClassOptical}
		for i := range recs {
			cur = cur.Add(time.Duration(r.Intn(100)) * time.Second)
			recs[i] = Record{
				Start:      cur,
				Op:         Op(r.Intn(2)),
				Device:     devs[r.Intn(len(devs))],
				Err:        ErrCode(r.Intn(4)),
				Compressed: r.Intn(2) == 0,
				Startup:    time.Duration(r.Intn(500)) * time.Second,
				Transfer:   time.Duration(r.Intn(100000)) * time.Millisecond,
				Size:       units.Bytes(r.Int63n(200 * units.MB)),
				MSSPath:    "/mss/f" + itoa(r.Intn(1000)),
				LocalPath:  "/l/f" + itoa(r.Intn(1000)),
				UserID:     uint32(r.Intn(40)),
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			a, b := got[i], recs[i]
			if !a.Start.Equal(b.Start) || a.Op != b.Op || a.Device != b.Device ||
				a.Err != b.Err || a.Compressed != b.Compressed ||
				a.Startup != b.Startup || a.Transfer != b.Transfer ||
				a.Size != b.Size || a.UserID != b.UserID ||
				a.MSSPath != b.MSSPath || a.LocalPath != b.LocalPath {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{digits[i%10]}, b...)
		i /= 10
	}
	return string(b)
}

func TestRecordAccessors(t *testing.T) {
	r := sampleRecords()[0]
	if r.Source() != "disk" || r.Destination() != "cray" {
		t.Errorf("read source/dest = %s/%s", r.Source(), r.Destination())
	}
	w := sampleRecords()[1]
	if w.Source() != "cray" || w.Destination() != "silo" {
		t.Errorf("write source/dest = %s/%s", w.Source(), w.Destination())
	}
	if !r.OK() {
		t.Error("record without error should be OK")
	}
	if sampleRecords()[2].OK() {
		t.Error("ErrNoFile record should not be OK")
	}
	if got := r.End().Sub(r.Start); got != r.Startup+r.Transfer {
		t.Errorf("End-Start = %v", got)
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op strings wrong")
	}
	if ErrNoFile.String() != "nofile" || ErrCode(42).String() != "err(42)" {
		t.Error("ErrCode strings wrong")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}
}
