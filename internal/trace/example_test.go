package trace_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"filemig/internal/device"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// exampleRecords is a tiny two-record trace: a disk read followed by a
// silo write from the same user.
func exampleRecords() []trace.Record {
	return []trace.Record{
		{
			Start: trace.Epoch.Add(10 * time.Second), Op: trace.Read,
			Device: device.ClassDisk, Startup: 4 * time.Second,
			Transfer: 1500 * time.Millisecond, Size: units.Bytes(3 * units.MB),
			MSSPath: "/mss/u101/model.out", LocalPath: "/usr/tmp/u101/model.out",
			UserID: 101,
		},
		{
			Start: trace.Epoch.Add(25 * time.Second), Op: trace.Write,
			Device: device.ClassSiloTape, Startup: 85 * time.Second,
			Transfer: 40 * time.Second, Size: units.Bytes(80 * units.MB),
			MSSPath: "/mss/u101/model.hist", LocalPath: "/usr/tmp/u101/model.hist",
			UserID: 101,
		},
	}
}

// ExampleNewWriter encodes a trace in the paper's compact ASCII format:
// delta-encoded start times, packed flags, and a "=" same-user marker.
func ExampleNewWriter() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, r := range exampleRecords() {
		if err := w.Write(&r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(buf.String())
	// Output:
	// #filemig-trace v1 epoch=654739200
	// 10 disk cray R 4 1500 3000000 101 /mss/u101/model.out /usr/tmp/u101/model.out
	// 15 cray silo W 85 40000 80000000 = /mss/u101/model.hist /usr/tmp/u101/model.hist
}

// ExampleOpenStream shows the streaming read path: the wire format
// (ASCII v1 here, binary b1 just the same) is sniffed from the header,
// and records arrive one at a time through the Stream interface.
func ExampleOpenStream() {
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, exampleRecords(), trace.FormatBinary); err != nil {
		log.Fatal(err)
	}
	src, err := trace.OpenStream(&buf)
	if err != nil {
		log.Fatal(err)
	}
	n, err := trace.Copy(sinkFunc(func(r *trace.Record) error {
		fmt.Printf("%s %s %s\n", r.Op, r.Device, r.Size)
		return nil
	}), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n, "records")
	// Output:
	// read disk 3.00 MB
	// write silo 80.00 MB
	// 2 records
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(*trace.Record) error

func (f sinkFunc) Write(r *trace.Record) error { return f(r) }

// ExampleCopy transcodes a trace between the two wire formats: read a
// stream in whatever format arrives, write it back binary.
func ExampleCopy() {
	var ascii bytes.Buffer
	if err := trace.WriteAllFormat(&ascii, exampleRecords(), trace.FormatASCII); err != nil {
		log.Fatal(err)
	}
	asciiLen := ascii.Len()
	src, err := trace.OpenStream(&ascii)
	if err != nil {
		log.Fatal(err)
	}
	var bin bytes.Buffer
	dst := trace.NewFormatWriter(&bin, trace.FormatBinary)
	n, err := trace.Copy(dst, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := dst.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transcoded %d records; binary is %d of %d ascii bytes\n",
		n, bin.Len(), asciiLen)
	// Output:
	// transcoded 2 records; binary is 144 of 192 ascii bytes
}
