package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// allocTrace builds a trace of many records over few distinct paths —
// the shape real traces have, and the one the interned decode fast path
// is built for.
func allocTrace(t *testing.T, f Format, records, paths int) []byte {
	t.Helper()
	recs := make([]Record, 0, records)
	for i := 0; i < records; i++ {
		recs = append(recs, Record{
			Start: Epoch.Add(time.Duration(i) * 30 * time.Second),
			Op:    Op(i % 2), Device: device.ClassSiloTape,
			Startup: 5 * time.Second, Transfer: 800 * time.Millisecond,
			Size:      units.Bytes(1e6 + i),
			MSSPath:   "/mss/u" + string(rune('a'+i%paths)) + "/data",
			LocalPath: "/tmp/job" + string(rune('a'+i%paths)),
			UserID:    uint32(100 + i%paths),
		})
	}
	var buf bytes.Buffer
	if err := WriteAllFormat(&buf, recs, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeSteadyStateAllocs is the allocation-regression guard for the
// interned decode fast path: with a pre-warmed shared interner, decoding
// a whole trace costs a constant handful of allocations (reader, buffers)
// — none per record.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	const records = 2000
	for _, f := range []Format{FormatASCII, FormatBinary, FormatB2} {
		enc := allocTrace(t, f, records, 16)
		in := NewInterner()
		drain := func() {
			var src Stream
			switch f {
			case FormatBinary:
				src = NewBinaryReaderInterned(bytes.NewReader(enc), in)
			case FormatB2:
				src = NewB2ReaderInterned(bytes.NewReader(enc), in)
			default:
				src = NewReaderInterned(bytes.NewReader(enc), in)
			}
			n := 0
			for {
				_, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				n++
			}
			if n != records {
				t.Fatalf("decoded %d records, want %d", n, records)
			}
		}
		drain() // warm the interner
		perRun := testing.AllocsPerRun(5, drain)
		// Per run: the reader, its buffers/scanner and scratch — a
		// constant independent of the record count. The b2 reader's
		// constant is a little larger: it also owns a whole-block record
		// buffer, the per-block dictionary slices, and its intern
		// closures.
		budget := 30.0
		if f == FormatB2 {
			budget = 45
		}
		if perRun > budget {
			t.Errorf("%v: steady-state decode of %d records allocates %v per run, want <= %v",
				f, records, perRun, budget)
		}
	}
}

// TestB2BlockDecodeSteadyStateAllocs guards the b2 block-decode hot
// path (decodeB2Columns and the frame machinery around it): with a
// warm decoder — interner populated, frame scratch grown — re-decoding
// a block into a caller-owned slice must not allocate at all.
func TestB2BlockDecodeSteadyStateAllocs(t *testing.T) {
	enc := allocTrace(t, FormatB2, 2000, 16)
	f, err := OpenB2File(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	d := f.NewBlockDecoder()
	dst := make([]Record, f.Meta(0).Count)
	decode := func() {
		if err := d.DecodeInto(0, dst); err != nil {
			t.Fatal(err)
		}
	}
	decode() // warm the interner and the decoder's frame scratch
	if perRun := testing.AllocsPerRun(10, decode); perRun > 0 {
		t.Errorf("steady-state block decode allocates %v per run, want 0", perRun)
	}
}
