package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"filemig/internal/device"
	"filemig/internal/units"
)

// allocTrace builds a trace of many records over few distinct paths —
// the shape real traces have, and the one the interned decode fast path
// is built for.
func allocTrace(t *testing.T, f Format, records, paths int) []byte {
	t.Helper()
	recs := make([]Record, 0, records)
	for i := 0; i < records; i++ {
		recs = append(recs, Record{
			Start: Epoch.Add(time.Duration(i) * 30 * time.Second),
			Op:    Op(i % 2), Device: device.ClassSiloTape,
			Startup: 5 * time.Second, Transfer: 800 * time.Millisecond,
			Size:      units.Bytes(1e6 + i),
			MSSPath:   "/mss/u" + string(rune('a'+i%paths)) + "/data",
			LocalPath: "/tmp/job" + string(rune('a'+i%paths)),
			UserID:    uint32(100 + i%paths),
		})
	}
	var buf bytes.Buffer
	if err := WriteAllFormat(&buf, recs, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeSteadyStateAllocs is the allocation-regression guard for the
// interned decode fast path: with a pre-warmed shared interner, decoding
// a whole trace costs a constant handful of allocations (reader, buffers)
// — none per record.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	const records = 2000
	for _, f := range []Format{FormatASCII, FormatBinary} {
		enc := allocTrace(t, f, records, 16)
		in := NewInterner()
		drain := func() {
			var src Stream
			if f == FormatBinary {
				src = NewBinaryReaderInterned(bytes.NewReader(enc), in)
			} else {
				src = NewReaderInterned(bytes.NewReader(enc), in)
			}
			n := 0
			for {
				_, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				n++
			}
			if n != records {
				t.Fatalf("decoded %d records, want %d", n, records)
			}
		}
		drain() // warm the interner
		perRun := testing.AllocsPerRun(5, drain)
		// Per run: the reader, its buffers/scanner and scratch — a
		// constant independent of the record count.
		if perRun > 30 {
			t.Errorf("%v: steady-state decode of %d records allocates %v per run, want <= 30",
				f, records, perRun)
		}
	}
}
