// Package host isolates the process's view of the machine it runs on.
// The deterministic packages never read host state — miglint's
// detsource analyzer rejects runtime.GOMAXPROCS, runtime.NumCPU, clock
// and environment reads there — so worker counts arrive in those
// packages as explicit parameters. Every host-CPU read in the
// repository funnels through this package instead, used only by the
// boundary layers (cmd/* and the filemig facade) that own execution
// policy rather than results.
package host

import (
	"runtime"
	"time"
)

// DefaultWorkers returns the default worker-pool size for sweep and
// streaming-analysis fan-out: one worker per available CPU. Output
// never depends on the worker count — only wall-clock time does.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Now is the boundary layers' wall-clock read. The deterministic
// packages never call it; internal/dist takes a clock as an explicit
// option, and cmd/* resolve that option here — so lease deadlines and
// retry timers are host concerns, never result concerns.
func Now() time.Time { return time.Now() }

// Seed derives a process-unique RNG seed for execution-side jitter
// (retry backoff, worker poll spreading). Jitter shapes wall-clock
// behavior only, never results, so a wall-clock-derived seed is safe —
// and it keeps a restarted coordinator from replaying the exact retry
// schedule that just lost a race.
func Seed() int64 { return time.Now().UnixNano() }
