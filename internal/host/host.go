// Package host isolates the process's view of the machine it runs on.
// The deterministic packages never read host state — miglint's
// detsource analyzer rejects runtime.GOMAXPROCS, runtime.NumCPU, clock
// and environment reads there — so worker counts arrive in those
// packages as explicit parameters. Every host-CPU read in the
// repository funnels through this package instead, used only by the
// boundary layers (cmd/* and the filemig facade) that own execution
// policy rather than results.
package host

import "runtime"

// DefaultWorkers returns the default worker-pool size for sweep and
// streaming-analysis fan-out: one worker per available CPU. Output
// never depends on the worker count — only wall-clock time does.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
