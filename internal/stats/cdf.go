// Package stats provides the statistical machinery the paper's analysis
// rests on: empirical distributions (CDFs and quantiles), log-bucketed
// histograms, online moments, random-variate samplers for the synthetic
// workload, and autocorrelation/periodogram tools used to establish the
// one-day and one-week periodicity of the MSS request stream (§5.2).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF accumulates sample values and answers empirical-distribution queries.
// It is the workhorse behind every cumulative-percentage figure in the
// paper (Figures 3 and 7–12). The zero value is ready to use.
type CDF struct {
	vals   []float64
	sorted bool
}

// NewCDF returns a CDF pre-sized for n samples.
func NewCDF(n int) *CDF { return &CDF{vals: make([]float64, 0, n)} }

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.vals = append(c.vals, v)
	c.sorted = false
}

// AddN records the sample v with multiplicity n (used for byte-weighted
// distributions where a request of s bytes contributes weight s).
func (c *CDF) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		c.Add(v)
	}
}

// N reports the number of samples.
func (c *CDF) N() int { return len(c.vals) }

// Merge appends every sample of other to c, in other's insertion order —
// exactly as if each had been Added individually. Used by the sharded
// streaming analysis to fold per-shard distributions together.
func (c *CDF) Merge(other *CDF) {
	if other == nil || len(other.vals) == 0 {
		return
	}
	c.vals = append(c.vals, other.vals...)
	c.sorted = false
}

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.vals)
		c.sorted = true
	}
}

// P returns the empirical P(X <= v), in [0, 1]. P of an empty CDF is 0.
func (c *CDF) P(v float64) float64 {
	if len(c.vals) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.vals, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(c.vals))
}

// Quantile returns the q-th quantile (q in [0,1]) using the nearest-rank
// method. Quantile of an empty CDF is NaN.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if q <= 0 {
		return c.vals[0]
	}
	if q >= 1 {
		return c.vals[len(c.vals)-1]
	}
	i := int(math.Ceil(q*float64(len(c.vals)))) - 1
	if i < 0 {
		i = 0
	}
	return c.vals[i]
}

// Median is Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the sample mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range c.vals {
		s += v
	}
	return s / float64(len(c.vals))
}

// Min returns the smallest sample, or NaN when empty.
func (c *CDF) Min() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.vals[0]
}

// Max returns the largest sample, or NaN when empty.
func (c *CDF) Max() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.vals[len(c.vals)-1]
}

// Points samples the CDF at the given x values, returning cumulative
// fractions; this is how figure series are rendered for printing.
func (c *CDF) Points(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: c.P(x)}
	}
	return pts
}

// Point is a single (x, cumulative fraction) sample of a distribution.
type Point struct {
	X, Y float64
}

// String renders the point as "x=VAL p=FRAC%".
func (p Point) String() string {
	return fmt.Sprintf("x=%g p=%.1f%%", p.X, 100*p.Y)
}

// WeightedCDF is a CDF over (value, weight) pairs — e.g. "fraction of all
// bytes in files of size <= s" (the data curves of Figures 10–12). The zero
// value is ready to use.
type WeightedCDF struct {
	pairs  []weighted
	total  float64
	sorted bool
}

type weighted struct{ v, w float64 }

// Add records value v carrying weight w (w must be >= 0).
func (c *WeightedCDF) Add(v, w float64) {
	if w < 0 {
		panic("stats: negative weight")
	}
	c.pairs = append(c.pairs, weighted{v, w})
	c.total += w
	c.sorted = false
}

// N reports the number of (value, weight) pairs added.
func (c *WeightedCDF) N() int { return len(c.pairs) }

// Merge appends every (value, weight) pair of other to c in insertion
// order. The total is re-accumulated pair by pair, so a sequence of
// shard-local Adds followed by in-order Merges produces bit-identical
// state to one sequential Add stream.
func (c *WeightedCDF) Merge(other *WeightedCDF) {
	if other == nil || len(other.pairs) == 0 {
		return
	}
	c.pairs = append(c.pairs, other.pairs...)
	for _, p := range other.pairs {
		c.total += p.w
	}
	c.sorted = false
}

// TotalWeight reports the sum of all weights.
func (c *WeightedCDF) TotalWeight() float64 { return c.total }

func (c *WeightedCDF) ensureSorted() {
	if !c.sorted {
		sort.Slice(c.pairs, func(i, j int) bool { return c.pairs[i].v < c.pairs[j].v })
		c.sorted = true
	}
}

// P returns the weight fraction with value <= v.
func (c *WeightedCDF) P(v float64) float64 {
	if c.total == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.Search(len(c.pairs), func(i int) bool { return c.pairs[i].v > v })
	w := 0.0
	for _, p := range c.pairs[:i] {
		w += p.w
	}
	return w / c.total
}

// Quantile returns the smallest value v such that P(v) >= q.
func (c *WeightedCDF) Quantile(q float64) float64 {
	if len(c.pairs) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	target := q * c.total
	w := 0.0
	for _, p := range c.pairs {
		w += p.w
		if w >= target {
			return p.v
		}
	}
	return c.pairs[len(c.pairs)-1].v
}

// Points samples the weighted CDF at the given x values.
func (c *WeightedCDF) Points(xs []float64) []Point {
	pts := make([]Point, len(xs))
	// One pass: xs must be ascending for efficiency; sort a copy to be safe.
	sortedXs := append([]float64(nil), xs...)
	sort.Float64s(sortedXs)
	c.ensureSorted()
	res := make(map[float64]float64, len(xs))
	w, i := 0.0, 0
	for _, x := range sortedXs {
		for i < len(c.pairs) && c.pairs[i].v <= x {
			w += c.pairs[i].w
			i++
		}
		if c.total > 0 {
			res[x] = w / c.total
		}
	}
	for j, x := range xs {
		pts[j] = Point{X: x, Y: res[x]}
	}
	return pts
}

// LogSpace returns n points logarithmically spaced in [lo, hi] inclusive;
// used for the x axes of the paper's log-scale figures.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: LogSpace requires 0 < lo < hi and n >= 2")
	}
	xs := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range xs {
		xs[i] = x
		x *= ratio
	}
	xs[n-1] = hi
	return xs
}
