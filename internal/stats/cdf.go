// Package stats provides the statistical machinery the paper's analysis
// rests on: empirical distributions (CDFs and quantiles), log-bucketed
// histograms, online moments, random-variate samplers for the synthetic
// workload, and autocorrelation/periodogram tools used to establish the
// one-day and one-week periodicity of the MSS request stream (§5.2).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF accumulates sample values and answers empirical-distribution queries.
// It is the workhorse behind every cumulative-percentage figure in the
// paper (Figures 3 and 7–12). Unit samples (Add) are stored as bare
// float64s — the per-record hot-path representation — while AddN stores
// one (value, multiplicity) run however large the multiplicity, so
// byte-scale weights cost one run, not one appended copy per byte. The
// zero value is ready to use.
type CDF struct {
	vals   []float64 // unit samples, insertion order
	runs   []run     // weighted samples (AddN), insertion order
	n      int64     // total multiplicity across vals and runs
	sorted bool

	// Merged query view, built by ensureSorted only when runs exist:
	// qruns is vals and runs interleaved in value order, cum its
	// cumulative multiplicities. Run-free CDFs query vals directly.
	qruns []run
	cum   []int64
}

// run is one stored sample with its multiplicity.
type run struct {
	v float64
	n int64
}

// NewCDF returns a CDF pre-sized for n samples.
func NewCDF(n int) *CDF { return &CDF{vals: make([]float64, 0, n)} }

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.vals = append(c.vals, v)
	c.n++
	c.sorted = false
}

// AddN records the sample v with multiplicity n (used for byte-weighted
// distributions where a request of s bytes contributes weight s). It
// stores at most one run regardless of n; n <= 0 records nothing.
func (c *CDF) AddN(v float64, n int) {
	switch {
	case n <= 0:
		return
	case n == 1:
		c.Add(v)
		return
	}
	c.runs = append(c.runs, run{v, int64(n)})
	c.n += int64(n)
	c.sorted = false
}

// N reports the number of samples, counting multiplicities.
func (c *CDF) N() int { return int(c.n) }

// Merge appends every sample of other to c, in other's insertion order —
// exactly as if each had been Added individually. Used by the sharded
// streaming analysis to fold per-shard distributions together.
func (c *CDF) Merge(other *CDF) {
	if other == nil || other.n == 0 {
		return
	}
	c.vals = append(c.vals, other.vals...)
	c.runs = append(c.runs, other.runs...)
	c.n += other.n
	c.sorted = false
}

// ensureSorted orders the samples by value. A run-free CDF (the hot
// case) just sorts vals; otherwise the weighted runs and unit samples
// are merged into the qruns/cum view queries binary-search over.
func (c *CDF) ensureSorted() {
	if c.sorted {
		return
	}
	sort.Float64s(c.vals)
	if len(c.runs) > 0 {
		sort.Slice(c.runs, func(i, j int) bool { return c.runs[i].v < c.runs[j].v })
		c.qruns = c.qruns[:0]
		if cap(c.qruns) < len(c.vals)+len(c.runs) {
			c.qruns = make([]run, 0, len(c.vals)+len(c.runs))
		}
		i, j := 0, 0
		for i < len(c.vals) || j < len(c.runs) {
			if j >= len(c.runs) || (i < len(c.vals) && c.vals[i] <= c.runs[j].v) {
				c.qruns = append(c.qruns, run{c.vals[i], 1})
				i++
			} else {
				c.qruns = append(c.qruns, c.runs[j])
				j++
			}
		}
		if cap(c.cum) < len(c.qruns) {
			c.cum = make([]int64, len(c.qruns))
		}
		c.cum = c.cum[:len(c.qruns)]
		var total int64
		for k, r := range c.qruns {
			total += r.n
			c.cum[k] = total
		}
	}
	c.sorted = true
}

// P returns the empirical P(X <= v), in [0, 1]. P of an empty CDF is 0.
func (c *CDF) P(v float64) float64 {
	if c.n == 0 {
		return 0
	}
	c.ensureSorted()
	if len(c.runs) == 0 {
		i := sort.SearchFloat64s(c.vals, math.Nextafter(v, math.Inf(1)))
		return float64(i) / float64(c.n)
	}
	i := sort.Search(len(c.qruns), func(i int) bool { return c.qruns[i].v > v })
	if i == 0 {
		return 0
	}
	return float64(c.cum[i-1]) / float64(c.n)
}

// Quantile returns the q-th quantile (q in [0,1]) using the nearest-rank
// method. Quantile of an empty CDF is NaN.
func (c *CDF) Quantile(q float64) float64 {
	if c.n == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if len(c.runs) == 0 {
		if q <= 0 {
			return c.vals[0]
		}
		if q >= 1 {
			return c.vals[len(c.vals)-1]
		}
		i := int(math.Ceil(q*float64(c.n))) - 1
		if i < 0 {
			i = 0
		}
		return c.vals[i]
	}
	if q <= 0 {
		return c.qruns[0].v
	}
	if q >= 1 {
		return c.qruns[len(c.qruns)-1].v
	}
	rank := int64(math.Ceil(q * float64(c.n)))
	if rank < 1 {
		rank = 1
	}
	i := sort.Search(len(c.cum), func(i int) bool { return c.cum[i] >= rank })
	return c.qruns[i].v
}

// Median is Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the sample mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range c.vals {
		s += v
	}
	for _, r := range c.runs {
		s += r.v * float64(r.n)
	}
	return s / float64(c.n)
}

// Min returns the smallest sample, or NaN when empty.
func (c *CDF) Min() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if len(c.runs) == 0 {
		return c.vals[0]
	}
	return c.qruns[0].v
}

// Max returns the largest sample, or NaN when empty.
func (c *CDF) Max() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if len(c.runs) == 0 {
		return c.vals[len(c.vals)-1]
	}
	return c.qruns[len(c.qruns)-1].v
}

// Points samples the CDF at the given x values, returning cumulative
// fractions; this is how figure series are rendered for printing.
func (c *CDF) Points(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: c.P(x)}
	}
	return pts
}

// Point is a single (x, cumulative fraction) sample of a distribution.
type Point struct {
	X, Y float64
}

// String renders the point as "x=VAL p=FRAC%".
func (p Point) String() string {
	return fmt.Sprintf("x=%g p=%.1f%%", p.X, 100*p.Y)
}

// WeightedCDF is a CDF over (value, weight) pairs — e.g. "fraction of all
// bytes in files of size <= s" (the data curves of Figures 10–12). Each
// Add stores one pair whatever the weight, and queries binary-search a
// cumulative-weight table, so P and Quantile are O(log n) after the sort
// instead of the historical O(n) rescan per query. The zero value is
// ready to use.
type WeightedCDF struct {
	pairs  []weighted
	total  float64
	sorted bool
	cum    []float64 // cumulative weights over sorted pairs
}

type weighted struct{ v, w float64 }

// Add records value v carrying weight w (w must be >= 0).
func (c *WeightedCDF) Add(v, w float64) {
	if w < 0 {
		panic("stats: negative weight")
	}
	c.pairs = append(c.pairs, weighted{v, w})
	c.total += w
	c.sorted = false
}

// N reports the number of (value, weight) pairs added.
func (c *WeightedCDF) N() int { return len(c.pairs) }

// Merge appends every (value, weight) pair of other to c in insertion
// order. The total is re-accumulated pair by pair, so a sequence of
// shard-local Adds followed by in-order Merges produces bit-identical
// state to one sequential Add stream.
func (c *WeightedCDF) Merge(other *WeightedCDF) {
	if other == nil || len(other.pairs) == 0 {
		return
	}
	c.pairs = append(c.pairs, other.pairs...)
	for _, p := range other.pairs {
		c.total += p.w //lint:floatsum-ok re-accumulated pair by pair in insertion order, bit-identical to one sequential Add stream
	}
	c.sorted = false
}

// TotalWeight reports the sum of all weights.
func (c *WeightedCDF) TotalWeight() float64 { return c.total }

// ensureSorted orders the pairs by value and rebuilds the cumulative
// weight table. The table is accumulated left to right, so every query
// returns the same float sums the historical per-query rescan produced.
func (c *WeightedCDF) ensureSorted() {
	if c.sorted {
		return
	}
	sort.Slice(c.pairs, func(i, j int) bool { return c.pairs[i].v < c.pairs[j].v })
	if cap(c.cum) < len(c.pairs) {
		c.cum = make([]float64, len(c.pairs))
	}
	c.cum = c.cum[:len(c.pairs)]
	w := 0.0
	for i, p := range c.pairs {
		w += p.w
		c.cum[i] = w
	}
	c.sorted = true
}

// P returns the weight fraction with value <= v.
func (c *WeightedCDF) P(v float64) float64 {
	if c.total == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.Search(len(c.pairs), func(i int) bool { return c.pairs[i].v > v })
	if i == 0 {
		return 0
	}
	return c.cum[i-1] / c.total
}

// Quantile returns the smallest value v such that P(v) >= q.
func (c *WeightedCDF) Quantile(q float64) float64 {
	if len(c.pairs) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	target := q * c.total
	i := sort.Search(len(c.cum), func(i int) bool { return c.cum[i] >= target })
	if i >= len(c.pairs) {
		return c.pairs[len(c.pairs)-1].v
	}
	return c.pairs[i].v
}

// Points samples the weighted CDF at the given x values.
func (c *WeightedCDF) Points(xs []float64) []Point {
	pts := make([]Point, len(xs))
	c.ensureSorted()
	for j, x := range xs {
		pts[j] = Point{X: x, Y: c.P(x)}
	}
	return pts
}

// LogSpace returns n points logarithmically spaced in [lo, hi] inclusive;
// used for the x axes of the paper's log-scale figures.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: LogSpace requires 0 < lo < hi and n >= 2")
	}
	xs := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range xs {
		xs[i] = x
		x *= ratio
	}
	xs[n-1] = hi
	return xs
}
