package stats

import (
	"math"
	"math/rand"
	"testing"
)

// synthDiurnal builds an hourly series with daily and weekly structure,
// mimicking the shape of the NCAR read stream.
func synthDiurnal(weeks int, noise float64, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	n := weeks * 7 * 24
	s := make([]float64, n)
	for i := range s {
		hour := i % 24
		day := (i / 24) % 7
		v := 2.0
		if hour >= 8 && hour <= 17 {
			v += 4.0
		}
		if day == 0 || day == 6 {
			v *= 0.5
		}
		s[i] = v + noise*r.NormFloat64()
	}
	return s
}

func TestAutocorrelationLagZero(t *testing.T) {
	s := synthDiurnal(4, 0.1, 1)
	ac := Autocorrelation(s, 200)
	if math.Abs(ac[0]-1) > 1e-12 {
		t.Errorf("ac[0] = %v, want 1", ac[0])
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = 5
	}
	ac := Autocorrelation(s, 10)
	for lag, v := range ac {
		if v != 0 {
			t.Errorf("constant series ac[%d] = %v, want 0", lag, v)
		}
	}
}

func TestAutocorrelationDailyPeak(t *testing.T) {
	s := synthDiurnal(8, 0.3, 2)
	ac := Autocorrelation(s, 24*8)
	if ac[24] < 0.5 {
		t.Errorf("ac at lag 24 = %v, want strong positive", ac[24])
	}
	if ac[168] < ac[24] {
		t.Errorf("weekly lag (%v) should be at least daily lag (%v) for weekly-structured series", ac[168], ac[24])
	}
	if ac[12] > ac[24] {
		t.Errorf("half-day lag %v should be below daily lag %v", ac[12], ac[24])
	}
}

func TestAutocorrelationClampsLag(t *testing.T) {
	s := []float64{1, 2, 3}
	ac := Autocorrelation(s, 100)
	if len(ac) != 3 {
		t.Errorf("len(ac) = %d, want 3", len(ac))
	}
	if Autocorrelation(nil, 5) != nil {
		t.Error("nil series should give nil")
	}
}

func TestPeriodogramFindsDayAndWeek(t *testing.T) {
	s := synthDiurnal(10, 0.2, 3)
	periods := DominantPeriods(s, 3, 0.1)
	foundDay, foundWeek := false, false
	for _, p := range periods {
		if math.Abs(p-24) < 1.0 {
			foundDay = true
		}
		if math.Abs(p-168) < 8.0 {
			foundWeek = true
		}
	}
	if !foundDay || !foundWeek {
		t.Errorf("dominant periods = %v, want to include ~24 and ~168", periods)
	}
}

func TestPeriodogramShortSeries(t *testing.T) {
	if Periodogram([]float64{1, 2}) != nil {
		t.Error("short series should give nil periodogram")
	}
}

func TestPeriodogramPureSine(t *testing.T) {
	n := 240
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	pts := Periodogram(s)
	var best PeriodogramPoint
	for _, p := range pts {
		if p.Power > best.Power {
			best = p
		}
	}
	if math.Abs(best.Period-24) > 0.5 {
		t.Errorf("peak period = %v, want 24", best.Period)
	}
}

func TestAutocorrelationPeaks(t *testing.T) {
	s := synthDiurnal(8, 0.2, 4)
	ac := Autocorrelation(s, 24*7+12)
	peaks := AutocorrelationPeaks(ac, 0.3)
	has24 := false
	for _, p := range peaks {
		if p >= 22 && p <= 26 {
			has24 = true
		}
	}
	if !has24 {
		t.Errorf("peaks = %v, want one near 24", peaks)
	}
}

func TestDominantPeriodsDeduplicates(t *testing.T) {
	s := synthDiurnal(6, 0.2, 5)
	periods := DominantPeriods(s, 2, 0.2)
	if len(periods) != 2 {
		t.Fatalf("got %d periods, want 2", len(periods))
	}
	if math.Abs(periods[0]-periods[1])/periods[1] < 0.2 {
		t.Errorf("periods %v not deduplicated", periods)
	}
}
