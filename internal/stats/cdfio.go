package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization for CDFs, used by the s1 analysis-snapshot codec
// (internal/core, docs/snapshots.md). The encoding preserves insertion
// order — unit samples first, then the weighted (value, multiplicity)
// runs — because float sums such as Mean accumulate in storage order:
// a decoded CDF answers every query with bit-identical results, and a
// merged chain of decoded CDFs matches the Merge of the originals.
//
// Layout (uvarint = unsigned LEB128, float64 = 8 raw little-endian
// bytes):
//
//	cdf := nVals uvarint (float64 × nVals)
//	       nRuns uvarint (float64 uvarint) × nRuns
//
// Run multiplicities must be at least 2 (AddN stores smaller
// multiplicities as unit samples), and the total sample count must fit
// int64; UnmarshalBinary rejects anything else, so corrupt input
// surfaces as an error, never a panic or a silently absurd CDF.
//
// Queries sort the sample arrays in place, so encode a CDF before
// querying it when byte-stable re-encoding matters (query results are
// order-insensitive either way; only the wire bytes and Mean's float
// accumulation order depend on it).

// AppendBinary appends the CDF's wire encoding to dst and returns the
// extended slice (the encoding.BinaryAppender interface). The error is
// always nil.
func (c *CDF) AppendBinary(dst []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(c.vals)))
	for _, v := range c.vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.runs)))
	for _, r := range c.runs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.v))
		dst = binary.AppendUvarint(dst, uint64(r.n))
	}
	return dst, nil
}

// MarshalBinary encodes the CDF (the encoding.BinaryMarshaler
// interface). The error is always nil.
func (c *CDF) MarshalBinary() ([]byte, error) { return c.AppendBinary(nil) }

// UnmarshalBinary replaces the CDF's contents with the decoded samples
// (the encoding.BinaryUnmarshaler interface). The input must be exactly
// one encoded CDF; trailing bytes, truncation, undersized run
// multiplicities, and overflowing totals are all errors that leave the
// receiver unchanged.
func (c *CDF) UnmarshalBinary(data []byte) error {
	dec, rest, err := decodeCDF(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after encoded CDF", len(rest))
	}
	*c = dec
	return nil
}

// decodeCDF decodes one CDF from the front of data, returning it and
// the remaining bytes.
func decodeCDF(data []byte) (CDF, []byte, error) {
	var c CDF
	nVals, data, err := cdfUvarint(data, "sample count")
	if err != nil {
		return c, nil, err
	}
	// Divide rather than multiply: 8*nVals wraps uint64 for huge declared
	// counts, which would slip past this check into make().
	if nVals > uint64(len(data))/8 {
		return c, nil, fmt.Errorf("stats: encoded CDF truncated: %d samples declared, %d bytes left", nVals, len(data))
	}
	if nVals > 0 {
		c.vals = make([]float64, nVals)
		for i := range c.vals {
			c.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
		}
	}
	c.n = int64(nVals)
	nRuns, data, err := cdfUvarint(data, "run count")
	if err != nil {
		return c, nil, err
	}
	if nRuns > uint64(len(data))/9 { // 8-byte value + at least 1 varint byte
		return c, nil, fmt.Errorf("stats: encoded CDF truncated: %d runs declared, %d bytes left", nRuns, len(data))
	}
	if nRuns > 0 {
		c.runs = make([]run, nRuns)
		for i := range c.runs {
			c.runs[i].v = math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
			n, rest, err := cdfUvarint(data, "run multiplicity")
			if err != nil {
				return c, nil, err
			}
			data = rest
			if n < 2 {
				return c, nil, fmt.Errorf("stats: CDF run multiplicity %d below 2", n)
			}
			if n > math.MaxInt64 || int64(n) > math.MaxInt64-c.n {
				return c, nil, fmt.Errorf("stats: CDF sample count overflows int64")
			}
			c.runs[i].n = int64(n)
			c.n += int64(n)
		}
	}
	return c, data, nil
}

// cdfUvarint decodes one uvarint from the front of data.
func cdfUvarint(data []byte, field string) (uint64, []byte, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, nil, fmt.Errorf("stats: encoded CDF %s: bad varint", field)
	}
	return v, data[k:], nil
}
