package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstant(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := Constant{V: 8e6}
	for i := 0; i < 5; i++ {
		if c.Sample(r) != 8e6 {
			t.Fatal("Constant should always return V")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	u := Uniform{Lo: 5, Hi: 10}
	var m Moments
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 5 || v >= 10 {
			t.Fatalf("uniform sample %v out of [5,10)", v)
		}
		m.Add(v)
	}
	if math.Abs(m.Mean()-7.5) > 0.1 {
		t.Errorf("uniform mean = %v, want ~7.5", m.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := Exponential{Mean: 18}
	var m Moments
	for i := 0; i < 50000; i++ {
		m.Add(e.Sample(r))
	}
	if math.Abs(m.Mean()-18)/18 > 0.05 {
		t.Errorf("exponential mean = %v, want ~18", m.Mean())
	}
}

func TestLognormalMedianAndMean(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ln := Lognormal{Median: 3, Sigma: 2.0}
	var c CDF
	for i := 0; i < 50000; i++ {
		c.Add(ln.Sample(r))
	}
	med := c.Median()
	if math.Abs(med-3)/3 > 0.1 {
		t.Errorf("lognormal median = %v, want ~3", med)
	}
	analytic := ln.Mean()
	want := 3 * math.Exp(2)
	if math.Abs(analytic-want) > 1e-9 {
		t.Errorf("analytic mean = %v, want %v", analytic, want)
	}
	if math.Abs(c.Mean()-analytic)/analytic > 0.25 {
		t.Errorf("sample mean %v far from analytic %v", c.Mean(), analytic)
	}
}

func TestParetoTail(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := Pareto{Xm: 1, Alpha: 1.2}
	var c CDF
	for i := 0; i < 20000; i++ {
		v := p.Sample(r)
		if v < 1 {
			t.Fatalf("pareto sample %v < xm", v)
		}
		c.Add(v)
	}
	// P(X > 10) = 10^-1.2 ≈ 0.063.
	got := 1 - c.P(10)
	if math.Abs(got-math.Pow(10, -1.2)) > 0.02 {
		t.Errorf("P(X>10) = %v, want ~%v", got, math.Pow(10, -1.2))
	}
}

func TestBounded(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	b := Bounded{Inner: Lognormal{Median: 50e6, Sigma: 2}, Lo: 1, Hi: 200e6}
	for i := 0; i < 10000; i++ {
		v := b.Sample(r)
		if v < 1 || v > 200e6 {
			t.Fatalf("bounded sample %v outside [1, 200e6]", v)
		}
	}
}

func TestMixtureWeights(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := NewMixture(
		MixtureComponent{Weight: 0.75, Sampler: Constant{V: 1}},
		MixtureComponent{Weight: 0.25, Sampler: Constant{V: 2}},
	)
	n1 := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			n1++
		}
	}
	frac := float64(n1) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("mixture selected component 1 %v of draws, want ~0.75", frac)
	}
}

func TestMixturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-weight mixture should panic")
		}
	}()
	NewMixture(MixtureComponent{Weight: 0, Sampler: Constant{}})
}

func TestMixtureNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative-weight mixture should panic")
		}
	}()
	NewMixture(MixtureComponent{Weight: -1, Sampler: Constant{}})
}

func TestDiscrete(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	d := NewDiscrete(44, 13, 43) // rough file-class weights from §5.3
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	want := []float64{0.44, 0.13, 0.43}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-want[i]) > 0.01 {
			t.Errorf("class %d frequency %v, want ~%v", i, frac, want[i])
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDiscrete() },
		func() { NewDiscrete(0, 0) },
		func() { NewDiscrete(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := Geometric{P: 0.2}
	var m Moments
	for i := 0; i < 50000; i++ {
		v := g.Sample(r)
		if v < 0 || v != math.Floor(v) {
			t.Fatalf("geometric sample %v not a non-negative integer", v)
		}
		m.Add(v)
	}
	// mean (1-p)/p = 4.
	if math.Abs(m.Mean()-4) > 0.15 {
		t.Errorf("geometric mean = %v, want ~4", m.Mean())
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for P=0")
		}
	}()
	Geometric{P: 0}.Sample(rand.New(rand.NewSource(1)))
}

func TestZipfRange(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	z := NewZipf(r, 1.5, 100)
	counts := make(map[uint64]int)
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 1 || v > 100 {
			t.Fatalf("zipf rank %d out of [1,100]", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[50] {
		t.Errorf("zipf rank 1 (%d) should dominate rank 50 (%d)", counts[1], counts[50])
	}
}

func TestSamplersAreDeterministic(t *testing.T) {
	mk := func() []float64 {
		r := rand.New(rand.NewSource(123))
		m := NewMixture(
			MixtureComponent{Weight: 1, Sampler: Lognormal{Median: 3, Sigma: 1}},
			MixtureComponent{Weight: 1, Sampler: Exponential{Mean: 5}},
		)
		out := make([]float64, 50)
		for i := range out {
			out[i] = m.Sample(r)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
