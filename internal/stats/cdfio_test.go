package stats

import (
	"bytes"
	"math"
	"testing"
)

// TestCDFBinaryRoundTrip checks that a CDF survives encode → decode with
// bit-identical query results and byte-stable re-encoding, including the
// weighted AddN runs and the insertion order Mean depends on.
func TestCDFBinaryRoundTrip(t *testing.T) {
	c := &CDF{}
	c.Add(3.5)
	c.Add(-1.25)
	c.AddN(10, 4)
	c.Add(3.5)
	c.AddN(0.125, 1000000)
	c.AddN(2, 1) // stored as a unit sample

	enc, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := &CDF{}
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	// Re-encode before any query: queries sort samples in place, so
	// byte-stability is only promised for an unqueried CDF.
	reenc, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatal("re-encoding is not byte-stable")
	}
	if got.N() != c.N() {
		t.Fatalf("N = %d, want %d", got.N(), c.N())
	}
	if got.Mean() != c.Mean() {
		t.Fatalf("Mean = %v, want %v", got.Mean(), c.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got.Quantile(q) != c.Quantile(q) {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got.Quantile(q), c.Quantile(q))
		}
	}

	empty := &CDF{}
	encEmpty, _ := empty.MarshalBinary()
	dec := &CDF{}
	if err := dec.UnmarshalBinary(encEmpty); err != nil {
		t.Fatalf("empty CDF: %v", err)
	}
	if dec.N() != 0 {
		t.Fatalf("empty CDF decoded %d samples", dec.N())
	}
}

// TestCDFBinaryMergeOrder checks the documented property the snapshot
// merge relies on: decoding two shard CDFs and merging them reproduces
// the exact sample order, so order-dependent float sums match.
func TestCDFBinaryMergeOrder(t *testing.T) {
	a, b := &CDF{}, &CDF{}
	whole := &CDF{}
	for i, v := range []float64{0.1, 1e17, -0.1, 3, 1e-9, 7} {
		if i < 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		whole.Add(v)
	}
	encA, _ := a.MarshalBinary()
	encB, _ := b.MarshalBinary()
	da, db := &CDF{}, &CDF{}
	if err := da.UnmarshalBinary(encA); err != nil {
		t.Fatal(err)
	}
	if err := db.UnmarshalBinary(encB); err != nil {
		t.Fatal(err)
	}
	da.Merge(db)
	if da.Mean() != whole.Mean() {
		t.Fatalf("merged Mean = %v, want %v", da.Mean(), whole.Mean())
	}
}

// TestCDFBinaryErrors feeds malformed encodings and expects errors (and
// an unchanged receiver), never panics.
func TestCDFBinaryErrors(t *testing.T) {
	valid := &CDF{}
	valid.Add(1)
	valid.AddN(2, 3)
	enc, _ := valid.MarshalBinary()

	cases := map[string][]byte{
		"empty input":        {},
		"truncated samples":  enc[:5],
		"truncated runs":     enc[:len(enc)-1],
		"trailing bytes":     append(append([]byte{}, enc...), 0),
		"huge sample count":  {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"run multiplicity 1": {0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		// 8 * (1<<61) wraps uint64 to exactly 0: the truncation guard
		// must divide, not multiply, or this reaches make() and panics.
		"sample count overflowing 8*n": appendUvarintBytes(nil, 1<<61),
		"run count overflowing 9*n":    appendUvarintBytes([]byte{0}, (1<<64-1)/9+1),
	}
	for name, data := range cases {
		c := &CDF{}
		c.Add(42)
		before, _ := c.MarshalBinary()
		if err := c.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: no error", name)
		}
		after, _ := c.MarshalBinary()
		if !bytes.Equal(before, after) {
			t.Errorf("%s: receiver modified on error", name)
		}
	}

	// Overflowing total multiplicity.
	over := []byte{0, 2}
	over = append(over, make([]byte, 8)...)
	over = appendUvarintBytes(over, uint64(math.MaxInt64))
	over = append(over, make([]byte, 8)...)
	over = appendUvarintBytes(over, uint64(math.MaxInt64))
	c := &CDF{}
	if err := c.UnmarshalBinary(over); err == nil {
		t.Error("overflowing multiplicity accepted")
	}
}

// appendUvarintBytes is a tiny local uvarint appender so the test does
// not depend on the codec under test for building hostile input.
func appendUvarintBytes(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
