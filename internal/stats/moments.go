package stats

import "math"

// Moments accumulates count, mean and variance online using Welford's
// algorithm, plus min/max. It is used for the Table 3 summary rows, which
// need means over millions of records without retaining them.
// The zero value is ready to use.
type Moments struct {
	n        int64
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add records one sample.
func (m *Moments) Add(v float64) {
	m.n++
	m.sum += v
	if m.n == 1 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
}

// N reports the number of samples.
func (m *Moments) N() int64 { return m.n }

// Sum reports the running sum of samples.
func (m *Moments) Sum() float64 { return m.sum }

// Mean reports the sample mean, or NaN when empty.
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.mean
}

// Variance reports the unbiased sample variance, or NaN for n < 2.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return math.NaN()
	}
	return m.m2 / float64(m.n-1)
}

// StdDev reports the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min reports the smallest sample, or NaN when empty.
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.min
}

// Max reports the largest sample, or NaN when empty.
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.max
}

// Merge folds other into m, as if all of other's samples had been Added.
func (m *Moments) Merge(other *Moments) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *other
		return
	}
	n := m.n + other.n
	d := other.mean - m.mean
	mean := m.mean + d*float64(other.n)/float64(n)
	m.m2 = m.m2 + other.m2 + d*d*float64(m.n)*float64(other.n)/float64(n)
	m.mean = mean
	m.sum += other.sum //lint:floatsum-ok pairwise fold applied in fixed shard order; reported moments round to far fewer digits than the fold can perturb
	m.n = n
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
}
