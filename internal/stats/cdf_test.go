package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.P(1) != 0 {
		t.Error("P on empty CDF should be 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("quantile/mean on empty CDF should be NaN")
	}
	if !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Error("min/max on empty CDF should be NaN")
	}
}

func TestCDFBasics(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.Add(v)
	}
	if c.N() != 10 {
		t.Fatalf("N = %d, want 10", c.N())
	}
	if got := c.P(5); got != 0.5 {
		t.Errorf("P(5) = %v, want 0.5", got)
	}
	if got := c.P(0.5); got != 0 {
		t.Errorf("P(0.5) = %v, want 0", got)
	}
	if got := c.P(10); got != 1 {
		t.Errorf("P(10) = %v, want 1", got)
	}
	if got := c.Median(); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	if got := c.Quantile(0.9); got != 9 {
		t.Errorf("Quantile(0.9) = %v, want 9", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	if got := c.Mean(); got != 5.5 {
		t.Errorf("Mean = %v, want 5.5", got)
	}
	if c.Min() != 1 || c.Max() != 10 {
		t.Errorf("Min/Max = %v/%v, want 1/10", c.Min(), c.Max())
	}
}

func TestCDFInterleavedAddAndQuery(t *testing.T) {
	var c CDF
	c.Add(3)
	c.Add(1)
	if got := c.Median(); got != 1 {
		t.Errorf("median of {1,3} = %v, want 1 (nearest rank)", got)
	}
	c.Add(2) // adding after a query must keep results correct
	if got := c.Median(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
}

func TestCDFQuantileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		var c CDF
		ok := false
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				c.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPAgainstDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var c CDF
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = r.NormFloat64() * 10
		c.Add(vals[i])
	}
	sort.Float64s(vals)
	for _, probe := range []float64{-20, -5, 0, 5, 20} {
		want := 0
		for _, v := range vals {
			if v <= probe {
				want++
			}
		}
		got := c.P(probe)
		if got != float64(want)/500 {
			t.Errorf("P(%v) = %v, want %v", probe, got, float64(want)/500)
		}
	}
}

func TestWeightedCDF(t *testing.T) {
	var w WeightedCDF
	// Two small files and a huge one: 50% of files < 3, holding tiny data.
	w.Add(1, 1)
	w.Add(2, 1)
	w.Add(100, 98)
	if got := w.P(2); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("P(2) = %v, want 0.02", got)
	}
	if got := w.P(100); got != 1 {
		t.Errorf("P(100) = %v, want 1", got)
	}
	if got := w.Quantile(0.5); got != 100 {
		t.Errorf("Quantile(0.5) = %v, want 100", got)
	}
	if w.TotalWeight() != 100 {
		t.Errorf("TotalWeight = %v, want 100", w.TotalWeight())
	}
	if w.N() != 3 {
		t.Errorf("N = %v, want 3", w.N())
	}
}

func TestWeightedCDFNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative weight")
		}
	}()
	var w WeightedCDF
	w.Add(1, -1)
}

func TestWeightedCDFPoints(t *testing.T) {
	var w WeightedCDF
	for i := 1; i <= 10; i++ {
		w.Add(float64(i), 1)
	}
	pts := w.Points([]float64{5, 2, 10})
	if pts[0].Y != 0.5 || pts[1].Y != 0.2 || pts[2].Y != 1.0 {
		t.Errorf("Points = %v", pts)
	}
	if pts[0].X != 5 || pts[1].X != 2 || pts[2].X != 10 {
		t.Errorf("Points preserved order wrong: %v", pts)
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 1; i <= 4; i++ {
		c.Add(float64(i))
	}
	pts := c.Points([]float64{0, 2, 4})
	want := []float64{0, 0.5, 1}
	for i, p := range pts {
		if p.Y != want[i] {
			t.Errorf("point %d: got %v want %v", i, p.Y, want[i])
		}
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(0.1, 100, 4)
	if len(xs) != 4 {
		t.Fatalf("len = %d", len(xs))
	}
	if math.Abs(xs[0]-0.1) > 1e-12 || math.Abs(xs[3]-100) > 1e-9 {
		t.Errorf("endpoints wrong: %v", xs)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Errorf("not ascending: %v", xs)
		}
	}
	ratio1 := xs[1] / xs[0]
	ratio2 := xs[2] / xs[1]
	if math.Abs(ratio1-ratio2) > 1e-9 {
		t.Errorf("not geometric: ratios %v %v", ratio1, ratio2)
	}
}

func TestLogSpacePanics(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{{0, 1, 3}, {1, 1, 3}, {1, 10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogSpace(%v,%v,%d) should panic", c.lo, c.hi, c.n)
				}
			}()
			LogSpace(c.lo, c.hi, c.n)
		}()
	}
}

func TestPointString(t *testing.T) {
	p := Point{X: 10, Y: 0.5}
	if got := p.String(); got != "x=10 p=50.0%" {
		t.Errorf("String = %q", got)
	}
}

func TestCDFMerge(t *testing.T) {
	var whole, a, b CDF
	for i := 0; i < 100; i++ {
		v := float64((i * 37) % 100)
		whole.Add(v)
		if i < 60 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	a.Merge(&CDF{}) // empty merge is a no-op
	a.Merge(nil)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v after merge, want %v", q, got, want)
		}
	}
	if got, want := a.Mean(), whole.Mean(); got != want {
		t.Fatalf("Mean = %v after in-order merge, want %v", got, want)
	}
}

func TestWeightedCDFMerge(t *testing.T) {
	var whole, a, b WeightedCDF
	for i := 0; i < 50; i++ {
		v, w := float64(i%7), float64(1+i%3)
		whole.Add(v, w)
		if i < 20 {
			a.Add(v, w)
		} else {
			b.Add(v, w)
		}
	}
	a.Merge(&b)
	a.Merge(&WeightedCDF{})
	a.Merge(nil)
	if a.N() != whole.N() || a.TotalWeight() != whole.TotalWeight() {
		t.Fatalf("merged N/total = %d/%v, want %d/%v",
			a.N(), a.TotalWeight(), whole.N(), whole.TotalWeight())
	}
	for _, x := range []float64{0, 1, 3, 6} {
		if got, want := a.P(x), whole.P(x); got != want {
			t.Fatalf("P(%v) = %v after merge, want %v", x, got, want)
		}
	}
}

// TestAddNQuantileRegression pins the weighted-run storage: AddN must
// answer every distribution query exactly as the same samples fed one
// Add at a time — the behaviour before AddN became O(1) — including at
// byte-scale multiplicities that would be unaffordable to expand.
func TestAddNQuantileRegression(t *testing.T) {
	var weighted, expanded CDF
	samples := []struct {
		v float64
		n int
	}{
		{4, 3}, {1, 1}, {9, 5}, {4, 2}, {0.5, 4}, {7, 1}, {9, 0}, {2, -3},
	}
	for _, s := range samples {
		weighted.AddN(s.v, s.n)
		for i := 0; i < s.n; i++ {
			expanded.Add(s.v)
		}
	}
	if weighted.N() != expanded.N() {
		t.Fatalf("N = %d, want %d", weighted.N(), expanded.N())
	}
	for _, q := range []float64{-0.5, 0, 0.01, 0.25, 0.5, 0.75, 0.99, 1, 1.5} {
		if got, want := weighted.Quantile(q), expanded.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	for _, x := range []float64{0, 0.5, 1, 3.9, 4, 8.9, 9, 100} {
		if got, want := weighted.P(x), expanded.P(x); got != want {
			t.Fatalf("P(%v) = %v, want %v", x, got, want)
		}
	}
	for _, f := range []func(*CDF) float64{(*CDF).Min, (*CDF).Max, (*CDF).Median, (*CDF).Mean} {
		if got, want := f(&weighted), f(&expanded); got != want {
			t.Fatalf("summary stat = %v, want %v", got, want)
		}
	}
}

// TestAddNConstantStorage verifies the satellite fix itself: a byte-scale
// multiplicity stores one run, not n copies.
func TestAddNConstantStorage(t *testing.T) {
	var c CDF
	c.AddN(1e6, 1<<30)
	c.AddN(2e6, 1<<30)
	if len(c.runs) != 2 {
		t.Fatalf("AddN stored %d runs, want 2", len(c.runs))
	}
	if c.N() != 2<<30 {
		t.Fatalf("N = %d, want %d", c.N(), 2<<30)
	}
	if got := c.Quantile(0.5); got != 1e6 {
		t.Fatalf("Quantile(0.5) = %v, want 1e6", got)
	}
	if got := c.P(1e6); got != 0.5 {
		t.Fatalf("P(1e6) = %v, want 0.5", got)
	}
}

// TestWeightedCDFQueryCache covers the cumulative-weight table through
// interleaved queries and mutations (a mutation must invalidate it).
func TestWeightedCDFQueryCache(t *testing.T) {
	var c WeightedCDF
	c.Add(10, 5)
	c.Add(20, 15)
	if got := c.P(10); got != 0.25 {
		t.Fatalf("P(10) = %v, want 0.25", got)
	}
	c.Add(5, 20) // after a query: cache must rebuild
	if got := c.P(5); got != 0.5 {
		t.Fatalf("P(5) = %v, want 0.5", got)
	}
	if got := c.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
	if got := c.Quantile(0.51); got != 10 {
		t.Fatalf("Quantile(0.51) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 20 {
		t.Fatalf("Quantile(1) = %v, want 20", got)
	}
}
