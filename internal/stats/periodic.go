package stats

import (
	"math"
	"sort"
)

// The paper's first headline finding (§1, §5.2) is that MSS requests are
// periodic with one-day and one-week periods, driven by human read
// activity. This file provides the two standard tools to establish that
// from an hourly activity series: the sample autocorrelation function and a
// discrete-Fourier periodogram, plus a peak finder that reports dominant
// periods.

// Autocorrelation returns the sample autocorrelation of series at lags
// 0..maxLag. The series is mean-centred; lag 0 is always 1 (unless the
// series is constant, in which case all lags are 0).
func Autocorrelation(series []float64, maxLag int) []float64 {
	n := len(series)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var denom float64
	for _, v := range series {
		d := v - mean
		denom += d * d
	}
	ac := make([]float64, maxLag+1)
	if denom == 0 {
		return ac
	}
	for lag := 0; lag <= maxLag; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (series[i] - mean) * (series[i+lag] - mean)
		}
		ac[lag] = num / denom
	}
	return ac
}

// PeriodogramPoint is the spectral power at one period (in samples).
type PeriodogramPoint struct {
	Period float64 // in sample units (e.g. hours)
	Power  float64
}

// Periodogram computes the discrete Fourier periodogram of the
// mean-centred series at frequencies k/n for k = 1..n/2, returning points
// sorted by period ascending. O(n^2) — fine for a 2-year hourly series
// (17,544 samples) and has no dependencies.
func Periodogram(series []float64) []PeriodogramPoint {
	n := len(series)
	if n < 4 {
		return nil
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	pts := make([]PeriodogramPoint, 0, n/2)
	for k := 1; k <= n/2; k++ {
		var re, im float64
		w := 2 * math.Pi * float64(k) / float64(n)
		for t, v := range series {
			c := v - mean
			re += c * math.Cos(w*float64(t))
			im -= c * math.Sin(w*float64(t))
		}
		power := (re*re + im*im) / float64(n)
		pts = append(pts, PeriodogramPoint{Period: float64(n) / float64(k), Power: power})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Period < pts[j].Period })
	return pts
}

// Detrend subtracts the least-squares line from the series, returning a
// new slice. The NCAR read stream grows steadily over the two years
// (Figure 6); without detrending that ramp dominates the periodogram and
// buries the weekly peak.
func Detrend(series []float64) []float64 {
	n := len(series)
	if n < 2 {
		return append([]float64(nil), series...)
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, v := range series {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	fn := float64(n)
	denom := fn*sumXX - sumX*sumX
	slope := 0.0
	if denom != 0 {
		slope = (fn*sumXY - sumX*sumY) / denom
	}
	intercept := (sumY - slope*sumX) / fn
	out := make([]float64, n)
	for i, v := range series {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}

// DominantPeriods returns up to max periods (in sample units) ranked by
// spectral power, collapsing peaks closer than tol (relative) to a stronger
// peak. The series is detrended first and periods longer than a quarter of
// the series (trend remnants, not cycles) are discarded. For the NCAR
// hourly series this returns 24 and 168 at the top.
func DominantPeriods(series []float64, max int, tol float64) []float64 {
	pts := Periodogram(Detrend(series))
	if len(pts) == 0 {
		return nil
	}
	cutoff := float64(len(series)) / 4
	filtered := pts[:0]
	for _, p := range pts {
		if p.Period <= cutoff {
			filtered = append(filtered, p)
		}
	}
	pts = filtered
	byPower := append([]PeriodogramPoint(nil), pts...)
	sort.Slice(byPower, func(i, j int) bool { return byPower[i].Power > byPower[j].Power })
	var out []float64
	for _, p := range byPower {
		if len(out) >= max {
			break
		}
		dup := false
		for _, q := range out {
			if math.Abs(p.Period-q)/q < tol {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p.Period)
		}
	}
	return out
}

// AutocorrelationPeaks finds local maxima of the autocorrelation function
// above threshold, skipping lag 0; returns lags in ascending order. A
// daily-periodic hourly series peaks at 24, 48, ...; weekly at 168.
func AutocorrelationPeaks(ac []float64, threshold float64) []int {
	var peaks []int
	for lag := 2; lag < len(ac)-1; lag++ {
		if ac[lag] >= threshold && ac[lag] > ac[lag-1] && ac[lag] >= ac[lag+1] {
			peaks = append(peaks, lag)
		}
	}
	return peaks
}
