package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram with either linear or logarithmic
// bucket edges. Unlike CDF it uses O(buckets) memory, so it is the right
// tool for the multi-million-record trace passes.
type Histogram struct {
	edges  []float64 // ascending bucket upper bounds; len = #buckets
	counts []int64
	under  int64 // samples below edges[0] lower bound (linear only)
	over   int64 // samples above the last edge
	sum    float64
	n      int64
}

// NewLinearHistogram builds buckets of equal width spanning [lo, hi).
func NewLinearHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 || hi <= lo {
		panic("stats: bad linear histogram shape")
	}
	edges := make([]float64, buckets)
	w := (hi - lo) / float64(buckets)
	for i := range edges {
		edges[i] = lo + w*float64(i+1)
	}
	return &Histogram{edges: edges, counts: make([]int64, buckets)}
}

// NewLogHistogram builds buckets whose upper edges grow geometrically from
// lo to hi. Samples below lo land in the first bucket.
func NewLogHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 || lo <= 0 || hi <= lo {
		panic("stats: bad log histogram shape")
	}
	edges := make([]float64, buckets)
	ratio := math.Pow(hi/lo, 1/float64(buckets))
	e := lo
	for i := range edges {
		e *= ratio
		edges[i] = e
	}
	edges[buckets-1] = hi
	return &Histogram{edges: edges, counts: make([]int64, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN records the sample v with multiplicity n.
func (h *Histogram) AddN(v float64, n int64) {
	h.n += n
	h.sum += v * float64(n)
	if v > h.edges[len(h.edges)-1] {
		h.over += n
		return
	}
	// Binary search the first edge >= v.
	lo, hi := 0, len(h.edges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if h.edges[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo] += n
}

// N reports the total sample count, including overflow.
func (h *Histogram) N() int64 { return h.n }

// Mean reports the sample mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// CumulativeAt reports the fraction of samples <= v (bucket-resolution).
func (h *Histogram) CumulativeAt(v float64) float64 {
	if h.n == 0 {
		return 0
	}
	var c int64
	for i, e := range h.edges {
		if e <= v {
			c += h.counts[i]
		} else {
			break
		}
	}
	return float64(c) / float64(h.n)
}

// Quantile returns the upper edge of the bucket where the q-th quantile
// falls. Resolution is one bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(h.n)))
	var c int64
	for i, cnt := range h.counts {
		c += cnt
		if c >= target {
			return h.edges[i]
		}
	}
	return h.edges[len(h.edges)-1]
}

// Buckets returns (upperEdge, count) pairs for rendering.
func (h *Histogram) Buckets() []Bucket {
	bs := make([]Bucket, len(h.edges))
	for i := range h.edges {
		bs[i] = Bucket{UpperEdge: h.edges[i], Count: h.counts[i]}
	}
	return bs
}

// Overflow reports the count of samples above the final edge.
func (h *Histogram) Overflow() int64 { return h.over }

// Bucket is one histogram cell.
type Bucket struct {
	UpperEdge float64
	Count     int64
}

// Render draws a crude ASCII bar chart of the histogram, one row per
// bucket, scaled to width columns. Useful in the cmds' -v mode.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		fmt.Fprintf(&b, "%12.3g | %s %d\n", h.edges[i], strings.Repeat("#", bar), c)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%12s | %d\n", ">max", h.over)
	}
	return b.String()
}
