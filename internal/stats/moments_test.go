package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMomentsBasics(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Error("empty moments should be NaN")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(v)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", m.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if got, want := m.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", m.Min(), m.Max())
	}
	if m.Sum() != 40 {
		t.Errorf("Sum = %v, want 40", m.Sum())
	}
}

func TestMomentsVarianceSingle(t *testing.T) {
	var m Moments
	m.Add(3)
	if !math.IsNaN(m.Variance()) {
		t.Error("variance of one sample should be NaN")
	}
}

func TestMomentsMerge(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var all, a, b Moments
	for i := 0; i < 1000; i++ {
		v := r.NormFloat64()*5 + 10
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max %v/%v vs %v/%v", a.Min(), a.Max(), all.Min(), all.Max())
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(1)
	a.Merge(&b) // merging empty should not change a
	if a.N() != 1 || a.Mean() != 1 {
		t.Error("merge of empty changed receiver")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Error("merge into empty failed")
	}
}

func TestMomentsMergeEquivalentToAdd(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			var out []float64
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Moments
		for _, v := range xs {
			a.Add(v)
			all.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			all.Add(v)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
