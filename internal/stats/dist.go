package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Sampler draws random variates. All workload distributions implement it so
// the generator can be configured with arbitrary mixtures.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// Constant always returns V. Useful as a mixture component (e.g. the 8 MB
// climate-model write bump visible in Figure 10).
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Exponential draws from an exponential distribution with the given Mean.
type Exponential struct{ Mean float64 }

// Sample implements Sampler.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.Mean }

// Lognormal draws from a lognormal distribution parameterised by the median
// (exp mu) and sigma (shape). Most of the paper's size and interval
// distributions are heavy-tailed and well modelled by lognormals.
type Lognormal struct {
	Median float64 // exp(mu)
	Sigma  float64
}

// Sample implements Sampler.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return l.Median * math.Exp(l.Sigma*r.NormFloat64())
}

// Mean reports the analytic mean exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 {
	return l.Median * math.Exp(l.Sigma*l.Sigma/2)
}

// Pareto draws from a Pareto distribution with scale Xm and shape Alpha.
// Used for the directory-population tail (5 % of directories hold 50 % of
// files, Figure 12).
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Sampler.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Bounded clamps an inner sampler to [Lo, Hi]; the MSS's 200 MB file cap is
// a Bounded{...} around the raw size distribution.
type Bounded struct {
	Inner  Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (b Bounded) Sample(r *rand.Rand) float64 {
	v := b.Inner.Sample(r)
	if v < b.Lo {
		return b.Lo
	}
	if v > b.Hi {
		return b.Hi
	}
	return v
}

// MixtureComponent couples a sampler with a non-negative selection weight.
type MixtureComponent struct {
	Weight  float64
	Sampler Sampler
}

// Mixture selects one component per draw with probability proportional to
// its weight.
type Mixture struct {
	components []MixtureComponent
	cum        []float64
	total      float64
}

// NewMixture builds a mixture from components; weights need not sum to 1.
func NewMixture(components ...MixtureComponent) *Mixture {
	m := &Mixture{components: components}
	for _, c := range components {
		if c.Weight < 0 {
			panic("stats: negative mixture weight")
		}
		m.total += c.Weight
		m.cum = append(m.cum, m.total)
	}
	if m.total <= 0 {
		panic("stats: mixture has zero total weight")
	}
	return m
}

// Sample implements Sampler.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64() * m.total
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Sampler.Sample(r)
}

// Zipf draws integers in [1, N] with probability proportional to
// 1/rank^S. It backs the per-user and per-directory popularity skew.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf constructs a Zipf sampler; s must be > 1 per math/rand.
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Next draws the next rank in [1, N].
func (z *Zipf) Next() uint64 { return z.z.Uint64() + 1 }

// Discrete draws an index in [0, len(weights)) with probability
// proportional to weights[i]. It drives categorical choices such as the
// file reference-plan classes (§5.3).
type Discrete struct {
	cum   []float64
	total float64
}

// NewDiscrete builds a discrete distribution over the given weights.
func NewDiscrete(weights ...float64) *Discrete {
	d := &Discrete{}
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative discrete weight")
		}
		d.total += w
		d.cum = append(d.cum, d.total)
	}
	if d.total <= 0 {
		panic("stats: discrete distribution has zero total weight")
	}
	return d
}

// Sample draws an index.
func (d *Discrete) Sample(r *rand.Rand) int {
	u := r.Float64() * d.total
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.cum) {
		i = len(d.cum) - 1
	}
	return i
}

// Geometric draws the number of failures before the first success of a
// Bernoulli(P) process; mean (1-P)/P. Used for burst lengths.
type Geometric struct{ P float64 }

// Sample implements Sampler (returns a float-valued count).
func (g Geometric) Sample(r *rand.Rand) float64 {
	if g.P <= 0 || g.P > 1 {
		panic("stats: geometric P out of (0,1]")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return math.Floor(math.Log(u) / math.Log(1-g.P))
}
