package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.N() != 10 {
		t.Fatalf("N = %d", h.N())
	}
	for i, b := range h.Buckets() {
		if b.Count != 1 {
			t.Errorf("bucket %d count = %d, want 1", i, b.Count)
		}
	}
	if got := h.CumulativeAt(5); got != 0.5 {
		t.Errorf("CumulativeAt(5) = %v, want 0.5", got)
	}
	if got := h.Mean(); got != 5.0 {
		t.Errorf("Mean = %v, want 5", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewLinearHistogram(0, 10, 5)
	h.Add(100)
	h.Add(5)
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow())
	}
	if h.N() != 2 {
		t.Errorf("N = %d, want 2", h.N())
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	// Buckets: (0,10], (10,100], (100,1000].
	h.Add(5)
	h.Add(50)
	h.Add(500)
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %d", len(bs))
	}
	for i, b := range bs {
		if b.Count != 1 {
			t.Errorf("bucket %d count = %d, want 1 (edge %v)", i, b.Count, b.UpperEdge)
		}
	}
	if math.Abs(bs[2].UpperEdge-1000) > 1e-9 {
		t.Errorf("last edge = %v, want 1000", bs[2].UpperEdge)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewLinearHistogram(0, 100, 100)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Add(r.Float64() * 100)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median of uniform(0,100) = %v, want ~50", med)
	}
	if q := h.Quantile(1.0); q < 99 {
		t.Errorf("Quantile(1) = %v, want ~100", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewLinearHistogram(0, 1, 2)
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Error("expected NaN on empty histogram")
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	h.AddN(1.5, 5)
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if got := h.CumulativeAt(2); got != 1.0 {
		t.Errorf("CumulativeAt(2) = %v, want 1", got)
	}
}

func TestHistogramAgainstCDF(t *testing.T) {
	// High-resolution histogram quantiles should track exact CDF quantiles.
	h := NewLogHistogram(0.001, 1000, 2000)
	var c CDF
	r := rand.New(rand.NewSource(42))
	ln := Lognormal{Median: 3, Sigma: 2}
	for i := 0; i < 20000; i++ {
		v := ln.Sample(r)
		if v > 1000 {
			v = 1000
		}
		h.Add(v)
		c.Add(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		hv, cv := h.Quantile(q), c.Quantile(q)
		if cv == 0 {
			continue
		}
		if rel := math.Abs(hv-cv) / cv; rel > 0.05 {
			t.Errorf("quantile %v: hist %v vs cdf %v (rel %v)", q, hv, cv, rel)
		}
	}
}

func TestHistogramShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLinearHistogram(5, 5, 3) },
		func() { NewLinearHistogram(0, 10, 0) },
		func() { NewLogHistogram(0, 10, 3) },
		func() { NewLogHistogram(10, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad histogram shape")
				}
			}()
			f()
		}()
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewLinearHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	h.Add(99)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("render missing bars: %q", out)
	}
	if !strings.Contains(out, ">max") {
		t.Errorf("render missing overflow row: %q", out)
	}
	if h.Render(0) == "" {
		t.Error("Render(0) should fall back to default width")
	}
}
