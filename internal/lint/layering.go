package lint

import (
	"sort"
	"strconv"
	"strings"
)

// Layering machine-checks the package dependency diagram in
// ARCHITECTURE.md. Each internal package may import only the internal
// packages its row in allowedImports grants; the filemig facade may
// import any internal package except lint; cmd/* binaries may import
// anything; examples/* may import anything except lint. A new
// internal package, or a new edge, is a diagnostic until both the table
// below and the ARCHITECTURE.md diagram are updated — the two cannot
// drift apart silently.
var Layering = &Analyzer{
	Name:     "layering",
	Doc:      "enforce the ARCHITECTURE.md package dependency diagram",
	Suppress: "layering-ok",
	Run:      runLayering,
}

// allowedImports grants, per internal package, the set of internal
// packages it may import. This is the ARCHITECTURE.md diagram in
// machine-checkable form — change them together.
var allowedImports = map[string][]string{
	"units":      {},
	"stats":      {},
	"sim":        {"units"},
	"device":     {"units"},
	"namespace":  {"stats", "units"},
	"trace":      {"device", "units"},
	"workload":   {"device", "namespace", "stats", "trace", "units"},
	"mss":        {"device", "sim", "stats", "trace", "units"},
	"core":       {"device", "namespace", "stats", "trace", "units", "workload"},
	"migration":  {"trace", "units"},
	"experiment": {"migration", "trace", "units", "workload"},
	"dist":       {"core", "experiment", "trace"},
	"serve":      {"core", "dist", "migration", "trace", "units"},
	"dist/chaos": {},
	"host":       {},
	"lint":       {},
}

// internalPrefix is the path prefix of the layered packages.
const internalPrefix = ModulePath + "/internal/"

// layerName extracts the short internal-package name ("core") from a
// full import path, or "" if the path is not an internal package.
func layerName(pkgPath string) string {
	if !strings.HasPrefix(pkgPath, internalPrefix) {
		return ""
	}
	return strings.TrimPrefix(pkgPath, internalPrefix)
}

func runLayering(p *Pass) {
	if !InModule(p.Path) {
		return
	}
	check := layeringRule(p.Path)
	if check == nil {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !InModule(path) {
				continue
			}
			if why := check(path); why != "" {
				p.Reportf(imp.Pos(), "%s must not import %s: %s", p.Path, path, why)
			}
		}
	}
}

// layeringRule returns the import-checking function for pkgPath, or nil
// if the package is unconstrained (cmd/* binaries).
func layeringRule(pkgPath string) func(importPath string) string {
	switch {
	case strings.HasPrefix(pkgPath, ModulePath+"/cmd/"):
		return nil
	case strings.HasPrefix(pkgPath, ModulePath+"/examples/"):
		return func(importPath string) string {
			if layerName(importPath) == "lint" {
				return "examples demonstrate the library, not the lint tooling"
			}
			return ""
		}
	case pkgPath == ModulePath:
		return func(importPath string) string {
			if layerName(importPath) == "lint" {
				return "the facade re-exports analysis, not the lint tooling (only cmd/miglint uses it)"
			}
			return ""
		}
	default:
		self := layerName(pkgPath)
		if self == "" {
			return nil
		}
		allowed, known := allowedImports[self]
		if !known {
			return func(importPath string) string {
				return "package " + pkgPath + " is not in the ARCHITECTURE.md dependency table; " +
					"add its row to allowedImports in internal/lint/layering.go and to the diagram"
			}
		}
		set := map[string]bool{}
		for _, a := range allowed {
			set[a] = true
		}
		return func(importPath string) string {
			target := layerName(importPath)
			if target == "" {
				return "internal packages must not import the facade or commands"
			}
			if !set[target] {
				return "the ARCHITECTURE.md layering grants " + self + " only {" +
					strings.Join(sortedCopy(allowedImports[self]), ", ") + "}"
			}
			return ""
		}
	}
}

// sortedCopy returns a sorted copy of ss for stable diagnostics.
func sortedCopy(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}
