package lint

import (
	"go/ast"
	"go/types"
)

// DetSource forbids nondeterministic inputs inside the deterministic
// packages (internal/{core,trace,experiment,migration,workload,stats,
// mss}): wall-clock reads, the global math/rand stream, environment
// lookups, and host-CPU introspection. Seeded generators stay legal —
// rand.New(rand.NewSource(k)) constructs a *rand.Rand whose methods are
// all fine; it is only the package-level convenience functions (which
// share an unseeded global source) that are banned. Worker counts must
// flow in as explicit parameters: runtime.GOMAXPROCS / runtime.NumCPU
// belong to the callers (cmd/*, the facade, internal/host), never to
// the packages whose output is replayed and merged byte-identically.
var DetSource = &Analyzer{
	Name:     "detsource",
	Doc:      "forbid wall-clock, global rand, env, and CPU-count reads in deterministic packages",
	Suppress: "detsource-ok",
	Run:      runDetSource,
}

// detBanned maps source package path -> banned function -> why.
var detBanned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read; thread a time.Time in from the caller",
		"Since": "wall-clock read; compute from an explicit timestamp",
		"Until": "wall-clock read; compute from an explicit timestamp",
	},
	"os": {
		"Getenv":    "environment-dependent behavior; pass configuration explicitly",
		"LookupEnv": "environment-dependent behavior; pass configuration explicitly",
		"Environ":   "environment-dependent behavior; pass configuration explicitly",
		"ExpandEnv": "environment-dependent behavior; pass configuration explicitly",
	},
	"runtime": {
		"GOMAXPROCS": "host-CPU read; worker counts must arrive as explicit parameters (see internal/host)",
		"NumCPU":     "host-CPU read; worker counts must arrive as explicit parameters (see internal/host)",
	},
}

// randAllowed are the package-level math/rand identifiers that do not
// touch the unseeded global source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"PCG":        true,
	"ChaCha8":    true,
	// Types (and their methods, which hang off a seeded value).
	"Rand":   true,
	"Source": true,
	"Zipf":   true,
}

func runDetSource(p *Pass) {
	if !IsDeterministic(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Methods are always fine: a method value hangs off an
			// explicitly-constructed receiver (e.g. a seeded *rand.Rand).
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			srcPkg := obj.Pkg().Path()
			name := obj.Name()
			if why, ok := detBanned[srcPkg][name]; ok {
				p.Reportf(sel.Pos(), "deterministic package %s must not use %s.%s: %s",
					p.Path, srcPkg, name, why)
				return true
			}
			if (srcPkg == "math/rand" || srcPkg == "math/rand/v2") && !randAllowed[name] {
				p.Reportf(sel.Pos(), "deterministic package %s must not use the global %s.%s: "+
					"seed an explicit generator with rand.New(rand.NewSource(k)) instead",
					p.Path, srcPkg, name)
			}
			return true
		})
	}
}
