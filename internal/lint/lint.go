// Package lint machine-checks the invariants this reproduction's
// correctness arguments rest on: deterministic output (no map-iteration
// order or wall-clock leaks), exact shard merges (no float accumulation
// on merge/load paths), near-zero allocation on the annotated hot
// paths, the ARCHITECTURE.md package layering, and doc-comment coverage.
//
// The analyzers run through cmd/miglint, either standalone
// (`go run ./cmd/miglint ./...`) or as a `go vet -vettool`; each is
// specified, with its suppression grammar, in docs/lint.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import path prefix of the packages the analyzers
// know how to judge; everything outside it is ignored.
const ModulePath = "filemig"

// deterministicPkgs lists the packages whose output feeds committed
// goldens, snapshots, or manifests, and which therefore must be
// byte-reproducible: no wall-clock, no global RNG, no environment, no
// CPU-count reads, no unordered map iteration.
var deterministicPkgs = map[string]bool{
	ModulePath + "/internal/core":       true,
	ModulePath + "/internal/trace":      true,
	ModulePath + "/internal/experiment": true,
	ModulePath + "/internal/migration":  true,
	ModulePath + "/internal/workload":   true,
	ModulePath + "/internal/stats":      true,
	ModulePath + "/internal/mss":        true,
	ModulePath + "/internal/dist":       true,
	ModulePath + "/internal/serve":      true,
}

// IsDeterministic reports whether pkgPath is one of the packages the
// determinism analyzers (detsource, floatsum) apply to.
func IsDeterministic(pkgPath string) bool { return deterministicPkgs[pkgPath] }

// InModule reports whether pkgPath belongs to this module.
func InModule(pkgPath string) bool {
	return pkgPath == ModulePath || strings.HasPrefix(pkgPath, ModulePath+"/")
}

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats a diagnostic the way go vet prints findings.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Unit is one package ready for analysis: parsed non-test files plus
// type information. Both drivers (the vet.cfg protocol and the test
// fixture loader) produce Units; analyzers never load anything
// themselves.
type Unit struct {
	Fset  *token.FileSet
	Path  string // canonical package import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Pass is the per-analyzer view of a Unit, with a Report sink.
type Pass struct {
	*Unit
	Analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check. Suppress is the comment token
// that waives one of its findings (`//lint:<Suppress> reason`); every
// suppression must carry a reason or it is itself reported.
type Analyzer struct {
	Name     string
	Doc      string
	Suppress string
	Run      func(*Pass)
}

// Analyzers returns the full miglint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIter,
		DetSource,
		HotAlloc,
		FloatSum,
		Layering,
		DocComment,
	}
}

// RunUnit applies the given analyzers to one package and returns the
// surviving diagnostics, sorted by position. Suppressed findings are
// dropped; malformed suppressions (no reason) are reported.
func RunUnit(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := collectSuppressions(u, analyzers, &diags)
	for _, a := range analyzers {
		var raw []Diagnostic
		a.Run(&Pass{Unit: u, Analyzer: a, diags: &raw})
		for _, d := range raw {
			if !sup.covers(a.Suppress, d.Pos) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressions maps an analyzer's suppression token to the set of
// (file, line) pairs it waives. A comment waives its own line and, when
// it stands alone on a line, the following line.
type suppressions map[string]map[string]map[int]bool

func (s suppressions) add(token, file string, line int) {
	byFile := s[token]
	if byFile == nil {
		byFile = map[string]map[int]bool{}
		s[token] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = map[int]bool{}
		byFile[file] = lines
	}
	lines[line] = true
}

func (s suppressions) covers(token string, pos token.Position) bool {
	return s[token][pos.Filename][pos.Line]
}

// suppressPrefix introduces a suppression comment: //lint:<token> reason.
const suppressPrefix = "//lint:"

// collectSuppressions scans every comment for the //lint:<token> reason
// grammar. Unknown tokens and missing reasons are reported (an audited
// suppression must say why), so stale or sloppy waivers cannot
// accumulate silently.
func collectSuppressions(u *Unit, analyzers []*Analyzer, diags *[]Diagnostic) suppressions {
	known := map[string]bool{}
	for _, a := range analyzers {
		if a.Suppress != "" {
			known[a.Suppress] = true
		}
	}
	sup := suppressions{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, suppressPrefix)
				tok, reason, _ := strings.Cut(rest, " ")
				pos := u.Fset.Position(c.Pos())
				if !known[tok] {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "miglint",
						Message: fmt.Sprintf("unknown suppression %q (known: %s)", tok, knownTokens(analyzers))})
					continue
				}
				if strings.TrimSpace(reason) == "" {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "miglint",
						Message: fmt.Sprintf("suppression //lint:%s needs a reason: //lint:%s <why this is safe>", tok, tok)})
					continue
				}
				// A comment waives its own line (trailing form) and the
				// next line (standalone form).
				sup.add(tok, pos.Filename, pos.Line)
				sup.add(tok, pos.Filename, pos.Line+1)
			}
		}
	}
	return sup
}

// knownTokens renders the valid suppression tokens for error messages.
func knownTokens(analyzers []*Analyzer) string {
	var ts []string
	for _, a := range analyzers {
		if a.Suppress != "" {
			ts = append(ts, a.Suppress)
		}
	}
	sort.Strings(ts)
	return strings.Join(ts, ", ")
}

// funcKey renders a FuncDecl as "(recv).Name" or "Name", the notation
// the hot-path annotation requirements use.
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + typeExprString(d.Recv.List[0].Type) + ")." + d.Name.Name
}

// typeExprString renders a receiver type expression compactly.
func typeExprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + typeExprString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return typeExprString(t.X)
	case *ast.IndexListExpr:
		return typeExprString(t.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// enclosingFuncs returns the FuncDecl bodies of a file in source order.
func enclosingFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
