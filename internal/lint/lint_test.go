package lint_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"filemig/internal/lint"
)

// The fixture corpus: testdata/src/<suite>/<import/path>/*.go, in the
// analysistest style. A `// want ...` comment holds one or more
// backtick-quoted regexes, each of which must match one diagnostic on
// that line (or on the previous line when the comment stands alone);
// any unmatched diagnostic or leftover expectation fails the test.

// suites maps each fixture directory to the analyzers it runs. The
// suppress suite runs everything, exercising the waiver grammar.
func suites() map[string][]*lint.Analyzer {
	return map[string][]*lint.Analyzer{
		"mapiter":    {lint.MapIter},
		"detsource":  {lint.DetSource},
		"hotalloc":   {lint.HotAlloc},
		"floatsum":   {lint.FloatSum},
		"layering":   {lint.Layering},
		"doccomment": {lint.DocComment},
		"suppress":   lint.Analyzers(),
	}
}

func TestFixtures(t *testing.T) {
	fset := token.NewFileSet()
	imp := fixtureImporter{
		src:   importer.ForCompiler(fset, "source", nil),
		stubs: map[string]*types.Package{},
	}
	names := make([]string, 0, len(suites()))
	for name := range suites() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		analyzers := suites()[name]
		t.Run(name, func(t *testing.T) {
			root := filepath.Join("testdata", "src", name)
			pkgs := fixturePackages(t, root)
			if len(pkgs) == 0 {
				t.Fatalf("no fixture packages under %s", root)
			}
			for _, dir := range pkgs {
				path, err := filepath.Rel(root, dir)
				if err != nil {
					t.Fatal(err)
				}
				checkFixture(t, fset, imp, dir, filepath.ToSlash(path), analyzers)
			}
		})
	}
}

// fixturePackages returns every directory under root that directly
// contains .go files.
func fixturePackages(t *testing.T, root string) []string {
	seen := map[string]bool{}
	var out []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if !seen[dir] {
				seen[dir] = true
				out = append(out, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// checkFixture type-checks one fixture package, runs the analyzers, and
// compares the diagnostics against the file's want expectations.
func checkFixture(t *testing.T, fset *token.FileSet, imp types.Importer,
	dir, path string, analyzers []*lint.Analyzer) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	wants := map[string][]*want{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", fname, err)
		}
		files = append(files, f)
		ws, err := collectWants(fname)
		if err != nil {
			t.Fatal(err)
		}
		wants[fname] = ws
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	cfg := types.Config{Importer: imp}
	pkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	u := &lint.Unit{Fset: fset, Path: path, Files: files, Pkg: pkg, Info: info}
	for _, d := range lint.RunUnit(u, analyzers) {
		if !claimWant(wants[d.Pos.Filename], d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for fname, ws := range wants {
		for _, w := range ws {
			if !w.claimed {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", fname, w.line, w.re)
			}
		}
	}
}

// want is one expectation: a regex a diagnostic on its line must match.
type want struct {
	line    int
	re      *regexp.Regexp
	claimed bool
}

// wantMarker introduces expectations inside a comment.
const wantMarker = "// want "

// collectWants scans a fixture file's raw lines for want comments. A
// line whose content is only the want comment attaches to the previous
// line (for diagnostics reported at a comment's own position).
func collectWants(fname string) ([]*want, error) {
	data, err := os.ReadFile(fname)
	if err != nil {
		return nil, err
	}
	var out []*want
	for i, line := range strings.Split(string(data), "\n") {
		at := strings.Index(line, wantMarker)
		if at < 0 {
			continue
		}
		lineNo := i + 1
		if strings.HasPrefix(strings.TrimSpace(line), strings.TrimSpace(wantMarker)) {
			lineNo--
		}
		rest := line[at+len(wantMarker):]
		any := false
		for {
			start := strings.IndexByte(rest, '`')
			if start < 0 {
				break
			}
			end := strings.IndexByte(rest[start+1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want regex", fname, i+1)
			}
			re, err := regexp.Compile(rest[start+1 : start+1+end])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", fname, i+1, err)
			}
			out = append(out, &want{line: lineNo, re: re})
			any = true
			rest = rest[start+end+2:]
		}
		if !any {
			return nil, fmt.Errorf("%s:%d: want comment without a backtick-quoted regex", fname, i+1)
		}
	}
	return out, nil
}

// claimWant consumes the first unclaimed expectation on the line whose
// regex matches msg.
func claimWant(ws []*want, line int, msg string) bool {
	for _, w := range ws {
		if !w.claimed && w.line == line && w.re.MatchString(msg) {
			w.claimed = true
			return true
		}
	}
	return false
}

// fixtureImporter resolves standard-library imports from GOROOT source
// and stubs out filemig/* imports (fixtures reference them only in
// import declarations, never by symbol).
type fixtureImporter struct {
	src   types.Importer
	stubs map[string]*types.Package
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if !strings.HasPrefix(path, "filemig") {
		return fi.src.Import(path)
	}
	if p, ok := fi.stubs[path]; ok {
		return p, nil
	}
	p := types.NewPackage(path, path[strings.LastIndexByte(path, '/')+1:])
	p.MarkComplete()
	fi.stubs[path] = p
	return p, nil
}
