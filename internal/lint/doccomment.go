package lint

import (
	"go/ast"
	"strings"
)

// DocComment keeps `go doc` output useful for every library package:
// each package must have a package comment, and every exported
// declaration (functions and methods on exported receivers, types,
// consts, vars) must carry a doc comment. This folds the old
// .github/doclint checker into the miglint suite, widening it from the
// two packages the shell script named to the facade and all of
// internal/ — commands and examples are exempt (their interface is the
// CLI and the prose, not godoc).
var DocComment = &Analyzer{
	Name:     "doccomment",
	Doc:      "require package comments and doc comments on exported identifiers in library packages",
	Suppress: "doc-ok",
	Run:      runDocComment,
}

func runDocComment(p *Pass) {
	if !InModule(p.Path) {
		return
	}
	// Library packages only: the facade and internal/*.
	if p.Path != ModulePath && !strings.HasPrefix(p.Path, internalPrefix) {
		return
	}
	pkgDoc := false
	for _, f := range p.Files {
		if f.Doc != nil {
			pkgDoc = true
		}
		checkDocFile(p, f)
	}
	if !pkgDoc && len(p.Files) > 0 {
		p.Reportf(p.Files[0].Package, "package %s has no package comment", p.Path)
	}
}

// checkDocFile reports undocumented exported declarations in one file.
func checkDocFile(p *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				p.Reportf(d.Pos(), "exported function %s has no doc comment", funcKey(d))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						p.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil {
							p.Reportf(n.Pos(), "exported value %s has no doc comment", n.Name)
							break // one report per spec line is enough
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions without receivers count as exported scope).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
