package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON vet.cfg file cmd/go writes for each unit
// when it drives a vet tool. Only the fields miglint consumes are
// declared; the rest are ignored by encoding/json.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string // import path as written -> canonical
	PackageFile map[string]string // canonical import path -> export data file
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// RunVetCfg executes one unit of the cmd/go vet protocol: parse the
// config at cfgPath, type-check the package against the export data
// cmd/go compiled, run the enabled analyzers, and print findings to
// stderr in the file:line:col form go vet relays.
//
// Exit codes: 0 clean (or unit out of scope), 1 internal/type error,
// 2 diagnostics found. Any nonzero exit makes the surrounding go vet
// fail, which is what wires miglint into CI.
func RunVetCfg(cfgPath string, enabled []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "miglint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "miglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go caches the VetxOutput file between runs; writing it (even
	// empty — miglint exports no facts) lets dependency units cache-hit
	// instead of re-running the tool on every invocation.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "miglint: %v\n", err)
			return 1
		}
	}
	// Test-variant units carry an " [pkg.test]" suffix on the path.
	path, _, _ := strings.Cut(cfg.ImportPath, " ")
	if cfg.VetxOnly || !InModule(path) {
		return 0
	}
	u, code := typecheckUnit(&cfg, path)
	if u == nil {
		return code
	}
	diags := RunUnit(u, enabled)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckUnit parses the unit's non-test files and type-checks them
// against the export data listed in the config. On failure it returns
// nil and the exit code to use.
func typecheckUnit(cfg *vetConfig, path string) (*Unit, int) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// go vet hands the test-augmented variant of each package;
		// miglint's invariants are about shipped code, so _test.go
		// files are out of scope.
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "miglint: %v\n", err)
			return nil, 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, 0
	}
	imp := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tcfg.Check(path, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0
		}
		fmt.Fprintf(os.Stderr, "miglint: typecheck %s: %v\n", path, err)
		return nil, 1
	}
	return &Unit{Fset: fset, Path: path, Files: files, Pkg: pkg, Info: info}, 0
}
