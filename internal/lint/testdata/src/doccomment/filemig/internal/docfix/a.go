package docfix // want `package filemig/internal/docfix has no package comment`

// Documented is documented.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

func Exported() {} // want `exported function Exported has no doc comment`

func unexported() {}

// Method is documented.
func (Documented) Method() {}

func (Documented) Plain() {} // want `exported function \(Documented\)\.Plain has no doc comment`

const Exp = 1 // want `exported value Exp has no doc comment`

const (
	// A is documented.
	A = 1
	B = 2 // want `exported value B has no doc comment`
)

var _ = unexported
