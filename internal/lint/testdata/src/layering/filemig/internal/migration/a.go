// Package migration is a layering fixture: trace and units are granted,
// core is not.
package migration

import (
	_ "filemig/internal/core" // want `must not import filemig/internal/core`
	_ "filemig/internal/trace"
	_ "filemig/internal/units"
)
