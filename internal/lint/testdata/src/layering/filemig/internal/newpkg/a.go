// Package newpkg is a layering fixture: it has no row in the
// ARCHITECTURE.md dependency table, so any intra-module import fails
// until the table is updated.
package newpkg

import _ "filemig/internal/units" // want `not in the ARCHITECTURE.md dependency table`
