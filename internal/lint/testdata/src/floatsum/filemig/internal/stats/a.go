// Package stats is a floatsum fixture.
package stats

type agg struct {
	total float64
	n     int
}

// Merge is a root by name: direct float accumulation is flagged, the
// integer field is not.
func (a *agg) Merge(b *agg) {
	a.total += b.total // want `float accumulation in \(\*agg\)\.Merge`
	a.n += b.n
	a.total = a.total + 1 // want `float accumulation in \(\*agg\)\.Merge`
}

// ReadSnapshotState is a root by name; fold is reachable from it.
func ReadSnapshotState(a, b *agg) {
	a.fold(b)
}

func (a *agg) fold(b *agg) {
	a.total += b.total // want `float accumulation in \(\*agg\)\.fold \(reachable from merge/load entry point ReadSnapshotState\)`
}

// Add is not reachable from any merge/load root, so per-record float
// accumulation here is fine (record order is deterministic).
func (a *agg) Add(v float64) {
	a.total += v
}

// mergeSeries is a root; float IncDec counts too.
func mergeSeries(c []float64) {
	c[0]++ // want `float accumulation in mergeSeries`
}

// MergeExact carries an audited waiver.
func MergeExact(a, b *agg) {
	a.total += b.total //lint:floatsum-ok fixture: pretend this order is pinned
}
