// Package trace is a detsource fixture.
package trace

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func bad() {
	_ = time.Now()                     // want `must not use time.Now`
	_ = os.Getenv("HOME")              // want `must not use os.Getenv`
	_ = runtime.GOMAXPROCS(0)          // want `must not use runtime.GOMAXPROCS`
	_ = runtime.NumCPU()               // want `must not use runtime.NumCPU`
	_ = rand.Int()                     // want `must not use the global math/rand.Int`
	rand.Shuffle(1, func(i, j int) {}) // want `must not use the global math/rand.Shuffle`
}

func good(now time.Time, workers int) time.Duration {
	rng := rand.New(rand.NewSource(42))
	_ = rng.Int()
	z := rand.NewZipf(rng, 1.2, 1, 100)
	_ = z.Uint64()
	_ = workers
	return now.Sub(now)
}
