// Package core is a mapiter fixture.
package core

import "sort"

// emit's first loop is the blessed collect-then-sort idiom; the second
// builds output directly from iteration order and must be flagged.
func emit(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for k, v := range m { // want `range over map m has nondeterministic order`
		_ = v
		out = append(out, k)
	}
	return out
}

// prune's body is order-insensitive bookkeeping: deletes and stores
// keyed by the range key.
func prune(m map[int]bool, dead map[int]bool, seen map[int]int) {
	for k := range dead {
		delete(m, k)
		seen[k] = 1
	}
}

// sum is flagged by the analyzer but carries an audited waiver.
func sum(m map[string]int) int {
	t := 0
	//lint:sorted-ok integer sum is order-independent
	for _, v := range m {
		t += v
	}
	return t
}

// collectNoSort appends but never sorts, so iteration order escapes.
func collectNoSort(m map[string]int) []string {
	var ks []string
	for k := range m { // want `range over map m has nondeterministic order`
		ks = append(ks, k)
	}
	return ks
}
