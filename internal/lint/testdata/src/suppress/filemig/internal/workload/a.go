// Package workload is a fixture for the suppression grammar itself,
// run under the full analyzer suite.
package workload

func bogus(m map[int]int) int {
	t := 0
	//lint:made-up-token because // want `unknown suppression "made-up-token"`
	for _, v := range m { // want `range over map m has nondeterministic order`
		t += v
	}
	//lint:sorted-ok
	// want `suppression //lint:sorted-ok needs a reason`
	for _, v := range m { // want `range over map m has nondeterministic order`
		t += v
	}
	return t
}
