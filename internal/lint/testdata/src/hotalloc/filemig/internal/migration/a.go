// Package migration is a hotalloc fixture for the required-annotation
// rule: (*Cache).Step exists but lacks the //filemig:hotpath directive,
// while the modern policies' observer hooks carry it and stay clean.
package migration

type Cache struct{ n int }

// Step is the replay inner loop.
func (c *Cache) Step(x int) { // want `\(\*Cache\)\.Step is a proven hot path and must be annotated`
	c.n += x
}

type ARC struct{ n int }

// FileAccessed is annotated and allocation-free: no diagnostic.
//
//filemig:hotpath
func (a *ARC) FileAccessed(x int) { a.n += x }

// FileEvicted is annotated and allocation-free: no diagnostic.
//
//filemig:hotpath
func (a *ARC) FileEvicted(x int) { a.n -= x }

type LRUK struct{ n int }

// FileAccessed is annotated and allocation-free: no diagnostic.
//
//filemig:hotpath
func (l *LRUK) FileAccessed(x int) { l.n += x }

type GreedyDual struct{ n int }

// FileAccessed is annotated and allocation-free: no diagnostic.
//
//filemig:hotpath
func (g *GreedyDual) FileAccessed(x int) { g.n += x }

// FileEvicted is annotated and allocation-free: no diagnostic.
//
//filemig:hotpath
func (g *GreedyDual) FileEvicted(x int) { g.n -= x }

type AdaptiveSTP struct{ n int }

// FileAccessed is annotated and allocation-free: no diagnostic.
//
//filemig:hotpath
func (s *AdaptiveSTP) FileAccessed(x int) { s.n += x }
