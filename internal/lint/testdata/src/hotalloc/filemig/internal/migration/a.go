// Package migration is a hotalloc fixture for the required-annotation
// rule: (*Cache).Step exists but lacks the //filemig:hotpath directive.
package migration

type Cache struct{ n int }

// Step is the replay inner loop.
func (c *Cache) Step(x int) { // want `\(\*Cache\)\.Step is a proven hot path and must be annotated`
	c.n += x
}
