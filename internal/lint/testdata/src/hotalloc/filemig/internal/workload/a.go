// Package workload is a hotalloc fixture.
package workload

import "fmt"

//filemig:hotpath
func hot(m map[string]int, k string, b []byte) int {
	s := make([]int, 4) // want `make allocates`
	fmt.Println(k)      // want `fmt.Println boxes its arguments`
	m[k] = 1            // want `map insert may allocate`
	_ = string(b)       // want `string\(\[\]byte\) copies`
	_ = m[string(b)]    // map-key position: the compiler elides the copy
	return s[0]
}

//filemig:hotpath
func hotMore(a, b string, v int) any {
	c := a + b // want `string concatenation allocates`
	_ = c
	f := func() int { return v } // want `closure may capture`
	_ = f
	return any(v) // want `conversion to interface boxes`
}

//filemig:hotpath
func hotErr(v int) (int, error) {
	if v < 0 {
		// Error construction on the cold exit is allowed.
		return 0, fmt.Errorf("bad %d", v)
	}
	return v, nil
}

//filemig:hotpath
func hotWaived(k string) {
	_ = k + "!" //lint:hotalloc-ok fixture: amortized elsewhere
}

// cold is not annotated, so nothing in it is checked.
func cold(k string) string {
	return fmt.Sprintf("%q", k)
}
