package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map anywhere in the module. Go map
// iteration order is random per run, so any map range whose body feeds
// serialized output, accumulators, or escaping slices is a determinism
// bug — exactly the class the byte-identical shard merges, s1
// snapshots, and migexp manifests cannot tolerate.
//
// Two shapes are recognised as safe and stay quiet:
//
//   - the collect-then-sort idiom: a body that only appends the key (or
//     value) to a slice which a sort.* / slices.* call in the same
//     function then orders;
//   - order-insensitive bookkeeping: a body consisting only of
//     delete(m, k) calls and/or stores into a map indexed by the range
//     key (each key is visited once, so last-write ambiguity cannot
//     arise).
//
// Anything else needs an audited waiver: //lint:sorted-ok <reason>.
var MapIter = &Analyzer{
	Name:     "mapiter",
	Doc:      "flag map iteration whose order can leak into output or accumulators",
	Suppress: "sorted-ok",
	Run:      runMapIter,
}

func runMapIter(p *Pass) {
	if !InModule(p.Path) {
		return
	}
	for _, f := range p.Files {
		for _, fd := range enclosingFuncs(f) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if mapRangeIsSafe(p, rs, fd) {
					return true
				}
				p.Reportf(rs.Pos(), "range over map %s has nondeterministic order; "+
					"collect and sort the keys first, or waive with //lint:sorted-ok <reason>",
					exprString(rs.X))
				return true
			})
		}
	}
}

// mapRangeIsSafe reports whether every statement in the range body is
// one of the allowed order-insensitive forms, and that any slice the
// body appends to is sorted later in the same function.
func mapRangeIsSafe(p *Pass, rs *ast.RangeStmt, fd *ast.FuncDecl) bool {
	keyObj := rangeVarObj(p, rs.Key)
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if appendTarget := appendAssignTarget(p, s); appendTarget != nil {
				if !sortedLater(p, fd, appendTarget, rs.End()) {
					return false
				}
				continue
			}
			if mapStoreKeyedByRangeKey(p, s, keyObj) {
				continue
			}
			return false
		case *ast.ExprStmt:
			if isDeleteCall(s.X) {
				continue
			}
			return false
		default:
			return false
		}
	}
	return true
}

// rangeVarObj resolves the range key/value identifier to its object.
func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// appendAssignTarget matches `s = append(s, ...)` (or s := append(s, …))
// with a single pair of operands and returns s's object, or nil.
func appendAssignTarget(p *Pass, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return rangeVarObj(p, lhs)
}

// mapStoreKeyedByRangeKey matches `m[k] = ...` and `m[k] op= ...` where
// m is a map and k is the range key variable: each distinct key is
// stored exactly once per iteration pass, so order cannot matter.
func mapStoreKeyedByRangeKey(p *Pass, s *ast.AssignStmt, keyObj types.Object) bool {
	if keyObj == nil || len(s.Lhs) != 1 {
		return false
	}
	ix, ok := s.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	if tv, ok := p.Info.Types[ix.X]; !ok {
		return false
	} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && rangeVarObj(p, id) == keyObj
}

// isDeleteCall matches delete(m, k).
func isDeleteCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "delete"
}

// sortedLater reports whether a sort.*/slices.* call after pos in fd
// mentions target, i.e. the collected keys get ordered before use.
func sortedLater(p *Pass, fd *ast.FuncDecl, target types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		if _, isPkg := p.Info.Uses[pkg].(*types.PkgName); !isPkg {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && rangeVarObj(p, id) == target {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// exprString renders a short expression (identifiers and selectors) for
// diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
