package lint_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoIsClean builds cmd/miglint and runs it over the whole module
// through the go vet -vettool protocol, asserting the repository obeys
// its own invariants: every map range is sorted or waived, the
// deterministic packages read no host state, the annotated hot paths
// stay allocation-free, merge paths avoid float accumulation, the
// import graph matches ARCHITECTURE.md, and every exported identifier
// is documented. A failure prints the diagnostics to fix (or waive with
// an audited //lint: comment).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "miglint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/miglint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building miglint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("miglint is not clean on this repository: %v\n%s", err, out)
	}
}
