package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatSum guards the exactness argument behind the byte-identical
// shard merge and s1 snapshot load (ARCHITECTURE.md, docs/snapshots.md):
// counts and byte totals must be integer sums, and distribution samples
// must merge by order-preserved concatenation, because float addition is
// not associative. Within the deterministic packages it builds the
// intra-package call graph and flags float32/float64 accumulation
// (`x += v`, `x = x + v`, `x++`) in any function reachable from a
// shard-merge or snapshot/manifest-load entry point (Merge*, merge*,
// *Snapshot loads, Unmarshal*).
//
// An accumulation that is genuinely order-preserved (replayed in record
// order, or index-aligned in shard order) carries an audited
// //lint:floatsum-ok <reason> waiver.
var FloatSum = &Analyzer{
	Name:     "floatsum",
	Doc:      "flag float accumulation reachable from shard-merge or snapshot-load entry points",
	Suppress: "floatsum-ok",
	Run:      runFloatSum,
}

// floatSumRoot reports whether a function name is a merge/load entry
// point whose transitive callees must not float-accumulate.
func floatSumRoot(name string) bool {
	for _, prefix := range []string{"Merge", "merge", "Unmarshal", "unmarshal"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	if strings.Contains(name, "Snapshot") {
		for _, prefix := range []string{"Read", "read", "Load", "load"} {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		}
	}
	return false
}

func runFloatSum(p *Pass) {
	if !IsDeterministic(p.Path) {
		return
	}
	// Map every function object declared in this package to its decl.
	decls := map[types.Object]*ast.FuncDecl{}
	var all []*ast.FuncDecl
	for _, f := range p.Files {
		for _, fd := range enclosingFuncs(f) {
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
			all = append(all, fd)
		}
	}
	// BFS the intra-package call graph from the merge/load roots,
	// remembering which root made each function reachable.
	reachedVia := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl
	for _, fd := range all {
		if floatSumRoot(fd.Name.Name) {
			reachedVia[fd] = funcKey(fd)
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		root := reachedVia[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var id *ast.Ident
			switch x := n.(type) {
			case *ast.Ident:
				id = x
			case *ast.SelectorExpr:
				id = x.Sel
			default:
				return true
			}
			if callee, ok := decls[p.Info.Uses[id]]; ok {
				if _, seen := reachedVia[callee]; !seen {
					reachedVia[callee] = root
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	for _, fd := range all {
		if root, ok := reachedVia[fd]; ok {
			checkFloatAccum(p, fd, root)
		}
	}
}

// checkFloatAccum flags float accumulation statements in one function.
func checkFloatAccum(p *Pass, fd *ast.FuncDecl, root string) {
	report := func(pos token.Pos) {
		p.Reportf(pos, "float accumulation in %s (reachable from merge/load entry point %s): "+
			"merge exactness needs integer sums or order-preserved sample merges; "+
			"if the order is provably preserved, waive with //lint:floatsum-ok <reason>",
			funcKey(fd), root)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if isFloatExpr(p, s.Lhs[0]) {
					report(s.TokPos)
				}
			case token.ASSIGN:
				// x = x + v / x = x - v / x = v + x
				b, ok := s.Rhs[0].(*ast.BinaryExpr)
				if !ok || (b.Op != token.ADD && b.Op != token.SUB) || !isFloatExpr(p, s.Lhs[0]) {
					return true
				}
				lv := lvalString(s.Lhs[0])
				if lv == "" {
					return true
				}
				if lvalString(b.X) == lv || (b.Op == token.ADD && lvalString(b.Y) == lv) {
					report(s.TokPos)
				}
			}
		case *ast.IncDecStmt:
			if isFloatExpr(p, s.X) {
				report(s.Pos())
			}
		}
		return true
	})
}

// isFloatExpr reports whether e's static type is float32/float64.
func isFloatExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// lvalString canonicalises simple lvalue chains (x, x.f, x[i].g) so
// `x = x + v` self-accumulation can be matched structurally. Unknown
// forms return "".
func lvalString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := lvalString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.IndexExpr:
		base, idx := lvalString(x.X), lvalString(x.Index)
		if base != "" && idx != "" {
			return base + "[" + idx + "]"
		}
	case *ast.BasicLit:
		return x.Value
	case *ast.ParenExpr:
		return lvalString(x.X)
	}
	return ""
}
