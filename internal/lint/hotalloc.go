package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc polices the //filemig:hotpath annotation: inside an
// annotated function, constructs that allocate per call are flagged —
// fmt calls (interface boxing of every argument), string concatenation
// and []byte->string conversions, map inserts, make/new, map and slice
// composite literals, pointers to composite literals, closures, and
// explicit conversions to interface types. append stays legal (the hot
// paths amortize it against pre-sized backing arrays), and allocations
// inside error-return statements are skipped — a corrupt-input exit is
// not the hot path.
//
// The analyzer also *requires* the annotation on the functions whose
// ~0 allocs/record behavior the committed AllocsPerRun regression tests
// assert (the b1 reader body decode, the interner lookups, the analysis
// dedup transition, replay stepping), so the hot-path contract is
// visible at the definition and machine-checked from then on.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "flag allocating constructs inside //filemig:hotpath functions",
	Suppress: "hotalloc-ok",
	Run:      runHotAlloc,
}

// hotpathDirective marks a function whose body must not allocate per
// call in the steady state.
const hotpathDirective = "//filemig:hotpath"

// requiredHotpath lists the functions that must carry the annotation,
// per package: the proven ~0 allocs/record loops from PR 3.
var requiredHotpath = map[string][]string{
	ModulePath + "/internal/trace": {
		"(*BinaryReader).decodeBody",
		"(*Interner).Intern",
		"(*Interner).InternBytes",
		"decodeB2Columns",
	},
	ModulePath + "/internal/core": {
		"(*Analysis).addFileAccessID",
	},
	ModulePath + "/internal/migration": {
		"(*Cache).Step",
		"(*ARC).FileAccessed",
		"(*ARC).FileEvicted",
		"(*LRUK).FileAccessed",
		"(*GreedyDual).FileAccessed",
		"(*GreedyDual).FileEvicted",
		"(*AdaptiveSTP).FileAccessed",
	},
}

func runHotAlloc(p *Pass) {
	if !InModule(p.Path) {
		return
	}
	annotated := map[string]bool{}
	for _, f := range p.Files {
		for _, fd := range enclosingFuncs(f) {
			if hasDirective(fd, hotpathDirective) {
				annotated[funcKey(fd)] = true
				checkHotBody(p, fd)
			}
		}
	}
	for _, want := range requiredHotpath[p.Path] {
		if !annotated[want] {
			pos := token.NoPos
			var found *ast.FuncDecl
			for _, f := range p.Files {
				for _, fd := range enclosingFuncs(f) {
					if funcKey(fd) == want {
						found = fd
					}
				}
				if pos == token.NoPos {
					pos = f.Package
				}
			}
			if found != nil {
				p.Reportf(found.Pos(), "%s is a proven hot path and must be annotated %s",
					want, hotpathDirective)
			} else {
				p.Reportf(pos, "required hot-path function %s.%s not found; "+
					"update requiredHotpath in internal/lint/hotalloc.go if it moved", p.Path, want)
			}
		}
	}
}

// hasDirective reports whether fd's doc group carries the directive.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// checkHotBody walks one annotated function and reports allocating
// constructs outside error-return statements.
func checkHotBody(p *Pass, fd *ast.FuncDecl) {
	errReturns := errorReturnRanges(p, fd)
	inErrReturn := func(pos token.Pos) bool {
		for _, r := range errReturns {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !inErrReturn(pos) {
			p.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, x, report)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(p, x) && !isConstant(p, x) {
				report(x.OpPos, "hot path: string concatenation allocates; "+
					"build into a reused []byte or precompute")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && isMapIndex(p, ix) {
					report(lhs.Pos(), "hot path: map insert may allocate or rehash; "+
						"use a dense slice arena keyed by interned ID")
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := x.X.(*ast.IndexExpr); ok && isMapIndex(p, ix) {
				report(x.Pos(), "hot path: map insert may allocate or rehash; "+
					"use a dense slice arena keyed by interned ID")
			}
		case *ast.FuncLit:
			report(x.Pos(), "hot path: closure may capture and allocate; hoist it out of the hot function")
			return false
		case *ast.CompositeLit:
			if tv, ok := p.Info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map, *types.Slice:
					report(x.Pos(), "hot path: %s literal allocates; preallocate and reuse",
						kindName(tv.Type))
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "hot path: &composite literal escapes to the heap; reuse a pooled value")
				}
			}
		}
		return true
	})
}

// checkHotCall flags allocating call forms: fmt.*, make, new, explicit
// interface conversions, and []byte->string conversions outside map-key
// position (where the compiler elides the copy).
func checkHotCall(p *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(call.Pos(), "hot path: %s allocates; hoist the allocation out of the per-record loop", b.Name())
			}
			return
		}
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call.Pos(), "hot path: fmt.%s boxes its arguments and allocates; "+
				"use strconv/append primitives or move formatting off the hot path", obj.Name())
			return
		}
	}
	// Conversions: T(x) where Fun denotes a type.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := p.Info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
			report(call.Pos(), "hot path: conversion to interface boxes the value; keep concrete types")
			return
		}
		if isString(dst) && isByteSlice(src) && !inMapKeyPosition(p, call) {
			report(call.Pos(), "hot path: string([]byte) copies; intern or reuse the canonical string")
		}
	}
}

// errorReturnRanges returns the source ranges of return statements that
// construct an error (fmt.Errorf / errors.*) — the cold exits.
func errorReturnRanges(p *Pass, fd *ast.FuncDecl) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		erry := false
		ast.Inspect(ret, func(m ast.Node) bool {
			sel, ok := m.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
				if pp := obj.Pkg().Path(); pp == "errors" || (pp == "fmt" && obj.Name() == "Errorf") {
					erry = true
				}
			}
			return !erry
		})
		if erry {
			out = append(out, [2]token.Pos{ret.Pos(), ret.End()})
		}
		return true
	})
	return out
}

// inMapKeyPosition reports whether e is the index operand of a map
// index expression — `m[string(b)]` — which the compiler performs
// without copying.
func inMapKeyPosition(p *Pass, e ast.Expr) bool {
	found := false
	for _, f := range p.Files {
		if f.Pos() <= e.Pos() && e.Pos() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				ix, ok := n.(*ast.IndexExpr)
				if ok && ix.Index == e && isMapIndex(p, ix) {
					found = true
				}
				return !found
			})
		}
	}
	return found
}

// isMapIndex reports whether ix indexes a map.
func isMapIndex(p *Pass, ix *ast.IndexExpr) bool {
	tv, ok := p.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isStringType reports whether e's static type is a string.
func isStringType(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && isString(tv.Type)
}

// isConstant reports whether e folded to a compile-time constant.
func isConstant(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// kindName names a map/slice type tersely for diagnostics.
func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return t.String()
}
