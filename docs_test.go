package filemig_test

// Keeps the worked examples in docs/ honest: each document's example is
// executed and its shown output compared byte for byte, so the docs
// cannot drift from the code.

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"filemig"
	"filemig/internal/device"
	"filemig/internal/dist"
	"filemig/internal/experiment"
	"filemig/internal/migration"
	"filemig/internal/serve"
	"filemig/internal/trace"
	"filemig/internal/units"
)

// docFence extracts the first fenced code block following the given
// <!-- test:... --> marker.
func docFence(t *testing.T, doc, marker string) string {
	t.Helper()
	_, rest, ok := strings.Cut(doc, marker)
	if !ok {
		t.Fatalf("the document lost its %s marker", marker)
	}
	_, rest, ok = strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("no code fence after %s", marker)
	}
	// Drop the info string ("json") on the opening fence line.
	if i := strings.IndexByte(rest, '\n'); i >= 0 {
		rest = rest[i+1:]
	}
	body, _, ok := strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("unterminated code fence after %s", marker)
	}
	return body
}

func TestDocsWorkedExample(t *testing.T) {
	raw, err := os.ReadFile("docs/experiments.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	spec, err := experiment.Parse(strings.NewReader(docFence(t, doc, "<!-- test:spec -->")))
	if err != nil {
		t.Fatalf("worked example spec does not parse: %v", err)
	}
	m, err := filemig.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(filemig.RenderExperiment(m), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:output -->"), "\n")
	if got != want {
		t.Errorf("docs/experiments.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}

// TestDocsB2Example re-encodes docs/trace-format.md's three worked
// records with the documented epoch and compares the documented hex
// dump byte for byte — the b2 wire layout in the docs is the layout
// the codec emits.
func TestDocsB2Example(t *testing.T) {
	raw, err := os.ReadFile("docs/trace-format.md")
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Unix(654739200, 0).UTC()
	recs := []trace.Record{
		{Start: epoch.Add(10 * time.Second), Op: trace.Read, Device: device.ClassDisk,
			Startup: 4 * time.Second, Transfer: 1500 * time.Millisecond,
			Size: 3145728, UserID: 101, MSSPath: "/mss/u1/a", LocalPath: "/tmp/a"},
		{Start: epoch.Add(15 * time.Second), Op: trace.Write, Device: device.ClassSiloTape,
			Startup: 85 * time.Second, Transfer: 40000 * time.Millisecond,
			Size: units.Bytes(83886080), UserID: 101, MSSPath: "/mss/u1/b", LocalPath: "/tmp/b"},
		{Start: epoch.Add(400 * time.Second), Op: trace.Read, Device: device.ClassManualTape,
			Err: trace.ErrNoFile, UserID: 202, MSSPath: "/mss/u2/gone", LocalPath: "/tmp/gone"},
	}
	var enc bytes.Buffer
	w := trace.NewB2WriterEpoch(&enc, epoch)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(hex.Dump(enc.Bytes()), "\n")
	want := strings.TrimRight(docFence(t, string(raw), "<!-- test:b2-dump -->"), "\n")
	if got != want {
		t.Errorf("docs/trace-format.md b2 worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
	// The documented total ("185-byte file") rides along in prose; keep
	// it honest too.
	if enc.Len() != 185 {
		t.Errorf("worked example encodes to %d bytes, docs say 185", enc.Len())
	}
}

// TestDocsSnapshotExample executes docs/snapshots.md's worked
// distributed merge through the facade — the same workload, split,
// snapshotted twice, merged — and compares the documented Table 4
// byte for byte.
func TestDocsSnapshotExample(t *testing.T) {
	raw, err := os.ReadFile("docs/snapshots.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	p, err := filemig.Run(filemig.Config{Scale: 0.001, Seed: 3, Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(p.Records) / 2
	var snaps [2]bytes.Buffer
	for i, recs := range [][]trace.Record{p.Records[:cut], p.Records[cut:]} {
		var enc bytes.Buffer
		if err := trace.WriteAllFormat(&enc, recs, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if err := filemig.SaveSnapshot(&snaps[i], &enc); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := filemig.MergeSnapshots(&snaps[0], &snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	e, ok := filemig.FindExperiment("table4")
	if !ok {
		t.Fatal("table4 experiment missing")
	}
	got := strings.TrimRight(e.Render(merged), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:snapshot-output -->"), "\n")
	if got != want {
		t.Errorf("docs/snapshots.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}

// TestDocsDistributedExample runs docs/distributed.md's quickgrid spec
// through the real coordinator/worker path — two in-process workers
// over loopback — and compares the documented render byte for byte.
// The same spec's manifest is also the chaos golden in internal/dist.
func TestDocsDistributedExample(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full distributed grid")
	}
	raw, err := os.ReadFile("docs/distributed.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	spec, err := experiment.Parse(strings.NewReader(docFence(t, doc, "<!-- test:dist-spec -->")))
	if err != nil {
		t.Fatalf("worked example spec does not parse: %v", err)
	}
	plan, err := experiment.BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dist.NewGridCoordinator(plan, dist.Options{
		Lease: 30 * time.Second, Now: time.Now, Seed: 1, Linger: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- g.Serve(ctx, ln) }()
	workers := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			workers <- dist.RunWorker(ctx, base, dist.WorkerOptions{Seed: seed, Poll: 20 * time.Millisecond})
		}(int64(i + 1))
	}
	if err := <-served; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workers; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	m, err := g.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(experiment.RenderManifest(m), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:dist-output -->"), "\n")
	if got != want {
		t.Errorf("docs/distributed.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}

// TestDocsPoliciesExample replays docs/policies.md's ten-access worked
// trace under the modern policies plus STP^1.4 and LRU at the
// documented 50 MB capacity and compares the documented comparison
// table byte for byte.
func TestDocsPoliciesExample(t *testing.T) {
	raw, err := os.ReadFile("docs/policies.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	recs, err := trace.ReadAll(strings.NewReader(docFence(t, doc, "<!-- test:policies-trace -->")))
	if err != nil {
		t.Fatalf("worked example trace does not parse: %v", err)
	}
	accs := migration.AccessesFromRecords(recs)
	policies := append(filemig.ModernPolicies(accs),
		migration.STP{K: 1.4}, migration.LRU{})
	results, err := migration.ComparePolicies(accs, units.Bytes(50_000_000), policies)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %6s %8s %11s\n", "policy", "reads", "hits", "misses", "evictions")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %6d %6d %8d %11d\n", r.Policy, r.Reads, r.ReadHits, r.ReadMisses, r.Evictions)
	}
	got := strings.TrimRight(b.String(), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:policies-table -->"), "\n")
	if got != want {
		t.Errorf("docs/policies.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}

// TestDocsTournament runs docs/tournament.md's full 168-cell grid —
// every scenario × every policy (classic six + modern five) × three
// capacities — and compares the documented tables byte for byte. The
// committed testdata/tournament.json must also match the spec fence,
// so the documented reproduce command runs the documented spec.
func TestDocsTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 168-cell experiment grid")
	}
	raw, err := os.ReadFile("docs/tournament.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	fence := docFence(t, doc, "<!-- test:tournament-spec -->")
	committed, err := os.ReadFile("testdata/tournament.json")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimRight(fence, "\n") != strings.TrimRight(string(committed), "\n") {
		t.Errorf("testdata/tournament.json differs from the docs/tournament.md spec fence")
	}
	spec, err := experiment.Parse(strings.NewReader(fence))
	if err != nil {
		t.Fatalf("tournament spec does not parse: %v", err)
	}
	m, err := filemig.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(filemig.RenderExperiment(m), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:tournament-tables -->"), "\n")
	if got != want {
		t.Errorf("docs/tournament.md tables are stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}

// TestDocsMigdExample runs docs/migd.md's worked example: the three-line
// ASCII trace is posted to a live daemon and the documented /v1/file
// answer is compared byte for byte.
func TestDocsMigdExample(t *testing.T) {
	raw, err := os.ReadFile("docs/migd.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	s, err := serve.NewServer(serve.Config{
		Now: func() time.Time { return time.Date(1990, 10, 10, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	body := docFence(t, doc, "<!-- test:migd-trace -->")
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("documented trace did not ingest: status %d: %s", w.Code, w.Body)
	}

	req = httptest.NewRequest(http.MethodGet,
		"/v1/file/mss/climate/run07/state.dat?now=1990-10-10T00:00:00Z", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("documented file query failed: status %d: %s", w.Code, w.Body)
	}
	got := strings.TrimRight(w.Body.String(), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:migd-file -->"), "\n")
	if got != want {
		t.Errorf("docs/migd.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s", want, got)
	}
}
